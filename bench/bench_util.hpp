// Shared scaffolding for the figure/table reproduction harnesses: a small
// cluster (hosts + runtimes + directory), perftest wiring, migration
// helpers, and table printing.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/perftest.hpp"
#include "migr/migration.hpp"
#include "obs/metrics.hpp"
#include "rnic/world.hpp"

namespace migr::bench {

using apps::PerftestConfig;
using apps::PerftestPeer;
using migrlib::GuestDirectory;
using migrlib::GuestId;
using migrlib::MigrationController;
using migrlib::MigrationOptions;
using migrlib::MigrationReport;
using migrlib::MigrRdmaRuntime;

class Cluster {
 public:
  explicit Cluster(std::uint32_t hosts, net::FabricConfig fabric = {}, std::uint64_t seed = 42)
      : world_(fabric, seed) {
    for (net::HostId h = 1; h <= hosts; ++h) {
      devices_[h] = &world_.add_device(h);
      runtimes_[h] =
          std::make_unique<MigrRdmaRuntime>(directory_, *devices_[h], world_.fabric());
    }
  }

  rnic::World& world() { return world_; }
  sim::EventLoop& loop() { return world_.loop(); }
  GuestDirectory& directory() { return directory_; }
  rnic::Device& device(net::HostId h) { return *devices_.at(h); }
  MigrRdmaRuntime& runtime(net::HostId h) { return *runtimes_.at(h); }

  void run_for(sim::DurationNs d) { world_.loop().run_until(world_.loop().now() + d); }

  /// Synchronous migration driver: runs the loop until the workflow ends.
  MigrationReport migrate(GuestId id, net::HostId dest, migrlib::MigratableApp* app,
                          MigrationOptions opts = {}) {
    auto& dest_proc = world_.add_process("dest");
    MigrationController ctl(world_.loop(), world_.fabric(), directory_, opts);
    MigrationReport out;
    bool done = false;
    auto st = ctl.start(id, dest, dest_proc, app, [&](const MigrationReport& r) {
      out = r;
      done = true;
    });
    if (!st.is_ok()) {
      out.ok = false;
      out.error = st.to_string();
      return out;
    }
    const sim::TimeNs deadline = world_.loop().now() + sim::sec(120);
    while (!done && world_.loop().now() < deadline) run_for(sim::msec(1));
    return out;
  }

 private:
  rnic::World world_;
  GuestDirectory directory_;
  std::unordered_map<net::HostId, rnic::Device*> devices_;
  std::unordered_map<net::HostId, std::unique_ptr<MigrRdmaRuntime>> runtimes_;
};

/// Read one instrument (or source field) out of a registry snapshot by its
/// full rendered name, e.g. "rnic.retransmits{host=1}" or
/// "fabric.port{host=1}.data_bytes_tx". Returns 0 when absent.
inline double snapshot_value(const std::vector<obs::SnapshotEntry>& snap,
                             const std::string& name) {
  for (const auto& e : snap) {
    if (e.name == name) return e.value;
  }
  return 0;
}

/// Snapshot the global registry, print every entry under `prefix`, and
/// return the snapshot for programmatic use. Benches call this after a sweep
/// to report cross-layer counters without threading stats structs around.
inline std::vector<obs::SnapshotEntry> print_registry_section(const std::string& prefix) {
  auto snap = obs::Registry::global().snapshot();
  std::printf("\n-- registry: %s --\n", prefix.empty() ? "(all)" : prefix.c_str());
  for (const auto& e : snap) {
    if (!prefix.empty() && e.name.rfind(prefix, 0) != 0) continue;
    if (e.kind == obs::SnapshotEntry::Kind::histogram) {
      std::printf("  %-44s count=%llu p50=%lld p99=%lld max=%lld\n", e.name.c_str(),
                  static_cast<unsigned long long>(e.count), static_cast<long long>(e.p50),
                  static_cast<long long>(e.p99), static_cast<long long>(e.max));
    } else {
      std::printf("  %-44s %.0f\n", e.name.c_str(), e.value);
    }
  }
  return snap;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----------");
  std::printf("\n");
}

}  // namespace migr::bench
