// §6 ablation — MigrRDMA vs MigrOS stop-and-copy.
//
// MigrOS modifies the RNIC so live QP transport state can be extracted and
// injected. The paper argues (§6) that both systems move the same data in
// the wait/replay steps, but MigrOS pays extra firmware time per QP to
// extract state, move every QP to STOP, and inject state at the target —
// while MigrRDMA's metadata lives in host memory and rides the ordinary
// memory image.
//
// This harness measures MigrRDMA's stop-and-copy (service blackout) and
// composes the MigrOS estimate on top of the same measured memory costs:
//   migros_blackout = DumpOthers + Transfer + FullRestore
//                     + #QP * (extract + stop + inject)
// using the migration-aware-firmware cost the rnic substrate exposes. The
// crossover the paper predicts — MigrOS slower, increasingly so with #QPs —
// falls out directly.
#include "bench_util.hpp"

namespace migr::bench {
namespace {

void run_case(std::uint32_t qps) {
  Cluster cluster(3);
  PerftestConfig cfg;
  cfg.num_qps = qps;
  cfg.msg_size = 4096;
  cfg.queue_depth = 16;
  PerftestPeer sender(cluster.runtime(1), cluster.world().add_process("tx"), 100,
                      PerftestPeer::Role::sender, cfg);
  PerftestPeer receiver(cluster.runtime(3), cluster.world().add_process("rx"), 200,
                        PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < qps; ++i) {
    if (!PerftestPeer::connect_pair(sender, i, receiver, i).is_ok()) std::exit(1);
  }
  sender.start();
  receiver.start();
  cluster.run_for(sim::msec(2));
  auto rep = cluster.migrate(100, 2, &sender);
  if (!rep.ok) std::exit(1);

  const double migrrdma_ms = sim::to_msec(rep.service_blackout());
  // MigrOS moves the same memory but adds per-QP firmware work on both
  // NICs: extract + STOP on the source, inject on the destination.
  const double per_qp_ms = sim::to_msec(cluster.device(1).migros_per_qp_cost());
  const double migros_ms = sim::to_msec(rep.dump_others + rep.transfer + rep.full_restore) +
                           static_cast<double>(qps) * per_qp_ms * 3.0;
  std::printf("%16u%16.2f%16.2f%15.2fx\n", qps, migrrdma_ms, migros_ms,
              migros_ms / migrrdma_ms);
}

}  // namespace
}  // namespace migr::bench

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  migr::bench::print_header(
      "§6 ablation: stop-and-copy service blackout, MigrRDMA (measured, "
      "with pre-setup) vs MigrOS (modelled: same memory costs + per-QP "
      "firmware extract/STOP/inject)");
  migr::bench::print_row_header({"#QP", "MigrRDMA (ms)", "MigrOS (ms)", "ratio"});
  for (std::uint32_t qps : {16u, 64u, 256u, 1024u}) migr::bench::run_case(qps);
  return 0;
}
