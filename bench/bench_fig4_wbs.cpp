// Figure 4 — Overhead of wait-before-stop (queue depth 64).
//
// Three sweeps, as in the paper:
//   (a) number of QPs, message size 4 KiB
//   (b) message size, 64 QPs
//   (c) number of partners (one-to-many pattern), 4 KiB messages
//
// For each point the harness reports the measured wait-before-stop elapsed
// time, the theoretical lower bound inflight_bytes / link_rate (paper
// footnote 2: #QP x msg x depth / 100 Gbps), and the total communication
// blackout, so the WBS share is visible.
//
// Expected shape: WBS tracks theory (often below it, because the NIC has
// already completed part of the window when WBS begins) and is a small
// fraction of the communication blackout — except for small messages where
// per-WR processing dominates and the measured value exceeds theory
// severalfold (the paper reports 6x at 512 B).
#include "bench_util.hpp"

namespace migr::bench {
namespace {

constexpr std::uint32_t kDepth = 64;

struct Point {
  MigrationReport rep;
  double theory_ms;
};

Point run_point(std::uint32_t qps, std::uint32_t msg_size, std::uint32_t partners) {
  Cluster cluster(2 + partners);
  PerftestConfig cfg;
  cfg.num_qps = qps;
  cfg.msg_size = msg_size;
  cfg.queue_depth = kDepth;
  PerftestPeer hub(cluster.runtime(1), cluster.world().add_process("hub"), 100,
                   PerftestPeer::Role::sender, cfg);
  std::vector<std::unique_ptr<PerftestPeer>> peers;
  PerftestConfig pcfg = cfg;
  pcfg.num_qps = qps / partners;
  for (std::uint32_t p = 0; p < partners; ++p) {
    peers.push_back(std::make_unique<PerftestPeer>(
        cluster.runtime(3 + p), cluster.world().add_process("p" + std::to_string(p)),
        200 + p, PerftestPeer::Role::receiver, pcfg));
  }
  for (std::uint32_t i = 0; i < qps; ++i) {
    const std::uint32_t p = i % partners;
    auto st = PerftestPeer::connect_pair(hub, i, *peers[p], i / partners);
    if (!st.is_ok()) {
      std::fprintf(stderr, "connect failed: %s\n", st.to_string().c_str());
      std::exit(1);
    }
  }
  hub.start();
  for (auto& peer : peers) peer->start();
  // Let the send windows fill (best-effort posting saturates the queues).
  cluster.run_for(sim::msec(2));

  Point point;
  point.theory_ms = static_cast<double>(qps) * msg_size * kDepth * 8.0 / 100e9 * 1e3;
  point.rep = cluster.migrate(100, 2, &hub);
  if (!point.rep.ok) {
    std::fprintf(stderr, "migration failed: %s\n", point.rep.error.c_str());
    std::exit(1);
  }
  return point;
}

void print_point(const char* label, const Point& p) {
  std::printf("%16s%16.3f%16.3f%16.3f%15.1f%%\n", label, sim::to_msec(p.rep.wbs_elapsed),
              p.theory_ms, sim::to_msec(p.rep.comm_blackout()),
              100.0 * static_cast<double>(p.rep.wbs_elapsed) /
                  static_cast<double>(p.rep.comm_blackout()));
}

}  // namespace
}  // namespace migr::bench

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using namespace migr::bench;

  print_header("Figure 4(a): wait-before-stop vs #QP (4 KiB messages, depth 64)");
  print_row_header({"#QP", "WBS (ms)", "theory (ms)", "comm-blk (ms)", "WBS share"});
  for (std::uint32_t qps : {16u, 64u, 256u, 1024u}) {
    auto p = run_point(qps, 4096, 1);
    print_point(std::to_string(qps).c_str(), p);
  }

  print_header("Figure 4(b): wait-before-stop vs message size (64 QPs, depth 64)");
  print_row_header({"msg size", "WBS (ms)", "theory (ms)", "comm-blk (ms)", "WBS share"});
  for (std::uint32_t msg : {512u, 4096u, 16384u, 65536u}) {
    auto p = run_point(64, msg, 1);
    const std::string label = msg >= 1024 ? std::to_string(msg / 1024) + " KiB"
                                          : std::to_string(msg) + " B";
    print_point(label.c_str(), p);
  }

  print_header("Figure 4(c): wait-before-stop vs #partners (4 KiB, depth 64, 64 QPs)");
  print_row_header({"#partners", "WBS (ms)", "theory (ms)", "comm-blk (ms)", "WBS share"});
  for (std::uint32_t partners : {1u, 2u, 4u}) {
    auto p = run_point(64, 4096, partners);
    print_point(std::to_string(partners).c_str(), p);
  }
  return 0;
}
