// Figure 6 — Migration of a real-world application (mini-Hadoop).
//
// Reproduces §5.6: a master and two workers run a job; mid-job the operator
// must take worker 1's server down for maintenance. Three strategies:
//   * baseline  — no maintenance; the job runs to completion undisturbed.
//   * MigrRDMA  — live-migrate the worker container to a spare server.
//   * failover  — kill the worker and rely on Hadoop's native fault
//                 tolerance (heartbeat detection + re-execution on a
//                 backup after log-replay recovery).
// Reported per job (TestDFSIO and EstimatePI): job completion time, and for
// DFSIO the application-perceived throughput around the event.
//
// Expected shape (paper): MigrRDMA adds ~seconds to JCT and a shallow
// throughput dip (−12.5% in the paper); failover costs tens of seconds and
// a deep throughput loss (−65.8%).
#include "apps/minihadoop.hpp"
#include "apps/msg_node.hpp"
#include "bench_util.hpp"

namespace migr::bench {
namespace {

using apps::HadoopConfig;
using apps::HadoopMaster;
using apps::HadoopWorker;
using apps::JobKind;
using apps::MsgNode;

enum class Strategy { baseline, migrrdma, failover };

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::baseline: return "baseline";
    case Strategy::migrrdma: return "MigrRDMA";
    case Strategy::failover: return "failover";
  }
  return "?";
}

struct Outcome {
  double jct_s = 0;
  bool completed = false;
  std::uint32_t failovers = 0;
  std::vector<HadoopMaster::TputSample> tput;
};

Outcome run_case(JobKind kind, Strategy strategy) {
  // Hosts: 1=master 2=worker1 3=worker2 4=backup 5=maintenance spare.
  Cluster cluster(5);
  HadoopConfig cfg;
  cfg.kind = kind;
  cfg.tasks = 24;
  cfg.blocks_per_task = 8;
  cfg.block_size = 1 << 20;
  cfg.compute_per_block = sim::msec(40);
  cfg.pi_task_compute = sim::msec(350);
  cfg.failover_recovery = sim::sec(15);

  MsgNode master_node(cluster.runtime(1), cluster.world().add_process("master"), 1000);
  MsgNode w1_node(cluster.runtime(2), cluster.world().add_process("w1"), 1001);
  MsgNode w2_node(cluster.runtime(3), cluster.world().add_process("w2"), 1002);
  MsgNode backup_node(cluster.runtime(4), cluster.world().add_process("backup"), 1003);
  for (auto* pair : {&w1_node, &w2_node, &backup_node}) {
    if (!MsgNode::connect(master_node, *pair).is_ok()) std::exit(1);
  }
  if (!MsgNode::connect(w1_node, w2_node).is_ok()) std::exit(1);
  if (!MsgNode::connect(backup_node, w2_node).is_ok()) std::exit(1);

  HadoopWorker w1(w1_node, cfg, 1000);
  HadoopWorker w2(w2_node, cfg, 1000);
  HadoopWorker backup(backup_node, cfg, 1000);
  w1.set_replica(1002, w2.landing_addr(), w2.landing_vrkey());
  w2.set_replica(1001, w1.landing_addr(), w1.landing_vrkey());
  backup.set_replica(1002, w2.landing_addr(), w2.landing_vrkey());
  HadoopMaster master(master_node, cfg);
  master.add_worker(1001);
  master.add_worker(1002);
  master.set_backup(1003);

  master_node.start();
  w1_node.start();
  w2_node.start();
  backup_node.start();
  w1.start();
  w2.start();
  backup.start();
  master.start_job();

  // Maintenance event 1.5 s into the job.
  cluster.run_for(sim::msec(1500));
  switch (strategy) {
    case Strategy::baseline:
      break;
    case Strategy::migrrdma: {
      auto report = cluster.migrate(1001, 5, &w1);
      if (!report.ok) {
        std::fprintf(stderr, "migration failed: %s\n", report.error.c_str());
        std::exit(1);
      }
      break;
    }
    case Strategy::failover:
      cluster.world().fabric().set_partitioned(2, true);
      w1.stop();
      break;
  }

  const sim::TimeNs deadline = cluster.loop().now() + sim::sec(90);
  while (!master.job_done() && cluster.loop().now() < deadline) {
    cluster.run_for(sim::msec(50));
  }
  Outcome out;
  out.completed = master.job_done();
  out.jct_s = sim::to_sec(master.jct());
  out.failovers = master.failovers();
  out.tput = master.throughput();
  return out;
}

void run_job(JobKind kind, const char* name) {
  print_header(std::string("Fig 6 — ") + name + ": JCT under the three strategies");
  print_row_header({"strategy", "JCT (s)", "completed", "failovers"});
  double base_jct = 0;
  std::vector<std::pair<Strategy, Outcome>> outcomes;
  for (Strategy s : {Strategy::baseline, Strategy::migrrdma, Strategy::failover}) {
    Outcome o = run_case(kind, s);
    if (s == Strategy::baseline) base_jct = o.jct_s;
    std::printf("%16s%16.2f%16s%16u", strategy_name(s), o.jct_s,
                o.completed ? "yes" : "NO", o.failovers);
    if (s != Strategy::baseline) std::printf("   (+%.2f s vs baseline)", o.jct_s - base_jct);
    std::printf("\n");
    outcomes.emplace_back(s, std::move(o));
  }
  if (kind != JobKind::dfsio) return;

  std::printf("\nDFSIO application-perceived throughput (MB/s, 250 ms samples):\n");
  std::printf("%10s", "t (s)");
  for (auto& [s, o] : outcomes) std::printf("%12s", strategy_name(s));
  std::printf("\n");
  std::size_t rows = 0;
  for (auto& [s, o] : outcomes) rows = std::max(rows, o.tput.size());
  for (std::size_t i = 0; i < rows; i += 2) {  // 0.5 s print granularity
    std::printf("%10.2f", 0.25 * static_cast<double>(i));
    for (auto& [s, o] : outcomes) {
      if (i < o.tput.size()) {
        std::printf("%12.1f", o.tput[i].mbps);
      } else {
        std::printf("%12s", "-");
      }
    }
    std::printf("\n");
  }
  // Average throughput loss in the disruption window (1.5 s .. 25 s).
  auto avg = [](const std::vector<HadoopMaster::TputSample>& t, double from_s,
                double to_s) {
    double sum = 0;
    int n = 0;
    for (const auto& s : t) {
      const double at = sim::to_sec(s.at);
      if (at >= from_s && at <= to_s) {
        sum += s.mbps;
        n++;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const double window_end = 1.5 + outcomes[0].second.jct_s;
  const double base = avg(outcomes[0].second.tput, 1.5, window_end);
  std::printf("\nThroughput over the disruption window (vs baseline %.1f MB/s):\n", base);
  for (auto& [s, o] : outcomes) {
    const double mine = avg(o.tput, 1.5, window_end);
    std::printf("  %-10s %8.1f MB/s  (%+.1f%%)\n", strategy_name(s), mine,
                base > 0 ? (mine - base) / base * 100.0 : 0.0);
  }
}

}  // namespace
}  // namespace migr::bench

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  migr::bench::run_job(migr::bench::JobKind::dfsio, "TestDFSIO");
  migr::bench::run_job(migr::bench::JobKind::estimate_pi, "EstimatePI");
  return 0;
}
