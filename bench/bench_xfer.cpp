// Transfer-mux microbench: paced stream scale-out and page-suppression
// ratios, written as the BENCH_xfer.json baseline that tools/ci.sh gates on.
//
//   build/bench/bench_xfer [--out BENCH_xfer.json]
//
// Two sections:
//  * streams: one 16 MiB payload through the TransferMux at 25 Gbps per
//    stream for N = 1/2/4/8; the mux must scale transfer time ~1/N (the
//    multifd claim). The CI gate requires >= 1.5x at N = 4.
//  * suppression: the PageDelta codec over a zero-page workload (>= 5x
//    fewer bytes attempted) and a sparse-dirty workload, with the
//    raw == shipped + suppressed balance pinned.
#include <cstdio>
#include <cstring>
#include <string>

#include "criu/pagedelta.hpp"
#include "migr/xfer.hpp"
#include "net/fabric.hpp"
#include "sim/event_loop.hpp"

using namespace migr;
using migr::migrlib::TransferMux;
using migr::migrlib::XferOptions;

namespace {

constexpr std::uint64_t kPayloadBytes = 16ull << 20;
constexpr double kStreamGbps = 25.0;

sim::DurationNs timed_transfer(std::uint32_t streams) {
  sim::EventLoop loop;
  net::Fabric fabric{loop, net::FabricConfig{}, 42};
  (void)fabric.attach_host(1);
  (void)fabric.attach_host(2);
  XferOptions xo;
  xo.streams = streams;
  xo.stream_gbps = kStreamGbps;
  TransferMux mux(loop, fabric, "bench.xfer", 1, 2, xo);
  bool done = false;
  sim::TimeNs done_at = 0;
  // Capture the delivery instant in the callback; run_for() advances now()
  // to the end of its polling window, which would quantize the timing.
  mux.open([&](common::Bytes&&) { done = true; done_at = loop.now(); },
           [](const common::Status&) {});
  common::Bytes payload(kPayloadBytes);
  for (std::size_t i = 0; i < payload.size(); i += 4096) {
    payload[i] = static_cast<std::uint8_t>(i >> 12);
  }
  const sim::TimeNs t0 = loop.now();
  mux.send(std::move(payload));
  while (!done && loop.run_for(sim::msec(100)) > 0) {
  }
  if (!done) {
    std::fprintf(stderr, "transfer did not complete at %u streams\n", streams);
    std::exit(1);
  }
  return done_at - t0;
}

criu::PageSet::Page page_of(proc::VirtAddr addr, std::uint8_t fill) {
  criu::PageSet::Page p;
  p.addr = addr;
  p.data.assign(proc::kPageSize, fill);
  return p;
}

struct SuppressionLeg {
  std::uint64_t raw = 0;
  std::uint64_t encoded = 0;
  bool balance_ok = false;

  double ratio() const {
    return encoded == 0 ? 0.0 : static_cast<double>(raw) / static_cast<double>(encoded);
  }
};

// 1024 zero pages: the kZero marker path.
SuppressionLeg zero_leg() {
  criu::PageDeltaEncoder enc;
  criu::PageSet set;
  for (int i = 0; i < 1024; i++) set.pages.push_back(page_of(0x1000ull * (i + 1), 0));
  const common::Bytes wire = enc.encode(set);
  SuppressionLeg leg;
  leg.raw = set.byte_size();
  leg.encoded = wire.size();
  const criu::PageDeltaStats& st = enc.stats();
  leg.balance_ok = st.bytes_raw == st.bytes_shipped + st.bytes_suppressed &&
                   st.pages_zero == 1024;
  return leg;
}

// Two rounds over the same 256 pages; the second round redirties 16 bytes
// per page — the kDelta XOR-run path against the previous round's content.
SuppressionLeg sparse_leg() {
  criu::PageDeltaEncoder enc;
  criu::PageSet r1;
  for (int i = 0; i < 256; i++) {
    r1.pages.push_back(page_of(0x1000ull * (i + 1), static_cast<std::uint8_t>(i + 1)));
  }
  (void)enc.encode(r1);
  criu::PageSet r2 = r1;
  // Dirty 16 bytes per page with the complement of the fill so every page
  // genuinely changes (a 0x5A fill overwritten with 0x5A would encode kSame).
  for (auto& p : r2.pages) {
    std::memset(p.data.data() + 128, static_cast<int>(p.data[0] ^ 0xFF), 16);
  }
  criu::PageDeltaStats batch;
  const common::Bytes wire = enc.encode(r2, &batch);
  SuppressionLeg leg;
  leg.raw = batch.bytes_raw;
  leg.encoded = wire.size();
  leg.balance_ok = batch.bytes_raw == batch.bytes_shipped + batch.bytes_suppressed &&
                   batch.pages_delta == 256;
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_xfer.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out BENCH_xfer.json]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Transfer mux scale-out: %llu MiB payload, %.0f Gbps/stream\n",
              static_cast<unsigned long long>(kPayloadBytes >> 20), kStreamGbps);
  std::string streams_json;
  sim::DurationNs base_ns = 0;
  double speedup4 = 0;
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const sim::DurationNs t = timed_transfer(n);
    if (n == 1) base_ns = t;
    const double speedup = static_cast<double>(base_ns) / static_cast<double>(t);
    if (n == 4) speedup4 = speedup;
    std::printf("  streams=%u transfer=%9.3f ms speedup=%.2fx\n", n, sim::to_msec(t),
                speedup);
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s{\"n\":%u,\"transfer_ns\":%lld,\"speedup\":%.3f}",
                  streams_json.empty() ? "" : ",", n, static_cast<long long>(t), speedup);
    streams_json += buf;
  }

  const SuppressionLeg zero = zero_leg();
  const SuppressionLeg sparse = sparse_leg();
  std::printf("Suppression: zero %.1fx (%llu -> %llu bytes, balance %s), "
              "sparse %.1fx (%llu -> %llu bytes, balance %s)\n",
              zero.ratio(), static_cast<unsigned long long>(zero.raw),
              static_cast<unsigned long long>(zero.encoded),
              zero.balance_ok ? "ok" : "BROKEN", sparse.ratio(),
              static_cast<unsigned long long>(sparse.raw),
              static_cast<unsigned long long>(sparse.encoded),
              sparse.balance_ok ? "ok" : "BROKEN");

  char buf[512];
  std::string json = "{\"kind\":\"bench_xfer\",\"version\":1";
  std::snprintf(buf, sizeof buf,
                ",\"payload_bytes\":%llu,\"stream_gbps\":%.1f,\"streams\":[%s]",
                static_cast<unsigned long long>(kPayloadBytes), kStreamGbps,
                streams_json.c_str());
  json += buf;
  std::snprintf(buf, sizeof buf,
                ",\"suppression\":{\"zero\":{\"raw_bytes\":%llu,\"encoded_bytes\":%llu"
                ",\"ratio\":%.2f,\"balance_ok\":%s},\"sparse\":{\"raw_bytes\":%llu"
                ",\"encoded_bytes\":%llu,\"ratio\":%.2f,\"balance_ok\":%s}}}",
                static_cast<unsigned long long>(zero.raw),
                static_cast<unsigned long long>(zero.encoded), zero.ratio(),
                zero.balance_ok ? "true" : "false",
                static_cast<unsigned long long>(sparse.raw),
                static_cast<unsigned long long>(sparse.encoded), sparse.ratio(),
                sparse.balance_ok ? "true" : "false");
  json += buf;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("written to %s\n", out_path.c_str());

  int rc = 0;
  if (speedup4 < 1.5) {
    std::fprintf(stderr, "!! 4-stream speedup %.2fx below the 1.5x gate\n", speedup4);
    rc = 1;
  }
  if (zero.ratio() < 5.0) {
    std::fprintf(stderr, "!! zero-page suppression %.2fx below the 5x gate\n",
                 zero.ratio());
    rc = 1;
  }
  if (!zero.balance_ok || !sparse.balance_ok) {
    std::fprintf(stderr, "!! suppression accounting out of balance\n");
    rc = 1;
  }
  return rc;
}
