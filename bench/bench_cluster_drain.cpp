// Fleet drain sweep: evacuate one host of an 8-host fleet at fleet
// concurrency 1/2/4/8 and report the control-plane numbers that matter for
// maintenance windows — drain makespan and the per-migration service
// blackout distribution (p50/p99), plus aborts/retries and the peak egress
// observed on the drained host's port.
//
//   build/bench/bench_cluster_drain
//
// Artifact mode: any of --trace/--timeseries/--record/--loss/--seed/--conc
// switches the binary to a single instrumented drain that writes the named
// observability artifacts instead of the sweep — the CI blackout-anatomy
// stage and EXPERIMENTS.md recipes drive it this way:
//
//   bench_cluster_drain --loss 0.01 --seed 11 --conc 4 \
//       --trace drain.trace.json --timeseries drain.ts.csv --record drain.cap.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "cluster/drain.hpp"
#include "fault/fault.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/sli.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

using namespace migr;
using namespace migr::cluster;

namespace {

struct SweepRow {
  std::uint32_t concurrency = 0;
  DrainReport report;
  double peak_gbps = 0;
};

SweepRow run_drain(std::uint32_t concurrency, std::uint64_t seed = 42, double loss = 0.0,
                   bool traced = false, obs::TimeSeriesSampler* sampler = nullptr,
                   sim::DurationNs sample_interval = sim::usec(250),
                   bool slo_defer = false,
                   migrlib::MigrationMode mode = migrlib::MigrationMode::precopy,
                   std::uint32_t mem_mb = 2, std::uint32_t streams = 1,
                   double stream_gbps = 0.0, bool suppress = false,
                   bool critical_path = false, double ctrl_loss = 0.0,
                   sim::DurationNs restore_base = 0) {
  ClusterConfig cfg;
  cfg.hosts = 8;
  cfg.seed = seed;
  ClusterModel model(cfg);
  if (obs::SliHub::global().enabled()) model.enable_sli(obs::SliHub::global());
  if (traced) obs::Tracer::global().set_clock(&model.loop());
  if (sampler != nullptr) {
    model.loop().schedule_every(sample_interval,
                                [&model, sampler] { sampler->sample(model.loop().now()); });
  }

  // Eight busy guests on host 1, each messaging a partner pinned on one of
  // hosts 2..8 (round-robin): the drain moves real dirty memory under live
  // SEND/RECV traffic.
  TrafficProfile profile;
  profile.send_interval = sim::usec(20);
  profile.msg_bytes = 2048;
  profile.extra_mem_bytes = static_cast<std::uint64_t>(mem_mb) << 20;
  profile.dirty_interval = sim::msec(1);
  for (GuestId g = 0; g < 8; ++g) {
    (void)model.add_guest(1, 100 + g, profile).value();
    (void)model.add_guest(2 + g % 7, 200 + g, profile).value();
    if (!model.connect_guests(100 + g, 200 + g).is_ok()) std::abort();
  }
  model.run_for(sim::msec(5));  // reach steady state before draining

  fault::ScenarioRunner scenario(model.loop(), model.fabric());
  if (loss > 0 || ctrl_loss > 0) {
    fault::FaultPlan plan;
    plan.baseline(loss);
    if (ctrl_loss > 0) plan.ctrl_loss(ctrl_loss);
    scenario.run(plan);
  }

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = concurrency;
  scfg.limits.max_concurrent_per_source = concurrency;
  scfg.limits.max_concurrent_per_dest = concurrency;
  scfg.slo_defer = slo_defer;
  scfg.migration.mode = mode;
  scfg.migration.xfer_streams = streams;
  scfg.migration.xfer_stream_gbps = stream_gbps;
  scfg.migration.suppress_pages = suppress;
  scfg.migration.critical_path = critical_path;
  if (restore_base > 0) scfg.migration.criu_costs.final_restore_base = restore_base;
  MigrationScheduler sched(model, scfg);
  DrainWorkflow drain(model, sched);

  SweepRow row;
  row.concurrency = concurrency;
  row.report = drain.run(1);
  for (const BandwidthSample& s : row.report.egress_gbps) {
    row.peak_gbps = std::max(row.peak_gbps, s.gbps);
  }
  if (model.audit_stuck_qps(sim::msec(10)) != 0) {
    std::printf("!! stuck QPs after drain at concurrency %u\n", concurrency);
  }
  // Close every live SLI window while the model (and its retransmit-counter
  // sources) is still alive; the hub only gets read after this.
  model.run_for(sim::msec(2));  // let post-resume traffic settle -> recovery
  obs::SliHub::global().flush(model.loop().now());
  return row;
}

/// One policy leg's service-quality summary for the policy_compare section.
struct PolicyStats {
  sim::DurationNs makespan = 0;
  sim::DurationNs blackout_p99 = 0;
  std::int64_t brownout_p99_ns = 0;  // p99 over non-idle windows' p99s
  double goodput_loss_bytes = 0;
  std::uint64_t alerts = 0;
  std::uint64_t deferrals = 0;
};

PolicyStats collect_policy_stats(const DrainReport& report) {
  PolicyStats s;
  s.makespan = report.makespan();
  s.blackout_p99 = report.blackout_p99;
  s.alerts = report.slo_alerts;
  s.deferrals = report.slo_deferrals;
  auto& hub = obs::SliHub::global();
  obs::Histogram brownout;
  for (std::uint32_t id : hub.guest_ids()) {
    const obs::GuestSli* g = hub.find(id);
    if (g == nullptr) continue;
    for (const obs::SliWindow& w : g->windows()) {
      if (w.phase != obs::ServicePhase::idle && w.msgs > 0) brownout.record(w.p99_ns);
    }
    const obs::BrownoutAttribution att = hub.attribution(id);
    if (att.valid) s.goodput_loss_bytes += att.goodput_loss_bytes;
  }
  s.brownout_p99_ns = brownout.percentile(99);
  return s;
}

std::string policy_stats_json(const PolicyStats& s) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"makespan_ns\":%lld,\"blackout_p99_ns\":%lld,"
                "\"brownout_p99_ns\":%lld,\"goodput_loss_bytes\":%.1f,"
                "\"slo_alerts\":%llu,\"slo_deferrals\":%llu}",
                static_cast<long long>(s.makespan),
                static_cast<long long>(s.blackout_p99),
                static_cast<long long>(s.brownout_p99_ns), s.goodput_loss_bytes,
                static_cast<unsigned long long>(s.alerts),
                static_cast<unsigned long long>(s.deferrals));
  return buf;
}

struct Options {
  std::string trace_path;
  std::string timeseries_path;
  std::string record_path;
  double loss = 0.0;
  double ctrl_loss = 0.0;  // ctrl-plane message loss (exercises chunk retries)
  std::uint64_t seed = 42;
  std::uint32_t conc = 4;
  bool artifact_mode = false;  // any flag given: single instrumented drain
  std::string slo_spec;        // arm SLI + burn-rate engine + policy compare
  std::string slo_out = "slo_report.json";
  std::string sli_csv;
  migrlib::MigrationMode mode = migrlib::MigrationMode::precopy;
  std::string drain_out;       // drain_report_json artifact path
  std::uint32_t mem_mb = 2;    // per-guest dirty MR size (write-heavy knob)
  // Parallel transfer streams. --streams engages per-stream pacing (25 Gbps
  // default unless --stream-gbps overrides) even at N=1, so single- vs
  // multi-stream legs compare pipelines, not pacing on/off.
  std::uint32_t streams = 1;
  double stream_gbps = -1.0;   // <0 = unset
  bool streams_given = false;
  bool suppress = false;       // zero/delta page suppression in pre-copy
  bool critical_path = false;  // per-migration blackout edge attribution
  std::uint64_t trace_max_events = 0;  // 0 = tracer default capacity
  // CRIU final-restore base cost override (0 = model default). A pre-synced
  // restore target (as in the FT bench) makes the blackout wire-bound, which
  // is what lets loss-driven retry edges show up as the dominant class.
  std::uint32_t restore_ms = 0;

  double effective_gbps() const {
    if (stream_gbps >= 0) return stream_gbps;
    return streams_given ? 25.0 : 0.0;
  }
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      o.trace_path = need_value("--trace");
    } else if (arg == "--timeseries") {
      o.timeseries_path = need_value("--timeseries");
    } else if (arg == "--record") {
      o.record_path = need_value("--record");
    } else if (arg == "--loss") {
      o.loss = std::strtod(need_value("--loss"), nullptr);
    } else if (arg == "--ctrl-loss") {
      o.ctrl_loss = std::strtod(need_value("--ctrl-loss"), nullptr);
    } else if (arg == "--seed") {
      o.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (arg == "--conc") {
      o.conc = static_cast<std::uint32_t>(std::strtoul(need_value("--conc"), nullptr, 10));
    } else if (arg == "--slo") {
      o.slo_spec = need_value("--slo");
    } else if (arg == "--slo-out") {
      o.slo_out = need_value("--slo-out");
    } else if (arg == "--sli-csv") {
      o.sli_csv = need_value("--sli-csv");
    } else if (arg == "--mode") {
      const std::string m = need_value("--mode");
      if (m == "precopy") {
        o.mode = migrlib::MigrationMode::precopy;
      } else if (m == "postcopy") {
        o.mode = migrlib::MigrationMode::postcopy;
      } else {
        std::fprintf(stderr, "--mode must be precopy or postcopy\n");
        std::exit(2);
      }
    } else if (arg == "--drain-out") {
      o.drain_out = need_value("--drain-out");
    } else if (arg == "--mem-mb") {
      o.mem_mb = static_cast<std::uint32_t>(std::strtoul(need_value("--mem-mb"), nullptr, 10));
      if (o.mem_mb == 0) o.mem_mb = 1;
    } else if (arg == "--streams") {
      o.streams = static_cast<std::uint32_t>(std::strtoul(need_value("--streams"), nullptr, 10));
      if (o.streams == 0) o.streams = 1;
      o.streams_given = true;
    } else if (arg == "--stream-gbps") {
      o.stream_gbps = std::strtod(need_value("--stream-gbps"), nullptr);
    } else if (arg == "--suppress") {
      o.suppress = true;
    } else if (arg == "--critical-path") {
      o.critical_path = true;
    } else if (arg == "--trace-max-events") {
      o.trace_max_events =
          std::strtoull(need_value("--trace-max-events"), nullptr, 10);
    } else if (arg == "--restore-ms") {
      o.restore_ms =
          static_cast<std::uint32_t>(std::strtoul(need_value("--restore-ms"), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace OUT.json] [--timeseries OUT.csv|OUT.json]\n"
                   "          [--record OUT.json] [--loss P] [--ctrl-loss P] [--seed S] [--conc N]\n"
                   "          [--slo SPEC] [--slo-out OUT.json] [--sli-csv OUT.csv]\n"
                   "          [--mode precopy|postcopy] [--drain-out OUT.json] [--mem-mb N]\n"
                   "          [--streams N] [--stream-gbps G] [--suppress]\n"
                   "          [--critical-path] [--trace-max-events N] [--restore-ms N]\n",
                   argv[0]);
      std::exit(2);
    }
    o.artifact_mode = true;
  }
  return o;
}

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

int run_artifact_mode(const Options& opt) {
  auto& hub = obs::SliHub::global();
  std::vector<obs::SloRule> slo_rules;
  std::unique_ptr<obs::SloEngine> engine;
  const bool sli_on = !opt.slo_spec.empty() || !opt.sli_csv.empty();
  if (sli_on) hub.set_enabled(true);
  if (!opt.slo_spec.empty()) {
    std::string err;
    if (!obs::parse_slo_spec(opt.slo_spec, &slo_rules, &err)) {
      std::fprintf(stderr, "bad --slo spec: %s\n", err.c_str());
      return 2;
    }
  }

  // Baseline leg of the policy comparison: same fleet/seed/loss, scheduler
  // blind to SLO burn. Runs before any trace/recorder arming so the main
  // leg's artifacts cover only the main leg.
  PolicyStats base{};
  if (!slo_rules.empty()) {
    hub.clear();
    engine = std::make_unique<obs::SloEngine>(slo_rules);
    hub.set_slo_engine(engine.get());
    const SweepRow b = run_drain(opt.conc, opt.seed, opt.loss, false, nullptr,
                                 sim::usec(250), false, opt.mode, opt.mem_mb,
                                 opt.streams, opt.effective_gbps(), opt.suppress,
                                 /*critical_path=*/false, opt.ctrl_loss);
    base = collect_policy_stats(b.report);
    hub.set_slo_engine(nullptr);
  }

  const bool traced = !opt.trace_path.empty();
  if (traced) {
    auto& tracer = obs::Tracer::global();
    tracer.set_enabled(true);
    tracer.set_flush_path(opt.trace_path);
    if (opt.trace_max_events > 0) {
      // Bounded-memory tracing: cap the ring and spill full batches to the
      // trace file instead of evicting (long drains keep every event).
      tracer.set_capacity(static_cast<std::size_t>(opt.trace_max_events));
      if (auto st = tracer.set_incremental_path(opt.trace_path); !st.is_ok()) {
        std::fprintf(stderr, "cannot open trace spill file: %s\n",
                     st.to_string().c_str());
        return 1;
      }
    }
  }
  if (!opt.record_path.empty()) obs::FlightRecorder::global().set_enabled(true);
  obs::TimeSeriesSampler sampler;
  obs::TimeSeriesSampler* sp = opt.timeseries_path.empty() ? nullptr : &sampler;

  if (sli_on) hub.clear();
  if (!slo_rules.empty()) {
    engine = std::make_unique<obs::SloEngine>(slo_rules);
    hub.set_slo_engine(engine.get());
  }
  const SweepRow row = run_drain(opt.conc, opt.seed, opt.loss, traced, sp, sim::usec(250),
                                 /*slo_defer=*/!slo_rules.empty(), opt.mode, opt.mem_mb,
                                 opt.streams, opt.effective_gbps(), opt.suppress,
                                 opt.critical_path, opt.ctrl_loss,
                                 sim::msec(opt.restore_ms));
  std::fputs(format_drain_report(row.report).c_str(), stdout);
  if (!opt.drain_out.empty()) {
    char scen[160];
    std::snprintf(scen, sizeof scen,
                  "bench_cluster_drain conc=%u loss=%.3f seed=%llu mem_mb=%u", opt.conc,
                  opt.loss, static_cast<unsigned long long>(opt.seed), opt.mem_mb);
    const std::string json =
        drain_report_json(row.report, migrlib::migration_mode_name(opt.mode), scen);
    if (!write_text(opt.drain_out, json)) return 1;
    std::printf("drain report (%s): written to %s\n",
                migrlib::migration_mode_name(opt.mode), opt.drain_out.c_str());
  }
  for (const PhaseAttribution& a : row.report.phase_rollup) {
    std::printf("anatomy: %-24s worst_of=%2llu total=%8.3f ms max=%8.3f ms\n",
                a.phase.c_str(), static_cast<unsigned long long>(a.worst_count),
                sim::to_msec(a.total), sim::to_msec(a.max));
  }
  if (row.report.cp_migrations > 0) {
    std::printf("critical path: dominant=%s across %llu migration(s)\n",
                row.report.cp_dominant.empty() ? "none" : row.report.cp_dominant.c_str(),
                static_cast<unsigned long long>(row.report.cp_migrations));
  }

  int rc = 0;
  if (traced) {
    auto& tracer = obs::Tracer::global();
    if (auto st = tracer.write_chrome_json(opt.trace_path); !st.is_ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n", st.to_string().c_str());
      rc = 1;
    }
    tracer.set_clock(nullptr);
  }
  if (!opt.timeseries_path.empty()) {
    if (auto st = sampler.write(opt.timeseries_path); !st.is_ok()) {
      std::fprintf(stderr, "cannot write timeseries: %s\n", st.to_string().c_str());
      rc = 1;
    }
  }
  if (!opt.record_path.empty()) {
    auto& rec = obs::FlightRecorder::global();
    if (auto st = rec.write_json(opt.record_path); !st.is_ok()) {
      std::fprintf(stderr, "cannot write capture: %s\n", st.to_string().c_str());
      rc = 1;
    }
    std::printf("flight recorder: %llu packet(s) seen, %llu dump(s)\n",
                static_cast<unsigned long long>(rec.total_recorded()),
                static_cast<unsigned long long>(rec.dumps_triggered()));
  }
  if (!opt.slo_spec.empty()) {
    const PolicyStats defer = collect_policy_stats(row.report);
    std::printf("slo policy: baseline brownout_p99=%.1f us alerts=%llu | "
                "slo_defer brownout_p99=%.1f us alerts=%llu deferrals=%llu\n",
                static_cast<double>(base.brownout_p99_ns) / 1000.0,
                static_cast<unsigned long long>(base.alerts),
                static_cast<double>(defer.brownout_p99_ns) / 1000.0,
                static_cast<unsigned long long>(defer.alerts),
                static_cast<unsigned long long>(defer.deferrals));
    char scen[160];
    std::snprintf(scen, sizeof scen, "bench_cluster_drain conc=%u loss=%.3f seed=%llu",
                  opt.conc, opt.loss, static_cast<unsigned long long>(opt.seed));
    const std::string extra = "\"policy_compare\":{\"baseline\":" +
                              policy_stats_json(base) +
                              ",\"slo_defer\":" + policy_stats_json(defer) + "}";
    if (!write_text(opt.slo_out, obs::export_slo_json(hub, engine.get(), scen, extra))) {
      rc = 1;
    } else {
      std::printf("slo report: %zu alert(s), written to %s\n",
                  engine ? engine->alerts().size() : 0, opt.slo_out.c_str());
    }
  }
  if (!opt.sli_csv.empty() && !write_text(opt.sli_csv, hub.export_csv())) rc = 1;
  hub.set_slo_engine(nullptr);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.artifact_mode) return run_artifact_mode(opt);
  bench::print_header(
      "Fleet drain sweep — 8 hosts, 8 guests evacuated, concurrency 1/2/4/8");
  bench::print_row_header({"conc", "makespan_ms", "blk_p50_ms", "blk_p99_ms", "blk_max_ms",
                           "retries", "failed", "peak_gbps"});
  for (std::uint32_t conc : {1u, 2u, 4u, 8u}) {
    const SweepRow row = run_drain(conc);
    std::printf("%16u%16.2f%16.3f%16.3f%16.3f%16llu%16llu%16.1f\n", row.concurrency,
                sim::to_msec(row.report.makespan()), sim::to_msec(row.report.blackout_p50),
                sim::to_msec(row.report.blackout_p99),
                sim::to_msec(row.report.blackout_max),
                static_cast<unsigned long long>(row.report.retries),
                static_cast<unsigned long long>(row.report.failed), row.peak_gbps);
    if (!row.report.ok) {
      std::printf("  !! drain incomplete: %s\n", row.report.error.c_str());
    }
  }
  bench::print_registry_section("cluster.");
  return 0;
}
