// Fleet drain sweep: evacuate one host of an 8-host fleet at fleet
// concurrency 1/2/4/8 and report the control-plane numbers that matter for
// maintenance windows — drain makespan and the per-migration service
// blackout distribution (p50/p99), plus aborts/retries and the peak egress
// observed on the drained host's port.
//
//   build/bench/bench_cluster_drain
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/drain.hpp"

using namespace migr;
using namespace migr::cluster;

namespace {

struct SweepRow {
  std::uint32_t concurrency = 0;
  DrainReport report;
  double peak_gbps = 0;
};

SweepRow run_drain(std::uint32_t concurrency) {
  ClusterConfig cfg;
  cfg.hosts = 8;
  cfg.seed = 42;
  ClusterModel model(cfg);

  // Eight busy guests on host 1, each messaging a partner pinned on one of
  // hosts 2..8 (round-robin): the drain moves real dirty memory under live
  // SEND/RECV traffic.
  TrafficProfile profile;
  profile.send_interval = sim::usec(20);
  profile.msg_bytes = 2048;
  profile.extra_mem_bytes = 2 << 20;
  profile.dirty_interval = sim::msec(1);
  for (GuestId g = 0; g < 8; ++g) {
    (void)model.add_guest(1, 100 + g, profile).value();
    (void)model.add_guest(2 + g % 7, 200 + g, profile).value();
    if (!model.connect_guests(100 + g, 200 + g).is_ok()) std::abort();
  }
  model.run_for(sim::msec(5));  // reach steady state before draining

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = concurrency;
  scfg.limits.max_concurrent_per_source = concurrency;
  scfg.limits.max_concurrent_per_dest = concurrency;
  MigrationScheduler sched(model, scfg);
  DrainWorkflow drain(model, sched);

  SweepRow row;
  row.concurrency = concurrency;
  row.report = drain.run(1);
  for (const BandwidthSample& s : row.report.egress_gbps) {
    row.peak_gbps = std::max(row.peak_gbps, s.gbps);
  }
  if (model.audit_stuck_qps(sim::msec(10)) != 0) {
    std::printf("!! stuck QPs after drain at concurrency %u\n", concurrency);
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Fleet drain sweep — 8 hosts, 8 guests evacuated, concurrency 1/2/4/8");
  bench::print_row_header({"conc", "makespan_ms", "blk_p50_ms", "blk_p99_ms", "blk_max_ms",
                           "retries", "failed", "peak_gbps"});
  for (std::uint32_t conc : {1u, 2u, 4u, 8u}) {
    const SweepRow row = run_drain(conc);
    std::printf("%16u%16.2f%16.3f%16.3f%16.3f%16llu%16llu%16.1f\n", row.concurrency,
                sim::to_msec(row.report.makespan()), sim::to_msec(row.report.blackout_p50),
                sim::to_msec(row.report.blackout_p99),
                sim::to_msec(row.report.blackout_max),
                static_cast<unsigned long long>(row.report.retries),
                static_cast<unsigned long long>(row.report.failed), row.peak_gbps);
    if (!row.report.ok) {
      std::printf("  !! drain incomplete: %s\n", row.report.error.c_str());
    }
  }
  bench::print_registry_section("cluster.");
  return 0;
}
