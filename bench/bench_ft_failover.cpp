// FT failover vs the Fig. 6 recovery strategies.
//
// Fig. 6 compared maintenance strategies (live migration vs Hadoop-native
// failover) by job completion time. This harness extends the comparison to
// unplanned node failure and measures the *service blackout* of three
// recovery paths on the same seeded 8-host scenario:
//
//   * migration  — planned evacuation with MigrRDMA live migration (the
//                  lower bound: the "failure" is known in advance).
//   * log-replay — Hadoop-native failover, modeled from measured pieces:
//                  heartbeat detection (measured) + a cold full-image
//                  resync over the same fabric (measured: the FT leg's
//                  full-sync wall time) + the log-replay recovery constant
//                  Fig. 6 charges mini-Hadoop (15 s). Clearly labeled as a
//                  model, not a run.
//   * FT         — continuous protection (micro-checkpoint epochs + output
//                  commit); kill the primary mid-traffic and measure the
//                  promotion blackout end to end.
//
// The FT leg asserts the output-commit invariant the way ft_test does: the
// traffic source's sequence counter lives in guest memory, so any
// uncommitted message that leaked before the kill reappears as a duplicate
// sequence number after promotion. A duplicate fails the bench.
//
// Artifacts:
//   --ft-out OUT.json     versioned ft_report of the FT leg (validate with
//                         tools/validate_artifacts.py --ft)
//   --bench-out OUT.json  ft_bench summary (epoch commit latency, output-
//                         commit tax, blackout per strategy)
//   --critical-path       attribute the failover blackout to edge classes;
//                         the ft_report gains a critical_path block
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ft/ft.hpp"
#include "obs/histogram.hpp"

namespace migr::bench {
namespace {

using migrlib::MigratableApp;

constexpr GuestId kProtectedGuest = 100;
constexpr GuestId kPartnerGuest = 200;
constexpr net::HostId kPrimaryHost = 1;
constexpr net::HostId kStandbyHost = 2;
constexpr net::HostId kPartnerHost = 3;
constexpr std::uint32_t kHosts = 8;

struct Options {
  std::uint64_t seed = 42;
  double loss = 0.0;
  sim::DurationNs kill_after = sim::msec(25);
  std::string ft_out;
  std::string bench_out;
  bool critical_path = false;
};

// Sequence-numbered traffic whose counter lives in guest memory: it
// checkpoints with the epochs and rolls back on promotion, so a leaked
// uncommitted message surfaces as a duplicate at the receiver (see
// tests/ft_test.cpp for the full argument).
class SeqTraffic : public MigratableApp {
 public:
  SeqTraffic(apps::MsgNode& node, GuestId peer, sim::DurationNs interval)
      : node_(&node), peer_(peer), interval_(interval) {}

  void start(proc::SimProcess& p) {
    proc_ = &p;
    seq_addr_ = p.mem().mmap(proc::kPageSize, "seq_counter").value();
    write_seq(0);
    spawn();
  }

  void on_migrated(proc::SimProcess& new_proc) override {
    node_->on_migrated(new_proc);
    proc_ = &new_proc;
    task_.cancel();
    spawn();
  }

 private:
  void spawn() {
    task_ = proc_->spawn_poller(interval_, [this] { tick(); });
  }

  void tick() {
    std::vector<std::uint8_t> raw(8);
    if (!proc_->mem().read(seq_addr_, raw).is_ok()) return;
    common::ByteReader r{raw};
    const std::uint64_t seq = r.u64().value();
    common::ByteWriter w;
    w.u64(seq);
    if (node_->send(peer_, w.data()).is_ok()) write_seq(seq + 1);
  }

  void write_seq(std::uint64_t v) {
    common::ByteWriter w;
    w.u64(v);
    (void)proc_->mem().write(seq_addr_, w.data());
  }

  apps::MsgNode* node_;
  GuestId peer_;
  sim::DurationNs interval_;
  proc::SimProcess* proc_ = nullptr;
  proc::VirtAddr seq_addr_ = 0;
  sim::EventHandle task_;
};

// The seeded 8-host scenario both legs share: the guest under test on host
// 1 streams sequence numbers to a partner on host 3 (host 2 is the standby
// / migration target), and three background pairs on hosts 4..8 keep the
// fabric busy so neither leg runs on an idle network.
class Scenario {
 public:
  Scenario(std::uint64_t seed, double loss) : world_({}, seed) {
    if (loss > 0) {
      net::Faults f;
      f.data_loss_prob = loss;
      world_.fabric().set_faults(f);
    }
    for (net::HostId h = 1; h <= kHosts; ++h) {
      devices_[h - 1] = &world_.add_device(h);
      runtimes_[h - 1] =
          std::make_unique<MigrRdmaRuntime>(directory_, *devices_[h - 1], world_.fabric());
    }
    primary_proc_ = &world_.add_process("primary");
    partner_proc_ = &world_.add_process("partner");
    backup_proc_ = &world_.add_process("backup");
    a_ = std::make_unique<apps::MsgNode>(rt(kPrimaryHost), *primary_proc_, kProtectedGuest);
    b_ = std::make_unique<apps::MsgNode>(rt(kPartnerHost), *partner_proc_, kPartnerGuest);
    if (!apps::MsgNode::connect(*a_, *b_).is_ok()) std::exit(1);
    a_->start();
    b_->start();
    b_->set_handler([this](GuestId, const common::Bytes& payload) {
      common::ByteReader r{payload};
      auto s = r.u64();
      if (s.is_ok()) received_.push_back(s.value());
    });
    traffic_ = std::make_unique<SeqTraffic>(*a_, kPartnerGuest, sim::usec(200));
    traffic_->start(*primary_proc_);

    // Background load: (4,5), (6,7), (8,4).
    const net::HostId pairs[][2] = {{4, 5}, {6, 7}, {8, 4}};
    GuestId next_id = 300;
    for (const auto& p : pairs) {
      auto& lp = world_.add_process("bg");
      auto& rp = world_.add_process("bg");
      auto l = std::make_unique<apps::MsgNode>(rt(p[0]), lp, next_id++);
      auto r = std::make_unique<apps::MsgNode>(rt(p[1]), rp, next_id++);
      if (!apps::MsgNode::connect(*l, *r).is_ok()) std::exit(1);
      l->start();
      r->start();
      apps::MsgNode* lraw = l.get();
      const GuestId rid = r->id();
      bg_tasks_.push_back(lp.spawn_poller(sim::usec(150), [lraw, rid] {
        common::Bytes payload(64, 0xb6);
        (void)lraw->send(rid, payload);
      }));
      bg_.push_back(std::move(l));
      bg_.push_back(std::move(r));
    }
  }

  MigrRdmaRuntime& rt(net::HostId h) { return *runtimes_[h - 1]; }
  void run_for(sim::DurationNs d) { world_.loop().run_until(world_.loop().now() + d); }

  rnic::World world_;
  GuestDirectory directory_;
  rnic::Device* devices_[kHosts] = {};
  std::unique_ptr<MigrRdmaRuntime> runtimes_[kHosts];
  proc::SimProcess* primary_proc_ = nullptr;
  proc::SimProcess* partner_proc_ = nullptr;
  proc::SimProcess* backup_proc_ = nullptr;
  std::unique_ptr<apps::MsgNode> a_;
  std::unique_ptr<apps::MsgNode> b_;
  std::unique_ptr<SeqTraffic> traffic_;
  std::vector<std::unique_ptr<apps::MsgNode>> bg_;
  std::vector<sim::EventHandle> bg_tasks_;
  std::vector<std::uint64_t> received_;
};

ft::FtOptions ft_options() {
  ft::FtOptions o;
  o.criu_costs.freeze = sim::usec(50);
  o.criu_costs.dump_base = sim::usec(300);
  o.criu_costs.final_restore_base = sim::msec(2);
  o.epoch_interval = sim::msec(1);
  o.heartbeat_interval = sim::msec(1);
  return o;
}

struct FtLeg {
  bool ok = false;
  std::string error;
  ft::FtReport report;
  std::string report_json;
  sim::DurationNs full_sync_wall = 0;  // protect -> full sync committed
  std::int64_t epoch_commit_p50 = 0;
  std::int64_t epoch_commit_p99 = 0;
  std::uint64_t duplicate_seqs = 0;  // output-commit violations at the receiver
  std::uint64_t lost_seqs = 0;       // wire-level in-flight loss at the kill
};

FtLeg run_ft_leg(const Options& opt) {
  FtLeg leg;
  Scenario s(opt.seed, opt.loss);
  ft::FtOptions fo = ft_options();
  fo.critical_path = opt.critical_path;
  ft::FtController ctrl(s.world_.loop(), s.world_.fabric(), s.directory_, fo);
  bool ready = false, ready_ok = false, done = false;
  auto st = ctrl.protect(
      kProtectedGuest, kStandbyHost, *s.backup_proc_, s.traffic_.get(), s.a_.get(),
      [&](const common::Status& rst) {
        ready = true;
        ready_ok = rst.is_ok();
      },
      [&](const ft::FtReport& r) {
        done = true;
        leg.report = r;
      });
  if (!st.is_ok()) {
    leg.error = st.to_string();
    return leg;
  }
  const sim::TimeNs protect_deadline = s.world_.loop().now() + sim::sec(2);
  while (!ready && s.world_.loop().now() < protect_deadline) s.run_for(sim::usec(100));
  if (!ready_ok) {
    leg.error = "protection never became live";
    return leg;
  }
  s.run_for(opt.kill_after);
  ctrl.kill_primary();
  const sim::TimeNs done_deadline = s.world_.loop().now() + sim::sec(2);
  while (!done && s.world_.loop().now() < done_deadline) s.run_for(sim::usec(100));
  if (!done) {
    leg.error = "failover never completed";
    return leg;
  }
  s.run_for(sim::msec(30));  // post-promotion delivery window

  leg.report_json = leg.report.json();
  leg.full_sync_wall = leg.report.protected_at - leg.report.protect_start;
  obs::Histogram commit_lat;
  for (const auto& e : leg.report.epochs) {
    if (e.epoch >= 1 && e.committed_at != 0) commit_lat.record(e.commit_latency());
  }
  leg.epoch_commit_p50 = commit_lat.percentile(50);
  leg.epoch_commit_p99 = commit_lat.percentile(99);

  for (std::size_t i = 1; i < s.received_.size(); ++i) {
    if (s.received_[i] <= s.received_[i - 1]) leg.duplicate_seqs++;
    if (s.received_[i] > s.received_[i - 1] + 1) {
      leg.lost_seqs += s.received_[i] - s.received_[i - 1] - 1;
    }
  }
  if (!s.received_.empty()) leg.lost_seqs += s.received_.front();
  leg.ok = leg.report.ok && leg.report.failed_over && !s.received_.empty();
  if (!leg.ok && leg.error.empty()) leg.error = leg.report.error;
  return leg;
}

MigrationReport run_migration_leg(const Options& opt) {
  Scenario s(opt.seed, opt.loss);
  s.run_for(opt.kill_after);
  // Same CRIU cost model as the FT leg, so the comparison isolates the
  // recovery strategy rather than the checkpoint engine configuration.
  MigrationOptions mopts;
  mopts.criu_costs = ft_options().criu_costs;
  MigrationController ctl(s.world_.loop(), s.world_.fabric(), s.directory_, mopts);
  MigrationReport out;
  bool done = false;
  auto st = ctl.start(kProtectedGuest, kStandbyHost, *s.backup_proc_, s.traffic_.get(),
                      [&](const MigrationReport& r) {
                        out = r;
                        done = true;
                      });
  if (!st.is_ok()) {
    out.ok = false;
    out.error = st.to_string();
    return out;
  }
  const sim::TimeNs deadline = s.world_.loop().now() + sim::sec(30);
  while (!done && s.world_.loop().now() < deadline) s.run_for(sim::msec(1));
  return out;
}

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      o.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (arg == "--loss") {
      o.loss = std::strtod(need_value("--loss"), nullptr);
    } else if (arg == "--kill-after-ms") {
      o.kill_after = sim::msec(std::strtol(need_value("--kill-after-ms"), nullptr, 10));
    } else if (arg == "--ft-out") {
      o.ft_out = need_value("--ft-out");
    } else if (arg == "--bench-out") {
      o.bench_out = need_value("--bench-out");
    } else if (arg == "--critical-path") {
      o.critical_path = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed S] [--loss P] [--kill-after-ms N]\n"
                   "          [--ft-out OUT.json] [--bench-out OUT.json] [--critical-path]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return o;
}

int run(const Options& opt) {
  print_header("FT failover vs migration vs log-replay failover — 8 hosts, seed " +
               std::to_string(opt.seed) +
               (opt.loss > 0 ? ", loss " + std::to_string(opt.loss) : std::string()));

  const FtLeg ft = run_ft_leg(opt);
  if (!ft.ok) {
    std::fprintf(stderr, "FT leg failed: %s\n", ft.error.c_str());
    return 1;
  }
  const MigrationReport mig = run_migration_leg(opt);
  if (!mig.ok) {
    std::fprintf(stderr, "migration leg failed: %s\n", mig.error.c_str());
    return 1;
  }

  // Log-replay baseline, modeled from measured pieces of this scenario:
  // the same heartbeat detection the FT watchdog needed, a cold full-image
  // resync (the FT leg's measured full-sync wall time on this fabric), and
  // Fig. 6's mini-Hadoop log-replay recovery constant.
  const sim::DurationNs detect = ft.report.detected_at - ft.report.killed_at;
  const sim::DurationNs log_replay_recovery = sim::sec(15);
  const sim::DurationNs log_replay = detect + ft.full_sync_wall + log_replay_recovery;
  const sim::DurationNs mig_blackout = mig.resume_at - mig.freeze_at;
  const sim::DurationNs ft_blackout = ft.report.failover_blackout();

  print_row_header({"strategy", "blackout (ms)", "planned", "measured"});
  std::printf("%16s%16.3f%16s%16s\n", "migration", sim::to_msec(mig_blackout), "yes", "yes");
  std::printf("%16s%16.3f%16s%16s   (detect %.3f + resync %.3f + replay %.0f ms)\n",
              "log-replay", sim::to_msec(log_replay), "no", "modeled",
              sim::to_msec(detect), sim::to_msec(ft.full_sync_wall),
              sim::to_msec(log_replay_recovery));
  std::printf("%16s%16.3f%16s%16s\n", "FT", sim::to_msec(ft_blackout), "no", "yes");

  std::printf("\nFT protection steady state:\n");
  std::printf("  epochs committed      %" PRIu64 " (full sync %" PRIu64
              " KiB, incremental total %" PRIu64 " KiB)\n",
              ft.report.epochs_committed, ft.report.full_sync_bytes >> 10,
              ft.report.epoch_bytes_total >> 10);
  std::printf("  epoch commit latency  p50 %.3f ms  p99 %.3f ms\n",
              sim::to_msec(ft.epoch_commit_p50), sim::to_msec(ft.epoch_commit_p99));
  std::printf("  output-commit tax     release delay p50 %.3f ms  p99 %.3f ms  (%" PRIu64
              " msgs released, %" PRIu64 " dropped at failover)\n",
              sim::to_msec(ft.report.release_delay_p50),
              sim::to_msec(ft.report.release_delay_p99), ft.report.msgs_released,
              ft.report.msgs_dropped);
  std::printf("\nFT failover waterfall (promoted from epoch %" PRIu64 "):\n",
              ft.report.promoted_epoch);
  for (const auto& s : ft.report.waterfall) {
    std::printf("  %-10s %10.3f ms\n", s.name.c_str(), sim::to_msec(s.dur));
  }
  std::printf("\nclient-visible stream: %" PRIu64 " duplicate seq(s), %" PRIu64
              " lost in flight at the kill\n",
              ft.duplicate_seqs, ft.lost_seqs);

  int rc = 0;
  if (ft.duplicate_seqs != 0) {
    std::fprintf(stderr, "FAIL: output-commit invariant violated "
                         "(%" PRIu64 " duplicate sequence numbers)\n",
                 ft.duplicate_seqs);
    rc = 1;
  }
  if (ft_blackout >= log_replay) {
    std::fprintf(stderr, "FAIL: FT blackout %.3f ms not below log-replay %.3f ms\n",
                 sim::to_msec(ft_blackout), sim::to_msec(log_replay));
    rc = 1;
  }

  if (!opt.ft_out.empty()) {
    if (!write_text(opt.ft_out, ft.report_json)) return 1;
    std::printf("ft report: written to %s\n", opt.ft_out.c_str());
  }
  if (!opt.bench_out.empty()) {
    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "{\"kind\":\"ft_bench\",\"version\":1,"
        "\"scenario\":\"bench_ft_failover hosts=%u seed=%" PRIu64 " loss=%.3f\","
        "\"epochs_committed\":%" PRIu64 ","
        "\"epoch_commit_p50_ns\":%" PRId64 ",\"epoch_commit_p99_ns\":%" PRId64 ","
        "\"release_delay_p50_ns\":%" PRId64 ",\"release_delay_p99_ns\":%" PRId64 ","
        "\"msgs_dropped\":%" PRIu64 ",\"duplicate_seqs\":%" PRIu64 ","
        "\"ft_blackout_ns\":%" PRId64 ",\"migration_blackout_ns\":%" PRId64 ","
        "\"log_replay_blackout_ns\":%" PRId64 "}\n",
        kHosts, opt.seed, opt.loss, ft.report.epochs_committed, ft.epoch_commit_p50,
        ft.epoch_commit_p99, ft.report.release_delay_p50, ft.report.release_delay_p99,
        ft.report.msgs_dropped, ft.duplicate_seqs,
        static_cast<std::int64_t>(ft_blackout), static_cast<std::int64_t>(mig_blackout),
        static_cast<std::int64_t>(log_replay));
    if (!write_text(opt.bench_out, buf)) return 1;
    std::printf("bench summary: written to %s\n", opt.bench_out.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace migr::bench

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  return migr::bench::run(migr::bench::parse(argc, argv));
}
