// Figure 5 — Performance implication during live migration.
//
// Replicates §5.5.2: a container running perftest transmits 2 MiB messages
// with one-sided WRITEs through 16 QPs; the partner side samples its NIC's
// byte counters every 5 ms (the mlx5 ethtool-counter method). The container
// is migrated mid-run; the time series shows
//   * the brownout dips during partial restore (control-path pressure on
//     the NIC from pre-establishing connections — the contention Kong et
//     al. reported),
//   * a blackout gap of ~150 ms around stop-and-copy,
//   * full line rate restored afterwards.
// Both the migrate-the-sender and migrate-the-receiver cases run.
#include "bench_util.hpp"

namespace migr::bench {
namespace {

void run_case(bool migrate_sender) {
  Cluster cluster(3);
  PerftestConfig cfg;
  cfg.num_qps = 16;
  cfg.msg_size = 2 * 1024 * 1024;
  cfg.queue_depth = 4;  // 2 MiB messages: a shallow queue already saturates
  PerftestPeer sender(cluster.runtime(1), cluster.world().add_process("tx"), 100,
                      PerftestPeer::Role::sender, cfg);
  PerftestPeer receiver(cluster.runtime(3), cluster.world().add_process("rx"), 200,
                        PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    auto st = PerftestPeer::connect_pair(sender, i, receiver, i);
    if (!st.is_ok()) std::exit(1);
  }
  // The "partner" is whichever side is NOT migrated; sample its port.
  apps::ThroughputSampler sampler(cluster.loop(), cluster.device(migrate_sender ? 3 : 1),
                                  sim::msec(5));
  sender.start();
  receiver.start();
  sampler.start();

  cluster.run_for(sim::msec(300));  // steady state
  auto report =
      cluster.migrate(migrate_sender ? 100 : 200, 2, migrate_sender
                                                         ? static_cast<migrlib::MigratableApp*>(&sender)
                                                         : &receiver);
  if (!report.ok) {
    std::fprintf(stderr, "migration failed: %s\n", report.error.c_str());
    std::exit(1);
  }
  cluster.run_for(sim::msec(400));
  sampler.stop();

  print_header(std::string("Fig 5(") + (migrate_sender ? "a" : "b") + "): migrating the " +
               (migrate_sender ? "sender" : "receiver") +
               " — partner-side throughput (16 QPs, 2 MiB WRITEs)");
  std::printf("migration: suspend@%.1fms freeze@%.1fms resume@%.1fms  "
              "(comm blackout %.1f ms, service blackout %.1f ms, WBS %.1f ms)\n",
              sim::to_msec(report.suspend_at), sim::to_msec(report.freeze_at),
              sim::to_msec(report.resume_at), sim::to_msec(report.comm_blackout()),
              sim::to_msec(report.service_blackout()), sim::to_msec(report.wbs_elapsed));
  std::printf("%12s %12s   (one bar = 5 Gbps)\n", "t (ms)", "Gbps");
  const char* dir = migrate_sender ? "rx" : "tx";
  for (const auto& s : sampler.samples()) {
    const double gbps = migrate_sender ? s.rx_gbps : s.tx_gbps;
    // Print a coarse 20-ms-granularity series to keep the log readable.
    if ((s.at / sim::msec(5)) % 4 != 0) continue;
    std::printf("%12.1f %12.2f   %s|", sim::to_msec(s.at), gbps, dir);
    for (int b = 0; b < static_cast<int>(gbps / 5.0); ++b) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace
}  // namespace migr::bench

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  migr::bench::run_case(/*migrate_sender=*/true);
  migr::bench::run_case(/*migrate_sender=*/false);
  return 0;
}
