// Table 4 — Data-path overhead of the MigrRDMA virtualization layer.
//
// Unlike the figure harnesses (which measure simulated time), this bench
// measures REAL CPU time: the virtualization layer's translation work —
// dense-array vlkey lookup, rkey-cache hit, suspension-flag check, QPN
// translation on poll — is real code executed on the data path, so its cost
// is measured directly with google-benchmark, exactly as the paper samples
// CPU cycles per verb invocation (§5.5.1, 64 B messages, single RC QP).
//
// For each operation (send, recv, write, read) we time the post/poll path
// through the raw verbs context (baseline) and through the MigrRDMA guest
// library (virtualized), then print the overhead. The paper reports
// +4.6-8.3 cycles, i.e. 3-9% per operation; the simulator's baseline path
// is leaner than a real driver's, so the relative overhead is the number to
// compare.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace migr::bench {
namespace {

constexpr std::uint32_t kMsg = 64;

/// A pair of endpoints with both raw-verbs and guest-lib plumbing ready.
struct Harness {
  Harness() : cluster(2) {
    // Guest-lib endpoints.
    ga = cluster.runtime(1).create_guest(cluster.world().add_process("ga"), 100).value();
    gb = cluster.runtime(2).create_guest(cluster.world().add_process("gb"), 200).value();
    gpd_a = ga->alloc_pd().value();
    gcq_a = ga->create_cq(8192).value();
    gpd_b = gb->alloc_pd().value();
    gcq_b = gb->create_cq(8192).value();
    migrlib::GuestQpAttr attr;
    attr.vpd = gpd_a;
    attr.vsend_cq = gcq_a;
    attr.vrecv_cq = gcq_a;
    attr.caps = {8192, 8192};
    gqa = ga->create_qp(attr).value();
    attr.vpd = gpd_b;
    attr.vsend_cq = gcq_b;
    attr.vrecv_cq = gcq_b;
    gqb = gb->create_qp(attr).value();
    (void)ga->connect_qp(gqa, 200, gqb, 11, 22);
    (void)gb->connect_qp(gqb, 100, gqa, 22, 11);
    auto& pa = ga->process();
    auto& pb = gb->process();
    gbuf_a = pa.mem().mmap(1 << 16, "ba").value();
    gmr_a = ga->reg_mr(gpd_a, gbuf_a, 1 << 16, 0xF).value();
    gbuf_b = pb.mem().mmap(1 << 16, "bb").value();
    gmr_b = gb->reg_mr(gpd_b, gbuf_b, 1 << 16, 0xF).value();

    // Raw-verbs endpoints (no MigrRDMA library).
    auto& ra_proc = cluster.world().add_process("ra");
    auto& rb_proc = cluster.world().add_process("rb");
    rctx_a = cluster.device(1).open(ra_proc).value();
    rctx_b = cluster.device(2).open(rb_proc).value();
    rpd_a = rctx_a->alloc_pd().value();
    rcq_a = rctx_a->create_cq(8192).value();
    rpd_b = rctx_b->alloc_pd().value();
    rcq_b = rctx_b->create_cq(8192).value();
    rqa = rctx_a->create_qp({rnic::QpType::rc, rpd_a, rcq_a, rcq_a, 0, {8192, 8192}}).value();
    rqb = rctx_b->create_qp({rnic::QpType::rc, rpd_b, rcq_b, rcq_b, 0, {8192, 8192}}).value();
    (void)rnic::rc_connect(*rctx_a, rqa, *rctx_b, rqb);
    rbuf_a = ra_proc.mem().mmap(1 << 16, "ra").value();
    rmr_a = rctx_a->reg_mr(rpd_a, rbuf_a, 1 << 16, 0xF).value();
    rbuf_b = rb_proc.mem().mmap(1 << 16, "rb").value();
    rmr_b = rctx_b->reg_mr(rpd_b, rbuf_b, 1 << 16, 0xF).value();
  }

  /// Drain everything: run the event loop until idle, then empty both CQs.
  void quiesce() {
    cluster.loop().run_for(sim::msec(5));
    rnic::Cqe c;
    while (ga->poll_cq(gcq_a, {&c, 1}) > 0) {
    }
    while (gb->poll_cq(gcq_b, {&c, 1}) > 0) {
    }
    while (rctx_a->poll_cq(rcq_a, {&c, 1}) > 0) {
    }
    while (rctx_b->poll_cq(rcq_b, {&c, 1}) > 0) {
    }
  }

  Cluster cluster;
  migrlib::GuestContext* ga = nullptr;
  migrlib::GuestContext* gb = nullptr;
  migrlib::VHandle gpd_a = 0, gcq_a = 0, gpd_b = 0, gcq_b = 0;
  migrlib::VQpn gqa = 0, gqb = 0;
  std::uint64_t gbuf_a = 0, gbuf_b = 0;
  migrlib::VMr gmr_a, gmr_b;

  rnic::Context* rctx_a = nullptr;
  rnic::Context* rctx_b = nullptr;
  rnic::Handle rpd_a = 0, rcq_a = 0, rpd_b = 0, rcq_b = 0;
  rnic::Qpn rqa = 0, rqb = 0;
  std::uint64_t rbuf_a = 0, rbuf_b = 0;
  rnic::Mr rmr_a, rmr_b;
};

Harness& harness() {
  static Harness h;
  return h;
}

constexpr int kBatch = 512;

// ---- WRITE ----

void BM_write_raw(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::rdma_write;
      wr.remote_addr = h.rbuf_b;
      wr.rkey = h.rmr_b.rkey;
      wr.sge = {{h.rbuf_a, kMsg, h.rmr_a.lkey}};
      benchmark::DoNotOptimize(h.rctx_a->post_send(h.rqa, std::move(wr)));
    }
    state.PauseTiming();
    h.quiesce();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_write_raw)->Iterations(300);

void BM_write_virt(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::rdma_write;
      wr.remote_addr = h.gbuf_b;
      wr.rkey = h.gmr_b.vrkey;
      wr.sge = {{h.gbuf_a, kMsg, h.gmr_a.vlkey}};
      benchmark::DoNotOptimize(h.ga->post_send(h.gqa, std::move(wr)));
    }
    state.PauseTiming();
    h.quiesce();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_write_virt)->Iterations(300);

// ---- READ ----

void BM_read_raw(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::rdma_read;
      wr.remote_addr = h.rbuf_b;
      wr.rkey = h.rmr_b.rkey;
      wr.sge = {{h.rbuf_a, kMsg, h.rmr_a.lkey}};
      benchmark::DoNotOptimize(h.rctx_a->post_send(h.rqa, std::move(wr)));
    }
    state.PauseTiming();
    h.quiesce();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_read_raw)->Iterations(300);

void BM_read_virt(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::rdma_read;
      wr.remote_addr = h.gbuf_b;
      wr.rkey = h.gmr_b.vrkey;
      wr.sge = {{h.gbuf_a, kMsg, h.gmr_a.vlkey}};
      benchmark::DoNotOptimize(h.ga->post_send(h.gqa, std::move(wr)));
    }
    state.PauseTiming();
    h.quiesce();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_read_virt)->Iterations(300);

// ---- SEND (with matching RECVs pre-posted) ----

void BM_send_raw(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < kBatch; ++i) {
      rnic::RecvWr rwr;
      rwr.sge = {{h.rbuf_b, kMsg, h.rmr_b.lkey}};
      (void)h.rctx_b->post_recv(h.rqb, std::move(rwr));
    }
    state.ResumeTiming();
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::send;
      wr.sge = {{h.rbuf_a, kMsg, h.rmr_a.lkey}};
      benchmark::DoNotOptimize(h.rctx_a->post_send(h.rqa, std::move(wr)));
    }
    state.PauseTiming();
    h.quiesce();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_send_raw)->Iterations(300);

void BM_send_virt(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < kBatch; ++i) {
      rnic::RecvWr rwr;
      rwr.sge = {{h.gbuf_b, kMsg, h.gmr_b.vlkey}};
      (void)h.gb->post_recv(h.gqb, std::move(rwr));
    }
    state.ResumeTiming();
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::send;
      wr.sge = {{h.gbuf_a, kMsg, h.gmr_a.vlkey}};
      benchmark::DoNotOptimize(h.ga->post_send(h.gqa, std::move(wr)));
    }
    state.PauseTiming();
    h.quiesce();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_send_virt)->Iterations(300);

// ---- RECV (post_recv path) ----

void BM_recv_raw(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rnic::RecvWr rwr;
      rwr.sge = {{h.rbuf_b, kMsg, h.rmr_b.lkey}};
      benchmark::DoNotOptimize(h.rctx_b->post_recv(h.rqb, std::move(rwr)));
    }
    state.PauseTiming();
    // Drain the RQ by completing sends into it.
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::send;
      wr.sge = {{h.rbuf_a, kMsg, h.rmr_a.lkey}};
      (void)h.rctx_a->post_send(h.rqa, std::move(wr));
    }
    h.quiesce();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_recv_raw)->Iterations(300);

void BM_recv_virt(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rnic::RecvWr rwr;
      rwr.sge = {{h.gbuf_b, kMsg, h.gmr_b.vlkey}};
      benchmark::DoNotOptimize(h.gb->post_recv(h.gqb, std::move(rwr)));
    }
    state.PauseTiming();
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::send;
      wr.sge = {{h.gbuf_a, kMsg, h.gmr_a.vlkey}};
      (void)h.ga->post_send(h.gqa, std::move(wr));
    }
    h.quiesce();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_recv_virt)->Iterations(300);

// ---- poll_cq translation path ----

void BM_poll_raw(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::rdma_write;
      wr.remote_addr = h.rbuf_b;
      wr.rkey = h.rmr_b.rkey;
      wr.sge = {{h.rbuf_a, kMsg, h.rmr_a.lkey}};
      (void)h.rctx_a->post_send(h.rqa, std::move(wr));
    }
    h.cluster.loop().run_for(sim::msec(5));
    state.ResumeTiming();
    rnic::Cqe cqe;
    int drained = 0;
    while (h.rctx_a->poll_cq(h.rcq_a, {&cqe, 1}) > 0) drained++;
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_poll_raw)->Iterations(300);

void BM_poll_virt(benchmark::State& state) {
  auto& h = harness();
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < kBatch; ++i) {
      rnic::SendWr wr;
      wr.opcode = rnic::WrOpcode::rdma_write;
      wr.remote_addr = h.gbuf_b;
      wr.rkey = h.gmr_b.vrkey;
      wr.sge = {{h.gbuf_a, kMsg, h.gmr_a.vlkey}};
      (void)h.ga->post_send(h.gqa, std::move(wr));
    }
    h.cluster.loop().run_for(sim::msec(5));
    state.ResumeTiming();
    rnic::Cqe cqe;
    int drained = 0;
    while (h.ga->poll_cq(h.gcq_a, {&cqe, 1}) > 0) drained++;
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_poll_virt)->Iterations(300);

}  // namespace
}  // namespace migr::bench

int main(int argc, char** argv) {
  std::printf(
      "Table 4: data-path virtualization overhead (REAL CPU time).\n"
      "Compare *_virt vs *_raw items/sec: the delta is the MigrRDMA\n"
      "translation layer (paper: +4.6-8.3 cycles, 3-9%% per op).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
