// §3.3/§6 ablation — virtual-key translation data structure (REAL CPU time).
//
// MigrRDMA assigns virtual lkeys densely and translates with an array
// index. LubeRDMA (per §6) keeps a linked list with move-to-front; the
// paper argues the list "suffers from performance declines if the
// application accesses different MRs". This bench measures the translation
// step itself for three structures under two access patterns:
//   * same-MR  : every post hits one MR (move-to-front's best case)
//   * round-robin over 64 MRs ("below one hundred" MRs, §3.3's sizing)
// Structures: dense array (MigrRDMA), unordered_map, linked list with
// move-to-front (LubeRDMA).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace {

constexpr std::uint32_t kMrs = 64;

struct Tables {
  std::vector<std::uint32_t> array;                       // vlkey -> plkey
  std::unordered_map<std::uint32_t, std::uint32_t> map;   // same
  std::list<std::pair<std::uint32_t, std::uint32_t>> mtf; // (vlkey, plkey)

  Tables() {
    array.assign(kMrs + 1, 0);
    for (std::uint32_t v = 1; v <= kMrs; ++v) {
      const std::uint32_t p = (v << 8) | 0x5A;
      array[v] = p;
      map.emplace(v, p);
      mtf.emplace_back(v, p);
    }
  }

  std::uint32_t lookup_mtf(std::uint32_t vlkey) {
    for (auto it = mtf.begin(); it != mtf.end(); ++it) {
      if (it->first == vlkey) {
        if (it != mtf.begin()) mtf.splice(mtf.begin(), mtf, it);  // move to front
        return it->second;
      }
    }
    return 0;
  }
};

Tables& tables() {
  static Tables t;
  return t;
}

template <bool kRoundRobin>
void BM_array(benchmark::State& state) {
  auto& t = tables();
  std::uint32_t v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.array[v]);
    if constexpr (kRoundRobin) v = v % kMrs + 1;
  }
}
BENCHMARK(BM_array<false>)->Name("lkey_array/same_mr");
BENCHMARK(BM_array<true>)->Name("lkey_array/round_robin");

template <bool kRoundRobin>
void BM_map(benchmark::State& state) {
  auto& t = tables();
  std::uint32_t v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.map.find(v)->second);
    if constexpr (kRoundRobin) v = v % kMrs + 1;
  }
}
BENCHMARK(BM_map<false>)->Name("lkey_hashmap/same_mr");
BENCHMARK(BM_map<true>)->Name("lkey_hashmap/round_robin");

template <bool kRoundRobin>
void BM_mtf(benchmark::State& state) {
  auto& t = tables();
  std::uint32_t v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup_mtf(v));
    if constexpr (kRoundRobin) v = v % kMrs + 1;
  }
}
BENCHMARK(BM_mtf<false>)->Name("lkey_linkedlist_mtf/same_mr");
BENCHMARK(BM_mtf<true>)->Name("lkey_linkedlist_mtf/round_robin");

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Ablation: lkey translation structure (MigrRDMA dense array vs\n"
      "LubeRDMA linked list w/ move-to-front vs hash map), 64 MRs.\n"
      "Expected: array flat in both patterns; linked list collapses under\n"
      "round-robin MR access (the paper's critique in §6).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
