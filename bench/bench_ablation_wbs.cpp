// §3.4 ablation — wait-before-stop vs drop-and-replay.
//
// The paper rejects drop-and-replay for two reasons: (1) replaying the
// dropped WRs moves the same bytes, so it takes about as long as waiting
// for them, and (2) discarding in-flight WRs requires moving every QP
// through RESET, which costs a full connection-teardown per QP.
//
// This harness measures wait-before-stop on a loaded system, then composes
// the drop-and-replay estimate from the same measurements:
//   drop_and_replay = #QP * reset_cost            (discard in-flight WRs)
//                   + inflight_bytes / link_rate  (replay after restore)
// Both columns therefore share the bandwidth term; the reset term is pure
// extra — it grows linearly with #QPs and lands inside the blackout.
#include "bench_util.hpp"

namespace migr::bench {
namespace {

constexpr std::uint32_t kDepth = 64;

void run_case(std::uint32_t qps) {
  Cluster cluster(3);
  PerftestConfig cfg;
  cfg.num_qps = qps;
  cfg.msg_size = 4096;
  cfg.queue_depth = kDepth;
  PerftestPeer sender(cluster.runtime(1), cluster.world().add_process("tx"), 100,
                      PerftestPeer::Role::sender, cfg);
  PerftestPeer receiver(cluster.runtime(3), cluster.world().add_process("rx"), 200,
                        PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < qps; ++i) {
    if (!PerftestPeer::connect_pair(sender, i, receiver, i).is_ok()) std::exit(1);
  }
  sender.start();
  receiver.start();
  cluster.run_for(sim::msec(2));
  auto rep = cluster.migrate(100, 2, &sender);
  if (!rep.ok) std::exit(1);

  const double wbs_ms = sim::to_msec(rep.wbs_elapsed);
  const double inflight_ms =
      static_cast<double>(qps) * cfg.msg_size * kDepth * 8.0 / 100e9 * 1e3;
  // Modifying a QP back to RESET costs about as much as the three forward
  // transitions (paper §2.2: "resetting QPs is as slow as setting up new
  // connections").
  const double reset_ms =
      static_cast<double>(qps) *
      sim::to_msec(3 * cluster.device(1).costs().modify_qp);
  const double drop_replay_ms = reset_ms + inflight_ms;
  std::printf("%16u%16.2f%16.2f%16.2f%15.2fx\n", qps, wbs_ms, drop_replay_ms, reset_ms,
              drop_replay_ms / std::max(wbs_ms, 1e-9));
}

}  // namespace
}  // namespace migr::bench

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  migr::bench::print_header(
      "§3.4 ablation: wait-before-stop (measured) vs drop-and-replay "
      "(modelled: per-QP reset + replay at link rate), 4 KiB msgs, depth 64");
  migr::bench::print_row_header({"#QP", "WBS (ms)", "drop+replay", "reset part", "ratio"});
  for (std::uint32_t qps : {16u, 64u, 256u, 1024u}) migr::bench::run_case(qps);
  return 0;
}
