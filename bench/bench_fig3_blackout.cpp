// Figure 3 — Breakdown of MigrRDMA's blackout time.
//
// Reproduces the four panels of the paper's Fig. 3: migrating the sender
// and the receiver of a perftest workload, with and without RDMA pre-setup,
// sweeping the number of QPs. For each configuration the harness prints the
// blackout components: DumpRDMA, DumpOthers, Transfer, RestoreRDMA and
// FullRestore (ms). With pre-setup, DumpRDMA/RestoreRDMA leave the blackout
// window (the RDMA restoration time spent during pre-copy is reported in
// the last column for reference).
//
// Expected shape (paper §5.2): RestoreRDMA grows roughly linearly in #QPs
// and approaches ~half the blackout at 4096 QPs without pre-setup;
// pre-setup removes it, cutting blackout by up to ~58%; DumpOthers grows
// superlinearly with #QPs (CRIU's handling of complicated memory
// structures) and is larger when migrating the sender.
#include "bench_util.hpp"

namespace migr::bench {
namespace {

struct Row {
  std::uint32_t qps;
  bool presetup;
  MigrationReport rep;
};

Row run_case(std::uint32_t qps, bool presetup, bool migrate_sender) {
  Cluster cluster(3);
  PerftestConfig cfg;
  cfg.num_qps = qps;
  cfg.msg_size = 4096;
  cfg.queue_depth = 16;
  PerftestPeer sender(cluster.runtime(1), cluster.world().add_process("tx"), 100,
                      PerftestPeer::Role::sender, cfg);
  PerftestPeer receiver(cluster.runtime(3), cluster.world().add_process("rx"), 200,
                        PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < qps; ++i) {
    auto st = PerftestPeer::connect_pair(sender, i, receiver, i);
    if (!st.is_ok()) {
      std::fprintf(stderr, "connect failed: %s\n", st.to_string().c_str());
      std::exit(1);
    }
  }
  // The sender keeps a limited number of QPs busy; cap traffic by bounding
  // messages per QP so huge sweeps stay tractable.
  sender.start();
  receiver.start();
  cluster.run_for(sim::msec(2));

  MigrationOptions opts;
  opts.pre_setup = presetup;
  const GuestId target = migrate_sender ? 100 : 200;
  auto* app = migrate_sender ? &sender : &receiver;
  Row row{qps, presetup, cluster.migrate(target, 2, app, opts)};
  if (!row.rep.ok) {
    std::fprintf(stderr, "migration failed: %s\n", row.rep.error.c_str());
    std::exit(1);
  }
  // The controller publishes the same breakdown to the shared registry;
  // read it back from there so a drift between the two would show up here.
  auto snap = obs::Registry::global().snapshot();
  if (snapshot_value(snap, "migr.report.restore_rdma_ns") !=
          static_cast<double>(row.rep.restore_rdma) ||
      snapshot_value(snap, "migr.report.dump_rdma_ns") !=
          static_cast<double>(row.rep.dump_rdma)) {
    std::fprintf(stderr, "registry breakdown disagrees with MigrationReport!\n");
    std::exit(1);
  }
  // Sanity: migration must not corrupt the stream (§5.3 check built in).
  cluster.run_for(sim::msec(5));
  if (receiver.stats().order_violations != 0 || receiver.stats().content_corruptions != 0) {
    std::fprintf(stderr, "correctness violation detected!\n");
    std::exit(1);
  }
  return row;
}

void run_panel(const char* name, bool migrate_sender) {
  for (bool presetup : {false, true}) {
    print_header(std::string("Fig 3 (") + name + ") — " +
                 (presetup ? "with RDMA pre-setup" : "w/o RDMA pre-setup") +
                 "  [all times in ms]");
    print_row_header({"#QP", "DumpRDMA", "DumpOthers", "Transfer", "RestoreRDMA",
                      "FullRestore", "Blackout", "(PreSetupRDMA)"});
    for (std::uint32_t qps : {16u, 64u, 256u, 1024u, 4096u}) {
      Row row = run_case(qps, presetup, migrate_sender);
      const auto& r = row.rep;
      std::printf("%16u%16.2f%16.2f%16.2f%16.2f%16.2f%16.2f%16.2f\n", qps,
                  sim::to_msec(r.dump_rdma), sim::to_msec(r.dump_others),
                  sim::to_msec(r.transfer), sim::to_msec(r.restore_rdma),
                  sim::to_msec(r.full_restore), sim::to_msec(r.service_blackout()),
                  sim::to_msec(r.presetup_restore_rdma));
    }
  }
}

}  // namespace
}  // namespace migr::bench

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  migr::bench::print_header(
      "Figure 3: Breakdown of MigrRDMA's blackout time (simulated testbed: "
      "100 Gbps fabric, perftest WRITE workload)");
  migr::bench::run_panel("migrating the sender", /*migrate_sender=*/true);
  migr::bench::run_panel("migrating the receiver", /*migrate_sender=*/false);
  // Cross-layer summary accumulated over every migration of the sweep.
  migr::bench::print_registry_section("migr.");
  return 0;
}
