// Simulator fast-path benchmark: events/sec, wall-ns-per-sim-sec, and heap
// allocation counts across three workloads of increasing realism:
//
//   event_core — raw EventLoop dispatch throughput (64 self-rescheduling
//                chains, no network), isolating the event core itself;
//   stream     — 2-host RC perftest streaming 256 KiB WRITEs through 4 QPs
//                (multi-packet trains: the burst-coalescing sweet spot);
//   drain8     — the 8-host fleet drain from bench_cluster_drain at
//                concurrency 4: live traffic + dirty memory + migration
//                machinery, the ROADMAP's canonical heavy workload.
//
// Allocation counts come from a counting global operator new in this TU —
// no sanitizer or malloc-hook dependency, so the numbers are valid in any
// optimized build. Results are printed as a table and written to
// BENCH_simrate.json (tools/ci.sh's perf-smoke stage records the file and
// compares wall time against the previous run).
//
//   build/bench/bench_simrate [output.json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "bench_util.hpp"
#include "cluster/drain.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/sli.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every path in the process funnels through these.
// ---------------------------------------------------------------------------

namespace {
std::uint64_t g_alloc_count = 0;
std::uint64_t g_alloc_bytes = 0;
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count++;
  g_alloc_bytes += n;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_alloc_count++;
  g_alloc_bytes += n;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace migr::bench {
namespace {

struct Measurement {
  std::uint64_t events = 0;    // loop events dispatched
  std::uint64_t wall_ns = 1;   // wall time inside run()
  std::uint64_t sim_ns = 1;    // simulated time advanced
  std::uint64_t allocs = 0;    // operator-new calls during the run
  std::uint64_t alloc_bytes = 0;

  double events_per_sec() const {
    return static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
  }
  double wall_ns_per_sim_sec() const {
    return static_cast<double>(wall_ns) * 1e9 / static_cast<double>(sim_ns);
  }
  double allocs_per_event() const {
    return events ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
  }
};

/// Snapshot loop + allocator counters around `body` (which must pump `loop`).
template <typename Body>
Measurement measure(sim::EventLoop& loop, Body&& body) {
  Measurement m;
  const std::uint64_t ev0 = loop.events_dispatched();
  const std::uint64_t wall0 = loop.wall_ns_in_run();
  const sim::TimeNs sim0 = loop.now();
  const std::uint64_t al0 = g_alloc_count;
  const std::uint64_t ab0 = g_alloc_bytes;
  body();
  m.events = loop.events_dispatched() - ev0;
  m.wall_ns = std::max<std::uint64_t>(1, loop.wall_ns_in_run() - wall0);
  m.sim_ns = std::max<std::int64_t>(1, loop.now() - sim0);
  m.allocs = g_alloc_count - al0;
  m.alloc_bytes = g_alloc_bytes - ab0;
  return m;
}

// --------------------------------------------------------------------------
// Workload 1: raw event-core dispatch.
// --------------------------------------------------------------------------

struct Chain {
  sim::EventLoop* loop = nullptr;
  std::uint64_t left = 0;
  void fire() {
    if (left-- > 1) {
      loop->schedule_in(100, [this] { fire(); });
    }
  }
};

Measurement run_event_core() {
  sim::EventLoop loop;
  constexpr int kChains = 64;
  constexpr std::uint64_t kPerChain = 40'000;
  std::vector<Chain> chains(kChains);
  for (auto& c : chains) {
    c.loop = &loop;
    c.left = kPerChain;
    loop.schedule_in(100, [&c] { c.fire(); });
  }
  // A slab-churn side dish: schedule-then-cancel pairs, the pattern every
  // retransmit timer and watchdog produces.
  std::vector<sim::EventHandle> cancelled;
  cancelled.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    cancelled.push_back(loop.schedule_in(50, [] { std::abort(); }));
  }
  for (auto& h : cancelled) h.cancel();
  return measure(loop, [&] { loop.run(); });
}

// --------------------------------------------------------------------------
// Workload 2: RC streaming (multi-packet message trains).
// --------------------------------------------------------------------------

Measurement run_stream(double* out_gbps) {
  Cluster cluster(2);
  PerftestConfig cfg;
  cfg.num_qps = 4;
  cfg.msg_size = 256 * 1024;  // 64 MTU-sized packets per message
  cfg.queue_depth = 4;
  cfg.opcode = rnic::WrOpcode::rdma_write;
  PerftestPeer sender(cluster.runtime(1), cluster.world().add_process("tx"), 100,
                      PerftestPeer::Role::sender, cfg);
  PerftestPeer receiver(cluster.runtime(2), cluster.world().add_process("rx"), 200,
                        PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    if (!PerftestPeer::connect_pair(sender, i, receiver, i).is_ok()) std::exit(1);
  }
  sender.start();
  receiver.start();
  cluster.run_for(sim::msec(5));  // warm up pools + steady state
  const std::uint64_t bytes0 = sender.stats().completed_bytes;
  constexpr sim::DurationNs kRun = sim::msec(200);
  Measurement m = measure(cluster.loop(), [&] { cluster.run_for(kRun); });
  if (out_gbps != nullptr) {
    *out_gbps = static_cast<double>(sender.stats().completed_bytes - bytes0) * 8.0 /
                static_cast<double>(kRun);
  }
  sender.stop();
  receiver.stop();
  return m;
}

// --------------------------------------------------------------------------
// Workload 3: the 8-host drain (bench_cluster_drain's scenario, conc 4).
// --------------------------------------------------------------------------

// With sli_taps the brownout SLI taps are wired while the hub stays
// disarmed: every guest caches a null GuestSli*, so the data path carries
// exactly one branch per message and nothing else. main() pins that run
// against the plain one — same events, zero extra allocations.
Measurement run_drain8(bool* out_ok, bool sli_taps = false) {
  cluster::ClusterConfig cfg;
  cfg.hosts = 8;
  cfg.seed = 42;
  cluster::ClusterModel model(cfg);
  if (sli_taps) model.enable_sli(migr::obs::SliHub::global());
  cluster::TrafficProfile profile;
  profile.send_interval = sim::usec(20);
  profile.msg_bytes = 2048;
  profile.extra_mem_bytes = 2 << 20;
  profile.dirty_interval = sim::msec(1);
  for (cluster::GuestId g = 0; g < 8; ++g) {
    (void)model.add_guest(1, 100 + g, profile).value();
    (void)model.add_guest(2 + g % 7, 200 + g, profile).value();
    if (!model.connect_guests(100 + g, 200 + g).is_ok()) std::exit(1);
  }
  model.run_for(sim::msec(5));

  cluster::SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = 4;
  scfg.limits.max_concurrent_per_source = 4;
  scfg.limits.max_concurrent_per_dest = 4;
  cluster::MigrationScheduler sched(model, scfg);
  cluster::DrainWorkflow drain(model, sched);
  cluster::DrainReport report;
  Measurement m = measure(model.loop(), [&] { report = drain.run(1); });
  if (out_ok != nullptr) *out_ok = report.ok;
  return m;
}

// Pull drain8's events_per_sec out of a prior BENCH_simrate.json without a
// JSON library: find the "drain8" object, then its "events_per_sec" key.
double baseline_drain8_events_per_sec(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0.0;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::size_t at = text.find("\"drain8\"");
  if (at == std::string::npos) return 0.0;
  const std::string key = "\"events_per_sec\":";
  const std::size_t k = text.find(key, at);
  if (k == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + k + key.size(), nullptr);
}

void print_measurement(const char* name, const Measurement& m) {
  std::printf("%12s %14llu %10.2f %14.0f %12.0f %10.2f\n", name,
              static_cast<unsigned long long>(m.events),
              static_cast<double>(m.wall_ns) / 1e6, m.events_per_sec(),
              m.wall_ns_per_sim_sec(), m.allocs_per_event());
}

void json_measurement(FILE* f, const char* name, const Measurement& m, bool last) {
  std::fprintf(f,
               "    \"%s\": {\"events\": %llu, \"wall_ns\": %llu, \"sim_ns\": %llu, "
               "\"events_per_sec\": %.0f, \"wall_ns_per_sim_sec\": %.0f, "
               "\"allocs\": %llu, \"alloc_bytes\": %llu, \"allocs_per_event\": %.3f}%s\n",
               name, static_cast<unsigned long long>(m.events),
               static_cast<unsigned long long>(m.wall_ns),
               static_cast<unsigned long long>(m.sim_ns), m.events_per_sec(),
               m.wall_ns_per_sim_sec(), static_cast<unsigned long long>(m.allocs),
               static_cast<unsigned long long>(m.alloc_bytes), m.allocs_per_event(),
               last ? "" : ",");
}

}  // namespace
}  // namespace migr::bench

int main(int argc, char** argv) {
  using namespace migr::bench;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_simrate.json";

  print_header("Simulator fast-path benchmark (events/sec, wall/sim, allocs/event)");
  std::printf("%12s %14s %10s %14s %12s %10s\n", "workload", "events", "wall_ms",
              "events/s", "ns/sim_s", "allocs/ev");

  const Measurement core = run_event_core();
  print_measurement("event_core", core);

  double stream_gbps = 0;
  const Measurement stream = run_stream(&stream_gbps);
  print_measurement("stream", stream);
  std::printf("%12s goodput: %.1f Gbps\n", "", stream_gbps);

  // Steady-state allocation pin: after the 5 ms warm-up (payload pool, slot
  // table, train pool, dirty sets all at their high-water marks) the stream
  // workload's measured window must allocate NOTHING. Inline SGE lists,
  // pooled payloads/closures, try_emplace dirty tracking, and the GrowRing
  // pump rotation each exist to hold this; a regression in any of them
  // shows up here as a hard failure, like the SLI pin below.
  const bool stream_alloc_pin_ok = stream.allocs == 0;
  if (!stream_alloc_pin_ok) {
    std::printf("%12s !! STREAM ALLOC PIN FAILED: %llu allocs in steady state\n", "",
                static_cast<unsigned long long>(stream.allocs));
  }

  // drain8 is the perf-smoke reference number and must be a recorder-off
  // measurement, or the advisory band below compares unlike with like.
  if (migr::obs::FlightRecorder::global().enabled()) {
    std::printf("  !! flight recorder was enabled — disabling for drain8\n");
    migr::obs::FlightRecorder::global().set_enabled(false);
  }
  bool drain_ok = false;
  const Measurement drain = run_drain8(&drain_ok);
  print_measurement("drain8", drain);
  if (!drain_ok) std::printf("  !! drain8 reported failure\n");

  // SLI cost pin: the same drain with the brownout taps wired but the hub
  // disarmed. The disabled pipeline must be invisible — identical event
  // count (same seed, taps never touch the loop) and zero extra heap
  // allocations. The first drain8 warms process-global state (metric-name
  // interning in the registry), so the pin compares against a second plain
  // run: both legs see a warm process and the delta isolates the taps.
  // This one is a hard failure, not advisory: it is the "observability
  // off = free" contract from DESIGN.md §12.
  bool warm_ok = false;
  const Measurement drain_warm = run_drain8(&warm_ok);
  bool drain_sli_ok = false;
  const Measurement drain_sli = run_drain8(&drain_sli_ok, /*sli_taps=*/true);
  print_measurement("drain8_sli0", drain_sli);
  const long long sli_extra_allocs =
      static_cast<long long>(drain_sli.allocs) - static_cast<long long>(drain_warm.allocs);
  const long long sli_extra_events =
      static_cast<long long>(drain_sli.events) - static_cast<long long>(drain_warm.events);
  const bool sli_pin_ok =
      warm_ok && drain_sli_ok && sli_extra_allocs == 0 && sli_extra_events == 0;
  std::printf("%12s disarmed SLI taps vs drain8: %+lld allocs, %+lld events%s\n", "",
              sli_extra_allocs, sli_extra_events,
              sli_pin_ok ? "" : "  !! SLI COST PIN FAILED");

  // Advisory throughput band vs the checked-in baseline (override the file
  // with MIGR_SIMRATE_BASELINE). events/sec is steadier than wall time on
  // shared machines, but this still only warns — it never fails the run.
  const char* base_env = std::getenv("MIGR_SIMRATE_BASELINE");
  const double base_eps =
      baseline_drain8_events_per_sec(base_env != nullptr ? base_env : "BENCH_simrate.json");
  if (base_eps > 0) {
    const double ratio = drain.events_per_sec() / base_eps;
    std::printf("%12s drain8 vs baseline: %.2fx (%.0f vs %.0f events/s)\n", "", ratio,
                drain.events_per_sec(), base_eps);
    if (ratio < 0.4 || ratio > 2.5) {
      std::printf(
          "  !! ADVISORY: drain8 events/sec outside the [0.4x, 2.5x] baseline band — "
          "re-baseline from a quiet machine if the fast path changed\n");
    }
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"simrate\",\n  \"workloads\": {\n");
  json_measurement(f, "event_core", core, false);
  json_measurement(f, "stream", stream, false);
  json_measurement(f, "drain8", drain, false);
  json_measurement(f, "drain8_sli0", drain_sli, true);
  std::fprintf(f,
               "  },\n  \"stream_gbps\": %.2f,\n  \"drain8_ok\": %s,\n"
               "  \"sli_extra_allocs\": %lld,\n  \"sli_pin_ok\": %s,\n"
               "  \"stream_alloc_pin_ok\": %s\n}\n",
               stream_gbps, drain_ok ? "true" : "false", sli_extra_allocs,
               sli_pin_ok ? "true" : "false", stream_alloc_pin_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return drain_ok && sli_pin_ok && stream_alloc_pin_ok ? 0 : 1;
}
