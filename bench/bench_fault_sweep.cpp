// Adversarial-network sweep: migration outcome vs. sustained data-plane
// loss (with and without reordering), plus the two failure-recovery
// scenarios — destination partition during the image transfer and the
// WBS-timeout abort policy. Companion to the §3.4 "buggy network"
// discussion: the paper's workflow must degrade to a forced stop-and-copy
// or a clean rollback, never to a wedged guest.
//
//   ./bench_fault_sweep
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "fault/fault.hpp"

namespace migr::bench {
namespace {

struct SweepRow {
  double loss = 0.0;
  bool reorder = false;
  MigrationReport report;
  std::uint64_t retransmits = 0;
  std::uint64_t reordered = 0;
  bool traffic_resumed = false;
};

constexpr std::uint32_t kQps = 4;

std::unique_ptr<PerftestPeer> make_peer(Cluster& c, net::HostId host, GuestId id,
                                        PerftestPeer::Role role) {
  PerftestConfig cfg;
  cfg.num_qps = kQps;
  cfg.msg_size = 8192;
  cfg.queue_depth = 16;
  cfg.opcode = rnic::WrOpcode::rdma_write;
  return std::make_unique<PerftestPeer>(c.runtime(host), c.world().add_process("app"), id,
                                        role, cfg);
}

SweepRow run_lossy_migration(double loss, bool reorder, MigrationOptions opts = {},
                             sim::DurationNs partition_dest_for = 0) {
  SweepRow row;
  row.loss = loss;
  row.reorder = reorder;

  Cluster cluster(3);
  auto tx = make_peer(cluster, 1, 1, PerftestPeer::Role::sender);
  auto rx = make_peer(cluster, 3, 2, PerftestPeer::Role::receiver);
  for (std::uint32_t i = 0; i < kQps; ++i) {
    if (!PerftestPeer::connect_pair(*tx, i, *rx, i).is_ok()) {
      row.report.error = "connect failed";
      return row;
    }
  }
  tx->start();
  rx->start();
  cluster.run_for(sim::msec(3));

  fault::ScenarioRunner runner(cluster.loop(), cluster.world().fabric());
  fault::FaultPlan plan;
  plan.baseline(loss, reorder ? 0.25 : 0.0, sim::usec(20));
  if (partition_dest_for > 0) plan.partition(/*at=*/0, partition_dest_for, /*host=*/2);
  runner.run(plan);

  const auto retrans_before = cluster.device(1).counters().retransmits;
  row.report = cluster.migrate(1, 2, tx.get(), opts);
  row.retransmits = cluster.device(1).counters().retransmits - retrans_before;
  row.reordered = cluster.world().fabric().stats(1).data_packets_reordered +
                  cluster.world().fabric().stats(2).data_packets_reordered +
                  cluster.world().fabric().stats(3).data_packets_reordered;

  // Post-migration settle window: longer than a retransmit timeout, so a
  // QP mid-recovery at high loss is not misreported as stalled.
  const auto msgs_before = tx->stats().completed_msgs;
  cluster.run_for(sim::msec(120));
  row.traffic_resumed = tx->stats().completed_msgs > msgs_before;
  return row;
}

const char* outcome(const MigrationReport& r) {
  if (r.ok) return r.wbs_timed_out ? "ok(forced-sc)" : "ok";
  return r.aborted ? "aborted" : "failed";
}

void print_row(const SweepRow& row) {
  std::printf("%16.3f%16s%16s%16.3f%16.3f%16llu%16llu%16s\n", row.loss * 100,
              row.reorder ? "yes" : "no", outcome(row.report),
              row.report.ok ? row.report.service_blackout() / 1e6 : 0.0,
              row.report.wbs_elapsed / 1e6,
              static_cast<unsigned long long>(row.report.transfer_retries),
              static_cast<unsigned long long>(row.retransmits),
              row.traffic_resumed ? "yes" : "NO");
}

void sweep() {
  print_header(
      "Migration under adversarial networks: loss sweep\n"
      "(4 QPs, 8 KiB WRITEs; blackout/wbs in ms)");
  print_row_header({"loss_%", "reorder", "outcome", "blackout_ms", "wbs_ms",
                    "xfer_retries", "retransmits", "svc_resumed"});
  for (double loss : {0.0, 0.001, 0.01, 0.05}) {
    print_row(run_lossy_migration(loss, /*reorder=*/false));
    if (loss > 0) print_row(run_lossy_migration(loss, /*reorder=*/true));
  }

  print_header("Failure recovery: abort/rollback scenarios");
  print_row_header({"scenario", "outcome", "phase", "src_resume", "svc_resume"});

  // Destination partitioned across the whole transfer window: the bounded
  // retry budget must exhaust and the controller roll the source back.
  MigrationOptions part_opts;
  part_opts.transfer_timeout = sim::msec(20);
  part_opts.max_transfer_retries = 2;
  part_opts.transfer_retry_backoff = sim::msec(5);
  SweepRow part = run_lossy_migration(0.0, false, part_opts,
                                      /*partition_dest_for=*/sim::msec(400));
  std::printf("%16s%16s%18s%16s%16s\n", "dest-partition", outcome(part.report),
              part.report.abort_phase.c_str(), part.report.source_resumed ? "yes" : "NO",
              part.traffic_resumed ? "yes" : "NO");

  // WBS deadline impossible to meet, abort policy on: clean rollback
  // instead of a forced stop-and-copy.
  MigrationOptions wbs_opts;
  wbs_opts.wbs_timeout = sim::usec(1);
  wbs_opts.abort_on_wbs_timeout = true;
  SweepRow wbs = run_lossy_migration(0.0, false, wbs_opts);
  std::printf("%16s%16s%18s%16s%16s\n", "wbs-abort", outcome(wbs.report),
              wbs.report.abort_phase.c_str(), wbs.report.source_resumed ? "yes" : "NO",
              wbs.traffic_resumed ? "yes" : "NO");

  print_registry_section("migr.migrations_aborted");
  print_registry_section("fault.");
}

}  // namespace
}  // namespace migr::bench

int main() {
  migr::bench::sweep();
  return 0;
}
