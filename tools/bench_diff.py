#!/usr/bin/env python3
"""Compare fresh bench JSON outputs against the checked-in baselines.

Walks the known bench artifacts (BENCH_simrate.json, BENCH_xfer.json,
BENCH_ft.json), flattens every numeric leaf to a dotted metric path, and
prints a per-metric delta table: baseline value, current value, ratio.
Metrics whose ratio strays past --threshold are flagged.

Advisory by default (exit 0 even on regressions — wall-time numbers on
shared CI machines are noisy); pass --strict to turn flagged regressions
into a non-zero exit. A missing baseline or current file skips that pair
with a note rather than failing: the comparison is opportunistic.

  tools/bench_diff.py                          # repo-root baselines vs build/
  tools/bench_diff.py --current-dir build --threshold 1.5
  tools/bench_diff.py --strict                 # gate (quiet machines only)

Refresh a baseline by copying the build/ file over the repo-root one from a
quiet machine when the measured code intentionally changes.
"""

import argparse
import json
import os
import sys

BENCH_FILES = ["BENCH_simrate.json", "BENCH_xfer.json", "BENCH_ft.json"]

# Metric name substrings where *larger* is better (rates, ratios, speedups);
# everything else numeric is treated as smaller-is-better (times, counts).
HIGHER_IS_BETTER = ("events_per_sec", "speedup", "ratio", "epochs_committed")

# Leaves that are configuration echoes or identities, not measurements:
# comparing them produces noise (e.g. the scenario string, schema version).
SKIP_LEAVES = ("version", "seed", "payload_bytes", "stream_gbps", "sim_ns",
               "n", "balance_ok")


def flatten(node, prefix=""):
    """Yield (dotted_path, value) for every numeric leaf under node."""
    if isinstance(node, dict):
        for key in node:
            yield from flatten(node[key], f"{prefix}{key}.")
    elif isinstance(node, list):
        for i, item in enumerate(node):
            # Prefer a self-describing key (stream count, edge name) over a
            # bare index so reordered lists still line up.
            tag = None
            if isinstance(item, dict):
                for k in ("n", "name", "class", "edge"):
                    if k in item:
                        tag = f"{k}={item[k]}"
                        break
            yield from flatten(item, f"{prefix}{tag if tag is not None else i}.")
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        leaf = prefix.rstrip(".")
        if leaf.rsplit(".", 1)[-1] not in SKIP_LEAVES:
            yield leaf, float(node)


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = {}
    for key, value in flatten(doc):
        metrics[key] = value
    return metrics


def better_is_higher(metric):
    return any(tok in metric for tok in HIGHER_IS_BETTER)


def compare_file(name, base_path, cur_path, threshold):
    """Print the delta table for one bench file; return # flagged metrics."""
    base = load_metrics(base_path)
    cur = load_metrics(cur_path)
    flagged = 0
    print(f"  {name} (baseline {base_path} vs current {cur_path})")
    print(f"    {'metric':<52} {'baseline':>14} {'current':>14} {'ratio':>7}")
    for metric in sorted(base):
        if metric not in cur:
            print(f"    {metric:<52} {base[metric]:>14.6g} {'<missing>':>14}")
            continue
        b, c = base[metric], cur[metric]
        ratio = c / b if b != 0 else (1.0 if c == 0 else float("inf"))
        mark = ""
        regressed = (ratio > threshold if not better_is_higher(metric)
                     else ratio < 1.0 / threshold)
        if b != 0 and regressed:
            mark = "  <-- regressed"
            flagged += 1
        print(f"    {metric:<52} {b:>14.6g} {c:>14.6g} {ratio:>7.2f}{mark}")
    for metric in sorted(set(cur) - set(base)):
        print(f"    {metric:<52} {'<new>':>14} {cur[metric]:>14.6g}")
    return flagged


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default=".",
                    help="directory holding the committed BENCH_*.json (default: repo root)")
    ap.add_argument("--current-dir", default="build",
                    help="directory holding the fresh BENCH_*.json (default: build/)")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="flag metrics whose ratio strays past this factor (default: 2.0)")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when any metric is flagged (default: advisory)")
    args = ap.parse_args()

    total_flagged = 0
    compared = 0
    print("==> bench delta vs committed baselines "
          f"(threshold {args.threshold:.2f}x, {'strict' if args.strict else 'advisory'})")
    for name in BENCH_FILES:
        base_path = os.path.join(args.baseline_dir, name)
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.isfile(base_path):
            print(f"  {name}: no committed baseline at {base_path}; skipping")
            continue
        if not os.path.isfile(cur_path):
            print(f"  {name}: no current run at {cur_path}; skipping")
            continue
        total_flagged += compare_file(name, base_path, cur_path, args.threshold)
        compared += 1

    if compared == 0:
        print("==> bench_diff: nothing to compare")
        return 0
    if total_flagged:
        print(f"==> bench_diff: {total_flagged} metric(s) strayed past "
              f"{args.threshold:.2f}x (advisory: wall times are machine-dependent)")
        return 1 if args.strict else 0
    print("==> bench_diff: all compared metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
