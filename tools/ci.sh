#!/usr/bin/env bash
# Full CI pipeline: plain build + tests, the adversarial/lossy suites on
# their own (fast signal on transport/migration robustness regressions),
# a perf smoke (simulator event-rate bench vs the checked-in baseline),
# a blackout-anatomy artifact stage (instrumented lossy drain + schema
# validation of the trace/timeseries/flight-recorder outputs), a blackout
# critical-path stage (lossy + clean drains with causal attribution armed,
# gated on the tiling invariant and the dominant edge matching the injected
# fault), a pre-copy vs post-copy drain comparison gated on post-copy's
# shorter blackout, a multifd scale-out stage (1-stream vs 4-stream drain
# gated on the mux cutting the median transfer phase >= 1.5x), an FT
# failover stage (kill-primary under a lossy seed, gated on the output-
# commit invariant and the validated ft_report incl. its critical path), a
# bench-delta advisory (tools/bench_diff.py vs the committed BENCH_*.json
# baselines), then the sanitizer pass.
#
#   tools/ci.sh              # everything
#   tools/ci.sh --fast       # skip the sanitizer pass
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> [1/10] plain build + full test suite"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [2/10] lossy-seed suites (fault injection, adversarial migrations, lossy drain)"
# Deterministic seeded runs: the fault scenario suite, every property test
# that drives traffic through injected loss/reordering/partitions, and the
# cluster suite (scheduler admission/retry plus the seeded lossy drain with
# a mid-drain partition).
ctest --test-dir build --output-on-failure -j "$(nproc)" \
  -R '(ScenarioRunner|MigrationAbort|AdversarialMigrationProperty|TransportProperty|ClusterScheduler|ClusterDrain)'

echo "==> [3/10] perf smoke (bench_simrate vs BENCH_simrate.json baseline)"
# Advisory, not a gate: wall time on shared CI machines is noisy, so a
# regression prints a loud warning instead of failing the pipeline. The
# fresh numbers land in build/BENCH_simrate.json for inspection; refresh
# the checked-in baseline from a quiet machine when the fast path changes.
build/bench/bench_simrate build/BENCH_simrate.json
if [[ -f BENCH_simrate.json ]]; then
  python3 - <<'EOF'
import json

with open("BENCH_simrate.json") as f:
    base = json.load(f)["workloads"]
with open("build/BENCH_simrate.json") as f:
    cur = json.load(f)["workloads"]

regressed = False
for name, b in base.items():
    c = cur.get(name)
    if c is None:
        continue
    ratio = c["wall_ns"] / b["wall_ns"] if b["wall_ns"] > 0 else 1.0
    print(f"    {name}: {c['wall_ns'] / 1e6:.0f} ms vs baseline {b['wall_ns'] / 1e6:.0f} ms ({ratio:.2f}x)")
    if ratio > 2.0:
        regressed = True
        print(f"    WARNING: {name} wall time regressed >2x vs baseline")
if regressed:
    print("==> PERF SMOKE WARNING: simulator wall-time regression detected (advisory only)")
EOF
else
  echo "    no checked-in BENCH_simrate.json baseline; skipping comparison"
fi

echo "==> [4/10] blackout-anatomy artifacts (instrumented lossy drain + schema validation)"
# One seeded lossy drain with the full observability stack armed: Chrome
# trace, metric time series, and the wire flight recorder. The python
# validator pins the artifact schemas so downstream tooling (trace viewers,
# the EXPERIMENTS.md recipes) can rely on them.
ART_DIR=build/artifacts
mkdir -p "$ART_DIR"
build/bench/bench_cluster_drain --loss 0.01 --seed 11 --conc 4 \
  --trace "$ART_DIR/drain.trace.json" \
  --timeseries "$ART_DIR/drain.ts.csv" \
  --record "$ART_DIR/drain.cap.json"
python3 tools/validate_artifacts.py \
  --trace "$ART_DIR/drain.trace.json" \
  --timeseries "$ART_DIR/drain.ts.csv" \
  --record "$ART_DIR/drain.cap.json"
# Brownout SLI/SLO artifact: a heavier-loss drain with the burn-rate engine
# armed (baseline-policy leg + SLO-defer leg, one slo_report artifact). The
# validator pins the schema, the gap-free window tiling, the frozen-window
# bracket against the attribution, and that the lossy scenario actually
# fired at least one burn-rate alert.
build/bench/bench_cluster_drain --loss 0.2 --seed 11 --conc 4 \
  --slo 'p99<60us,budget=0.05,fast=400us,slow=4ms,burn=2' \
  --slo-out "$ART_DIR/drain.slo.json" \
  --sli-csv "$ART_DIR/drain.sli.csv"
python3 tools/validate_artifacts.py --slo "$ART_DIR/drain.slo.json" --expect-alert

echo "==> [5/10] blackout critical-path attribution (lossy drain, retry-dominant)"
# Causal attribution stage (DESIGN.md §16): a wire-bound drain — restore
# pre-synced like the FT standby (--restore-ms 2) so the blackout is not
# restore-dominated — under heavy ctrl-plane loss, so image transfers time
# out and retry. The validator pins the critical_path schema, the tiling
# invariant (per-guest edge sums == blackout_ns, gap-free edge walk), and
# that the injected loss actually shows up as the story the report tells:
# chunk_retry edges present and dominant across the fleet.
build/bench/bench_cluster_drain --loss 0.01 --ctrl-loss 0.3 --seed 11 --conc 4 \
  --critical-path --restore-ms 2 --drain-out "$ART_DIR/drain.cp.json"
python3 tools/validate_artifacts.py --drain "$ART_DIR/drain.cp.json" \
  --critical-path --expect-retry-edges --expect-dominant chunk_retry
# Same fleet without the injected ctrl loss: attribution must still tile
# (the invariant holds on clean runs too) but the dominant edge moves off
# chunk_retry — the clean leg is restore-bound.
build/bench/bench_cluster_drain --loss 0.01 --seed 11 --conc 4 \
  --critical-path --drain-out "$ART_DIR/drain.cp_clean.json"
python3 tools/validate_artifacts.py --drain "$ART_DIR/drain.cp_clean.json" \
  --critical-path --expect-dominant restore_apply

echo "==> [6/10] pre-copy vs post-copy drain comparison (write-heavy fleet)"
# The same write-heavy drain (8 MiB dirty MR per guest, clean fabric) run
# once per migration mode. The validator pins the drain_report schema on
# both legs — including gap-free waterfall tiling and the post-copy fault
# accounting balance — and gates on the paper's headline trade: post-copy's
# service blackout must beat pre-copy's on a write-heavy workload.
build/bench/bench_cluster_drain --seed 11 --conc 4 --mem-mb 8 \
  --mode precopy --drain-out "$ART_DIR/drain.precopy.json"
build/bench/bench_cluster_drain --seed 11 --conc 4 --mem-mb 8 \
  --mode postcopy --drain-out "$ART_DIR/drain.postcopy.json"
python3 tools/validate_artifacts.py \
  --drain "$ART_DIR/drain.precopy.json" \
  --drain "$ART_DIR/drain.postcopy.json" \
  --expect-postcopy-faster "$ART_DIR/drain.precopy.json" "$ART_DIR/drain.postcopy.json"

echo "==> [7/10] multifd scale-out (1-stream vs 4-stream drain)"
# The same write-heavy drain run once with a single paced 25 Gbps transfer
# stream and once with the 4-stream mux (4 x 25 Gbps). Concurrency is pinned
# to 1: at --conc 4 four concurrent migrations already fill the 100 Gbps
# port, so per-migration stream scaling is invisible — one migration at a
# time is what isolates the mux's own speedup, mirroring QEMU's multifd
# single-VM story. Gated on the 4-stream leg cutting the median per-guest
# transfer-phase time by >= 1.5x (it measures ~4x on a quiet machine), plus
# the validator's stream/suppression balance pins on both artifacts.
build/bench/bench_cluster_drain --seed 11 --conc 1 --mem-mb 8 \
  --streams 1 --drain-out "$ART_DIR/drain.s1.json"
build/bench/bench_cluster_drain --seed 11 --conc 1 --mem-mb 8 \
  --streams 4 --suppress --drain-out "$ART_DIR/drain.s4.json"
python3 tools/validate_artifacts.py --drain "$ART_DIR/drain.s1.json"
python3 tools/validate_artifacts.py \
  --drain "$ART_DIR/drain.s4.json" --expect-streams 4
python3 - "$ART_DIR/drain.s1.json" "$ART_DIR/drain.s4.json" <<'EOF'
import json
import statistics
import sys


def median_transfer_ns(path):
    with open(path) as f:
        doc = json.load(f)
    durs = [s["dur_ns"]
            for g in doc["guests"]
            for s in g["waterfall"]["slices"]
            if s["name"] == "transfer"]
    if not durs:
        sys.exit(f"FAIL {path}: no transfer slices in any waterfall")
    return statistics.median(durs)

s1 = median_transfer_ns(sys.argv[1])
s4 = median_transfer_ns(sys.argv[2])
ratio = s1 / s4 if s4 > 0 else float("inf")
print(f"    median transfer phase: 1-stream {s1 / 1e6:.3f} ms, "
      f"4-stream {s4 / 1e6:.3f} ms ({ratio:.2f}x)")
if ratio < 1.5:
    sys.exit("FAIL: 4-stream mux did not cut the median transfer phase "
             f"by >= 1.5x (got {ratio:.2f}x)")
EOF

echo "==> [8/10] FT failover comparison (kill-primary under a lossy seed)"
# Continuous-protection stage: the seeded 8-host scenario with data-plane
# loss, primary killed mid-traffic. The bench itself gates on the output-
# commit invariant (zero duplicate client-visible messages) and on the FT
# blackout beating the modeled log-replay baseline; the validator pins the
# ft_report schema (epoch accounting balance, committed-epoch monotonicity,
# gap-free failover waterfall tiling).
build/bench/bench_ft_failover --loss 0.01 --seed 11 --critical-path \
  --ft-out "$ART_DIR/ft_report.json" \
  --bench-out build/BENCH_ft.json
python3 tools/validate_artifacts.py --ft "$ART_DIR/ft_report.json" --critical-path

echo "==> [9/10] bench delta vs committed baselines (advisory)"
# Per-metric delta table over every BENCH_*.json pair (simrate from stage 3,
# ft from stage 8, xfer regenerated here). Advisory like the perf smoke:
# shared-machine wall times are noisy; refresh baselines from a quiet box.
build/bench/bench_xfer --out build/BENCH_xfer.json
python3 tools/bench_diff.py

if [[ "$FAST" == "1" ]]; then
  echo "==> [10/10] sanitizer pass skipped (--fast)"
  exit 0
fi

echo "==> [10/10] sanitizer pass (address)"
tools/run_sanitized.sh address
