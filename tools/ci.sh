#!/usr/bin/env bash
# Full CI pipeline: plain build + tests, the adversarial/lossy suites on
# their own (fast signal on transport/migration robustness regressions),
# then the sanitizer pass.
#
#   tools/ci.sh              # everything
#   tools/ci.sh --fast       # skip the sanitizer pass
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> [1/3] plain build + full test suite"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [2/3] lossy-seed suites (fault injection, adversarial migrations, lossy drain)"
# Deterministic seeded runs: the fault scenario suite, every property test
# that drives traffic through injected loss/reordering/partitions, and the
# cluster suite (scheduler admission/retry plus the seeded lossy drain with
# a mid-drain partition).
ctest --test-dir build --output-on-failure -j "$(nproc)" \
  -R '(ScenarioRunner|MigrationAbort|AdversarialMigrationProperty|TransportProperty|ClusterScheduler|ClusterDrain)'

if [[ "$FAST" == "1" ]]; then
  echo "==> [3/3] sanitizer pass skipped (--fast)"
  exit 0
fi

echo "==> [3/3] sanitizer pass (address)"
tools/run_sanitized.sh address
