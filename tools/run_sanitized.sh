#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
#   tools/run_sanitized.sh [address|undefined|address,undefined] [ctest args...]
#
# Uses a dedicated build tree per sanitizer set (build-asan, build-ubsan,
# build-asan-ubsan) so sanitized objects never mix with the regular build.
set -euo pipefail

SANITIZE="${1:-address}"
shift || true

case "$SANITIZE" in
  address) BUILD_DIR="build-asan" ;;
  undefined) BUILD_DIR="build-ubsan" ;;
  address,undefined | undefined,address) BUILD_DIR="build-asan-ubsan" ;;
  *)
    echo "usage: $0 [address|undefined|address,undefined] [ctest args...]" >&2
    exit 2
    ;;
esac

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

cmake -B "$BUILD_DIR" -S . -DMIGR_SANITIZE="$SANITIZE" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
