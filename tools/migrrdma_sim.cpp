// migrrdma-sim: command-line scenario runner.
//
// Runs one configurable live migration of a perftest workload on the
// simulated cluster and prints the full report — the quickest way to
// explore the parameter space outside the fixed benchmark sweeps.
//
// Usage:
//   migrrdma_sim [--qps N] [--msg BYTES] [--depth N] [--opcode write|send]
//                [--no-presetup] [--migrate-receiver] [--loss P]
//                [--wbs-timeout-ms T] [--precopy-rounds N] [--seed S]
//                [--trace OUT.json] [--timeseries OUT.csv|OUT.json]
//                [--timeseries-interval-us N] [--record OUT.json] [--metrics]
//
// Examples:
//   migrrdma_sim --qps 256 --msg 4096
//   migrrdma_sim --qps 16 --msg 2097152 --depth 4 --migrate-receiver
//   migrrdma_sim --loss 1.0 --wbs-timeout-ms 3      # buggy-network path
//   migrrdma_sim --trace out.json --metrics         # Chrome trace + registry dump
//   migrrdma_sim --timeseries ts.csv --record cap.json   # metrics series + wire capture
//
// --trace writes a Chrome trace-event JSON covering the whole run (load it
// in about://tracing or https://ui.perfetto.dev); the same path doubles as
// the tracer's flush target, so an aborted migration still leaves a valid
// file. --timeseries samples the metrics registry on a sim-time period and
// writes a CSV (or JSON with a .json suffix). --record enables the wire
// flight recorder and writes its capture at exit; anomaly dumps (abort, NAK
// storm, stuck QPs) are counted in the capture. --metrics prints the
// process-wide metrics registry at exit. --slo arms the per-guest SLI
// pipeline, evaluates the given SLO spec (DESIGN.md §12 grammar) over the
// brownout windows, and writes the versioned slo_report artifact to
// --slo-out (default slo_report.json); --sli-csv dumps the raw window
// timeline.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "apps/perftest.hpp"
#include "common/log.hpp"
#include "migr/migration.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sli.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "rnic/world.hpp"

using namespace migr;

namespace {

struct Options {
  std::uint32_t qps = 16;
  std::uint32_t msg = 65536;
  std::uint32_t depth = 16;
  rnic::WrOpcode opcode = rnic::WrOpcode::rdma_write;
  bool presetup = true;
  bool migrate_receiver = false;
  double loss = 0.0;
  sim::DurationNs wbs_timeout = sim::sec(5);
  int precopy_rounds = 3;
  std::uint64_t seed = 42;
  std::string trace_path;       // empty = tracing off
  std::string timeseries_path;  // empty = sampling off
  sim::DurationNs timeseries_interval = sim::usec(100);
  std::string record_path;      // empty = flight recorder off
  bool metrics = false;
  std::string slo_spec;         // empty = SLO engine off
  std::string slo_out = "slo_report.json";
  std::string sli_csv;          // empty = no window-timeline CSV
  bool critical_path = false;   // blackout edge attribution (DESIGN.md §16)
  std::uint64_t trace_max_events = 0;  // 0 = tracer default capacity
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--qps N] [--msg BYTES] [--depth N] [--opcode write|send]\n"
               "          [--no-presetup] [--migrate-receiver] [--loss P]\n"
               "          [--wbs-timeout-ms T] [--precopy-rounds N] [--seed S]\n"
               "          [--trace OUT.json] [--timeseries OUT.csv|OUT.json]\n"
               "          [--timeseries-interval-us N] [--record OUT.json] [--metrics]\n"
               "          [--slo SPEC] [--slo-out OUT.json] [--sli-csv OUT.csv]\n"
               "          [--critical-path] [--trace-max-events N]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--qps") {
      o.qps = static_cast<std::uint32_t>(std::strtoul(need_value("--qps"), nullptr, 10));
    } else if (arg == "--msg") {
      o.msg = static_cast<std::uint32_t>(std::strtoul(need_value("--msg"), nullptr, 10));
    } else if (arg == "--depth") {
      o.depth = static_cast<std::uint32_t>(std::strtoul(need_value("--depth"), nullptr, 10));
    } else if (arg == "--opcode") {
      const std::string v = need_value("--opcode");
      if (v == "write") {
        o.opcode = rnic::WrOpcode::rdma_write;
      } else if (v == "send") {
        o.opcode = rnic::WrOpcode::send;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--no-presetup") {
      o.presetup = false;
    } else if (arg == "--migrate-receiver") {
      o.migrate_receiver = true;
    } else if (arg == "--loss") {
      o.loss = std::strtod(need_value("--loss"), nullptr);
    } else if (arg == "--wbs-timeout-ms") {
      o.wbs_timeout = sim::msec(std::strtod(need_value("--wbs-timeout-ms"), nullptr));
    } else if (arg == "--precopy-rounds") {
      o.precopy_rounds = std::atoi(need_value("--precopy-rounds"));
    } else if (arg == "--seed") {
      o.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (arg == "--trace") {
      o.trace_path = need_value("--trace");
    } else if (arg == "--timeseries") {
      o.timeseries_path = need_value("--timeseries");
    } else if (arg == "--timeseries-interval-us") {
      o.timeseries_interval =
          sim::usec(std::strtod(need_value("--timeseries-interval-us"), nullptr));
    } else if (arg == "--record") {
      o.record_path = need_value("--record");
    } else if (arg == "--metrics") {
      o.metrics = true;
    } else if (arg == "--slo") {
      o.slo_spec = need_value("--slo");
    } else if (arg == "--slo-out") {
      o.slo_out = need_value("--slo-out");
    } else if (arg == "--sli-csv") {
      o.sli_csv = need_value("--sli-csv");
    } else if (arg == "--critical-path") {
      o.critical_path = true;
    } else if (arg == "--trace-max-events") {
      o.trace_max_events =
          std::strtoull(need_value("--trace-max-events"), nullptr, 10);
    } else {
      usage(argv[0]);
    }
  }
  if (o.qps == 0 || o.msg == 0 || o.depth == 0) usage(argv[0]);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  rnic::World world({}, opt.seed);
  common::Logger::instance().set_time_source(&world.loop());
  if (!opt.trace_path.empty()) {
    auto& tracer = obs::Tracer::global();
    tracer.set_clock(&world.loop());
    tracer.set_enabled(true);
    // Aborts and failures flush to this path, so even a run that dies
    // mid-migration leaves a loadable trace.
    tracer.set_flush_path(opt.trace_path);
    if (opt.trace_max_events > 0) {
      // Bounded-memory tracing: cap the ring and spill full batches to the
      // trace file instead of evicting.
      tracer.set_capacity(static_cast<std::size_t>(opt.trace_max_events));
      if (auto st = tracer.set_incremental_path(opt.trace_path); !st.is_ok()) {
        std::fprintf(stderr, "cannot open trace spill file: %s\n",
                     st.to_string().c_str());
        return 1;
      }
    }
  }
  if (!opt.record_path.empty()) obs::FlightRecorder::global().set_enabled(true);
  obs::TimeSeriesSampler sampler;
  if (!opt.timeseries_path.empty()) {
    world.loop().schedule_every(opt.timeseries_interval,
                                [&] { sampler.sample(world.loop().now()); });
  }
  world.fabric().set_faults(net::Faults{.data_loss_prob = opt.loss});
  migrlib::GuestDirectory directory;
  std::vector<std::unique_ptr<migrlib::MigrRdmaRuntime>> rts;
  for (net::HostId h = 1; h <= 3; ++h) {
    rts.push_back(std::make_unique<migrlib::MigrRdmaRuntime>(directory, world.add_device(h),
                                                             world.fabric()));
  }

  apps::PerftestConfig cfg;
  cfg.num_qps = opt.qps;
  cfg.msg_size = opt.msg;
  cfg.queue_depth = opt.depth;
  cfg.opcode = opt.opcode;
  apps::PerftestPeer sender(*rts[0], world.add_process("tx"), 100,
                            apps::PerftestPeer::Role::sender, cfg);
  apps::PerftestPeer receiver(*rts[2], world.add_process("rx"), 200,
                              apps::PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < opt.qps; ++i) {
    auto st = apps::PerftestPeer::connect_pair(sender, i, receiver, i);
    if (!st.is_ok()) {
      std::fprintf(stderr, "connect failed: %s\n", st.to_string().c_str());
      return 1;
    }
  }
  // SLI/SLO pipeline: arm the taps before traffic starts so the idle
  // baseline covers the warm-up, and attach the burn-rate engine.
  auto& hub = obs::SliHub::global();
  std::vector<obs::SloRule> slo_rules;
  std::unique_ptr<obs::SloEngine> slo_engine;
  if (!opt.slo_spec.empty() || !opt.sli_csv.empty()) {
    hub.set_enabled(true);
    if (!opt.slo_spec.empty()) {
      std::string err;
      if (!obs::parse_slo_spec(opt.slo_spec, &slo_rules, &err)) {
        std::fprintf(stderr, "bad --slo spec: %s\n", err.c_str());
        return 2;
      }
      slo_engine = std::make_unique<obs::SloEngine>(slo_rules);
      hub.set_slo_engine(slo_engine.get());
    }
    sender.enable_sli(hub);
    receiver.enable_sli(hub);
  }

  sender.start();
  receiver.start();
  world.loop().run_for(sim::msec(5));

  const double warm_gbps = static_cast<double>(sender.stats().completed_bytes) * 8.0 /
                           static_cast<double>(world.loop().now());
  std::printf("workload: %u QP(s), %u B %s, depth %u — warm throughput %.1f Gbps\n",
              opt.qps, opt.msg, rnic::is_two_sided(opt.opcode) ? "SEND" : "WRITE",
              opt.depth, warm_gbps);

  migrlib::MigrationOptions mopts;
  mopts.pre_setup = opt.presetup;
  mopts.wbs_timeout = opt.wbs_timeout;
  mopts.max_precopy_rounds = opt.precopy_rounds;
  mopts.critical_path = opt.critical_path;
  migrlib::MigrationController ctl(world.loop(), world.fabric(), directory, mopts);
  auto& dest = world.add_process("restored");
  migrlib::MigrationReport report;
  bool done = false;
  const migrlib::GuestId target = opt.migrate_receiver ? 200 : 100;
  migrlib::MigratableApp* app = opt.migrate_receiver
                                    ? static_cast<migrlib::MigratableApp*>(&receiver)
                                    : &sender;
  auto st = ctl.start(target, 2, dest, app, [&](const migrlib::MigrationReport& r) {
    report = r;
    done = true;
  });
  if (!st.is_ok()) {
    std::fprintf(stderr, "cannot start migration: %s\n", st.to_string().c_str());
    return 1;
  }
  // Write the periodic/series artifacts. Called on both the failure and the
  // success path: a blackout anatomy of a failed run is exactly when the
  // artifacts matter.
  auto write_text = [](const std::string& path, const std::string& body) -> bool {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
  };
  auto write_artifacts = [&]() -> bool {
    bool ok = true;
    if (hub.enabled()) {
      hub.flush(world.loop().now());
      if (!opt.slo_spec.empty()) {
        char scen[160];
        std::snprintf(scen, sizeof scen, "migrrdma_sim qps=%u loss=%.3f seed=%llu",
                      opt.qps, opt.loss, static_cast<unsigned long long>(opt.seed));
        const std::string body =
            obs::export_slo_json(hub, slo_engine.get(), scen);
        if (write_text(opt.slo_out, body)) {
          std::printf("slo report: %zu alert(s) over %zu guest(s), written to %s\n",
                      slo_engine ? slo_engine->alerts().size() : 0,
                      hub.guest_ids().size(), opt.slo_out.c_str());
        } else {
          ok = false;
        }
      }
      if (!opt.sli_csv.empty() && !write_text(opt.sli_csv, hub.export_csv())) ok = false;
    }
    if (!opt.timeseries_path.empty()) {
      if (auto wst = sampler.write(opt.timeseries_path); !wst.is_ok()) {
        std::fprintf(stderr, "cannot write timeseries: %s\n", wst.to_string().c_str());
        ok = false;
      } else {
        std::printf("timeseries: %zu sample(s) written to %s\n", sampler.rows(),
                    opt.timeseries_path.c_str());
      }
    }
    if (!opt.record_path.empty()) {
      auto& rec = obs::FlightRecorder::global();
      if (auto wst = rec.write_json(opt.record_path); !wst.is_ok()) {
        std::fprintf(stderr, "cannot write capture: %s\n", wst.to_string().c_str());
        ok = false;
      } else {
        std::printf("flight recorder: %llu packet(s) seen, %llu dump(s), capture at %s\n",
                    static_cast<unsigned long long>(rec.total_recorded()),
                    static_cast<unsigned long long>(rec.dumps_triggered()),
                    opt.record_path.c_str());
      }
    }
    return ok;
  };

  while (!done && world.loop().now() < sim::sec(120)) world.loop().run_for(sim::msec(1));
  if (!report.ok) {
    std::fprintf(stderr, "migration failed: %s\n", report.error.c_str());
    (void)write_artifacts();  // abort/fail already flushed the trace
    return 1;
  }
  world.loop().run_for(sim::msec(20));

  std::printf("\nmigration of the %s (%s RDMA pre-setup):\n",
              opt.migrate_receiver ? "receiver" : "sender",
              opt.presetup ? "with" : "WITHOUT");
  std::printf("  pre-copy rounds        %llu (%.2f MiB copied)\n",
              static_cast<unsigned long long>(report.precopy_rounds + 1),
              static_cast<double>(report.precopy_bytes) / (1 << 20));
  std::printf("  wait-before-stop       %.3f ms%s\n", sim::to_msec(report.wbs_elapsed),
              report.wbs_timed_out ? "  [TIMED OUT -> replay]" : "");
  std::printf("  blackout breakdown     DumpRDMA %.2f | DumpOthers %.2f | Transfer %.2f | "
              "RestoreRDMA %.2f | FullRestore %.2f ms\n",
              sim::to_msec(report.dump_rdma), sim::to_msec(report.dump_others),
              sim::to_msec(report.transfer), sim::to_msec(report.restore_rdma),
              sim::to_msec(report.full_restore));
  std::printf("  service blackout       %.2f ms\n", sim::to_msec(report.service_blackout()));
  std::printf("  comm blackout          %.2f ms\n", sim::to_msec(report.comm_blackout()));
  std::printf("  pre-setup moved        %.2f ms of RDMA restore into the brownout\n",
              sim::to_msec(report.presetup_restore_rdma));
  if (hub.enabled()) {
    // Re-query: recovery usually completes in the post-resume settle window,
    // after the report snapshot was taken.
    hub.flush(world.loop().now());
    const obs::BrownoutAttribution att = hub.attribution(target);
    if (att.valid) {
      char recovery[32];
      if (att.recovery_ns < 0) {
        std::snprintf(recovery, sizeof recovery, "pending");
      } else {
        std::snprintf(recovery, sizeof recovery, "%.2f ms",
                      sim::to_msec(att.recovery_ns));
      }
      std::printf("  brownout               %.1f KiB goodput lost, %zu precopy iter(s), "
                  "recovery %s\n",
                  att.goodput_loss_bytes / 1024.0, att.precopy_p99.size(), recovery);
    }
  }

  const auto& s = rnic::is_two_sided(opt.opcode) ? receiver.stats() : sender.stats();
  std::printf("\ncorrectness: order violations %llu, corruptions %llu, errors %llu\n",
              static_cast<unsigned long long>(s.order_violations),
              static_cast<unsigned long long>(s.content_corruptions),
              static_cast<unsigned long long>(s.errors));

  if (!opt.trace_path.empty()) {
    auto& tracer = obs::Tracer::global();
    if (auto wst = tracer.write_chrome_json(opt.trace_path); !wst.is_ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n", wst.to_string().c_str());
      return 1;
    }
    std::printf("\ntrace: %llu event(s) written to %s (%llu dropped by the ring)\n",
                static_cast<unsigned long long>(tracer.size()), opt.trace_path.c_str(),
                static_cast<unsigned long long>(tracer.dropped()));
    tracer.set_clock(nullptr);
  }
  if (!write_artifacts()) return 1;
  std::printf("\nblackout waterfall: %s\n", report.waterfall_json().c_str());
  if (report.critical_path.valid) {
    std::printf("critical path (dominant=%s): %s\n",
                obs::edge_class_name(report.critical_path.dominant()),
                report.critical_path.json().c_str());
  }
  if (opt.metrics) {
    std::printf("\nmetrics registry:\n");
    obs::Registry::global().print(stdout);
  }
  return (s.order_violations + s.content_corruptions + s.errors) == 0 ? 0 : 1;
}
