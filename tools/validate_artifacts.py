#!/usr/bin/env python3
"""Schema checks for the blackout-anatomy observability artifacts.

tools/ci.sh runs an instrumented lossy drain (bench_cluster_drain with
--trace/--timeseries/--record) and feeds the three files through here:

  python3 tools/validate_artifacts.py \
      --trace drain.trace.json --timeseries drain.ts.csv --record drain.cap.json

--slo validates the brownout SLI/SLO artifact ("kind":"slo_report"): every
guest's windows must tile its timeline gap-free, frozen windows must bracket
[freeze_at, resume_at] exactly, and --expect-alert additionally requires at
least one burn-rate alert in the log.

--ft validates a continuous-FT ft_report ("kind":"ft_report"): epoch wire
accounting must balance against the rollup, committed epochs must be
monotone, and a failover's blackout waterfall must tile [killed_at,
resume_at] gap-free.

--drain additionally pins the parallel-stream mux rollup: bytes_attempted ==
bytes_delivered + bytes_lost (in total and per stream), per-stream counters
sum back to the rollup, and suppression conserves raw bytes (raw == shipped
+ suppressed). --expect-streams N requires an N-stream mux with every
stream carrying chunks. The ft_report's epochs.streams block gets the same
per-stream balance treatment.

Each artifact is optional; whatever is named must parse and conform. Exits
non-zero with a per-file report on the first violation class found.
"""

import argparse
import csv
import json
import sys

VALID_PHASES = {"B", "E", "i", "X", "M", "s", "f"}
PACKET_FIELDS = {"ts_ns", "src", "dst", "op", "qpn", "psn", "bytes", "verdict"}
PACKET_VERDICTS = {"delivered", "dropped", "reordered", "partitioned"}
RECORD_KINDS = {"flight_recorder_capture", "flight_recorder_dump"}
SERVICE_PHASES = {"idle", "precopy", "frozen", "recovery", "postcopy", "ft_buffered"}
WINDOW_FIELDS = {
    "start_ns", "end_ns", "phase", "precopy_iter", "msgs", "bytes",
    "retransmits", "p50_ns", "p99_ns", "p999_ns", "max_ns", "goodput_bps",
    "retx_rate",
}
ALERT_FIELDS = {"guest", "rule", "fired_at_ns", "resolved_at_ns", "burn_fast", "burn_slow"}


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return False


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    if not events:
        return fail(path, "trace is empty")
    flow_starts = {}
    flow_finishes = {}
    span_ids = set()
    parents = []  # (event index, parent id)
    dropped = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            return fail(path, f"event {i}: unexpected ph {ph!r}")
        if "name" not in ev:
            return fail(path, f"event {i}: missing name")
        if ph != "M" and "ts" not in ev:  # metadata events carry no timestamp
            return fail(path, f"event {i}: missing ts")
        if ph == "X" and "dur" not in ev:
            return fail(path, f"event {i}: complete event without dur")
        if ph == "M" and ev["name"] == "trace_stats":
            dropped = ev.get("args", {}).get("dropped", 0)
        if ph in ("s", "f"):
            if "id" not in ev:
                return fail(path, f"event {i}: flow event without id")
            side = flow_starts if ph == "s" else flow_finishes
            if ev["id"] in side:
                return fail(path, f"event {i}: duplicate flow {ph} id {ev['id']}")
            side[ev["id"]] = i
            if ph == "f" and ev.get("bp") != "e":
                return fail(path, f"event {i}: flow finish without bp=e")
        args = ev.get("args", {})
        if isinstance(args, dict):
            if args.get("id"):
                span_ids.add(args["id"])
            if args.get("parent"):
                parents.append((i, args["parent"]))
    # Causal-graph integrity. Ring eviction can orphan one endpoint of a
    # flow or a span's parent; the trace_stats metadata reports it, and the
    # graph checks relax — the artifact is still loadable, just truncated.
    if dropped == 0:
        for fid, i in flow_starts.items():
            if fid not in flow_finishes:
                return fail(path, f"event {i}: flow start {fid} without finish")
        for fid, i in flow_finishes.items():
            if fid not in flow_starts:
                return fail(path, f"event {i}: flow finish {fid} without start")
        for i, parent in parents:
            if parent not in span_ids:
                return fail(path, f"event {i}: parent id {parent} not in trace")
    print(f"OK   {path}: {len(events)} trace events, "
          f"{len(flow_starts)} flows, {len(parents)} parent links"
          f"{f', {dropped} dropped (graph checks relaxed)' if dropped else ''}")
    return True


def check_timeseries(path):
    with open(path, newline="") as f:
        rows = [r for r in csv.reader(f) if r]
    if len(rows) < 2:
        return fail(path, "no samples below the header")
    header = rows[0]
    if header[0] != "ts_ns":
        return fail(path, f"first column is {header[0]!r}, expected ts_ns")
    prev_ts = -1
    for i, cells in enumerate(rows[1:], start=2):
        if len(cells) != len(header):
            return fail(path, f"line {i}: {len(cells)} cells vs {len(header)} columns")
        ts = int(cells[0])
        if ts < prev_ts:
            return fail(path, f"line {i}: ts_ns went backwards ({ts} < {prev_ts})")
        prev_ts = ts
        for col, cell in zip(header[1:], cells[1:]):
            if cell == "":
                continue  # instrument not yet registered at this sample
            try:
                float(cell)
            except ValueError:
                return fail(path, f"line {i}: non-numeric cell {cell!r} in {col}")
    print(f"OK   {path}: {len(rows) - 1} samples x {len(header) - 1} series")
    return True


def check_packets(path, packets):
    for i, p in enumerate(packets):
        missing = PACKET_FIELDS - p.keys()
        if missing:
            return fail(path, f"packet {i}: missing {sorted(missing)}")
        if p["verdict"] not in PACKET_VERDICTS:
            return fail(path, f"packet {i}: unexpected verdict {p['verdict']!r}")
    return True


def check_record(path):
    with open(path) as f:
        doc = json.load(f)
    kind = doc.get("kind")
    if kind not in RECORD_KINDS:
        return fail(path, f"unexpected kind {kind!r}")
    if not isinstance(doc.get("packets"), list):
        return fail(path, "packets is not a list")
    if not check_packets(path, doc["packets"]):
        return False
    if kind == "flight_recorder_dump":
        if "reason" not in doc or not isinstance(doc.get("trace"), list):
            return fail(path, "dump without reason/trace window")
    print(f"OK   {path}: {kind} with {len(doc['packets'])} packets")
    return True


def check_slo(path, expect_alert=False):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("kind") != "slo_report":
        return fail(path, f"unexpected kind {doc.get('kind')!r}")
    if doc.get("version") != 1:
        return fail(path, f"unexpected version {doc.get('version')!r}")
    if not isinstance(doc.get("guests"), list):
        return fail(path, "guests is not a list")
    n_windows = 0
    for g in doc["guests"]:
        gid = g.get("guest")
        windows = g.get("windows")
        if not isinstance(windows, list):
            return fail(path, f"guest {gid}: windows is not a list")
        prev_end = None
        for i, w in enumerate(windows):
            missing = WINDOW_FIELDS - w.keys()
            if missing:
                return fail(path, f"guest {gid} window {i}: missing {sorted(missing)}")
            if w["phase"] not in SERVICE_PHASES:
                return fail(path, f"guest {gid} window {i}: bad phase {w['phase']!r}")
            if w["end_ns"] <= w["start_ns"]:
                return fail(path, f"guest {gid} window {i}: non-positive duration")
            if prev_end is not None and w["start_ns"] != prev_end:
                return fail(
                    path,
                    f"guest {gid} window {i}: timeline gap "
                    f"({w['start_ns']} != {prev_end}) — windows must tile",
                )
            prev_end = w["end_ns"]
        n_windows += len(windows)
        att = g.get("attribution")
        if not isinstance(att, dict) or "valid" not in att:
            return fail(path, f"guest {gid}: missing attribution")
        if att["valid"]:
            frozen = [w for w in windows if w["phase"] == "frozen"]
            if frozen:
                if frozen[0]["start_ns"] != att["freeze_at_ns"]:
                    return fail(path, f"guest {gid}: frozen windows start after freeze_at")
                if frozen[-1]["end_ns"] != att["resume_at_ns"]:
                    return fail(path, f"guest {gid}: frozen windows end before resume_at")
    alerts = doc.get("alerts")
    if not isinstance(alerts, list):
        return fail(path, "alerts is not a list")
    for i, a in enumerate(alerts):
        missing = ALERT_FIELDS - a.keys()
        if missing:
            return fail(path, f"alert {i}: missing {sorted(missing)}")
        if a["resolved_at_ns"] >= 0 and a["resolved_at_ns"] < a["fired_at_ns"]:
            return fail(path, f"alert {i}: resolved before it fired")
    if expect_alert and not alerts:
        return fail(path, "expected at least one SLO alert, saw none")
    print(
        f"OK   {path}: {len(doc['guests'])} guest timelines, "
        f"{n_windows} windows, {len(alerts)} alerts"
    )
    return True


DRAIN_TOP_FIELDS = {
    "kind", "version", "scenario", "mode", "host", "ok", "migrations",
    "completed", "failed", "retries", "aborts", "makespan_ns", "blackout_ns",
    "phases", "postcopy", "xfer", "guests",
}
XFER_FIELDS = {
    "streams", "migrations", "bytes_attempted", "bytes_delivered",
    "bytes_lost", "chunks", "retries", "per_stream", "suppression",
}
XFER_STREAM_FIELDS = {"chunks", "attempted", "delivered", "lost", "retries"}
SUPPRESSION_FIELDS = {
    "pages_zero", "pages_same", "pages_delta", "pages_full",
    "bytes_raw", "bytes_shipped", "bytes_suppressed",
}
DRAIN_POSTCOPY_FIELDS = {
    "migrations", "missing_pages", "demand_faults", "prefetched_pages",
    "fetch_bytes", "drain_ns_max", "fault_p99_ns_max",
}
GUEST_POSTCOPY_FIELDS = {
    "missing_pages", "demand_faults", "prefetched_pages", "fetch_requests",
    "fetch_bytes", "retries", "drain_ns", "fault_ns",
}


def check_xfer_streams(path, label, per_stream, totals):
    """Per-stream mux accounting: each stream balances internally and the
    per-stream array sums to the rollup totals exactly."""
    sums = {"chunks": 0, "attempted": 0, "delivered": 0, "lost": 0, "retries": 0}
    for k, s in enumerate(per_stream):
        missing = XFER_STREAM_FIELDS - s.keys()
        if missing:
            return fail(path, f"{label} stream {k}: missing {sorted(missing)}")
        if s["attempted"] != s["delivered"] + s["lost"]:
            return fail(path, f"{label} stream {k}: attempted {s['attempted']} "
                              f"!= delivered {s['delivered']} + lost {s['lost']}")
        for key in sums:
            sums[key] += s[key]
    if per_stream:
        for key, total in totals.items():
            if total is not None and sums[key] != total:
                return fail(path, f"{label}: per-stream {key} sums to "
                                  f"{sums[key]}, rollup says {total}")
    return True


def check_drain(path, expect_streams=0):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("kind") != "drain_report":
        return fail(path, f"unexpected kind {doc.get('kind')!r}")
    if doc.get("version") != 1:
        return fail(path, f"unexpected version {doc.get('version')!r}")
    missing = DRAIN_TOP_FIELDS - doc.keys()
    if missing:
        return fail(path, f"missing top-level fields {sorted(missing)}")

    # Parallel-stream mux rollup: present in every report (all-zero with the
    # mux off); attempted bytes must balance against delivered + lost both in
    # total and per stream, and suppression must conserve raw bytes.
    xf = doc["xfer"]
    missing = XFER_FIELDS - xf.keys()
    if missing:
        return fail(path, f"xfer block missing {sorted(missing)}")
    if xf["bytes_attempted"] != xf["bytes_delivered"] + xf["bytes_lost"]:
        return fail(path, f"xfer does not balance: attempted "
                          f"{xf['bytes_attempted']} != delivered "
                          f"{xf['bytes_delivered']} + lost {xf['bytes_lost']}")
    if not check_xfer_streams(path, "xfer", xf["per_stream"], {
        "chunks": xf["chunks"],
        "attempted": xf["bytes_attempted"],
        "delivered": xf["bytes_delivered"],
        "lost": xf["bytes_lost"],
        "retries": xf["retries"],
    }):
        return False
    sp = xf["suppression"]
    missing = SUPPRESSION_FIELDS - sp.keys()
    if missing:
        return fail(path, f"suppression block missing {sorted(missing)}")
    if sp["bytes_raw"] != sp["bytes_shipped"] + sp["bytes_suppressed"]:
        return fail(path, f"suppression does not balance: raw "
                          f"{sp['bytes_raw']} != shipped {sp['bytes_shipped']} "
                          f"+ suppressed {sp['bytes_suppressed']}")
    if expect_streams:
        if xf["streams"] != expect_streams:
            return fail(path, f"expected {expect_streams} mux streams, "
                              f"report says {xf['streams']}")
        if len(xf["per_stream"]) != expect_streams:
            return fail(path, f"expected {expect_streams} per-stream entries, "
                              f"saw {len(xf['per_stream'])}")
        for k, s in enumerate(xf["per_stream"]):
            if s["chunks"] == 0:
                return fail(path, f"stream {k} carried no chunks — round-robin "
                                  f"sharding is not spreading the load")
    if doc["mode"] not in ("precopy", "postcopy"):
        return fail(path, f"unexpected mode {doc['mode']!r}")
    bk = doc["blackout_ns"]
    if not all(k in bk for k in ("p50", "p99", "max")):
        return fail(path, "blackout_ns lacks p50/p99/max")
    if not (bk["p50"] <= bk["p99"] <= bk["max"]):
        return fail(path, "blackout percentiles are not monotone")
    missing = DRAIN_POSTCOPY_FIELDS - doc["postcopy"].keys()
    if missing:
        return fail(path, f"postcopy rollup missing {sorted(missing)}")
    if doc["mode"] == "precopy" and doc["postcopy"]["migrations"] != 0:
        return fail(path, "precopy leg claims postcopy migrations")
    n_faults = 0
    for g in doc["guests"]:
        gid = g.get("guest")
        wf = g.get("waterfall")
        if not isinstance(wf, dict):
            return fail(path, f"guest {gid}: waterfall is not an object")
        if wf.get("mode") != doc["mode"]:
            return fail(path, f"guest {gid}: waterfall mode {wf.get('mode')!r} "
                              f"!= report mode {doc['mode']!r}")
        # Slices must tile [freeze_at, resume_at] gap-free.
        cursor = wf["freeze_at_ns"]
        for i, s in enumerate(wf.get("slices", [])):
            if s["start_ns"] != cursor:
                return fail(path, f"guest {gid} slice {i}: gap in waterfall "
                                  f"({s['start_ns']} != {cursor})")
            cursor += s["dur_ns"]
        if wf.get("slices") and cursor != wf["resume_at_ns"]:
            return fail(path, f"guest {gid}: waterfall ends at {cursor}, "
                              f"not resume_at {wf['resume_at_ns']}")
        pc = g.get("postcopy")
        if doc["mode"] == "postcopy":
            if not isinstance(pc, dict):
                return fail(path, f"guest {gid}: postcopy leg without fault stats")
            missing = GUEST_POSTCOPY_FIELDS - pc.keys()
            if missing:
                return fail(path, f"guest {gid}: postcopy missing {sorted(missing)}")
            if pc["demand_faults"] + pc["prefetched_pages"] != pc["missing_pages"]:
                return fail(path, f"guest {gid}: fault accounting does not balance")
            fns = pc["fault_ns"]
            if not all(k in fns for k in ("p50", "p99", "max")):
                return fail(path, f"guest {gid}: fault_ns lacks p50/p99/max")
            n_faults += pc["demand_faults"]
        elif pc is not None:
            return fail(path, f"guest {gid}: precopy migration carries postcopy stats")
        gxf = g.get("xfer")
        if expect_streams and gxf is None:
            return fail(path, f"guest {gid}: mux expected but no xfer block")
        if gxf is not None:
            if gxf["bytes_attempted"] != gxf["bytes_delivered"] + gxf["bytes_lost"]:
                return fail(path, f"guest {gid}: xfer does not balance")
            if expect_streams and gxf["streams"] != expect_streams:
                return fail(path, f"guest {gid}: expected {expect_streams} "
                                  f"streams, saw {gxf['streams']}")
    print(f"OK   {path}: drain_report mode={doc['mode']} "
          f"{len(doc['guests'])} guests, {n_faults} demand faults, "
          f"xfer streams={xf['streams']}")
    return True


FT_TOP_FIELDS = {
    "kind", "version", "guest", "primary_host", "backup_host", "ok", "error",
    "protect_start_ns", "protected_at_ns", "end_ns", "epochs", "output_commit",
    "failover",
}
FT_STREAM_TOP_FIELDS = {"count", "chunks", "bytes_lost", "per_stream"}
FT_EPOCH_FIELDS = {
    "captured", "committed", "full_sync_bytes", "epoch_bytes_total",
    "xfer_bytes_attempted", "xfer_bytes_delivered", "transfer_retries",
    "records", "streams",
}
FT_RECORD_FIELDS = {
    "epoch", "captured_at_ns", "committed_at_ns", "commit_latency_ns", "freeze_ns",
    "mem_bytes", "rdma_bytes", "wire_bytes", "released_msgs", "retries",
}
FT_OUTPUT_FIELDS = {
    "buffered", "released", "dropped", "release_delay_p50_ns",
    "release_delay_p99_ns", "release_delay_max_ns",
}


def check_ft(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("kind") != "ft_report":
        return fail(path, f"unexpected kind {doc.get('kind')!r}")
    if doc.get("version") != 1:
        return fail(path, f"unexpected version {doc.get('version')!r}")
    missing = FT_TOP_FIELDS - doc.keys()
    if missing:
        return fail(path, f"missing top-level fields {sorted(missing)}")
    ep = doc["epochs"]
    missing = FT_EPOCH_FIELDS - ep.keys()
    if missing:
        return fail(path, f"epochs block missing {sorted(missing)}")

    # Epoch records: numbers strictly increase, commits are monotone and
    # never precede their capture, and the incremental wire accounting
    # balances against the rollup.
    incr_wire = 0
    prev_epoch = None
    prev_commit = 0
    committed = 0
    for i, r in enumerate(ep["records"]):
        missing = FT_RECORD_FIELDS - r.keys()
        if missing:
            return fail(path, f"epoch record {i}: missing {sorted(missing)}")
        if prev_epoch is not None and r["epoch"] <= prev_epoch:
            return fail(path, f"epoch record {i}: epoch {r['epoch']} "
                              f"does not increase past {prev_epoch}")
        prev_epoch = r["epoch"]
        if r["epoch"] >= 1:
            incr_wire += r["wire_bytes"]
        if r["committed_at_ns"] != 0:
            committed += 1
            if r["committed_at_ns"] < r["captured_at_ns"]:
                return fail(path, f"epoch record {i}: committed before captured")
            if r["committed_at_ns"] < prev_commit:
                return fail(path, f"epoch record {i}: commit times not monotone")
            prev_commit = r["committed_at_ns"]
    if incr_wire != ep["epoch_bytes_total"]:
        return fail(path, f"epoch accounting does not balance: "
                          f"records sum to {incr_wire}, rollup says "
                          f"{ep['epoch_bytes_total']}")
    if committed != ep["committed"]:
        return fail(path, f"{committed} committed records vs rollup {ep['committed']}")
    if ep["xfer_bytes_attempted"] < ep["full_sync_bytes"] + ep["epoch_bytes_total"]:
        return fail(path, "attempted transfer bytes below the first-attempt sum")

    # Chunked epoch sync rides the same mux as migration transfers; when it is
    # on (count > 0) every stream must balance and sum back to the rollup.
    st = ep["streams"]
    missing = FT_STREAM_TOP_FIELDS - st.keys()
    if missing:
        return fail(path, f"streams block missing {sorted(missing)}")
    if not check_xfer_streams(path, "epochs.streams", st["per_stream"], {
        "chunks": st["chunks"],
        "attempted": None,  # rollup carries attempted/delivered at epoch level
        "delivered": None,
        "lost": st["bytes_lost"],
        "retries": None,
    }):
        return False
    if st["count"] > 0 and len(st["per_stream"]) != st["count"]:
        return fail(path, f"streams count {st['count']} vs "
                          f"{len(st['per_stream'])} per-stream entries")

    oc = doc["output_commit"]
    missing = FT_OUTPUT_FIELDS - oc.keys()
    if missing:
        return fail(path, f"output_commit missing {sorted(missing)}")
    if not (oc["release_delay_p50_ns"] <= oc["release_delay_p99_ns"]
            <= oc["release_delay_max_ns"]):
        return fail(path, "release-delay percentiles are not monotone")

    fo = doc["failover"]
    if fo.get("occurred"):
        if fo["detected_at_ns"] < fo["killed_at_ns"]:
            return fail(path, "failover detected before the kill")
        if fo["blackout_ns"] != fo["resume_at_ns"] - fo["killed_at_ns"]:
            return fail(path, "failover blackout_ns != resume - killed")
        wf = fo.get("waterfall")
        if not isinstance(wf, dict) or not wf.get("slices"):
            return fail(path, "failover without a waterfall")
        if wf["freeze_at_ns"] != fo["killed_at_ns"]:
            return fail(path, "waterfall must anchor at the kill time")
        cursor = wf["freeze_at_ns"]
        for i, s in enumerate(wf["slices"]):
            if s["start_ns"] != cursor:
                return fail(path, f"waterfall slice {i}: gap "
                                  f"({s['start_ns']} != {cursor})")
            cursor += s["dur_ns"]
        if cursor != wf["resume_at_ns"]:
            return fail(path, f"waterfall ends at {cursor}, "
                              f"not resume_at {wf['resume_at_ns']}")
    print(f"OK   {path}: ft_report guest={doc['guest']} "
          f"{ep['committed']}/{ep['captured']} epochs committed, "
          f"failover={'yes' if fo.get('occurred') else 'no'}")
    return True


EDGE_CLASSES = [
    "wbs_wait", "ckpt_dump", "chunk_wire", "chunk_retry", "restore_apply",
    "qp_reestablish", "ctrl_rtt", "scheduler_hold", "slack",
]
CP_FIELDS = {"window_start_ns", "window_end_ns", "total_ns", "dominant",
             "by_class", "edges"}
CP_ROLLUP_CLASS_FIELDS = {"class", "dominant_of", "total_ns", "max_ns",
                          "p50_ns", "p99_ns"}


def check_cp_block(path, label, cp, blackout_ns=None):
    """One resolved critical path: schema, tiling (edges and by_class both
    sum exactly to the window == blackout), and a consistent dominant."""
    missing = CP_FIELDS - cp.keys()
    if missing:
        return fail(path, f"{label}: critical_path missing {sorted(missing)}")
    window = cp["window_end_ns"] - cp["window_start_ns"]
    if cp["total_ns"] != window:
        return fail(path, f"{label}: total_ns {cp['total_ns']} != window {window}")
    if blackout_ns is not None and cp["total_ns"] != blackout_ns:
        return fail(path, f"{label}: critical path covers {cp['total_ns']} ns "
                          f"but the blackout is {blackout_ns} ns")
    bc = cp["by_class"]
    if set(bc.keys()) != set(EDGE_CLASSES):
        return fail(path, f"{label}: by_class classes {sorted(bc)} != taxonomy")
    if sum(bc.values()) != cp["total_ns"]:
        return fail(path, f"{label}: by_class sums to {sum(bc.values())}, "
                          f"not total_ns {cp['total_ns']} — tiling broken")
    cursor = cp["window_start_ns"]
    for i, e in enumerate(cp["edges"]):
        if e.get("class") not in EDGE_CLASSES:
            return fail(path, f"{label} edge {i}: bad class {e.get('class')!r}")
        if e["start_ns"] != cursor:
            return fail(path, f"{label} edge {i}: gap ({e['start_ns']} != {cursor})")
        if e["dur_ns"] <= 0:
            return fail(path, f"{label} edge {i}: non-positive duration")
        cursor += e["dur_ns"]
    if cursor != cp["window_end_ns"]:
        return fail(path, f"{label}: edges end at {cursor}, "
                          f"not window_end {cp['window_end_ns']}")
    nonslack = {c: bc[c] for c in EDGE_CLASSES[:-1] if bc[c] > 0}
    expect = max(nonslack, key=lambda c: nonslack[c]) if nonslack else "slack"
    if not cp["dominant"]:
        return fail(path, f"{label}: empty dominant edge")
    if nonslack and bc[cp["dominant"]] != nonslack[expect]:
        return fail(path, f"{label}: dominant {cp['dominant']!r} is not the "
                          f"largest non-slack class ({expect!r})")
    return True


def check_drain_critical_path(path, expect_retry_edges=False, expect_dominant=None):
    """--critical-path pins for a drain report: fleet rollup present with the
    full taxonomy, and every completed guest carries a tiling critical path."""
    with open(path) as f:
        doc = json.load(f)
    fleet = doc.get("critical_path")
    if not isinstance(fleet, dict):
        return fail(path, "no fleet critical_path block — was the drain run "
                          "with --critical-path?")
    if fleet.get("migrations", 0) == 0:
        return fail(path, "fleet critical_path covers zero migrations")
    if not fleet.get("dominant"):
        return fail(path, "fleet critical_path without a dominant edge")
    rollup = fleet.get("by_class")
    if not isinstance(rollup, list) or [c.get("class") for c in rollup] != EDGE_CLASSES:
        return fail(path, "fleet by_class must list the full edge taxonomy in order")
    retry_total = 0
    for c in rollup:
        missing = CP_ROLLUP_CLASS_FIELDS - c.keys()
        if missing:
            return fail(path, f"by_class {c.get('class')}: missing {sorted(missing)}")
        if not (c["p50_ns"] <= c["p99_ns"] <= c["max_ns"] <= c["total_ns"]):
            return fail(path, f"by_class {c['class']}: percentile order broken")
        if c["class"] == "chunk_retry":
            retry_total = c["total_ns"]
    n_guests = 0
    for g in doc.get("guests", []):
        gid = g.get("guest")
        cp = g.get("critical_path")
        if cp is None:
            if g.get("ok"):
                return fail(path, f"guest {gid}: completed without a critical path")
            continue
        blackout = g["blackout_ns"] if g.get("ok") else None
        if not check_cp_block(path, f"guest {gid}", cp, blackout):
            return False
        n_guests += 1
    if n_guests != fleet["migrations"]:
        return fail(path, f"{n_guests} guest critical paths vs fleet "
                          f"rollup {fleet['migrations']}")
    if expect_retry_edges and retry_total == 0:
        return fail(path, "expected chunk_retry edges (lossy leg), saw none")
    if expect_dominant and fleet["dominant"] != expect_dominant:
        return fail(path, f"expected dominant edge {expect_dominant!r}, "
                          f"report says {fleet['dominant']!r}")
    print(f"OK   {path}: critical path over {n_guests} guests, "
          f"dominant={fleet['dominant']}")
    return True


def check_ft_critical_path(path):
    """--critical-path pin for an ft_report: a completed failover must carry
    a critical path tiling [killed_at, resume_at] exactly."""
    with open(path) as f:
        doc = json.load(f)
    fo = doc.get("failover", {})
    if not fo.get("occurred"):
        print(f"OK   {path}: no failover, no critical path required")
        return True
    cp = fo.get("critical_path")
    if not isinstance(cp, dict):
        return fail(path, "failover without a critical_path block — was the "
                          "run armed with critical_path?")
    if not check_cp_block(path, "failover", cp, fo["blackout_ns"]):
        return False
    print(f"OK   {path}: failover critical path, dominant={cp['dominant']}")
    return True


def check_postcopy_faster(pre_path, post_path):
    with open(pre_path) as f:
        pre = json.load(f)
    with open(post_path) as f:
        post = json.load(f)
    if pre.get("mode") != "precopy":
        return fail(pre_path, "expected a precopy leg")
    if post.get("mode") != "postcopy":
        return fail(post_path, "expected a postcopy leg")
    pre_p50 = pre["blackout_ns"]["p50"]
    post_p50 = post["blackout_ns"]["p50"]
    if post_p50 >= pre_p50:
        return fail(post_path, f"postcopy blackout p50 {post_p50} is not below "
                               f"precopy p50 {pre_p50}")
    if post["postcopy"]["missing_pages"] == 0:
        return fail(post_path, "postcopy leg left no pages behind — nothing was deferred")
    print(f"OK   postcopy p50 {post_p50} < precopy p50 {pre_p50} "
          f"({pre_p50 - post_p50} ns saved, "
          f"{post['postcopy']['demand_faults']} demand faults)")
    return True


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--trace")
    ap.add_argument("--timeseries")
    ap.add_argument("--record")
    ap.add_argument("--slo")
    ap.add_argument(
        "--expect-alert",
        action="store_true",
        help="fail unless the --slo report contains at least one alert",
    )
    ap.add_argument(
        "--drain",
        action="append",
        default=[],
        help="drain_report JSON to schema-check (repeatable)",
    )
    ap.add_argument(
        "--expect-streams",
        type=int,
        default=0,
        metavar="N",
        help="fail unless each --drain report shows an N-stream mux with "
             "every stream carrying chunks",
    )
    ap.add_argument(
        "--ft",
        action="append",
        default=[],
        help="ft_report JSON to schema-check (repeatable)",
    )
    ap.add_argument(
        "--expect-postcopy-faster",
        nargs=2,
        metavar=("PRE", "POST"),
        help="fail unless POST's blackout p50 beats PRE's",
    )
    ap.add_argument(
        "--critical-path",
        action="store_true",
        help="require critical-path blocks (schema + tiling) in every "
             "--drain and --ft report",
    )
    ap.add_argument(
        "--expect-retry-edges",
        action="store_true",
        help="fail unless some drain critical path carries chunk_retry time",
    )
    ap.add_argument(
        "--expect-dominant",
        metavar="EDGE",
        help="fail unless each drain's fleet dominant edge is EDGE",
    )
    args = ap.parse_args()

    ok = True
    if args.trace:
        ok = check_trace(args.trace) and ok
    if args.timeseries:
        ok = check_timeseries(args.timeseries) and ok
    if args.record:
        ok = check_record(args.record) and ok
    if args.slo:
        ok = check_slo(args.slo, expect_alert=args.expect_alert) and ok
    for path in args.drain:
        ok = check_drain(path, expect_streams=args.expect_streams) and ok
        if args.critical_path:
            ok = check_drain_critical_path(
                path, expect_retry_edges=args.expect_retry_edges,
                expect_dominant=args.expect_dominant) and ok
    for path in args.ft:
        ok = check_ft(path) and ok
        if args.critical_path:
            ok = check_ft_critical_path(path) and ok
    if args.expect_postcopy_faster:
        ok = check_postcopy_faster(*args.expect_postcopy_faster) and ok
    if not (args.trace or args.timeseries or args.record or args.slo
            or args.drain or args.ft or args.expect_postcopy_faster):
        ap.error("nothing to validate: pass --trace/--timeseries/--record/"
                 "--slo/--drain/--ft/--expect-postcopy-faster")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
