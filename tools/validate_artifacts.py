#!/usr/bin/env python3
"""Schema checks for the blackout-anatomy observability artifacts.

tools/ci.sh runs an instrumented lossy drain (bench_cluster_drain with
--trace/--timeseries/--record) and feeds the three files through here:

  python3 tools/validate_artifacts.py \
      --trace drain.trace.json --timeseries drain.ts.csv --record drain.cap.json

--slo validates the brownout SLI/SLO artifact ("kind":"slo_report"): every
guest's windows must tile its timeline gap-free, frozen windows must bracket
[freeze_at, resume_at] exactly, and --expect-alert additionally requires at
least one burn-rate alert in the log.

Each artifact is optional; whatever is named must parse and conform. Exits
non-zero with a per-file report on the first violation class found.
"""

import argparse
import csv
import json
import sys

VALID_PHASES = {"B", "E", "i", "X", "M"}
PACKET_FIELDS = {"ts_ns", "src", "dst", "op", "qpn", "psn", "bytes", "verdict"}
PACKET_VERDICTS = {"delivered", "dropped", "reordered", "partitioned"}
RECORD_KINDS = {"flight_recorder_capture", "flight_recorder_dump"}
SERVICE_PHASES = {"idle", "precopy", "frozen", "recovery"}
WINDOW_FIELDS = {
    "start_ns", "end_ns", "phase", "precopy_iter", "msgs", "bytes",
    "retransmits", "p50_ns", "p99_ns", "p999_ns", "max_ns", "goodput_bps",
    "retx_rate",
}
ALERT_FIELDS = {"guest", "rule", "fired_at_ns", "resolved_at_ns", "burn_fast", "burn_slow"}


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return False


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    if not events:
        return fail(path, "trace is empty")
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            return fail(path, f"event {i}: unexpected ph {ph!r}")
        if "name" not in ev:
            return fail(path, f"event {i}: missing name")
        if ph != "M" and "ts" not in ev:  # metadata events carry no timestamp
            return fail(path, f"event {i}: missing ts")
        if ph == "X" and "dur" not in ev:
            return fail(path, f"event {i}: complete event without dur")
    print(f"OK   {path}: {len(events)} trace events")
    return True


def check_timeseries(path):
    with open(path, newline="") as f:
        rows = [r for r in csv.reader(f) if r]
    if len(rows) < 2:
        return fail(path, "no samples below the header")
    header = rows[0]
    if header[0] != "ts_ns":
        return fail(path, f"first column is {header[0]!r}, expected ts_ns")
    prev_ts = -1
    for i, cells in enumerate(rows[1:], start=2):
        if len(cells) != len(header):
            return fail(path, f"line {i}: {len(cells)} cells vs {len(header)} columns")
        ts = int(cells[0])
        if ts < prev_ts:
            return fail(path, f"line {i}: ts_ns went backwards ({ts} < {prev_ts})")
        prev_ts = ts
        for col, cell in zip(header[1:], cells[1:]):
            if cell == "":
                continue  # instrument not yet registered at this sample
            try:
                float(cell)
            except ValueError:
                return fail(path, f"line {i}: non-numeric cell {cell!r} in {col}")
    print(f"OK   {path}: {len(rows) - 1} samples x {len(header) - 1} series")
    return True


def check_packets(path, packets):
    for i, p in enumerate(packets):
        missing = PACKET_FIELDS - p.keys()
        if missing:
            return fail(path, f"packet {i}: missing {sorted(missing)}")
        if p["verdict"] not in PACKET_VERDICTS:
            return fail(path, f"packet {i}: unexpected verdict {p['verdict']!r}")
    return True


def check_record(path):
    with open(path) as f:
        doc = json.load(f)
    kind = doc.get("kind")
    if kind not in RECORD_KINDS:
        return fail(path, f"unexpected kind {kind!r}")
    if not isinstance(doc.get("packets"), list):
        return fail(path, "packets is not a list")
    if not check_packets(path, doc["packets"]):
        return False
    if kind == "flight_recorder_dump":
        if "reason" not in doc or not isinstance(doc.get("trace"), list):
            return fail(path, "dump without reason/trace window")
    print(f"OK   {path}: {kind} with {len(doc['packets'])} packets")
    return True


def check_slo(path, expect_alert=False):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("kind") != "slo_report":
        return fail(path, f"unexpected kind {doc.get('kind')!r}")
    if doc.get("version") != 1:
        return fail(path, f"unexpected version {doc.get('version')!r}")
    if not isinstance(doc.get("guests"), list):
        return fail(path, "guests is not a list")
    n_windows = 0
    for g in doc["guests"]:
        gid = g.get("guest")
        windows = g.get("windows")
        if not isinstance(windows, list):
            return fail(path, f"guest {gid}: windows is not a list")
        prev_end = None
        for i, w in enumerate(windows):
            missing = WINDOW_FIELDS - w.keys()
            if missing:
                return fail(path, f"guest {gid} window {i}: missing {sorted(missing)}")
            if w["phase"] not in SERVICE_PHASES:
                return fail(path, f"guest {gid} window {i}: bad phase {w['phase']!r}")
            if w["end_ns"] <= w["start_ns"]:
                return fail(path, f"guest {gid} window {i}: non-positive duration")
            if prev_end is not None and w["start_ns"] != prev_end:
                return fail(
                    path,
                    f"guest {gid} window {i}: timeline gap "
                    f"({w['start_ns']} != {prev_end}) — windows must tile",
                )
            prev_end = w["end_ns"]
        n_windows += len(windows)
        att = g.get("attribution")
        if not isinstance(att, dict) or "valid" not in att:
            return fail(path, f"guest {gid}: missing attribution")
        if att["valid"]:
            frozen = [w for w in windows if w["phase"] == "frozen"]
            if frozen:
                if frozen[0]["start_ns"] != att["freeze_at_ns"]:
                    return fail(path, f"guest {gid}: frozen windows start after freeze_at")
                if frozen[-1]["end_ns"] != att["resume_at_ns"]:
                    return fail(path, f"guest {gid}: frozen windows end before resume_at")
    alerts = doc.get("alerts")
    if not isinstance(alerts, list):
        return fail(path, "alerts is not a list")
    for i, a in enumerate(alerts):
        missing = ALERT_FIELDS - a.keys()
        if missing:
            return fail(path, f"alert {i}: missing {sorted(missing)}")
        if a["resolved_at_ns"] >= 0 and a["resolved_at_ns"] < a["fired_at_ns"]:
            return fail(path, f"alert {i}: resolved before it fired")
    if expect_alert and not alerts:
        return fail(path, "expected at least one SLO alert, saw none")
    print(
        f"OK   {path}: {len(doc['guests'])} guest timelines, "
        f"{n_windows} windows, {len(alerts)} alerts"
    )
    return True


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--trace")
    ap.add_argument("--timeseries")
    ap.add_argument("--record")
    ap.add_argument("--slo")
    ap.add_argument(
        "--expect-alert",
        action="store_true",
        help="fail unless the --slo report contains at least one alert",
    )
    args = ap.parse_args()

    ok = True
    if args.trace:
        ok = check_trace(args.trace) and ok
    if args.timeseries:
        ok = check_timeseries(args.timeseries) and ok
    if args.record:
        ok = check_record(args.record) and ok
    if args.slo:
        ok = check_slo(args.slo, expect_alert=args.expect_alert) and ok
    if not (args.trace or args.timeseries or args.record or args.slo):
        ap.error("nothing to validate: pass --trace/--timeseries/--record/--slo")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
