# Empty compiler generated dependencies file for allreduce_migration.
# This may be replaced when dependencies are built.
