file(REMOVE_RECURSE
  "CMakeFiles/allreduce_migration.dir/allreduce_migration.cpp.o"
  "CMakeFiles/allreduce_migration.dir/allreduce_migration.cpp.o.d"
  "allreduce_migration"
  "allreduce_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
