# Empty compiler generated dependencies file for kv_migration.
# This may be replaced when dependencies are built.
