file(REMOVE_RECURSE
  "CMakeFiles/kv_migration.dir/kv_migration.cpp.o"
  "CMakeFiles/kv_migration.dir/kv_migration.cpp.o.d"
  "kv_migration"
  "kv_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
