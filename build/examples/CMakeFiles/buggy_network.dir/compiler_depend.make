# Empty compiler generated dependencies file for buggy_network.
# This may be replaced when dependencies are built.
