file(REMOVE_RECURSE
  "CMakeFiles/buggy_network.dir/buggy_network.cpp.o"
  "CMakeFiles/buggy_network.dir/buggy_network.cpp.o.d"
  "buggy_network"
  "buggy_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buggy_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
