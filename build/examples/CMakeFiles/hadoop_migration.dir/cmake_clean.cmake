file(REMOVE_RECURSE
  "CMakeFiles/hadoop_migration.dir/hadoop_migration.cpp.o"
  "CMakeFiles/hadoop_migration.dir/hadoop_migration.cpp.o.d"
  "hadoop_migration"
  "hadoop_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
