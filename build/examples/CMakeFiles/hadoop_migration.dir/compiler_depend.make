# Empty compiler generated dependencies file for hadoop_migration.
# This may be replaced when dependencies are built.
