# Empty compiler generated dependencies file for bench_ablation_wbs.
# This may be replaced when dependencies are built.
