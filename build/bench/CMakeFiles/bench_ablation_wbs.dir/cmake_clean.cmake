file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wbs.dir/bench_ablation_wbs.cpp.o"
  "CMakeFiles/bench_ablation_wbs.dir/bench_ablation_wbs.cpp.o.d"
  "bench_ablation_wbs"
  "bench_ablation_wbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
