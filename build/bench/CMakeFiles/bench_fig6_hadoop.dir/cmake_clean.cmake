file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hadoop.dir/bench_fig6_hadoop.cpp.o"
  "CMakeFiles/bench_fig6_hadoop.dir/bench_fig6_hadoop.cpp.o.d"
  "bench_fig6_hadoop"
  "bench_fig6_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
