# Empty dependencies file for bench_fig6_hadoop.
# This may be replaced when dependencies are built.
