# Empty dependencies file for bench_fig5_tput.
# This may be replaced when dependencies are built.
