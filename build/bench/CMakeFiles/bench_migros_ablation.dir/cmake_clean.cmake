file(REMOVE_RECURSE
  "CMakeFiles/bench_migros_ablation.dir/bench_migros_ablation.cpp.o"
  "CMakeFiles/bench_migros_ablation.dir/bench_migros_ablation.cpp.o.d"
  "bench_migros_ablation"
  "bench_migros_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_migros_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
