# Empty dependencies file for bench_migros_ablation.
# This may be replaced when dependencies are built.
