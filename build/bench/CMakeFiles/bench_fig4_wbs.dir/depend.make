# Empty dependencies file for bench_fig4_wbs.
# This may be replaced when dependencies are built.
