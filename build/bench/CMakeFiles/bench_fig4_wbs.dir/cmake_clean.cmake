file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wbs.dir/bench_fig4_wbs.cpp.o"
  "CMakeFiles/bench_fig4_wbs.dir/bench_fig4_wbs.cpp.o.d"
  "bench_fig4_wbs"
  "bench_fig4_wbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
