file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_virt.dir/bench_tab4_virt.cpp.o"
  "CMakeFiles/bench_tab4_virt.dir/bench_tab4_virt.cpp.o.d"
  "bench_tab4_virt"
  "bench_tab4_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
