file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lkey.dir/bench_ablation_lkey.cpp.o"
  "CMakeFiles/bench_ablation_lkey.dir/bench_ablation_lkey.cpp.o.d"
  "bench_ablation_lkey"
  "bench_ablation_lkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
