# Empty dependencies file for bench_ablation_lkey.
# This may be replaced when dependencies are built.
