# Empty compiler generated dependencies file for bench_fig3_blackout.
# This may be replaced when dependencies are built.
