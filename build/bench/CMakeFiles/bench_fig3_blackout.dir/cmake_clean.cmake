file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_blackout.dir/bench_fig3_blackout.cpp.o"
  "CMakeFiles/bench_fig3_blackout.dir/bench_fig3_blackout.cpp.o.d"
  "bench_fig3_blackout"
  "bench_fig3_blackout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_blackout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
