# Empty dependencies file for migr_common.
# This may be replaced when dependencies are built.
