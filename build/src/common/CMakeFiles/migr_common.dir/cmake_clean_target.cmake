file(REMOVE_RECURSE
  "libmigr_common.a"
)
