file(REMOVE_RECURSE
  "CMakeFiles/migr_common.dir/log.cpp.o"
  "CMakeFiles/migr_common.dir/log.cpp.o.d"
  "CMakeFiles/migr_common.dir/result.cpp.o"
  "CMakeFiles/migr_common.dir/result.cpp.o.d"
  "libmigr_common.a"
  "libmigr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
