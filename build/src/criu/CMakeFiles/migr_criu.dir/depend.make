# Empty dependencies file for migr_criu.
# This may be replaced when dependencies are built.
