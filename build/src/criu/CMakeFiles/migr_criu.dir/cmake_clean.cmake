file(REMOVE_RECURSE
  "CMakeFiles/migr_criu.dir/checkpoint.cpp.o"
  "CMakeFiles/migr_criu.dir/checkpoint.cpp.o.d"
  "CMakeFiles/migr_criu.dir/image.cpp.o"
  "CMakeFiles/migr_criu.dir/image.cpp.o.d"
  "libmigr_criu.a"
  "libmigr_criu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_criu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
