file(REMOVE_RECURSE
  "libmigr_criu.a"
)
