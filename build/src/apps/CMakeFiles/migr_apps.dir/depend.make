# Empty dependencies file for migr_apps.
# This may be replaced when dependencies are built.
