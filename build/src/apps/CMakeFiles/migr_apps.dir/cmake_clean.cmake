file(REMOVE_RECURSE
  "CMakeFiles/migr_apps.dir/minihadoop.cpp.o"
  "CMakeFiles/migr_apps.dir/minihadoop.cpp.o.d"
  "CMakeFiles/migr_apps.dir/msg_node.cpp.o"
  "CMakeFiles/migr_apps.dir/msg_node.cpp.o.d"
  "CMakeFiles/migr_apps.dir/perftest.cpp.o"
  "CMakeFiles/migr_apps.dir/perftest.cpp.o.d"
  "libmigr_apps.a"
  "libmigr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
