file(REMOVE_RECURSE
  "libmigr_apps.a"
)
