
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/migr/guest_lib.cpp" "src/migr/CMakeFiles/migr_core.dir/guest_lib.cpp.o" "gcc" "src/migr/CMakeFiles/migr_core.dir/guest_lib.cpp.o.d"
  "/root/repo/src/migr/guest_restore.cpp" "src/migr/CMakeFiles/migr_core.dir/guest_restore.cpp.o" "gcc" "src/migr/CMakeFiles/migr_core.dir/guest_restore.cpp.o.d"
  "/root/repo/src/migr/image.cpp" "src/migr/CMakeFiles/migr_core.dir/image.cpp.o" "gcc" "src/migr/CMakeFiles/migr_core.dir/image.cpp.o.d"
  "/root/repo/src/migr/migration.cpp" "src/migr/CMakeFiles/migr_core.dir/migration.cpp.o" "gcc" "src/migr/CMakeFiles/migr_core.dir/migration.cpp.o.d"
  "/root/repo/src/migr/plugin.cpp" "src/migr/CMakeFiles/migr_core.dir/plugin.cpp.o" "gcc" "src/migr/CMakeFiles/migr_core.dir/plugin.cpp.o.d"
  "/root/repo/src/migr/runtime.cpp" "src/migr/CMakeFiles/migr_core.dir/runtime.cpp.o" "gcc" "src/migr/CMakeFiles/migr_core.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/migr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/migr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/migr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/migr_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/rnic/CMakeFiles/migr_rnic.dir/DependInfo.cmake"
  "/root/repo/build/src/criu/CMakeFiles/migr_criu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
