file(REMOVE_RECURSE
  "CMakeFiles/migr_core.dir/guest_lib.cpp.o"
  "CMakeFiles/migr_core.dir/guest_lib.cpp.o.d"
  "CMakeFiles/migr_core.dir/guest_restore.cpp.o"
  "CMakeFiles/migr_core.dir/guest_restore.cpp.o.d"
  "CMakeFiles/migr_core.dir/image.cpp.o"
  "CMakeFiles/migr_core.dir/image.cpp.o.d"
  "CMakeFiles/migr_core.dir/migration.cpp.o"
  "CMakeFiles/migr_core.dir/migration.cpp.o.d"
  "CMakeFiles/migr_core.dir/plugin.cpp.o"
  "CMakeFiles/migr_core.dir/plugin.cpp.o.d"
  "CMakeFiles/migr_core.dir/runtime.cpp.o"
  "CMakeFiles/migr_core.dir/runtime.cpp.o.d"
  "libmigr_core.a"
  "libmigr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
