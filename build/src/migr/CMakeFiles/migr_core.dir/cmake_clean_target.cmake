file(REMOVE_RECURSE
  "libmigr_core.a"
)
