# Empty dependencies file for migr_core.
# This may be replaced when dependencies are built.
