file(REMOVE_RECURSE
  "libmigr_sim.a"
)
