# Empty compiler generated dependencies file for migr_sim.
# This may be replaced when dependencies are built.
