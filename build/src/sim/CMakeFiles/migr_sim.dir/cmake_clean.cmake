file(REMOVE_RECURSE
  "CMakeFiles/migr_sim.dir/event_loop.cpp.o"
  "CMakeFiles/migr_sim.dir/event_loop.cpp.o.d"
  "libmigr_sim.a"
  "libmigr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
