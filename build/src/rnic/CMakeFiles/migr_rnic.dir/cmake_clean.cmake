file(REMOVE_RECURSE
  "CMakeFiles/migr_rnic.dir/device.cpp.o"
  "CMakeFiles/migr_rnic.dir/device.cpp.o.d"
  "CMakeFiles/migr_rnic.dir/transport.cpp.o"
  "CMakeFiles/migr_rnic.dir/transport.cpp.o.d"
  "CMakeFiles/migr_rnic.dir/wire.cpp.o"
  "CMakeFiles/migr_rnic.dir/wire.cpp.o.d"
  "libmigr_rnic.a"
  "libmigr_rnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_rnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
