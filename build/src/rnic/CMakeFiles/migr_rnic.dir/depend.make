# Empty dependencies file for migr_rnic.
# This may be replaced when dependencies are built.
