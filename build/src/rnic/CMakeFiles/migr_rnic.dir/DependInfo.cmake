
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rnic/device.cpp" "src/rnic/CMakeFiles/migr_rnic.dir/device.cpp.o" "gcc" "src/rnic/CMakeFiles/migr_rnic.dir/device.cpp.o.d"
  "/root/repo/src/rnic/transport.cpp" "src/rnic/CMakeFiles/migr_rnic.dir/transport.cpp.o" "gcc" "src/rnic/CMakeFiles/migr_rnic.dir/transport.cpp.o.d"
  "/root/repo/src/rnic/wire.cpp" "src/rnic/CMakeFiles/migr_rnic.dir/wire.cpp.o" "gcc" "src/rnic/CMakeFiles/migr_rnic.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/migr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/migr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/migr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/migr_proc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
