file(REMOVE_RECURSE
  "libmigr_rnic.a"
)
