file(REMOVE_RECURSE
  "CMakeFiles/migr_proc.dir/address_space.cpp.o"
  "CMakeFiles/migr_proc.dir/address_space.cpp.o.d"
  "libmigr_proc.a"
  "libmigr_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
