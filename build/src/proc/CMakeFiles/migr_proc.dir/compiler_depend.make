# Empty compiler generated dependencies file for migr_proc.
# This may be replaced when dependencies are built.
