file(REMOVE_RECURSE
  "libmigr_proc.a"
)
