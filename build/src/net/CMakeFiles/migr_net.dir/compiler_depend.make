# Empty compiler generated dependencies file for migr_net.
# This may be replaced when dependencies are built.
