file(REMOVE_RECURSE
  "libmigr_net.a"
)
