file(REMOVE_RECURSE
  "CMakeFiles/migr_net.dir/fabric.cpp.o"
  "CMakeFiles/migr_net.dir/fabric.cpp.o.d"
  "libmigr_net.a"
  "libmigr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
