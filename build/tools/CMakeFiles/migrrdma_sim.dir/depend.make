# Empty dependencies file for migrrdma_sim.
# This may be replaced when dependencies are built.
