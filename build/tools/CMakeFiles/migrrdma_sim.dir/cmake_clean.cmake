file(REMOVE_RECURSE
  "CMakeFiles/migrrdma_sim.dir/migrrdma_sim.cpp.o"
  "CMakeFiles/migrrdma_sim.dir/migrrdma_sim.cpp.o.d"
  "migrrdma_sim"
  "migrrdma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrrdma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
