# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/rnic_test[1]_include.cmake")
include("/root/repo/build/tests/criu_test[1]_include.cmake")
include("/root/repo/build/tests/migr_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/guest_test[1]_include.cmake")
include("/root/repo/build/tests/rnic_edge_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
