# Empty dependencies file for criu_test.
# This may be replaced when dependencies are built.
