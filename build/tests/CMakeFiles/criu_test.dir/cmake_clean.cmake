file(REMOVE_RECURSE
  "CMakeFiles/criu_test.dir/criu_test.cpp.o"
  "CMakeFiles/criu_test.dir/criu_test.cpp.o.d"
  "criu_test"
  "criu_test.pdb"
  "criu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
