# Empty compiler generated dependencies file for migr_test.
# This may be replaced when dependencies are built.
