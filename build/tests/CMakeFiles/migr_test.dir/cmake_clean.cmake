file(REMOVE_RECURSE
  "CMakeFiles/migr_test.dir/migr_test.cpp.o"
  "CMakeFiles/migr_test.dir/migr_test.cpp.o.d"
  "migr_test"
  "migr_test.pdb"
  "migr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
