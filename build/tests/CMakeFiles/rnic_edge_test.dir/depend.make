# Empty dependencies file for rnic_edge_test.
# This may be replaced when dependencies are built.
