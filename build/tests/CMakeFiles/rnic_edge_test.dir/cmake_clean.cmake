file(REMOVE_RECURSE
  "CMakeFiles/rnic_edge_test.dir/rnic_edge_test.cpp.o"
  "CMakeFiles/rnic_edge_test.dir/rnic_edge_test.cpp.o.d"
  "rnic_edge_test"
  "rnic_edge_test.pdb"
  "rnic_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnic_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
