
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/controller_test.cpp" "tests/CMakeFiles/controller_test.dir/controller_test.cpp.o" "gcc" "tests/CMakeFiles/controller_test.dir/controller_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/migr/CMakeFiles/migr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/migr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/rnic/CMakeFiles/migr_rnic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/migr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/criu/CMakeFiles/migr_criu.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/migr_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/migr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/migr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
