// Quickstart: the MigrRDMA public API in one file.
//
// Builds a two-host world, runs RDMA traffic through the MigrRDMA guest
// library (virtual QPNs / keys), then live-migrates the sender to a third
// host while the connection stays up — all assertions the paper makes about
// transparency hold: same virtual handles, no lost/duplicated completions.
//
//   build/examples/quickstart
#include <cstdio>

#include "migr/guest_lib.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

using namespace migr;
using namespace migr::migrlib;

int main() {
  // --- a tiny data center: three hosts on a 100 Gbps fabric ---
  rnic::World world;
  GuestDirectory directory;
  rnic::Device& dev1 = world.add_device(1);
  rnic::Device& dev2 = world.add_device(2);
  rnic::Device& dev3 = world.add_device(3);
  MigrRdmaRuntime rt1(directory, dev1, world.fabric());
  MigrRdmaRuntime rt2(directory, dev2, world.fabric());
  MigrRdmaRuntime rt3(directory, dev3, world.fabric());

  // --- two applications, each with the MigrRDMA guest library ---
  auto& proc_a = world.add_process("app-a");
  auto& proc_b = world.add_process("app-b");
  GuestContext* a = rt1.create_guest(proc_a, /*guest id=*/42).value();
  GuestContext* b = rt3.create_guest(proc_b, 43).value();

  // Standard verbs flow, in virtual ID space.
  VHandle pd_a = a->alloc_pd().value();
  VHandle cq_a = a->create_cq(256).value();
  VHandle pd_b = b->alloc_pd().value();
  VHandle cq_b = b->create_cq(256).value();

  GuestQpAttr attr;
  attr.vpd = pd_a;
  attr.vsend_cq = cq_a;
  attr.vrecv_cq = cq_a;
  VQpn qa = a->create_qp(attr).value();
  attr.vpd = pd_b;
  attr.vsend_cq = cq_b;
  attr.vrecv_cq = cq_b;
  VQpn qb = b->create_qp(attr).value();

  // Applications exchange guest ids + virtual QPNs out of band, then both
  // sides connect (MigrRDMA resolves virtual->physical internally).
  a->connect_qp(qa, 43, qb, /*my psn=*/100, /*peer psn=*/200).is_ok();
  b->connect_qp(qb, 42, qa, 200, 100).is_ok();

  // Buffers + MRs. reg_mr returns dense virtual keys.
  std::uint64_t src = proc_a.mem().mmap(4096, "src").value();
  std::uint64_t dst = proc_b.mem().mmap(4096, "dst").value();
  VMr mr_a = a->reg_mr(pd_a, src, 4096, rnic::kAccessLocalWrite).value();
  VMr mr_b =
      b->reg_mr(pd_b, dst, 4096, rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite).value();
  std::printf("virtual keys are dense: vlkey=%u vrkey=%u\n", mr_a.vlkey, mr_b.vrkey);

  // In the simulation, a process is an explicit object; after migration the
  // application's memory lives in the restored (destination) process. Real
  // applications never notice — this pointer is the sim's stand-in for
  // "the current address space".
  proc::SimProcess* self = &proc_a;

  auto write_once = [&](std::uint64_t value) {
    self->mem().write(src, {reinterpret_cast<std::uint8_t*>(&value), 8}).is_ok();
    rnic::SendWr wr;
    wr.wr_id = value;
    wr.opcode = rnic::WrOpcode::rdma_write;
    wr.remote_addr = dst;
    wr.rkey = mr_b.vrkey;  // virtual rkey; resolved via fetch-on-first-use
    wr.sge = {{src, 8, mr_a.vlkey}};
    if (!a->post_send(qa, wr).is_ok()) return false;
    rnic::Cqe cqe;
    while (a->poll_cq(cq_a, {&cqe, 1}) == 0) world.loop().run_for(sim::usec(10));
    std::uint64_t landed = 0;
    proc_b.mem().read(dst, {reinterpret_cast<std::uint8_t*>(&landed), 8}).is_ok();
    std::printf("WRITE wr_id=%llu completed (qpn=%u, virtual), peer sees %llu\n",
                static_cast<unsigned long long>(cqe.wr_id), cqe.qpn,
                static_cast<unsigned long long>(landed));
    return landed == value;
  };

  if (!write_once(1001)) return 1;

  // --- live-migrate app-a from host 1 to host 2 ---
  std::printf("\nmigrating guest 42: host 1 -> host 2 ...\n");
  auto& dest_proc = world.add_process("app-a-restored");
  MigrationController controller(world.loop(), world.fabric(), directory);
  bool done = false;
  MigrationReport report;
  controller
      .start(42, /*dest host=*/2, dest_proc, /*app=*/nullptr,
             [&](const MigrationReport& r) {
               report = r;
               done = true;
             })
      .is_ok();
  while (!done) world.loop().run_for(sim::msec(1));
  if (!report.ok) {
    std::printf("migration failed: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("migrated: comm blackout %.2f ms (service blackout %.2f ms, "
              "wait-before-stop %.2f ms, pre-setup moved %.2f ms of RDMA "
              "restoration out of the blackout)\n",
              sim::to_msec(report.comm_blackout()), sim::to_msec(report.service_blackout()),
              sim::to_msec(report.wbs_elapsed), sim::to_msec(report.presetup_restore_rdma));
  std::printf("physical QPN changed (%u -> %u) but the app still uses vQPN %u\n", qa,
              a->physical_qpn(qa).value(), qa);
  self = &dest_proc;  // the application now runs in the restored container

  // Same virtual handles, same API, new host.
  if (!write_once(2002)) return 1;
  std::printf("\nquickstart OK\n");
  return 0;
}
