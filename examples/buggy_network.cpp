// Example: migrating off a spotty network (§3.4, "handling buggy network
// situations").
//
// The fabric drops every data packet, so in-flight WRs can never complete
// and a plain wait-before-stop would hang. MigrRDMA bounds the wait: after
// the timeout it proceeds with stop-and-copy, harvests the incomplete WRs
// from the (memory-mapped) queue buffers, and replays them from the
// destination — where the network is healthy — before the intercepted WRs.
//
//   build/examples/buggy_network
#include <cstdio>

#include "migr/guest_lib.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

using namespace migr;
using namespace migr::migrlib;

int main() {
  rnic::World world;
  GuestDirectory directory;
  MigrRdmaRuntime rt1(directory, world.add_device(1), world.fabric());
  MigrRdmaRuntime rt2(directory, world.add_device(2), world.fabric());
  MigrRdmaRuntime rt3(directory, world.add_device(3), world.fabric());

  auto& pa = world.add_process("app");
  auto& pb = world.add_process("peer");
  GuestContext* a = rt1.create_guest(pa, 1).value();
  GuestContext* b = rt3.create_guest(pb, 2).value();
  VHandle pd_a = a->alloc_pd().value(), cq_a = a->create_cq(128).value();
  VHandle pd_b = b->alloc_pd().value(), cq_b = b->create_cq(128).value();
  GuestQpAttr attr{rnic::QpType::rc, pd_a, cq_a, cq_a, 0, {}};
  VQpn qa = a->create_qp(attr).value();
  attr = {rnic::QpType::rc, pd_b, cq_b, cq_b, 0, {}};
  VQpn qb = b->create_qp(attr).value();
  a->connect_qp(qa, 2, qb, 1, 2).is_ok();
  b->connect_qp(qb, 1, qa, 2, 1).is_ok();
  std::uint64_t src = pa.mem().mmap(4096, "src").value();
  std::uint64_t dst = pb.mem().mmap(4096, "dst").value();
  VMr mr_a = a->reg_mr(pd_a, src, 4096, rnic::kAccessLocalWrite).value();
  VMr mr_b =
      b->reg_mr(pd_b, dst, 4096, rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite).value();

  // Warm the rkey cache over the healthy network, then break it.
  std::uint64_t v = 1;
  pa.mem().write(src, {reinterpret_cast<std::uint8_t*>(&v), 8}).is_ok();
  rnic::SendWr wr;
  wr.wr_id = 1;
  wr.opcode = rnic::WrOpcode::rdma_write;
  wr.remote_addr = dst;
  wr.rkey = mr_b.vrkey;
  wr.sge = {{src, 8, mr_a.vlkey}};
  a->post_send(qa, wr).is_ok();
  world.loop().run_for(sim::msec(1));
  rnic::Cqe warm;
  a->poll_cq(cq_a, {&warm, 1});
  std::printf("healthy network: first WRITE delivered (wr_id=%llu)\n",
              static_cast<unsigned long long>(warm.wr_id));

  world.fabric().set_faults(net::Faults{.data_loss_prob = 1.0});
  v = 42;
  pa.mem().write(src, {reinterpret_cast<std::uint8_t*>(&v), 8}).is_ok();
  wr.wr_id = 2;
  a->post_send(qa, wr).is_ok();
  world.loop().run_for(sim::msec(2));
  std::printf("network broken: WRITE wr_id=2 is stuck in flight\n");

  MigrationOptions opts;
  opts.wbs_timeout = sim::msec(3);  // the §3.4 upper bound
  auto& dest = world.add_process("app-restored");
  MigrationController ctl(world.loop(), world.fabric(), directory, opts);
  MigrationReport report;
  bool done = false;
  ctl.start(1, 2, dest, nullptr, [&](const MigrationReport& r) {
       report = r;
       done = true;
     })
      .is_ok();
  // The destination's network is healthy.
  auto healer = world.loop().schedule_every(sim::usec(200), [&] {
    if (directory.locate(1) == 2) world.fabric().set_faults(net::Faults{});
  });
  while (!done) world.loop().run_for(sim::msec(1));
  healer.cancel();
  std::printf("migration %s: wait-before-stop %s after %.2f ms (bound: %.2f ms)\n",
              report.ok ? "ok" : report.error.c_str(),
              report.wbs_timed_out ? "TIMED OUT (as designed)" : "completed",
              sim::to_msec(report.wbs_elapsed), sim::to_msec(opts.wbs_timeout));

  // The harvested WR replays from the destination and completes.
  rnic::Cqe cqe;
  while (a->poll_cq(cq_a, {&cqe, 1}) == 0) world.loop().run_for(sim::usec(100));
  std::uint64_t landed = 0;
  pb.mem().read(dst, {reinterpret_cast<std::uint8_t*>(&landed), 8}).is_ok();
  std::printf("after restore: wr_id=%llu completed with status %s; peer sees %llu\n",
              static_cast<unsigned long long>(cqe.wr_id),
              cqe.status == rnic::CqeStatus::success ? "success" : "error",
              static_cast<unsigned long long>(landed));
  const bool ok = report.ok && report.wbs_timed_out && cqe.wr_id == 2 &&
                  cqe.status == rnic::CqeStatus::success && landed == 42;
  std::printf("\nbuggy_network %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
