// Example: live-migrating a worker of a distributed-training job.
//
// The paper's opening motivation includes machine-learning training over
// RDMA. This example runs a ring all-reduce — a reduce pass followed by a
// broadcast pass around a ring of four workers, moving 8 KiB gradient
// chunks with RDMA WRITE-with-immediate — and live-migrates one worker
// between iterations. The job never observes a wrong sum: reductions
// before and after the migration are exact on every worker.
//
//   build/examples/allreduce_migration
#include <cstdio>
#include <cstring>
#include <vector>

#include "migr/guest_lib.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

using namespace migr;
using namespace migr::migrlib;

namespace {

constexpr std::uint32_t kWorkers = 4;
constexpr std::uint32_t kElems = 1024;  // 8 KiB gradient chunks

struct Worker : MigratableApp {
  proc::SimProcess* proc;
  GuestContext* guest = nullptr;
  VHandle pd = 0, cq = 0;
  VQpn to_next = 0;    // we write into the next worker's inbox on this QP
  VQpn from_prev = 0;  // the previous worker's writes land through this QP
  std::uint64_t grad = 0, inbox = 0;
  VMr grad_mr, inbox_mr;
  std::uint64_t next_inbox_addr = 0;
  std::uint32_t next_inbox_vrkey = 0;

  Worker(MigrRdmaRuntime& r, proc::SimProcess& p, GuestId id) : proc(&p) {
    guest = r.create_guest(p, id).value();
    pd = guest->alloc_pd().value();
    cq = guest->create_cq(256).value();
    GuestQpAttr attr{rnic::QpType::rc, pd, cq, cq, 0, {}};
    to_next = guest->create_qp(attr).value();
    from_prev = guest->create_qp(attr).value();
    grad = p.mem().mmap(kElems * 8, "grad").value();
    grad_mr = guest->reg_mr(pd, grad, kElems * 8, rnic::kAccessLocalWrite).value();
    inbox = p.mem().mmap(kElems * 8, "inbox").value();
    inbox_mr = guest
                   ->reg_mr(pd, inbox, kElems * 8,
                            rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite)
                   .value();
  }

  void fill(std::uint64_t seed) {
    std::vector<std::uint64_t> v(kElems);
    for (std::uint32_t i = 0; i < kElems; ++i) v[i] = seed + i;
    proc->mem().write(grad, {reinterpret_cast<std::uint8_t*>(v.data()), v.size() * 8}).is_ok();
  }

  bool post_token_recv() {
    rnic::RecvWr rwr;
    rwr.wr_id = 77;
    return guest->post_recv(from_prev, rwr).is_ok();
  }

  /// WRITE-with-imm: pushes grad into the next worker's inbox and pokes its
  /// receive queue so it knows the token arrived.
  bool push_to_next() {
    rnic::SendWr wr;
    wr.wr_id = 1;
    wr.opcode = rnic::WrOpcode::rdma_write_with_imm;
    wr.imm = 0xA11;
    wr.remote_addr = next_inbox_addr;
    wr.rkey = next_inbox_vrkey;
    wr.sge = {{grad, kElems * 8, grad_mr.vlkey}};
    return guest->post_send(to_next, wr).is_ok();
  }

  /// Drain completions; true once the token-recv CQE showed up.
  bool token_arrived() {
    rnic::Cqe cqe;
    while (guest->poll_cq(cq, {&cqe, 1}) == 1) {
      if (cqe.opcode == rnic::CqeOpcode::recv && cqe.status == rnic::CqeStatus::success) {
        return true;
      }
    }
    return false;
  }

  void accumulate() {
    std::vector<std::uint64_t> mine(kElems), theirs(kElems);
    proc->mem().read(grad, {reinterpret_cast<std::uint8_t*>(mine.data()), kElems * 8}).is_ok();
    proc->mem()
        .read(inbox, {reinterpret_cast<std::uint8_t*>(theirs.data()), kElems * 8})
        .is_ok();
    for (std::uint32_t i = 0; i < kElems; ++i) mine[i] += theirs[i];
    proc->mem().write(grad, {reinterpret_cast<std::uint8_t*>(mine.data()), kElems * 8}).is_ok();
  }

  void adopt_inbox() {  // broadcast step: grad := inbox
    std::vector<std::uint64_t> v(kElems);
    proc->mem().read(inbox, {reinterpret_cast<std::uint8_t*>(v.data()), kElems * 8}).is_ok();
    proc->mem().write(grad, {reinterpret_cast<std::uint8_t*>(v.data()), kElems * 8}).is_ok();
  }

  std::uint64_t element0() {
    std::uint64_t v = 0;
    proc->mem().read(grad, {reinterpret_cast<std::uint8_t*>(&v), 8}).is_ok();
    return v;
  }

  void on_migrated(proc::SimProcess& p) override { proc = &p; }
};

}  // namespace

int main() {
  rnic::World world;
  GuestDirectory directory;
  std::vector<std::unique_ptr<MigrRdmaRuntime>> rts;
  for (net::HostId h = 1; h <= kWorkers + 1; ++h) {
    rts.push_back(
        std::make_unique<MigrRdmaRuntime>(directory, world.add_device(h), world.fabric()));
  }
  std::vector<std::unique_ptr<Worker>> ws;
  for (std::uint32_t i = 0; i < kWorkers; ++i) {
    ws.push_back(std::make_unique<Worker>(*rts[i], world.add_process("w" + std::to_string(i)),
                                          700 + i));
  }
  // Ring wiring: w[i].to_next <-> w[i+1].from_prev.
  for (std::uint32_t i = 0; i < kWorkers; ++i) {
    Worker& me = *ws[i];
    Worker& next = *ws[(i + 1) % kWorkers];
    me.next_inbox_addr = next.inbox;
    me.next_inbox_vrkey = next.inbox_mr.vrkey;
    const rnic::Psn pa = 1000 + i * 8, pb = 5000 + i * 8;
    me.guest->connect_qp(me.to_next, next.guest->id(), next.from_prev, pa, pb).is_ok();
    next.guest->connect_qp(next.from_prev, me.guest->id(), me.to_next, pb, pa).is_ok();
  }

  // One token circulates: a reduce pass (accumulate) then a broadcast pass
  // (adopt). After both, every worker holds the global sum.
  auto pass_token = [&](std::uint32_t from, bool reduce) -> bool {
    Worker& src = *ws[from];
    Worker& dst = *ws[(from + 1) % kWorkers];
    if (!dst.post_token_recv()) return false;
    if (!src.push_to_next()) return false;
    const sim::TimeNs deadline = world.loop().now() + sim::sec(2);
    while (world.loop().now() < deadline) {
      world.loop().run_for(sim::usec(50));
      if (dst.token_arrived()) {
        if (reduce) {
          dst.accumulate();
        } else {
          dst.adopt_inbox();
        }
        return true;
      }
    }
    return false;
  };

  auto run_iteration = [&](std::uint64_t seed, const char* label) -> bool {
    for (std::uint32_t i = 0; i < kWorkers; ++i) ws[i]->fill(seed * (i + 1));
    std::uint64_t expect = 0;
    for (std::uint32_t i = 0; i < kWorkers; ++i) expect += seed * (i + 1);

    for (std::uint32_t s = 0; s + 1 < kWorkers; ++s) {         // reduce pass
      if (!pass_token(s, /*reduce=*/true)) return false;
    }
    for (std::uint32_t s = 0; s + 1 < kWorkers; ++s) {         // broadcast pass
      if (!pass_token((kWorkers - 1 + s) % kWorkers, /*reduce=*/false)) return false;
    }
    bool all_ok = true;
    for (std::uint32_t i = 0; i < kWorkers; ++i) {
      all_ok = all_ok && ws[i]->element0() == expect;
    }
    std::printf("  %-12s all-reduced element[0] = %llu on every worker (expected %llu) %s\n",
                label, static_cast<unsigned long long>(ws[0]->element0()),
                static_cast<unsigned long long>(expect), all_ok ? "OK" : "WRONG");
    return all_ok;
  };

  std::printf("ring all-reduce over %u RDMA workers:\n", kWorkers);
  bool ok = run_iteration(1000, "iteration 1");

  std::printf("live-migrating worker 1 (host 2 -> host %u) between iterations...\n",
              kWorkers + 1);
  auto& dest = world.add_process("w1-restored");
  MigrationController ctl(world.loop(), world.fabric(), directory);
  MigrationReport report;
  bool done = false;
  ctl.start(701, kWorkers + 1, dest, ws[1].get(), [&](const MigrationReport& r) {
       report = r;
       done = true;
     })
      .is_ok();
  while (!done) world.loop().run_for(sim::msec(1));
  if (!report.ok) {
    std::printf("migration failed: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("  migrated in %.1f ms of communication blackout\n",
              sim::to_msec(report.comm_blackout()));

  ok = run_iteration(2000, "iteration 2") && ok;
  ok = run_iteration(3000, "iteration 3") && ok;
  std::printf("\nallreduce_migration %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
