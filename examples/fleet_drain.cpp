// Fleet drain quickstart: the cluster orchestration API in one file.
//
// Builds a 4-host cluster, places chatty msg_node guests on it, then drains
// host 1 — the scheduler picks destinations (least-loaded), respects the
// admission limits, and the workflow reports makespan plus per-migration
// blackout once the host is empty.
//
//   build/examples/fleet_drain
#include <cstdio>

#include "cluster/drain.hpp"

using namespace migr;
using namespace migr::cluster;

int main() {
  // --- a 4-host fleet on the default 100 Gbps fabric ---
  ClusterConfig cfg;
  cfg.hosts = 4;
  cfg.seed = 7;
  ClusterModel model(cfg);

  // --- place guests: three on host 1, one partner on each other host ---
  TrafficProfile profile;
  profile.send_interval = sim::usec(50);   // keep SEND/RECV traffic flowing
  profile.msg_bytes = 1024;
  profile.extra_mem_bytes = 1 << 20;       // 1 MiB of migratable state...
  profile.dirty_interval = sim::msec(2);   // ...dirtied while pre-copy runs
  for (GuestId g = 0; g < 3; ++g) {
    if (!model.add_guest(/*host=*/1, /*id=*/10 + g, profile).is_ok()) return 1;
    if (!model.add_guest(2 + g, 20 + g, profile).is_ok()) return 1;
    if (!model.connect_guests(10 + g, 20 + g).is_ok()) return 1;
  }
  model.run_for(sim::msec(5));  // let the apps reach steady state

  for (net::HostId h = 1; h <= cfg.hosts; ++h) {
    std::printf("host %u runs %zu guest(s)\n", h, model.guests_on(h).size());
  }

  // --- drain host 1: at most two migrations in flight fleet-wide ---
  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = 2;
  MigrationScheduler sched(model, scfg);
  DrainWorkflow drain(model, sched);

  std::printf("\ndraining host 1 ...\n");
  const DrainReport report = drain.run(1);
  std::printf("%s", format_drain_report(report).c_str());
  if (!report.ok) {
    std::printf("drain failed: %s\n", report.error.c_str());
    return 1;
  }

  // Guests kept talking throughout; the directory shows where they ended up.
  std::printf("\nafter the drain:\n");
  for (net::HostId h = 1; h <= cfg.hosts; ++h) {
    std::printf("host %u runs %zu guest(s)%s\n", h, model.guests_on(h).size(),
                model.draining(h) ? "  (draining)" : "");
  }
  if (model.audit_stuck_qps(sim::msec(10)) != 0) {
    std::printf("stuck QPs detected!\n");
    return 1;
  }
  std::printf("\nfleet_drain OK\n");
  return 0;
}
