// Example: server maintenance under a running mini-Hadoop job (§5.6 story).
//
// A master and two workers run a TestDFSIO job over RDMA. Mid-job, the
// operator must reboot worker 1's server. With MigrRDMA the worker is
// live-migrated to a spare host: the master's heartbeat supervision never
// trips, no task is re-executed, and the job finishes with only a small
// delay — versus the failover alternative measured in bench_fig6_hadoop.
//
//   build/examples/hadoop_migration
#include <cstdio>

#include "apps/minihadoop.hpp"
#include "apps/msg_node.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

using namespace migr;
using namespace migr::migrlib;
using namespace migr::apps;

int main() {
  rnic::World world;
  GuestDirectory directory;
  std::map<net::HostId, std::unique_ptr<MigrRdmaRuntime>> rts;
  for (net::HostId h = 1; h <= 4; ++h) {
    rts[h] = std::make_unique<MigrRdmaRuntime>(directory, world.add_device(h), world.fabric());
  }

  HadoopConfig cfg;
  cfg.kind = JobKind::dfsio;
  cfg.tasks = 12;
  cfg.blocks_per_task = 6;
  cfg.block_size = 1 << 20;
  cfg.compute_per_block = sim::msec(25);

  MsgNode master_node(*rts[1], world.add_process("master"), 1000);
  MsgNode w1_node(*rts[2], world.add_process("worker-1"), 1001);
  MsgNode w2_node(*rts[3], world.add_process("worker-2"), 1002);
  MsgNode::connect(master_node, w1_node).is_ok();
  MsgNode::connect(master_node, w2_node).is_ok();
  MsgNode::connect(w1_node, w2_node).is_ok();

  HadoopWorker w1(w1_node, cfg, 1000);
  HadoopWorker w2(w2_node, cfg, 1000);
  w1.set_replica(1002, w2.landing_addr(), w2.landing_vrkey());
  w2.set_replica(1001, w1.landing_addr(), w1.landing_vrkey());
  HadoopMaster master(master_node, cfg);
  master.add_worker(1001);
  master.add_worker(1002);

  master_node.start();
  w1_node.start();
  w2_node.start();
  w1.start();
  w2.start();
  master.start_job();
  std::printf("job started: %u DFSIO tasks x %u blocks of 1 MiB, 2 workers\n", cfg.tasks,
              cfg.blocks_per_task);

  world.loop().run_for(sim::msec(400));
  std::printf("t=%.1fs: maintenance window — live-migrating worker-1 (host 2 -> host 4)\n",
              sim::to_sec(world.loop().now()));

  auto& dest = world.add_process("worker-1-restored");
  MigrationController ctl(world.loop(), world.fabric(), directory);
  MigrationReport report;
  bool done = false;
  ctl.start(1001, 4, dest, &w1, [&](const MigrationReport& r) {
       report = r;
       done = true;
     })
      .is_ok();
  while (!done) world.loop().run_for(sim::msec(1));
  if (!report.ok) {
    std::printf("migration failed: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("t=%.1fs: migration done — blackout %.0f ms (heartbeat miss threshold is "
              "%.0f ms, so the master never suspected a failure)\n",
              sim::to_sec(world.loop().now()), sim::to_msec(report.comm_blackout()),
              sim::to_msec(cfg.heartbeat_miss * cfg.heartbeat_period));

  while (!master.job_done() && world.loop().now() < sim::sec(60)) {
    world.loop().run_for(sim::msec(50));
  }
  std::printf("job %s: JCT %.2f s, failovers detected: %u, worker-1 completed %u tasks "
              "(from both hosts), blocks replicated: %llu\n",
              master.job_done() ? "completed" : "TIMED OUT", sim::to_sec(master.jct()),
              master.failovers(), w1.tasks_completed(),
              static_cast<unsigned long long>(master.blocks_completed()));
  const bool ok = master.job_done() && master.failovers() == 0;
  std::printf("\nhadoop_migration %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
