// Example: migrating an RDMA key-value store under client load.
//
// The paper motivates RDMA live migration with cloud storage and database
// workloads (§1). This example builds the classic one-sided KV design
// (clients READ the server's hash table directly, writes go through SEND
// RPCs) and live-migrates the server while clients keep issuing operations.
// The invariants checked at the end are the ones a storage operator cares
// about: no lost updates, reads observe values consistent with the store,
// and the clients never reconnect or see an error.
//
//   build/examples/kv_migration
#include <cstdio>
#include <cstring>
#include <map>

#include "apps/msg_node.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

using namespace migr;
using namespace migr::migrlib;
using apps::MsgNode;

namespace {

constexpr std::uint32_t kSlots = 256;
constexpr std::uint32_t kSlotBytes = 64;  // [u64 version | u64 key | payload]

/// Server: owns the slot table; applies PUTs arriving as messages.
struct KvServer : MigratableApp {
  MsgNode node;
  std::uint64_t table = 0;
  VMr table_mr;
  std::uint64_t puts_applied = 0;

  KvServer(MigrRdmaRuntime& rt, proc::SimProcess& proc, GuestId id)
      : node(rt, proc, id) {
    table = proc.mem().mmap(kSlots * kSlotBytes, "kv_table").value();
    table_mr = node.guest()
                   .reg_mr(node.pd(), table, kSlots * kSlotBytes,
                           rnic::kAccessLocalWrite | rnic::kAccessRemoteRead)
                   .value();
    node.set_handler([this](GuestId from, const common::Bytes& msg) {
      (void)from;
      common::ByteReader r{msg};
      auto key = r.u64();
      auto value = r.u64();
      if (!key.is_ok() || !value.is_ok()) return;
      const std::uint64_t slot = key.value() % kSlots;
      common::ByteWriter w;
      w.u64(value.value());  // version := value for easy checking
      w.u64(key.value());
      (void)node.process().mem().write(table + slot * kSlotBytes, w.data());
      puts_applied++;
    });
  }
  void on_migrated(proc::SimProcess& p) override { node.on_migrated(p); }
};

/// Client: PUTs via messages, GETs via one-sided READ of the slot table.
struct KvClient {
  MsgNode node;
  GuestId server;
  std::uint64_t server_table;
  std::uint32_t server_vrkey;
  std::uint64_t read_buf = 0;
  VMr read_mr;
  VQpn qp = 0;
  std::map<std::uint64_t, std::uint64_t> model;  // expected store contents
  std::uint64_t next_key = 1;
  std::uint64_t gets_ok = 0, gets_stale = 0, gets_bad = 0, reads_pending = 0;

  KvClient(MigrRdmaRuntime& rt, proc::SimProcess& proc, GuestId id, KvServer& srv)
      : node(rt, proc, id),
        server(srv.node.id()),
        server_table(srv.table),
        server_vrkey(srv.table_mr.vrkey) {
    read_buf = proc.mem().mmap(kSlotBytes, "kv_read").value();
    read_mr =
        node.guest().reg_mr(node.pd(), read_buf, kSlotBytes, rnic::kAccessLocalWrite).value();
  }

  void connect() { qp = node.qp_to(server).value(); }

  void put(std::uint64_t key, std::uint64_t value) {
    common::ByteWriter w;
    w.u64(key);
    w.u64(value);
    if (node.send(server, w.data()).is_ok()) model[key] = value;
  }

  void get(std::uint64_t key) {
    rnic::SendWr wr;
    wr.wr_id = (1ull << 40) | key;
    wr.opcode = rnic::WrOpcode::rdma_read;
    wr.remote_addr = server_table + (key % kSlots) * kSlotBytes;
    wr.rkey = server_vrkey;
    wr.sge = {{read_buf, kSlotBytes, read_mr.vlkey}};
    if (node.guest().post_send(qp, wr).is_ok()) reads_pending++;
  }

  void handle_read(const rnic::Cqe& cqe) {
    if (cqe.status != rnic::CqeStatus::success) {
      gets_bad++;
      return;
    }
    reads_pending--;
    const std::uint64_t key = cqe.wr_id & 0xFFFFFFFF;
    std::uint8_t raw[16];
    (void)node.process().mem().read(read_buf, raw);
    std::uint64_t version, stored_key;
    std::memcpy(&version, raw, 8);
    std::memcpy(&stored_key, raw + 8, 8);
    auto it = model.find(key);
    if (it == model.end()) return;
    if (stored_key == key && version == it->second) {
      gets_ok++;
    } else if (version < it->second || stored_key != key) {
      gets_stale++;  // PUT still in flight — allowed, not an error
    } else {
      gets_bad++;
    }
  }
};

}  // namespace

int main() {
  rnic::World world;
  GuestDirectory directory;
  std::map<net::HostId, std::unique_ptr<MigrRdmaRuntime>> rts;
  for (net::HostId h = 1; h <= 4; ++h) {
    rts[h] = std::make_unique<MigrRdmaRuntime>(directory, world.add_device(h), world.fabric());
  }

  KvServer server(*rts[1], world.add_process("kv-server"), 500);
  KvClient c1(*rts[3], world.add_process("client-1"), 501, server);
  KvClient c2(*rts[4], world.add_process("client-2"), 502, server);
  MsgNode::connect(server.node, c1.node).is_ok();
  MsgNode::connect(server.node, c2.node).is_ok();
  c1.connect();
  c2.connect();
  server.node.start();

  // Clients hammer the store: PUT then GET a rolling window of keys.
  // Each client owns a disjoint key range (so their slots never collide).
  std::uint64_t base = 0;
  for (KvClient* c : {&c1, &c2}) {
    c->node.start();
    c->node.set_raw_cqe_handler([c](const rnic::Cqe& cqe) { c->handle_read(cqe); });
    c->node.process().spawn_poller(sim::usec(50), [c, base] {
      const std::uint64_t idx = c->next_key++ % 128;
      c->put(base + idx, c->next_key * 10);
      // Read a key written half a window ago: its PUT has long been applied,
      // so the one-sided READ should observe exactly the modelled value.
      if (c->reads_pending < 8 && c->next_key > 64) c->get(base + (idx + 64) % 128);
    });
    base += 128;
  }

  world.loop().run_for(sim::msec(50));
  std::printf("before migration: server applied %llu PUTs; c1 gets ok/stale/bad = "
              "%llu/%llu/%llu\n",
              (unsigned long long)server.puts_applied, (unsigned long long)c1.gets_ok,
              (unsigned long long)c1.gets_stale, (unsigned long long)c1.gets_bad);

  // --- maintenance: migrate the KV server from host 1 to host 2 ---
  auto& dest = world.add_process("kv-server-restored");
  MigrationController ctl(world.loop(), world.fabric(), directory);
  MigrationReport report;
  bool done = false;
  ctl.start(500, 2, dest, &server, [&](const MigrationReport& r) {
       report = r;
       done = true;
     })
      .is_ok();
  while (!done) world.loop().run_for(sim::msec(1));
  std::printf("migration %s: comm blackout %.2f ms, WBS %.2f ms\n",
              report.ok ? "ok" : report.error.c_str(), sim::to_msec(report.comm_blackout()),
              sim::to_msec(report.wbs_elapsed));

  world.loop().run_for(sim::msec(50));
  std::printf("after migration:  server applied %llu PUTs; c1 gets ok/stale/bad = "
              "%llu/%llu/%llu; c2 = %llu/%llu/%llu\n",
              (unsigned long long)server.puts_applied, (unsigned long long)c1.gets_ok,
              (unsigned long long)c1.gets_stale, (unsigned long long)c1.gets_bad,
              (unsigned long long)c2.gets_ok, (unsigned long long)c2.gets_stale,
              (unsigned long long)c2.gets_bad);

  const bool ok = report.ok && c1.gets_bad == 0 && c2.gets_bad == 0 &&
                  c1.node.errors() == 0 && c2.node.errors() == 0 &&
                  server.puts_applied > 0;
  std::printf("\nkv_migration %s: clients observed no errors and no corrupted reads "
              "across the migration\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
