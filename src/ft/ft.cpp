#include "ft/ft.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/sli.hpp"
#include "obs/trace.hpp"

namespace migr::ft {

using common::Bytes;
using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Status;
using migrlib::GuestContext;
using migrlib::Plugin;

namespace {
void trace_span(sim::TimeNs start, sim::DurationNs dur, std::string_view name,
                std::string args = {}) {
  auto& t = obs::Tracer::global();
  if (t.enabled()) t.complete(start, dur, name, "ft", std::move(args));
}

void trace_instant(sim::TimeNs at, std::string_view name, std::string args = {}) {
  auto& t = obs::Tracer::global();
  if (t.enabled()) t.instant(at, name, "ft", std::move(args));
}

// Failover-blackout slices ride the same track as migration blackout slices
// so one trace viewer lane shows both anatomy kinds.
void trace_blackout_span(sim::TimeNs start, sim::DurationNs dur, std::string_view name,
                         std::string args = {}) {
  auto& t = obs::Tracer::global();
  if (t.enabled()) t.complete(start, dur, name, "migr.blackout", std::move(args));
}
}  // namespace

std::string FtReport::json() const {
  char buf[384];
  std::string out = "{\"kind\":\"ft_report\",\"version\":1";
  std::snprintf(buf, sizeof buf,
                ",\"guest\":%u,\"primary_host\":%u,\"backup_host\":%u"
                ",\"ok\":%s,\"error\":\"%s\""
                ",\"protect_start_ns\":%" PRId64 ",\"protected_at_ns\":%" PRId64
                ",\"end_ns\":%" PRId64,
                guest, primary_host, backup_host, ok ? "true" : "false", error.c_str(),
                protect_start, protected_at, end);
  out += buf;

  std::snprintf(buf, sizeof buf,
                ",\"epochs\":{\"captured\":%" PRIu64 ",\"committed\":%" PRIu64
                ",\"full_sync_bytes\":%" PRIu64 ",\"epoch_bytes_total\":%" PRIu64
                ",\"xfer_bytes_attempted\":%" PRIu64 ",\"xfer_bytes_delivered\":%" PRIu64
                ",\"transfer_retries\":%" PRIu64 ",\"records\":[",
                epochs_captured, epochs_committed, full_sync_bytes, epoch_bytes_total,
                xfer_bytes_attempted, xfer_bytes_delivered, transfer_retries);
  out += buf;
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const EpochRecord& r = epochs[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"epoch\":%" PRIu64 ",\"captured_at_ns\":%" PRId64
                  ",\"committed_at_ns\":%" PRId64 ",\"commit_latency_ns\":%" PRId64
                  ",\"freeze_ns\":%" PRId64 ",\"mem_bytes\":%" PRIu64
                  ",\"rdma_bytes\":%" PRIu64 ",\"wire_bytes\":%" PRIu64
                  ",\"released_msgs\":%" PRIu64 ",\"retries\":%d}",
                  i ? "," : "", r.epoch, r.captured_at, r.committed_at, r.commit_latency(),
                  r.freeze_ns, r.mem_bytes, r.rdma_bytes, r.wire_bytes, r.released_msgs,
                  r.retries);
    out += buf;
  }
  out += "]";
  // Stream-level rollups; count is 0 on the legacy single-stream path.
  std::snprintf(buf, sizeof buf,
                ",\"streams\":{\"count\":%u,\"chunks\":%" PRIu64
                ",\"bytes_lost\":%" PRIu64 ",\"per_stream\":[",
                xfer_streams, xfer_chunks, xfer_bytes_lost);
  out += buf;
  for (std::size_t i = 0; i < xfer_stream_stats.size(); ++i) {
    const migrlib::XferStreamStats& s = xfer_stream_stats[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"chunks\":%" PRIu64 ",\"attempted\":%" PRIu64
                  ",\"delivered\":%" PRIu64 ",\"lost\":%" PRIu64 ",\"retries\":%" PRIu64 "}",
                  i ? "," : "", s.chunks, s.bytes_attempted, s.bytes_delivered,
                  s.bytes_lost(), s.retries);
    out += buf;
  }
  out += "]}}";

  std::snprintf(buf, sizeof buf,
                ",\"output_commit\":{\"buffered\":%" PRIu64 ",\"released\":%" PRIu64
                ",\"dropped\":%" PRIu64 ",\"release_delay_p50_ns\":%" PRId64
                ",\"release_delay_p99_ns\":%" PRId64 ",\"release_delay_max_ns\":%" PRId64 "}",
                msgs_buffered, msgs_released, msgs_dropped, release_delay_p50,
                release_delay_p99, release_delay_max);
  out += buf;

  out += ",\"failover\":{\"occurred\":";
  out += failed_over ? "true" : "false";
  out += ",\"reason\":\"" + failover_reason + "\"";
  std::snprintf(buf, sizeof buf,
                ",\"killed_at_ns\":%" PRId64 ",\"detected_at_ns\":%" PRId64
                ",\"resume_at_ns\":%" PRId64 ",\"blackout_ns\":%" PRId64
                ",\"promoted_epoch\":%" PRIu64,
                killed_at, detected_at, resume_at,
                failed_over ? failover_blackout() : 0, promoted_epoch);
  out += buf;
  // Waterfall block with the same shape as MigrationReport::waterfall_json,
  // so the validator's tiling-cursor check is reusable verbatim.
  std::snprintf(buf, sizeof buf,
                ",\"waterfall\":{\"freeze_at_ns\":%" PRId64 ",\"resume_at_ns\":%" PRId64
                ",\"blackout_ns\":%" PRId64 ",\"slices\":[",
                killed_at, resume_at, failed_over ? failover_blackout() : 0);
  out += buf;
  for (std::size_t i = 0; i < waterfall.size(); ++i) {
    const migrlib::PhaseSlice& s = waterfall[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + s.name + "\",\"start_ns\":" + std::to_string(s.start) +
           ",\"dur_ns\":" + std::to_string(s.dur);
    if (!s.detail.empty()) {
      out += ',';
      out += s.detail;
    }
    out += '}';
  }
  out += "]}";
  if (critical_path.valid) {
    out += ",\"critical_path\":" + critical_path.json();
  }
  out += "}}";
  return out;
}

FtController::FtController(sim::EventLoop& loop, net::Fabric& fabric,
                           migrlib::GuestDirectory& directory, FtOptions options)
    : loop_(loop), fabric_(fabric), directory_(directory), options_(options),
      plugin_(options.migr_costs), psn_cursor_(options.psn_seed) {}

FtController::~FtController() {
  stop_timers();
  if (services_registered_) {
    fabric_.unregister_service(dest_rt_->host(), sync_service_);
    fabric_.unregister_service(src_rt_->host(), ack_service_);
    fabric_.unregister_service(dest_rt_->host(), hb_service_);
    services_registered_ = false;
  }
}

void FtController::stop_timers() {
  epoch_timer_.cancel();
  hb_timer_.cancel();
  watchdog_timer_.cancel();
  ack_timeout_.cancel();
}

Status FtController::protect(GuestId id, net::HostId backup_host,
                             proc::SimProcess& backup_proc, migrlib::MigratableApp* app,
                             apps::MsgNode* node, ReadyCb ready, DoneCb done) {
  guest_id_ = id;
  app_ = app;
  node_ = node;
  ready_ = std::move(ready);
  done_ = std::move(done);
  dest_proc_ = &backup_proc;

  src_rt_ = directory_.runtime_of(id);
  dest_rt_ = directory_.runtime_at(backup_host);
  if (src_rt_ == nullptr || dest_rt_ == nullptr) {
    return common::err(Errc::not_found, "unknown primary or backup host");
  }
  if (src_rt_ == dest_rt_) {
    return common::err(Errc::invalid_argument, "primary and backup are the same host");
  }
  guest_ = src_rt_->find_guest(id);
  if (guest_ == nullptr) return common::err(Errc::not_found, "no such guest");
  if (node_ == nullptr) return common::err(Errc::invalid_argument, "ft needs the guest's MsgNode");
  src_proc_ = &guest_->process();
  if (guest_->has_raw_peer()) {
    return common::err(Errc::failed_precondition,
                       "guest has non-MigrRDMA partners; replication unsupported");
  }

  ckpt_ = std::make_unique<criu::Checkpointer>(*src_proc_, options_.criu_costs);
  restorer_ = std::make_unique<criu::Restorer>(*dest_proc_, options_.criu_costs);
  if (options_.epoch_byte_budget > 0) {
    criu::DirtyRateConfig cfg = options_.dirty_rate;
    cfg.seed += guest_id_;
    estimator_ = std::make_unique<criu::DirtyRateEstimator>(*src_proc_, cfg);
  }

  sync_service_ = "ft.sync." + std::to_string(id);
  ack_service_ = "ft.ack." + std::to_string(id);
  hb_service_ = "ft.hb." + std::to_string(id);
  fabric_.register_service(dest_rt_->host(), sync_service_,
                           [this](net::HostId, Bytes&& p) { on_sync_chunk(std::move(p)); });
  fabric_.register_service(src_rt_->host(), ack_service_, [this](net::HostId, Bytes&& p) {
    ByteReader r{p};
    auto e = r.u64();
    if (e.is_ok()) on_ack(e.value());
  });
  fabric_.register_service(dest_rt_->host(), hb_service_,
                           [this](net::HostId, Bytes&&) { last_hb_ = loop_.now(); });
  services_registered_ = true;

  if (use_mux()) {
    // Per-protection instance counter in the service base: a re-protected
    // guest gets fresh `ft.xfer.<id>.<instance>.<k>` names, so a lingering
    // old controller's teardown can never unregister the live streams.
    static std::uint64_t ft_mux_instance = 0;
    migrlib::XferOptions xo;
    xo.streams = options_.xfer_streams;
    xo.stream_gbps = options_.xfer_stream_gbps;
    xo.chunk_bytes = options_.chunk_bytes;
    xo.max_backoff = std::min(xo.max_backoff, options_.max_transfer_backoff);
    xo.cp = &cp_;
    mux_ = std::make_unique<migrlib::TransferMux>(
        loop_, fabric_,
        "ft.xfer." + std::to_string(id) + "." + std::to_string(ft_mux_instance++),
        src_rt_->host(), dest_rt_->host(), xo);
    mux_->open([this](Bytes&& p) { on_mux_epoch(std::move(p)); },
               [this](const Status& st) { fail(st); });
  }

  report_ = FtReport{};
  report_.guest = id;
  report_.primary_host = src_rt_->host();
  report_.backup_host = backup_host;
  report_.protect_start = loop_.now();

  cp_.clear();
  cp_.set_enabled(options_.critical_path);
  auto& tr = obs::Tracer::global();
  if (tr.enabled()) {
    // One causal scope per protection: epoch sync flows, backup-side apply
    // spans, and failover spans all parent back to this root.
    trace_id_ = tr.new_id();
    root_span_ = tr.new_id();
    if (mux_) mux_->set_trace_context({trace_id_, root_span_});
  }

  // Output commit starts with protection, not with the sync's completion:
  // everything the guest emits from here on post-dates the epoch-0 state
  // and belongs to epoch 1.
  node_->arm_output_commit(1);
  next_epoch_ = 1;
  obs::SliHub::global().on_ft_protected(guest_id_, report_.protect_start);
  obs::Registry::global().counter("ft.protections_started").inc();
  if (tr.enabled()) {
    // Carries the root span id so every parent link in this protection's
    // causal graph resolves to a recorded event.
    tr.instant(report_.protect_start, "ft_protect", "ft",
               "\"guest\":" + std::to_string(guest_id_) +
                   ",\"backup_host\":" + std::to_string(backup_host),
               root_span_, 0);
  }
  loop_.schedule_in(0, [this] { phase_full_sync(); });
  return Status::ok();
}

void FtController::fail(const Status& st) {
  if (finished_) return;
  finished_ = true;
  MIGR_ERROR() << "ft protection of guest " << guest_id_ << " failed: " << st.to_string();
  stop_timers();
  if (mux_) mux_->cancel();  // chunk timers must not outlive protection
  protected_ = false;
  // Never strand buffered egress: a protection failure falls back to
  // unprotected operation, not to withholding the service's output.
  if (node_ != nullptr && node_->output_commit_armed()) node_->disarm_output_commit();
  obs::SliHub::global().on_ft_released(guest_id_, loop_.now());
  obs::Registry::global().counter("ft.protections_failed").inc();
  report_.ok = false;
  report_.error = st.to_string();
  finish_report();
  if (done_) done_(report_);
}

void FtController::finish_report() {
  report_.end = loop_.now();
  if (node_ != nullptr) {
    report_.msgs_released = node_->gate_released();
    report_.msgs_dropped = node_->gate_dropped();
    report_.msgs_buffered =
        report_.msgs_released + report_.msgs_dropped + node_->gated_pending();
    const obs::Histogram& h = node_->release_delay();
    report_.release_delay_p50 = h.percentile(50);
    report_.release_delay_p99 = h.percentile(99);
    report_.release_delay_max = h.max();
  }
  report_.epoch_bytes_total = 0;
  for (const EpochRecord& r : report_.epochs) {
    if (r.epoch >= 1) report_.epoch_bytes_total += r.wire_bytes;
  }
  if (mux_) {
    const migrlib::XferStats& xs = mux_->stats();
    report_.xfer_streams = mux_->options().streams;
    report_.xfer_bytes_attempted = xs.attempted();
    report_.xfer_bytes_delivered = xs.delivered();
    report_.xfer_bytes_lost = xs.lost();
    report_.xfer_chunks = xs.chunks();
    report_.xfer_stream_stats = xs.streams;
  }
}

void FtController::unprotect() {
  if (finished_) return;
  finished_ = true;
  stop_timers();
  if (mux_) mux_->cancel();
  protected_ = false;
  if (node_ != nullptr && node_->output_commit_armed()) node_->disarm_output_commit();
  obs::SliHub::global().on_ft_released(guest_id_, loop_.now());
  trace_instant(loop_.now(), "ft_unprotect", "\"guest\":" + std::to_string(guest_id_));
  report_.ok = true;
  finish_report();
  if (done_) done_(report_);
}

void FtController::kill_primary() {
  fabric_.set_partitioned(src_rt_->host(), true);
  src_proc_->kill();
  mark_primary_killed();
}

void FtController::mark_primary_killed() {
  if (report_.killed_at == 0) report_.killed_at = loop_.now();
  trace_instant(report_.killed_at, "ft_primary_killed",
                "\"guest\":" + std::to_string(guest_id_));
}

GuestContext* FtController::partner_guest(GuestId id) const {
  migrlib::MigrRdmaRuntime* rt = directory_.runtime_of(id);
  return rt == nullptr ? nullptr : rt->find_guest(id);
}

void FtController::push_waterfall(std::string name, sim::DurationNs dur, std::string detail) {
  trace_blackout_span(wf_cursor_, dur, name, detail);
  report_.waterfall.push_back(
      migrlib::PhaseSlice{std::move(name), wf_cursor_, dur, std::move(detail)});
  wf_cursor_ += dur;
}

// ---------------------------------------------------------------------------
// Primary side: full sync + epoch capture + chunked transfer
// ---------------------------------------------------------------------------

void FtController::phase_full_sync() {
  // Live full dump (the guest keeps running — the long initial copy must
  // not blackout the service the way per-epoch brief freezes may).
  auto dump = ckpt_->pre_dump();
  src_rt_->device().add_ctrl_pressure(dump.cost);
  predump_rdma_bytes_ = plugin_.pre_dump(*guest_);
  const sim::DurationNs cost = dump.cost + plugin_.take_cost();

  ByteWriter w;
  Bytes mem_img = dump.image.serialize();
  Bytes pages = dump.pages.serialize();
  const std::uint64_t mem_bytes = mem_img.size() + pages.size();
  w.bytes(mem_img);
  w.bytes(pages);
  w.bytes(predump_rdma_bytes_);
  inflight_payload_ = std::move(w).take();
  inflight_epoch_ = 0;
  inflight_ = true;
  xfer_attempt_ = 0;
  report_.full_sync_bytes = inflight_payload_.size();

  EpochRecord rec;
  rec.epoch = 0;
  rec.captured_at = loop_.now();
  rec.freeze_ns = 0;  // live capture
  rec.mem_bytes = mem_bytes;
  rec.rdma_bytes = predump_rdma_bytes_.size();
  report_.epochs.push_back(rec);
  report_.epochs_captured = 1;

  if (estimator_) estimator_->begin_interval(loop_.now());
  trace_span(loop_.now(), cost, "ft_full_sync",
             "\"bytes\":" + std::to_string(report_.full_sync_bytes));
  loop_.schedule_in(cost, [this] {
    if (finished_ || failed_over_) return;
    send_epoch_chunks(0, /*retry=*/false);
  });
}

sim::DurationNs FtController::next_epoch_interval() {
  if (options_.epoch_byte_budget == 0 || !estimator_ || !estimator_->primed()) {
    return options_.epoch_interval;
  }
  const double bps = estimator_->bytes_per_sec();
  if (bps <= 0) return options_.max_epoch_interval;
  const double sec = static_cast<double>(options_.epoch_byte_budget) / bps;
  const auto iv = static_cast<sim::DurationNs>(sec * sim::kSecond);
  return std::clamp(iv, options_.min_epoch_interval, options_.max_epoch_interval);
}

void FtController::capture_epoch() {
  if (!protected_ || failed_over_ || finished_) return;
  const sim::TimeNs t0 = loop_.now();
  if (estimator_ && estimator_->open()) (void)estimator_->end_interval(t0);

  // Brief freeze: the epoch-scoped dump captures a consistent point.
  src_proc_->freeze();
  auto ed = ckpt_->epoch_dump();
  if (!ed.is_ok()) {
    src_proc_->thaw();
    return fail(ed.status());
  }
  // Cumulative RDMA delta vs the protect-time pre-dump: the backup only
  // ever needs the *latest* delta at promotion, so each epoch carries the
  // full difference instead of a chain of per-epoch diffs.
  Bytes rdma_delta = plugin_.final_dump(*guest_);
  const sim::DurationNs rdma_cost = plugin_.take_cost();
  src_rt_->device().add_ctrl_pressure(ed->cost);

  const std::uint64_t epoch = next_epoch_++;
  ByteWriter w;
  Bytes mem_img = ed->image.serialize();
  Bytes pages = ed->pages.serialize();
  const std::uint64_t mem_bytes = mem_img.size() + pages.size();
  w.bytes(mem_img);
  w.bytes(pages);
  w.bytes(rdma_delta);
  inflight_payload_ = std::move(w).take();
  inflight_epoch_ = epoch;
  inflight_ = true;
  xfer_attempt_ = 0;

  EpochRecord rec;
  rec.epoch = epoch;
  rec.captured_at = t0;
  rec.freeze_ns = ed->cost + rdma_cost;
  rec.mem_bytes = mem_bytes;
  rec.rdma_bytes = rdma_delta.size();
  report_.epochs.push_back(rec);
  report_.epochs_captured++;

  // Everything the guest emits after this capture point belongs to the
  // *next* epoch — it is not part of the state this checkpoint ships.
  node_->set_output_epoch(epoch + 1);

  trace_span(t0, rec.freeze_ns, "ft_epoch_capture",
             "\"epoch\":" + std::to_string(epoch) +
                 ",\"pages\":" + std::to_string(ed->pages.pages.size()));
  loop_.schedule_in(rec.freeze_ns, [this, epoch] {
    if (finished_ || failed_over_) return;
    src_proc_->thaw();
    if (estimator_) estimator_->begin_interval(loop_.now());
    send_epoch_chunks(epoch, /*retry=*/false);
  });
}

void FtController::send_epoch_chunks(std::uint64_t epoch, bool retry) {
  // The mc-rdma chunked-transfer idiom: a bounded chunk size, sequential
  // chunks, short tail. Each chunk is one ctrl-plane message; the backup
  // reassembles and applies the epoch atomically on completion.
  const Bytes& p = inflight_payload_;
  std::uint64_t wire = 0;
  if (mux_) {
    // Whole epoch over the mux: the mux owns page-granular chunking,
    // per-stream pacing, and chunk-level ack/retry; FT keeps only the
    // epoch-level ACK (which drives output commit) and its coarse deadline.
    // A deadline retry abandons the stale in-flight transfer and re-sends.
    ByteWriter h;
    h.u64(epoch);
    h.bytes(p);
    Bytes frame = std::move(h).take();
    wire = migrlib::TransferMux::wire_size(frame.size(), mux_->options().chunk_bytes);
    if (retry) mux_->cancel();
    mux_->send(std::move(frame));
    // attempted/delivered on this path are synced from mux stream stats at
    // finish_report(), re-sends included.
  } else {
    const std::uint64_t chunk = std::max<std::uint64_t>(1, options_.chunk_bytes);
    const auto nchunks = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, (p.size() + chunk - 1) / chunk));
    obs::CtxScope cscope(obs::Tracer::global(),
                         obs::TraceContext{trace_id_, root_span_});
    for (std::uint32_t i = 0; i < nchunks; ++i) {
      const std::uint64_t off = std::uint64_t{i} * chunk;
      const std::uint64_t len = std::min<std::uint64_t>(chunk, p.size() - off);
      ByteWriter h;
      h.u64(epoch);
      h.u32(i);
      h.u32(nchunks);
      h.bytes({p.data() + off, static_cast<std::size_t>(len)});
      Bytes frame = std::move(h).take();
      wire += frame.size();
      (void)fabric_.send_ctrl(src_rt_->host(), dest_rt_->host(), sync_service_, frame);
    }
    report_.xfer_bytes_attempted += wire;
  }
  if (!retry) {
    for (auto it = report_.epochs.rbegin(); it != report_.epochs.rend(); ++it) {
      if (it->epoch == epoch) {
        it->wire_bytes = wire;
        break;
      }
    }
  }
  if (options_.transfer_timeout > 0) {
    ack_timeout_.cancel();
    ack_timeout_ =
        loop_.schedule_in(options_.transfer_timeout, [this, epoch] { on_ack_timeout(epoch); });
  }
}

void FtController::on_ack_timeout(std::uint64_t epoch) {
  if (!inflight_ || inflight_epoch_ != epoch || failed_over_ || finished_) return;
  if (xfer_attempt_ >= options_.max_transfer_retries) {
    return fail(common::err(Errc::timeout, "epoch " + std::to_string(epoch) +
                                               " transfer to backup timed out after " +
                                               std::to_string(xfer_attempt_ + 1) +
                                               " attempts"));
  }
  xfer_attempt_++;
  report_.transfer_retries++;
  for (auto it = report_.epochs.rbegin(); it != report_.epochs.rend(); ++it) {
    if (it->epoch == epoch) {
      it->retries++;
      break;
    }
  }
  obs::Registry::global().counter("ft.transfer_retries").inc();
  const sim::DurationNs backoff = std::min<sim::DurationNs>(
      options_.transfer_retry_backoff << (xfer_attempt_ - 1), options_.max_transfer_backoff);
  MIGR_WARN() << "ft epoch " << epoch << " unacked; retry " << xfer_attempt_ << "/"
              << options_.max_transfer_retries << " after " << backoff << " ns";
  loop_.schedule_in(backoff, [this, epoch] {
    if (inflight_ && inflight_epoch_ == epoch && !failed_over_ && !finished_) {
      send_epoch_chunks(epoch, /*retry=*/true);
    }
  });
}

void FtController::on_ack(std::uint64_t epoch) {
  if (finished_ || failed_over_) return;
  if (!inflight_ || epoch != inflight_epoch_) return;  // stale duplicate
  ack_timeout_.cancel();
  inflight_ = false;
  inflight_payload_.clear();
  committed_epoch_ = epoch;
  any_committed_ = true;
  const sim::TimeNs now = loop_.now();

  EpochRecord* rec = nullptr;
  for (auto it = report_.epochs.rbegin(); it != report_.epochs.rend(); ++it) {
    if (it->epoch == epoch) {
      rec = &*it;
      break;
    }
  }
  if (rec != nullptr) rec->committed_at = now;
  report_.epochs_committed++;

  // Output commit: the backup now holds every state that produced messages
  // tagged <= epoch — they are safe to show the world.
  const std::uint64_t released_before = node_->gate_released();
  node_->release_through(epoch);
  if (rec != nullptr) rec->released_msgs = node_->gate_released() - released_before;

  auto& reg = obs::Registry::global();
  reg.counter("ft.epochs_committed").inc();
  if (rec != nullptr) {
    reg.histogram("ft.epoch_commit_ns").observe(rec->commit_latency());
    reg.histogram("ft.epoch_wire_bytes").observe(static_cast<std::int64_t>(rec->wire_bytes));
    trace_span(rec->captured_at, rec->commit_latency(), "ft_epoch_commit",
               "\"epoch\":" + std::to_string(epoch) +
                   ",\"wire_bytes\":" + std::to_string(rec->wire_bytes));
  }

  if (epoch == 0 && !protected_) {
    // Initial sync committed: protection is live, epochs start flowing.
    protected_ = true;
    report_.protected_at = now;
    last_hb_ = now;
    hb_timer_ = loop_.schedule_every(options_.heartbeat_interval, [this] { send_heartbeat(); });
    watchdog_timer_ =
        loop_.schedule_every(options_.heartbeat_interval, [this] { watchdog_check(); });
    trace_instant(now, "ft_protected", "\"guest\":" + std::to_string(guest_id_));
    if (ready_) ready_(Status::ok());
  }
  epoch_timer_ = loop_.schedule_in(next_epoch_interval(), [this] { capture_epoch(); });
}

void FtController::send_heartbeat() {
  if (!protected_ || failed_over_ || finished_) return;
  // The primary host agent's liveness signal: stops when the container died
  // (process kill) and is dropped by the fabric when the host partitioned.
  if (!src_proc_->alive()) return;
  ByteWriter w;
  w.u8(1);
  (void)fabric_.send_ctrl(src_rt_->host(), dest_rt_->host(), hb_service_, w.data());
}

// ---------------------------------------------------------------------------
// Backup side: chunk reassembly, atomic epoch apply, ACK
// ---------------------------------------------------------------------------

void FtController::on_sync_chunk(Bytes&& payload) {
  if (finished_ || failed_over_) return;
  ByteReader r{payload};
  auto epoch = r.u64();
  auto idx = r.u32();
  auto nchunks = r.u32();
  auto data = r.bytes();
  if (!epoch.is_ok() || !idx.is_ok() || !nchunks.is_ok() || !data.is_ok() ||
      nchunks.value() == 0 || idx.value() >= nchunks.value()) {
    return fail(common::err(Errc::invalid_argument, "corrupt ft chunk"));
  }
  report_.xfer_bytes_delivered += payload.size();
  if (any_applied_ && epoch.value() <= applied_epoch_) {
    // Duplicate of an epoch already applied (our ACK was lost): re-ACK so
    // the primary stops re-sending; never re-apply.
    ByteWriter w;
    w.u64(epoch.value());
    (void)fabric_.send_ctrl(dest_rt_->host(), src_rt_->host(), ack_service_, w.data());
    return;
  }
  if (pending_.nchunks == 0 || pending_.epoch != epoch.value() ||
      pending_.nchunks != nchunks.value()) {
    pending_ = PendingEpoch{};
    pending_.epoch = epoch.value();
    pending_.nchunks = nchunks.value();
  }
  pending_.chunks[idx.value()] = std::move(data.value());
  if (pending_.chunks.size() < pending_.nchunks) return;

  // Atomic apply: only a fully-received epoch touches the promotable state;
  // a primary death mid-stream leaves the backup on the previous epoch.
  Bytes assembled;
  for (auto& [i, c] : pending_.chunks) assembled.insert(assembled.end(), c.begin(), c.end());
  const std::uint64_t e = pending_.epoch;
  pending_ = PendingEpoch{};
  handle_epoch_payload(e, std::move(assembled));
}

void FtController::on_mux_epoch(Bytes&& payload) {
  if (finished_ || failed_over_) return;
  ByteReader r{payload};
  auto epoch = r.u64();
  auto inner = r.bytes();
  if (!epoch.is_ok() || !inner.is_ok()) {
    return fail(common::err(Errc::invalid_argument, "corrupt ft mux epoch frame"));
  }
  if (any_applied_ && epoch.value() <= applied_epoch_) {
    // Duplicate of an epoch already applied (the epoch-level ACK was lost):
    // re-ACK so the primary stops re-sending; never re-apply.
    ByteWriter w;
    w.u64(epoch.value());
    (void)fabric_.send_ctrl(dest_rt_->host(), src_rt_->host(), ack_service_, w.data());
    return;
  }
  handle_epoch_payload(epoch.value(), std::move(inner.value()));
}

void FtController::handle_epoch_payload(std::uint64_t epoch, Bytes payload) {
  sim::DurationNs cost = 0;
  const Status st = epoch == 0 ? apply_full_sync(payload, cost) : apply_epoch(payload, cost);
  if (!st.is_ok()) return fail(st);
  applied_epoch_ = epoch;
  any_applied_ = true;
  trace_span(loop_.now(), cost, "ft_epoch_apply", "\"epoch\":" + std::to_string(epoch));
  // The ACK leaves once the backup actually finished applying.
  loop_.schedule_in(cost, [this, epoch] {
    if (finished_ || failed_over_) return;
    ByteWriter w;
    w.u64(epoch);
    // Deferred past the apply cost, so the fabric-installed sender context
    // is gone — re-anchor the ack flow to the protection's root scope.
    obs::CtxScope cscope(obs::Tracer::global(),
                         obs::TraceContext{trace_id_, root_span_});
    (void)fabric_.send_ctrl(dest_rt_->host(), src_rt_->host(), ack_service_, w.data());
  });
}

Status FtController::apply_full_sync(const Bytes& payload, sim::DurationNs& cost) {
  ByteReader r{payload};
  auto mem_bytes = r.bytes();
  auto page_bytes = r.bytes();
  auto rdma_bytes = r.bytes();
  if (!mem_bytes.is_ok() || !page_bytes.is_ok() || !rdma_bytes.is_ok()) {
    return common::err(Errc::invalid_argument, "corrupt ft sync payload");
  }
  auto mem_image = criu::MemoryImage::parse(mem_bytes.value());
  auto pages = criu::PageSet::parse(page_bytes.value());
  if (!mem_image.is_ok() || !pages.is_ok()) {
    return common::err(Errc::invalid_argument, "corrupt ft sync image");
  }

  // Same standby-preparation trick as migration pre-setup (§3.2), held for
  // the protection lifetime: device memory premapped before the restorer
  // starts, RDMA resources staged, partner replacement QPs pre-established
  // but not switched — failover pays none of this.
  MIGR_RETURN_IF_ERROR(plugin_.premap(rdma_bytes.value(), *dest_rt_, *dest_proc_));
  cost += plugin_.take_cost();
  pinned_ = Plugin::pinned_vma_starts(mem_image.value(), plugin_.predump_image());

  MIGR_ASSIGN_OR_RETURN(auto begin_rep, restorer_->begin(mem_image.value(), pinned_));
  cost += begin_rep.cost;
  MIGR_ASSIGN_OR_RETURN(auto pages_rep, restorer_->apply_pages(pages.value()));
  cost += pages_rep.cost;

  MIGR_RETURN_IF_ERROR(plugin_.pre_setup(rdma_bytes.value(), *dest_rt_, *dest_proc_));
  cost += plugin_.take_cost();
  MIGR_RETURN_IF_ERROR(presetup_partners());
  cost += plugin_.staged().take_ctrl_cost();

  // Until an incremental epoch lands, promotion applies an empty final
  // delta: nothing changed vs the pre-dump the staged restore came from.
  migrlib::RdmaImage empty;
  empty.final = true;
  last_rdma_delta_ = empty.serialize();
  return Status::ok();
}

Status FtController::apply_epoch(const Bytes& payload, sim::DurationNs& cost) {
  ByteReader r{payload};
  auto mem_bytes = r.bytes();
  auto page_bytes = r.bytes();
  auto rdma_bytes = r.bytes();
  if (!mem_bytes.is_ok() || !page_bytes.is_ok() || !rdma_bytes.is_ok()) {
    return common::err(Errc::invalid_argument, "corrupt ft epoch payload");
  }
  auto mem_image = criu::MemoryImage::parse(mem_bytes.value());
  auto pages = criu::PageSet::parse(page_bytes.value());
  if (!mem_image.is_ok() || !pages.is_ok()) {
    return common::err(Errc::invalid_argument, "corrupt ft epoch image");
  }
  MIGR_ASSIGN_OR_RETURN(auto up, restorer_->update(mem_image.value(), pinned_));
  cost += up.cost;
  MIGR_ASSIGN_OR_RETURN(auto ap, restorer_->apply_pages(pages.value()));
  cost += ap.cost;
  last_rdma_delta_ = rdma_bytes.value();
  return Status::ok();
}

Status FtController::presetup_partners() {
  partners_.clear();
  for (const auto& q : plugin_.predump_image().qps) {
    if (!q.connected || !q.peer_is_migrrdma || q.peer_guest == 0) continue;
    if (q.peer_guest == guest_id_) continue;
    GuestContext* partner = partner_guest(q.peer_guest);
    if (partner == nullptr) {
      return common::err(Errc::unavailable, "partner guest not reachable");
    }
    MIGR_ASSIGN_OR_RETURN(auto partner_new_pqpn, partner->partner_prepare_qp(q.dest_vqpn));
    MIGR_ASSIGN_OR_RETURN(auto dest_pqpn, plugin_.staged().pqpn(q.vqpn));
    const rnic::Psn psn_a = next_psn();
    const rnic::Psn psn_b = next_psn();
    MIGR_RETURN_IF_ERROR(plugin_.staged().connect_qp(
        q.vqpn, directory_.locate(q.peer_guest), partner_new_pqpn, psn_a, psn_b));
    MIGR_RETURN_IF_ERROR(partner->partner_connect_qp(q.dest_vqpn, dest_rt_->host(),
                                                     dest_pqpn, psn_b, psn_a));
    plugin_.staged().set_peer_endpoint(q.vqpn, directory_.locate(q.peer_guest),
                                       partner_new_pqpn, q.peer_guest);
    (void)partner->raw().take_ctrl_cost();
    if (std::find(partners_.begin(), partners_.end(), q.peer_guest) == partners_.end()) {
      partners_.push_back(q.peer_guest);
    }
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Failover: detect -> promote -> restore -> re-arm -> recovery
// ---------------------------------------------------------------------------

void FtController::watchdog_check() {
  if (!protected_ || failed_over_ || finished_) return;
  const sim::DurationNs silence = loop_.now() - last_hb_;
  if (silence <= options_.missed_heartbeats * options_.heartbeat_interval) return;
  trigger_failover("heartbeat silence " + std::to_string(silence) + "ns");
}

void FtController::trigger_failover(const std::string& reason) {
  if (failed_over_ || finished_) return;
  failed_over_ = true;
  protected_ = false;
  stop_timers();
  if (mux_) mux_->cancel();  // no chunk retransmits from the dead primary
  report_.failed_over = true;
  report_.failover_reason = reason;
  report_.detected_at = loop_.now();
  if (report_.killed_at == 0) {
    // Kill time unknown (no mark): the last heartbeat is the closest
    // observable lower bound on the death.
    report_.killed_at = last_hb_;
  }
  wf_cursor_ = report_.killed_at;
  obs::SliHub::global().on_freeze(guest_id_, report_.killed_at);
  obs::Registry::global().counter("ft.failovers").inc();
  MIGR_WARN() << "ft failover for guest " << guest_id_ << ": " << reason;
  trace_instant(report_.detected_at, "ft_failover_detected",
                "\"guest\":" + std::to_string(guest_id_));
  push_waterfall("detect", report_.detected_at - report_.killed_at,
                 "\"reason\":\"heartbeat\"");
  // Detection latency is heartbeat-silence waiting: ctrl-plane time by
  // nature, not restore work.
  cp_.add(report_.killed_at, report_.detected_at, obs::EdgeClass::ctrl_rtt, "detect");
  phase_promote();
}

void FtController::phase_promote() {
  // Exactly-once claim of the guest: the CAS fails loudly if another backup
  // (or a retry) already took it — no silent overwrite of the winner.
  if (auto st = directory_.takeover(guest_id_, src_rt_->host(), dest_rt_->host());
      !st.is_ok()) {
    return fail(st);
  }

  // Partners stop talking to the corpse: suspend the flows toward the dead
  // peer and harvest in-flight WRs immediately — there is no live peer to
  // wait-before-stop against, so the WBS degenerates to a forced harvest.
  if (partners_.empty()) partners_ = guest_->connected_peers();
  for (GuestId pid : partners_) {
    GuestContext* partner = partner_guest(pid);
    if (partner == nullptr) continue;
    partner->set_wbs_done_callback(nullptr);
    partner->suspend(migrlib::SuspendScope{false, guest_id_});
    if (!partner->wbs_done()) partner->force_wbs_timeout();
  }

  auto owned = src_rt_->release_guest(guest_);
  if (owned == nullptr) return fail(common::err(Errc::internal, "guest ownership lost"));

  // Restore: remap staged VMAs, land deferred pages — the committed-epoch
  // memory is already applied, this is the staging->final flip.
  auto fin = restorer_->finish();
  if (!fin.is_ok()) return fail(fin.status());
  const sim::DurationNs restore_cost = fin->cost;

  // Re-arm: adopt the pre-staged RDMA resources with the last committed
  // delta, then partners switch to their pre-established replacement QPs.
  if (auto st = plugin_.full_restore(*guest_, last_rdma_delta_, *dest_rt_); !st.is_ok()) {
    return fail(st);
  }
  dest_rt_->adopt_guest(std::move(owned));
  sim::DurationNs rearm_cost = plugin_.take_cost();
  for (GuestId pid : partners_) {
    GuestContext* partner = partner_guest(pid);
    if (partner == nullptr) continue;
    for (migrlib::VQpn vqpn : partner->qps_to_peer(guest_id_)) {
      if (auto st = partner->partner_switch_qp(vqpn, guest_id_); !st.is_ok()) {
        return fail(st);
      }
    }
    partner->update_peer_location(guest_id_, dest_rt_->host());
    // Partner-side control path: partner brownout, not failover blackout.
    (void)partner->raw().take_ctrl_cost();
  }

  report_.promoted_epoch = any_applied_ ? applied_epoch_ : 0;
  sim::TimeNs cp_t = wf_cursor_;
  push_waterfall("promote", options_.promote_cost,
                 "\"epoch\":" + std::to_string(report_.promoted_epoch));
  cp_.add(cp_t, wf_cursor_, obs::EdgeClass::ctrl_rtt, "promote");
  cp_t = wf_cursor_;
  push_waterfall("restore", restore_cost,
                 "\"deferred\":" + std::to_string(fin->deferred.size()));
  cp_.add(cp_t, wf_cursor_, obs::EdgeClass::restore_apply, "restore");
  cp_t = wf_cursor_;
  push_waterfall("re_arm", rearm_cost,
                 "\"partners\":" + std::to_string(partners_.size()));
  cp_.add(cp_t, wf_cursor_, obs::EdgeClass::qp_reestablish, "re_arm");

  // Output commit resolution happens at resume: messages of uncommitted
  // epochs never became visible and the state that generated them is gone —
  // drop them before the committed backlog flushes.
  const std::uint64_t committed = report_.promoted_epoch;
  loop_.schedule_in(options_.promote_cost + restore_cost + rearm_cost, [this, committed] {
    if (finished_) return;
    const std::uint64_t dropped = node_->drop_uncommitted(committed);
    node_->resync_window();
    const std::uint64_t released_before = node_->gate_released();
    node_->release_through(committed);
    node_->disarm_output_commit();
    phase_ft_resume(node_->gate_released() - released_before, dropped);
  });
}

void FtController::phase_ft_resume(std::uint64_t released, std::uint64_t dropped) {
  finished_ = true;
  report_.resume_at = loop_.now();
  obs::SliHub::global().on_resume(guest_id_, report_.resume_at);
  if (app_ != nullptr) app_->on_migrated(*dest_proc_);
  push_waterfall("recovery", 0,
                 "\"released\":" + std::to_string(released) +
                     ",\"dropped\":" + std::to_string(dropped));

  if (cp_.enabled() && report_.killed_at != 0 && report_.resume_at != 0) {
    report_.critical_path = cp_.resolve(report_.killed_at, report_.resume_at);
  }

  report_.ok = true;
  finish_report();
  trace_instant(report_.resume_at, "ft_resume", "\"guest\":" + std::to_string(guest_id_));
  trace_blackout_span(report_.killed_at, report_.failover_blackout(), "ft_blackout",
                      "\"guest\":" + std::to_string(guest_id_));

  auto& reg = obs::Registry::global();
  reg.counter("ft.failovers_completed").inc();
  reg.gauge("ft.report.detect_ns")
      .set(static_cast<double>(report_.detected_at - report_.killed_at));
  reg.gauge("ft.report.blackout_ns").set(static_cast<double>(report_.failover_blackout()));
  reg.gauge("ft.report.promoted_epoch").set(static_cast<double>(report_.promoted_epoch));
  reg.gauge("ft.report.dropped_msgs").set(static_cast<double>(dropped));
  reg.histogram("ft.blackout_ns").observe(report_.failover_blackout());

  (void)obs::Tracer::global().flush();
  if (done_) done_(report_);
}

}  // namespace migr::ft
