// Continuous fault tolerance: COLO/Remus-style micro-checkpointing with
// output commit, and failover promotion of a replicated guest.
//
// The FtController generalizes the one-shot migration pipeline into a
// protection mode:
//
//   protect:   full-image sync to a standby host (memory pre-dump + RDMA
//              pre-dump, chunked over the ctrl plane), then RDMA pre-setup
//              and partner replacement-QP pre-establishment on the backup —
//              the same off-blackout-path trick migration pre-setup uses,
//              held armed for the guest's whole protected lifetime.
//   epochs:    periodic micro-checkpoints — brief freeze, epoch-scoped
//              incremental dump (pages dirtied since the last epoch) plus
//              the cumulative RDMA delta vs the protect-time image — shipped
//              in fixed-size chunks and applied atomically on the backup
//              only once every chunk of the epoch arrived (a partial epoch
//              never contaminates the promotable state).
//   output
//   commit:    while protected, the guest's egress buffers in the MsgNode
//              release queue tagged with the current epoch and flushes only
//              when the covering epoch is ACKed — a mid-epoch primary kill
//              is externally invisible (Remus/COLO semantics).
//   failover:  heartbeat watchdog detects primary death (partition and/or
//              process kill), the backup claims the guest with the
//              exactly-once GuestDirectory::takeover CAS, finishes the
//              staged restore, re-arms QPs (partners switch to the
//              pre-established replacements), drops uncommitted egress and
//              releases the committed backlog. The blackout is attributed
//              by a gap-free waterfall (detect/promote/restore/re_arm/
//              recovery) with the same tiling invariant as
//              MigrationReport.waterfall.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/msg_node.hpp"
#include "criu/checkpoint.hpp"
#include "criu/dirtyrate.hpp"
#include "migr/migration.hpp"
#include "migr/plugin.hpp"
#include "migr/runtime.hpp"
#include "migr/xfer.hpp"
#include "obs/critical_path.hpp"
#include "obs/histogram.hpp"

namespace migr::ft {

using migrlib::GuestId;

struct FtOptions {
  // Checkpoint cadence: the gap between an epoch's commit and the next
  // capture. With epoch_byte_budget > 0 the interval adapts per epoch from
  // the sampled dirty rate (interval = budget / dirty_bytes_per_sec,
  // clamped), so write-heavy guests checkpoint more often and quiet guests
  // stop paying for near-empty epochs.
  sim::DurationNs epoch_interval = sim::msec(5);
  std::uint64_t epoch_byte_budget = 0;  // 0 = fixed interval
  sim::DurationNs min_epoch_interval = sim::msec(2);
  sim::DurationNs max_epoch_interval = sim::msec(50);
  criu::DirtyRateConfig dirty_rate;

  // Chunked-transfer geometry for checkpoint streams (the mc-rdma idiom:
  // bounded buffers, fixed-size chunks, last chunk short).
  std::uint64_t chunk_bytes = 2ull << 20;

  // Epoch ACK deadline + bounded re-sends (the lossy-fabric discipline the
  // migration transfers use). Exhaustion drops protection, never the guest.
  sim::DurationNs transfer_timeout = sim::sec(1);
  int max_transfer_retries = 3;
  sim::DurationNs transfer_retry_backoff = sim::msec(50);  // doubles per retry
  // Ceiling for the doubling backoff; the default preserves the legacy
  // 50/100/200ms schedule at the stock 3-retry budget.
  sim::DurationNs max_transfer_backoff = sim::msec(500);

  // Parallel epoch streams: when xfer_streams > 1 (or a per-stream pacing
  // rate is set) the epoch sync rides a TransferMux (`ft.xfer.<id>.<k>`)
  // instead of the single chunked ctrl stream — same chunk geometry, but
  // with per-chunk ack/retry *beneath* the epoch-level ACK that drives
  // output commit. Defaults keep the legacy path byte-identical.
  std::uint32_t xfer_streams = 1;
  double xfer_stream_gbps = 0.0;  // 0 = line rate (no per-stream pacing)

  // Failure detection: primary-side agent heartbeats, backup-side watchdog.
  sim::DurationNs heartbeat_interval = sim::msec(5);
  int missed_heartbeats = 3;

  // Control-plane bookkeeping charged to the promote slice (directory CAS,
  // ownership transfer, partner notifications).
  sim::DurationNs promote_cost = sim::usec(50);

  // Record causal critical-path intervals and attribute the failover
  // blackout [killed_at, resume_at] to edge classes (DESIGN.md §16). Off by
  // default: the default-config artifact stream stays byte-identical.
  bool critical_path = false;

  criu::CriuCosts criu_costs;
  migrlib::MigrCosts migr_costs;
  rnic::Psn psn_seed = 700'000;
};

/// One committed (or in-flight) micro-checkpoint epoch. Epoch 0 is the full
/// sync; epochs >= 1 are incremental.
struct EpochRecord {
  std::uint64_t epoch = 0;
  sim::TimeNs captured_at = 0;   // freeze start on the primary
  sim::TimeNs committed_at = 0;  // ACK received on the primary (0 = never)
  sim::DurationNs freeze_ns = 0;  // primary pause for the capture
  std::uint64_t mem_bytes = 0;    // serialized memory image + pages
  std::uint64_t rdma_bytes = 0;   // serialized RDMA delta
  std::uint64_t wire_bytes = 0;   // first-attempt bytes on the fabric
  std::uint64_t released_msgs = 0;  // egress flushed by this epoch's commit
  int retries = 0;

  sim::DurationNs commit_latency() const {
    return committed_at == 0 ? -1 : committed_at - captured_at;
  }
};

struct FtReport {
  bool ok = false;
  std::string error;

  GuestId guest = 0;
  net::HostId primary_host = 0;
  net::HostId backup_host = 0;

  sim::TimeNs protect_start = 0;
  sim::TimeNs protected_at = 0;  // full sync committed, output commit armed
  sim::TimeNs end = 0;

  std::uint64_t epochs_captured = 0;   // includes the full sync
  std::uint64_t epochs_committed = 0;  // ACKed on the primary
  std::uint64_t full_sync_bytes = 0;
  std::uint64_t epoch_bytes_total = 0;  // sum of records[i].wire_bytes, i >= 1
  std::uint64_t xfer_bytes_attempted = 0;
  std::uint64_t xfer_bytes_delivered = 0;
  std::uint64_t transfer_retries = 0;  // epoch-level (ACK-deadline) re-sends
  // Stream-level rollups when the mux carries the epoch sync. xfer_streams
  // is 0 on the legacy single-stream ctrl path. attempted == delivered +
  // lost holds per stream and in total once the fabric quiesces.
  std::uint32_t xfer_streams = 0;
  std::uint64_t xfer_bytes_lost = 0;
  std::uint64_t xfer_chunks = 0;
  std::vector<migrlib::XferStreamStats> xfer_stream_stats;
  std::vector<EpochRecord> epochs;

  // Output-commit accounting (mirrors the MsgNode gate counters at end).
  std::uint64_t msgs_buffered = 0;
  std::uint64_t msgs_released = 0;
  std::uint64_t msgs_dropped = 0;  // uncommitted-epoch egress at failover
  // Hold time (enqueue -> wire) of released messages: the output-commit tax.
  std::int64_t release_delay_p50 = 0;
  std::int64_t release_delay_p99 = 0;
  std::int64_t release_delay_max = 0;

  // Failover outcome.
  bool failed_over = false;
  sim::TimeNs killed_at = 0;    // primary death (kill_primary marker)
  sim::TimeNs detected_at = 0;  // watchdog fired on the backup
  sim::TimeNs resume_at = 0;    // service live on the backup
  std::uint64_t promoted_epoch = 0;  // backup state the service resumed from
  std::string failover_reason;

  // Gap-free failover blackout waterfall: slices tile [killed_at,
  // resume_at] exactly, same invariant as MigrationReport.waterfall.
  std::vector<migrlib::PhaseSlice> waterfall;

  // Edge-class attribution of the failover blackout (valid only when
  // FtOptions::critical_path was set and a failover completed). Tiling:
  // sum(edges) == failover_blackout() by construction.
  obs::CriticalPath critical_path;

  sim::DurationNs failover_blackout() const { return resume_at - killed_at; }
  sim::DurationNs waterfall_total() const {
    sim::DurationNs t = 0;
    for (const auto& s : waterfall) t += s.dur;
    return t;
  }

  /// The versioned ft_report artifact body: {"kind":"ft_report",
  /// "version":1,...}. Deterministic given a deterministic run — the
  /// determinism guard diffs this byte-for-byte across seeded runs.
  std::string json() const;
};

class FtController {
 public:
  FtController(sim::EventLoop& loop, net::Fabric& fabric, migrlib::GuestDirectory& directory,
               FtOptions options = {});
  ~FtController();
  FtController(const FtController&) = delete;
  FtController& operator=(const FtController&) = delete;

  using DoneCb = std::function<void(const FtReport&)>;
  using ReadyCb = std::function<void(const common::Status&)>;

  /// Arm continuous protection for guest `id`: full-image sync to
  /// `backup_host` (restoring into `backup_proc`), then periodic epochs.
  /// `node` is the guest's message endpoint — its output-commit gate is
  /// armed once the sync commits. `ready` fires at that point; `done` fires
  /// when protection ends (failover completed, unprotect, or failure).
  common::Status protect(GuestId id, net::HostId backup_host, proc::SimProcess& backup_proc,
                         migrlib::MigratableApp* app, apps::MsgNode* node, ReadyCb ready,
                         DoneCb done);

  /// Drop protection cleanly: stop epochs, flush the release queue, leave
  /// the guest running on the primary. `done` fires with the report.
  void unprotect();

  /// Kill the primary: partition its host off the fabric (node-failure
  /// model) and kill the container process. The backup watchdog detects the
  /// silence and promotes. Callers driving faults through a FaultPlan
  /// partition instead should kill the process themselves and call
  /// mark_primary_killed() so the blackout waterfall anchors at the true
  /// death time.
  void kill_primary();
  void mark_primary_killed();

  bool is_protected() const noexcept { return protected_; }
  bool failed_over() const noexcept { return failed_over_; }
  std::uint64_t committed_epoch() const noexcept { return committed_epoch_; }
  const FtReport& report() const noexcept { return report_; }

 private:
  struct PendingEpoch {
    std::uint64_t epoch = 0;
    std::uint32_t nchunks = 0;
    std::map<std::uint32_t, common::Bytes> chunks;
  };

  void fail(const common::Status& st);
  void finish_report();
  void stop_timers();

  // Primary side.
  void phase_full_sync();
  void capture_epoch();
  void send_epoch_chunks(std::uint64_t epoch, bool retry);
  void on_ack_timeout(std::uint64_t epoch);
  void on_ack(std::uint64_t epoch);
  void send_heartbeat();
  sim::DurationNs next_epoch_interval();

  bool use_mux() const noexcept {
    return options_.xfer_streams > 1 || options_.xfer_stream_gbps > 0;
  }

  // Backup side.
  void on_sync_chunk(common::Bytes&& payload);
  void on_mux_epoch(common::Bytes&& payload);
  void handle_epoch_payload(std::uint64_t epoch, common::Bytes payload);
  common::Status apply_full_sync(const common::Bytes& payload, sim::DurationNs& cost);
  common::Status apply_epoch(const common::Bytes& payload, sim::DurationNs& cost);
  common::Status presetup_partners();
  void watchdog_check();
  void trigger_failover(const std::string& reason);
  void phase_promote();
  void phase_ft_resume(std::uint64_t released, std::uint64_t dropped);

  void push_waterfall(std::string name, sim::DurationNs dur, std::string detail = {});
  rnic::Psn next_psn() { return psn_cursor_ += 4096; }
  migrlib::GuestContext* partner_guest(GuestId id) const;

  sim::EventLoop& loop_;
  net::Fabric& fabric_;
  migrlib::GuestDirectory& directory_;
  FtOptions options_;

  GuestId guest_id_ = 0;
  migrlib::GuestContext* guest_ = nullptr;
  migrlib::MigrRdmaRuntime* src_rt_ = nullptr;
  migrlib::MigrRdmaRuntime* dest_rt_ = nullptr;
  proc::SimProcess* src_proc_ = nullptr;
  proc::SimProcess* dest_proc_ = nullptr;
  migrlib::MigratableApp* app_ = nullptr;
  apps::MsgNode* node_ = nullptr;
  ReadyCb ready_;
  DoneCb done_;

  std::unique_ptr<criu::Checkpointer> ckpt_;
  std::unique_ptr<criu::Restorer> restorer_;
  std::unique_ptr<criu::DirtyRateEstimator> estimator_;
  migrlib::Plugin plugin_;
  std::set<proc::VirtAddr> pinned_;
  std::vector<GuestId> partners_;
  common::Bytes predump_rdma_bytes_;
  common::Bytes last_rdma_delta_;  // backup: cumulative delta of the last applied epoch
  rnic::Psn psn_cursor_;

  std::string sync_service_;
  std::string ack_service_;
  std::string hb_service_;
  bool services_registered_ = false;
  // Parallel epoch streams (see FtOptions::xfer_streams); null on the
  // legacy single-stream path.
  std::unique_ptr<migrlib::TransferMux> mux_;

  bool protected_ = false;
  bool failed_over_ = false;
  bool finished_ = false;
  std::uint64_t next_epoch_ = 0;      // primary: next epoch to capture
  std::uint64_t committed_epoch_ = 0;  // primary: highest ACKed epoch
  bool any_committed_ = false;
  std::uint64_t applied_epoch_ = 0;    // backup: highest fully-applied epoch
  bool any_applied_ = false;
  common::Bytes inflight_payload_;     // retained for epoch re-sends
  std::uint64_t inflight_epoch_ = 0;
  bool inflight_ = false;
  int xfer_attempt_ = 0;
  PendingEpoch pending_;               // backup: chunk reassembly

  sim::EventHandle epoch_timer_;
  sim::EventHandle hb_timer_;
  sim::EventHandle watchdog_timer_;
  sim::EventHandle ack_timeout_;
  sim::TimeNs last_hb_ = 0;
  sim::TimeNs wf_cursor_ = 0;

  // Causal-graph scope: one trace id per protection, root span parenting
  // epoch/failover spans; 0 when the tracer was disabled at protect().
  std::uint64_t trace_id_ = 0;
  std::uint64_t root_span_ = 0;
  // Critical-path interval sink (armed by FtOptions::critical_path); the
  // mux's chunk wire/retry intervals land here too via XferOptions::cp.
  obs::CpRecorder cp_;

  FtReport report_;
};

}  // namespace migr::ft
