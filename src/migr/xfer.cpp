#include "migr/xfer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace migr::migrlib {

using common::ByteReader;
using common::Bytes;
using common::ByteWriter;
using common::Errc;

TransferMux::TransferMux(sim::EventLoop& loop, net::Fabric& fabric,
                         std::string base, net::HostId src, net::HostId dst,
                         XferOptions opts)
    : loop_(loop),
      fabric_(fabric),
      base_(std::move(base)),
      src_(src),
      dst_(dst),
      opts_(opts) {
  opts_.streams = std::max<std::uint32_t>(1, opts_.streams);
  opts_.chunk_bytes = std::max<std::uint64_t>(1, opts_.chunk_bytes);
  stats_.streams.resize(opts_.streams);
  stream_free_at_.assign(opts_.streams, 0);
  ack_service_ = base_ + ".ack";
  data_services_.reserve(opts_.streams);
  for (std::uint32_t k = 0; k < opts_.streams; ++k) {
    data_services_.push_back(base_ + "." + std::to_string(k));
    fabric_.register_service(dst_, data_services_.back(),
                             [this, k](net::HostId, Bytes&& p) {
                               on_data(k, std::move(p));
                             });
  }
  fabric_.register_service(src_, ack_service_, [this](net::HostId, Bytes&& p) {
    on_ack(std::move(p));
  });
}

TransferMux::~TransferMux() {
  cancel();
  for (const auto& svc : data_services_) fabric_.unregister_service(dst_, svc);
  fabric_.unregister_service(src_, ack_service_);
}

std::uint64_t TransferMux::wire_size(std::uint64_t payload_bytes,
                                     std::uint64_t chunk_bytes) {
  chunk_bytes = std::max<std::uint64_t>(1, chunk_bytes);
  const std::uint64_t nchunks =
      payload_bytes == 0 ? 1 : (payload_bytes + chunk_bytes - 1) / chunk_bytes;
  return payload_bytes + nchunks * kFrameOverhead;
}

void TransferMux::open(DeliverFn on_deliver, FailFn on_fail) {
  deliver_ = std::move(on_deliver);
  fail_ = std::move(on_fail);
}

void TransferMux::send(Bytes payload) {
  if (tx_active_) {
    queue_.push_back(std::move(payload));
    return;
  }
  start_transfer(std::move(payload));
}

void TransferMux::start_transfer(Bytes payload) {
  tx_active_ = true;
  tx_seq_ = next_seq_++;
  tx_payload_ = std::move(payload);
  acked_count_ = 0;

  const std::size_t total = tx_payload_.size();
  const std::size_t nchunks =
      total == 0 ? 1
                 : (total + opts_.chunk_bytes - 1) / opts_.chunk_bytes;
  chunks_.assign(nchunks, Chunk{});
  for (std::size_t i = 0; i < nchunks; ++i) {
    Chunk& c = chunks_[i];
    c.stream = static_cast<std::uint32_t>(i % opts_.streams);
    c.off = i * opts_.chunk_bytes;
    c.len = std::min<std::size_t>(opts_.chunk_bytes, total - c.off);
  }

  // Receiver state for this sequence (src and dst halves live in one object;
  // the frames still cross the simulated fabric in between).
  rx_active_ = true;
  rx_seq_ = tx_seq_;
  rx_nchunks_ = static_cast<std::uint32_t>(nchunks);
  rx_count_ = 0;
  rx_have_.assign(nchunks, false);
  rx_slices_.assign(nchunks, Bytes{});

  for (std::uint32_t i = 0; i < nchunks; ++i) schedule_send(i, 0);
}

void TransferMux::schedule_send(std::uint32_t index, sim::DurationNs delay) {
  Chunk& c = chunks_[index];
  const std::uint64_t frame_bytes = c.len + kFrameOverhead;
  sim::TimeNs ready = loop_.now() + delay;
  if (opts_.stream_gbps > 0) {
    // Pace: each stream is a fixed-rate pipe. The chunk goes on the wire at
    // the stream's next free instant and occupies it for its transmit time.
    const sim::TimeNs start = std::max(ready, stream_free_at_[c.stream]);
    if (opts_.cp != nullptr && opts_.cp->enabled() && start > ready) {
      // Pacing hold: the chunk was ready but its stream was serialized
      // behind earlier chunks.
      opts_.cp->add(ready, start, obs::EdgeClass::scheduler_hold,
                    "stream " + std::to_string(c.stream));
    }
    stream_free_at_[c.stream] =
        start + sim::transmit_time(frame_bytes, opts_.stream_gbps);
    ready = start;
  }
  const std::uint64_t seq = tx_seq_;
  if (ready <= loop_.now()) {
    do_send(index, seq);
    return;
  }
  c.timer = loop_.schedule_at(
      ready, [this, index, seq] { do_send(index, seq); });
}

void TransferMux::do_send(std::uint32_t index, std::uint64_t seq) {
  if (!tx_active_ || seq != tx_seq_) return;
  Chunk& c = chunks_[index];
  if (c.acked) return;
  c.attempts++;

  ByteWriter w;
  w.u64(seq);
  w.u32(index);
  w.u32(static_cast<std::uint32_t>(chunks_.size()));
  w.u32(c.stream);
  w.bytes({tx_payload_.data() + c.off, c.len});
  Bytes frame = std::move(w).take();

  auto& ss = stats_.streams[c.stream];
  ss.chunks++;
  ss.bytes_attempted += frame.size();
  {
    obs::CtxScope scope(obs::Tracer::global(), ctx_);
    (void)fabric_.send_ctrl(src_, dst_, data_services_[c.stream], std::move(frame));
  }

  c.sent_at = loop_.now();
  c.timer = loop_.schedule_in(opts_.chunk_timeout, [this, index, seq] {
    on_chunk_timeout(index, seq);
  });
}

void TransferMux::on_chunk_timeout(std::uint32_t index, std::uint64_t seq) {
  if (!tx_active_ || seq != tx_seq_) return;
  Chunk& c = chunks_[index];
  if (c.acked) return;
  if (c.attempts > opts_.max_chunk_retries) {
    fail_transfer(common::err(
        Errc::timeout, "xfer chunk " + std::to_string(index) + " exhausted " +
                           std::to_string(opts_.max_chunk_retries) +
                           " retries on stream " + std::to_string(c.stream)));
    return;
  }
  stats_.streams[c.stream].retries++;
  obs::Registry::global().counter("migr.xfer.chunk_retries").inc();
  const sim::DurationNs backoff = std::min<sim::DurationNs>(
      opts_.retry_backoff << (c.attempts - 1), opts_.max_backoff);
  if (opts_.cp != nullptr && opts_.cp->enabled()) {
    // Lost attempt + backoff: dead time the loss caused, ending at the
    // moment the re-send becomes eligible.
    opts_.cp->add(c.sent_at, loop_.now() + backoff, obs::EdgeClass::chunk_retry,
                  "chunk " + std::to_string(index) + " try " +
                      std::to_string(c.attempts));
  }
  schedule_send(index, backoff);
}

void TransferMux::on_data(std::uint32_t stream, Bytes&& frame) {
  const std::uint64_t frame_bytes = frame.size();
  ByteReader r{frame};
  auto seq = r.u64();
  auto index = r.u32();
  auto nchunks = r.u32();
  auto wire_stream = r.u32();
  auto slice = r.bytes();
  if (!seq.is_ok() || !index.is_ok() || !nchunks.is_ok() ||
      !wire_stream.is_ok() || !slice.is_ok()) {
    return;  // malformed frame: drop, sender's timeout re-sends
  }
  stats_.streams[stream].bytes_delivered += frame_bytes;

  // Ack unconditionally — duplicates and frames for cancelled transfers
  // still ack so the sender stops retrying them.
  ByteWriter w;
  w.u64(*seq);
  w.u32(*index);
  {
    obs::CtxScope scope(obs::Tracer::global(), ctx_);
    (void)fabric_.send_ctrl(dst_, src_, ack_service_, std::move(w).take());
  }

  if (!rx_active_ || *seq != rx_seq_ || *index >= rx_nchunks_) return;
  if (rx_have_[*index]) return;
  rx_have_[*index] = true;
  rx_slices_[*index] = std::move(*slice);
  if (++rx_count_ < rx_nchunks_) return;

  // Full receipt: reassemble in chunk order and deliver exactly once.
  std::size_t total = 0;
  for (const auto& s : rx_slices_) total += s.size();
  Bytes payload;
  payload.reserve(total);
  for (auto& s : rx_slices_) {
    payload.insert(payload.end(), s.begin(), s.end());
  }
  rx_active_ = false;
  rx_have_.clear();
  rx_slices_.clear();
  if (deliver_) deliver_(std::move(payload));
}

void TransferMux::on_ack(Bytes&& frame) {
  ByteReader r{frame};
  auto seq = r.u64();
  auto index = r.u32();
  if (!seq.is_ok() || !index.is_ok()) return;
  if (!tx_active_ || *seq != tx_seq_ || *index >= chunks_.size()) return;
  Chunk& c = chunks_[*index];
  if (c.acked) return;
  c.acked = true;
  c.timer.cancel();
  obs::Registry::global()
      .histogram("migr.xfer.chunk_rtt_ns",
                 {{"stream", std::to_string(c.stream)}})
      .observe(static_cast<double>(loop_.now() - c.sent_at));
  if (opts_.cp != nullptr && opts_.cp->enabled()) {
    // Delivered attempt: wire + ack round-trip for this chunk.
    opts_.cp->add(c.sent_at, loop_.now(), obs::EdgeClass::chunk_wire,
                  "chunk " + std::to_string(*index));
  }
  if (++acked_count_ == chunks_.size()) finish_tx();
}

void TransferMux::finish_tx() {
  tx_active_ = false;
  tx_payload_.clear();
  chunks_.clear();
  stats_.transfers++;
  if (!queue_.empty()) {
    Bytes next = std::move(queue_.front());
    queue_.pop_front();
    start_transfer(std::move(next));
  }
}

void TransferMux::cancel_tx() {
  for (Chunk& c : chunks_) c.timer.cancel();
  chunks_.clear();
  tx_payload_.clear();
  tx_active_ = false;
}

void TransferMux::fail_transfer(common::Status st) {
  cancel_tx();
  rx_active_ = false;
  queue_.clear();
  if (fail_) fail_(st);
}

void TransferMux::cancel() {
  cancel_tx();
  rx_active_ = false;
  rx_have_.clear();
  rx_slices_.clear();
  queue_.clear();
}

}  // namespace migr::migrlib
