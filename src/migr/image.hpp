// The MigrRDMA checkpoint format: the minimal control-path state the
// indirection layer bookkeeps to rebuild equivalent RDMA communication on
// the migration destination (paper §3.2), plus the virtualization metadata
// dumped at stop-and-copy (§3.3) and the wait-before-stop residue (§3.4):
// intercepted-but-unposted WRs, un-received RECV WRs to replay, and fake-CQ
// contents not yet consumed by the application.
//
// In the real system most of this state lives inside the migrated process's
// memory and travels with the memory image for free; in the simulation the
// library state lives in host objects, so it is serialized explicitly here.
// The byte volume is the same either way, so transfer costs are preserved.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "rnic/types.hpp"

namespace migr::migrlib {

/// Virtual resource identifiers as the application sees them. Virtual QPNs
/// start equal to the physical QPN at creation; virtual keys are dense
/// per-process integers (1, 2, 3, ...) so translation is an array index.
using VQpn = rnic::Qpn;
using VLkey = std::uint32_t;
using VRkey = std::uint32_t;
using VHandle = std::uint32_t;

// ---- resource records (creation roadmap, §3.2) ----

struct PdRec {
  VHandle vpd = 0;
};

struct ChannelRec {
  VHandle vchannel = 0;
};

struct CqRec {
  VHandle vcq = 0;
  std::uint32_t capacity = 0;
  VHandle vchannel = 0;  // 0 = none
};

struct SrqRec {
  VHandle vsrq = 0;
  VHandle vpd = 0;
  std::uint32_t capacity = 0;
};

struct MrRec {
  VLkey vlkey = 0;
  VRkey vrkey = 0;
  VHandle vpd = 0;
  std::uint64_t addr = 0;
  std::uint64_t length = 0;
  std::uint32_t access = 0;
};

struct DmRec {
  VHandle vdm = 0;
  std::uint64_t length = 0;
  std::uint64_t mapped_at = 0;  // original virtual address (remapped on restore)
};

struct MwRec {
  VHandle vmw = 0;
  VHandle vpd = 0;
  // Bound state, if any (rebound on restore via a fresh bind WR).
  bool bound = false;
  VRkey vrkey = 0;
  VLkey mr_vlkey = 0;
  std::uint32_t bind_vqpn = 0;  // QP the bind was posted on
  std::uint64_t addr = 0;
  std::uint64_t length = 0;
  std::uint32_t access = 0;
};

struct QpRec {
  VQpn vqpn = 0;
  rnic::QpType type = rnic::QpType::rc;
  VHandle vpd = 0;
  VHandle vsend_cq = 0;
  VHandle vrecv_cq = 0;
  VHandle vsrq = 0;
  rnic::QpCaps caps;
  // Connection metadata (§3.2: "we add the fields of the destination
  // physical QPN and the destination network address").
  bool connected = false;
  std::uint32_t dest_host = 0;
  rnic::Qpn dest_pqpn = 0;
  VQpn dest_vqpn = 0;
  std::uint32_t peer_guest = 0;  // stable identity of the peer service
  bool peer_is_migrrdma = true;  // hybrid negotiation result (§6)
};

// ---- wait-before-stop residue (final dump only, §3.4) ----

/// A send WR in virtual ID space (what the application posted).
struct VSendWr {
  VQpn vqpn = 0;
  rnic::SendWr wr;  // sge lkeys / rkey / remote_qpn are VIRTUAL values
};

struct VRecvWr {
  VQpn vqpn = 0;  // 0 => SRQ post, see vsrq
  VHandle vsrq = 0;
  rnic::RecvWr wr;  // virtual lkeys
};

/// A completion already translated to virtual IDs, parked in a fake CQ.
struct FakeCqe {
  VHandle vcq = 0;
  rnic::Cqe cqe;  // qpn field already virtual
};

struct QpCounters {
  VQpn vqpn = 0;
  std::uint64_t n_sent = 0;
  std::uint64_t n_recv = 0;
};

/// Full RDMA dump for one process.
struct RdmaImage {
  bool final = false;  // pre-dump (pre-copy) vs final dump (stop-and-copy)

  std::vector<PdRec> pds;
  std::vector<ChannelRec> channels;
  std::vector<CqRec> cqs;
  std::vector<SrqRec> srqs;
  std::vector<MrRec> mrs;
  std::vector<DmRec> dms;
  std::vector<MwRec> mws;
  std::vector<QpRec> qps;

  // Final dump extras.
  std::vector<VSendWr> intercepted_sends;   // buffered during suspension
  std::vector<VRecvWr> pending_recvs;       // posted, no message received yet
  std::vector<VSendWr> incomplete_sends;    // WBS timeout path: replay these first
  std::vector<FakeCqe> fake_cq_entries;     // unconsumed completions
  std::vector<QpCounters> counters;

  common::Bytes serialize() const;
  static common::Result<RdmaImage> parse(std::span<const std::uint8_t> data);

  /// Records present in `newer` but not in this image (matched by virtual
  /// id) — the "difference" dump the paper produces at stop-and-copy.
  RdmaImage diff_against(const RdmaImage& older) const;
};

}  // namespace migr::migrlib
