// Checkpoint (dump) and restore halves of the guest library: what the
// MigrRDMA Plugin calls through the Host Lib APIs of Table 3.
#include <algorithm>

#include "common/log.hpp"
#include "migr/guest_lib.hpp"
#include "migr/staged_restore.hpp"

namespace migr::migrlib {

using common::Errc;
using common::Result;
using common::Status;

// ---------------------------------------------------------------------------
// Dump
// ---------------------------------------------------------------------------

void GuestContext::harvest_pending_recvs(RdmaImage& image) {
  // RECVs posted to the NIC but not yet matched by a message live in the
  // (memory-mapped) RQ/SRQ buffers; read them back and un-translate the
  // lkeys to virtual space so they can be replayed on the new QPs (§3.4).
  std::unordered_map<rnic::Lkey, VLkey> rev;
  for (const auto& [vlkey, mr] : mrs_) rev.emplace(mr.plkey, vlkey);
  auto untranslate = [&rev](rnic::RecvWr wr) {
    for (auto& s : wr.sge) {
      auto it = rev.find(s.lkey);
      if (it != rev.end()) s.lkey = it->second;
    }
    return wr;
  };

  for (auto& [vqpn, qp] : qps_) {
    if (const rnic::Qp* real = ctx_->find_qp(qp.pqpn)) {
      for (std::size_t i = 0; i < real->rq.size(); ++i) {
        image.pending_recvs.push_back(VRecvWr{vqpn, 0, untranslate(real->rq.at(i))});
      }
    }
    // RECVs intercepted during suspension follow the posted ones, keeping
    // the application's posting order.
    for (auto& wr : qp.intercepted_recvs) {
      image.pending_recvs.push_back(VRecvWr{vqpn, 0, wr});
    }
    qp.intercepted_recvs.clear();
  }
  for (auto& [vsrq, srq] : srqs_) {
    if (const rnic::Srq* real = ctx_->find_srq(srq.psrq)) {
      for (std::size_t i = 0; i < real->wqes.size(); ++i) {
        image.pending_recvs.push_back(VRecvWr{0, vsrq, untranslate(real->wqes.at(i))});
      }
    }
    for (auto& wr : srq.intercepted_recvs) {
      image.pending_recvs.push_back(VRecvWr{0, vsrq, wr});
    }
    srq.intercepted_recvs.clear();
  }
}

RdmaImage GuestContext::dump(bool final) {
  RdmaImage img;
  img.final = final;
  for (const auto& [vpd, rec] : pds_) img.pds.push_back(rec);
  for (const auto& [vch, ch] : channels_) img.channels.push_back(ch.rec);
  for (const auto& [vcq, cq] : cqs_) img.cqs.push_back(cq.rec);
  for (const auto& [vsrq, srq] : srqs_) img.srqs.push_back(srq.rec);
  for (const auto& [vlkey, mr] : mrs_) img.mrs.push_back(mr.rec);
  for (const auto& [vdm, dm] : dms_) img.dms.push_back(dm.rec);
  for (const auto& [vmw, mw] : mws_) img.mws.push_back(mw.rec);
  for (const auto& [vqpn, qp] : qps_) img.qps.push_back(qp.rec);

  if (!final) {
    last_predump_ = std::make_unique<RdmaImage>(img);
    return img;
  }

  // Stop-and-copy: dump only the difference from the pre-dump, plus the
  // virtualization info and WBS residue (§4: "we only need to dump RDMA
  // states twice ... it generates only the difference").
  for (auto& [vqpn, qp] : qps_) {
    for (auto& wr : qp.timeout_replays) {
      img.incomplete_sends.push_back(VSendWr{vqpn, std::move(wr)});
    }
    qp.timeout_replays.clear();
    for (auto& wr : qp.intercepted_sends) {
      img.intercepted_sends.push_back(VSendWr{vqpn, std::move(wr)});
    }
    qp.intercepted_sends.clear();

    const rnic::Qp* real = ctx_->find_qp(qp.pqpn);
    img.counters.push_back(QpCounters{vqpn, qp.n_sent_base + (real ? real->n_sent : 0),
                                      qp.n_recv_base + (real ? real->n_recv : 0)});
  }
  harvest_pending_recvs(img);
  for (auto& [vcq, cq] : cqs_) {
    for (const auto& cqe : cq.fake) img.fake_cq_entries.push_back(FakeCqe{vcq, cqe});
    cq.fake.clear();
  }

  RdmaImage diff = last_predump_ ? img.diff_against(*last_predump_) : img;
  diff.final = true;
  return diff;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> GuestContext::pinned_ranges() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& [vlkey, mr] : mrs_) out.emplace_back(mr.rec.addr, mr.rec.length);
  for (const auto& [vqpn, addr] : qp_shadow_vmas_) {
    out.emplace_back(addr, config_.qp_shadow_bytes);
  }
  for (const auto& [vdm, dm] : dms_) out.emplace_back(dm.rec.mapped_at, dm.rec.length);
  return out;
}

// ---------------------------------------------------------------------------
// StagedRestore
// ---------------------------------------------------------------------------

Status StagedRestore::premap(const RdmaImage& image, MigrRdmaRuntime& runtime,
                             proc::SimProcess& proc) {
  runtime_ = &runtime;
  proc_ = &proc;
  MIGR_ASSIGN_OR_RETURN(ctx_, runtime.device().open(proc));
  for (const auto& rec : image.dms) {
    if (proc.mem().mapped(rec.mapped_at, rec.length)) {
      // No-pre-setup baseline: memory restoration already re-created the
      // DM-backed pages; only the device-side allocation needs re-doing.
      MIGR_ASSIGN_OR_RETURN(auto dm, ctx_->adopt_dm(rec.length, rec.mapped_at));
      dms_.emplace(rec.vdm, dm.handle);
      continue;
    }
    // Allocate on-chip memory of the same size and remap it to the original
    // virtual address (Table 1: "remap it to the original virtual address
    // after its allocation on the RNIC of the new location").
    MIGR_ASSIGN_OR_RETURN(auto dm, ctx_->alloc_dm(rec.length));
    MIGR_RETURN_IF_ERROR(proc.mem().mremap(dm.mapped_at, rec.mapped_at));
    dms_.emplace(rec.vdm, dm.handle);
  }
  ctrl_cost_ += ctx_->take_ctrl_cost();
  return Status::ok();
}

Status StagedRestore::build(const RdmaImage& image) {
  if (ctx_ == nullptr) return common::err(Errc::failed_precondition, "premap first");
  image_ = image;
  for (const auto& rec : image.pds) {
    MIGR_ASSIGN_OR_RETURN(auto ppd, ctx_->alloc_pd());
    pds_.emplace(rec.vpd, ppd);
  }
  for (const auto& rec : image.channels) {
    MIGR_ASSIGN_OR_RETURN(auto pch, ctx_->create_comp_channel());
    channels_.emplace(rec.vchannel, pch);
  }
  for (const auto& rec : image.cqs) {
    rnic::Handle pch = 0;
    if (rec.vchannel != 0) {
      auto it = channels_.find(rec.vchannel);
      if (it == channels_.end()) return common::err(Errc::not_found, "image: bad vchannel");
      pch = it->second;
    }
    MIGR_ASSIGN_OR_RETURN(auto pcq, ctx_->create_cq(rec.capacity, pch));
    cqs_.emplace(rec.vcq, pcq);
  }
  for (const auto& rec : image.srqs) {
    auto pd = pds_.find(rec.vpd);
    if (pd == pds_.end()) return common::err(Errc::not_found, "image: bad vpd for srq");
    MIGR_ASSIGN_OR_RETURN(auto psrq, ctx_->create_srq(pd->second, rec.capacity));
    srqs_.emplace(rec.vsrq, psrq);
  }
  for (const auto& rec : image.mrs) {
    auto st = register_mr(rec);
    if (!st.is_ok()) deferred_.push_back(rec);
  }
  for (const auto& rec : image.mws) {
    auto pd = pds_.find(rec.vpd);
    if (pd == pds_.end()) return common::err(Errc::not_found, "image: bad vpd for mw");
    MIGR_ASSIGN_OR_RETURN(auto pmw, ctx_->alloc_mw(pd->second));
    mws_.emplace(rec.vmw, pmw);
  }
  for (const auto& rec : image.qps) {
    rnic::QpInitAttr attr;
    attr.type = rec.type;
    auto pd = pds_.find(rec.vpd);
    auto scq = cqs_.find(rec.vsend_cq);
    auto rcq = cqs_.find(rec.vrecv_cq);
    if (pd == pds_.end() || scq == cqs_.end() || rcq == cqs_.end()) {
      return common::err(Errc::not_found, "image: bad qp deps");
    }
    attr.pd = pd->second;
    attr.send_cq = scq->second;
    attr.recv_cq = rcq->second;
    if (rec.vsrq != 0) {
      auto srq = srqs_.find(rec.vsrq);
      if (srq == srqs_.end()) return common::err(Errc::not_found, "image: bad vsrq");
      attr.srq = srq->second;
    }
    attr.caps = rec.caps;
    MIGR_ASSIGN_OR_RETURN(auto pqpn, ctx_->create_qp(attr));
    qps_.emplace(rec.vqpn, pqpn);
  }
  ctrl_cost_ += ctx_->take_ctrl_cost();
  return Status::ok();
}

Status StagedRestore::register_mr(const MrRec& rec) {
  auto pd = pds_.find(rec.vpd);
  if (pd == pds_.end()) return common::err(Errc::not_found, "image: bad vpd for mr");
  if (!proc_->mem().mapped(rec.addr, rec.length)) {
    return common::err(Errc::failed_precondition, "MR memory not yet at original address");
  }
  MIGR_ASSIGN_OR_RETURN(auto mr, ctx_->reg_mr(pd->second, rec.addr, rec.length, rec.access));
  mrs_[rec.vlkey] = {mr.lkey, mr.rkey};
  ctrl_cost_ += ctx_->take_ctrl_cost();
  return Status::ok();
}

Status StagedRestore::connect_qp(VQpn vqpn, net::HostId remote_host, rnic::Qpn remote_pqpn,
                                 rnic::Psn my_psn, rnic::Psn remote_psn) {
  auto it = qps_.find(vqpn);
  if (it == qps_.end()) return common::err(Errc::not_found, "no staged QP");
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_init(it->second));
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_rtr(it->second, remote_host, remote_pqpn, remote_psn));
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_rts(it->second, my_psn));
  ctrl_cost_ += ctx_->take_ctrl_cost();
  return Status::ok();
}

Result<rnic::Qpn> StagedRestore::pqpn(VQpn vqpn) const {
  auto it = qps_.find(vqpn);
  if (it == qps_.end()) return common::err(Errc::not_found, "no staged QP");
  return it->second;
}

void StagedRestore::abandon() {
  // Closing the staged context destroys every resource created under it
  // (QPs, MRs, CQs, ...) in one sweep — the same reclamation path the
  // source side uses after a successful migration.
  if (ctx_ != nullptr && runtime_ != nullptr) {
    runtime_->device().close(ctx_);
  }
  ctx_ = nullptr;
  runtime_ = nullptr;
  proc_ = nullptr;
  pds_.clear();
  channels_.clear();
  cqs_.clear();
  srqs_.clear();
  dms_.clear();
  mws_.clear();
  mrs_.clear();
  qps_.clear();
  peer_endpoints_.clear();
  deferred_.clear();
  image_ = RdmaImage{};
  ctrl_cost_ = 0;
}

// ---------------------------------------------------------------------------
// Adoption / finalize
// ---------------------------------------------------------------------------

Status GuestContext::adopt_staged(StagedRestore&& staged) {
  // Leave the source runtime; the plugin reclaims the old physical context.
  runtime_->indirection().unregister_guest(this);
  wbs_task_.cancel();

  runtime_ = staged.runtime_;
  proc_ = staged.proc_;
  ctx_ = staged.ctx_;

  for (auto& [vpd, rec] : pds_) {
    auto it = staged.pds_.find(vpd);
    if (it == staged.pds_.end()) return common::err(Errc::internal, "staged: missing vPD");
    ppds_[vpd] = it->second;
  }
  for (auto& [vch, ch] : channels_) {
    auto it = staged.channels_.find(vch);
    if (it == staged.channels_.end()) return common::err(Errc::internal, "staged: missing vCh");
    ch.pchannel = it->second;
    ch.unfinished_events = 0;
  }
  for (auto& [vcq, cq] : cqs_) {
    auto it = staged.cqs_.find(vcq);
    if (it == staged.cqs_.end()) return common::err(Errc::internal, "staged: missing vCQ");
    cq.pcq = it->second;
  }
  for (auto& [vsrq, srq] : srqs_) {
    auto it = staged.srqs_.find(vsrq);
    if (it == staged.srqs_.end()) return common::err(Errc::internal, "staged: missing vSRQ");
    srq.psrq = it->second;
  }
  for (auto& [vdm, dm] : dms_) {
    auto it = staged.dms_.find(vdm);
    if (it == staged.dms_.end()) return common::err(Errc::internal, "staged: missing vDM");
    dm.pdm = it->second;
  }
  for (auto& [vmw, mw] : mws_) {
    auto it = staged.mws_.find(vmw);
    if (it == staged.mws_.end()) return common::err(Errc::internal, "staged: missing vMW");
    mw.pmw = it->second;
    mw.prkey = 0;  // rebound in finalize_restore
  }
  for (auto& [vlkey, mr] : mrs_) {
    auto it = staged.mrs_.find(vlkey);
    if (it != staged.mrs_.end()) {
      mr.plkey = it->second.first;
      mr.prkey = it->second.second;
      mr.live = true;
      if (vlkey >= lkey_table_.size()) lkey_table_.resize(vlkey * 2, 0);
      lkey_table_[vlkey] = mr.plkey;
    } else {
      mr.live = false;
      if (vlkey < lkey_table_.size()) lkey_table_[vlkey] = 0;
    }
  }
  deferred_mrs_ = staged.deferred_;

  for (auto& [vqpn, qp] : qps_) {
    auto it = staged.qps_.find(vqpn);
    if (it == staged.qps_.end()) {
      // QP created on the source after the pre-dump: re-create it now (on
      // the blackout path); it comes back unconnected and the application
      // must re-establish the connection.
      MIGR_RETURN_IF_ERROR(create_physical_qp(qp));
      qp.rec.connected = false;
    } else {
      qp.pqpn = it->second;
    }
    // Virtualize: the application's virtual QPN now maps to the new
    // physical one; the CQE translation array picks it up (§3.3).
    runtime_->indirection().map_qpn(qp.pqpn, vqpn);
    auto peer = staged.peer_endpoints_.find(vqpn);
    if (peer != staged.peer_endpoints_.end()) {
      qp.rec.dest_host = peer->second.host;
      qp.rec.dest_pqpn = peer->second.pqpn;
      if (peer->second.peer != 0) qp.rec.peer_guest = peer->second.peer;
    }
    qp.new_pqpn = 0;
    qp.old_pqpn = 0;
  }

  runtime_->indirection().register_guest(this);
  wbs_task_ = proc_->spawn_daemon(config_.wbs_poll_interval, [this] { wbs_tick(); });
  return Status::ok();
}

Status GuestContext::finalize_restore(const RdmaImage& final_image) {
  // Late + deferred MRs register now that memory restoration is complete
  // ("we restore the conflicting MRs at the end of stop-and-copy", §3.2).
  auto register_now = [this](const MrRec& rec) -> Status {
    auto pd = ppds_.find(rec.vpd);
    if (pd == ppds_.end()) return common::err(Errc::not_found, "bad vpd for late MR");
    MIGR_ASSIGN_OR_RETURN(auto mr, ctx_->reg_mr(pd->second, rec.addr, rec.length, rec.access));
    auto it = mrs_.find(rec.vlkey);
    if (it == mrs_.end()) {
      MrVirt mv;
      mv.rec = rec;
      mrs_.emplace(rec.vlkey, std::move(mv));
      vrkey_to_vlkey_.emplace(rec.vrkey, rec.vlkey);
      it = mrs_.find(rec.vlkey);
    }
    it->second.plkey = mr.lkey;
    it->second.prkey = mr.rkey;
    it->second.live = true;
    if (rec.vlkey >= lkey_table_.size()) lkey_table_.resize(rec.vlkey * 2, 0);
    lkey_table_[rec.vlkey] = mr.lkey;
    return Status::ok();
  };
  for (const auto& rec : deferred_mrs_) MIGR_RETURN_IF_ERROR(register_now(rec));
  deferred_mrs_.clear();
  for (const auto& rec : final_image.mrs) {
    auto it = mrs_.find(rec.vlkey);
    if (it == mrs_.end() || !it->second.live) MIGR_RETURN_IF_ERROR(register_now(rec));
  }

  // Rebind memory windows on their (already reconnected) QPs; the virtual
  // rkey is stable, only the physical one changes.
  for (auto& [vmw, mw] : mws_) {
    if (!mw.rec.bound) continue;
    QpVirt* qp = find_qp(mw.rec.bind_vqpn);
    auto mr = mrs_.find(mw.rec.mr_vlkey);
    if (qp == nullptr || mr == mrs_.end()) continue;
    auto prkey = ctx_->bind_mw(qp->pqpn, mw.pmw, mr->second.plkey, mw.rec.addr,
                               mw.rec.length, mw.rec.access, /*wr_id=*/0);
    if (prkey.is_ok()) {
      mw.prkey = prkey.value();
    } else {
      MIGR_WARN() << "MW rebind failed: " << prkey.status().to_string();
    }
  }

  // Counters continue "since creation" values on the fresh physical QPs.
  for (const auto& c : final_image.counters) {
    QpVirt* qp = find_qp(c.vqpn);
    if (qp != nullptr) {
      qp->n_sent_base = c.n_sent;
      qp->n_recv_base = c.n_recv;
    }
  }

  // Unconsumed completions migrate via the fake CQs (§3.4).
  for (const auto& f : final_image.fake_cq_entries) {
    auto it = cqs_.find(f.vcq);
    if (it != cqs_.end()) it->second.fake.push_back(f.cqe);
  }

  // Replay RECVs posted-but-unmatched before migration, in order.
  for (const auto& r : final_image.pending_recvs) {
    rnic::RecvWr wr = r.wr;
    MIGR_RETURN_IF_ERROR(translate_sges(wr.sge));
    if (r.vqpn != 0) {
      QpVirt* qp = find_qp(r.vqpn);
      if (qp == nullptr) continue;
      MIGR_RETURN_IF_ERROR(ctx_->post_recv(qp->pqpn, std::move(wr)));
    } else {
      auto it = srqs_.find(r.vsrq);
      if (it == srqs_.end()) continue;
      MIGR_RETURN_IF_ERROR(ctx_->post_srq_recv(it->second.psrq, std::move(wr)));
    }
  }

  // Lift suspension *before* posting so the posts take the normal path.
  for (auto& [vqpn, qp] : qps_) {
    qp.suspended = false;
    qp.drained = false;
    qp.peer_count_received = false;
    qp.peer_n_sent = kNoPeerCount;
  }
  suspend_active_ = false;
  wbs_done_ = false;
  wbs_counts_sent_ = false;

  // WRs the NIC never completed (timeout path) replay first, then the WRs
  // intercepted during suspension (§3.4). Loading them back into the
  // library's buffers and flushing bounded handles backlogs larger than
  // the queue capacity (the WBS thread drains the remainder).
  for (const auto& s : final_image.incomplete_sends) {
    QpVirt* qp = find_qp(s.vqpn);
    if (qp != nullptr) qp->timeout_replays.push_back(s.wr);
  }
  for (const auto& s : final_image.intercepted_sends) {
    QpVirt* qp = find_qp(s.vqpn);
    if (qp != nullptr) qp->intercepted_sends.push_back(s.wr);
  }
  for (auto& [vqpn, qp] : qps_) {
    MIGR_RETURN_IF_ERROR(flush_intercepted(qp));
  }
  return Status::ok();
}

}  // namespace migr::migrlib
