// Post-copy page pump: the userfaultfd + page-server analogue for post-copy
// live migration. After the controller commits and resumes the guest on the
// destination with part of its memory still on the source, the pump
//
//  * serves *demand faults*: any access to a missing page triggers the
//    AddressSpace fault hook, which fills the page immediately (the access
//    must complete this event) and issues a simulated one-sided RDMA READ to
//    the source so the fetch pays honest wire time — the request→reply RTT
//    is what lands in the fault-latency histogram;
//  * runs a *background prefetch stream*: batched page requests walk the
//    missing set in address order so cold pages arrive before the guest
//    trips on them;
//  * declares the migration fully drained once no page is missing and every
//    in-flight fetch has been answered — only then may the controller kill
//    the source process (it is the pager until that moment).
//
// Both directions ride the reliable ctrl plane (the paper's out-of-band
// channel); the source side charges the NIC ctrl-pressure cost of walking
// the pages, so post-copy's brownout shows up on the source too.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/fabric.hpp"
#include "obs/histogram.hpp"
#include "proc/process.hpp"
#include "rnic/device.hpp"
#include "sim/event_loop.hpp"

namespace migr::migrlib {

class TransferMux;

struct PostcopyConfig {
  std::uint32_t batch_pages = 32;  // pages per background prefetch request
  sim::DurationNs per_page_read = 250;  // source-side page walk per page
  // Stall watchdog: if no page arrives for this long while fetches are
  // outstanding, re-request; after max_retries stalls the drain fails.
  sim::DurationNs fetch_timeout = sim::msec(100);
  int max_fetch_retries = 5;
};

/// Drain outcome + accounting, embedded in MigrationReport.
struct PostcopyStats {
  bool enabled = false;
  std::uint64_t missing_pages = 0;     // pages left behind at switch-over
  std::uint64_t demand_faults = 0;     // pages pulled by guest access
  std::uint64_t prefetched_pages = 0;  // pages pulled by the background stream
  std::uint64_t fetch_requests = 0;    // ctrl-plane request messages
  std::uint64_t fetch_bytes = 0;       // page payload bytes received
  std::uint64_t retries = 0;           // watchdog re-requests
  sim::DurationNs drain_ns = 0;        // resume -> last page present
  std::int64_t fault_p50_ns = 0;       // demand-fault request->reply RTT
  std::int64_t fault_p99_ns = 0;
  std::int64_t fault_max_ns = 0;
  /// JSON object: {"missing_pages":..,...,"fault_ns":{"p50":..,...}}.
  std::string json() const;
};

class PostcopyPump {
 public:
  using DoneCb = std::function<void(const common::Status&)>;

  /// `mux` (optional, borrowed) carries the src→dest page-data direction
  /// over parallel transfer streams; requests stay on the plain ctrl plane
  /// (they are tiny). The pump re-points the mux's delivery callback to
  /// itself in arm() — by then the controller's transfers are done.
  PostcopyPump(sim::EventLoop& loop, net::Fabric& fabric, std::uint32_t guest,
               net::HostId src_host, net::HostId dest_host,
               proc::SimProcess& src_proc, proc::SimProcess& dest_proc,
               rnic::Device& src_dev, PostcopyConfig cfg = {},
               TransferMux* mux = nullptr);
  ~PostcopyPump();
  PostcopyPump(const PostcopyPump&) = delete;
  PostcopyPump& operator=(const PostcopyPump&) = delete;

  /// Mark `missing` pages absent on the destination, install the demand-
  /// fault hook, and register both ctrl services. Call after the final
  /// restore finished (addresses are the application's originals) and
  /// *before* resume — partner NIC DMA can fault pages in the gap.
  void arm(std::vector<proc::VirtAddr> missing);

  /// Start the background prefetch stream; `done` fires (possibly
  /// synchronously, if everything already faulted in) once the destination
  /// owns every page.
  void start(DoneCb done);

  bool drained() const noexcept { return drained_; }
  PostcopyStats stats() const;

 private:
  static constexpr std::uint8_t kPrefetch = 1;
  static constexpr std::uint8_t kFault = 2;

  void on_fault(proc::VirtAddr page);
  void on_request(common::Bytes&& payload);  // runs on the source host
  void on_data(common::Bytes&& payload);     // runs on the destination host
  void send_request(std::uint8_t kind, const std::vector<proc::VirtAddr>& pages);
  void request_next_batch();
  void on_watchdog();
  void maybe_finish();
  void finish(const common::Status& st);
  /// Copy one page's contents source -> destination physical pages, without
  /// going through write() (no dirty marks, no re-faults).
  void copy_page(proc::VirtAddr page);

  sim::EventLoop& loop_;
  net::Fabric& fabric_;
  std::uint32_t guest_ = 0;
  net::HostId src_host_ = 0;
  net::HostId dest_host_ = 0;
  proc::SimProcess& src_proc_;
  proc::SimProcess& dest_proc_;
  rnic::Device& src_dev_;
  PostcopyConfig cfg_;
  TransferMux* mux_ = nullptr;  // borrowed from the controller; may be null

  std::string req_service_;   // source-side: page requests land here
  std::string data_service_;  // destination-side: page data lands here

  std::vector<proc::VirtAddr> queue_;  // background fetch order (ascending)
  std::size_t queue_pos_ = 0;
  std::vector<proc::VirtAddr> batch_inflight_;  // outstanding prefetch batch
  std::map<proc::VirtAddr, sim::TimeNs> pending_faults_;  // page -> sent at

  DoneCb done_;
  bool started_ = false;
  bool drained_ = false;
  bool finish_scheduled_ = false;
  sim::TimeNs started_at_ = 0;
  sim::TimeNs drained_at_ = 0;
  sim::EventHandle watchdog_;
  std::uint64_t progress_ = 0;       // pages landed; watchdog stall detector
  std::uint64_t last_progress_ = 0;
  int stalls_ = 0;

  PostcopyStats st_;
  obs::Histogram fault_ns_{obs::Histogram::kDefaultExactCapacity};
};

}  // namespace migr::migrlib
