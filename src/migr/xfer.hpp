// Multifd-style parallel transfer mux (QEMU's multifd idiom): one logical
// payload is split into page-granular chunks round-robined over N fabric
// ctrl streams (`<base>.<k>`), each stream paced independently, with a
// per-chunk ack/timeout/retry loop and a destination-side reassembler that
// delivers only on full receipt. MigrationController::transfer_to_dest, the
// post-copy prefetch pump, and FtController's epoch sync all ride this layer
// when stream fan-out is enabled.
//
// Determinism: sharding is a pure function of (payload size, chunk_bytes,
// streams) — chunk i rides stream i % N — and pacing advances per-stream
// virtual clocks by exact transmit times, so seeded runs are byte-identical
// run to run regardless of stream count.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/fabric.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"

namespace migr::migrlib {

struct XferOptions {
  std::uint32_t streams = 1;
  /// Per-stream bandwidth ceiling. This is the whole point of multifd: one
  /// stream's processing pipeline cannot saturate the link, so the mux
  /// paces each stream at `stream_gbps` and aggregate throughput scales
  /// with the stream count (up to line rate). 0 = no pacing (line rate).
  double stream_gbps = 0.0;
  std::uint64_t chunk_bytes = 256 * 1024;
  sim::DurationNs chunk_timeout = sim::msec(5);
  int max_chunk_retries = 5;
  sim::DurationNs retry_backoff = sim::msec(1);
  /// Ceiling for the doubling retry backoff — a many-retry chunk on a lossy
  /// link must not back off past the transfer deadline.
  sim::DurationNs max_backoff = sim::msec(50);
  /// Critical-path interval sink (DESIGN.md §16): per-chunk wire/retry/
  /// pacing intervals are recorded here when the owner armed the recorder.
  /// Must outlive the mux; nullptr (or a disabled recorder) records nothing.
  obs::CpRecorder* cp = nullptr;
};

/// Per-stream wire accounting, in frame bytes (chunk payload + framing).
/// `attempted` includes re-sends; `lost()` is derived, so once the fabric
/// quiesces the balance attempted == delivered + lost holds exactly.
struct XferStreamStats {
  std::uint64_t chunks = 0;  // frames sent, including re-sends
  std::uint64_t bytes_attempted = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t retries = 0;

  std::uint64_t bytes_lost() const noexcept {
    return bytes_attempted - bytes_delivered;
  }
};

struct XferStats {
  std::vector<XferStreamStats> streams;
  std::uint64_t transfers = 0;  // payloads fully delivered

  std::uint64_t attempted() const noexcept {
    std::uint64_t v = 0;
    for (const auto& s : streams) v += s.bytes_attempted;
    return v;
  }
  std::uint64_t delivered() const noexcept {
    std::uint64_t v = 0;
    for (const auto& s : streams) v += s.bytes_delivered;
    return v;
  }
  std::uint64_t lost() const noexcept { return attempted() - delivered(); }
  std::uint64_t retries() const noexcept {
    std::uint64_t v = 0;
    for (const auto& s : streams) v += s.retries;
    return v;
  }
  std::uint64_t chunks() const noexcept {
    std::uint64_t v = 0;
    for (const auto& s : streams) v += s.chunks;
    return v;
  }
};

class TransferMux {
 public:
  using DeliverFn = std::function<void(common::Bytes&&)>;
  using FailFn = std::function<void(const common::Status&)>;

  /// Registers `<base>.<k>` data services on `dst` and `<base>.ack` on
  /// `src`. The services stay registered for the mux's lifetime — streams
  /// model long-lived connections, unlike the legacy per-transfer service.
  TransferMux(sim::EventLoop& loop, net::Fabric& fabric, std::string base,
              net::HostId src, net::HostId dst, XferOptions opts);
  ~TransferMux();

  TransferMux(const TransferMux&) = delete;
  TransferMux& operator=(const TransferMux&) = delete;

  /// (Re)point the delivery/failure callbacks. Callers hand the mux off
  /// between phases this way — e.g. the migration controller re-points
  /// delivery at the post-copy pump once the final transfer lands.
  void open(DeliverFn on_deliver, FailFn on_fail);

  /// Queue a payload. Transfers are strictly ordered: a payload starts only
  /// after the previous one is fully acked, so delivery order == send order.
  void send(common::Bytes payload);

  /// Drop in-flight transfer, rx state, and the queue. Stats survive (an
  /// aborted migration still reports what it attempted).
  void cancel();

  bool busy() const noexcept { return tx_active_ || !queue_.empty(); }
  const XferStats& stats() const noexcept { return stats_; }
  const XferOptions& options() const noexcept { return opts_; }

  /// Causal scope installed around every chunk/ack send, so flow events and
  /// responder spans parent-link to the owning workflow's span.
  void set_trace_context(obs::TraceContext ctx) noexcept { ctx_ = ctx; }

  /// Framing bytes added per chunk (seq + index + count + stream + length).
  static constexpr std::uint64_t kFrameOverhead = 8 + 4 + 4 + 4 + 4;

  /// Total wire bytes a clean (no-retry) transfer of `payload_bytes` costs.
  static std::uint64_t wire_size(std::uint64_t payload_bytes,
                                 std::uint64_t chunk_bytes);

 private:
  struct Chunk {
    std::uint32_t stream = 0;
    std::size_t off = 0;
    std::size_t len = 0;
    int attempts = 0;
    bool acked = false;
    sim::TimeNs sent_at = 0;
    sim::EventHandle timer;  // pending paced send or ack timeout
  };

  void start_transfer(common::Bytes payload);
  void schedule_send(std::uint32_t index, sim::DurationNs delay);
  void do_send(std::uint32_t index, std::uint64_t seq);
  void on_chunk_timeout(std::uint32_t index, std::uint64_t seq);
  void on_data(std::uint32_t stream, common::Bytes&& frame);
  void on_ack(common::Bytes&& frame);
  void finish_tx();
  void fail_transfer(common::Status st);
  void cancel_tx();

  sim::EventLoop& loop_;
  net::Fabric& fabric_;
  std::string base_;
  net::HostId src_;
  net::HostId dst_;
  XferOptions opts_;
  std::vector<std::string> data_services_;
  std::string ack_service_;
  obs::TraceContext ctx_;

  DeliverFn deliver_;
  FailFn fail_;

  // Sender side.
  bool tx_active_ = false;
  std::uint64_t tx_seq_ = 0;
  std::uint64_t next_seq_ = 0;
  common::Bytes tx_payload_;
  std::vector<Chunk> chunks_;
  std::uint32_t acked_count_ = 0;
  std::deque<common::Bytes> queue_;
  std::vector<sim::TimeNs> stream_free_at_;  // per-stream pacing clocks

  // Receiver side.
  bool rx_active_ = false;
  std::uint64_t rx_seq_ = 0;
  std::uint32_t rx_nchunks_ = 0;
  std::uint32_t rx_count_ = 0;
  std::vector<bool> rx_have_;
  std::vector<common::Bytes> rx_slices_;

  XferStats stats_;
};

}  // namespace migr::migrlib
