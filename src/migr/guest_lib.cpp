#include "migr/guest_lib.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "migr/staged_restore.hpp"

namespace migr::migrlib {

using common::Errc;
using common::Result;
using common::Status;

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

GuestContext::GuestContext(MigrRdmaRuntime& runtime, proc::SimProcess& proc, GuestId id,
                           GuestConfig config)
    : runtime_(&runtime), proc_(&proc), id_(id), config_(config) {
  auto ctx = runtime.device().open(proc);
  ctx_ = ctx.value();  // open() only fails on exhaustion, not modelled
  lkey_table_.resize(64, 0);
  runtime_->indirection().register_guest(this);
  // The wait-before-stop thread is spawned when the library is loaded into
  // the process (§3.4) and sleeps until the indirection layer signals it.
  // It must keep running once CRIU freezes the application's own threads,
  // hence a daemon.
  wbs_task_ = proc_->spawn_daemon(config_.wbs_poll_interval, [this] { wbs_tick(); });
}

GuestContext::~GuestContext() {
  wbs_task_.cancel();
  if (runtime_ != nullptr) runtime_->indirection().unregister_guest(this);
}

// ---------------------------------------------------------------------------
// Control path
// ---------------------------------------------------------------------------

Result<VHandle> GuestContext::alloc_pd() {
  MIGR_ASSIGN_OR_RETURN(auto ppd, ctx_->alloc_pd());
  const VHandle vpd = next_vhandle_++;
  pds_.emplace(vpd, PdRec{vpd});
  ppds_.emplace(vpd, ppd);
  return vpd;
}

Status GuestContext::dealloc_pd(VHandle vpd) {
  auto it = ppds_.find(vpd);
  if (it == ppds_.end()) return common::err(Errc::not_found, "no such vPD");
  MIGR_RETURN_IF_ERROR(ctx_->dealloc_pd(it->second));
  ppds_.erase(it);
  pds_.erase(vpd);
  return Status::ok();
}

Result<VMr> GuestContext::reg_mr(VHandle vpd, std::uint64_t addr, std::uint64_t length,
                                 std::uint32_t access) {
  auto it = ppds_.find(vpd);
  if (it == ppds_.end()) return common::err(Errc::not_found, "no such vPD");
  MIGR_ASSIGN_OR_RETURN(auto mr, ctx_->reg_mr(it->second, addr, length, access));
  // Dense virtual keys: the translation table stays an array (§3.3).
  const VLkey vlkey = next_vlkey_++;
  const VRkey vrkey = next_vrkey_++;
  if (vlkey >= lkey_table_.size()) lkey_table_.resize(vlkey * 2, 0);
  lkey_table_[vlkey] = mr.lkey;

  MrVirt mv;
  mv.rec = MrRec{vlkey, vrkey, vpd, addr, length, access};
  mv.plkey = mr.lkey;
  mv.prkey = mr.rkey;
  mv.live = true;
  mrs_.emplace(vlkey, std::move(mv));
  vrkey_to_vlkey_.emplace(vrkey, vlkey);
  return VMr{vlkey, vrkey, addr, length};
}

Status GuestContext::dereg_mr(VLkey vlkey) {
  auto it = mrs_.find(vlkey);
  if (it == mrs_.end()) return common::err(Errc::not_found, "no such vMR");
  if (it->second.live) MIGR_RETURN_IF_ERROR(ctx_->dereg_mr(it->second.plkey));
  lkey_table_[vlkey] = 0;
  vrkey_to_vlkey_.erase(it->second.rec.vrkey);
  // Deleting the record prunes the creation roadmap (§3.2: "MigrRDMA
  // deletes the corresponding resource creation log when destroyed").
  mrs_.erase(it);
  return Status::ok();
}

Result<VHandle> GuestContext::create_comp_channel() {
  MIGR_ASSIGN_OR_RETURN(auto pch, ctx_->create_comp_channel());
  const VHandle vch = next_vhandle_++;
  ChannelVirt cv;
  cv.rec = ChannelRec{vch};
  cv.pchannel = pch;
  channels_.emplace(vch, std::move(cv));
  return vch;
}

Result<VHandle> GuestContext::create_cq(std::uint32_t capacity, VHandle vchannel) {
  rnic::Handle pch = 0;
  if (vchannel != 0) {
    auto it = channels_.find(vchannel);
    if (it == channels_.end()) return common::err(Errc::not_found, "no such vChannel");
    pch = it->second.pchannel;
  }
  MIGR_ASSIGN_OR_RETURN(auto pcq, ctx_->create_cq(capacity, pch));
  const VHandle vcq = next_vhandle_++;
  CqVirt cv;
  cv.rec = CqRec{vcq, capacity, vchannel};
  cv.pcq = pcq;
  cqs_.emplace(vcq, std::move(cv));
  return vcq;
}

Result<VHandle> GuestContext::create_srq(VHandle vpd, std::uint32_t capacity) {
  auto it = ppds_.find(vpd);
  if (it == ppds_.end()) return common::err(Errc::not_found, "no such vPD");
  MIGR_ASSIGN_OR_RETURN(auto psrq, ctx_->create_srq(it->second, capacity));
  const VHandle vsrq = next_vhandle_++;
  SrqVirt sv;
  sv.rec = SrqRec{vsrq, vpd, capacity};
  sv.psrq = psrq;
  srqs_.emplace(vsrq, std::move(sv));
  return vsrq;
}

Status GuestContext::create_physical_qp(QpVirt& qp) {
  rnic::QpInitAttr attr;
  attr.type = qp.rec.type;
  auto pd_it = ppds_.find(qp.rec.vpd);
  auto scq_it = cqs_.find(qp.rec.vsend_cq);
  auto rcq_it = cqs_.find(qp.rec.vrecv_cq);
  if (pd_it == ppds_.end() || scq_it == cqs_.end() || rcq_it == cqs_.end()) {
    return common::err(Errc::not_found, "bad vPD/vCQ for QP");
  }
  attr.pd = pd_it->second;
  attr.send_cq = scq_it->second.pcq;
  attr.recv_cq = rcq_it->second.pcq;
  if (qp.rec.vsrq != 0) {
    auto srq_it = srqs_.find(qp.rec.vsrq);
    if (srq_it == srqs_.end()) return common::err(Errc::not_found, "no such vSRQ");
    attr.srq = srq_it->second.psrq;
  }
  attr.caps = qp.rec.caps;
  MIGR_ASSIGN_OR_RETURN(qp.pqpn, ctx_->create_qp(attr));
  return Status::ok();
}

Result<VQpn> GuestContext::create_qp(const GuestQpAttr& attr) {
  QpVirt qp;
  qp.rec.type = attr.type;
  qp.rec.vpd = attr.vpd;
  qp.rec.vsend_cq = attr.vsend_cq;
  qp.rec.vrecv_cq = attr.vrecv_cq;
  qp.rec.vsrq = attr.vsrq;
  qp.rec.caps = attr.caps;
  MIGR_RETURN_IF_ERROR(create_physical_qp(qp));
  // Virtual QPN == physical QPN at creation (§3.3); identity needs no
  // translation-table entry.
  const VQpn vqpn = qp.pqpn;
  qp.rec.vqpn = vqpn;
  // The driver's queue mapping for this QP is ordinary process memory; CRIU
  // restores it like any other VMA (and its count is why DumpOthers grows
  // with #QPs in Fig. 3).
  auto shadow = proc_->mem().mmap(config_.qp_shadow_bytes, "qp_shadow");
  if (shadow.is_ok()) qp_shadow_vmas_.emplace(vqpn, shadow.value());
  qps_.emplace(vqpn, std::move(qp));
  return vqpn;
}

Status GuestContext::destroy_qp(VQpn vqpn) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  MIGR_RETURN_IF_ERROR(ctx_->destroy_qp(qp->pqpn));
  runtime_->indirection().unmap_qpn(qp->pqpn);
  auto shadow = qp_shadow_vmas_.find(vqpn);
  if (shadow != qp_shadow_vmas_.end()) {
    (void)proc_->mem().munmap(shadow->second);
    qp_shadow_vmas_.erase(shadow);
  }
  qps_.erase(vqpn);
  return Status::ok();
}

Status GuestContext::connect_qp(VQpn vqpn, GuestId peer, VQpn peer_vqpn,
                                rnic::Psn my_psn, rnic::Psn peer_psn) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  const net::HostId peer_host = runtime_->directory().locate(peer);
  if (peer_host == 0) return common::err(Errc::unavailable, "peer not in directory");
  MIGR_ASSIGN_OR_RETURN(auto peer_pqpn, runtime_->fetch_pqpn(peer, peer_vqpn));

  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_init(qp->pqpn));
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_rtr(qp->pqpn, peer_host, peer_pqpn, peer_psn));
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_rts(qp->pqpn, my_psn));

  qp->rec.connected = true;
  qp->rec.dest_host = peer_host;
  qp->rec.dest_pqpn = peer_pqpn;
  qp->rec.dest_vqpn = peer_vqpn;
  qp->rec.peer_guest = peer;
  // Hybrid negotiation (§6): exclude virtualization for non-MigrRDMA peers.
  qp->rec.peer_is_migrrdma = runtime_->peer_supports_migrrdma(peer);
  return Status::ok();
}

Status GuestContext::connect_qp_raw(VQpn vqpn, net::HostId host, rnic::Qpn raw_pqpn,
                                    rnic::Psn my_psn, rnic::Psn peer_psn) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_init(qp->pqpn));
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_rtr(qp->pqpn, host, raw_pqpn, peer_psn));
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_rts(qp->pqpn, my_psn));
  qp->rec.connected = true;
  qp->rec.dest_host = host;
  qp->rec.dest_pqpn = raw_pqpn;
  qp->rec.dest_vqpn = raw_pqpn;
  qp->rec.peer_guest = 0;
  qp->rec.peer_is_migrrdma = false;
  return Status::ok();
}

Result<VRkey> GuestContext::bind_mw_alloc(VHandle vpd) {
  auto it = ppds_.find(vpd);
  if (it == ppds_.end()) return common::err(Errc::not_found, "no such vPD");
  MIGR_ASSIGN_OR_RETURN(auto pmw, ctx_->alloc_mw(it->second));
  const VHandle vmw = next_vhandle_++;
  MwVirt mv;
  mv.rec.vmw = vmw;
  mv.rec.vpd = vpd;
  mv.pmw = pmw;
  mws_.emplace(vmw, std::move(mv));
  return vmw;
}

Result<VRkey> GuestContext::bind_mw(VQpn vqpn, VHandle vmw, VLkey mr_vlkey,
                                    std::uint64_t addr, std::uint64_t length,
                                    std::uint32_t access, std::uint64_t wr_id) {
  QpVirt* qp = find_qp(vqpn);
  auto mw_it = mws_.find(vmw);
  auto mr_it = mrs_.find(mr_vlkey);
  if (qp == nullptr || mw_it == mws_.end() || mr_it == mrs_.end()) {
    return common::err(Errc::not_found, "bad vQP/vMW/vMR");
  }
  MIGR_ASSIGN_OR_RETURN(auto prkey, ctx_->bind_mw(qp->pqpn, mw_it->second.pmw,
                                                  mr_it->second.plkey, addr, length,
                                                  access, wr_id));
  MwVirt& mw = mw_it->second;
  if (mw.rec.bound) vrkey_to_vmw_.erase(mw.rec.vrkey);
  mw.prkey = prkey;
  mw.rec.bound = true;
  mw.rec.vrkey = next_vrkey_++;
  mw.rec.mr_vlkey = mr_vlkey;
  mw.rec.bind_vqpn = vqpn;
  mw.rec.addr = addr;
  mw.rec.length = length;
  mw.rec.access = access;
  vrkey_to_vmw_.emplace(mw.rec.vrkey, vmw);
  return mw.rec.vrkey;
}

Result<rnic::DeviceMemory> GuestContext::alloc_dm(std::uint64_t length) {
  MIGR_ASSIGN_OR_RETURN(auto dm, ctx_->alloc_dm(length));
  DmVirt dv;
  dv.rec = DmRec{next_vhandle_++, dm.length, dm.mapped_at};
  dv.pdm = dm.handle;
  dms_.emplace(dv.rec.vdm, dv);
  return dm;
}

Result<rnic::Rkey> GuestContext::real_rkey(VRkey vrkey) const {
  auto it = vrkey_to_vlkey_.find(vrkey);
  if (it != vrkey_to_vlkey_.end()) return mrs_.at(it->second).prkey;
  auto mw_it = vrkey_to_vmw_.find(vrkey);
  if (mw_it != vrkey_to_vmw_.end()) return mws_.at(mw_it->second).prkey;
  return common::err(Errc::not_found, "no such vRkey");
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

GuestContext::QpVirt* GuestContext::find_qp(VQpn vqpn) {
  auto it = qps_.find(vqpn);
  return it == qps_.end() ? nullptr : &it->second;
}
const GuestContext::QpVirt* GuestContext::find_qp(VQpn vqpn) const {
  auto it = qps_.find(vqpn);
  return it == qps_.end() ? nullptr : &it->second;
}

Status GuestContext::translate_sges(std::span<rnic::Sge> sge) {
  for (auto& s : sge) {
    // THE fast path: dense virtual lkey -> array-indexed physical lkey.
    if (s.lkey >= lkey_table_.size() || lkey_table_[s.lkey] == 0) {
      return common::err(Errc::permission_denied, "bad virtual lkey");
    }
    s.lkey = lkey_table_[s.lkey];
  }
  return Status::ok();
}

Status GuestContext::translate_send_wr(QpVirt& qp, rnic::SendWr& wr) {
  MIGR_RETURN_IF_ERROR(translate_sges(wr.sge));
  if (rnic::is_one_sided(wr.opcode) && qp.rec.peer_is_migrrdma) {
    // rkey: virtual -> physical via the fetch-on-first-use cache (§3.3),
    // fronted by a per-QP MRU entry.
    if (wr.rkey == qp.mru_vrkey && qp.mru_prkey != 0) {
      runtime_->stats().rkey_cache_hits++;
      wr.rkey = qp.mru_prkey;
    } else {
      const PeerKey key{qp.rec.peer_guest, wr.rkey};
      auto it = rkey_cache_.find(key);
      rnic::Rkey prkey;
      if (it != rkey_cache_.end()) {
        runtime_->stats().rkey_cache_hits++;
        prkey = it->second;
      } else {
        MIGR_ASSIGN_OR_RETURN(prkey, runtime_->fetch_rkey(key.peer, key.vkey));
        rkey_cache_.emplace(key, prkey);
      }
      qp.mru_vrkey = wr.rkey;
      qp.mru_prkey = prkey;
      wr.rkey = prkey;
    }
  }
  if (qp.rec.type == rnic::QpType::ud) {
    // UD addressing is virtual: remote_host carries the peer's GuestId and
    // remote_qpn its virtual QPN; resolve both (§3.3 case 2: translation on
    // every request, served by the local cache).
    const GuestId peer = wr.remote_host;
    const PeerKey key{peer, wr.remote_qpn};
    auto it = remote_qpn_cache_.find(key);
    rnic::Qpn pqpn;
    if (it != remote_qpn_cache_.end()) {
      pqpn = it->second;
    } else {
      MIGR_ASSIGN_OR_RETURN(pqpn, runtime_->fetch_pqpn(peer, wr.remote_qpn));
      remote_qpn_cache_.emplace(key, pqpn);
    }
    wr.remote_qpn = pqpn;
    wr.remote_host = runtime_->directory().locate(peer);
  }
  return Status::ok();
}

Status GuestContext::post_send(VQpn vqpn, rnic::SendWr wr) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  if (qp->suspended) {
    // Intercept and pretend the WR hit the wire (§3.4): the application
    // keeps its asynchronous view and just sees completions arrive later.
    qp->intercepted_sends.push_back(std::move(wr));
    return Status::ok();
  }
  MIGR_RETURN_IF_ERROR(translate_send_wr(*qp, wr));
  return ctx_->post_send(qp->pqpn, std::move(wr));
}

Status GuestContext::post_recv(VQpn vqpn, rnic::RecvWr wr) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  if (qp->suspended) {
    qp->intercepted_recvs.push_back(std::move(wr));
    return Status::ok();
  }
  MIGR_RETURN_IF_ERROR(translate_sges(wr.sge));
  return ctx_->post_recv(qp->pqpn, std::move(wr));
}

Status GuestContext::post_srq_recv(VHandle vsrq, rnic::RecvWr wr) {
  auto it = srqs_.find(vsrq);
  if (it == srqs_.end()) return common::err(Errc::not_found, "no such vSRQ");
  if (suspend_active_) {
    it->second.intercepted_recvs.push_back(std::move(wr));
    return Status::ok();
  }
  MIGR_RETURN_IF_ERROR(translate_sges(wr.sge));
  return ctx_->post_srq_recv(it->second.psrq, std::move(wr));
}

int GuestContext::poll_cq(VHandle vcq, std::span<rnic::Cqe> out) {
  auto it = cqs_.find(vcq);
  if (it == cqs_.end()) return -1;
  CqVirt& cq = it->second;
  int n = 0;
  // Fake CQ first (§3.4): entries parked by the WBS thread or carried over
  // from before migration, already in virtual ID space.
  while (n < static_cast<int>(out.size()) && !cq.fake.empty()) {
    out[n++] = cq.fake.front();
    cq.fake.pop_front();
  }
  if (n > 0) return n;
  if (suspend_active_) return 0;  // the WBS thread owns the real CQ now
  n = ctx_->poll_cq(cq.pcq, out);
  for (int i = 0; i < n; ++i) {
    // Physical -> virtual QPN via the indirection layer's shared array.
    out[i].qpn = runtime_->indirection().translate_qpn(out[i].qpn);
  }
  return n;
}

Status GuestContext::req_notify_cq(VHandle vcq) {
  auto it = cqs_.find(vcq);
  if (it == cqs_.end()) return common::err(Errc::not_found, "no such vCQ");
  return ctx_->req_notify_cq(it->second.pcq);
}

std::optional<VHandle> GuestContext::get_cq_event(VHandle vchannel) {
  auto it = channels_.find(vchannel);
  if (it == channels_.end()) return std::nullopt;
  auto pcq = ctx_->get_cq_event(it->second.pchannel);
  if (!pcq.has_value()) return std::nullopt;
  // Track unfinished events: a delivered-but-unacked event blocks WBS
  // termination (§3.4 "consistency of CQ events").
  it->second.unfinished_events++;
  for (auto& [vcq, cq] : cqs_) {
    if (cq.pcq == *pcq) return vcq;
  }
  return std::nullopt;
}

void GuestContext::ack_cq_events(VHandle vchannel, std::uint32_t n) {
  auto it = channels_.find(vchannel);
  if (it == channels_.end()) return;
  ctx_->ack_cq_events(it->second.pchannel, n);
  it->second.unfinished_events -= std::min<std::uint64_t>(n, it->second.unfinished_events);
}

// ---------------------------------------------------------------------------
// Suspension & wait-before-stop (§3.4)
// ---------------------------------------------------------------------------

void GuestContext::suspend(const SuspendScope& scope) {
  bool any = false;
  for (auto& [vqpn, qp] : qps_) {
    if (scope.all || (qp.rec.connected && qp.rec.peer_guest == scope.migrating_peer)) {
      qp.suspended = true;
      qp.drained = false;
      any = true;
    }
  }
  suspend_active_ = true;
  wbs_done_ = !any;  // nothing to wait for
  wbs_counts_sent_ = false;
  if (wbs_done_ && wbs_done_cb_) wbs_done_cb_();
}

void GuestContext::deliver_peer_n_sent(VQpn vqpn, std::uint64_t peer_n_sent) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return;
  qp->peer_n_sent = peer_n_sent;
  qp->peer_count_received = true;
}

void GuestContext::drain_real_cqs() {
  std::vector<rnic::Cqe> batch(config_.cq_drain_batch);
  for (auto& [vcq, cq] : cqs_) {
    for (;;) {
      const int n = ctx_->poll_cq(cq.pcq, batch);
      if (n <= 0) break;
      for (int i = 0; i < n; ++i) {
        rnic::Cqe cqe = batch[i];
        cqe.qpn = runtime_->indirection().translate_qpn(cqe.qpn);
        cq.fake.push_back(cqe);
      }
      if (n < static_cast<int>(batch.size())) break;
    }
  }
}

void GuestContext::wbs_tick() {
  if (!suspend_active_) {
    // Post-restore duty: keep draining intercepted backlogs that exceeded
    // the queue capacity at flush time.
    if (pending_flush_) drain_pending_flush();
    return;
  }
  if (wbs_done_) return;

  // One-shot n_sent exchange with the peers of the suspended QPs.
  if (!wbs_counts_sent_) {
    wbs_counts_sent_ = true;
    for (auto& [vqpn, qp] : qps_) {
      if (!qp.suspended || !qp.rec.connected || !qp.rec.peer_is_migrrdma) continue;
      const rnic::Qp* real = ctx_->find_qp(qp.pqpn);
      const std::uint64_t n_sent = qp.n_sent_base + (real ? real->n_sent : 0);
      MigrRdmaRuntime* peer_rt = runtime_->directory().runtime_of(qp.rec.peer_guest);
      GuestContext* peer = peer_rt ? peer_rt->find_guest(qp.rec.peer_guest) : nullptr;
      if (peer != nullptr) peer->deliver_peer_n_sent(qp.rec.dest_vqpn, n_sent);
    }
  }

  // Keep consuming completions on behalf of the application.
  drain_real_cqs();
  check_wbs_termination();
}

void GuestContext::check_wbs_termination() {
  bool all_drained = true;
  for (auto& [vqpn, qp] : qps_) {
    if (!qp.suspended || qp.drained) continue;
    const rnic::Qp* real = ctx_->find_qp(qp.pqpn);
    if (real == nullptr) {
      qp.drained = true;
      continue;
    }
    // Send side: the SQ window (head..tail) is exactly the inflight WRs.
    const bool sends_done = real->sq.empty();
    // Receive side: done iff the peer's posted two-sided count matches our
    // completed-receive count (§3.4). Unconnected / UD / non-MigrRDMA QPs
    // have no peer protocol; their receive side is considered drained.
    bool recvs_done = true;
    if (qp.rec.connected && qp.rec.peer_is_migrrdma && qp.rec.type == rnic::QpType::rc) {
      if (!qp.peer_count_received) {
        recvs_done = false;
      } else {
        const std::uint64_t n_recv = qp.n_recv_base + real->n_recv;
        recvs_done = n_recv >= qp.peer_n_sent;
      }
    }
    if (sends_done && recvs_done) {
      qp.drained = true;
    } else {
      all_drained = false;
    }
  }
  if (!all_drained) return;
  // The absence of unfinished CQ events is a further necessary condition.
  for (auto& [vch, ch] : channels_) {
    if (ch.unfinished_events != 0) return;
  }
  wbs_done_ = true;
  if (wbs_done_cb_) wbs_done_cb_();
}

void GuestContext::force_wbs_timeout() {
  if (!suspend_active_ || wbs_done_) return;
  // Buggy network (§3.4): give up waiting. WRs posted to the NIC but not
  // completed are harvested from the (memory-mapped) queue buffers and will
  // be replayed before the intercepted WRs after restoration.
  std::unordered_map<rnic::Lkey, VLkey> rev;
  for (const auto& [vlkey, mr] : mrs_) rev.emplace(mr.plkey, vlkey);

  for (auto& [vqpn, qp] : qps_) {
    if (!qp.suspended || qp.drained) continue;
    const rnic::Qp* real = ctx_->find_qp(qp.pqpn);
    if (real != nullptr) {
      for (std::size_t i = 0; i < real->sq.size(); ++i) {
        rnic::SendWr wr = real->sq.at(i).wr;  // physical-space copy
        for (auto& s : wr.sge) {
          auto it = rev.find(s.lkey);
          if (it != rev.end()) s.lkey = it->second;
        }
        if (rnic::is_one_sided(wr.opcode) && qp.rec.peer_is_migrrdma) {
          for (const auto& [key, prkey] : rkey_cache_) {
            if (prkey == wr.rkey && key.peer == qp.rec.peer_guest) {
              wr.rkey = key.vkey;
              break;
            }
          }
        }
        qp.timeout_replays.push_back(std::move(wr));
      }
    }
    qp.drained = true;
  }
  drain_real_cqs();
  wbs_done_ = true;
  if (wbs_done_cb_) wbs_done_cb_();
}

Status GuestContext::abort_suspension() {
  if (!suspend_active_) return Status::ok();
  Status first = Status::ok();
  for (auto& [vqpn, qp] : qps_) {
    if (!qp.suspended) continue;
    qp.suspended = false;
    qp.drained = false;
    qp.peer_n_sent = kNoPeerCount;
    qp.peer_count_received = false;
    // A WBS timeout may have harvested copies of WRs that are still posted
    // on this (live) QP; replaying them here would double-post.
    qp.timeout_replays.clear();
    if (auto st = flush_intercepted(qp); !st.is_ok() && first.is_ok()) first = st;
  }
  suspend_active_ = false;
  wbs_done_ = false;
  wbs_counts_sent_ = false;
  return first;
}

// ---------------------------------------------------------------------------
// Partner-side protocol
// ---------------------------------------------------------------------------

std::vector<GuestId> GuestContext::connected_peers() const {
  std::vector<GuestId> out;
  for (const auto& [vqpn, qp] : qps_) {
    if (qp.rec.connected && qp.rec.peer_is_migrrdma && qp.rec.peer_guest != 0 &&
        std::find(out.begin(), out.end(), qp.rec.peer_guest) == out.end()) {
      out.push_back(qp.rec.peer_guest);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool GuestContext::has_raw_peer() const {
  for (const auto& [vqpn, qp] : qps_) {
    if (qp.rec.connected && !qp.rec.peer_is_migrrdma) return true;
  }
  return false;
}

std::vector<VQpn> GuestContext::qps_to_peer(GuestId peer) const {
  std::vector<VQpn> out;
  for (const auto& [vqpn, qp] : qps_) {
    if (qp.rec.connected && qp.rec.peer_guest == peer) out.push_back(vqpn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<rnic::Qpn> GuestContext::partner_prepare_qp(VQpn vqpn) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  if (qp->new_pqpn != 0) return qp->new_pqpn;  // idempotent
  // The replacement QP shares the old QP's CQ (applications poll one CQ for
  // many QPs — moving to a fresh CQ would break transparency, §3.2), plus
  // the same PD/SRQ.
  QpVirt replacement;
  replacement.rec = qp->rec;
  MIGR_RETURN_IF_ERROR(create_physical_qp(replacement));
  qp->new_pqpn = replacement.pqpn;
  return qp->new_pqpn;
}

Status GuestContext::partner_connect_qp(VQpn vqpn, net::HostId dest_host,
                                        rnic::Qpn dest_pqpn, rnic::Psn my_psn,
                                        rnic::Psn dest_psn) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  if (qp->new_pqpn == 0) return common::err(Errc::failed_precondition, "prepare first");
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_init(qp->new_pqpn));
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_rtr(qp->new_pqpn, dest_host, dest_pqpn, dest_psn));
  MIGR_RETURN_IF_ERROR(ctx_->modify_qp_rts(qp->new_pqpn, my_psn));
  qp->pending_dest_pqpn = dest_pqpn;
  qp->pending_dest_host = dest_host;
  return Status::ok();
}

void GuestContext::partner_abort_prepared(GuestId peer) {
  for (auto& [vqpn, qp] : qps_) {
    if (qp.rec.peer_guest != peer || qp.new_pqpn == 0) continue;
    (void)ctx_->destroy_qp(qp.new_pqpn);
    qp.new_pqpn = 0;
    qp.pending_dest_pqpn = 0;
    qp.pending_dest_host = 0;
  }
}

Status GuestContext::partner_switch_qp(VQpn vqpn, GuestId peer_new_identity) {
  QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  if (qp->new_pqpn == 0) return common::err(Errc::failed_precondition, "prepare first");

  // §3.3: "right before Step 7, the partner translates the original
  // physical QPN to the virtual QPN and maps the virtual QPN to the new QP".
  runtime_->indirection().unmap_qpn(qp->pqpn);
  qp->old_pqpn = qp->pqpn;
  qp->pqpn = qp->new_pqpn;
  qp->new_pqpn = 0;
  runtime_->indirection().map_qpn(qp->pqpn, vqpn);

  // Carry the "since creation" counters over from the old QP.
  if (const rnic::Qp* old_real = ctx_->find_qp(qp->old_pqpn)) {
    qp->n_sent_base += old_real->n_sent;
    qp->n_recv_base += old_real->n_recv;
  }

  qp->rec.dest_pqpn = qp->pending_dest_pqpn;
  qp->rec.dest_host = qp->pending_dest_host;
  qp->rec.peer_guest = peer_new_identity;

  // Replay RECVs that were posted on the old QP but never matched (§3.4),
  // then the RECVs and sends intercepted during suspension.
  MIGR_RETURN_IF_ERROR(replay_recv_shadows(*qp));

  // All completions of the old QP were parked in fake CQs by WBS; the old
  // QP can go, along with its translation entries.
  (void)ctx_->destroy_qp(qp->old_pqpn);
  runtime_->indirection().unmap_qpn(qp->old_pqpn);
  qp->old_pqpn = 0;

  invalidate_peer_cache(peer_new_identity);

  qp->suspended = false;
  MIGR_RETURN_IF_ERROR(flush_intercepted(*qp));
  // Leave suspend_active_ set until every transitioning QP has switched.
  bool any_suspended = false;
  for (auto& [v, q] : qps_) {
    if (q.suspended) any_suspended = true;
  }
  if (!any_suspended) {
    suspend_active_ = false;
    wbs_done_ = false;
  }
  return Status::ok();
}

void GuestContext::invalidate_peer_cache(GuestId peer) {
  std::erase_if(rkey_cache_, [peer](const auto& kv) { return kv.first.peer == peer; });
  std::erase_if(remote_qpn_cache_, [peer](const auto& kv) { return kv.first.peer == peer; });
  for (auto& [vqpn, qp] : qps_) {
    if (qp.rec.peer_guest == peer) {
      qp.mru_vrkey = 0;
      qp.mru_prkey = 0;
    }
  }
}

void GuestContext::update_peer_location(GuestId peer, net::HostId new_host) {
  for (auto& [vqpn, qp] : qps_) {
    if (qp.rec.connected && qp.rec.peer_guest == peer) qp.rec.dest_host = new_host;
  }
}

Status GuestContext::replay_recv_shadows(QpVirt& qp) {
  // Un-received RECVs sit in the old QP's (memory-mapped) RQ; read them
  // back, un-translate the lkeys, and repost on the current QP.
  const rnic::Qp* old_real = ctx_->find_qp(qp.old_pqpn != 0 ? qp.old_pqpn : qp.pqpn);
  if (old_real == nullptr) return Status::ok();
  std::unordered_map<rnic::Lkey, VLkey> rev;
  for (const auto& [vlkey, mr] : mrs_) rev.emplace(mr.plkey, vlkey);
  for (std::size_t i = 0; i < old_real->rq.size(); ++i) {
    rnic::RecvWr wr = old_real->rq.at(i);
    for (auto& s : wr.sge) {
      auto it = rev.find(s.lkey);
      if (it != rev.end()) s.lkey = it->second;
    }
    MIGR_RETURN_IF_ERROR(translate_sges(wr.sge));
    MIGR_RETURN_IF_ERROR(ctx_->post_recv(qp.pqpn, std::move(wr)));
  }
  return Status::ok();
}

Status GuestContext::flush_intercepted(QpVirt& qp) {
  // The intercepted backlog can exceed the queue capacity (the application
  // kept posting through the whole suspension). Post what fits; the WBS
  // thread keeps draining the remainder as completions free slots.
  auto post_send_bounded = [&](std::deque<rnic::SendWr>& q) -> Status {
    while (!q.empty()) {
      rnic::SendWr wr = q.front();
      MIGR_RETURN_IF_ERROR(translate_send_wr(qp, wr));
      const auto st = ctx_->post_send(qp.pqpn, std::move(wr));
      if (st.code() == Errc::resource_exhausted) {
        pending_flush_ = true;
        return Status::ok();  // retry from the WBS thread
      }
      MIGR_RETURN_IF_ERROR(st);
      q.pop_front();
    }
    return Status::ok();
  };
  // Timeout-harvested WRs replay first (§3.4 "buggy network situations").
  MIGR_RETURN_IF_ERROR(post_send_bounded(qp.timeout_replays));
  while (!qp.intercepted_recvs.empty()) {
    rnic::RecvWr wr = qp.intercepted_recvs.front();
    MIGR_RETURN_IF_ERROR(translate_sges(wr.sge));
    const auto st = ctx_->post_recv(qp.pqpn, std::move(wr));
    if (st.code() == Errc::resource_exhausted) {
      pending_flush_ = true;
      return Status::ok();
    }
    MIGR_RETURN_IF_ERROR(st);
    qp.intercepted_recvs.pop_front();
  }
  if (!qp.timeout_replays.empty()) return Status::ok();  // keep ordering
  MIGR_RETURN_IF_ERROR(post_send_bounded(qp.intercepted_sends));
  return Status::ok();
}

void GuestContext::drain_pending_flush() {
  bool remaining = false;
  for (auto& [vqpn, qp] : qps_) {
    if (qp.suspended) continue;
    if (qp.timeout_replays.empty() && qp.intercepted_sends.empty() &&
        qp.intercepted_recvs.empty()) {
      continue;
    }
    (void)flush_intercepted(qp);
    if (!qp.timeout_replays.empty() || !qp.intercepted_sends.empty() ||
        !qp.intercepted_recvs.empty()) {
      remaining = true;
    }
  }
  pending_flush_ = remaining;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

Result<rnic::Qpn> GuestContext::physical_qpn(VQpn vqpn) const {
  const QpVirt* qp = find_qp(vqpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such vQP");
  return qp->pqpn;
}

Result<rnic::Qpn> GuestContext::current_pqpn_for_peer_fetch(VQpn vqpn) const {
  return physical_qpn(vqpn);
}

Result<rnic::Rkey> GuestContext::current_prkey(VRkey vrkey) const { return real_rkey(vrkey); }

const std::vector<VQpn> GuestContext::all_vqpns() const {
  std::vector<VQpn> out;
  out.reserve(qps_.size());
  for (const auto& [vqpn, qp] : qps_) out.push_back(vqpn);
  std::sort(out.begin(), out.end());
  return out;
}

bool GuestContext::qp_suspended(VQpn vqpn) const {
  const QpVirt* qp = find_qp(vqpn);
  return qp != nullptr && qp->suspended;
}

std::uint64_t GuestContext::total_retransmits() const {
  std::uint64_t total = 0;
  if (ctx_ == nullptr) return 0;
  for (const auto& [vqpn, qp] : qps_) {
    if (const rnic::Qp* pqp = ctx_->find_qp(qp.pqpn)) total += pqp->retransmits;
  }
  return total;
}

std::size_t GuestContext::fake_cq_depth(VHandle vcq) const {
  auto it = cqs_.find(vcq);
  return it == cqs_.end() ? 0 : it->second.fake.size();
}

}  // namespace migr::migrlib
