#include "migr/plugin.hpp"

#include "common/log.hpp"

namespace migr::migrlib {

using common::Errc;
using common::Status;

common::Bytes Plugin::pre_dump(GuestContext& guest) {
  RdmaImage img = guest.dump(/*final=*/false);
  cost_ += costs_.dump_cost(img);
  predump_image_ = img;
  return img.serialize();
}

common::Bytes Plugin::final_dump(GuestContext& guest) {
  RdmaImage img = guest.dump(/*final=*/true);
  cost_ += costs_.dump_cost(img);
  return img.serialize();
}

std::set<proc::VirtAddr> Plugin::pinned_vma_starts(const criu::MemoryImage& mem,
                                                   const RdmaImage& rdma) {
  std::vector<std::pair<proc::VirtAddr, std::uint64_t>> ranges;
  for (const auto& mr : rdma.mrs) ranges.emplace_back(mr.addr, mr.length);
  for (const auto& dm : rdma.dms) ranges.emplace_back(dm.mapped_at, dm.length);
  std::set<proc::VirtAddr> pinned;
  for (const auto& vma : mem.vmas) {
    // The driver's queue mappings are identified by their VMA tag; MR and
    // on-chip memory ranges come from the RDMA image.
    if (vma.tag == "qp_shadow" || vma.tag == "rnic_dm") {
      pinned.insert(vma.start);
      continue;
    }
    for (const auto& [addr, len] : ranges) {
      if (addr < vma.start + vma.length && addr + len > vma.start) {
        pinned.insert(vma.start);
        break;
      }
    }
  }
  return pinned;
}

Status Plugin::premap(const common::Bytes& predump_bytes, MigrRdmaRuntime& dest_rt,
                      proc::SimProcess& dest_proc) {
  auto parsed = RdmaImage::parse(predump_bytes);
  if (!parsed.is_ok()) return parsed.status();
  predump_image_ = std::move(parsed).value();
  MIGR_RETURN_IF_ERROR(staged_.premap(predump_image_, dest_rt, dest_proc));
  cost_ += staged_.take_ctrl_cost();
  premapped_ = true;
  return Status::ok();
}

Status Plugin::pre_setup(const common::Bytes& predump_bytes, MigrRdmaRuntime& dest_rt,
                         proc::SimProcess& dest_proc) {
  if (!premapped_) {
    MIGR_RETURN_IF_ERROR(premap(predump_bytes, dest_rt, dest_proc));
  }
  MIGR_RETURN_IF_ERROR(staged_.build(predump_image_));
  cost_ += staged_.take_ctrl_cost();
  return Status::ok();
}

Status Plugin::full_restore(GuestContext& guest, const common::Bytes& final_bytes,
                            MigrRdmaRuntime& dest_rt) {
  (void)dest_rt;
  auto parsed = RdmaImage::parse(final_bytes);
  if (!parsed.is_ok()) return parsed.status();
  MIGR_RETURN_IF_ERROR(guest.adopt_staged(std::move(staged_)));
  MIGR_RETURN_IF_ERROR(guest.finalize_restore(parsed.value()));
  cost_ += guest.raw().take_ctrl_cost();
  return Status::ok();
}

}  // namespace migr::migrlib
