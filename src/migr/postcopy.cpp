#include "migr/postcopy.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <span>

#include "common/log.hpp"
#include "migr/xfer.hpp"
#include "obs/metrics.hpp"

namespace migr::migrlib {

using common::ByteReader;
using common::Bytes;
using common::ByteWriter;
using common::Errc;
using common::Status;

std::string PostcopyStats::json() const {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "{\"missing_pages\":%" PRIu64 ",\"demand_faults\":%" PRIu64
                ",\"prefetched_pages\":%" PRIu64 ",\"fetch_requests\":%" PRIu64
                ",\"fetch_bytes\":%" PRIu64 ",\"retries\":%" PRIu64
                ",\"drain_ns\":%" PRId64
                ",\"fault_ns\":{\"p50\":%" PRId64 ",\"p99\":%" PRId64
                ",\"max\":%" PRId64 "}}",
                missing_pages, demand_faults, prefetched_pages, fetch_requests,
                fetch_bytes, retries, drain_ns, fault_p50_ns, fault_p99_ns,
                fault_max_ns);
  return buf;
}

PostcopyPump::PostcopyPump(sim::EventLoop& loop, net::Fabric& fabric, std::uint32_t guest,
                           net::HostId src_host, net::HostId dest_host,
                           proc::SimProcess& src_proc, proc::SimProcess& dest_proc,
                           rnic::Device& src_dev, PostcopyConfig cfg,
                           TransferMux* mux)
    : loop_(loop), fabric_(fabric), guest_(guest), src_host_(src_host),
      dest_host_(dest_host), src_proc_(src_proc), dest_proc_(dest_proc),
      src_dev_(src_dev), cfg_(cfg), mux_(mux),
      req_service_("migr.pcp.req." + std::to_string(guest)),
      data_service_("migr.pcp.data." + std::to_string(guest)) {}

PostcopyPump::~PostcopyPump() {
  watchdog_.cancel();
  fabric_.unregister_service(src_host_, req_service_);
  fabric_.unregister_service(dest_host_, data_service_);
  dest_proc_.mem().set_fault_hook(nullptr);
}

void PostcopyPump::arm(std::vector<proc::VirtAddr> missing) {
  queue_ = std::move(missing);
  st_.missing_pages = queue_.size();
  auto& mem = dest_proc_.mem();
  for (proc::VirtAddr p : queue_) mem.mark_missing(p);
  mem.set_fault_hook([this](proc::VirtAddr page) { on_fault(page); });
  fabric_.register_service(src_host_, req_service_, [this](net::HostId, Bytes&& p) {
    on_request(std::move(p));
  });
  if (mux_ != nullptr) {
    // Page data rides the controller's parallel streams; a mux-level failure
    // is not fatal here — the stall watchdog owns drain failure.
    mux_->open([this](Bytes&& p) { on_data(std::move(p)); },
               [this](const common::Status& st) {
                 MIGR_WARN() << "postcopy mux transfer failed for guest " << guest_
                             << ": " << st.to_string();
               });
  } else {
    fabric_.register_service(dest_host_, data_service_, [this](net::HostId, Bytes&& p) {
      on_data(std::move(p));
    });
  }
}

void PostcopyPump::start(DoneCb done) {
  done_ = std::move(done);
  started_ = true;
  started_at_ = loop_.now();
  if (cfg_.fetch_timeout > 0) {
    watchdog_ = loop_.schedule_every(cfg_.fetch_timeout, [this] { on_watchdog(); });
  }
  request_next_batch();
  maybe_finish();
}

void PostcopyPump::on_fault(proc::VirtAddr page) {
  // The guest's access completes within this event, so fill the page right
  // here from the (frozen, authoritative) source copy — then put the READ
  // on the wire so the fetch costs honest egress/propagation time. The RTT
  // of that request->reply pair is the recorded fault latency; the drain is
  // not complete until the reply lands.
  copy_page(page);
  st_.demand_faults++;
  progress_++;
  pending_faults_.emplace(page, loop_.now());
  send_request(kFault, {page});
  obs::Registry::global().counter("migr.postcopy.demand_faults").inc();
}

void PostcopyPump::send_request(std::uint8_t kind, const std::vector<proc::VirtAddr>& pages) {
  ByteWriter w;
  w.u8(kind);
  w.u32(static_cast<std::uint32_t>(pages.size()));
  for (proc::VirtAddr p : pages) w.u64(p);
  st_.fetch_requests++;
  auto sent = fabric_.send_ctrl(dest_host_, src_host_, req_service_, std::move(w).take());
  if (!sent.is_ok()) {
    MIGR_WARN() << "postcopy page request send failed: " << sent.status().to_string();
  }
}

void PostcopyPump::on_request(Bytes&& payload) {
  ByteReader r{payload};
  auto kind = r.u8();
  auto count = r.u32();
  if (!kind.is_ok() || !count.is_ok()) return;
  // The source-side page server walks frozen process memory: ctrl pressure
  // on the source NIC, like the dump walks during pre-copy.
  src_dev_.add_ctrl_pressure(cfg_.per_page_read *
                             static_cast<sim::DurationNs>(count.value()));
  ByteWriter w;
  w.u8(kind.value());
  w.u32(count.value());
  for (std::uint32_t i = 0; i < count.value(); i++) {
    auto addr = r.u64();
    if (!addr.is_ok()) return;
    w.u64(addr.value());
    auto phys = src_proc_.mem().page_at(addr.value());
    static const std::array<std::uint8_t, proc::kPageSize> kZeros{};
    w.bytes(phys ? std::span<const std::uint8_t>{phys->data}
                 : std::span<const std::uint8_t>{kZeros});
  }
  if (mux_ != nullptr) {
    mux_->send(std::move(w).take());
    return;
  }
  auto sent = fabric_.send_ctrl(src_host_, dest_host_, data_service_, std::move(w).take());
  if (!sent.is_ok()) {
    MIGR_WARN() << "postcopy page reply send failed: " << sent.status().to_string();
  }
}

void PostcopyPump::on_data(Bytes&& payload) {
  st_.fetch_bytes += payload.size();
  ByteReader r{payload};
  auto kind = r.u8();
  auto count = r.u32();
  if (!kind.is_ok() || !count.is_ok()) return;
  auto& mem = dest_proc_.mem();
  auto& reg = obs::Registry::global();
  const sim::TimeNs now = loop_.now();
  for (std::uint32_t i = 0; i < count.value(); i++) {
    auto addr = r.u64();
    auto data = r.bytes();
    if (!addr.is_ok() || !data.is_ok()) break;
    const proc::VirtAddr page = addr.value();
    if (mem.clear_missing(page)) {
      // Still missing: this delivery owns the page. Install the contents
      // directly (no write(): the fill is not guest dirtying).
      auto phys = mem.page_at(page);
      if (phys && data.value().size() == phys->data.size()) {
        std::copy(data.value().begin(), data.value().end(), phys->data.begin());
      }
      st_.prefetched_pages++;
      progress_++;
      reg.counter("migr.postcopy.prefetched_pages").inc();
    }
    auto pf = pending_faults_.find(page);
    if (pf != pending_faults_.end()) {
      const sim::DurationNs rtt = now - pf->second;
      fault_ns_.record(rtt);
      reg.histogram("migr.postcopy.fault_ns").observe(rtt);
      pending_faults_.erase(pf);
    }
  }
  if (kind.value() == kPrefetch) {
    batch_inflight_.clear();
    request_next_batch();
  }
  maybe_finish();
}

void PostcopyPump::request_next_batch() {
  if (!started_ || drained_ || finish_scheduled_) return;
  if (!batch_inflight_.empty()) return;
  auto& mem = dest_proc_.mem();
  std::vector<proc::VirtAddr> batch;
  while (queue_pos_ < queue_.size() && batch.size() < cfg_.batch_pages) {
    const proc::VirtAddr p = queue_[queue_pos_++];
    if (mem.missing(p)) batch.push_back(p);  // skip pages that faulted in
  }
  if (batch.empty()) return;  // stream done; demand faults may still be live
  batch_inflight_ = batch;
  send_request(kPrefetch, batch);
}

void PostcopyPump::on_watchdog() {
  if (drained_ || finish_scheduled_) return;
  if (progress_ != last_progress_) {
    last_progress_ = progress_;
    stalls_ = 0;
    return;
  }
  if (batch_inflight_.empty() && pending_faults_.empty() &&
      dest_proc_.mem().missing_count() == 0) {
    return;  // nothing outstanding; maybe_finish owns completion
  }
  stalls_++;
  if (stalls_ > cfg_.max_fetch_retries) {
    return finish(common::err(Errc::timeout, "postcopy page fetch stalled"));
  }
  st_.retries++;
  MIGR_WARN() << "postcopy fetch stalled for guest " << guest_ << "; re-requesting ("
              << stalls_ << "/" << cfg_.max_fetch_retries << ")";
  if (!batch_inflight_.empty()) send_request(kPrefetch, batch_inflight_);
  if (!pending_faults_.empty()) {
    std::vector<proc::VirtAddr> pages;
    pages.reserve(pending_faults_.size());
    for (const auto& [p, t] : pending_faults_) pages.push_back(p);
    send_request(kFault, pages);
  }
}

void PostcopyPump::maybe_finish() {
  if (!started_ || drained_ || finish_scheduled_) return;
  if (dest_proc_.mem().missing_count() != 0) return;
  if (!pending_faults_.empty() || !batch_inflight_.empty()) return;
  // Completion is observed inside a ctrl-service handler; unregistering the
  // service from within its own lambda would free the code we are running,
  // so the actual finish happens on a fresh event.
  finish_scheduled_ = true;
  loop_.schedule_in(0, [this] { finish(Status::ok()); });
}

void PostcopyPump::finish(const Status& st) {
  if (drained_) return;
  drained_ = st.is_ok();
  drained_at_ = loop_.now();
  finish_scheduled_ = false;
  watchdog_.cancel();
  fabric_.unregister_service(src_host_, req_service_);
  fabric_.unregister_service(dest_host_, data_service_);
  dest_proc_.mem().set_fault_hook(nullptr);
  if (done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done(st);
  }
}

void PostcopyPump::copy_page(proc::VirtAddr page) {
  auto dst = dest_proc_.mem().page_at(page);
  if (!dst) return;  // unmapped in the meantime; nothing to fill
  auto src = src_proc_.mem().page_at(page);
  if (src) dst->data = src->data;
}

PostcopyStats PostcopyPump::stats() const {
  PostcopyStats out = st_;
  out.enabled = true;
  out.drain_ns = drained_ ? drained_at_ - started_at_ : 0;
  if (fault_ns_.count() > 0) {
    out.fault_p50_ns = fault_ns_.percentile(50);
    out.fault_p99_ns = fault_ns_.percentile(99);
    out.fault_max_ns = fault_ns_.max();
  }
  return out;
}

}  // namespace migr::migrlib
