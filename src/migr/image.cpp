#include "migr/image.hpp"

#include <algorithm>
#include <set>

namespace migr::migrlib {

using common::ByteReader;
using common::ByteWriter;
using common::Result;

namespace {

void put_send_wr(ByteWriter& w, const rnic::SendWr& wr) {
  w.u64(wr.wr_id);
  w.u8(static_cast<std::uint8_t>(wr.opcode));
  w.boolean(wr.signaled);
  w.u64(wr.remote_addr);
  w.u32(wr.rkey);
  w.u64(wr.compare_add);
  w.u64(wr.swap);
  w.u32(wr.imm);
  w.u32(wr.remote_host);
  w.u32(wr.remote_qpn);
  w.u32(static_cast<std::uint32_t>(wr.sge.size()));
  for (const auto& s : wr.sge) {
    w.u64(s.addr);
    w.u32(s.length);
    w.u32(s.lkey);
  }
}

Result<rnic::SendWr> get_send_wr(ByteReader& r) {
  rnic::SendWr wr;
  MIGR_ASSIGN_OR_RETURN(wr.wr_id, r.u64());
  MIGR_ASSIGN_OR_RETURN(auto op, r.u8());
  wr.opcode = static_cast<rnic::WrOpcode>(op);
  MIGR_ASSIGN_OR_RETURN(wr.signaled, r.boolean());
  MIGR_ASSIGN_OR_RETURN(wr.remote_addr, r.u64());
  MIGR_ASSIGN_OR_RETURN(wr.rkey, r.u32());
  MIGR_ASSIGN_OR_RETURN(wr.compare_add, r.u64());
  MIGR_ASSIGN_OR_RETURN(wr.swap, r.u64());
  MIGR_ASSIGN_OR_RETURN(wr.imm, r.u32());
  MIGR_ASSIGN_OR_RETURN(wr.remote_host, r.u32());
  MIGR_ASSIGN_OR_RETURN(wr.remote_qpn, r.u32());
  MIGR_ASSIGN_OR_RETURN(auto n, r.u32());
  wr.sge.resize(n);
  for (auto& s : wr.sge) {
    MIGR_ASSIGN_OR_RETURN(s.addr, r.u64());
    MIGR_ASSIGN_OR_RETURN(s.length, r.u32());
    MIGR_ASSIGN_OR_RETURN(s.lkey, r.u32());
  }
  return wr;
}

void put_recv_wr(ByteWriter& w, const rnic::RecvWr& wr) {
  w.u64(wr.wr_id);
  w.u32(static_cast<std::uint32_t>(wr.sge.size()));
  for (const auto& s : wr.sge) {
    w.u64(s.addr);
    w.u32(s.length);
    w.u32(s.lkey);
  }
}

Result<rnic::RecvWr> get_recv_wr(ByteReader& r) {
  rnic::RecvWr wr;
  MIGR_ASSIGN_OR_RETURN(wr.wr_id, r.u64());
  MIGR_ASSIGN_OR_RETURN(auto n, r.u32());
  wr.sge.resize(n);
  for (auto& s : wr.sge) {
    MIGR_ASSIGN_OR_RETURN(s.addr, r.u64());
    MIGR_ASSIGN_OR_RETURN(s.length, r.u32());
    MIGR_ASSIGN_OR_RETURN(s.lkey, r.u32());
  }
  return wr;
}

void put_cqe(ByteWriter& w, const rnic::Cqe& c) {
  w.u64(c.wr_id);
  w.u8(static_cast<std::uint8_t>(c.status));
  w.u8(static_cast<std::uint8_t>(c.opcode));
  w.u32(c.byte_len);
  w.u32(c.qpn);
  w.boolean(c.has_imm);
  w.u32(c.imm);
  w.u32(c.src_qp);
}

Result<rnic::Cqe> get_cqe(ByteReader& r) {
  rnic::Cqe c;
  MIGR_ASSIGN_OR_RETURN(c.wr_id, r.u64());
  MIGR_ASSIGN_OR_RETURN(auto st, r.u8());
  c.status = static_cast<rnic::CqeStatus>(st);
  MIGR_ASSIGN_OR_RETURN(auto op, r.u8());
  c.opcode = static_cast<rnic::CqeOpcode>(op);
  MIGR_ASSIGN_OR_RETURN(c.byte_len, r.u32());
  MIGR_ASSIGN_OR_RETURN(c.qpn, r.u32());
  MIGR_ASSIGN_OR_RETURN(c.has_imm, r.boolean());
  MIGR_ASSIGN_OR_RETURN(c.imm, r.u32());
  MIGR_ASSIGN_OR_RETURN(c.src_qp, r.u32());
  return c;
}

}  // namespace

common::Bytes RdmaImage::serialize() const {
  ByteWriter w;
  w.boolean(final);

  w.u32(static_cast<std::uint32_t>(pds.size()));
  for (const auto& x : pds) w.u32(x.vpd);

  w.u32(static_cast<std::uint32_t>(channels.size()));
  for (const auto& x : channels) w.u32(x.vchannel);

  w.u32(static_cast<std::uint32_t>(cqs.size()));
  for (const auto& x : cqs) {
    w.u32(x.vcq);
    w.u32(x.capacity);
    w.u32(x.vchannel);
  }

  w.u32(static_cast<std::uint32_t>(srqs.size()));
  for (const auto& x : srqs) {
    w.u32(x.vsrq);
    w.u32(x.vpd);
    w.u32(x.capacity);
  }

  w.u32(static_cast<std::uint32_t>(mrs.size()));
  for (const auto& x : mrs) {
    w.u32(x.vlkey);
    w.u32(x.vrkey);
    w.u32(x.vpd);
    w.u64(x.addr);
    w.u64(x.length);
    w.u32(x.access);
  }

  w.u32(static_cast<std::uint32_t>(dms.size()));
  for (const auto& x : dms) {
    w.u32(x.vdm);
    w.u64(x.length);
    w.u64(x.mapped_at);
  }

  w.u32(static_cast<std::uint32_t>(mws.size()));
  for (const auto& x : mws) {
    w.u32(x.vmw);
    w.u32(x.vpd);
    w.boolean(x.bound);
    w.u32(x.vrkey);
    w.u32(x.mr_vlkey);
    w.u32(x.bind_vqpn);
    w.u64(x.addr);
    w.u64(x.length);
    w.u32(x.access);
  }

  w.u32(static_cast<std::uint32_t>(qps.size()));
  for (const auto& x : qps) {
    w.u32(x.vqpn);
    w.u8(static_cast<std::uint8_t>(x.type));
    w.u32(x.vpd);
    w.u32(x.vsend_cq);
    w.u32(x.vrecv_cq);
    w.u32(x.vsrq);
    w.u32(x.caps.max_send_wr);
    w.u32(x.caps.max_recv_wr);
    w.boolean(x.connected);
    w.u32(x.dest_host);
    w.u32(x.dest_pqpn);
    w.u32(x.dest_vqpn);
    w.u32(x.peer_guest);
    w.boolean(x.peer_is_migrrdma);
  }

  w.u32(static_cast<std::uint32_t>(intercepted_sends.size()));
  for (const auto& x : intercepted_sends) {
    w.u32(x.vqpn);
    put_send_wr(w, x.wr);
  }
  w.u32(static_cast<std::uint32_t>(pending_recvs.size()));
  for (const auto& x : pending_recvs) {
    w.u32(x.vqpn);
    w.u32(x.vsrq);
    put_recv_wr(w, x.wr);
  }
  w.u32(static_cast<std::uint32_t>(incomplete_sends.size()));
  for (const auto& x : incomplete_sends) {
    w.u32(x.vqpn);
    put_send_wr(w, x.wr);
  }
  w.u32(static_cast<std::uint32_t>(fake_cq_entries.size()));
  for (const auto& x : fake_cq_entries) {
    w.u32(x.vcq);
    put_cqe(w, x.cqe);
  }
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& x : counters) {
    w.u32(x.vqpn);
    w.u64(x.n_sent);
    w.u64(x.n_recv);
  }
  return std::move(w).take();
}

Result<RdmaImage> RdmaImage::parse(std::span<const std::uint8_t> data) {
  ByteReader r{data};
  RdmaImage img;
  MIGR_ASSIGN_OR_RETURN(img.final, r.boolean());

  std::uint32_t n = 0;

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.pds.resize(n);
  for (auto& x : img.pds) {
    MIGR_ASSIGN_OR_RETURN(x.vpd, r.u32());
  }

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.channels.resize(n);
  for (auto& x : img.channels) {
    MIGR_ASSIGN_OR_RETURN(x.vchannel, r.u32());
  }

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.cqs.resize(n);
  for (auto& x : img.cqs) {
    MIGR_ASSIGN_OR_RETURN(x.vcq, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.capacity, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vchannel, r.u32());
  }

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.srqs.resize(n);
  for (auto& x : img.srqs) {
    MIGR_ASSIGN_OR_RETURN(x.vsrq, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vpd, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.capacity, r.u32());
  }

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.mrs.resize(n);
  for (auto& x : img.mrs) {
    MIGR_ASSIGN_OR_RETURN(x.vlkey, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vrkey, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vpd, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.addr, r.u64());
    MIGR_ASSIGN_OR_RETURN(x.length, r.u64());
    MIGR_ASSIGN_OR_RETURN(x.access, r.u32());
  }

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.dms.resize(n);
  for (auto& x : img.dms) {
    MIGR_ASSIGN_OR_RETURN(x.vdm, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.length, r.u64());
    MIGR_ASSIGN_OR_RETURN(x.mapped_at, r.u64());
  }

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.mws.resize(n);
  for (auto& x : img.mws) {
    MIGR_ASSIGN_OR_RETURN(x.vmw, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vpd, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.bound, r.boolean());
    MIGR_ASSIGN_OR_RETURN(x.vrkey, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.mr_vlkey, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.bind_vqpn, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.addr, r.u64());
    MIGR_ASSIGN_OR_RETURN(x.length, r.u64());
    MIGR_ASSIGN_OR_RETURN(x.access, r.u32());
  }

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.qps.resize(n);
  for (auto& x : img.qps) {
    MIGR_ASSIGN_OR_RETURN(x.vqpn, r.u32());
    MIGR_ASSIGN_OR_RETURN(auto ty, r.u8());
    x.type = static_cast<rnic::QpType>(ty);
    MIGR_ASSIGN_OR_RETURN(x.vpd, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vsend_cq, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vrecv_cq, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vsrq, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.caps.max_send_wr, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.caps.max_recv_wr, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.connected, r.boolean());
    MIGR_ASSIGN_OR_RETURN(x.dest_host, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.dest_pqpn, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.dest_vqpn, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.peer_guest, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.peer_is_migrrdma, r.boolean());
  }

  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.intercepted_sends.resize(n);
  for (auto& x : img.intercepted_sends) {
    MIGR_ASSIGN_OR_RETURN(x.vqpn, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.wr, get_send_wr(r));
  }
  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.pending_recvs.resize(n);
  for (auto& x : img.pending_recvs) {
    MIGR_ASSIGN_OR_RETURN(x.vqpn, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.vsrq, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.wr, get_recv_wr(r));
  }
  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.incomplete_sends.resize(n);
  for (auto& x : img.incomplete_sends) {
    MIGR_ASSIGN_OR_RETURN(x.vqpn, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.wr, get_send_wr(r));
  }
  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.fake_cq_entries.resize(n);
  for (auto& x : img.fake_cq_entries) {
    MIGR_ASSIGN_OR_RETURN(x.vcq, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.cqe, get_cqe(r));
  }
  MIGR_ASSIGN_OR_RETURN(n, r.u32());
  img.counters.resize(n);
  for (auto& x : img.counters) {
    MIGR_ASSIGN_OR_RETURN(x.vqpn, r.u32());
    MIGR_ASSIGN_OR_RETURN(x.n_sent, r.u64());
    MIGR_ASSIGN_OR_RETURN(x.n_recv, r.u64());
  }
  return img;
}

RdmaImage RdmaImage::diff_against(const RdmaImage& older) const {
  RdmaImage d;
  d.final = final;

  std::set<VHandle> seen;
  for (const auto& x : older.pds) seen.insert(x.vpd);
  for (const auto& x : pds) {
    if (!seen.contains(x.vpd)) d.pds.push_back(x);
  }
  seen.clear();
  for (const auto& x : older.channels) seen.insert(x.vchannel);
  for (const auto& x : channels) {
    if (!seen.contains(x.vchannel)) d.channels.push_back(x);
  }
  seen.clear();
  for (const auto& x : older.cqs) seen.insert(x.vcq);
  for (const auto& x : cqs) {
    if (!seen.contains(x.vcq)) d.cqs.push_back(x);
  }
  seen.clear();
  for (const auto& x : older.srqs) seen.insert(x.vsrq);
  for (const auto& x : srqs) {
    if (!seen.contains(x.vsrq)) d.srqs.push_back(x);
  }
  seen.clear();
  for (const auto& x : older.mrs) seen.insert(x.vlkey);
  for (const auto& x : mrs) {
    if (!seen.contains(x.vlkey)) d.mrs.push_back(x);
  }
  seen.clear();
  for (const auto& x : older.dms) seen.insert(x.vdm);
  for (const auto& x : dms) {
    if (!seen.contains(x.vdm)) d.dms.push_back(x);
  }
  seen.clear();
  for (const auto& x : older.mws) seen.insert(x.vmw);
  for (const auto& x : mws) {
    if (!seen.contains(x.vmw)) d.mws.push_back(x);
  }
  seen.clear();
  for (const auto& x : older.qps) seen.insert(x.vqpn);
  for (const auto& x : qps) {
    if (!seen.contains(x.vqpn)) d.qps.push_back(x);
  }

  // WBS residue is only ever produced by the final dump; copy as-is.
  d.intercepted_sends = intercepted_sends;
  d.pending_recvs = pending_recvs;
  d.incomplete_sends = incomplete_sends;
  d.fake_cq_entries = fake_cq_entries;
  d.counters = counters;
  return d;
}

}  // namespace migr::migrlib
