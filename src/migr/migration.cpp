#include "migr/migration.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace migr::migrlib {

using common::Bytes;
using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Status;

namespace {
// Workflow spans (Fig. 2(b) steps) are emitted with explicit sim timestamps
// and durations taken from the same values that land in MigrationReport, so
// a trace is field-for-field consistent with the report. Every span draws a
// fresh id and parent-links to the current TraceContext: spans emitted
// inside a ctrl-message handler link back to the sender's span (the fabric
// installs the piggybacked context), the rest are roots of the migration's
// causal tree.
std::uint64_t trace_span(sim::TimeNs start, sim::DurationNs dur, std::string_view name,
                         std::string args = {}) {
  auto& t = obs::Tracer::global();
  if (!t.enabled()) return 0;
  const std::uint64_t id = t.new_id();
  t.complete(start, dur, name, "migr", std::move(args), id, t.context().span_id);
  return id;
}

std::uint64_t trace_instant(sim::TimeNs at, std::string_view name, std::string args = {}) {
  auto& t = obs::Tracer::global();
  if (!t.enabled()) return 0;
  const std::uint64_t id = t.new_id();
  t.instant(at, name, "migr", std::move(args), id, t.context().span_id);
  return id;
}

// Blackout-waterfall spans nest under the workflow spans on their own
// "migr.blackout" track (a separate category so the field-for-field span
// checks on "migr" keep their one-event-per-name shape).
void trace_blackout_span(sim::TimeNs start, sim::DurationNs dur, std::string_view name,
                         std::string args = {}) {
  auto& t = obs::Tracer::global();
  if (t.enabled()) {
    t.complete(start, dur, name, "migr.blackout", std::move(args), t.new_id(),
               t.context().span_id);
  }
}
}  // namespace

const char* migration_mode_name(MigrationMode m) noexcept {
  switch (m) {
    case MigrationMode::precopy: return "precopy";
    case MigrationMode::postcopy: return "postcopy";
  }
  return "?";
}

std::string MigrationReport::waterfall_json() const {
  std::string out = std::string{"{\"mode\":\""} + migration_mode_name(mode) +
                    "\",\"freeze_at_ns\":" + std::to_string(freeze_at) +
                    ",\"resume_at_ns\":" + std::to_string(resume_at) +
                    ",\"blackout_ns\":" + std::to_string(service_blackout()) +
                    ",\"aborted\":" + (aborted ? "true" : "false") + ",\"slices\":[";
  for (std::size_t i = 0; i < waterfall.size(); ++i) {
    const PhaseSlice& s = waterfall[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + s.name + "\",\"start_ns\":" + std::to_string(s.start) +
           ",\"dur_ns\":" + std::to_string(s.dur);
    if (!s.detail.empty()) {
      out += ',';
      out += s.detail;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void MigrationController::push_waterfall(std::string name, sim::DurationNs dur,
                                         std::string detail) {
  trace_blackout_span(wf_cursor_, dur, name, detail);
  report_.waterfall.push_back(PhaseSlice{std::move(name), wf_cursor_, dur, std::move(detail)});
  wf_cursor_ += dur;
}

void MigrationController::resolve_critical_path() {
  if (!cp_.enabled()) return;
  if (report_.freeze_at == 0 || report_.resume_at == 0) return;
  report_.critical_path = cp_.resolve(report_.freeze_at, report_.resume_at);
}

MigrationController::MigrationController(sim::EventLoop& loop, net::Fabric& fabric,
                                         GuestDirectory& directory, MigrationOptions options)
    : loop_(loop), fabric_(fabric), directory_(directory), options_(options),
      plugin_(options.migr_costs), psn_cursor_(options.psn_seed) {}

Status MigrationController::start(GuestId id, net::HostId dest_host,
                                  proc::SimProcess& dest_proc, MigratableApp* app,
                                  DoneCb done) {
  guest_id_ = id;
  done_ = std::move(done);
  app_ = app;
  dest_proc_ = &dest_proc;

  src_rt_ = directory_.runtime_of(id);
  dest_rt_ = directory_.runtime_at(dest_host);
  if (src_rt_ == nullptr || dest_rt_ == nullptr) {
    return common::err(Errc::not_found, "unknown source or destination host");
  }
  if (src_rt_ == dest_rt_) {
    return common::err(Errc::invalid_argument, "source and destination are the same host");
  }
  guest_ = src_rt_->find_guest(id);
  if (guest_ == nullptr) return common::err(Errc::not_found, "no such guest");
  src_proc_ = &guest_->process();
  src_ctx_ = &guest_->raw();

  // Hybrid limitation (§6): a service with a non-MigrRDMA partner cannot be
  // migrated — wait-before-stop cannot run on that partner.
  if (guest_->has_raw_peer()) {
    return common::err(Errc::failed_precondition,
                       "guest has non-MigrRDMA partners; migration unsupported (§6)");
  }

  ckpt_ = std::make_unique<criu::Checkpointer>(*src_proc_, options_.criu_costs);
  restorer_ = std::make_unique<criu::Restorer>(*dest_proc_, options_.criu_costs);

  xfer_service_ = "migr.xfer." + std::to_string(id);
  if (use_mux()) {
    // One mux per controller *instance*: a retried migration gets fresh
    // stream services instead of colliding with (and later tearing down)
    // a newer controller's registrations for the same guest.
    static std::uint64_t mux_instance = 0;
    XferOptions xo;
    xo.streams = options_.xfer_streams;
    xo.stream_gbps = options_.xfer_stream_gbps;
    xo.chunk_bytes = options_.xfer_chunk_bytes;
    xo.max_backoff = std::min<sim::DurationNs>(xo.max_backoff, options_.max_transfer_backoff);
    xo.cp = &cp_;  // no-op until options_.critical_path arms the recorder
    mux_ = std::make_unique<TransferMux>(
        loop_, fabric_, xfer_service_ + "." + std::to_string(mux_instance++),
        src_rt_->host(), dest_rt_->host(), xo);
  }
  if (options_.suppress_pages) {
    page_enc_ = std::make_unique<criu::PageDeltaEncoder>(
        criu::PageDeltaConfig{options_.delta_threshold});
    page_dec_ = std::make_unique<criu::PageDeltaDecoder>();
  }

  report_ = MigrationReport{};
  report_.start = loop_.now();
  report_.mode = options_.mode;
  if (options_.adaptive_precopy && options_.mode == MigrationMode::precopy) {
    criu::DirtyRateConfig cfg = options_.dirty_rate;
    cfg.seed += guest_id_;  // distinct sample sets per guest, still seeded
    estimator_ = std::make_unique<criu::DirtyRateEstimator>(*src_proc_, cfg);
  }
  // Brownout attribution: iteration 0 covers the initial full copy +
  // partial restore; phase_precopy_round advances it per dirty round.
  obs::SliHub::global().on_migration_start(guest_id_, report_.start);
  obs::Registry::global().counter("migr.migrations_started").inc();
  cp_.clear();
  cp_.set_enabled(options_.critical_path);
  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // One trace per migration; the start instant carries the root span id
    // every span of this migration ultimately parents to.
    trace_id_ = tracer.new_id();
    root_span_ = tracer.new_id();
    tracer.instant(report_.start, "migration_start", "migr",
                   "\"guest\":" + std::to_string(guest_id_) +
                       ",\"dest_host\":" + std::to_string(dest_host),
                   root_span_, 0);
  }
  loop_.schedule_in(0, [this] {
    obs::CtxScope scope(obs::Tracer::global(), trace_ctx());
    phase_initial_dump();
  });
  return Status::ok();
}

void MigrationController::fail(const Status& st) {
  MIGR_ERROR() << "migration of guest " << guest_id_ << " failed: " << st.to_string();
  // Timer hygiene: a stale WBS or transfer timer must never fire into a
  // completed, failed, or rolled-back migration.
  wbs_timeout_handle_.cancel();
  xfer_timeout_handle_.cancel();
  reset_throttle();
  if (mux_) mux_->cancel();
  sync_mux_stats();
  report_.ok = false;
  report_.error = st.to_string();
  report_.end = loop_.now();
  obs::SliHub::global().on_migration_end(guest_id_, report_.end);
  report_.brownout = obs::SliHub::global().attribution(guest_id_);
  obs::Registry::global().counter("migr.migrations_failed").inc();
  trace_instant(loop_.now(), "migration_failed", "\"guest\":" + std::to_string(guest_id_));
  // A failed run never reaches a tool's normal trace write; flush so the
  // partial trace is still loadable.
  (void)obs::Tracer::global().flush();
  if (done_) done_(report_);
}

void MigrationController::abort(const Status& st) {
  if (committed_) return fail(st);  // source released: nothing to roll back to
  MIGR_WARN() << "aborting migration of guest " << guest_id_ << " during " << phase_
              << ": " << st.to_string();
  wbs_timeout_handle_.cancel();
  xfer_timeout_handle_.cancel();
  reset_throttle();
  fabric_.unregister_service(dest_rt_->host(), xfer_service_);
  xfer_cb_ = nullptr;
  xfer_payload_.clear();
  // Drop in-flight chunks and the queue; the stats survive so the report
  // still accounts what the aborted run attempted (lost = attempted -
  // delivered covers the chunks the abort stranded).
  if (mux_) mux_->cancel();
  sync_mux_stats();

  // Detach the WBS machinery from this (dead) migration and roll the
  // partners back: destroy prepared-but-unswitched replacement QPs, then
  // lift their suspension so traffic to the source resumes.
  guest_->set_wbs_done_callback(nullptr);
  for (GuestId pid : partners_) {
    GuestContext* partner = partner_guest(pid);
    if (partner == nullptr) continue;
    partner->set_wbs_done_callback(nullptr);
    partner->partner_abort_prepared(guest_id_);
    if (partner->suspended()) (void)partner->abort_suspension();
  }

  // Resume the source service in place.
  if (src_proc_->frozen()) src_proc_->thaw();
  if (guest_->suspended()) (void)guest_->abort_suspension();

  // Reclaim everything staged on the destination RNIC.
  plugin_.abort_staged();

  report_.ok = false;
  report_.aborted = true;
  report_.abort_reason = st.to_string();
  report_.abort_phase = phase_;
  report_.error = st.to_string();
  report_.end = loop_.now();
  report_.source_resumed = !src_proc_->frozen() && !guest_->suspended();

  // Blackout bookkeeping for an abort after the freeze: the source just
  // thawed, so the service blackout ends NOW (on the source, not the
  // destination). Close the waterfall with an attribution slice covering
  // whatever ran between the last completed phase and the rollback, keeping
  // the sum-equals-blackout invariant on aborted reports too.
  if (report_.freeze_at != 0 && report_.resume_at == 0) {
    report_.resume_at = loop_.now();
    push_waterfall(std::string{"aborted_in_"} + phase_, loop_.now() - wf_cursor_,
                   "\"guest\":" + std::to_string(guest_id_));
    trace_blackout_span(report_.freeze_at, report_.service_blackout(), "blackout",
                        "\"guest\":" + std::to_string(guest_id_) + ",\"aborted\":true");
    // Whatever the recorder saw before the rollback still attributes the
    // freeze-to-thaw window; the un-attributed remainder resolves to slack.
    resolve_critical_path();
  }

  // Rolled back: the source service is live again, so SLI-wise the guest
  // goes back to idle (no recovery phase — the service never moved).
  obs::SliHub::global().on_migration_end(guest_id_, report_.end);
  report_.brownout = obs::SliHub::global().attribution(guest_id_);

  auto& reg = obs::Registry::global();
  reg.counter("migr.migrations_aborted").inc();
  reg.counter("migr.migrations_aborted_in", {{"phase", phase_}}).inc();
  trace_instant(loop_.now(), "migration_aborted",
                "\"guest\":" + std::to_string(guest_id_) + ",\"phase\":\"" + phase_ + "\"");

  // Anomaly capture: the moment the wire history matters most. Flush the
  // trace ring to its configured file and snapshot the flight-recorder
  // window around the abort.
  (void)obs::Tracer::global().flush();
  auto& rec = obs::FlightRecorder::global();
  if (rec.enabled()) {
    rec.trigger_dump(loop_.now(), "migration_abort",
                     "\"guest\":" + std::to_string(guest_id_) + ",\"phase\":\"" + phase_ +
                         "\",\"src_host\":" + std::to_string(src_rt_->host()) +
                         ",\"dest_host\":" + std::to_string(dest_rt_->host()));
  }
  if (done_) done_(report_);
}

GuestContext* MigrationController::partner_guest(GuestId id) const {
  MigrRdmaRuntime* rt = directory_.runtime_of(id);
  return rt == nullptr ? nullptr : rt->find_guest(id);
}

std::uint64_t MigrationController::effective_bytes_threshold() const {
  if (options_.dirty_bytes_threshold != 0) return options_.dirty_bytes_threshold;
  return static_cast<std::uint64_t>(options_.dirty_page_threshold) * proc::kPageSize;
}

void MigrationController::reset_throttle() {
  if (throttle_factor_ > 0 && options_.throttle) options_.throttle(0);
  throttle_factor_ = 0;
}

bool MigrationController::precopy_should_continue(std::uint64_t pending_bytes) {
  if (!estimator_->primed()) return true;
  if (rounds_done_ < options_.min_precopy_rounds) return true;

  // Predicted wall clock of the next round: dump walk, serialization at line
  // rate, restore on the destination. While it runs, the (possibly
  // throttled) guest re-dirties at the EWMA rate; the round converges only
  // if it drains more than the guest refills.
  const double link_bytes_per_sec = fabric_.config().link_gbps * 1e9 / 8.0;
  const double pages =
      static_cast<double>(pending_bytes) / static_cast<double>(proc::kPageSize);
  const double round_sec =
      static_cast<double>(pending_bytes) / link_bytes_per_sec +
      pages *
          static_cast<double>(options_.criu_costs.per_page_dump +
                              options_.criu_costs.per_page_restore) *
          1e-9 +
      static_cast<double>(options_.criu_costs.dump_base) * 1e-9;
  // The EWMA already measures the *throttled* guest (each ladder step shows
  // up in the next interval), so the rate is used as-is. Iterating is only
  // worth the brownout if the round shrinks the pending set by a real
  // margin — marginal shrinkage loses to the model's per-round overheads.
  const double next_pending = estimator_->bytes_per_sec() * round_sec;
  if (next_pending < static_cast<double>(pending_bytes) * options_.precopy_gain) {
    return true;
  }

  // Diverging. Step the auto-converge throttle if there is still headroom
  // (QEMU's auto-converge ladder); otherwise stop iterating — more rounds
  // only burn brownout without shrinking the stop-and-copy set.
  if (options_.throttle && throttle_factor_ < options_.autoconverge_max) {
    throttle_factor_ = std::min(options_.autoconverge_max,
                                throttle_factor_ + options_.autoconverge_step);
    report_.autoconverge_steps++;
    report_.throttle_factor = std::max(report_.throttle_factor, throttle_factor_);
    options_.throttle(throttle_factor_);
    obs::Registry::global().counter("migr.autoconverge_steps").inc();
    trace_instant(loop_.now(), "autoconverge",
                  "\"guest\":" + std::to_string(guest_id_) +
                      ",\"throttle\":" + std::to_string(throttle_factor_));
    MIGR_WARN() << "pre-copy diverging for guest " << guest_id_
                << "; auto-converge throttle -> " << throttle_factor_;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pre-copy
// ---------------------------------------------------------------------------

void MigrationController::phase_initial_dump() {
  phase_ = "pre_dump";
  auto dump = ckpt_->pre_dump();
  sim::DurationNs cost = dump.cost;
  // CRIU's page walk competes with the NIC for memory bandwidth: brownout
  // pressure on the source during the dump window (Kong et al. / Fig. 5).
  src_rt_->device().add_ctrl_pressure(dump.cost);
  if (options_.pre_setup) {
    // Step 1': pre-dump the RDMA state alongside the memory pre-dump.
    predump_rdma_bytes_ = plugin_.pre_dump(*guest_);
    cost += plugin_.take_cost();
  }
  ByteWriter w;
  w.bytes(dump.image.serialize());
  w.bytes(encode_pages(dump.pages));
  w.bytes(predump_rdma_bytes_);
  Bytes payload = std::move(w).take();
  trace_span(loop_.now(), cost, "pre_dump",
             "\"bytes\":" + std::to_string(payload.size()));
  // Rate interval covers the dump + transfer + partial restore: exactly the
  // stretch the guest spends re-dirtying what the full copy just captured.
  if (estimator_) estimator_->begin_interval(loop_.now());

  loop_.schedule_in(cost, [this, payload = std::move(payload)]() mutable {
    transfer_to_dest(std::move(payload),
                     [this](Bytes p) { phase_partial_restore(std::move(p)); });
  });
}

void MigrationController::transfer_to_dest(Bytes payload, std::function<void(Bytes)> cb) {
  if (use_mux()) {
    // Parallel-stream path: the mux chunks the payload over N paced streams
    // with per-chunk ack/timeout/retry, and delivers it whole on full
    // receipt. Retry exhaustion (partition, sustained ctrl loss) aborts the
    // migration exactly like the legacy per-payload deadline would.
    xfer_cb_ = std::move(cb);
    mux_->set_trace_context(trace_ctx());
    mux_->open(
        [this](Bytes&& p) {
          sync_mux_stats();
          auto continuation = xfer_cb_;
          xfer_cb_ = nullptr;
          if (continuation) continuation(std::move(p));
        },
        [this](const common::Status& st) { abort(st); });
    mux_->send(std::move(payload));
    return;
  }
  // Ctrl-plane transfer: pays real serialization time on the source port
  // (competing with RDMA traffic) plus propagation. The payload is retained
  // so a lost delivery (partition, blackhole) can be re-sent; each attempt
  // runs under a deadline and exhaustion aborts the migration.
  xfer_attempt_ = 0;
  xfer_payload_ = std::move(payload);
  xfer_cb_ = std::move(cb);
  fabric_.register_service(dest_rt_->host(), xfer_service_, [this](net::HostId, Bytes&& p) {
    xfer_timeout_handle_.cancel();
    report_.xfer_bytes_delivered += p.size();
    cp_add(xfer_sent_at_, loop_.now(), obs::EdgeClass::chunk_wire, "image");
    // Unregistering destroys this very lambda; keep the continuation alive
    // on the stack first.
    auto continuation = xfer_cb_;
    xfer_cb_ = nullptr;
    xfer_payload_.clear();
    fabric_.unregister_service(dest_rt_->host(), xfer_service_);
    continuation(std::move(p));
  });
  send_xfer_attempt();
}

void MigrationController::send_xfer_attempt() {
  // Re-sends pay serialization again, exactly like a real re-transfer would
  // — and they count again: attempted bytes track what hit the wire, not
  // what the image was worth.
  report_.xfer_bytes_attempted += xfer_payload_.size();
  xfer_sent_at_ = loop_.now();
  obs::CtxScope scope(obs::Tracer::global(), trace_ctx());
  auto sent = fabric_.send_ctrl(src_rt_->host(), dest_rt_->host(), xfer_service_, xfer_payload_);
  if (!sent.is_ok()) {
    MIGR_WARN() << "image transfer send failed: " << sent.status().to_string();
  }
  if (options_.transfer_timeout > 0) {
    xfer_timeout_handle_ =
        loop_.schedule_in(options_.transfer_timeout, [this] { on_xfer_timeout(); });
  }
}

void MigrationController::on_xfer_timeout() {
  if (xfer_cb_ == nullptr) return;  // delivered in the meantime
  if (xfer_attempt_ >= options_.max_transfer_retries) {
    return abort(common::err(Errc::timeout,
                             "transfer to destination timed out after " +
                                 std::to_string(xfer_attempt_ + 1) + " attempts"));
  }
  xfer_attempt_++;
  report_.transfer_retries++;
  obs::Registry::global().counter("migr.transfer_retries").inc();
  // Clamp the doubling: past the ceiling a lossy link only needs persistence,
  // not ever-longer waits that overshoot the transfer deadline.
  const sim::DurationNs backoff =
      std::min<sim::DurationNs>(options_.transfer_retry_backoff << (xfer_attempt_ - 1),
                                options_.max_transfer_backoff);
  // The lost attempt plus its backoff is dead blackout time the retry loop
  // caused: one chunk_retry interval from wire-out to the re-send moment.
  cp_add(xfer_sent_at_, loop_.now() + backoff, obs::EdgeClass::chunk_retry,
         "retry " + std::to_string(xfer_attempt_));
  MIGR_WARN() << "transfer to destination timed out; retry " << xfer_attempt_ << "/"
              << options_.max_transfer_retries << " after " << backoff << " ns";
  loop_.schedule_in(backoff, [this] {
    if (xfer_cb_ != nullptr) send_xfer_attempt();
  });
}

void MigrationController::sync_mux_stats() {
  if (!mux_) {
    // Legacy single-service path: no per-stream loss tracking, so the only
    // signal is attempted re-sends that never delivered. Same definition as
    // XferStreamStats::bytes_lost(); keeps attempted == delivered + lost on
    // every outcome, including ctrl-plane loss and stranded in-flight sends.
    report_.xfer_bytes_lost =
        report_.xfer_bytes_attempted - report_.xfer_bytes_delivered;
    return;
  }
  const XferStats& xs = mux_->stats();
  report_.xfer_streams = static_cast<std::uint32_t>(xs.streams.size());
  report_.xfer_stream_stats = xs.streams;
  report_.xfer_bytes_attempted = xs.attempted();
  report_.xfer_bytes_delivered = xs.delivered();
  report_.xfer_bytes_lost = xs.lost();
  report_.xfer_chunks = xs.chunks();
  report_.transfer_retries = xs.retries();
}

common::Bytes MigrationController::encode_pages(const criu::PageSet& pages) {
  if (!page_enc_) return pages.serialize();
  criu::PageDeltaStats batch;
  Bytes enc = page_enc_->encode(pages, &batch);
  const criu::PageDeltaStats& total = page_enc_->stats();
  report_.xfer_pages_zero = total.pages_zero;
  report_.xfer_pages_same = total.pages_same;
  report_.xfer_pages_delta = total.pages_delta;
  report_.xfer_pages_full = total.pages_full;
  report_.xfer_bytes_raw = total.bytes_raw;
  report_.xfer_bytes_shipped = total.bytes_shipped;
  report_.xfer_bytes_suppressed = total.bytes_suppressed;
  auto& reg = obs::Registry::global();
  reg.counter("migr.xfer.pages_zero").inc(batch.pages_zero);
  reg.counter("migr.xfer.pages_same").inc(batch.pages_same);
  reg.counter("migr.xfer.pages_delta").inc(batch.pages_delta);
  reg.counter("migr.xfer.bytes_suppressed").inc(batch.bytes_suppressed);
  return enc;
}

common::Result<criu::PageSet> MigrationController::decode_pages(
    std::span<const std::uint8_t> data) {
  if (!page_dec_) return criu::PageSet::parse(data);
  return page_dec_->decode(data);
}

void MigrationController::phase_partial_restore(Bytes payload) {
  phase_ = "partial_restore";
  ByteReader r{payload};
  auto mem_bytes = r.bytes();
  auto page_bytes = r.bytes();
  auto rdma_bytes = r.bytes();
  if (!mem_bytes.is_ok() || !page_bytes.is_ok() || !rdma_bytes.is_ok()) {
    return abort(common::err(Errc::invalid_argument, "corrupt initial payload"));
  }
  auto mem_image = criu::MemoryImage::parse(mem_bytes.value());
  auto pages = decode_pages(page_bytes.value());
  if (!mem_image.is_ok() || !pages.is_ok()) {
    return abort(common::err(Errc::invalid_argument, "corrupt memory image"));
  }

  sim::DurationNs cost = 0;

  if (options_.pre_setup) {
    // Step 2' part 1: map RDMA memory structures (on-chip memory) before
    // the memory restoration starts (§3.2).
    if (auto st = plugin_.premap(rdma_bytes.value(), *dest_rt_, *dest_proc_); !st.is_ok()) {
      return abort(st);
    }
    cost += plugin_.take_cost();
    pinned_ = Plugin::pinned_vma_starts(mem_image.value(), plugin_.predump_image());
  }

  auto begin_rep = restorer_->begin(mem_image.value(), pinned_);
  if (!begin_rep.is_ok()) return abort(begin_rep.status());
  cost += begin_rep->cost;
  auto pages_rep = restorer_->apply_pages(pages.value());
  if (!pages_rep.is_ok()) return abort(pages_rep.status());
  cost += pages_rep->cost;
  // Counted here — after the image applied — not at serialize time, so
  // aborted transfers never inflate the pre-copy byte accounting.
  report_.precopy_bytes += payload.size();

  if (options_.pre_setup) {
    // Step 2' part 2: full RDMA pre-setup + partner QP pre-establishment.
    if (auto st = plugin_.pre_setup(rdma_bytes.value(), *dest_rt_, *dest_proc_);
        !st.is_ok()) {
      return abort(st);
    }
    report_.presetup_restore_rdma += plugin_.take_cost();
    if (auto st = presetup_partners(); !st.is_ok()) return abort(st);
    // Connecting the staged QPs (INIT/RTR/RTS per QP) is the bulk of the
    // RestoreRDMA time pre-setup moves out of the blackout window.
    report_.presetup_restore_rdma += plugin_.staged().take_ctrl_cost();
    cost += report_.presetup_restore_rdma;
    // Nested inside the partial-restore window; its duration is exactly the
    // report's presetup_restore_rdma (brownout, not blackout).
    trace_span(loop_.now(), report_.presetup_restore_rdma, "rdma_pre_setup");
  }
  trace_span(loop_.now(), cost, "partial_restore");

  loop_.schedule_in(cost, [this] { phase_precopy_round(); });
}

Status MigrationController::presetup_partners() {
  // The source notifies every partner (dest address + the partner-side
  // physical QPNs); each partner pre-establishes replacement QPs that share
  // the old CQ, and exchanges QPNs with the destination (§3.2).
  partners_.clear();
  for (const auto& q : plugin_.predump_image().qps) {
    if (!q.connected || !q.peer_is_migrrdma || q.peer_guest == 0) continue;
    if (q.peer_guest == guest_id_) continue;  // self-connection
    GuestContext* partner = partner_guest(q.peer_guest);
    if (partner == nullptr) {
      return common::err(Errc::unavailable, "partner guest not reachable");
    }
    MIGR_ASSIGN_OR_RETURN(auto partner_new_pqpn, partner->partner_prepare_qp(q.dest_vqpn));
    MIGR_ASSIGN_OR_RETURN(auto dest_pqpn, plugin_.staged().pqpn(q.vqpn));
    const rnic::Psn psn_a = next_psn();
    const rnic::Psn psn_b = next_psn();
    MIGR_RETURN_IF_ERROR(plugin_.staged().connect_qp(
        q.vqpn, directory_.locate(q.peer_guest), partner_new_pqpn, psn_a, psn_b));
    MIGR_RETURN_IF_ERROR(partner->partner_connect_qp(q.dest_vqpn, dest_rt_->host(),
                                                     dest_pqpn, psn_b, psn_a));
    plugin_.staged().set_peer_endpoint(q.vqpn, directory_.locate(q.peer_guest),
                                       partner_new_pqpn, q.peer_guest);
    // Partner-side control-path time: brownout on the partner, not
    // blackout anywhere (§3.2 "communication pre-setup on the partner side
    // does not incur blackout time").
    (void)partner->raw().take_ctrl_cost();
    if (std::find(partners_.begin(), partners_.end(), q.peer_guest) == partners_.end()) {
      partners_.push_back(q.peer_guest);
    }
  }
  return Status::ok();
}

void MigrationController::phase_precopy_round() {
  phase_ = "precopy";
  if (options_.mode == MigrationMode::postcopy) {
    // Single pre-copy pass: whatever is still dirty stays behind and is
    // fetched after the destination resumes.
    report_.stop_reason = "postcopy";
    return phase_stop_and_copy();
  }
  if (estimator_ && estimator_->open()) {
    (void)estimator_->end_interval(loop_.now());
  }
  const std::uint64_t pending_bytes =
      static_cast<std::uint64_t>(ckpt_->pending_dirty()) * proc::kPageSize;
  if (rounds_done_ >= options_.max_precopy_rounds) {
    report_.stop_reason = "max_rounds";
    return phase_stop_and_copy();
  }
  if (pending_bytes <= effective_bytes_threshold()) {
    report_.stop_reason = "bytes_threshold";
    return phase_stop_and_copy();
  }
  if (estimator_ && !precopy_should_continue(pending_bytes)) {
    report_.stop_reason = "diverging";
    return phase_stop_and_copy();
  }
  auto dump = ckpt_->pre_dump();
  src_rt_->device().add_ctrl_pressure(dump.cost);
  if (estimator_) estimator_->begin_interval(loop_.now());
  ByteWriter w;
  w.bytes(dump.image.serialize());
  w.bytes(encode_pages(dump.pages));
  Bytes payload = std::move(w).take();
  trace_span(loop_.now(), dump.cost, "precopy_round",
             "\"round\":" + std::to_string(rounds_done_ + 1) +
                 ",\"bytes\":" + std::to_string(payload.size()));

  loop_.schedule_in(dump.cost, [this, payload = std::move(payload)]() mutable {
    transfer_to_dest(std::move(payload), [this](Bytes p) {
      ByteReader r{p};
      auto mem_bytes = r.bytes();
      auto page_bytes = r.bytes();
      if (!mem_bytes.is_ok() || !page_bytes.is_ok()) {
        return abort(common::err(Errc::invalid_argument, "corrupt round payload"));
      }
      auto mem_image = criu::MemoryImage::parse(mem_bytes.value());
      auto pages = decode_pages(page_bytes.value());
      if (!mem_image.is_ok() || !pages.is_ok()) {
        return abort(common::err(Errc::invalid_argument, "corrupt round image"));
      }
      sim::DurationNs cost = 0;
      auto up = restorer_->update(mem_image.value(), pinned_);
      if (!up.is_ok()) return abort(up.status());
      cost += up->cost;
      auto ap = restorer_->apply_pages(pages.value());
      if (!ap.is_ok()) return abort(ap.status());
      cost += ap->cost;
      // The round exists only once its image is applied on the destination:
      // counting (and the SLI iteration tag) moves past every abort-able
      // step, so an abort mid-transfer cannot inflate precopy_rounds or
      // leave an SLI window tagged for a round that never landed.
      rounds_done_++;
      report_.precopy_rounds++;
      report_.precopy_bytes += p.size();
      obs::SliHub::global().on_precopy_iteration(guest_id_, loop_.now(), rounds_done_);
      loop_.schedule_in(cost, [this] { phase_precopy_round(); });
    });
  });
}

// ---------------------------------------------------------------------------
// Stop-and-copy
// ---------------------------------------------------------------------------

void MigrationController::phase_stop_and_copy() {
  phase_ = "wait_before_stop";
  if (estimator_) {
    if (estimator_->open()) (void)estimator_->end_interval(loop_.now());
    report_.dirty_pages_per_sec = estimator_->pages_per_sec();
    obs::Registry::global()
        .gauge("migr.dirty_pages_per_sec", {{"guest", std::to_string(guest_id_)}})
        .set(report_.dirty_pages_per_sec);
  }
  report_.suspend_at = loop_.now();
  trace_instant(report_.suspend_at, "suspend",
                "\"partners\":" + std::to_string(partners_.size()));
  if (partners_.empty()) partners_ = guest_->connected_peers();

  pending_wbs_ = 1 + static_cast<int>(partners_.size());
  wbs_completed_ = false;

  guest_->set_wbs_done_callback([this] { on_wbs_one(); });
  for (GuestId pid : partners_) {
    GuestContext* partner = partner_guest(pid);
    if (partner != nullptr) partner->set_wbs_done_callback([this] { on_wbs_one(); });
  }

  // §3.4: the upper bound on wait-before-stop for buggy networks.
  wbs_timeout_handle_ = loop_.schedule_in(options_.wbs_timeout, [this] {
    if (wbs_completed_) return;
    if (options_.abort_on_wbs_timeout) {
      return abort(common::err(Errc::timeout,
                               "wait-before-stop timed out (network too degraded)"));
    }
    MIGR_WARN() << "wait-before-stop timed out; forcing stop-and-copy";
    report_.wbs_timed_out = true;
    guest_->force_wbs_timeout();
    for (GuestId pid : partners_) {
      GuestContext* partner = partner_guest(pid);
      if (partner != nullptr && !partner->wbs_done()) partner->force_wbs_timeout();
    }
  });

  // Step 3: raise the suspension flags. The partner notification travels
  // the ctrl plane; its latency is microseconds and is folded into the
  // suspension event.
  guest_->suspend(SuspendScope{true, 0});
  for (GuestId pid : partners_) {
    GuestContext* partner = partner_guest(pid);
    if (partner != nullptr) partner->suspend(SuspendScope{false, guest_id_});
  }
}

void MigrationController::on_wbs_one() {
  if (wbs_completed_) return;
  if (--pending_wbs_ > 0) return;
  wbs_completed_ = true;
  wbs_timeout_handle_.cancel();
  on_wbs_complete();
}

void MigrationController::on_wbs_complete() {
  report_.wbs_elapsed = loop_.now() - report_.suspend_at;
  trace_span(report_.suspend_at, report_.wbs_elapsed, "wait_before_stop",
             report_.wbs_timed_out ? "\"timed_out\":true" : "\"timed_out\":false");
  guest_->set_wbs_done_callback(nullptr);
  for (GuestId pid : partners_) {
    GuestContext* partner = partner_guest(pid);
    if (partner != nullptr) partner->set_wbs_done_callback(nullptr);
  }
  phase_final_transfer();
}

void MigrationController::phase_final_transfer() {
  phase_ = "final_transfer";
  // Step 4: freeze the service. The blackout waterfall starts here.
  report_.freeze_at = loop_.now();
  wf_cursor_ = report_.freeze_at;
  obs::SliHub::global().on_freeze(guest_id_, report_.freeze_at);
  trace_instant(report_.freeze_at, "freeze");
  src_proc_->freeze();

  ByteWriter w;
  if (options_.mode == MigrationMode::postcopy) {
    // Lazy final dump: the VMA table plus the *addresses* of the pages left
    // behind — no page contents, so the in-blackout dump and transfer cost
    // none of the per-page time. The second payload field carries the
    // missing list where pre-copy puts the final PageSet.
    auto dmem = ckpt_->final_dump_lazy();
    if (!dmem.is_ok()) return abort(dmem.status());
    report_.dump_others = dmem->cost;
    postcopy_missing_ = std::move(dmem->missing);
    w.bytes(dmem->image.serialize());
    ByteWriter mw;
    mw.u64(postcopy_missing_.size());
    for (proc::VirtAddr a : postcopy_missing_) mw.u64(a);
    w.bytes(std::move(mw).take());
  } else {
    auto dmem = ckpt_->final_dump();
    if (!dmem.is_ok()) return abort(dmem.status());
    report_.dump_others = dmem->cost;
    w.bytes(dmem->image.serialize());
    w.bytes(dmem->pages.serialize());
  }

  sim::DurationNs rdma_dump_cost = 0;
  if (!options_.pre_setup) {
    // Baseline (§4): the one and only RDMA dump happens inside the
    // blackout window.
    predump_rdma_bytes_ = plugin_.pre_dump(*guest_);
    rdma_dump_cost += plugin_.take_cost();
  }
  final_rdma_bytes_ = plugin_.final_dump(*guest_);
  rdma_dump_cost += plugin_.take_cost();
  report_.dump_rdma = rdma_dump_cost;

  w.bytes(predump_rdma_bytes_);
  w.bytes(final_rdma_bytes_);
  Bytes payload = std::move(w).take();
  report_.final_bytes = payload.size();

  // Blackout-component spans laid out back to back, durations identical to
  // the report fields (the dump costs elapse sequentially via schedule_in).
  trace_span(report_.freeze_at, report_.dump_others, "dump_others");
  trace_span(report_.freeze_at + report_.dump_others, report_.dump_rdma, "dump_rdma");
  push_waterfall("dump_others", report_.dump_others);
  push_waterfall("dump_rdma", report_.dump_rdma,
                 "\"bytes\":" + std::to_string(final_rdma_bytes_.size()));

  const sim::DurationNs dump_cost = report_.dump_others + rdma_dump_cost;
  cp_add(report_.freeze_at, report_.freeze_at + dump_cost, obs::EdgeClass::ckpt_dump,
         "final_dump");
  loop_.schedule_in(dump_cost, [this, payload = std::move(payload)]() mutable {
    const sim::TimeNs xfer_start = loop_.now();
    transfer_to_dest(std::move(payload), [this, xfer_start](Bytes p) {
      report_.transfer = loop_.now() - xfer_start;
      trace_span(xfer_start, report_.transfer, "transfer",
                 "\"bytes\":" + std::to_string(report_.final_bytes));
      push_waterfall("transfer", report_.transfer,
                     "\"bytes\":" + std::to_string(report_.final_bytes) +
                         ",\"retries\":" + std::to_string(report_.transfer_retries));
      phase_final_restore(std::move(p));
    });
  });
}

void MigrationController::phase_final_restore(Bytes payload) {
  phase_ = "final_restore";
  ByteReader r{payload};
  auto mem_bytes = r.bytes();
  auto page_bytes = r.bytes();
  auto rdma_full_bytes = r.bytes();
  auto rdma_final_bytes = r.bytes();
  if (!mem_bytes.is_ok() || !page_bytes.is_ok() || !rdma_full_bytes.is_ok() ||
      !rdma_final_bytes.is_ok()) {
    return abort(common::err(Errc::invalid_argument, "corrupt final payload"));
  }
  auto mem_image = criu::MemoryImage::parse(mem_bytes.value());
  if (!mem_image.is_ok()) {
    return abort(common::err(Errc::invalid_argument, "corrupt final memory image"));
  }
  const bool postcopy = options_.mode == MigrationMode::postcopy;
  criu::PageSet pages;
  if (postcopy) {
    // The wire copy of the missing list is authoritative — the destination
    // must be able to mark its pages without trusting controller state.
    ByteReader mr{page_bytes.value()};
    auto n = mr.u64();
    if (!n.is_ok()) return abort(n.status());
    postcopy_missing_.clear();
    postcopy_missing_.reserve(n.value());
    for (std::uint64_t i = 0; i < n.value(); i++) {
      auto a = mr.u64();
      if (!a.is_ok()) return abort(a.status());
      postcopy_missing_.push_back(a.value());
    }
  } else {
    auto parsed = criu::PageSet::parse(page_bytes.value());
    if (!parsed.is_ok()) {
      return abort(common::err(Errc::invalid_argument, "corrupt final memory image"));
    }
    pages = std::move(parsed.value());
  }

  sim::DurationNs criu_cost = 0;
  auto up = restorer_->update(mem_image.value(), pinned_);
  if (!up.is_ok()) return abort(up.status());
  criu_cost += up->cost;
  if (!postcopy) {
    auto ap = restorer_->apply_pages(pages);
    if (!ap.is_ok()) return abort(ap.status());
    criu_cost += ap->cost;
  }
  auto fin = restorer_->finish();
  if (!fin.is_ok()) return abort(fin.status());
  criu_cost += fin->cost;
  report_.full_restore = criu_cost;

  sim::DurationNs rdma_cost = 0;
  if (!options_.pre_setup) {
    // Steps 2'/6' collapsed into the blackout: restore every RDMA resource
    // now that all memory has been restored (§4 baseline).
    if (auto st = plugin_.pre_setup(rdma_full_bytes.value(), *dest_rt_, *dest_proc_);
        !st.is_ok()) {
      return abort(st);
    }
    rdma_cost += plugin_.take_cost();
    if (auto st = presetup_partners(); !st.is_ok()) return abort(st);
    rdma_cost += plugin_.staged().take_ctrl_cost();
    rdma_cost += report_.presetup_restore_rdma;  // partner costs are in blackout here
    report_.presetup_restore_rdma = 0;
  }

  // Step 6': map the new RDMA resources into the restored process and apply
  // the virtualization fix-ups; step 7: replay. Releasing the source is the
  // commit point: from here on the guest's resources are being rewired onto
  // the destination and an in-place source resume is no longer possible.
  committed_ = true;
  auto owned = src_rt_->release_guest(guest_);
  if (owned == nullptr) return fail(common::err(Errc::internal, "guest ownership lost"));
  if (auto st = plugin_.full_restore(*guest_, rdma_final_bytes.value(), *dest_rt_);
      !st.is_ok()) {
    return fail(st);
  }
  dest_rt_->adopt_guest(std::move(owned));
  rdma_cost += plugin_.take_cost();
  report_.restore_rdma = rdma_cost;

  // Partners switch to the pre-established QPs (step 7 on the partner).
  for (GuestId pid : partners_) {
    GuestContext* partner = partner_guest(pid);
    if (partner == nullptr) continue;
    for (VQpn vqpn : partner->qps_to_peer(guest_id_)) {
      if (auto st = partner->partner_switch_qp(vqpn, guest_id_); !st.is_ok()) {
        return fail(st);
      }
    }
    partner->update_peer_location(guest_id_, dest_rt_->host());
    (void)partner->raw().take_ctrl_cost();
  }

  // Steps 6/6'/7 back to back: durations equal the report fields.
  const sim::TimeNs restore_start = loop_.now();
  trace_span(restore_start, report_.full_restore, "full_restore");
  trace_span(restore_start + report_.full_restore, report_.restore_rdma, "restore_rdma");
  trace_instant(restore_start + report_.full_restore, "map_resources");
  trace_instant(restore_start + report_.full_restore + report_.restore_rdma, "replay");
  push_waterfall("full_restore", report_.full_restore);
  push_waterfall("restore_rdma", report_.restore_rdma);
  cp_add(restore_start, restore_start + report_.full_restore, obs::EdgeClass::restore_apply,
         "full_restore");
  cp_add(restore_start + report_.full_restore,
         restore_start + report_.full_restore + report_.restore_rdma,
         obs::EdgeClass::qp_reestablish, "restore_rdma");

  if (postcopy) {
    // Stage the fault path before the service resumes: the moment partners
    // switch QPs, their NIC DMA can touch pages that are still on the
    // source. The source process stays alive (frozen) as the pager until
    // the pump drains.
    pump_ = std::make_unique<PostcopyPump>(loop_, fabric_, guest_id_, src_rt_->host(),
                                           dest_rt_->host(), *src_proc_, *dest_proc_,
                                           src_rt_->device(), options_.postcopy,
                                           mux_.get());
    pump_->arm(std::move(postcopy_missing_));
    postcopy_missing_.clear();
  }

  loop_.schedule_in(criu_cost + rdma_cost, [this] { phase_resume(); });
}

void MigrationController::phase_resume() {
  phase_ = "resume";
  sync_mux_stats();
  report_.resume_at = loop_.now();
  const bool postcopy = options_.mode == MigrationMode::postcopy;
  if (postcopy) {
    obs::SliHub::global().on_postcopy_resume(guest_id_, report_.resume_at);
  } else {
    obs::SliHub::global().on_resume(guest_id_, report_.resume_at);
    // Source reclaims everything it still holds. (Post-copy defers this to
    // the drain: the frozen source process is the pager until then.)
    src_proc_->kill();
    src_rt_->device().close(src_ctx_);
    src_ctx_ = nullptr;
  }
  reset_throttle();

  if (app_ != nullptr) app_->on_migrated(*dest_proc_);

  report_.ok = true;
  report_.end = loop_.now();
  trace_instant(report_.resume_at, "resume", "\"guest\":" + std::to_string(guest_id_));
  trace_span(report_.start, report_.resume_at - report_.start, "migration",
             "\"guest\":" + std::to_string(guest_id_));

  // Close the waterfall: a zero-duration thaw marker at the boundary, then
  // the parent span covering the whole attributed window.
  push_waterfall("thaw", 0);
  trace_blackout_span(report_.freeze_at, report_.service_blackout(), "blackout",
                      "\"guest\":" + std::to_string(guest_id_));
  resolve_critical_path();

  // Time-to-first-completion after resume: the first CQE the migrated guest
  // sees is the earliest externally visible proof the service is live again.
  // The controller object may be retired before it lands, so the watcher
  // captures values, not `this`.
  {
    sim::EventLoop* loop = &loop_;
    const GuestId gid = guest_id_;
    const sim::TimeNs resume_at = report_.resume_at;
    guest_->raw().watch_next_cqe([loop, gid, resume_at] {
      const sim::TimeNs now = loop->now();
      obs::Registry::global()
          .gauge("migr.first_completion_ns", {{"guest", std::to_string(gid)}})
          .set(static_cast<double>(now - resume_at));
      trace_blackout_span(resume_at, now - resume_at, "first_post_resume_completion",
                          "\"guest\":" + std::to_string(gid));
    });
  }

  // Publish the report's timing breakdown so benches (and --metrics) can
  // read it from the shared registry.
  auto& reg = obs::Registry::global();
  reg.counter("migr.migrations_completed").inc();
  reg.gauge("migr.report.dump_rdma_ns").set(static_cast<double>(report_.dump_rdma));
  reg.gauge("migr.report.dump_others_ns").set(static_cast<double>(report_.dump_others));
  reg.gauge("migr.report.transfer_ns").set(static_cast<double>(report_.transfer));
  reg.gauge("migr.report.restore_rdma_ns").set(static_cast<double>(report_.restore_rdma));
  reg.gauge("migr.report.full_restore_ns").set(static_cast<double>(report_.full_restore));
  reg.gauge("migr.report.presetup_restore_rdma_ns")
      .set(static_cast<double>(report_.presetup_restore_rdma));
  reg.gauge("migr.report.wbs_elapsed_ns").set(static_cast<double>(report_.wbs_elapsed));
  reg.gauge("migr.report.service_blackout_ns")
      .set(static_cast<double>(report_.service_blackout()));
  reg.gauge("migr.report.comm_blackout_ns").set(static_cast<double>(report_.comm_blackout()));
  reg.histogram("migr.blackout_ns").observe(report_.service_blackout());

  // Brownout section: windows up to resume are closed (on_resume forced the
  // boundary); recovery_ns stays -1 until the service settles post-report.
  report_.brownout = obs::SliHub::global().attribution(guest_id_);

  if (postcopy) {
    // The report (and done_) waits for the drain: the migration is not over
    // while the source still owns pages. Faults recorded from here on are
    // the post-copy brownout the blackout savings paid for.
    phase_ = "postcopy";
    pump_->start([this](const common::Status& st) { on_postcopy_drained(st); });
    return;
  }

  if (done_) done_(report_);
}

void MigrationController::on_postcopy_drained(const common::Status& st) {
  if (!st.is_ok()) {
    // Past the commit point with pages stranded on the source: there is no
    // rollback, only failure (the post-copy durability hazard).
    return fail(st);
  }
  const sim::TimeNs now = loop_.now();
  obs::SliHub::global().on_postcopy_drained(guest_id_, now);

  // Now the source really is done being the pager.
  src_proc_->kill();
  src_rt_->device().close(src_ctx_);
  src_ctx_ = nullptr;

  report_.postcopy = pump_->stats();
  sync_mux_stats();  // the prefetch/fault replies rode the mux too
  report_.end = now;
  trace_span(report_.resume_at, now - report_.resume_at, "postcopy_drain",
             "\"guest\":" + std::to_string(guest_id_) +
                 ",\"faults\":" + std::to_string(report_.postcopy.demand_faults) +
                 ",\"prefetched\":" + std::to_string(report_.postcopy.prefetched_pages));

  auto& reg = obs::Registry::global();
  reg.gauge("migr.report.postcopy_drain_ns")
      .set(static_cast<double>(report_.postcopy.drain_ns));
  reg.gauge("migr.report.postcopy_missing_pages")
      .set(static_cast<double>(report_.postcopy.missing_pages));

  report_.brownout = obs::SliHub::global().attribution(guest_id_);
  if (done_) done_(report_);
}

}  // namespace migr::migrlib
