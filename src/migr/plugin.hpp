// MigrRDMA Plugin: the CRIU-plugin half of the system (paper Fig. 2a).
//
// One Plugin instance drives the RDMA side of one migration: it pre-dumps
// and final-dumps the RDMA state through the indirection layer on the
// source, and on the destination it (1) pre-maps RDMA memory structures
// before CRIU's memory restoration starts, (2) computes which VMAs CRIU
// must pin at their original addresses, (3) runs the RDMA pre-setup
// (StagedRestore), and (4) applies the stop-and-copy fixups.
#pragma once

#include <memory>
#include <set>

#include "criu/checkpoint.hpp"
#include "migr/guest_lib.hpp"
#include "migr/staged_restore.hpp"

namespace migr::migrlib {

/// Cost model for the MigrRDMA-specific dump/restore steps (the RDMA
/// resource metadata the indirection layer serializes; restore costs come
/// from the RNIC CostModel via Context::take_ctrl_cost).
struct MigrCosts {
  sim::DurationNs dump_base = sim::usec(80);
  sim::DurationNs dump_per_qp = 1500;  // ~1.5 us of metadata per QP
  sim::DurationNs dump_per_mr = sim::usec(1);
  sim::DurationNs dump_per_other = sim::usec(1);

  sim::DurationNs dump_cost(const RdmaImage& img) const {
    return dump_base +
           dump_per_qp * static_cast<sim::DurationNs>(img.qps.size()) +
           dump_per_mr * static_cast<sim::DurationNs>(img.mrs.size()) +
           dump_per_other *
               static_cast<sim::DurationNs>(img.cqs.size() + img.pds.size() +
                                            img.srqs.size() + img.mws.size() +
                                            img.dms.size() + img.channels.size());
  }
};

class Plugin {
 public:
  explicit Plugin(MigrCosts costs = {}) : costs_(costs) {}

  // ---- source side ----
  /// Serialize the full RDMA state (start of pre-copy, Fig. 2b step 1').
  common::Bytes pre_dump(GuestContext& guest);
  /// Serialize the difference + WBS residue (stop-and-copy, step 5').
  common::Bytes final_dump(GuestContext& guest);

  // ---- destination side ----
  /// VMAs CRIU must pin at original addresses: those containing MR buffers,
  /// QP queue mappings, or on-chip memory windows (§3.2). Derived purely
  /// from the checkpoint images, as the real plugin does.
  static std::set<proc::VirtAddr> pinned_vma_starts(const criu::MemoryImage& mem,
                                                    const RdmaImage& rdma);

  /// Partial restore (steps 2/2'): pre-map device memory, then run the RDMA
  /// pre-setup against the destination runtime. Call after parsing the
  /// pre-dump bytes and *after* CRIU applied the first page set.
  common::Status pre_setup(const common::Bytes& predump_bytes, MigrRdmaRuntime& dest_rt,
                           proc::SimProcess& dest_proc);
  /// Device-memory pre-map only — must run before criu::Restorer::begin.
  common::Status premap(const common::Bytes& predump_bytes, MigrRdmaRuntime& dest_rt,
                        proc::SimProcess& dest_proc);

  StagedRestore& staged() noexcept { return staged_; }
  const RdmaImage& predump_image() const noexcept { return predump_image_; }

  /// Abort-path cleanup: tear down whatever was staged on the destination.
  /// Must not be called after full_restore handed the staged resources to
  /// the guest (past that commit point the controller fails hard instead).
  void abort_staged() {
    staged_.abandon();
    premapped_ = false;
  }

  /// Full restore (steps 6/6'->7): adopt staged resources into the guest
  /// and apply the final fixups/replays.
  common::Status full_restore(GuestContext& guest, const common::Bytes& final_bytes,
                              MigrRdmaRuntime& dest_rt);

  /// Simulated time consumed by plugin work since the last call.
  sim::DurationNs take_cost() {
    auto c = cost_;
    cost_ = 0;
    return c;
  }

 private:
  MigrCosts costs_;
  StagedRestore staged_;
  RdmaImage predump_image_;
  bool premapped_ = false;
  sim::DurationNs cost_ = 0;
};

}  // namespace migr::migrlib
