// MigrRDMA Guest Lib: the virtualized verbs library loaded into each RDMA
// application (paper Fig. 2a).
//
// Everything the application sees is in *virtual* ID space:
//  * virtual QPNs — equal to the physical QPN at creation; remapped after
//    migration via the indirection layer's array (§3.3 type 3).
//  * virtual lkeys — dense per-process integers (1, 2, 3, ...) so the
//    post-path translation is one array index (§3.3; the design LubeRDMA's
//    linked list is compared against in §6).
//  * virtual rkeys — dense per-process; remote peers resolve them through a
//    fetch-on-first-use cache (§3.3 type 4).
//
// The library also implements the wait-before-stop machinery (§3.4): the
// per-process WBS thread, WR interception during suspension, fake CQs that
// keep the application's poll loop live, n_sent/n_recv exchange for receive
// drain, CQ-event counting, and the timeout path for buggy networks.
//
// Checkpoint/restore entry points at the bottom are the "MigrRDMA Host Lib"
// APIs of Table 3, invoked by the CRIU plugin.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "migr/image.hpp"
#include "migr/runtime.hpp"
#include "proc/process.hpp"
#include "rnic/device.hpp"

namespace migr::migrlib {

/// Which QPs a suspension signal covers (§3.1: "on the migration source, we
/// suspend all the RDMA communications created by the applications, while
/// on the partner side, we only suspend the RDMA communication destined for
/// the migration source").
struct SuspendScope {
  bool all = true;
  GuestId migrating_peer = 0;  // used when !all
};

struct GuestQpAttr {
  rnic::QpType type = rnic::QpType::rc;
  VHandle vpd = 0;
  VHandle vsend_cq = 0;
  VHandle vrecv_cq = 0;
  VHandle vsrq = 0;
  rnic::QpCaps caps;
};

/// What reg_mr hands back to the application.
struct VMr {
  VLkey vlkey = 0;
  VRkey vrkey = 0;
  std::uint64_t addr = 0;
  std::uint64_t length = 0;
};

struct GuestConfig {
  sim::DurationNs wbs_poll_interval = sim::usec(5);
  std::uint32_t cq_drain_batch = 64;
  // Per-QP-buffer driver mapping size: each QP's queue memory is a VMA in
  // the process (restored by CRIU like any other memory). This is what
  // makes DumpOthers grow with the number of QPs in Fig. 3.
  std::uint64_t qp_shadow_bytes = 16 * 1024;
};

class GuestContext {
 public:
  GuestContext(MigrRdmaRuntime& runtime, proc::SimProcess& proc, GuestId id,
               GuestConfig config = {});
  ~GuestContext();
  GuestContext(const GuestContext&) = delete;
  GuestContext& operator=(const GuestContext&) = delete;

  GuestId id() const noexcept { return id_; }
  proc::SimProcess& process() noexcept { return *proc_; }
  MigrRdmaRuntime& runtime() noexcept { return *runtime_; }
  rnic::Context& raw() noexcept { return *ctx_; }

  // ------------------------------------------------------------------
  // Application-facing verbs (virtual IDs throughout)
  // ------------------------------------------------------------------
  common::Result<VHandle> alloc_pd();
  common::Status dealloc_pd(VHandle vpd);

  common::Result<VMr> reg_mr(VHandle vpd, std::uint64_t addr, std::uint64_t length,
                             std::uint32_t access);
  common::Status dereg_mr(VLkey vlkey);

  common::Result<VHandle> create_comp_channel();
  common::Result<VHandle> create_cq(std::uint32_t capacity, VHandle vchannel = 0);
  common::Result<VHandle> create_srq(VHandle vpd, std::uint32_t capacity);

  common::Result<VQpn> create_qp(const GuestQpAttr& attr);
  common::Status destroy_qp(VQpn vqpn);

  /// Connect an RC QP to a MigrRDMA peer: resolves the peer's virtual QPN
  /// to its physical QPN through the control plane, negotiates MigrRDMA
  /// support, walks INIT->RTR->RTS, and records the destination metadata
  /// (dest host + dest physical QPN, §3.2) needed to notify partners later.
  common::Status connect_qp(VQpn vqpn, GuestId peer, VQpn peer_vqpn,
                            rnic::Psn my_psn, rnic::Psn peer_psn);
  /// Hybrid case (§6): connect to a non-MigrRDMA endpoint given its raw
  /// physical QPN. Virtualization is excluded for this QP's traffic.
  common::Status connect_qp_raw(VQpn vqpn, net::HostId host, rnic::Qpn raw_pqpn,
                                rnic::Psn my_psn, rnic::Psn peer_psn);

  common::Status post_send(VQpn vqpn, rnic::SendWr wr);
  common::Status post_recv(VQpn vqpn, rnic::RecvWr wr);
  common::Status post_srq_recv(VHandle vsrq, rnic::RecvWr wr);
  int poll_cq(VHandle vcq, std::span<rnic::Cqe> out);
  common::Status req_notify_cq(VHandle vcq);
  std::optional<VHandle> get_cq_event(VHandle vchannel);
  void ack_cq_events(VHandle vchannel, std::uint32_t n);

  common::Result<VRkey> bind_mw_alloc(VHandle vpd);  // ibv_alloc_mw -> vmw id
  common::Result<VRkey> bind_mw(VQpn vqpn, VHandle vmw, VLkey mr_vlkey,
                                std::uint64_t addr, std::uint64_t length,
                                std::uint32_t access, std::uint64_t wr_id);

  common::Result<rnic::DeviceMemory> alloc_dm(std::uint64_t length);

  /// The raw physical rkey of one of our MRs — needed only when handing a
  /// key to a non-MigrRDMA peer (hybrid case).
  common::Result<rnic::Rkey> real_rkey(VRkey vrkey) const;

  // ------------------------------------------------------------------
  // Wait-before-stop / suspension (§3.4)
  // ------------------------------------------------------------------
  void suspend(const SuspendScope& scope);
  bool suspended() const noexcept { return suspend_active_; }
  bool wbs_done() const noexcept { return wbs_done_; }
  /// Buggy-network escape hatch: stop waiting, capture incomplete WRs for
  /// replay, declare WBS finished.
  void force_wbs_timeout();
  /// Roll back a suspension without migrating (controller abort path): lift
  /// the suspension flags, discard WBS bookkeeping, and flush the WRs
  /// intercepted during the suspension back onto the unchanged physical
  /// QPs. Timeout-harvested replays are dropped — their originals are still
  /// posted on the live QPs.
  common::Status abort_suspension();
  void set_wbs_done_callback(std::function<void()> cb) { wbs_done_cb_ = std::move(cb); }
  /// Counterpart's WBS thread delivered its n_sent for one of our QPs.
  void deliver_peer_n_sent(VQpn vqpn, std::uint64_t peer_n_sent);

  // ------------------------------------------------------------------
  // Partner-side protocol (§3.2 "establishing new RDMA communication on
  // partners")
  // ------------------------------------------------------------------
  /// Which of this guest's connected QPs point at the given peer guest.
  std::vector<VQpn> qps_to_peer(GuestId peer) const;
  /// Every MigrRDMA peer this guest has RC connections to.
  std::vector<GuestId> connected_peers() const;
  /// True if any connection goes to a non-MigrRDMA endpoint (hybrid case,
  /// §6) — such a service cannot be migrated, because wait-before-stop
  /// cannot run on that partner.
  bool has_raw_peer() const;
  /// Pre-establish a replacement QP for `vqpn`, sharing the old QP's CQ /
  /// PD / SRQ (§3.2). Returns the new physical QPN to exchange with the
  /// migration destination. Does not switch traffic yet.
  common::Result<rnic::Qpn> partner_prepare_qp(VQpn vqpn);
  /// Connect the prepared QP to the destination's physical QPN.
  common::Status partner_connect_qp(VQpn vqpn, net::HostId dest_host,
                                    rnic::Qpn dest_pqpn, rnic::Psn my_psn,
                                    rnic::Psn dest_psn);
  /// Rollback of an aborted peer migration: destroy the prepared-but-never-
  /// switched replacement QPs for connections to `peer`. Traffic keeps
  /// flowing on the original QPs, which were never touched.
  void partner_abort_prepared(GuestId peer);
  /// Step 7: retire the old QP, remap the virtual QPN onto the new one,
  /// replay un-received RECVs and flush intercepted WRs, update the QP's
  /// destination metadata, and invalidate cached rkeys/QPNs of the peer.
  common::Status partner_switch_qp(VQpn vqpn, GuestId peer_new_identity);

  /// Drop all cached rkey/remote-QPN translations belonging to a peer
  /// (done when that peer migrates, §3.3).
  void invalidate_peer_cache(GuestId peer);

  // ------------------------------------------------------------------
  // Checkpoint / restore (MigrRDMA Plugin + Host Lib, Table 3)
  // ------------------------------------------------------------------
  /// Dump the creation roadmap (pre-dump) or roadmap + WBS residue (final).
  RdmaImage dump(bool final);

  /// Memory ranges that must be mapped at their original virtual addresses
  /// before MRs can be re-registered (MR buffers + QP shadow buffers + DM
  /// mappings) — the plugin pins these VMAs during partial restore.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pinned_ranges() const;

  /// Adopt the resources a StagedRestore pre-established on the migration
  /// destination during partial restore: swap in the new physical context,
  /// update every virtual->physical table, install the physical->virtual
  /// QPN mappings in the destination's indirection layer, and re-home the
  /// library (including its WBS thread) onto the destination process.
  common::Status adopt_staged(class StagedRestore&& staged);

  /// Stop-and-copy fixups on the destination, after memory restoration
  /// finished: register deferred/late MRs, rebind memory windows, load
  /// fake-CQ residue and counters, replay pending RECVs, flush intercepted
  /// WRs, and lift suspension.
  common::Status finalize_restore(const RdmaImage& final_image);

  /// Per-QP physical QPN (for the controller to wire connections).
  common::Result<rnic::Qpn> physical_qpn(VQpn vqpn) const;
  common::Result<rnic::Qpn> current_pqpn_for_peer_fetch(VQpn vqpn) const;
  common::Result<rnic::Rkey> current_prkey(VRkey vrkey) const;
  /// Record the migrated peer's new location on QPs that pointed at it.
  void update_peer_location(GuestId peer, net::HostId new_host);

  /// Lifetime transport retransmits summed over the guest's *current*
  /// physical QPs — the SLI pipeline's per-guest retransmit source. Counts
  /// restart when a migration switches the guest onto fresh QPs; consumers
  /// (GuestSli) clamp window deltas at zero across the switch.
  std::uint64_t total_retransmits() const;

  /// Metadata queries used by controller/benches/tests.
  std::size_t qp_count() const noexcept { return qps_.size(); }
  std::size_t mr_count() const noexcept { return mrs_.size(); }
  std::uint64_t rkey_cache_size() const noexcept { return rkey_cache_.size(); }
  const std::vector<VQpn> all_vqpns() const;
  bool qp_suspended(VQpn vqpn) const;
  std::size_t fake_cq_depth(VHandle vcq) const;

 private:
  struct QpVirt {
    QpRec rec;              // creation roadmap + connection metadata
    rnic::Qpn pqpn = 0;     // current physical QP
    rnic::Qpn old_pqpn = 0;  // partner transition: retired QP, destroyed at switch
    rnic::Qpn new_pqpn = 0;  // partner transition: prepared replacement
    bool suspended = false;
    bool drained = false;    // WBS verdict for this QP
    std::uint64_t peer_n_sent = kNoPeerCount;
    bool peer_count_received = false;
    // Counter bases: physical counters restart at 0 on a new QP; virtual
    // counters are "since creation" (§3.4).
    std::uint64_t n_sent_base = 0;
    std::uint64_t n_recv_base = 0;
    // Interception buffers (virtual-space WRs).
    std::deque<rnic::SendWr> intercepted_sends;
    std::deque<rnic::RecvWr> intercepted_recvs;
    // WBS-timeout path: WRs harvested from the NIC queues (un-translated
    // back to virtual space) to replay before the intercepted ones.
    std::deque<rnic::SendWr> timeout_replays;
    // Partner transition bookkeeping: the destination endpoint the prepared
    // QP is connected to, promoted into `rec` at switch time.
    rnic::Qpn pending_dest_pqpn = 0;
    net::HostId pending_dest_host = 0;
    // Single-entry MRU in front of the rkey cache: posts overwhelmingly
    // target the same remote MR back-to-back, and two integer compares beat
    // a hash lookup on the fast path.
    VRkey mru_vrkey = 0;
    rnic::Rkey mru_prkey = 0;
  };
  static constexpr std::uint64_t kNoPeerCount = ~0ull;

  struct SrqVirt {
    SrqRec rec;
    rnic::Handle psrq = 0;
    std::deque<rnic::RecvWr> recv_shadow;
    std::deque<rnic::RecvWr> intercepted_recvs;
  };
  struct CqVirt {
    CqRec rec;
    rnic::Handle pcq = 0;
    std::deque<rnic::Cqe> fake;  // entries already in virtual ID space
  };
  struct ChannelVirt {
    ChannelRec rec;
    rnic::Handle pchannel = 0;
    std::uint64_t unfinished_events = 0;  // §3.4 "consistency of CQ events"
  };
  struct MrVirt {
    MrRec rec;
    rnic::Lkey plkey = 0;
    rnic::Rkey prkey = 0;
    bool live = false;  // registered on the current device?
  };
  struct MwVirt {
    MwRec rec;
    rnic::Handle pmw = 0;
    rnic::Rkey prkey = 0;
  };
  struct DmVirt {
    DmRec rec;
    rnic::Handle pdm = 0;
  };

  QpVirt* find_qp(VQpn vqpn);
  const QpVirt* find_qp(VQpn vqpn) const;
  common::Status translate_send_wr(QpVirt& qp, rnic::SendWr& wr);
  common::Status translate_sges(std::span<rnic::Sge> sge);
  void wbs_tick();
  void drain_real_cqs();
  void check_wbs_termination();
  common::Status flush_intercepted(QpVirt& qp);
  void drain_pending_flush();
  common::Status replay_recv_shadows(QpVirt& qp);
  common::Status create_physical_qp(QpVirt& qp);
  void harvest_pending_recvs(RdmaImage& image);

  MigrRdmaRuntime* runtime_;
  proc::SimProcess* proc_;
  GuestId id_;
  GuestConfig config_;
  rnic::Context* ctx_ = nullptr;

  // Virtual handle allocators. Dense lkeys start at 1 (0 = invalid).
  VHandle next_vhandle_ = 1;
  VLkey next_vlkey_ = 1;
  VRkey next_vrkey_ = 1;

  std::unordered_map<VHandle, PdRec> pds_;
  std::unordered_map<VHandle, rnic::Handle> ppds_;  // vpd -> physical pd
  std::unordered_map<VHandle, ChannelVirt> channels_;
  std::unordered_map<VHandle, CqVirt> cqs_;
  std::unordered_map<VHandle, SrqVirt> srqs_;
  std::unordered_map<VLkey, MrVirt> mrs_;
  std::unordered_map<VQpn, QpVirt> qps_;
  std::unordered_map<VHandle, MwVirt> mws_;
  std::unordered_map<VHandle, DmVirt> dms_;

  // Dense virtual-lkey translation array: index = vlkey, value = physical
  // lkey (0 = unregistered). THE data-path fast path of §3.3.
  std::vector<rnic::Lkey> lkey_table_;
  // vrkey -> MR bookkeeping (rkeys are served to remote fetchers).
  std::unordered_map<VRkey, VLkey> vrkey_to_vlkey_;
  std::unordered_map<VRkey, VHandle> vrkey_to_vmw_;

  // Fetch-on-first-use caches for remote values (§3.3 type 4).
  struct PeerKey {
    GuestId peer;
    std::uint32_t vkey;
    bool operator==(const PeerKey&) const = default;
  };
  struct PeerKeyHash {
    std::size_t operator()(const PeerKey& k) const {
      return (static_cast<std::size_t>(k.peer) << 32) ^ k.vkey;
    }
  };
  std::unordered_map<PeerKey, rnic::Rkey, PeerKeyHash> rkey_cache_;
  std::unordered_map<PeerKey, rnic::Qpn, PeerKeyHash> remote_qpn_cache_;

  // QP shadow VMAs (driver queue mappings), keyed by vqpn.
  std::unordered_map<VQpn, std::uint64_t> qp_shadow_vmas_;

  // Suspension / WBS state.
  bool suspend_active_ = false;
  bool wbs_done_ = false;
  bool wbs_counts_sent_ = false;
  bool pending_flush_ = false;
  std::function<void()> wbs_done_cb_;
  sim::EventHandle wbs_task_;

  // Dump bookkeeping: last pre-dump snapshot for diffing.
  std::unique_ptr<RdmaImage> last_predump_;
  // MRs that could not be registered during partial restore (memory not
  // yet at its original address); registered in finalize_restore.
  std::vector<MrRec> deferred_mrs_;

  friend class MigrRdmaRuntime;
  friend class StagedRestore;
};

}  // namespace migr::migrlib
