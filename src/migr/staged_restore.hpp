// RDMA pre-setup on the migration destination (paper §3.2).
//
// During partial restore — while the service is still running on the source
// — the CRIU plugin builds a StagedRestore: a full set of *new* physical
// RDMA resources on the destination's RNIC, equivalent to the checkpointed
// ones, keyed by the virtual IDs the application knows. Memory regions
// whose pages are already pinned at their original virtual address register
// immediately; the rest (late registrations that collided with the
// restorer's temporary memory) are deferred to the end of stop-and-copy.
//
// At the final restore iteration the guest library adopts the staged
// resources wholesale (GuestContext::adopt_staged), which is what makes the
// RDMA side of stop-and-copy cheap: no connection setup remains on the
// blackout path.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "migr/image.hpp"
#include "migr/runtime.hpp"
#include "proc/process.hpp"

namespace migr::migrlib {

class StagedRestore {
 public:
  /// Phase 0 (before CRIU memory restoration starts): open the device
  /// context on the destination and re-establish on-chip memory — allocate
  /// each DM with the original size and mremap() it to the original virtual
  /// address (paper Table 1, "on-chip memory").
  common::Status premap(const RdmaImage& image, MigrRdmaRuntime& runtime,
                        proc::SimProcess& proc);

  /// Phase 1 (after the first page set landed): create PDs, channels, CQs,
  /// SRQs, QPs; register every MR whose memory is mapped at its original
  /// address; defer the rest.
  common::Status build(const RdmaImage& image);

  /// Register one more MR (late registration / deferred conflict), once its
  /// memory is available at the original address.
  common::Status register_mr(const MrRec& rec);

  /// Connect a staged RC QP to its (new) remote endpoint.
  common::Status connect_qp(VQpn vqpn, net::HostId remote_host, rnic::Qpn remote_pqpn,
                            rnic::Psn my_psn, rnic::Psn remote_psn);

  common::Result<rnic::Qpn> pqpn(VQpn vqpn) const;

  /// Record the peer's replacement endpoint for a QP (promoted into the
  /// guest's QP metadata at adoption).
  void set_peer_endpoint(VQpn vqpn, net::HostId host, rnic::Qpn pqpn, GuestId peer) {
    peer_endpoints_[vqpn] = PeerEndpoint{host, pqpn, peer};
  }

  /// Abort-path teardown: destroy every staged resource by closing the
  /// staged device context and reset to the pre-premap state. Safe to call
  /// at any point before the guest adopts the staged resources.
  void abandon();
  bool active() const noexcept { return ctx_ != nullptr; }

  /// Simulated control-path time spent since the last call (the RestoreRDMA
  /// cost that pre-setup moves out of the blackout window).
  sim::DurationNs take_ctrl_cost() noexcept {
    auto c = ctrl_cost_;
    ctrl_cost_ = 0;
    return c;
  }

  const std::vector<MrRec>& deferred_mrs() const noexcept { return deferred_; }

 private:
  friend class GuestContext;

  struct PeerEndpoint {
    net::HostId host = 0;
    rnic::Qpn pqpn = 0;
    GuestId peer = 0;
  };

  MigrRdmaRuntime* runtime_ = nullptr;
  proc::SimProcess* proc_ = nullptr;
  rnic::Context* ctx_ = nullptr;

  std::unordered_map<VHandle, rnic::Handle> pds_;
  std::unordered_map<VHandle, rnic::Handle> channels_;
  std::unordered_map<VHandle, rnic::Handle> cqs_;
  std::unordered_map<VHandle, rnic::Handle> srqs_;
  std::unordered_map<VHandle, rnic::Handle> dms_;
  std::unordered_map<VHandle, rnic::Handle> mws_;
  // vlkey -> (new physical lkey, new physical rkey)
  std::unordered_map<VLkey, std::pair<rnic::Lkey, rnic::Rkey>> mrs_;
  std::unordered_map<VQpn, rnic::Qpn> qps_;
  std::unordered_map<VQpn, PeerEndpoint> peer_endpoints_;
  std::vector<MrRec> deferred_;
  RdmaImage image_;
  sim::DurationNs ctrl_cost_ = 0;
};

}  // namespace migr::migrlib
