#include "migr/runtime.hpp"

#include "migr/guest_lib.hpp"

namespace migr::migrlib {

using common::Errc;
using common::Result;

Result<GuestContext*> MigrRdmaRuntime::create_guest(proc::SimProcess& proc, GuestId id) {
  if (guests_.contains(id)) return common::err(Errc::already_exists, "guest id in use");
  auto guest = std::make_unique<GuestContext>(*this, proc, id);
  GuestContext* raw = guest.get();
  owned_.push_back(std::move(guest));
  guests_.emplace(id, raw);
  directory_.place(id, host());
  return raw;
}

void MigrRdmaRuntime::destroy_guest(GuestContext* guest) {
  if (guest == nullptr) return;
  guests_.erase(guest->id());
  directory_.remove(guest->id());
  device_.close(&guest->raw());
  std::erase_if(owned_, [guest](const auto& up) { return up.get() == guest; });
}

GuestContext* MigrRdmaRuntime::find_guest(GuestId id) const {
  auto it = guests_.find(id);
  return it == guests_.end() ? nullptr : it->second;
}

std::vector<GuestContext*> MigrRdmaRuntime::guests() const {
  std::vector<GuestContext*> out;
  out.reserve(guests_.size());
  for (auto& [id, g] : guests_) out.push_back(g);
  return out;
}

std::unique_ptr<GuestContext> MigrRdmaRuntime::release_guest(GuestContext* guest) {
  std::unique_ptr<GuestContext> out;
  for (auto& up : owned_) {
    if (up.get() == guest) {
      out = std::move(up);
      break;
    }
  }
  std::erase_if(owned_, [](const auto& up) { return up == nullptr; });
  guests_.erase(guest->id());
  return out;
}

void MigrRdmaRuntime::adopt_guest(std::unique_ptr<GuestContext> guest) {
  GuestContext* raw = guest.get();
  owned_.push_back(std::move(guest));
  guests_.emplace(raw->id(), raw);
  directory_.place(raw->id(), host());
}

Result<rnic::Qpn> MigrRdmaRuntime::fetch_pqpn(GuestId peer, std::uint32_t vqpn) {
  stats_.pqpn_fetches++;
  MigrRdmaRuntime* rt = directory_.runtime_of(peer);
  GuestContext* guest = rt == nullptr ? nullptr : rt->find_guest(peer);
  if (guest == nullptr) return common::err(Errc::unavailable, "peer guest unreachable");
  return guest->current_pqpn_for_peer_fetch(vqpn);
}

Result<rnic::Rkey> MigrRdmaRuntime::fetch_rkey(GuestId peer, std::uint32_t vrkey) {
  stats_.rkey_fetches++;
  MigrRdmaRuntime* rt = directory_.runtime_of(peer);
  GuestContext* guest = rt == nullptr ? nullptr : rt->find_guest(peer);
  if (guest == nullptr) return common::err(Errc::unavailable, "peer guest unreachable");
  return guest->current_prkey(vrkey);
}

}  // namespace migr::migrlib
