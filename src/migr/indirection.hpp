// Driver-level indirection layer (one per host RNIC, paper Fig. 2a).
//
// Holds the device-wide QPN translation table — physical QPN to virtual QPN,
// maintained as an array indexed from the device's QPN base so that the
// data-path translation the library performs on every polled CQE is a bounds
// check plus one indexed load (§3.3: "the indirection layer maintains the
// QPN translation table as an array ... shared with MigrRDMA Lib of each
// process, which only has read access"). Entries default to identity:
// MigrRDMA sets the virtual QPN equal to the physical value at creation, so
// only post-migration mappings occupy slots.
//
// Also fans the per-QP suspension signal out to the guest libraries on this
// host (§3.4) and tracks the guests for the CRIU plugin.
#pragma once

#include <cstdint>
#include <vector>

#include "rnic/device.hpp"

namespace migr::migrlib {

class GuestContext;

class IndirectionLayer {
 public:
  explicit IndirectionLayer(rnic::Device& device)
      : device_(device), qpn_base_(device.qpn_base()) {}

  rnic::Device& device() noexcept { return device_; }

  /// Install / remove a physical->virtual QPN mapping.
  void map_qpn(rnic::Qpn pqpn, std::uint32_t vqpn) {
    const std::size_t idx = index_of(pqpn);
    if (idx >= table_.size()) table_.resize(idx + 64, 0);
    table_[idx] = vqpn;
  }
  void unmap_qpn(rnic::Qpn pqpn) {
    const std::size_t idx = index_of(pqpn);
    if (idx < table_.size()) table_[idx] = 0;
  }

  /// Data-path translation: physical QPN in a CQE -> virtual QPN the
  /// application knows. Identity when no mapping is installed.
  std::uint32_t translate_qpn(rnic::Qpn pqpn) const {
    const std::size_t idx = index_of(pqpn);
    if (idx < table_.size() && table_[idx] != 0) return table_[idx];
    return pqpn;
  }

  // ---- guest registry (used by the plugin and the suspend fan-out) ----
  void register_guest(GuestContext* guest) { guests_.push_back(guest); }
  void unregister_guest(GuestContext* guest) { std::erase(guests_, guest); }
  const std::vector<GuestContext*>& guests() const noexcept { return guests_; }

 private:
  std::size_t index_of(rnic::Qpn pqpn) const {
    // QPNs are allocated upward from the device base; see Device::alloc_qpn.
    return static_cast<std::size_t>((pqpn - qpn_base_) & rnic::kQpnMask);
  }

  rnic::Device& device_;
  rnic::Qpn qpn_base_;
  std::vector<std::uint32_t> table_;
  std::vector<GuestContext*> guests_;
};

}  // namespace migr::migrlib
