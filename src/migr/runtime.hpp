// Per-host MigrRDMA runtime and the cluster-wide guest directory.
//
// The runtime is the host-side half of MigrRDMA that is not inside one
// process: it owns the indirection layer, creates/destroys guest libraries,
// and serves the cross-host control-plane lookups the paper's design needs —
// physical-QPN resolution at connection setup and rkey fetch-on-first-use
// for one-sided operations (§3.3, "remote states that have not been
// virtualized": fetched from the remote side and cached locally).
//
// The GuestDirectory models the cloud provider's control plane (§2.1
// "virtual networks"): it maps a stable guest identity to its current host,
// which is how partners find a service again after it migrates.
//
// Cross-host fetches are performed by direct object access plus an RTT
// accounting hook, rather than by round-tripping simulated packets. This is
// a deliberate simulation shortcut: the fetched values are identical, every
// fetch is counted (benches report fetch counts and charge RTTs), and it
// keeps the synchronous verbs API the applications expect.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "migr/indirection.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "proc/process.hpp"
#include "rnic/device.hpp"

namespace migr::migrlib {

class GuestContext;
class MigrRdmaRuntime;

/// Stable, cluster-unique identity of an RDMA application instance. Keeps
/// its value across migration — this is what applications exchange out of
/// band instead of raw IP addresses.
using GuestId = std::uint32_t;

class GuestDirectory {
 public:
  void register_runtime(net::HostId host, MigrRdmaRuntime* runtime) {
    runtimes_[host] = runtime;
  }
  /// Cooperative placement: initial registration (create_guest) and the
  /// migration commit point (adopt_guest), where the old owner has already
  /// released the guest. Failover promotion must NOT use this — the dead
  /// primary never releases anything; use takeover() instead.
  void place(GuestId guest, net::HostId host) { placement_[guest] = host; }
  void remove(GuestId guest) { placement_.erase(guest); }

  /// Exactly-once failover takeover: compare-and-swap the guest's placement
  /// from the (presumed-dead) `from` host to `to`. The first backup to claim
  /// the guest wins; any later attempt — the same backup retrying, or a
  /// second backup racing — sees the stale `from` and fails loudly instead
  /// of silently overwriting the winner's claim.
  common::Status takeover(GuestId guest, net::HostId from, net::HostId to) {
    auto it = placement_.find(guest);
    if (it == placement_.end()) {
      return common::err(common::Errc::not_found, "takeover: guest has no placement");
    }
    if (it->second == to) {
      return common::err(common::Errc::failed_precondition,
                         "takeover: guest already taken over by this host (double takeover)");
    }
    if (it->second != from) {
      return common::err(common::Errc::failed_precondition,
                         "takeover: guest is not owned by the claimed-dead host");
    }
    it->second = to;
    return common::Status::ok();
  }

  /// Current host of a guest; 0 if unknown.
  net::HostId locate(GuestId guest) const {
    auto it = placement_.find(guest);
    return it == placement_.end() ? 0 : it->second;
  }
  MigrRdmaRuntime* runtime_at(net::HostId host) const {
    auto it = runtimes_.find(host);
    return it == runtimes_.end() ? nullptr : it->second;
  }
  MigrRdmaRuntime* runtime_of(GuestId guest) const {
    const net::HostId host = locate(guest);
    return host == 0 ? nullptr : runtime_at(host);
  }

 private:
  std::unordered_map<net::HostId, MigrRdmaRuntime*> runtimes_;
  std::unordered_map<GuestId, net::HostId> placement_;
};

// Each runtime registers its FetchStats with the process-wide obs::Registry
// (as "migr.fetch{host=H}"), so one snapshot covers every host's control-
// plane lookup traffic; the struct stays the accessor API.
struct FetchStats {
  std::uint64_t pqpn_fetches = 0;
  std::uint64_t rkey_fetches = 0;
  std::uint64_t rkey_cache_hits = 0;  // filled in by guests
};

class MigrRdmaRuntime {
 public:
  MigrRdmaRuntime(GuestDirectory& directory, rnic::Device& device, net::Fabric& fabric)
      : directory_(directory), device_(device), fabric_(fabric), indirection_(device) {
    directory_.register_runtime(device.host(), this);
    stats_source_id_ = obs::Registry::global().register_source(
        "migr.fetch", {{"host", std::to_string(device_.host())}}, [this] {
          return std::vector<std::pair<std::string, double>>{
              {"pqpn_fetches", static_cast<double>(stats_.pqpn_fetches)},
              {"rkey_fetches", static_cast<double>(stats_.rkey_fetches)},
              {"rkey_cache_hits", static_cast<double>(stats_.rkey_cache_hits)},
          };
        });
  }
  ~MigrRdmaRuntime() { obs::Registry::global().unregister_source(stats_source_id_); }
  MigrRdmaRuntime(const MigrRdmaRuntime&) = delete;
  MigrRdmaRuntime& operator=(const MigrRdmaRuntime&) = delete;

  net::HostId host() const noexcept { return device_.host(); }
  rnic::Device& device() noexcept { return device_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  GuestDirectory& directory() noexcept { return directory_; }
  IndirectionLayer& indirection() noexcept { return indirection_; }

  /// Create the MigrRDMA guest library inside `proc` and register the guest
  /// in the directory. `id` must be cluster-unique.
  common::Result<GuestContext*> create_guest(proc::SimProcess& proc, GuestId id);
  void destroy_guest(GuestContext* guest);
  GuestContext* find_guest(GuestId id) const;
  std::vector<GuestContext*> guests() const;

  /// Detach a guest from this runtime without destroying it (migration
  /// source handing the library object over). The caller becomes the owner.
  std::unique_ptr<GuestContext> release_guest(GuestContext* guest);
  /// Adopt a guest restored from another host: takes ownership, registers
  /// it, and updates the directory placement.
  void adopt_guest(std::unique_ptr<GuestContext> guest);

  // ---- cross-host control-plane lookups (§3.3) ----
  /// Resolve a peer's virtual QPN to its current physical QPN.
  common::Result<rnic::Qpn> fetch_pqpn(GuestId peer, std::uint32_t vqpn);
  /// Resolve a peer's virtual rkey to the current physical rkey.
  common::Result<rnic::Rkey> fetch_rkey(GuestId peer, std::uint32_t vrkey);
  /// Hybrid negotiation (§6): does the peer run a MigrRDMA library?
  bool peer_supports_migrrdma(GuestId peer) const {
    return directory_.runtime_of(peer) != nullptr &&
           directory_.runtime_of(peer)->find_guest(peer) != nullptr;
  }

  FetchStats& stats() noexcept { return stats_; }

 private:
  GuestDirectory& directory_;
  rnic::Device& device_;
  net::Fabric& fabric_;
  IndirectionLayer indirection_;
  std::unordered_map<GuestId, GuestContext*> guests_;
  std::vector<std::unique_ptr<GuestContext>> owned_;
  FetchStats stats_;
  std::uint64_t stats_source_id_ = 0;
};

}  // namespace migr::migrlib
