// The migration controller: the runc-analogue that sequences the full
// MigrRDMA live-migration workflow of Fig. 2(b) on the simulated cluster.
//
//   pre-copy:       1  memory pre-dump + copy        1' RDMA pre-dump + copy
//                   2  partial restore (staging)     2' RDMA pre-setup +
//                                                        partner QP pre-setup
//                   (iterative dirty-page rounds until convergence)
//   stop-and-copy:  3  raise suspension flags  ->  wait-before-stop
//                   4  freeze the service
//                   5  dump memory diff              5' dump RDMA diff+residue
//                   6  final restore iteration       6' map new RDMA resources
//                   7  replay intercepted/pending WRs, partners switch QPs
//                   (source reclaims its resources)
//
// The controller also implements the §4 comparison baseline: the same
// workflow without RDMA pre-setup, where the single RDMA dump and the whole
// RDMA restoration sit inside the blackout window (Fig. 3's "w/o pre-setup").
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "criu/checkpoint.hpp"
#include "criu/dirtyrate.hpp"
#include "criu/pagedelta.hpp"
#include "migr/plugin.hpp"
#include "migr/postcopy.hpp"
#include "migr/runtime.hpp"
#include "migr/xfer.hpp"
#include "obs/critical_path.hpp"
#include "obs/sli.hpp"
#include "obs/trace.hpp"

namespace migr::migrlib {

/// precopy: iterate dirty rounds, then stop-and-copy everything (§2.2).
/// postcopy: one pre-copy pass, then commit and resume on the destination
/// with the remaining pages marked missing; they fault back on demand via
/// simulated RDMA READs plus a background prefetch stream.
enum class MigrationMode : std::uint8_t { precopy, postcopy };

const char* migration_mode_name(MigrationMode m) noexcept;

struct MigrationOptions {
  MigrationMode mode = MigrationMode::precopy;
  bool pre_setup = true;            // RDMA pre-setup during partial restore (§3.2)
  int max_precopy_rounds = 3;       // dirty-page iterations after the full copy
  std::size_t dirty_page_threshold = 64;  // stop iterating below this many pages
  // Stop criterion in bytes: iterate until the pending dirty set (pages ×
  // page size) fits under this — round cost and link time are byte-driven,
  // so the page count alone under-stops guests with big dirty footprints.
  // 0 derives dirty_page_threshold × page size, preserving existing configs.
  std::uint64_t dirty_bytes_threshold = 0;
  // Adaptive pre-copy (default off; default runs stay byte-identical): a
  // sampled dirty-page-rate estimator drives a convergence predictor — keep
  // iterating only while a round drains the dirty set faster than the guest
  // refills it, stepping the auto-converge throttle when it diverges.
  bool adaptive_precopy = false;
  criu::DirtyRateConfig dirty_rate;
  int min_precopy_rounds = 1;      // rounds before the predictor may stop
  // A round counts as converging only if it is predicted to shrink the
  // pending dirty set below gain × current — asking for a real margin, not
  // any shrink, keeps marginal rounds from burning brownout for nothing.
  double precopy_gain = 0.7;
  double autoconverge_step = 0.3;  // throttle increment per diverging round
  double autoconverge_max = 0.9;   // hard cap on guest slowdown
  // Auto-converge actuator: called with the current throttle factor
  // (0 = full speed). The cluster layer points this at the guest's traffic
  // and dirty generators; unset means the predictor can only stop early.
  std::function<void(double)> throttle;
  PostcopyConfig postcopy;
  sim::DurationNs wbs_timeout = sim::sec(5);  // §3.4 buggy-network upper bound
  // Adversarial-network handling. Every ctrl-plane image transfer (pre-copy
  // rounds and the final one) gets a per-attempt deadline and bounded
  // retries with exponential backoff; exhaustion aborts the migration and
  // rolls the source back. transfer_timeout = 0 disables the deadline.
  sim::DurationNs transfer_timeout = sim::sec(1);
  int max_transfer_retries = 3;                  // re-sends after the first attempt
  sim::DurationNs transfer_retry_backoff = sim::msec(50);  // doubles per retry
  // Ceiling on the doubled backoff: a many-retry transfer on a lossy link
  // must not back off past the transfer deadline. The default preserves the
  // legacy schedule (50/100/200 ms) at the default retry budget.
  sim::DurationNs max_transfer_backoff = sim::msec(500);
  // Multifd-style parallel transfer streams (DESIGN.md §15). The TransferMux
  // engages when streams > 1 or a per-stream pacing rate is set; with the
  // defaults every transfer keeps the legacy single-service whole-payload
  // path, byte-identical to previous releases. `xfer_stream_gbps` models the
  // per-stream processing ceiling that motivates multifd: one stream cannot
  // saturate the link, N streams aggregate toward line rate.
  std::uint32_t xfer_streams = 1;
  double xfer_stream_gbps = 0.0;
  std::uint64_t xfer_chunk_bytes = 256 * 1024;
  // Zero/delta-page suppression in the pre-copy loop (off by default): zero
  // pages and unchanged pages ship a marker, small diffs ship XOR-sparse
  // runs against the previous round's shipped content.
  bool suppress_pages = false;
  double delta_threshold = 0.5;
  // WBS-timeout policy: false = §3.4 forced stop-and-copy (harvest in-flight
  // WRs for replay); true = treat the timeout as fatal and abort/roll back.
  bool abort_on_wbs_timeout = false;
  // Blackout critical-path attribution (DESIGN.md §16, off by default):
  // record causal intervals during the blackout window and resolve them into
  // report.critical_path. Collection never touches the simulation timeline,
  // so default runs stay byte-identical.
  bool critical_path = false;
  criu::CriuCosts criu_costs;
  MigrCosts migr_costs;
  rnic::Psn psn_seed = 500'000;
};

/// One contiguous slice of the service-blackout window. Slices tile the
/// window: each starts where the previous ended, the first starts at
/// freeze_at, and the durations sum exactly to service_blackout() — the
/// waterfall is an attribution of the blackout, not a sampling of it.
struct PhaseSlice {
  std::string name;
  sim::TimeNs start = 0;
  sim::DurationNs dur = 0;
  std::string detail;  // extra JSON object *fragment*, e.g. "\"bytes\":512"
};

struct MigrationReport {
  bool ok = false;
  std::string error;

  // Abort/rollback outcome: the migration was cancelled before the commit
  // point (source release), all staged destination resources were reclaimed,
  // and the service keeps running on the source.
  bool aborted = false;
  std::string abort_reason;
  std::string abort_phase;
  bool source_resumed = false;     // source service running again after abort
  std::uint64_t transfer_retries = 0;  // ctrl-plane transfer re-sends

  MigrationMode mode = MigrationMode::precopy;

  // Simulated timestamps of the phase boundaries. `start` and `end` bracket
  // the whole run and are set on every outcome (success, failure, abort), so
  // schedulers and benches read wall-up/wall-down from the report instead of
  // bracketing runs manually.
  sim::TimeNs start = 0;
  sim::TimeNs end = 0;          // done-callback time (terminal for this attempt)
  sim::TimeNs suspend_at = 0;   // suspension flags raised (comm blackout begins)
  sim::TimeNs freeze_at = 0;    // service frozen (service blackout begins)
  sim::TimeNs resume_at = 0;    // service running on the destination

  // Blackout breakdown (Fig. 3 components).
  sim::DurationNs dump_rdma = 0;
  sim::DurationNs dump_others = 0;
  sim::DurationNs transfer = 0;
  sim::DurationNs restore_rdma = 0;   // in-blackout RDMA restoration
  sim::DurationNs full_restore = 0;

  // RDMA restoration performed during pre-copy (pre-setup case): brownout,
  // not blackout.
  sim::DurationNs presetup_restore_rdma = 0;

  sim::DurationNs wbs_elapsed = 0;  // Fig. 4
  bool wbs_timed_out = false;

  // A pre-copy round (and its bytes) counts only once its image has been
  // applied on the destination; an abort mid-transfer leaves the interrupted
  // round out of both. The attempted/delivered pair accounts what actually
  // crossed the fabric: `attempted` includes every re-send, `delivered`
  // only what arrived, so the two diverge by lost/aborted attempts.
  std::uint64_t precopy_rounds = 0;
  std::uint64_t precopy_bytes = 0;  // delivered-and-applied pre-copy image bytes
  std::uint64_t final_bytes = 0;
  std::uint64_t xfer_bytes_attempted = 0;
  std::uint64_t xfer_bytes_delivered = 0;

  // Parallel-stream mux rollups; xfer_streams == 0 means the mux was off and
  // every stream/suppression field below is zero. Balance invariants (pinned
  // by tools/validate_artifacts.py): attempted == delivered + lost, per
  // stream and in total; raw == shipped + suppressed.
  std::uint32_t xfer_streams = 0;
  std::uint64_t xfer_bytes_lost = 0;
  std::uint64_t xfer_chunks = 0;          // mux frames sent, incl. re-sends
  std::vector<XferStreamStats> xfer_stream_stats;

  // Pre-copy page suppression accounting (zero when suppress_pages is off).
  std::uint64_t xfer_pages_zero = 0;
  std::uint64_t xfer_pages_same = 0;
  std::uint64_t xfer_pages_delta = 0;
  std::uint64_t xfer_pages_full = 0;
  std::uint64_t xfer_bytes_raw = 0;        // page content the dirty sets were worth
  std::uint64_t xfer_bytes_shipped = 0;    // page content that went on the wire
  std::uint64_t xfer_bytes_suppressed = 0; // raw - shipped

  // Why pre-copy stopped iterating: "max_rounds", "bytes_threshold",
  // "diverging" (predictor gave up), or "postcopy" (single-pass mode).
  std::string stop_reason;
  double dirty_pages_per_sec = 0;  // estimator EWMA at stop (0 = disabled)
  int autoconverge_steps = 0;      // throttle escalations applied
  double throttle_factor = 0;      // strongest throttle reached

  // Post-copy drain accounting; enabled=false on pre-copy migrations.
  PostcopyStats postcopy;

  // Brownout attribution from the SLI pipeline: what the migration cost the
  // *running* service (goodput loss, per-iteration p99 inflation, recovery
  // time). `brownout.valid` is false when the SLI hub was disabled or the
  // guest never armed its taps. Recovery completes after the report is
  // emitted; re-query SliHub::attribution() for the final recovery_ns.
  obs::BrownoutAttribution brownout;

  // Blackout waterfall: gap-free attribution of [freeze_at, resume_at].
  // Empty when the migration never froze the service (e.g. early abort).
  // An aborted-after-freeze migration ends with an "aborted_in_<phase>"
  // slice covering freeze-to-thaw, so the invariant holds on every outcome
  // that has a blackout window.
  std::vector<PhaseSlice> waterfall;

  // Causal critical-path attribution of the same window (DESIGN.md §16).
  // valid only when MigrationOptions::critical_path was set and the service
  // froze; its edges tile [freeze_at, resume_at] exactly.
  obs::CriticalPath critical_path;

  sim::DurationNs duration() const { return end - start; }
  sim::DurationNs service_blackout() const { return resume_at - freeze_at; }
  sim::DurationNs comm_blackout() const { return resume_at - suspend_at; }
  sim::DurationNs blackout_components() const {
    return dump_rdma + dump_others + transfer + restore_rdma + full_restore;
  }
  sim::DurationNs waterfall_total() const {
    sim::DurationNs t = 0;
    for (const auto& s : waterfall) t += s.dur;
    return t;
  }
  /// Structured blackout anatomy: {"freeze_at_ns":..,"resume_at_ns":..,
  /// "blackout_ns":..,"aborted":..,"slices":[{"name":..,"start_ns":..,
  /// "dur_ns":..,<detail>}...]}.
  std::string waterfall_json() const;
};

/// Applications that survive migration implement this: the controller calls
/// on_migrated once the service is restored, so the app re-registers its
/// tasks on the destination process (the simulation's equivalent of CRIU
/// resuming the process image).
class MigratableApp {
 public:
  virtual ~MigratableApp() = default;
  virtual void on_migrated(proc::SimProcess& new_proc) = 0;
};

class MigrationController {
 public:
  MigrationController(sim::EventLoop& loop, net::Fabric& fabric, GuestDirectory& directory,
                      MigrationOptions options = {});

  using DoneCb = std::function<void(const MigrationReport&)>;

  /// Kick off the migration of guest `id` to `dest_host`. `dest_proc` is
  /// the (fresh) destination container process. Returns immediately; the
  /// workflow runs on the event loop and `done` fires at completion.
  common::Status start(GuestId id, net::HostId dest_host, proc::SimProcess& dest_proc,
                       MigratableApp* app, DoneCb done);

  const MigrationReport& report() const noexcept { return report_; }

 private:
  void fail(const common::Status& st);
  /// Cancel the migration and roll back: resume the source in place, clean
  /// up partner-side prepared QPs, and tear down staged destination
  /// resources. Past the commit point (source released) this degrades to
  /// fail() — there is no source left to resume.
  void abort(const common::Status& st);
  void phase_initial_dump();
  void transfer_to_dest(common::Bytes payload,
                        std::function<void(common::Bytes)> on_delivered);
  void send_xfer_attempt();
  void on_xfer_timeout();
  /// True when the parallel-stream mux carries transfers for this migration.
  bool use_mux() const noexcept {
    return options_.xfer_streams > 1 || options_.xfer_stream_gbps > 0;
  }
  /// Copy the mux's per-stream counters into the report (no-op on the
  /// legacy path). Called at every terminal point so aborted migrations
  /// report what they attempted.
  void sync_mux_stats();
  /// Pre-copy page batch through the suppression codec (or the plain
  /// serializer when suppress_pages is off).
  common::Bytes encode_pages(const criu::PageSet& pages);
  common::Result<criu::PageSet> decode_pages(std::span<const std::uint8_t> data);
  void phase_partial_restore(common::Bytes payload);
  common::Status presetup_partners();
  void phase_precopy_round();
  void phase_stop_and_copy();
  void on_wbs_one();
  void on_wbs_complete();
  void phase_final_transfer();
  void phase_final_restore(common::Bytes payload);
  void phase_resume();
  void on_postcopy_drained(const common::Status& st);

  /// Bytes-based stop threshold (derived from the page threshold when the
  /// byte threshold is unset).
  std::uint64_t effective_bytes_threshold() const;
  /// Convergence predictor: true while the next round is predicted to
  /// shrink the dirty set (possibly after stepping the throttle).
  bool precopy_should_continue(std::uint64_t pending_bytes);
  void reset_throttle();

  rnic::Psn next_psn() { return psn_cursor_ += 4096; }
  GuestContext* partner_guest(GuestId id) const;

  /// Append one blackout slice at the waterfall cursor (and emit the
  /// matching nested trace span on the "migr.blackout" track), then advance
  /// the cursor. Callers only ever supply durations; contiguity is by
  /// construction.
  void push_waterfall(std::string name, sim::DurationNs dur, std::string detail = {});

  /// Record one causal interval for critical-path attribution; no-op unless
  /// options_.critical_path armed the recorder.
  void cp_add(sim::TimeNs start, sim::TimeNs end, obs::EdgeClass cls,
              std::string label = {}) {
    cp_.add(start, end, cls, std::move(label));
  }
  /// Resolve the recorder over the blackout window into report_.critical_path.
  void resolve_critical_path();

  /// This migration's causal scope (root of its span tree). Zero ids when
  /// tracing was off at start().
  obs::TraceContext trace_ctx() const noexcept { return {trace_id_, root_span_}; }

  sim::EventLoop& loop_;
  net::Fabric& fabric_;
  GuestDirectory& directory_;
  MigrationOptions options_;

  GuestId guest_id_ = 0;
  GuestContext* guest_ = nullptr;
  MigrRdmaRuntime* src_rt_ = nullptr;
  MigrRdmaRuntime* dest_rt_ = nullptr;
  proc::SimProcess* src_proc_ = nullptr;
  proc::SimProcess* dest_proc_ = nullptr;
  rnic::Context* src_ctx_ = nullptr;  // reclaimed at the end
  MigratableApp* app_ = nullptr;
  DoneCb done_;

  std::unique_ptr<criu::Checkpointer> ckpt_;
  std::unique_ptr<criu::Restorer> restorer_;
  std::unique_ptr<criu::DirtyRateEstimator> estimator_;
  std::unique_ptr<TransferMux> mux_;
  std::unique_ptr<criu::PageDeltaEncoder> page_enc_;
  std::unique_ptr<criu::PageDeltaDecoder> page_dec_;
  std::unique_ptr<PostcopyPump> pump_;
  std::vector<proc::VirtAddr> postcopy_missing_;
  double throttle_factor_ = 0;
  Plugin plugin_;
  std::set<proc::VirtAddr> pinned_;
  std::vector<GuestId> partners_;
  common::Bytes predump_rdma_bytes_;
  common::Bytes final_rdma_bytes_;
  criu::MemoryImage pending_mem_image_;

  int rounds_done_ = 0;
  int pending_wbs_ = 0;
  bool wbs_completed_ = false;
  sim::EventHandle wbs_timeout_handle_;
  rnic::Psn psn_cursor_;
  std::string xfer_service_;

  // Causal-graph state: one trace id per migration, the root span id spans
  // parent-link to, and the critical-path interval recorder.
  std::uint64_t trace_id_ = 0;
  std::uint64_t root_span_ = 0;
  obs::CpRecorder cp_;

  // Abort/rollback state machine.
  const char* phase_ = "init";
  sim::TimeNs wf_cursor_ = 0;  // end of the last waterfall slice
  bool committed_ = false;  // source released: abort no longer possible
  int xfer_attempt_ = 0;
  sim::TimeNs xfer_sent_at_ = 0;  // last legacy-path attempt hit the wire
  common::Bytes xfer_payload_;  // retained for re-sends
  std::function<void(common::Bytes)> xfer_cb_;
  sim::EventHandle xfer_timeout_handle_;

  MigrationReport report_;
};

}  // namespace migr::migrlib
