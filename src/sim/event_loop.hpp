// Discrete-event simulation core.
//
// One EventLoop drives an entire simulated deployment (all hosts, NICs,
// links, processes). Events at equal timestamps fire in scheduling order
// (stable), which makes every run bit-for-bit reproducible — a property the
// migration tests lean on when asserting exact WR-ID sequences across a
// migration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace migr::sim {

/// Cancellation handle for a scheduled event or periodic task. Destroying
/// the handle does NOT cancel (handles are observers); call cancel().
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }
  bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class EventLoop;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventLoop : public common::SimTimeSource {
 public:
  using Fn = std::function<void()>;

  EventLoop();

  TimeNs now() const noexcept { return now_; }
  /// SimTimeSource: lets the logger and tracer stamp output with sim time.
  std::int64_t now_ns() const noexcept override { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (clamped to now()).
  EventHandle schedule_at(TimeNs at, Fn fn);

  /// Schedule `fn` after `delay` ns of simulated time.
  EventHandle schedule_in(DurationNs delay, Fn fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` every `period` ns, first firing after `period` (or
  /// `first_delay` if given). The task reschedules itself until cancelled.
  EventHandle schedule_every(DurationNs period, Fn fn, DurationNs first_delay = -1);

  /// Run events until the queue is empty or stop() is called.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Run events with timestamp <= deadline; leaves now() == deadline unless
  /// stopped early. Returns the number of events dispatched.
  std::uint64_t run_until(TimeNs deadline);

  /// Convenience: run_until(now() + d).
  std::uint64_t run_for(DurationNs d) { return run_until(now_ + d); }

  /// Stop the current run()/run_until() after the in-flight event returns.
  void stop() noexcept { stopped_ = true; }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Events dispatched by this loop since construction.
  std::uint64_t events_dispatched() const noexcept { return dispatched_; }
  /// Wall-clock ns spent inside run()/run_until() — with sim time elapsed,
  /// this is the sim-vs-wall drift the registry exposes.
  std::uint64_t wall_ns_in_run() const noexcept { return wall_ns_; }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::shared_ptr<bool> alive;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool dispatch_one();

  void account_run(TimeNs sim_start, std::int64_t wall_start_ns);

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;

  // Telemetry (process-wide registry; several loops aggregate).
  std::uint64_t dispatched_ = 0;
  std::uint64_t wall_ns_ = 0;
  obs::Counter* events_counter_ = nullptr;
  obs::Counter* sim_ns_counter_ = nullptr;
  obs::Counter* wall_ns_counter_ = nullptr;
  obs::Gauge* drift_gauge_ = nullptr;
};

}  // namespace migr::sim
