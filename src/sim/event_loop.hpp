// Discrete-event simulation core.
//
// One EventLoop drives an entire simulated deployment (all hosts, NICs,
// links, processes). Events at equal timestamps fire in scheduling order
// (stable), which makes every run bit-for-bit reproducible — a property the
// migration tests lean on when asserting exact WR-ID sequences across a
// migration.
//
// The dispatch path is allocation-free for the common case: callbacks are
// stored in a small-buffer-optimised EventFn (oversized closures fall back
// to a size-classed free-list pool), cancellation is a generation-counter
// check instead of a per-event shared_ptr<bool>, and the ready queue is a
// binary heap of 24-byte POD entries over a slot table that recycles
// storage. A handle-free post_at() covers fire-and-forget events (packet
// deliveries, pump slots) without any handle bookkeeping.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace migr::sim {

namespace detail {

/// Free-list pool for closures that exceed EventFn's inline buffer.
void* fn_pool_alloc(std::size_t n);
void fn_pool_free(void* p, std::size_t n) noexcept;

/// Move-only type-erased callback with inline small-buffer storage. Unlike
/// std::function it never copies, and oversized closures go through the
/// size-classed pool above instead of raw operator new.
class EventFn {
 public:
  static constexpr std::size_t kInline = 152;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fd = std::decay_t<F>;
    if constexpr (sizeof(Fd) <= kInline && alignof(Fd) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fd(std::forward<F>(f));
      ops_ = &InlineOps<Fd>::ops;
    } else {
      void* mem = fn_pool_alloc(sizeof(Fd));
      Fd* p = ::new (mem) Fd(std::forward<F>(f));
      std::memcpy(storage_, &p, sizeof(p));
      ops_ = &HeapOps<Fd>::ops;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->call(storage_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(void* storage);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  struct InlineOps {
    static void call(void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); }
    static void relocate(void* dst, void* src) noexcept {
      F* sp = std::launder(reinterpret_cast<F*>(src));
      ::new (dst) F(std::move(*sp));
      sp->~F();
    }
    static void destroy(void* s) noexcept { std::launder(reinterpret_cast<F*>(s))->~F(); }
    static constexpr Ops ops{&call, &relocate, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F* get(void* s) noexcept {
      F* p;
      std::memcpy(&p, s, sizeof(p));
      return p;
    }
    static void call(void* s) { (*get(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      std::memcpy(dst, src, sizeof(F*));
    }
    static void destroy(void* s) noexcept {
      F* p = get(s);
      p->~F();
      fn_pool_free(p, sizeof(F));
    }
    static constexpr Ops ops{&call, &relocate, &destroy};
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInline];
};

constexpr std::uint32_t kNoSlot = 0xFFFF'FFFF;

/// One scheduled callback. Slots are recycled through a free list; the
/// generation counter detects stale heap entries and stale handles.
struct Slot {
  std::uint32_t gen = 0;
  DurationNs period = 0;  // > 0: periodic task, fn retained across firings
  EventFn fn;
};

/// Slot storage shared (via shared_ptr) between the loop and its handles, so
/// a handle outliving the loop degrades to a no-op instead of dangling.
/// std::deque keeps slot references stable while the table grows.
struct SlotTable {
  std::deque<Slot> slots;
  std::vector<std::uint32_t> free_list;
  std::uint32_t running = kNoSlot;  // slot whose periodic fn is executing
  bool running_cancelled = false;   // cancel() arrived during that execution

  std::uint32_t acquire() {
    if (!free_list.empty()) {
      const std::uint32_t s = free_list.back();
      free_list.pop_back();
      return s;
    }
    slots.emplace_back();
    return static_cast<std::uint32_t>(slots.size() - 1);
  }

  void release(std::uint32_t slot) {
    Slot& s = slots[slot];
    s.gen++;
    s.period = 0;
    s.fn.reset();
    free_list.push_back(slot);
  }

  bool pending(std::uint32_t slot, std::uint32_t gen) const noexcept {
    if (slot >= slots.size() || slots[slot].gen != gen) return false;
    if (running == slot && running_cancelled) return false;
    return static_cast<bool>(slots[slot].fn);
  }

  void cancel(std::uint32_t slot, std::uint32_t gen) {
    if (slot >= slots.size() || slots[slot].gen != gen) return;
    if (running == slot) {
      // A periodic task cancelling itself from inside its own callback: the
      // fn is executing, so defer the release until it returns.
      running_cancelled = true;
      return;
    }
    release(slot);
  }

  std::size_t allocated() const noexcept { return slots.size() - free_list.size(); }
};

}  // namespace detail

/// Cancellation handle for a scheduled event or periodic task. Destroying
/// the handle does NOT cancel (handles are observers); call cancel().
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() noexcept {
    if (auto table = table_.lock()) table->cancel(slot_, gen_);
  }
  /// True while the event is still scheduled (not yet fired, not cancelled).
  bool pending() const noexcept {
    auto table = table_.lock();
    return table && table->pending(slot_, gen_);
  }

 private:
  friend class EventLoop;
  EventHandle(const std::shared_ptr<detail::SlotTable>& table, std::uint32_t slot,
              std::uint32_t gen)
      : table_(table), slot_(slot), gen_(gen) {}

  std::weak_ptr<detail::SlotTable> table_;
  std::uint32_t slot_ = detail::kNoSlot;
  std::uint32_t gen_ = 0;
};

class EventLoop : public common::SimTimeSource {
 public:
  using Fn = std::function<void()>;

  EventLoop();

  TimeNs now() const noexcept { return now_; }
  /// SimTimeSource: lets the logger and tracer stamp output with sim time.
  std::int64_t now_ns() const noexcept override { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (clamped to now()).
  template <typename F>
  EventHandle schedule_at(TimeNs at, F&& fn) {
    return do_schedule(at < now_ ? now_ : at, 0, detail::EventFn(std::forward<F>(fn)));
  }

  /// Schedule `fn` after `delay` ns of simulated time.
  template <typename F>
  EventHandle schedule_in(DurationNs delay, F&& fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn));
  }

  /// Schedule `fn` every `period` ns, first firing after `period` (or
  /// `first_delay` if given). The task repeats until cancelled.
  template <typename F>
  EventHandle schedule_every(DurationNs period, F&& fn, DurationNs first_delay = -1) {
    assert(period > 0);
    const DurationNs delay = first_delay >= 0 ? first_delay : period;
    return do_schedule(now_ + delay, period, detail::EventFn(std::forward<F>(fn)));
  }

  /// Fire-and-forget fast path: like schedule_at but returns no handle, so
  /// the hot paths (packet delivery, pump pacing) skip handle bookkeeping.
  template <typename F>
  void post_at(TimeNs at, F&& fn) {
    do_post(at < now_ ? now_ : at, detail::EventFn(std::forward<F>(fn)));
  }
  template <typename F>
  void post_in(DurationNs delay, F&& fn) {
    post_at(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn));
  }

  /// Run events until the queue is empty or stop() is called.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Run events with timestamp <= deadline; leaves now() == deadline unless
  /// stopped early. Returns the number of events dispatched.
  std::uint64_t run_until(TimeNs deadline);

  /// Convenience: run_until(now() + d).
  std::uint64_t run_for(DurationNs d) { return run_until(now_ + d); }

  /// Stop the current run()/run_until() after the in-flight event returns.
  void stop() noexcept { stopped_ = true; }

  bool empty() const noexcept { return table_->allocated() == 0; }
  std::size_t pending_events() const noexcept { return table_->allocated(); }

  /// Events dispatched by this loop since construction.
  std::uint64_t events_dispatched() const noexcept { return dispatched_; }
  /// Wall-clock ns spent inside run()/run_until() — with sim time elapsed,
  /// this is the sim-vs-wall drift the registry exposes.
  std::uint64_t wall_ns_in_run() const noexcept { return wall_ns_; }

 private:
  struct HeapEntry {
    TimeNs at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  EventHandle do_schedule(TimeNs at, DurationNs period, detail::EventFn fn);
  void do_post(TimeNs at, detail::EventFn fn);
  void push_entry(TimeNs at, std::uint32_t slot, std::uint32_t gen);
  void pop_entry();
  /// Dispatch the earliest live event at or before `deadline`; false if none.
  bool dispatch_one(TimeNs deadline);

  void account_run(TimeNs sim_start, std::int64_t wall_start_ns);

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::shared_ptr<detail::SlotTable> table_;
  std::vector<HeapEntry> heap_;

  // Telemetry (process-wide registry; several loops aggregate).
  std::uint64_t dispatched_ = 0;
  std::uint64_t wall_ns_ = 0;
  obs::Counter* events_counter_ = nullptr;
  obs::Counter* sim_ns_counter_ = nullptr;
  obs::Counter* wall_ns_counter_ = nullptr;
  obs::Gauge* drift_gauge_ = nullptr;
};

}  // namespace migr::sim
