#include "sim/event_loop.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <utility>

namespace migr::sim {

namespace detail {
namespace {

// Size classes for spilled closures. Anything larger than the biggest class
// is rare enough (one-off control-path lambdas) to hit operator new directly.
constexpr std::size_t kFnClasses[] = {256, 512, 1024};

int fn_class(std::size_t n) noexcept {
  for (int i = 0; i < 3; ++i) {
    if (n <= kFnClasses[i]) return i;
  }
  return -1;
}

// The sim is single-threaded per loop; thread_local keeps the pool safe for
// the odd test that spins loops on several threads. The destructor returns
// everything to the system so leak detection stays clean.
struct FnPool {
  std::vector<void*> free[3];
  ~FnPool() {
    for (auto& cls : free) {
      for (void* p : cls) ::operator delete(p);
    }
  }
};
thread_local FnPool g_fn_pool;

}  // namespace

void* fn_pool_alloc(std::size_t n) {
  const int cls = fn_class(n);
  if (cls < 0) return ::operator new(n);
  auto& free = g_fn_pool.free[cls];
  if (!free.empty()) {
    void* p = free.back();
    free.pop_back();
    return p;
  }
  return ::operator new(kFnClasses[cls]);
}

void fn_pool_free(void* p, std::size_t n) noexcept {
  const int cls = fn_class(n);
  if (cls < 0) {
    ::operator delete(p);
    return;
  }
  g_fn_pool.free[cls].push_back(p);
}

}  // namespace detail

namespace {
std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

EventLoop::EventLoop() : table_(std::make_shared<detail::SlotTable>()) {
  heap_.reserve(1024);
  auto& reg = obs::Registry::global();
  events_counter_ = &reg.counter("sim.events_dispatched");
  sim_ns_counter_ = &reg.counter("sim.sim_ns_advanced");
  wall_ns_counter_ = &reg.counter("sim.wall_ns_in_run");
  drift_gauge_ = &reg.gauge("sim.wall_per_sim_ns");
}

void EventLoop::account_run(TimeNs sim_start, std::int64_t wall_start_ns) {
  const std::uint64_t wall = static_cast<std::uint64_t>(wall_now_ns() - wall_start_ns);
  wall_ns_ += wall;
  wall_ns_counter_->inc(wall);
  sim_ns_counter_->inc(static_cast<std::uint64_t>(now_ - sim_start));
  const double sim_total = static_cast<double>(sim_ns_counter_->value());
  if (sim_total > 0) {
    drift_gauge_->set(static_cast<double>(wall_ns_counter_->value()) / sim_total);
  }
}

EventHandle EventLoop::do_schedule(TimeNs at, DurationNs period, detail::EventFn fn) {
  const std::uint32_t slot = table_->acquire();
  detail::Slot& s = table_->slots[slot];
  s.period = period;
  s.fn = std::move(fn);
  push_entry(at, slot, s.gen);
  return EventHandle(table_, slot, s.gen);
}

void EventLoop::do_post(TimeNs at, detail::EventFn fn) {
  const std::uint32_t slot = table_->acquire();
  detail::Slot& s = table_->slots[slot];
  s.period = 0;
  s.fn = std::move(fn);
  push_entry(at, slot, s.gen);
}

void EventLoop::push_entry(TimeNs at, std::uint32_t slot, std::uint32_t gen) {
  heap_.push_back(HeapEntry{at, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventLoop::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

bool EventLoop::dispatch_one(TimeNs deadline) {
  auto& slots = table_->slots;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (slots[top.slot].gen != top.gen) {  // cancelled; slot already recycled
      pop_entry();
      continue;
    }
    if (top.at > deadline) return false;
    pop_entry();
    assert(top.at >= now_);
    now_ = top.at;
    dispatched_++;
    events_counter_->inc();
    detail::Slot& s = slots[top.slot];
    if (s.period > 0) {
      // Periodic: the fn stays in its slot across firings. Mark it running
      // so a self-cancel from inside the callback defers the slot release.
      table_->running = top.slot;
      table_->running_cancelled = false;
      s.fn();
      table_->running = detail::kNoSlot;
      if (table_->running_cancelled) {
        table_->release(top.slot);
      } else {
        push_entry(now_ + s.period, top.slot, s.gen);
      }
    } else {
      // One-shot: free the slot before invoking, so the callback can safely
      // schedule new work (possibly reusing this slot) and a cancel() of the
      // in-flight handle is a stale-generation no-op.
      detail::EventFn fn = std::move(s.fn);
      table_->release(top.slot);
      fn();
    }
    return true;
  }
  return false;
}

std::uint64_t EventLoop::run() {
  stopped_ = false;
  const TimeNs sim_start = now_;
  const std::int64_t wall_start = wall_now_ns();
  std::uint64_t n = 0;
  constexpr TimeNs kForever = std::numeric_limits<TimeNs>::max();
  while (!stopped_ && dispatch_one(kForever)) ++n;
  account_run(sim_start, wall_start);
  return n;
}

std::uint64_t EventLoop::run_until(TimeNs deadline) {
  stopped_ = false;
  const TimeNs sim_start = now_;
  const std::int64_t wall_start = wall_now_ns();
  std::uint64_t n = 0;
  while (!stopped_ && dispatch_one(deadline)) ++n;
  if (!stopped_ && now_ < deadline) now_ = deadline;
  account_run(sim_start, wall_start);
  return n;
}

}  // namespace migr::sim
