#include "sim/event_loop.hpp"

#include <cassert>
#include <utility>

namespace migr::sim {

EventHandle EventLoop::schedule_at(TimeNs at, Fn fn) {
  if (at < now_) at = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{at, next_seq_++, alive, std::move(fn)});
  return EventHandle{std::move(alive)};
}

EventHandle EventLoop::schedule_every(DurationNs period, Fn fn, DurationNs first_delay) {
  assert(period > 0);
  auto alive = std::make_shared<bool>(true);
  // The periodic wrapper reschedules itself while the shared flag is set.
  // A self-referencing shared_ptr to the wrapper lets it re-enqueue itself.
  auto wrapper = std::make_shared<std::function<void()>>();
  *wrapper = [this, period, alive, wrapper, fn = std::move(fn)]() {
    if (!*alive) return;
    fn();
    if (!*alive) return;
    queue_.push(Event{now_ + period, next_seq_++, alive, *wrapper});
  };
  const DurationNs delay = first_delay >= 0 ? first_delay : period;
  queue_.push(Event{now_ + delay, next_seq_++, alive, *wrapper});
  return EventHandle{std::move(alive)};
}

bool EventLoop::dispatch_one() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    assert(ev.at >= now_);
    if (!*ev.alive) continue;  // cancelled
    now_ = ev.at;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t EventLoop::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && dispatch_one()) ++n;
  return n;
}

std::uint64_t EventLoop::run_until(TimeNs deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().at <= deadline) {
    if (dispatch_one()) ++n;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace migr::sim
