#include "sim/event_loop.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace migr::sim {

namespace {
std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

EventLoop::EventLoop() {
  auto& reg = obs::Registry::global();
  events_counter_ = &reg.counter("sim.events_dispatched");
  sim_ns_counter_ = &reg.counter("sim.sim_ns_advanced");
  wall_ns_counter_ = &reg.counter("sim.wall_ns_in_run");
  drift_gauge_ = &reg.gauge("sim.wall_per_sim_ns");
}

void EventLoop::account_run(TimeNs sim_start, std::int64_t wall_start_ns) {
  const std::uint64_t wall = static_cast<std::uint64_t>(wall_now_ns() - wall_start_ns);
  wall_ns_ += wall;
  wall_ns_counter_->inc(wall);
  sim_ns_counter_->inc(static_cast<std::uint64_t>(now_ - sim_start));
  const double sim_total = static_cast<double>(sim_ns_counter_->value());
  if (sim_total > 0) {
    drift_gauge_->set(static_cast<double>(wall_ns_counter_->value()) / sim_total);
  }
}

EventHandle EventLoop::schedule_at(TimeNs at, Fn fn) {
  if (at < now_) at = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{at, next_seq_++, alive, std::move(fn)});
  return EventHandle{std::move(alive)};
}

EventHandle EventLoop::schedule_every(DurationNs period, Fn fn, DurationNs first_delay) {
  assert(period > 0);
  auto alive = std::make_shared<bool>(true);
  // The periodic wrapper reschedules itself while the shared flag is set.
  // Ownership lives in the queued relay, never in the wrapper itself: the
  // body only holds a weak_ptr, so once the task is cancelled (or the loop
  // is destroyed with the event still queued) the last relay copy frees the
  // wrapper instead of a self-referencing shared_ptr keeping it alive.
  auto wrapper = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = wrapper;
  *wrapper = [this, period, alive, weak, fn = std::move(fn)]() {
    if (!*alive) return;
    fn();
    if (!*alive) return;
    if (auto self = weak.lock()) {
      queue_.push(Event{now_ + period, next_seq_++, alive, [self]() { (*self)(); }});
    }
  };
  const DurationNs delay = first_delay >= 0 ? first_delay : period;
  queue_.push(Event{now_ + delay, next_seq_++, alive, [wrapper]() { (*wrapper)(); }});
  return EventHandle{std::move(alive)};
}

bool EventLoop::dispatch_one() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    assert(ev.at >= now_);
    if (!*ev.alive) continue;  // cancelled
    now_ = ev.at;
    dispatched_++;
    events_counter_->inc();
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t EventLoop::run() {
  stopped_ = false;
  const TimeNs sim_start = now_;
  const std::int64_t wall_start = wall_now_ns();
  std::uint64_t n = 0;
  while (!stopped_ && dispatch_one()) ++n;
  account_run(sim_start, wall_start);
  return n;
}

std::uint64_t EventLoop::run_until(TimeNs deadline) {
  stopped_ = false;
  const TimeNs sim_start = now_;
  const std::int64_t wall_start = wall_now_ns();
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().at <= deadline) {
    if (dispatch_one()) ++n;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  account_run(sim_start, wall_start);
  return n;
}

}  // namespace migr::sim
