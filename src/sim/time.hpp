// Simulated time. The whole system (fabric, RNIC engines, CRIU phases,
// application tasks) advances on one discrete-event clock in nanoseconds.
// Using a strong alias rather than std::chrono keeps the event-loop core
// trivial and the arithmetic explicit in the cost models.
#pragma once

#include <cstdint>

namespace migr::sim {

/// Nanoseconds of simulated time since world creation.
using TimeNs = std::int64_t;

/// Durations, also in nanoseconds.
using DurationNs = std::int64_t;

constexpr DurationNs kNanosecond = 1;
constexpr DurationNs kMicrosecond = 1'000;
constexpr DurationNs kMillisecond = 1'000'000;
constexpr DurationNs kSecond = 1'000'000'000;

constexpr DurationNs usec(double v) { return static_cast<DurationNs>(v * kMicrosecond); }
constexpr DurationNs msec(double v) { return static_cast<DurationNs>(v * kMillisecond); }
constexpr DurationNs sec(double v) { return static_cast<DurationNs>(v * kSecond); }

constexpr double to_usec(DurationNs d) { return static_cast<double>(d) / kMicrosecond; }
constexpr double to_msec(DurationNs d) { return static_cast<double>(d) / kMillisecond; }
constexpr double to_sec(DurationNs d) { return static_cast<double>(d) / kSecond; }

/// Time to serialize `bytes` onto a link of `gbps` gigabits per second.
constexpr DurationNs transmit_time(std::uint64_t bytes, double gbps) {
  // bytes * 8 bits / (gbps * 1e9 bits/s) seconds -> ns
  return static_cast<DurationNs>(static_cast<double>(bytes) * 8.0 / gbps);
}

}  // namespace migr::sim
