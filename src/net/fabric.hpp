// Simulated data-center fabric.
//
// Models the paper's testbed: hosts with one NIC port each (default
// 100 Gbps, matching the ConnectX-5 testbed), connected through a single
// switch (fixed propagation delay). Two planes share each port's egress
// bandwidth:
//
//  * data plane  — RDMA packets. Subject to fault injection (loss), which
//    the "buggy network" tests (§3.4 handling) use.
//  * ctrl plane  — the out-of-band TCP the paper's live-migration tooling
//    uses (CRIU image transfer, partner notification, rkey fetch). Reliable
//    and in-order, but still pays serialization + propagation time, so the
//    "Transfer" component of blackout time is bandwidth-accurate.
//
// Hosts can be partitioned (both planes dropped) to model node failure for
// the Hadoop failover baseline.
//
// Fast path: callers resolve a Route (src/dst port pointers + link counters)
// once per connection and send through it, so the per-packet cost is plain
// pointer work instead of 4-6 hash lookups. A fault-free train of packets
// can be handed over as one burst (send_data_burst), which reserves egress
// for the whole train up front and delivers each packet at its own time
// through a single self-re-arming event.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/payload.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"

namespace migr::net {

using HostId = std::uint32_t;

/// Inline buffer for the RNIC wire header that frames each data packet.
/// Sized for rnic::WirePacket's serialized header with a little headroom.
using FrameHeader = common::SmallBytes<80>;

struct FabricConfig {
  double link_gbps = 100.0;                    // per-port line rate
  sim::DurationNs propagation = sim::usec(2);  // host -> switch -> host
  std::uint32_t mtu = 4096;                    // data-plane MTU (RoCE default-ish)
  std::uint32_t header_bytes = 58;             // per-packet wire overhead (Eth+IP+UDP+BTH)
};

struct Faults {
  double data_loss_prob = 0.0;  // i.i.d. drop probability on the data plane
  // Reordering: with probability reorder_prob a data packet is held back by a
  // uniform extra delay in (0, reorder_delay], letting later packets overtake
  // it (exercises the receiver's out-of-sequence/NAK path).
  double reorder_prob = 0.0;
  sim::DurationNs reorder_delay = sim::usec(20);
  // Extra one-way latency on the ctrl plane (slow out-of-band TCP; models a
  // congested management network without touching the data plane).
  sim::DurationNs ctrl_delay = 0;
  // i.i.d. drop probability on the ctrl plane. The base ctrl model is a
  // lossless "TCP" stream; this models the management network failing whole
  // messages (exercises the TransferMux chunk retry path). Kept at 0.0 the
  // fault draws no RNG, so the data-plane random sequence — and with it every
  // seeded baseline — is unchanged.
  double ctrl_loss_prob = 0.0;
};

/// A raw data-plane packet: an inline wire header plus a zero-copy payload
/// view. The RNIC layer owns both formats; raw senders (tests) may leave the
/// header empty and put a fully serialized frame in `body`.
struct Packet {
  Packet() = default;
  Packet(HostId s, HostId d, common::PayloadRef b)
      : src(s), dst(d), body(std::move(b)) {}
  /// Convenience for raw frames (tests): copies `payload` into `body`.
  Packet(HostId s, HostId d, const common::Bytes& payload)
      : src(s), dst(d), body(common::PayloadRef::copy_of(payload)) {}

  HostId src = 0;
  HostId dst = 0;
  FrameHeader header;
  common::PayloadRef body;

  /// Bytes this packet occupies on the wire, excluding fabric framing
  /// overhead (FabricConfig::header_bytes).
  std::size_t wire_size() const noexcept { return header.size() + body.size(); }

 private:
  friend class Fabric;
  sim::TimeNs deliver_at_ = 0;  // set by burst scheduling
};

// Per-port counters. Each attached port also registers itself with the
// process-wide obs::Registry (as "fabric.port{host=H}"), so one registry
// snapshot covers the fabric without callers touching this struct.
struct PortStats {
  std::uint64_t data_packets_tx = 0;
  std::uint64_t data_packets_rx = 0;
  std::uint64_t data_bytes_tx = 0;
  std::uint64_t data_bytes_rx = 0;
  std::uint64_t data_packets_dropped = 0;
  std::uint64_t data_packets_reordered = 0;
  std::uint64_t ctrl_messages_tx = 0;
  std::uint64_t ctrl_bytes_tx = 0;
  std::uint64_t ctrl_messages_dropped = 0;
};

class Fabric {
 public:
  using DataHandler = std::function<void(Packet&&)>;
  /// (source host, payload)
  using CtrlHandler = std::function<void(HostId, common::Bytes&&)>;

  /// One attached host port. Stable address for the fabric's lifetime
  /// (callers treat it as opaque; it is public only so Route can be).
  struct Port {
    HostId id = 0;
    sim::TimeNs egress_free_at = 0;  // when the port finishes its current tx
    bool is_partitioned = false;
    DataHandler handler;
    PortStats stats;
    std::uint64_t source_id = 0;  // obs registry source handle
  };

  /// Resolved (src, dst) fast-path handle: port pointers plus the directed
  /// link's registry counters, all hash-free on the per-packet path. Stable
  /// address for the fabric's lifetime; resolve once per connection.
  struct Route {
    Port* src = nullptr;
    Port* dst = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* packets = nullptr;
    obs::Counter* drops = nullptr;
  };

  Fabric(sim::EventLoop& loop, FabricConfig config = {}, std::uint64_t seed = 1)
      : loop_(loop), config_(config), rng_(seed) {}
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const FabricConfig& config() const noexcept { return config_; }
  sim::EventLoop& loop() noexcept { return loop_; }

  /// Attach a host. Host ids are caller-chosen and must be unique.
  common::Status attach_host(HostId host);
  bool attached(HostId host) const { return ports_.contains(host); }

  /// Install the data-plane receive handler for a host (the RNIC).
  void set_data_handler(HostId host, DataHandler handler);

  /// Register a named ctrl-plane service on a host (e.g. "migr.notify").
  void register_service(HostId host, std::string name, CtrlHandler handler);
  void unregister_service(HostId host, const std::string& name);

  /// Resolve the fast-path handle for (src, dst). Returns nullptr unless
  /// both hosts are attached. The pointer stays valid for the fabric's
  /// lifetime (ports never detach).
  Route* route(HostId src, HostId dst);

  /// Send a data-plane packet. Serialization on the source port + switch
  /// propagation; may be dropped per fault config or partition.
  void send_data(Packet packet);
  /// Fast path: same semantics through a pre-resolved route.
  void send_data(Route& r, Packet&& packet);

  /// True while the data plane has no active loss/reorder faults and no
  /// partitions — the precondition for burst coalescing.
  bool data_fast_path() const noexcept {
    return !force_slow_path_ && faults_.data_loss_prob <= 0 && faults_.reorder_prob <= 0 &&
           npartitioned_ == 0;
  }

  /// Force the per-packet send path even on a fault-free fabric. Clean runs
  /// consume no fault RNG on either path, so the determinism guard uses this
  /// to assert burst coalescing and per-packet fidelity agree observable-
  /// for-observable on one seed.
  void set_force_slow_path(bool on) noexcept { force_slow_path_ = on; }

  /// Flight recorder fed by both data paths (defaults to the process-wide
  /// one; nullptr resets to it). While the recorder is disabled the per-
  /// packet cost is a single predictable branch.
  void set_recorder(obs::FlightRecorder* rec) noexcept {
    recorder_ = rec == nullptr ? &obs::FlightRecorder::global() : rec;
  }

  /// A recycled packet vector for assembling a burst train.
  std::vector<Packet> acquire_train();
  /// Send an in-order train through one route. Egress is reserved per packet
  /// (identical serialization times to per-packet sends on an idle port) and
  /// one self-re-arming event delivers each packet at its own time,
  /// re-checking partitions per delivery. If the fast-path precondition no
  /// longer holds, degrades to per-packet send_data for full fault fidelity.
  void send_data_burst(Route& r, std::vector<Packet>&& train);

  /// Send a reliable ctrl-plane message to `service` on `dst`. Delivery is
  /// in-order per (src,dst) pair. Returns the simulated time at which the
  /// last byte leaves the source port (useful to model blocking transfers),
  /// or not_found if either endpoint is unattached (the message is dropped —
  /// callers must not mistake that for instant serialization).
  common::Result<sim::TimeNs> send_ctrl(HostId src, HostId dst, const std::string& service,
                                        common::Bytes payload);

  /// Duration to push `bytes` through one port at line rate (no queueing).
  sim::DurationNs wire_time(std::uint64_t bytes) const {
    return sim::transmit_time(bytes, config_.link_gbps);
  }

  /// When `host`'s egress port finishes serializing everything queued on it.
  /// NIC transmit schedulers pace themselves on this.
  sim::TimeNs egress_free_at(HostId host) const {
    auto it = ports_.find(host);
    return it == ports_.end() ? loop_.now() : it->second.egress_free_at;
  }
  /// Stable pointer to the same value for pacing fast paths (no hash lookup
  /// per read). nullptr if unattached.
  const sim::TimeNs* egress_clock(HostId host) const {
    auto it = ports_.find(host);
    return it == ports_.end() ? nullptr : &it->second.egress_free_at;
  }

  void set_faults(Faults f) noexcept { faults_ = f; }
  const Faults& faults() const noexcept { return faults_; }

  /// Partitioned hosts silently lose all traffic in and out (node failure).
  /// Works for not-yet-attached hosts too (the flag carries over on attach).
  void set_partitioned(HostId host, bool partitioned);
  bool partitioned(HostId host) const {
    auto it = ports_.find(host);
    if (it != ports_.end()) return it->second.is_partitioned;
    return partitioned_orphans_.contains(host);
  }

  const PortStats& stats(HostId host) const;

 private:
  /// Registry counters for one directed link (src->dst through the switch),
  /// resolved once per pair and cached for O(1) hot-path increments.
  struct LinkCounters {
    obs::Counter* bytes = nullptr;
    obs::Counter* packets = nullptr;
    obs::Counter* drops = nullptr;
  };
  LinkCounters& link_counters(HostId src, HostId dst);

  /// Reserve egress time for `wire_bytes` on `src`'s port; returns the time
  /// the last bit has been serialized.
  sim::TimeNs reserve_egress(Port& port, std::uint64_t wire_bytes);

  void deliver(Route& r, Packet&& packet);
  void deliver_burst(Route& r, std::vector<Packet>&& train, std::size_t idx);
  void recycle_train(std::vector<Packet>&& train);
  /// Append one observation to the flight recorder (caller already checked
  /// recorder_->enabled()).
  void record_packet(const Packet& p, obs::PacketVerdict verdict, sim::TimeNs at);

  sim::EventLoop& loop_;
  FabricConfig config_;
  common::Rng rng_;
  Faults faults_;
  std::unordered_map<HostId, Port> ports_;                 // node-stable addresses
  std::unordered_map<std::uint64_t, LinkCounters> links_;  // (src<<32)|dst
  std::unordered_map<std::uint64_t, Route> routes_;        // (src<<32)|dst
  std::map<std::pair<HostId, std::string>, CtrlHandler> services_;
  std::unordered_set<HostId> partitioned_orphans_;  // partitioned but unattached
  std::uint32_t npartitioned_ = 0;
  bool force_slow_path_ = false;
  obs::FlightRecorder* recorder_ = &obs::FlightRecorder::global();
  std::vector<std::vector<Packet>> train_pool_;
};

}  // namespace migr::net
