// Simulated data-center fabric.
//
// Models the paper's testbed: hosts with one NIC port each (default
// 100 Gbps, matching the ConnectX-5 testbed), connected through a single
// switch (fixed propagation delay). Two planes share each port's egress
// bandwidth:
//
//  * data plane  — RDMA packets. Subject to fault injection (loss), which
//    the "buggy network" tests (§3.4 handling) use.
//  * ctrl plane  — the out-of-band TCP the paper's live-migration tooling
//    uses (CRIU image transfer, partner notification, rkey fetch). Reliable
//    and in-order, but still pays serialization + propagation time, so the
//    "Transfer" component of blackout time is bandwidth-accurate.
//
// Hosts can be partitioned (both planes dropped) to model node failure for
// the Hadoop failover baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"

namespace migr::net {

using HostId = std::uint32_t;

struct FabricConfig {
  double link_gbps = 100.0;                    // per-port line rate
  sim::DurationNs propagation = sim::usec(2);  // host -> switch -> host
  std::uint32_t mtu = 4096;                    // data-plane MTU (RoCE default-ish)
  std::uint32_t header_bytes = 58;             // per-packet wire overhead (Eth+IP+UDP+BTH)
};

struct Faults {
  double data_loss_prob = 0.0;  // i.i.d. drop probability on the data plane
  // Reordering: with probability reorder_prob a data packet is held back by a
  // uniform extra delay in (0, reorder_delay], letting later packets overtake
  // it (exercises the receiver's out-of-sequence/NAK path).
  double reorder_prob = 0.0;
  sim::DurationNs reorder_delay = sim::usec(20);
  // Extra one-way latency on the ctrl plane (slow out-of-band TCP; models a
  // congested management network without touching the data plane).
  sim::DurationNs ctrl_delay = 0;
};

/// A raw data-plane packet. The RNIC layer owns the payload format.
struct Packet {
  HostId src = 0;
  HostId dst = 0;
  common::Bytes payload;
};

// Per-port counters. Each attached port also registers itself with the
// process-wide obs::Registry (as "fabric.port{host=H}"), so one registry
// snapshot covers the fabric without callers touching this struct.
struct PortStats {
  std::uint64_t data_packets_tx = 0;
  std::uint64_t data_packets_rx = 0;
  std::uint64_t data_bytes_tx = 0;
  std::uint64_t data_bytes_rx = 0;
  std::uint64_t data_packets_dropped = 0;
  std::uint64_t data_packets_reordered = 0;
  std::uint64_t ctrl_messages_tx = 0;
  std::uint64_t ctrl_bytes_tx = 0;
};

class Fabric {
 public:
  using DataHandler = std::function<void(Packet&&)>;
  /// (source host, payload)
  using CtrlHandler = std::function<void(HostId, common::Bytes&&)>;

  Fabric(sim::EventLoop& loop, FabricConfig config = {}, std::uint64_t seed = 1)
      : loop_(loop), config_(config), rng_(seed) {}
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const FabricConfig& config() const noexcept { return config_; }
  sim::EventLoop& loop() noexcept { return loop_; }

  /// Attach a host. Host ids are caller-chosen and must be unique.
  common::Status attach_host(HostId host);
  bool attached(HostId host) const { return ports_.contains(host); }

  /// Install the data-plane receive handler for a host (the RNIC).
  void set_data_handler(HostId host, DataHandler handler);

  /// Register a named ctrl-plane service on a host (e.g. "migr.notify").
  void register_service(HostId host, std::string name, CtrlHandler handler);
  void unregister_service(HostId host, const std::string& name);

  /// Send a data-plane packet. Serialization on the source port + switch
  /// propagation; may be dropped per fault config or partition.
  void send_data(Packet packet);

  /// Send a reliable ctrl-plane message to `service` on `dst`. Delivery is
  /// in-order per (src,dst) pair. Returns the simulated time at which the
  /// last byte leaves the source port (useful to model blocking transfers).
  sim::TimeNs send_ctrl(HostId src, HostId dst, const std::string& service,
                        common::Bytes payload);

  /// Duration to push `bytes` through one port at line rate (no queueing).
  sim::DurationNs wire_time(std::uint64_t bytes) const {
    return sim::transmit_time(bytes, config_.link_gbps);
  }

  /// When `host`'s egress port finishes serializing everything queued on it.
  /// NIC transmit schedulers pace themselves on this.
  sim::TimeNs egress_free_at(HostId host) const {
    auto it = ports_.find(host);
    return it == ports_.end() ? loop_.now() : it->second.egress_free_at;
  }

  void set_faults(Faults f) noexcept { faults_ = f; }
  const Faults& faults() const noexcept { return faults_; }

  /// Partitioned hosts silently lose all traffic in and out (node failure).
  void set_partitioned(HostId host, bool partitioned);
  bool partitioned(HostId host) const { return partitioned_.contains(host); }

  const PortStats& stats(HostId host) const;

 private:
  struct Port {
    sim::TimeNs egress_free_at = 0;  // when the port finishes its current tx
    PortStats stats;
    std::uint64_t source_id = 0;  // obs registry source handle
  };

  /// Registry counters for one directed link (src->dst through the switch),
  /// resolved once per pair and cached for O(1) hot-path increments.
  struct LinkCounters {
    obs::Counter* bytes = nullptr;
    obs::Counter* packets = nullptr;
    obs::Counter* drops = nullptr;
  };
  LinkCounters& link_counters(HostId src, HostId dst);

  /// Reserve egress time for `wire_bytes` on `src`'s port; returns the time
  /// the last bit has been serialized.
  sim::TimeNs reserve_egress(Port& port, std::uint64_t wire_bytes);

  sim::EventLoop& loop_;
  FabricConfig config_;
  common::Rng rng_;
  Faults faults_;
  std::unordered_map<HostId, Port> ports_;
  std::unordered_map<std::uint64_t, LinkCounters> links_;  // (src<<32)|dst
  std::unordered_map<HostId, DataHandler> data_handlers_;
  std::map<std::pair<HostId, std::string>, CtrlHandler> services_;
  std::unordered_set<HostId> partitioned_;
};

}  // namespace migr::net
