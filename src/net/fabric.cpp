#include "net/fabric.hpp"

#include <cstdio>
#include <utility>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace migr::net {

using common::Errc;
using common::Status;

namespace {

// The RNIC wire-header layout pinned by rnic::WirePacket::serialize_header:
// op u8 at [0], dst_qpn u32le at [1..4], src_qpn u32le at [5..8], psn u64le
// at [9..16]; 71 bytes total. net cannot depend on rnic, so the flight
// recorder peeks the three fields it needs at fixed offsets; a header of
// any other size records as "not RNIC-framed" (opcode 0xff).
constexpr std::size_t kRnicHeaderBytes = 71;

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_le32(p)) |
         (static_cast<std::uint64_t>(load_le32(p + 4)) << 32);
}

}  // namespace

void Fabric::record_packet(const Packet& p, obs::PacketVerdict verdict, sim::TimeNs at) {
  obs::PacketRecord rec;
  rec.ts_ns = at;
  rec.src = p.src;
  rec.dst = p.dst;
  rec.bytes = static_cast<std::uint32_t>(p.wire_size());
  rec.verdict = verdict;
  if (p.header.size() == kRnicHeaderBytes) {
    const std::uint8_t* h = p.header.data();
    rec.opcode = h[0];
    rec.qpn = load_le32(h + 1);
    rec.psn = load_le64(h + 9);
  }
  recorder_->record(rec);
}

Fabric::~Fabric() {
  for (auto& [host, port] : ports_) {
    (void)host;
    if (port.source_id != 0) obs::Registry::global().unregister_source(port.source_id);
  }
}

Status Fabric::attach_host(HostId host) {
  if (ports_.contains(host)) {
    return common::err(Errc::already_exists, "host already attached");
  }
  Port port;
  port.id = host;
  if (partitioned_orphans_.erase(host) > 0) port.is_partitioned = true;
  // Register the port's stats with the process-wide registry so one
  // snapshot covers all fabric layers; the struct stays the accessor API.
  port.source_id = obs::Registry::global().register_source(
      "fabric.port", {{"host", std::to_string(host)}}, [this, host] {
        const PortStats& s = stats(host);
        return std::vector<std::pair<std::string, double>>{
            {"data_packets_tx", static_cast<double>(s.data_packets_tx)},
            {"data_packets_rx", static_cast<double>(s.data_packets_rx)},
            {"data_bytes_tx", static_cast<double>(s.data_bytes_tx)},
            {"data_bytes_rx", static_cast<double>(s.data_bytes_rx)},
            {"data_packets_dropped", static_cast<double>(s.data_packets_dropped)},
            {"data_packets_reordered", static_cast<double>(s.data_packets_reordered)},
            {"ctrl_messages_tx", static_cast<double>(s.ctrl_messages_tx)},
            {"ctrl_bytes_tx", static_cast<double>(s.ctrl_bytes_tx)},
        };
      });
  ports_.emplace(host, std::move(port));
  return Status::ok();
}

Fabric::LinkCounters& Fabric::link_counters(HostId src, HostId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  auto it = links_.find(key);
  if (it == links_.end()) {
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"link", std::to_string(src) + "-" + std::to_string(dst)}};
    LinkCounters lc;
    lc.bytes = &reg.counter("fabric.link.bytes", labels);
    lc.packets = &reg.counter("fabric.link.packets", labels);
    lc.drops = &reg.counter("fabric.link.drops", labels);
    it = links_.emplace(key, lc).first;
  }
  return it->second;
}

void Fabric::set_data_handler(HostId host, DataHandler handler) {
  auto it = ports_.find(host);
  if (it == ports_.end()) {
    MIGR_WARN() << "data handler for unattached host " << host;
    return;
  }
  it->second.handler = std::move(handler);
}

void Fabric::register_service(HostId host, std::string name, CtrlHandler handler) {
  services_[{host, std::move(name)}] = std::move(handler);
}

void Fabric::unregister_service(HostId host, const std::string& name) {
  services_.erase({host, name});
}

Fabric::Route* Fabric::route(HostId src, HostId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  auto it = routes_.find(key);
  if (it != routes_.end()) return &it->second;
  auto src_it = ports_.find(src);
  auto dst_it = ports_.find(dst);
  if (src_it == ports_.end() || dst_it == ports_.end()) return nullptr;
  LinkCounters& lc = link_counters(src, dst);
  // ports_ and routes_ are node-based maps: element addresses survive
  // rehashing, so handing out raw pointers is safe for the fabric's lifetime.
  Route r{&src_it->second, &dst_it->second, lc.bytes, lc.packets, lc.drops};
  return &routes_.emplace(key, r).first->second;
}

sim::TimeNs Fabric::reserve_egress(Port& port, std::uint64_t wire_bytes) {
  const sim::TimeNs start = std::max(loop_.now(), port.egress_free_at);
  port.egress_free_at = start + wire_time(wire_bytes);
  return port.egress_free_at;
}

void Fabric::send_data(Packet packet) {
  Route* r = route(packet.src, packet.dst);
  if (r == nullptr) {
    MIGR_WARN() << "data packet to/from unattached host " << packet.src << "->" << packet.dst;
    return;
  }
  send_data(*r, std::move(packet));
}

void Fabric::send_data(Route& r, Packet&& packet) {
  const std::size_t frame_bytes = packet.wire_size();
  r.src->stats.data_packets_tx++;
  r.src->stats.data_bytes_tx += frame_bytes;
  r.packets->inc();
  r.bytes->inc(frame_bytes);

  // Serialization happens (and consumes bandwidth) even for packets that
  // will be dropped in the network.
  const sim::TimeNs serialized_at = reserve_egress(*r.src, frame_bytes + config_.header_bytes);
  const bool recording = recorder_->enabled();

  if (r.src->is_partitioned || r.dst->is_partitioned ||
      (faults_.data_loss_prob > 0 && rng_.chance(faults_.data_loss_prob))) {
    r.src->stats.data_packets_dropped++;
    r.drops->inc();
    if (recording) {
      const bool part = r.src->is_partitioned || r.dst->is_partitioned;
      record_packet(packet,
                    part ? obs::PacketVerdict::partitioned : obs::PacketVerdict::dropped,
                    loop_.now());
    }
    return;
  }

  sim::TimeNs deliver_at = serialized_at + config_.propagation;
  bool held_back = false;
  if (faults_.reorder_prob > 0 && faults_.reorder_delay > 0 &&
      rng_.chance(faults_.reorder_prob)) {
    // Hold this packet back so packets serialized after it can overtake it.
    deliver_at += static_cast<sim::DurationNs>(
        rng_.range(1, static_cast<std::uint64_t>(faults_.reorder_delay)));
    r.src->stats.data_packets_reordered++;
    held_back = true;
  }
  if (recording) {
    record_packet(packet,
                  held_back ? obs::PacketVerdict::reordered : obs::PacketVerdict::delivered,
                  loop_.now());
  }
  loop_.post_at(deliver_at, [this, rp = &r, packet = std::move(packet)]() mutable {
    deliver(*rp, std::move(packet));
  });
}

void Fabric::deliver(Route& r, Packet&& packet) {
  // Faults may have flipped between serialization and arrival. A packet
  // eaten mid-flight gets a second record (the send already logged it as
  // delivered/reordered) — both paths funnel through here, so the record
  // streams stay path-identical.
  if (r.src->is_partitioned || r.dst->is_partitioned) {
    if (recorder_->enabled()) {
      record_packet(packet, obs::PacketVerdict::partitioned, loop_.now());
    }
    return;
  }
  r.dst->stats.data_packets_rx++;
  r.dst->stats.data_bytes_rx += packet.wire_size();
  if (r.dst->handler) r.dst->handler(std::move(packet));
}

std::vector<Packet> Fabric::acquire_train() {
  if (train_pool_.empty()) return {};
  std::vector<Packet> train = std::move(train_pool_.back());
  train_pool_.pop_back();
  return train;
}

void Fabric::recycle_train(std::vector<Packet>&& train) {
  train.clear();
  // 128, not 32: trains stay checked out for their whole flight time, and a
  // few QPs of deep multi-packet pipeline keep >32 in the air at once —
  // every pool miss is a vector reallocation on the transmit fast path.
  if (train_pool_.size() < 128) train_pool_.push_back(std::move(train));
}

void Fabric::send_data_burst(Route& r, std::vector<Packet>&& train) {
  if (train.empty()) {
    recycle_train(std::move(train));
    return;
  }
  if (!data_fast_path()) {
    // Active faults need per-packet loss/reorder decisions in rng order.
    for (Packet& p : train) send_data(r, std::move(p));
    recycle_train(std::move(train));
    return;
  }
  const bool recording = recorder_->enabled();
  for (Packet& p : train) {
    const std::size_t frame_bytes = p.wire_size();
    r.src->stats.data_packets_tx++;
    r.src->stats.data_bytes_tx += frame_bytes;
    r.packets->inc();
    r.bytes->inc(frame_bytes);
    p.deliver_at_ =
        reserve_egress(*r.src, frame_bytes + config_.header_bytes) + config_.propagation;
    if (recording) record_packet(p, obs::PacketVerdict::delivered, loop_.now());
  }
  const sim::TimeNs first_at = train.front().deliver_at_;
  loop_.post_at(first_at, [this, rp = &r, t = std::move(train)]() mutable {
    deliver_burst(*rp, std::move(t), 0);
  });
}

void Fabric::deliver_burst(Route& r, std::vector<Packet>&& train, std::size_t idx) {
  deliver(r, std::move(train[idx]));
  const std::size_t next = idx + 1;
  if (next < train.size()) {
    const sim::TimeNs at = train[next].deliver_at_;
    loop_.post_at(at, [this, rp = &r, t = std::move(train), next]() mutable {
      deliver_burst(*rp, std::move(t), next);
    });
  } else {
    recycle_train(std::move(train));
  }
}

common::Result<sim::TimeNs> Fabric::send_ctrl(HostId src, HostId dst,
                                              const std::string& service,
                                              common::Bytes payload) {
  auto src_it = ports_.find(src);
  if (src_it == ports_.end() || !ports_.contains(dst)) {
    MIGR_WARN() << "ctrl message to/from unattached host " << src << "->" << dst;
    return common::err(Errc::not_found, "ctrl endpoint not attached");
  }
  src_it->second.stats.ctrl_messages_tx++;
  src_it->second.stats.ctrl_bytes_tx += payload.size();
  LinkCounters& link = link_counters(src, dst);
  link.packets->inc();
  link.bytes->inc(payload.size());

  // Model TCP as a stream: the message occupies the port for its full
  // length, then arrives whole after propagation. Loss is absorbed by
  // "TCP" (we don't simulate retransmits on the ctrl plane), but a
  // partition kills delivery exactly like a failed node would. With
  // ctrl_loss_prob set, whole messages vanish instead — the management
  // network failing — and retransmission becomes the caller's problem
  // (the TransferMux chunk retry loop).
  const std::uint64_t wire_bytes = payload.size() + config_.header_bytes;
  const sim::TimeNs serialized_at = reserve_egress(src_it->second, wire_bytes);
  if (faults_.ctrl_loss_prob > 0 && rng_.chance(faults_.ctrl_loss_prob)) {
    src_it->second.stats.ctrl_messages_dropped++;
    return serialized_at;  // occupied the wire, never arrives
  }
  const sim::TimeNs deliver_at = serialized_at + config_.propagation + faults_.ctrl_delay;

  // Causal piggyback: capture the sender's TraceContext and a flow id now;
  // the delivery lambda emits the flow arrow (both endpoints, so a dropped
  // or partitioned message emits neither) and installs the context around
  // the handler so responder spans parent-link back to the requester.
  auto& tracer = obs::Tracer::global();
  obs::TraceContext send_ctx;
  std::uint64_t flow_id = 0;
  if (tracer.enabled()) {
    send_ctx = tracer.context();
    flow_id = tracer.new_id();
  }

  loop_.post_at(deliver_at, [this, src, dst, service, serialized_at, send_ctx, flow_id,
                             payload = std::move(payload)]() mutable {
    if (partitioned(src) || partitioned(dst)) return;
    auto it = services_.find({dst, service});
    if (it != services_.end() && it->second) {
      auto& tr = obs::Tracer::global();
      if (flow_id != 0 && tr.enabled()) {
        char hosts[48];
        std::snprintf(hosts, sizeof hosts, "\"src\":%u,\"dst\":%u",
                      static_cast<unsigned>(src), static_cast<unsigned>(dst));
        tr.flow_start(serialized_at, service, "net.ctrl", flow_id, hosts);
        tr.flow_finish(loop_.now(), service, "net.ctrl", flow_id, hosts);
        obs::CtxScope scope(tr, send_ctx);
        it->second(src, std::move(payload));
      } else {
        it->second(src, std::move(payload));
      }
    } else {
      MIGR_DEBUG() << "ctrl message for unknown service " << service << " on host " << dst;
    }
  });
  return serialized_at;
}

void Fabric::set_partitioned(HostId host, bool partitioned) {
  auto it = ports_.find(host);
  if (it != ports_.end()) {
    if (it->second.is_partitioned == partitioned) return;
    it->second.is_partitioned = partitioned;
  } else {
    if (partitioned == partitioned_orphans_.contains(host)) return;
    if (partitioned) {
      partitioned_orphans_.insert(host);
    } else {
      partitioned_orphans_.erase(host);
    }
  }
  if (partitioned) {
    npartitioned_++;
  } else {
    npartitioned_--;
  }
}

const PortStats& Fabric::stats(HostId host) const {
  static const PortStats kEmpty{};
  auto it = ports_.find(host);
  return it == ports_.end() ? kEmpty : it->second.stats;
}

}  // namespace migr::net
