#include "net/fabric.hpp"

#include <utility>

#include "common/log.hpp"

namespace migr::net {

using common::Errc;
using common::Status;

Fabric::~Fabric() {
  for (auto& [host, port] : ports_) {
    (void)host;
    if (port.source_id != 0) obs::Registry::global().unregister_source(port.source_id);
  }
}

Status Fabric::attach_host(HostId host) {
  if (ports_.contains(host)) {
    return common::err(Errc::already_exists, "host already attached");
  }
  Port port;
  // Register the port's stats with the process-wide registry so one
  // snapshot covers all fabric layers; the struct stays the accessor API.
  port.source_id = obs::Registry::global().register_source(
      "fabric.port", {{"host", std::to_string(host)}}, [this, host] {
        const PortStats& s = stats(host);
        return std::vector<std::pair<std::string, double>>{
            {"data_packets_tx", static_cast<double>(s.data_packets_tx)},
            {"data_packets_rx", static_cast<double>(s.data_packets_rx)},
            {"data_bytes_tx", static_cast<double>(s.data_bytes_tx)},
            {"data_bytes_rx", static_cast<double>(s.data_bytes_rx)},
            {"data_packets_dropped", static_cast<double>(s.data_packets_dropped)},
            {"data_packets_reordered", static_cast<double>(s.data_packets_reordered)},
            {"ctrl_messages_tx", static_cast<double>(s.ctrl_messages_tx)},
            {"ctrl_bytes_tx", static_cast<double>(s.ctrl_bytes_tx)},
        };
      });
  ports_.emplace(host, std::move(port));
  return Status::ok();
}

Fabric::LinkCounters& Fabric::link_counters(HostId src, HostId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  auto it = links_.find(key);
  if (it == links_.end()) {
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"link", std::to_string(src) + "-" + std::to_string(dst)}};
    LinkCounters lc;
    lc.bytes = &reg.counter("fabric.link.bytes", labels);
    lc.packets = &reg.counter("fabric.link.packets", labels);
    lc.drops = &reg.counter("fabric.link.drops", labels);
    it = links_.emplace(key, lc).first;
  }
  return it->second;
}

void Fabric::set_data_handler(HostId host, DataHandler handler) {
  data_handlers_[host] = std::move(handler);
}

void Fabric::register_service(HostId host, std::string name, CtrlHandler handler) {
  services_[{host, std::move(name)}] = std::move(handler);
}

void Fabric::unregister_service(HostId host, const std::string& name) {
  services_.erase({host, name});
}

sim::TimeNs Fabric::reserve_egress(Port& port, std::uint64_t wire_bytes) {
  const sim::TimeNs start = std::max(loop_.now(), port.egress_free_at);
  port.egress_free_at = start + wire_time(wire_bytes);
  return port.egress_free_at;
}

void Fabric::send_data(Packet packet) {
  auto src_it = ports_.find(packet.src);
  auto dst_it = ports_.find(packet.dst);
  if (src_it == ports_.end() || dst_it == ports_.end()) {
    MIGR_WARN() << "data packet to/from unattached host " << packet.src << "->" << packet.dst;
    return;
  }
  const std::uint64_t wire_bytes = packet.payload.size() + config_.header_bytes;
  src_it->second.stats.data_packets_tx++;
  src_it->second.stats.data_bytes_tx += packet.payload.size();
  LinkCounters& link = link_counters(packet.src, packet.dst);
  link.packets->inc();
  link.bytes->inc(packet.payload.size());

  // Serialization happens (and consumes bandwidth) even for packets that
  // will be dropped in the network.
  const sim::TimeNs serialized_at = reserve_egress(src_it->second, wire_bytes);

  if (partitioned_.contains(packet.src) || partitioned_.contains(packet.dst) ||
      (faults_.data_loss_prob > 0 && rng_.chance(faults_.data_loss_prob))) {
    src_it->second.stats.data_packets_dropped++;
    link.drops->inc();
    return;
  }

  sim::TimeNs deliver_at = serialized_at + config_.propagation;
  if (faults_.reorder_prob > 0 && faults_.reorder_delay > 0 &&
      rng_.chance(faults_.reorder_prob)) {
    // Hold this packet back so packets serialized after it can overtake it.
    deliver_at += static_cast<sim::DurationNs>(
        rng_.range(1, static_cast<std::uint64_t>(faults_.reorder_delay)));
    src_it->second.stats.data_packets_reordered++;
  }
  loop_.schedule_at(deliver_at, [this, packet = std::move(packet)]() mutable {
    if (partitioned_.contains(packet.src) || partitioned_.contains(packet.dst)) return;
    auto port_it = ports_.find(packet.dst);
    if (port_it != ports_.end()) {
      port_it->second.stats.data_packets_rx++;
      port_it->second.stats.data_bytes_rx += packet.payload.size();
    }
    auto it = data_handlers_.find(packet.dst);
    if (it != data_handlers_.end() && it->second) it->second(std::move(packet));
  });
}

sim::TimeNs Fabric::send_ctrl(HostId src, HostId dst, const std::string& service,
                              common::Bytes payload) {
  auto src_it = ports_.find(src);
  if (src_it == ports_.end() || !ports_.contains(dst)) {
    MIGR_WARN() << "ctrl message to/from unattached host " << src << "->" << dst;
    return loop_.now();
  }
  src_it->second.stats.ctrl_messages_tx++;
  src_it->second.stats.ctrl_bytes_tx += payload.size();
  LinkCounters& link = link_counters(src, dst);
  link.packets->inc();
  link.bytes->inc(payload.size());

  // Model TCP as a stream: the message occupies the port for its full
  // length, then arrives whole after propagation. Loss is absorbed by
  // "TCP" (we don't simulate retransmits on the ctrl plane), but a
  // partition kills delivery exactly like a failed node would.
  const std::uint64_t wire_bytes = payload.size() + config_.header_bytes;
  const sim::TimeNs serialized_at = reserve_egress(src_it->second, wire_bytes);
  const sim::TimeNs deliver_at = serialized_at + config_.propagation + faults_.ctrl_delay;

  loop_.schedule_at(deliver_at, [this, src, dst, service, payload = std::move(payload)]() mutable {
    if (partitioned_.contains(src) || partitioned_.contains(dst)) return;
    auto it = services_.find({dst, service});
    if (it != services_.end() && it->second) {
      it->second(src, std::move(payload));
    } else {
      MIGR_DEBUG() << "ctrl message for unknown service " << service << " on host " << dst;
    }
  });
  return serialized_at;
}

void Fabric::set_partitioned(HostId host, bool partitioned) {
  if (partitioned) {
    partitioned_.insert(host);
  } else {
    partitioned_.erase(host);
  }
}

const PortStats& Fabric::stats(HostId host) const {
  static const PortStats kEmpty{};
  auto it = ports_.find(host);
  return it == ports_.end() ? kEmpty : it->second.stats;
}

}  // namespace migr::net
