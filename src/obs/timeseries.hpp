// Sim-time time-series sampler over the metrics registry.
//
// sample(now_ns) snapshots the registry and appends one row per call; the
// accumulated rows export as CSV (one column per instrument, sorted by
// name) or JSON ({"series":[{name, points:[[ts,v],...]},...]}). The paper's
// throughput-over-time figures (Fig. 5's brownout dips, the drain egress
// curves) come straight out of this.
//
// Layering: obs cannot see the event loop, so the sampler is caller-driven
// — tools and benches wire `loop.schedule_every(interval, [&]{
// sampler.sample(loop.now()); })` and write the file at exit. Instruments
// that appear mid-run (a guest's counters materializing when it starts)
// simply begin contributing from the first row that saw them; earlier rows
// render empty CSV cells for those columns.
//
// Histograms contribute two columns: `<name>` (running mean) and
// `<name>.count`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/metrics.hpp"

namespace migr::obs {

class TimeSeriesSampler {
 public:
  struct Options {
    /// Only instruments whose rendered name starts with one of these
    /// prefixes are sampled; empty samples everything.
    std::vector<std::string> prefixes;
  };

  explicit TimeSeriesSampler(Registry& registry = Registry::global(), Options opts = {})
      : registry_(registry), opts_(std::move(opts)) {}
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Take one sample at sim time `now_ns`.
  void sample(std::int64_t now_ns);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t series() const noexcept { return columns_.size(); }
  void clear();

  std::string export_csv() const;
  std::string export_json() const;
  /// Writes CSV or JSON depending on the path's extension (.json = JSON).
  common::Status write(const std::string& path) const;

 private:
  struct Row {
    std::int64_t ts_ns = 0;
    std::vector<std::pair<std::uint32_t, double>> values;  // (column id, value)
  };

  std::uint32_t column_id(const std::string& name);
  bool matches(const std::string& name) const;

  Registry& registry_;
  Options opts_;
  std::map<std::string, std::uint32_t> columns_;  // name -> id, sorted
  std::vector<Row> rows_;
};

}  // namespace migr::obs
