// Blackout critical-path attribution (DESIGN.md §16).
//
// During a migration (or FT failover) the instrumented layers record *causal
// intervals* — [start, end] spans of sim time during which one named
// dependency was the reason forward progress had to wait: a checkpoint dump,
// one chunk's time on the wire, a retry backoff, a restore step, a partner
// QP re-establishment round-trip. CriticalPath::resolve() then walks the
// interval set backwards from the window end (resume_at) to its start
// (freeze_at, or killed_at for failover), at each step choosing the interval
// that reaches the cursor and jumping to its start; uncovered gaps become
// `slack` edges. The result is a chain of edges that tiles the window
// exactly — sum(edge durations) == window length *by construction* — so
// every nanosecond of service_blackout() is attributed to a named edge
// class, and the per-class totals are a lossless decomposition CI can pin.
//
// The recorder is plain vector appends of already-known sim times: with the
// feature off nothing is collected, and with it on the simulation timeline
// is untouched (no clocks read, no events scheduled, no RNG drawn) — the
// determinism tests pin critical-path-on == critical-path-off byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace migr::obs {

/// Named classes of blackout time. Keep in sync with edge_class_name(),
/// DESIGN.md §16, and tools/validate_artifacts.py.
enum class EdgeClass : std::uint8_t {
  wbs_wait = 0,     // wait-before-stop quiesce that leaked into the blackout
  ckpt_dump,        // checkpoint dump (RDMA + other resource serialization)
  chunk_wire,       // image bytes in flight: a delivered transfer attempt
  chunk_retry,      // lost transfer attempt + its retry backoff
  restore_apply,    // destination applying the image (CRIU-style restore)
  qp_reestablish,   // RDMA restore + partner QP switch round-trips
  ctrl_rtt,         // control-plane round-trips (e.g. failure detection)
  scheduler_hold,   // transfer pacing / stream serialization hold
  slack,            // window time no recorded interval explains
};

inline constexpr std::size_t kEdgeClassCount = static_cast<std::size_t>(EdgeClass::slack) + 1;

const char* edge_class_name(EdgeClass cls);

/// One recorded causal interval (recorder input).
struct CpInterval {
  std::int64_t start = 0;
  std::int64_t end = 0;
  EdgeClass cls = EdgeClass::slack;
  std::string label;  // short detail, e.g. "chunk 3 try 2"
};

/// One edge on the resolved path (tiles the window, in time order).
struct CpEdge {
  std::int64_t start = 0;
  std::int64_t end = 0;
  EdgeClass cls = EdgeClass::slack;
  std::string label;
  std::int64_t dur() const noexcept { return end - start; }
};

/// The resolved attribution for one blackout window.
struct CriticalPath {
  bool valid = false;
  std::int64_t window_start = 0;
  std::int64_t window_end = 0;
  std::vector<CpEdge> edges;                      // tile [window_start, window_end]
  std::int64_t by_class[kEdgeClassCount] = {};    // per-class totals; sum == total()

  std::int64_t total() const noexcept { return window_end - window_start; }
  /// Largest non-slack class (ties broken by enum order); slack only when
  /// nothing else was recorded.
  EdgeClass dominant() const noexcept;
  /// JSON object: {"window_start_ns":..,"window_end_ns":..,"total_ns":..,
  ///  "dominant":"..","by_class":{..all classes..},"edges":[..]}
  std::string json() const;
};

/// Interval collector fed directly by the instrumented layers (migration
/// controller, transfer mux, FT controller). Disabled, add() is a no-op.
class CpRecorder {
 public:
  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void add(std::int64_t start, std::int64_t end, EdgeClass cls, std::string label = {}) {
    if (!enabled_ || end <= start) return;
    intervals_.push_back(CpInterval{start, end, cls, std::move(label)});
  }

  void clear() { intervals_.clear(); }
  const std::vector<CpInterval>& intervals() const noexcept { return intervals_; }

  /// Backward-walk the recorded intervals over [window_start, window_end].
  /// Always returns a tiling of the window (slack fills gaps); valid=false
  /// only for an empty/inverted window.
  CriticalPath resolve(std::int64_t window_start, std::int64_t window_end) const;

 private:
  bool enabled_ = false;
  std::vector<CpInterval> intervals_;
};

}  // namespace migr::obs
