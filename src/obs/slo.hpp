// Declarative SLO engine over the SLI window stream.
//
// An SLO spec is a compact string (CLI-friendly, documented in DESIGN.md
// §12):
//
//     spec  := rule (';' rule)*
//     rule  := field (',' field)*
//     field := name=<id>                      (default: the objective text)
//            | p50<DUR | p99<DUR | p999<DUR  (latency objective)
//            | goodput>RATE                  (throughput objective)
//            | retx_rate<NUM                 (retransmits per second)
//            | budget=FRACTION               (error budget, default 0.05)
//            | fast=DUR | slow=DUR           (burn windows, 500us / 5ms)
//            | burn=FACTOR                   (alert threshold, default 2)
//
//     DUR   := <number>(ns|us|ms|s)          RATE := <number>(bps|kbps|mbps|gbps)
//
// e.g.  --slo 'p99<60us,budget=0.05,fast=400us,slow=4ms,burn=2;goodput>1gbps'
//
// Evaluation is the multi-window burn-rate scheme from SRE practice: each
// closed SLI window is judged good or bad against the objective, good/bad
// *time* (duration-weighted — windows vary in length at phase boundaries)
// accumulates into two trailing windows, and
//
//     burn = (bad_time / total_time) / error_budget
//
// An alert fires when burn >= threshold over BOTH the fast and the slow
// trailing window (fast gives detection latency, slow suppresses blips),
// and resolves when the fast burn falls back below the threshold. Windows
// with no signal (no messages, not frozen) are skipped; *frozen* windows
// are unconditionally bad — a frozen service is failing its objective.
//
// Alerts land in three places: the alert log (the query surface below),
// the tracer ("slo" category instants), and the registry
// (slo.alerts{rule=...} counters). The scheduler consults burning() to
// defer migrations for tenants already eating their budget.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sli.hpp"
#include "sim/time.hpp"

namespace migr::obs {

struct SloRule {
  enum class Metric : std::uint8_t { p50, p99, p999, goodput, retx_rate };

  std::string name;          // label for alerts/metrics
  Metric metric = Metric::p99;
  bool want_below = true;    // objective: value < bound (false: value > bound)
  double bound = 0;          // ns, bps, or events/s depending on metric
  double budget = 0.05;      // allowed bad-time fraction
  sim::DurationNs fast = sim::usec(500);
  sim::DurationNs slow = sim::msec(5);
  double burn_threshold = 2.0;

  std::string json() const;
};

/// Parse an SLO spec string. Returns false and sets *err on malformed input.
bool parse_slo_spec(std::string_view spec, std::vector<SloRule>* out, std::string* err);

struct SloAlert {
  std::uint32_t guest = 0;
  std::string rule;
  sim::TimeNs fired_at = 0;
  sim::TimeNs resolved_at = -1;  // -1: still active
  double burn_fast = 0;          // at fire time
  double burn_slow = 0;

  bool active() const noexcept { return resolved_at < 0; }
};

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloRule> rules);

  /// Judge one closed SLI window (called by SliHub).
  void on_window(std::uint32_t guest, const SliWindow& w);

  // -- Query surface -------------------------------------------------------
  const std::vector<SloRule>& rules() const noexcept { return rules_; }
  const std::vector<SloAlert>& alerts() const noexcept { return alerts_; }
  /// Any rule currently alerting for this guest?
  bool burning(std::uint32_t guest) const;
  /// Current fast-window burn rate (max across rules) for a guest.
  double burn_rate(std::uint32_t guest) const;
  std::size_t active_alert_count() const;

 private:
  struct Burn {
    // Trailing good/bad time, evicted past the slow horizon.
    struct Slot {
      sim::TimeNs end;
      sim::DurationNs dur;
      sim::DurationNs bad;
    };
    std::deque<Slot> slots;
    bool alerting = false;
    std::size_t alert_ix = 0;  // into alerts_ while alerting
  };

  /// true = good, false = bad; no value = no signal, skip.
  bool judge(const SloRule& r, const SliWindow& w, bool* has_signal) const;
  double burn_over(const Burn& b, sim::TimeNs now, sim::DurationNs horizon,
                   double budget) const;

  std::vector<SloRule> rules_;
  // state[(guest, rule index)]
  std::map<std::pair<std::uint32_t, std::size_t>, Burn> state_;
  std::vector<SloAlert> alerts_;
};

/// The versioned SLO/SLI artifact ("kind":"slo_report","version":1):
/// rules, per-guest window timelines + brownout attribution, and the alert
/// log. `scenario` labels the run; `extra_json` is an optional object
/// *fragment* (e.g. a policy-comparison section) spliced into the root.
std::string export_slo_json(SliHub& hub, const SloEngine* engine,
                            const std::string& scenario,
                            const std::string& extra_json = {});

}  // namespace migr::obs
