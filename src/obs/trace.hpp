// Sim-time phase tracer: begin/end spans and instant events stamped with
// simulated nanoseconds, kept in a bounded ring buffer and exportable as
// Chrome trace-event JSON (load the file in about://tracing or
// https://ui.perfetto.dev).
//
// Beyond flat spans, the tracer records a *causal event graph*: spans carry
// stable ids and parent links (exported inside args as "id"/"parent"), and
// flow events (Chrome phases 's'/'f') draw requester→responder arrows across
// hosts. A TraceContext — (trace_id, span_id) of the currently-executing
// causal scope — is kept on the tracer and piggybacked on fabric ctrl
// messages: the fabric captures the sender's context, and sets it around the
// receiver's handler so responder spans parent-link back to the requester
// (DESIGN.md §16).
//
// Library code emits with an explicit timestamp (every layer has the event
// loop at hand), so recording never reads a clock. The RAII ObsSpan helper
// covers the synchronous case by reading the tracer's bound SimTimeSource —
// useful for spans whose cost is charged while sim time advances underneath
// (e.g. a bench section), not for zero-duration callback bodies.
//
// Memory is bounded: the ring holds at most capacity events. Overflow either
// drops the oldest (counted in the `obs.trace.dropped` metric) or — with an
// incremental spill path configured — appends the full buffer to the spill
// file and clears the ring, so arbitrarily long drains keep every event on
// disk with O(capacity) memory. The spill file is kept valid JSON after
// every batch (the closing "]}"" is rewound and rewritten), so an aborted
// run still leaves a loadable trace.
//
// Off by default: nothing is recorded until set_enabled(true), so the hot
// path pays one predictable branch when tracing is off. The compile-time
// MIGR_OBS_DISABLED switch removes even that.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace migr::obs {

struct TraceEvent {
  enum class Phase : char {
    begin = 'B',
    end = 'E',
    instant = 'i',
    complete = 'X',
    flow_start = 's',
    flow_finish = 'f',
  };
  Phase ph = Phase::instant;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;        // complete events only
  std::uint64_t id = 0;           // span id / flow id; 0 = unassigned
  std::uint64_t parent = 0;       // parent span id; 0 = root
  std::string name;
  std::string cat;   // one Perfetto track per category
  std::string args;  // extra JSON object *fragment*, e.g. "\"qpn\":77"
};

/// Causal scope carried across ctrl messages: the trace (one per migration /
/// failover / workflow) and the span whose work caused the current code to
/// run. (0,0) = no active scope.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const noexcept { return span_id != 0; }
};

class Tracer {
 public:
  /// The process-wide tracer every layer emits to by default.
  static Tracer& global();

  explicit Tracer(std::size_t capacity = kDefaultCapacity);
  ~Tracer();

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept {
#ifndef MIGR_OBS_DISABLED
    return enabled_;
#else
    return false;
#endif
  }

  /// Clock used by ObsSpan (and by callers without a loop reference). The
  /// source must outlive the tracer binding; rebind or pass nullptr to
  /// detach. Explicit-timestamp emission never touches it.
  void set_clock(const common::SimTimeSource* clock) noexcept { clock_ = clock; }
  const common::SimTimeSource* clock() const noexcept { return clock_; }

  /// Drops all recorded events and resizes the ring (`trace_max_events`).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const noexcept { return capacity_; }

  /// Deterministic monotonic id source for spans and flows. Never returns 0.
  std::uint64_t new_id() noexcept { return ++next_id_; }

  /// Current causal scope; set/restored by the fabric around ctrl-message
  /// handlers and by controllers around phase work. Emitters read it to
  /// parent-link their spans.
  TraceContext context() const noexcept { return ctx_; }
  void set_context(TraceContext ctx) noexcept { ctx_ = ctx; }
  void clear_context() noexcept { ctx_ = {}; }

  void begin(std::int64_t ts_ns, std::string_view name, std::string_view cat,
             std::string args = {});
  void end(std::int64_t ts_ns, std::string_view name, std::string_view cat);
  void complete(std::int64_t ts_ns, std::int64_t dur_ns, std::string_view name,
                std::string_view cat, std::string args = {}, std::uint64_t id = 0,
                std::uint64_t parent = 0);
  void instant(std::int64_t ts_ns, std::string_view name, std::string_view cat,
               std::string args = {}, std::uint64_t id = 0, std::uint64_t parent = 0);
  /// Flow arrow endpoints: a 's' at the send side and a 'f' with the same
  /// flow id at the receive side. Emit both or neither (a dropped message
  /// emits neither), so every pair in the artifact matches.
  void flow_start(std::int64_t ts_ns, std::string_view name, std::string_view cat,
                  std::uint64_t flow_id, std::string args = {});
  void flow_finish(std::int64_t ts_ns, std::string_view name, std::string_view cat,
                   std::uint64_t flow_id, std::string args = {});

  /// Events currently held, oldest first. Ring overflow drops the oldest.
  std::vector<TraceEvent> events() const;
  std::size_t size() const noexcept { return buf_.size(); }
  std::uint64_t total_emitted() const noexcept { return total_; }
  /// Events no longer in memory: evicted (lost) plus spilled (on disk).
  std::uint64_t dropped() const noexcept { return total_ - spilled_ - buf_.size(); }
  std::uint64_t spilled() const noexcept { return spilled_; }
  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}). Timestamps are in
  /// microseconds as the format requires; each event's args carry the exact
  /// ts_ns (and dur_ns for spans) so tools can recover full precision.
  std::string export_chrome_json() const;
  common::Status write_chrome_json(const std::string& path);

  /// Bounded-memory mode: when the ring fills, append the buffer to `path`
  /// and clear it instead of evicting. The file is valid Chrome JSON after
  /// every spill. write_chrome_json(path) / flush() to the same path spill
  /// the remainder and finalize. Pass "" to disable.
  common::Status set_incremental_path(const std::string& path);
  bool incremental() const noexcept { return inc_file_ != nullptr; }

  /// Abort safety net: with a flush path configured, flush() rewrites the
  /// full buffer to that file as a complete, well-formed Chrome trace.
  /// Abort paths (migration abort/failure, ScenarioRunner teardown) call it
  /// so a run that never reaches its normal exit still leaves a loadable
  /// trace behind. Tools set the path as soon as they enable tracing;
  /// repeated flushes simply overwrite with a more complete buffer.
  void set_flush_path(std::string path) { flush_path_ = std::move(path); }
  const std::string& flush_path() const noexcept { return flush_path_; }
  /// Write the buffer to the flush path; ok() no-op when no path is set.
  common::Status flush();

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  void push(TraceEvent ev);
  void append_event_json(std::string& out, const TraceEvent& ev,
                         std::map<std::string, int>& tids, bool& first) const;
  common::Status spill_buffer();
  void close_incremental();

  bool enabled_ = false;
  const common::SimTimeSource* clock_ = nullptr;
  std::string flush_path_;
  std::vector<TraceEvent> buf_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once the ring has wrapped
  std::uint64_t total_ = 0;
  std::uint64_t next_id_ = 0;
  TraceContext ctx_;
  // Incremental spill state: open file, category→tid map persisted across
  // batches, and whether any event has been written yet.
  std::FILE* inc_file_ = nullptr;
  std::string inc_path_;
  std::map<std::string, int> inc_tids_;
  bool inc_first_ = true;
  std::uint64_t spilled_ = 0;
};

/// RAII span against the tracer's bound clock: records a complete event
/// covering [construction, destruction] in sim time. No-op when tracing is
/// off or no clock is bound.
class ObsSpan {
 public:
  ObsSpan(Tracer& tracer, std::string name, std::string cat, std::string args = {})
      : tracer_(tracer), name_(std::move(name)), cat_(std::move(cat)),
        args_(std::move(args)) {
    active_ = tracer_.enabled() && tracer_.clock() != nullptr;
    if (active_) start_ns_ = tracer_.clock()->now_ns();
  }
  ~ObsSpan() {
    if (active_) {
      const std::int64_t end_ns = tracer_.clock()->now_ns();
      tracer_.complete(start_ns_, end_ns - start_ns_, name_, cat_, std::move(args_));
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  Tracer& tracer_;
  std::string name_;
  std::string cat_;
  std::string args_;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
};

/// RAII causal scope: installs a TraceContext on the tracer and restores the
/// previous one on exit. Controllers wrap phase work in one so ctrl sends
/// (and the responder spans they cause) link back to the phase span.
class CtxScope {
 public:
  CtxScope(Tracer& tracer, TraceContext ctx) : tracer_(tracer), prev_(tracer.context()) {
    tracer_.set_context(ctx);
  }
  ~CtxScope() { tracer_.set_context(prev_); }
  CtxScope(const CtxScope&) = delete;
  CtxScope& operator=(const CtxScope&) = delete;

 private:
  Tracer& tracer_;
  TraceContext prev_;
};

}  // namespace migr::obs
