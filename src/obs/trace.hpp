// Sim-time phase tracer: begin/end spans and instant events stamped with
// simulated nanoseconds, kept in a bounded ring buffer and exportable as
// Chrome trace-event JSON (load the file in about://tracing or
// https://ui.perfetto.dev).
//
// Library code emits with an explicit timestamp (every layer has the event
// loop at hand), so recording never reads a clock. The RAII ObsSpan helper
// covers the synchronous case by reading the tracer's bound SimTimeSource —
// useful for spans whose cost is charged while sim time advances underneath
// (e.g. a bench section), not for zero-duration callback bodies.
//
// Off by default: nothing is recorded until set_enabled(true), so the hot
// path pays one predictable branch when tracing is off. The compile-time
// MIGR_OBS_DISABLED switch removes even that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace migr::obs {

struct TraceEvent {
  enum class Phase : char { begin = 'B', end = 'E', instant = 'i', complete = 'X' };
  Phase ph = Phase::instant;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  // complete events only
  std::string name;
  std::string cat;   // one Perfetto track per category
  std::string args;  // extra JSON object *fragment*, e.g. "\"qpn\":77"
};

class Tracer {
 public:
  /// The process-wide tracer every layer emits to by default.
  static Tracer& global();

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept {
#ifndef MIGR_OBS_DISABLED
    return enabled_;
#else
    return false;
#endif
  }

  /// Clock used by ObsSpan (and by callers without a loop reference). The
  /// source must outlive the tracer binding; rebind or pass nullptr to
  /// detach. Explicit-timestamp emission never touches it.
  void set_clock(const common::SimTimeSource* clock) noexcept { clock_ = clock; }
  const common::SimTimeSource* clock() const noexcept { return clock_; }

  /// Drops all recorded events and resizes the ring.
  void set_capacity(std::size_t capacity);

  void begin(std::int64_t ts_ns, std::string_view name, std::string_view cat,
             std::string args = {});
  void end(std::int64_t ts_ns, std::string_view name, std::string_view cat);
  void complete(std::int64_t ts_ns, std::int64_t dur_ns, std::string_view name,
                std::string_view cat, std::string args = {});
  void instant(std::int64_t ts_ns, std::string_view name, std::string_view cat,
               std::string args = {});

  /// Events currently held, oldest first. Ring overflow drops the oldest.
  std::vector<TraceEvent> events() const;
  std::size_t size() const noexcept { return buf_.size(); }
  std::uint64_t total_emitted() const noexcept { return total_; }
  std::uint64_t dropped() const noexcept { return total_ - buf_.size(); }
  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}). Timestamps are in
  /// microseconds as the format requires; each event's args carry the exact
  /// ts_ns (and dur_ns for spans) so tools can recover full precision.
  std::string export_chrome_json() const;
  common::Status write_chrome_json(const std::string& path) const;

  /// Abort safety net: with a flush path configured, flush() rewrites the
  /// full buffer to that file as a complete, well-formed Chrome trace.
  /// Abort paths (migration abort/failure, ScenarioRunner teardown) call it
  /// so a run that never reaches its normal exit still leaves a loadable
  /// trace behind. Tools set the path as soon as they enable tracing;
  /// repeated flushes simply overwrite with a more complete buffer.
  void set_flush_path(std::string path) { flush_path_ = std::move(path); }
  const std::string& flush_path() const noexcept { return flush_path_; }
  /// Write the buffer to the flush path; ok() no-op when no path is set.
  common::Status flush() const;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  void push(TraceEvent ev);

  bool enabled_ = false;
  const common::SimTimeSource* clock_ = nullptr;
  std::string flush_path_;
  std::vector<TraceEvent> buf_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once the ring has wrapped
  std::uint64_t total_ = 0;
};

/// RAII span against the tracer's bound clock: records a complete event
/// covering [construction, destruction] in sim time. No-op when tracing is
/// off or no clock is bound.
class ObsSpan {
 public:
  ObsSpan(Tracer& tracer, std::string name, std::string cat, std::string args = {})
      : tracer_(tracer), name_(std::move(name)), cat_(std::move(cat)),
        args_(std::move(args)) {
    active_ = tracer_.enabled() && tracer_.clock() != nullptr;
    if (active_) start_ns_ = tracer_.clock()->now_ns();
  }
  ~ObsSpan() {
    if (active_) {
      const std::int64_t end_ns = tracer_.clock()->now_ns();
      tracer_.complete(start_ns_, end_ns - start_ns_, name_, cat_, std::move(args_));
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  Tracer& tracer_;
  std::string name_;
  std::string cat_;
  std::string args_;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace migr::obs
