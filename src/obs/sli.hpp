// Per-guest service-level-indicator pipeline: the brownout counterpart to
// the blackout waterfall.
//
// The waterfall (PR 5) attributes the *frozen* gap; this layer measures the
// degraded-but-alive service around it. Applications tap two things into
// the hub — message RTTs (post -> completion, no wire change) and delivered
// payload bytes — and each guest registers a retransmit counter source
// polled from the transport. The hub aggregates them into tumbling sim-time
// windows (p50/p99/p999 latency via obs::Histogram, goodput, retransmit
// rate), and tags every window with the guest's current migration phase:
//
//     idle -> precopy(iter k) -> frozen -> recovery -> idle
//
// Phase transitions force window boundaries, so the frozen windows tile
// [freeze_at, resume_at] exactly — the brownout timeline composes with the
// blackout waterfall instead of sampling across it. Stretches with no
// traffic collapse into a single (empty) window; the timeline still tiles.
//
// Window closure is lazy and observation/query-driven: the obs layer never
// schedules events on the loop (that would perturb the simulation), so a
// window closes when a later observation, a phase hook, or a flush() pushes
// time past its end — the same caller-driven discipline as TimeSeriesSampler.
//
// Cost discipline: SliHub is a global() singleton like Tracer/Registry.
// Disabled (the default), the data-path cost is one branch per message at
// the tap site (apps keep a null GuestSli*); MIGR_OBS_DISABLED compiles the
// taps out entirely. Enabled, a sample is histogram-bucket arithmetic on
// preallocated memory; allocation happens only when a window closes (the
// summary vector grows) — never per message.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "sim/time.hpp"

namespace migr::obs {

class SloEngine;

/// What the guest's service was doing while a window accumulated.
/// `postcopy` is the degraded-but-alive stretch after a post-copy resume,
/// while missing pages still demand-fault back from the source; it sits
/// between frozen and recovery in the episode timeline. `ft_buffered` is
/// the continuous-FT steady state: the service runs, but egress is held in
/// the output-commit queue until the covering checkpoint epoch is ACKed —
/// brownout attribution shows the output-commit tax as this phase.
enum class ServicePhase : std::uint8_t { idle, precopy, frozen, recovery, postcopy, ft_buffered };

const char* service_phase_name(ServicePhase p) noexcept;

/// One closed tumbling window of a guest's service quality.
struct SliWindow {
  sim::TimeNs start = 0;
  sim::TimeNs end = 0;  // exclusive; windows tile, next.start == this.end
  ServicePhase phase = ServicePhase::idle;
  std::int32_t precopy_iter = -1;  // 0-based iteration; -1 outside precopy

  std::uint64_t msgs = 0;         // RTT samples in the window
  std::uint64_t bytes = 0;        // delivered payload bytes
  std::uint64_t retransmits = 0;  // transport retransmits (counter delta)

  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t max_ns = 0;

  sim::DurationNs duration() const noexcept { return end - start; }
  /// Delivered application bytes per second over the window.
  double goodput_bps() const noexcept;
  /// Retransmits per second over the window.
  double retx_rate() const noexcept;
};

/// The migration-aware brownout attribution attached to MigrationReport:
/// what the migration cost the *running* service, phase by phase.
struct BrownoutAttribution {
  bool valid = false;  // false when SLI was off or the guest is unknown

  sim::TimeNs migration_start = 0;
  sim::TimeNs freeze_at = 0;
  sim::TimeNs resume_at = 0;

  // Pre-migration idle baseline the costs are measured against.
  std::int64_t baseline_p99_ns = 0;
  double baseline_goodput_bps = 0;

  /// Integral over [migration_start, resume_at + recovery] of
  /// max(0, baseline_goodput - goodput) dt — application bytes the
  /// migration cost the service.
  double goodput_loss_bytes = 0;

  /// p99 per pre-copy iteration, and its inflation over the baseline.
  struct IterInflation {
    std::int32_t iter = 0;
    std::int64_t p99_ns = 0;
    double inflation = 0;  // p99 / baseline_p99 (0 when no baseline)
  };
  std::vector<IterInflation> precopy_p99;

  /// Time from resume until the first window whose p99 is back within
  /// recovery_factor of the baseline. -1 while recovery is still pending.
  sim::DurationNs recovery_ns = -1;

  /// JSON object fragment for artifact/report embedding.
  std::string json() const;
};

struct SliConfig {
  sim::DurationNs window = sim::usec(200);  // tumbling window length
  double recovery_factor = 1.5;  // p99 <= baseline*factor ends recovery
  std::uint64_t min_recovery_msgs = 4;  // windows thinner than this can't end it
};

class SliHub;

/// Per-guest SLI state. Resolve once via SliHub::guest() and keep the
/// pointer (stable for the hub's lifetime) — the data-path taps are then a
/// null check away, mirroring the registry's resolve-once discipline.
class GuestSli {
 public:
  /// Message RTT sample at sim-time `now`.
  void rtt(sim::TimeNs now, sim::DurationNs rtt_ns);
  /// Payload delivery of `bytes` at sim-time `now`.
  void delivered(sim::TimeNs now, std::uint64_t bytes);

  const std::vector<SliWindow>& windows() const noexcept { return closed_; }
  ServicePhase phase() const noexcept { return phase_; }

 private:
  friend class SliHub;
  GuestSli(SliHub& hub, std::uint32_t id, const SliConfig& cfg, sim::TimeNs now);

  void set_phase(sim::TimeNs now, ServicePhase p, std::int32_t iter);
  /// Close full windows until `now` falls inside the live window.
  void roll_to(sim::TimeNs now);
  /// Close the live window at exactly `at` (phase boundary / flush).
  void close_at(sim::TimeNs at);
  void emit(sim::TimeNs end);
  std::uint64_t poll_retransmits();

  SliHub& hub_;
  std::uint32_t id_ = 0;
  SliConfig cfg_;

  // Live window accumulation (histogram memory is reused across windows).
  sim::TimeNs win_start_ = 0;
  Histogram rtt_{Histogram::kDefaultExactCapacity};
  std::uint64_t msgs_ = 0;
  std::uint64_t bytes_ = 0;

  ServicePhase phase_ = ServicePhase::idle;
  std::int32_t precopy_iter_ = -1;

  std::function<std::uint64_t()> retx_source_;
  std::uint64_t last_retx_ = 0;
  bool retx_primed_ = false;

  // Idle baseline: closed idle-window stats feeding the attribution.
  Histogram baseline_rtt_{Histogram::kDefaultExactCapacity};
  double baseline_bytes_ = 0;
  sim::DurationNs baseline_time_ = 0;

  // Current / last migration episode.
  sim::TimeNs mig_start_ = -1;
  sim::TimeNs freeze_at_ = -1;
  sim::TimeNs resume_at_ = -1;
  sim::DurationNs recovery_ns_ = -1;

  std::vector<SliWindow> closed_;
};

/// Process-wide SLI hub. Off by default; arming it (set_enabled(true))
/// before guests register makes every tap live. clear() between tests.
class SliHub {
 public:
  static SliHub& global();

  SliHub() = default;
  SliHub(const SliHub&) = delete;
  SliHub& operator=(const SliHub&) = delete;

  bool enabled() const noexcept {
#ifndef MIGR_OBS_DISABLED
    return enabled_;
#else
    return false;
#endif
  }
  void set_enabled(bool on) noexcept { enabled_ = on; }
  /// Set before guests register; windows already open keep their geometry.
  void set_config(const SliConfig& cfg) { cfg_ = cfg; }
  const SliConfig& config() const noexcept { return cfg_; }

  /// Resolve (creating at sim-time `now` on first use) a guest's SLI state.
  /// Returns nullptr when the hub is disabled — callers cache the result
  /// and their taps reduce to one null-check branch.
  GuestSli* guest(std::uint32_t id, sim::TimeNs now);
  /// Lookup without creating (nullptr when absent).
  GuestSli* find(std::uint32_t id);

  /// Transport retransmit counter for a guest, polled at window close.
  void set_retransmit_source(std::uint32_t id, sim::TimeNs now,
                             std::function<std::uint64_t()> fn);

  // -- Migration attribution hooks (no-ops when disabled/unknown) ----------
  void on_migration_start(std::uint32_t id, sim::TimeNs now);
  void on_precopy_iteration(std::uint32_t id, sim::TimeNs now, std::int32_t iter);
  void on_freeze(std::uint32_t id, sim::TimeNs now);
  void on_resume(std::uint32_t id, sim::TimeNs now);
  /// Post-copy resume: service is live but pages still fault from the
  /// source; windows tag `postcopy` until on_postcopy_drained flips them
  /// into the normal recovery detection.
  void on_postcopy_resume(std::uint32_t id, sim::TimeNs now);
  void on_postcopy_drained(std::uint32_t id, sim::TimeNs now);
  /// Abort/failure: back to idle attribution-wise (rolled-back service).
  void on_migration_end(std::uint32_t id, sim::TimeNs now);

  // -- Continuous-FT hooks -------------------------------------------------
  /// FT protection armed: egress buffers until epochs commit; windows tag
  /// `ft_buffered` so the output-commit latency tax is attributable.
  void on_ft_protected(std::uint32_t id, sim::TimeNs now);
  /// FT protection dropped (unprotect or post-failover recovery done).
  void on_ft_released(std::uint32_t id, sim::TimeNs now);

  /// Close every guest's live window at `now` (call before reading/export).
  void flush(sim::TimeNs now);

  /// Brownout attribution for the guest's most recent migration episode.
  BrownoutAttribution attribution(std::uint32_t id) const;

  /// Attach an SLO engine; every closed window is fed to it.
  void set_slo_engine(SloEngine* eng) noexcept { slo_ = eng; }
  SloEngine* slo_engine() const noexcept { return slo_; }

  std::vector<std::uint32_t> guest_ids() const;

  /// Windowed SLI timeline as CSV (the --sli-csv artifact).
  std::string export_csv() const;

  /// Drop all guests and state (test / bench isolation). Keeps enabled flag.
  void clear();

 private:
  friend class GuestSli;
  void window_closed(std::uint32_t id, const SliWindow& w);

  bool enabled_ = false;
  SliConfig cfg_;
  SloEngine* slo_ = nullptr;
  std::map<std::uint32_t, std::unique_ptr<GuestSli>> guests_;
};

}  // namespace migr::obs
