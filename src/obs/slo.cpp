#include "obs/slo.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace migr::obs {
namespace {

const char* metric_name(SloRule::Metric m) {
  switch (m) {
    case SloRule::Metric::p50: return "p50";
    case SloRule::Metric::p99: return "p99";
    case SloRule::Metric::p999: return "p999";
    case SloRule::Metric::goodput: return "goodput";
    case SloRule::Metric::retx_rate: return "retx_rate";
  }
  return "?";
}

bool parse_duration(std::string_view s, double* out_ns) {
  std::size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' || s[i] == '-' ||
          s[i] == '+' || s[i] == 'e' || s[i] == 'E')) {
    ++i;
  }
  if (i == 0) return false;
  const double v = std::strtod(std::string(s.substr(0, i)).c_str(), nullptr);
  std::string_view unit = s.substr(i);
  if (unit == "ns") {
    *out_ns = v;
  } else if (unit == "us") {
    *out_ns = v * sim::kMicrosecond;
  } else if (unit == "ms") {
    *out_ns = v * sim::kMillisecond;
  } else if (unit == "s") {
    *out_ns = v * sim::kSecond;
  } else {
    return false;
  }
  return true;
}

bool parse_rate(std::string_view s, double* out_bps) {
  std::size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' || s[i] == '-' ||
          s[i] == '+' || s[i] == 'e' || s[i] == 'E')) {
    ++i;
  }
  if (i == 0) return false;
  const double v = std::strtod(std::string(s.substr(0, i)).c_str(), nullptr);
  std::string_view unit = s.substr(i);
  if (unit == "bps") {
    *out_bps = v;
  } else if (unit == "kbps") {
    *out_bps = v * 1e3;
  } else if (unit == "mbps") {
    *out_bps = v * 1e6;
  } else if (unit == "gbps") {
    *out_bps = v * 1e9;
  } else {
    return false;
  }
  return true;
}

bool fail(std::string* err, const std::string& msg) {
  if (err) *err = msg;
  return false;
}

}  // namespace

std::string SloRule::json() const {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"metric\":\"%s\",\"objective\":\"%s%s%.1f\","
                "\"budget\":%.4f,\"fast_ns\":%" PRId64 ",\"slow_ns\":%" PRId64
                ",\"burn_threshold\":%.2f}",
                name.c_str(), metric_name(metric), metric_name(metric),
                want_below ? "<" : ">", bound, budget, fast, slow, burn_threshold);
  return buf;
}

bool parse_slo_spec(std::string_view spec, std::vector<SloRule>* out, std::string* err) {
  out->clear();
  std::size_t rule_start = 0;
  while (rule_start <= spec.size()) {
    std::size_t rule_end = spec.find(';', rule_start);
    if (rule_end == std::string_view::npos) rule_end = spec.size();
    std::string_view rule_sv = spec.substr(rule_start, rule_end - rule_start);
    rule_start = rule_end + 1;
    if (rule_sv.empty()) {
      if (rule_end == spec.size()) break;
      continue;
    }

    SloRule r;
    bool have_objective = false;
    std::size_t f = 0;
    while (f <= rule_sv.size()) {
      std::size_t fe = rule_sv.find(',', f);
      if (fe == std::string_view::npos) fe = rule_sv.size();
      std::string_view field = rule_sv.substr(f, fe - f);
      f = fe + 1;
      if (field.empty()) {
        if (fe == rule_sv.size()) break;
        continue;
      }

      // key=value fields first.
      std::size_t eq = field.find('=');
      std::size_t lt = field.find('<');
      std::size_t gt = field.find('>');
      if (eq != std::string_view::npos && lt == std::string_view::npos &&
          gt == std::string_view::npos) {
        std::string_view key = field.substr(0, eq);
        std::string val{field.substr(eq + 1)};
        if (key == "name") {
          r.name = val;
        } else if (key == "budget") {
          r.budget = std::strtod(val.c_str(), nullptr);
          if (r.budget <= 0 || r.budget > 1)
            return fail(err, "budget must be in (0,1]: " + val);
        } else if (key == "fast" || key == "slow") {
          double ns = 0;
          if (!parse_duration(val, &ns))
            return fail(err, "bad duration: " + val);
          (key == "fast" ? r.fast : r.slow) = static_cast<sim::DurationNs>(ns);
        } else if (key == "burn") {
          r.burn_threshold = std::strtod(val.c_str(), nullptr);
          if (r.burn_threshold <= 0)
            return fail(err, "burn threshold must be > 0: " + val);
        } else {
          return fail(err, "unknown field: " + std::string(key));
        }
        continue;
      }

      // Objective: metric<bound or metric>bound.
      const std::size_t cmp = std::min(lt, gt);
      if (cmp == std::string_view::npos)
        return fail(err, "not an objective or k=v field: " + std::string(field));
      std::string_view metric = field.substr(0, cmp);
      std::string_view bound = field.substr(cmp + 1);
      r.want_below = (cmp == lt);
      if (metric == "p50") {
        r.metric = SloRule::Metric::p50;
      } else if (metric == "p99") {
        r.metric = SloRule::Metric::p99;
      } else if (metric == "p999") {
        r.metric = SloRule::Metric::p999;
      } else if (metric == "goodput") {
        r.metric = SloRule::Metric::goodput;
      } else if (metric == "retx_rate") {
        r.metric = SloRule::Metric::retx_rate;
      } else {
        return fail(err, "unknown metric: " + std::string(metric));
      }
      double v = 0;
      if (r.metric == SloRule::Metric::goodput) {
        if (!parse_rate(bound, &v)) return fail(err, "bad rate: " + std::string(bound));
      } else if (r.metric == SloRule::Metric::retx_rate) {
        v = std::strtod(std::string(bound).c_str(), nullptr);
      } else {
        if (!parse_duration(bound, &v))
          return fail(err, "bad duration: " + std::string(bound));
      }
      r.bound = v;
      if (r.name.empty()) r.name = std::string(field);
      have_objective = true;
    }

    if (!have_objective)
      return fail(err, "rule without an objective: " + std::string(rule_sv));
    if (r.fast > r.slow) return fail(err, "fast window exceeds slow window");
    out->push_back(std::move(r));
    if (rule_end == spec.size()) break;
  }
  if (out->empty()) return fail(err, "empty SLO spec");
  return true;
}

// ---------------------------------------------------------------------------
// SloEngine
// ---------------------------------------------------------------------------

SloEngine::SloEngine(std::vector<SloRule> rules) : rules_(std::move(rules)) {}

bool SloEngine::judge(const SloRule& r, const SliWindow& w, bool* has_signal) const {
  *has_signal = true;
  // A frozen service is failing whatever it promised.
  if (w.phase == ServicePhase::frozen) return false;
  double v = 0;
  switch (r.metric) {
    case SloRule::Metric::p50:
    case SloRule::Metric::p99:
    case SloRule::Metric::p999:
      if (w.msgs == 0) {
        *has_signal = false;  // no completions, not frozen: no latency signal
        return true;
      }
      v = static_cast<double>(r.metric == SloRule::Metric::p50    ? w.p50_ns
                              : r.metric == SloRule::Metric::p99 ? w.p99_ns
                                                                 : w.p999_ns);
      break;
    case SloRule::Metric::goodput:
      v = w.goodput_bps();
      break;
    case SloRule::Metric::retx_rate:
      v = w.retx_rate();
      break;
  }
  return r.want_below ? v < r.bound : v > r.bound;
}

double SloEngine::burn_over(const Burn& b, sim::TimeNs now, sim::DurationNs horizon,
                            double budget) const {
  const sim::TimeNs cutoff = now - horizon;
  sim::DurationNs total = 0, bad = 0;
  for (auto it = b.slots.rbegin(); it != b.slots.rend(); ++it) {
    if (it->end <= cutoff) break;
    total += it->dur;
    bad += it->bad;
  }
  if (total <= 0) return 0;
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

void SloEngine::on_window(std::uint32_t guest, const SliWindow& w) {
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    const SloRule& r = rules_[ri];
    bool has_signal = false;
    const bool good = judge(r, w, &has_signal);
    Burn& b = state_[{guest, ri}];
    if (has_signal) {
      b.slots.push_back({w.end, w.duration(), good ? 0 : w.duration()});
    }
    // Evict past the slow horizon.
    const sim::TimeNs cutoff = w.end - r.slow;
    while (!b.slots.empty() && b.slots.front().end <= cutoff) b.slots.pop_front();

    const double burn_fast = burn_over(b, w.end, r.fast, r.budget);
    const double burn_slow = burn_over(b, w.end, r.slow, r.budget);
    if (!b.alerting && burn_fast >= r.burn_threshold && burn_slow >= r.burn_threshold) {
      b.alerting = true;
      b.alert_ix = alerts_.size();
      alerts_.push_back({guest, r.name, w.end, -1, burn_fast, burn_slow});
      Registry::global()
          .counter("slo.alerts", {{"rule", r.name}})
          .inc();
      Tracer::global().instant(w.end, "slo_alert:" + r.name, "slo",
                               "\"guest\":" + std::to_string(guest));
    } else if (b.alerting && burn_fast < r.burn_threshold) {
      b.alerting = false;
      alerts_[b.alert_ix].resolved_at = w.end;
      Tracer::global().instant(w.end, "slo_resolve:" + r.name, "slo",
                               "\"guest\":" + std::to_string(guest));
    }
  }
}

bool SloEngine::burning(std::uint32_t guest) const {
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    auto it = state_.find({guest, ri});
    if (it != state_.end() && it->second.alerting) return true;
  }
  return false;
}

double SloEngine::burn_rate(std::uint32_t guest) const {
  double best = 0;
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    auto it = state_.find({guest, ri});
    if (it == state_.end() || it->second.slots.empty()) continue;
    const Burn& b = it->second;
    const double v = burn_over(b, b.slots.back().end, rules_[ri].fast, rules_[ri].budget);
    if (v > best) best = v;
  }
  return best;
}

std::size_t SloEngine::active_alert_count() const {
  std::size_t n = 0;
  for (const auto& a : alerts_) n += a.active() ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Artifact export
// ---------------------------------------------------------------------------

std::string export_slo_json(SliHub& hub, const SloEngine* engine,
                            const std::string& scenario,
                            const std::string& extra_json) {
  std::string out = "{\"kind\":\"slo_report\",\"version\":1,\"scenario\":\"";
  out += scenario;
  out += "\"";
  char buf[384];
  std::snprintf(buf, sizeof buf, ",\"window_ns\":%" PRId64, hub.config().window);
  out += buf;

  out += ",\"rules\":[";
  if (engine) {
    const auto& rules = engine->rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (i) out += ',';
      out += rules[i].json();
    }
  }
  out += "]";

  out += ",\"guests\":[";
  bool first_guest = true;
  for (std::uint32_t id : hub.guest_ids()) {
    GuestSli* g = hub.find(id);
    if (!g) continue;
    if (!first_guest) out += ',';
    first_guest = false;
    std::snprintf(buf, sizeof buf, "{\"guest\":%u,\"windows\":[", id);
    out += buf;
    const auto& ws = g->windows();
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const SliWindow& w = ws[i];
      std::snprintf(buf, sizeof buf,
                    "%s{\"start_ns\":%" PRId64 ",\"end_ns\":%" PRId64
                    ",\"phase\":\"%s\",\"precopy_iter\":%d,\"msgs\":%" PRIu64
                    ",\"bytes\":%" PRIu64 ",\"retransmits\":%" PRIu64
                    ",\"p50_ns\":%" PRId64 ",\"p99_ns\":%" PRId64
                    ",\"p999_ns\":%" PRId64 ",\"max_ns\":%" PRId64
                    ",\"goodput_bps\":%.1f,\"retx_rate\":%.1f}",
                    i ? "," : "", w.start, w.end, service_phase_name(w.phase),
                    w.precopy_iter, w.msgs, w.bytes, w.retransmits, w.p50_ns,
                    w.p99_ns, w.p999_ns, w.max_ns, w.goodput_bps(), w.retx_rate());
      out += buf;
    }
    out += "],\"attribution\":";
    out += hub.attribution(id).json();
    out += "}";
  }
  out += "]";

  out += ",\"alerts\":[";
  if (engine) {
    const auto& alerts = engine->alerts();
    for (std::size_t i = 0; i < alerts.size(); ++i) {
      const SloAlert& a = alerts[i];
      std::snprintf(buf, sizeof buf,
                    "%s{\"guest\":%u,\"rule\":\"%s\",\"fired_at_ns\":%" PRId64
                    ",\"resolved_at_ns\":%" PRId64
                    ",\"burn_fast\":%.2f,\"burn_slow\":%.2f}",
                    i ? "," : "", a.guest, a.rule.c_str(), a.fired_at,
                    a.resolved_at, a.burn_fast, a.burn_slow);
      out += buf;
    }
  }
  out += "]";

  if (!extra_json.empty()) {
    out += ',';
    out += extra_json;
  }
  out += "}\n";
  return out;
}

}  // namespace migr::obs
