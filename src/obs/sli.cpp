#include "obs/sli.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace migr::obs {

const char* service_phase_name(ServicePhase p) noexcept {
  switch (p) {
    case ServicePhase::idle: return "idle";
    case ServicePhase::precopy: return "precopy";
    case ServicePhase::frozen: return "frozen";
    case ServicePhase::recovery: return "recovery";
    case ServicePhase::postcopy: return "postcopy";
    case ServicePhase::ft_buffered: return "ft_buffered";
  }
  return "?";
}

double SliWindow::goodput_bps() const noexcept {
  const sim::DurationNs d = duration();
  if (d <= 0) return 0;
  return static_cast<double>(bytes) * 8.0 * sim::kSecond / static_cast<double>(d);
}

double SliWindow::retx_rate() const noexcept {
  const sim::DurationNs d = duration();
  if (d <= 0) return 0;
  return static_cast<double>(retransmits) * sim::kSecond / static_cast<double>(d);
}

std::string BrownoutAttribution::json() const {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof buf,
                "\"valid\":%s,\"migration_start_ns\":%" PRId64
                ",\"freeze_at_ns\":%" PRId64 ",\"resume_at_ns\":%" PRId64,
                valid ? "true" : "false", migration_start, freeze_at, resume_at);
  out += buf;
  std::snprintf(buf, sizeof buf,
                ",\"baseline_p99_ns\":%" PRId64
                ",\"baseline_goodput_bps\":%.1f,\"goodput_loss_bytes\":%.1f"
                ",\"recovery_ns\":%" PRId64,
                baseline_p99_ns, baseline_goodput_bps, goodput_loss_bytes,
                recovery_ns);
  out += buf;
  out += ",\"precopy_p99\":[";
  for (std::size_t i = 0; i < precopy_p99.size(); ++i) {
    const auto& it = precopy_p99[i];
    std::snprintf(buf, sizeof buf, "%s{\"iter\":%d,\"p99_ns\":%" PRId64 ",\"inflation\":%.3f}",
                  i ? "," : "", it.iter, it.p99_ns, it.inflation);
    out += buf;
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// GuestSli
// ---------------------------------------------------------------------------

GuestSli::GuestSli(SliHub& hub, std::uint32_t id, const SliConfig& cfg, sim::TimeNs now)
    : hub_(hub), id_(id), cfg_(cfg), win_start_(now) {}

void GuestSli::rtt(sim::TimeNs now, sim::DurationNs rtt_ns) {
  roll_to(now);
  rtt_.record(rtt_ns);
  msgs_++;
}

void GuestSli::delivered(sim::TimeNs now, std::uint64_t bytes) {
  roll_to(now);
  bytes_ += bytes;
}

std::uint64_t GuestSli::poll_retransmits() {
  if (!retx_source_) return 0;
  const std::uint64_t cur = retx_source_();
  if (!retx_primed_) {
    retx_primed_ = true;
    last_retx_ = cur;
    return 0;
  }
  // QP switch-over during migration can reset the underlying counters;
  // clamp the delta at zero rather than wrapping.
  const std::uint64_t d = cur >= last_retx_ ? cur - last_retx_ : 0;
  last_retx_ = cur;
  return d;
}

void GuestSli::emit(sim::TimeNs end) {
  SliWindow w;
  w.start = win_start_;
  w.end = end;
  w.phase = phase_;
  w.precopy_iter = phase_ == ServicePhase::precopy ? precopy_iter_ : -1;
  w.msgs = msgs_;
  w.bytes = bytes_;
  w.retransmits = poll_retransmits();
  if (msgs_ > 0) {
    w.p50_ns = rtt_.percentile(50);
    w.p99_ns = rtt_.percentile(99);
    w.p999_ns = rtt_.percentile(99.9);
    w.max_ns = rtt_.max();
  }

  if (phase_ == ServicePhase::idle) {
    // Idle windows feed the baseline the attribution measures against.
    baseline_rtt_.merge(rtt_);
    baseline_bytes_ += static_cast<double>(bytes_);
    baseline_time_ += w.duration();
  } else if (phase_ == ServicePhase::recovery && resume_at_ >= 0 &&
             recovery_ns_ < 0 && w.msgs >= cfg_.min_recovery_msgs) {
    const std::int64_t base_p99 = baseline_rtt_.percentile(99);
    if (base_p99 <= 0 ||
        static_cast<double>(w.p99_ns) <=
            static_cast<double>(base_p99) * cfg_.recovery_factor) {
      recovery_ns_ = w.end - resume_at_;
      phase_ = ServicePhase::recovery;  // this window stays recovery...
      closed_.push_back(w);
      hub_.window_closed(id_, w);
      // ...and the guest is idle again from here on.
      phase_ = ServicePhase::idle;
      precopy_iter_ = -1;
      win_start_ = end;
      rtt_.reset();
      msgs_ = 0;
      bytes_ = 0;
      return;
    }
  }

  closed_.push_back(w);
  hub_.window_closed(id_, w);
  win_start_ = end;
  rtt_.reset();
  msgs_ = 0;
  bytes_ = 0;
}

void GuestSli::roll_to(sim::TimeNs now) {
  if (now < win_start_ + cfg_.window) return;
  if (msgs_ == 0 && bytes_ == 0) {
    // Nothing accumulated: collapse the whole quiet stretch into one
    // window instead of emitting a run of empties. The timeline still
    // tiles; the boundary lands on the window grid relative to win_start_.
    const std::int64_t k = (now - win_start_) / cfg_.window;
    emit(win_start_ + k * cfg_.window);
    return;
  }
  while (now >= win_start_ + cfg_.window) {
    emit(win_start_ + cfg_.window);
  }
}

void GuestSli::close_at(sim::TimeNs at) {
  roll_to(at);
  if (at > win_start_) emit(at);
  // at == win_start_: zero-length window, nothing to record.
}

void GuestSli::set_phase(sim::TimeNs now, ServicePhase p, std::int32_t iter) {
  if (p == phase_ && iter == precopy_iter_) return;
  close_at(now);
  phase_ = p;
  precopy_iter_ = iter;
}

// ---------------------------------------------------------------------------
// SliHub
// ---------------------------------------------------------------------------

SliHub& SliHub::global() {
  static SliHub hub;
  return hub;
}

GuestSli* SliHub::guest(std::uint32_t id, sim::TimeNs now) {
  if (!enabled()) return nullptr;
  auto& slot = guests_[id];
  if (!slot) slot.reset(new GuestSli(*this, id, cfg_, now));
  return slot.get();
}

GuestSli* SliHub::find(std::uint32_t id) {
  auto it = guests_.find(id);
  return it == guests_.end() ? nullptr : it->second.get();
}

void SliHub::set_retransmit_source(std::uint32_t id, sim::TimeNs now,
                                   std::function<std::uint64_t()> fn) {
  GuestSli* g = guest(id, now);
  if (!g) return;
  g->retx_source_ = std::move(fn);
  g->retx_primed_ = false;
}

void SliHub::on_migration_start(std::uint32_t id, sim::TimeNs now) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  g->set_phase(now, ServicePhase::precopy, 0);
  g->mig_start_ = now;
  g->freeze_at_ = -1;
  g->resume_at_ = -1;
  g->recovery_ns_ = -1;
}

void SliHub::on_precopy_iteration(std::uint32_t id, sim::TimeNs now, std::int32_t iter) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  g->set_phase(now, ServicePhase::precopy, iter);
}

void SliHub::on_freeze(std::uint32_t id, sim::TimeNs now) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  g->set_phase(now, ServicePhase::frozen, -1);
  g->freeze_at_ = now;
}

void SliHub::on_resume(std::uint32_t id, sim::TimeNs now) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  g->set_phase(now, ServicePhase::recovery, -1);
  g->resume_at_ = now;
}

void SliHub::on_postcopy_resume(std::uint32_t id, sim::TimeNs now) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  g->set_phase(now, ServicePhase::postcopy, -1);
  g->resume_at_ = now;
}

void SliHub::on_postcopy_drained(std::uint32_t id, sim::TimeNs now) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  if (g->phase_ == ServicePhase::postcopy) {
    g->set_phase(now, ServicePhase::recovery, -1);
  }
}

void SliHub::on_migration_end(std::uint32_t id, sim::TimeNs now) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  if (g->phase_ != ServicePhase::recovery) {
    // Abort / failure before resume: the service kept running (or was
    // rolled back) on the source; attribution-wise it is idle again.
    g->set_phase(now, ServicePhase::idle, -1);
  }
}

void SliHub::on_ft_protected(std::uint32_t id, sim::TimeNs now) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  g->set_phase(now, ServicePhase::ft_buffered, -1);
}

void SliHub::on_ft_released(std::uint32_t id, sim::TimeNs now) {
  GuestSli* g = enabled() ? find(id) : nullptr;
  if (!g) return;
  if (g->phase_ == ServicePhase::ft_buffered) {
    g->set_phase(now, ServicePhase::idle, -1);
  }
}

void SliHub::flush(sim::TimeNs now) {
  for (auto& [id, g] : guests_) g->close_at(now);
}

BrownoutAttribution SliHub::attribution(std::uint32_t id) const {
  BrownoutAttribution a;
  auto it = guests_.find(id);
  if (it == guests_.end()) return a;
  const GuestSli& g = *it->second;
  if (g.mig_start_ < 0) return a;
  a.valid = true;
  a.migration_start = g.mig_start_;
  a.freeze_at = g.freeze_at_;
  a.resume_at = g.resume_at_;
  a.recovery_ns = g.recovery_ns_;
  a.baseline_p99_ns = g.baseline_rtt_.percentile(99);
  a.baseline_goodput_bps =
      g.baseline_time_ > 0
          ? g.baseline_bytes_ * 8.0 * sim::kSecond / static_cast<double>(g.baseline_time_)
          : 0;

  // Per-iteration p99 + the goodput-loss integral over the episode.
  std::map<std::int32_t, Histogram> iters;
  for (const SliWindow& w : g.closed_) {
    if (w.start < g.mig_start_) continue;
    if (w.phase == ServicePhase::precopy || w.phase == ServicePhase::frozen ||
        w.phase == ServicePhase::postcopy || w.phase == ServicePhase::recovery) {
      const double loss_bps = a.baseline_goodput_bps - w.goodput_bps();
      if (loss_bps > 0) {
        a.goodput_loss_bytes +=
            loss_bps / 8.0 * sim::to_sec(w.duration());
      }
    }
    if (w.phase == ServicePhase::precopy && w.precopy_iter >= 0 && w.msgs > 0) {
      auto [hit, inserted] = iters.try_emplace(w.precopy_iter, 0);
      (void)inserted;
      // Window summaries, not raw samples: approximate the iteration p99
      // by the max of its windows' p99s (conservative, deterministic).
      hit->second.record(w.p99_ns);
    }
  }
  for (auto& [iter, h] : iters) {
    BrownoutAttribution::IterInflation it2;
    it2.iter = iter;
    it2.p99_ns = h.max();
    it2.inflation = a.baseline_p99_ns > 0
                        ? static_cast<double>(it2.p99_ns) /
                              static_cast<double>(a.baseline_p99_ns)
                        : 0;
    a.precopy_p99.push_back(it2);
  }
  return a;
}

void SliHub::window_closed(std::uint32_t id, const SliWindow& w) {
  if (slo_) slo_->on_window(id, w);
}

std::vector<std::uint32_t> SliHub::guest_ids() const {
  std::vector<std::uint32_t> out;
  out.reserve(guests_.size());
  for (const auto& [id, g] : guests_) out.push_back(id);
  return out;
}

std::string SliHub::export_csv() const {
  std::string out =
      "guest,start_ns,end_ns,phase,precopy_iter,msgs,bytes,retransmits,"
      "p50_ns,p99_ns,p999_ns,max_ns,goodput_bps,retx_rate\n";
  char buf[320];
  for (const auto& [id, g] : guests_) {
    for (const SliWindow& w : g->closed_) {
      std::snprintf(buf, sizeof buf,
                    "%u,%" PRId64 ",%" PRId64 ",%s,%d,%" PRIu64 ",%" PRIu64
                    ",%" PRIu64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64
                    ",%.1f,%.1f\n",
                    id, w.start, w.end, service_phase_name(w.phase),
                    w.precopy_iter, w.msgs, w.bytes, w.retransmits, w.p50_ns,
                    w.p99_ns, w.p999_ns, w.max_ns, w.goodput_bps(),
                    w.retx_rate());
      out += buf;
    }
  }
  return out;
}

void SliHub::clear() {
  guests_.clear();
  slo_ = nullptr;
}

}  // namespace migr::obs
