// Wire flight recorder: bounded per-host ring buffers of compact packet
// records, fed by the fabric on both the burst fast path and the per-packet
// fault fallback. Think of it as the simulator's always-on (when armed)
// port-mirror: when something goes wrong — a migration aborts, a stuck-QP
// audit fires, a responder NAK storm erupts — the last window of wire
// activity around the anomaly is dumped as JSON together with the
// surrounding trace events, so post-mortems see the packets the application
// never could.
//
// Cost discipline mirrors the tracer: off by default, one predictable
// branch per packet when disabled, and the compile-time MIGR_OBS_DISABLED
// switch removes even that. When enabled, recording is a ring-slot
// overwrite — no allocation after the rings are sized (the disabled-mode
// zero-allocation property is pinned by recorder_test with a counting
// operator new).
//
// Layering: obs sits below net/rnic, so records carry plain integers. The
// fabric peeks opcode/QPN/PSN out of the serialized wire header at fixed
// offsets (see fabric.cpp); 0xff opcode marks a packet whose header was not
// in the RNIC wire format (raw test frames).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"

namespace migr::obs {

enum class PacketVerdict : std::uint8_t {
  delivered = 0,    // scheduled for delivery (burst or per-packet path)
  dropped = 1,      // lost to injected data-plane loss
  reordered = 2,    // held back past later packets, then delivered
  partitioned = 3,  // eaten by a host partition
};

const char* to_string(PacketVerdict v) noexcept;

/// One packet observation. 40 bytes, trivially copyable: a ring slot
/// overwrite, never an allocation.
struct PacketRecord {
  std::int64_t ts_ns = 0;   // sim time of the send decision (or partition flip)
  std::uint64_t psn = 0;
  std::uint32_t src = 0;    // source host id
  std::uint32_t dst = 0;    // destination host id
  std::uint32_t qpn = 0;    // destination QPN from the wire header
  std::uint32_t bytes = 0;  // wire_size() of the frame
  std::uint8_t opcode = 0xff;  // rnic::PktOp value; 0xff = not RNIC-framed
  PacketVerdict verdict = PacketVerdict::delivered;
};

class FlightRecorder {
 public:
  /// The process-wide recorder the fabric feeds by default.
  static FlightRecorder& global();

  explicit FlightRecorder(std::size_t per_host_capacity = kDefaultCapacity);

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept {
#ifndef MIGR_OBS_DISABLED
    return enabled_;
#else
    return false;
#endif
  }

  /// Drops all records and resizes every future ring. Existing rings are
  /// discarded so hosts re-materialize at the new capacity on first record.
  void set_capacity(std::size_t per_host_capacity);
  std::size_t capacity() const noexcept { return capacity_; }

  /// Record one packet observation into the source host's ring. Callers on
  /// hot paths should branch on enabled() first; this checks again so a raw
  /// call on a disabled recorder stays a no-op.
  void record(const PacketRecord& r);

  /// How far back (sim ns) from the anomaly a dump reaches, for both packet
  /// records and surrounding trace events.
  void set_dump_window(std::int64_t window_ns) noexcept { window_ns_ = window_ns; }
  std::int64_t dump_window() const noexcept { return window_ns_; }

  /// Directory anomaly dumps are written to; empty (default) keeps dumps
  /// in memory only (last_dump_json). File names are deterministic:
  /// flight_<seq>_<reason>.json.
  void set_dump_dir(std::string dir) { dump_dir_ = std::move(dir); }

  /// Dump-on-anomaly: capture every host's records within the dump window
  /// ending at `now_ns`, merge-sort them by time, append the surrounding
  /// window of the global tracer's events, and wrap it all in one JSON
  /// document headed by {reason, detail}. `detail` is a JSON object
  /// *fragment* (e.g. "\"guest\":7,\"phase\":\"final_transfer\"").
  /// No-op (returns empty) while disabled. Returns the JSON, also kept in
  /// last_dump_json() and written to the dump dir when one is set.
  std::string trigger_dump(std::int64_t now_ns, std::string_view reason,
                           std::string_view detail = {});

  /// Full-capture export (no anomaly header): everything currently held,
  /// merged across hosts, oldest first. Works while disabled too (dumps
  /// whatever was recorded before disabling).
  std::string export_json() const;
  common::Status write_json(const std::string& path) const;

  std::uint64_t dumps_triggered() const noexcept { return dumps_; }
  const std::string& last_dump_json() const noexcept { return last_dump_json_; }
  const std::string& last_dump_path() const noexcept { return last_dump_path_; }

  /// Records currently held for `src_host`, oldest first.
  std::vector<PacketRecord> records(std::uint32_t src_host) const;
  /// The newest `last_n` records for `src_host`, oldest first.
  std::vector<PacketRecord> window(std::uint32_t src_host, std::size_t last_n) const;

  std::uint64_t total_recorded() const noexcept { return total_; }
  /// Records that fell off the back of a full ring.
  std::uint64_t overwritten() const noexcept;

  void clear();

  static constexpr std::size_t kDefaultCapacity = 4096;

 private:
  /// Fixed-size overwrite ring; slots are preallocated at first touch of a
  /// host and never reallocated afterwards.
  struct Ring {
    std::vector<PacketRecord> slots;
    std::size_t head = 0;   // oldest element once wrapped
    std::size_t size = 0;
    std::uint64_t total = 0;
  };

  Ring& ring_for(std::uint32_t src_host);
  void append_records_json(std::string& out, std::int64_t from_ns) const;

  bool enabled_ = false;
  std::size_t capacity_;
  std::int64_t window_ns_ = 2'000'000;  // 2 ms of wire history by default
  std::unordered_map<std::uint32_t, Ring> rings_;
  std::uint64_t total_ = 0;
  std::uint64_t dumps_ = 0;
  std::string dump_dir_;
  std::string last_dump_json_;
  std::string last_dump_path_;
};

}  // namespace migr::obs
