#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace migr::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  buf_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void Tracer::set_capacity(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  clear();
}

void Tracer::clear() {
  buf_.clear();
  head_ = 0;
  total_ = 0;
}

void Tracer::push(TraceEvent ev) {
  total_++;
  if (buf_.size() < capacity_) {
    buf_.push_back(std::move(ev));
  } else {
    buf_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
  }
}

void Tracer::begin(std::int64_t ts_ns, std::string_view name, std::string_view cat,
                   std::string args) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::begin, ts_ns, 0, std::string{name}, std::string{cat},
                  std::move(args)});
}

void Tracer::end(std::int64_t ts_ns, std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::end, ts_ns, 0, std::string{name}, std::string{cat}, {}});
}

void Tracer::complete(std::int64_t ts_ns, std::int64_t dur_ns, std::string_view name,
                      std::string_view cat, std::string args) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::complete, ts_ns, dur_ns, std::string{name},
                  std::string{cat}, std::move(args)});
}

void Tracer::instant(std::int64_t ts_ns, std::string_view name, std::string_view cat,
                     std::string args) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::instant, ts_ns, 0, std::string{name}, std::string{cat},
                  std::move(args)});
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_us(std::string& out, std::int64_t ns) {
  // Chrome wants microseconds; print with nanosecond resolution and no
  // floating-point round-trip (ns exactness matters to the tests).
  char buf[40];
  const char* sign = ns < 0 ? "-" : "";
  const std::uint64_t mag = ns < 0 ? static_cast<std::uint64_t>(-ns)
                                   : static_cast<std::uint64_t>(ns);
  std::snprintf(buf, sizeof(buf), "%s%" PRIu64 ".%03" PRIu64, sign, mag / 1000, mag % 1000);
  out += buf;
}

}  // namespace

std::string Tracer::export_chrome_json() const {
  const auto evs = events();
  // One Perfetto track ("thread") per category, in order of appearance.
  std::map<std::string, int> tids;
  for (const auto& ev : evs) {
    tids.emplace(ev.cat, static_cast<int>(tids.size()) + 1);
  }

  std::string out;
  out.reserve(evs.size() * 128 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [cat, tid] : tids) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, cat);
    out += "\"}}";
  }
  for (const auto& ev : evs) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.cat);
    out += "\",\"ph\":\"";
    out += static_cast<char>(ev.ph);
    out += "\",\"ts\":";
    append_us(out, ev.ts_ns);
    if (ev.ph == TraceEvent::Phase::complete) {
      out += ",\"dur\":";
      append_us(out, ev.dur_ns);
    }
    if (ev.ph == TraceEvent::Phase::instant) {
      out += ",\"s\":\"g\"";  // global-scope instant: draws a full-height line
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(tids.at(ev.cat));
    out += ",\"args\":{\"ts_ns\":";
    out += std::to_string(ev.ts_ns);
    if (ev.ph == TraceEvent::Phase::complete) {
      out += ",\"dur_ns\":";
      out += std::to_string(ev.dur_ns);
    }
    if (!ev.args.empty()) {
      out += ',';
      out += ev.args;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

common::Status Tracer::flush() const {
  if (flush_path_.empty()) return common::Status::ok();
  return write_chrome_json(flush_path_);
}

common::Status Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::err(common::Errc::internal, "cannot open trace file " + path);
  }
  const std::string json = export_chrome_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return common::err(common::Errc::internal, "short write to trace file " + path);
  }
  return common::Status::ok();
}

}  // namespace migr::obs
