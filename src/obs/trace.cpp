#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/metrics.hpp"

namespace migr::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  buf_.reserve(std::min<std::size_t>(capacity_, 1024));
}

Tracer::~Tracer() { close_incremental(); }

void Tracer::set_capacity(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  clear();
}

void Tracer::clear() {
  buf_.clear();
  head_ = 0;
  total_ = 0;
  next_id_ = 0;
  ctx_ = {};
  spilled_ = 0;
  close_incremental();
}

void Tracer::push(TraceEvent ev) {
  total_++;
  if (buf_.size() < capacity_) {
    buf_.push_back(std::move(ev));
    return;
  }
  if (inc_file_ != nullptr) {
    // Bounded-memory mode: move the whole buffer to disk, then keep going.
    (void)spill_buffer();
    buf_.push_back(std::move(ev));
    return;
  }
  buf_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  Registry::global().counter("obs.trace.dropped").inc();
}

void Tracer::begin(std::int64_t ts_ns, std::string_view name, std::string_view cat,
                   std::string args) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::begin, ts_ns, 0, 0, 0, std::string{name},
                  std::string{cat}, std::move(args)});
}

void Tracer::end(std::int64_t ts_ns, std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::end, ts_ns, 0, 0, 0, std::string{name},
                  std::string{cat}, {}});
}

void Tracer::complete(std::int64_t ts_ns, std::int64_t dur_ns, std::string_view name,
                      std::string_view cat, std::string args, std::uint64_t id,
                      std::uint64_t parent) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::complete, ts_ns, dur_ns, id, parent,
                  std::string{name}, std::string{cat}, std::move(args)});
}

void Tracer::instant(std::int64_t ts_ns, std::string_view name, std::string_view cat,
                     std::string args, std::uint64_t id, std::uint64_t parent) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::instant, ts_ns, 0, id, parent, std::string{name},
                  std::string{cat}, std::move(args)});
}

void Tracer::flow_start(std::int64_t ts_ns, std::string_view name, std::string_view cat,
                        std::uint64_t flow_id, std::string args) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::flow_start, ts_ns, 0, flow_id, 0, std::string{name},
                  std::string{cat}, std::move(args)});
}

void Tracer::flow_finish(std::int64_t ts_ns, std::string_view name, std::string_view cat,
                         std::uint64_t flow_id, std::string args) {
  if (!enabled()) return;
  push(TraceEvent{TraceEvent::Phase::flow_finish, ts_ns, 0, flow_id, 0, std::string{name},
                  std::string{cat}, std::move(args)});
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_us(std::string& out, std::int64_t ns) {
  // Chrome wants microseconds; print with nanosecond resolution and no
  // floating-point round-trip (ns exactness matters to the tests).
  char buf[40];
  const char* sign = ns < 0 ? "-" : "";
  const std::uint64_t mag = ns < 0 ? static_cast<std::uint64_t>(-ns)
                                   : static_cast<std::uint64_t>(ns);
  std::snprintf(buf, sizeof(buf), "%s%" PRIu64 ".%03" PRIu64, sign, mag / 1000, mag % 1000);
  out += buf;
}

}  // namespace

void Tracer::append_event_json(std::string& out, const TraceEvent& ev,
                               std::map<std::string, int>& tids, bool& first) const {
  // Assign one Perfetto track ("thread") per category in first-seen order,
  // emitting the thread_name metadata record inline the first time (viewers
  // accept metadata anywhere in the stream).
  auto [it, inserted] = tids.emplace(ev.cat, static_cast<int>(tids.size()) + 1);
  if (inserted) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(it->second);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, ev.cat);
    out += "\"}}";
  }
  if (!first) out += ',';
  first = false;
  out += "{\"name\":\"";
  append_escaped(out, ev.name);
  out += "\",\"cat\":\"";
  append_escaped(out, ev.cat);
  out += "\",\"ph\":\"";
  out += static_cast<char>(ev.ph);
  out += "\",\"ts\":";
  append_us(out, ev.ts_ns);
  if (ev.ph == TraceEvent::Phase::complete) {
    out += ",\"dur\":";
    append_us(out, ev.dur_ns);
  }
  if (ev.ph == TraceEvent::Phase::instant) {
    out += ",\"s\":\"g\"";  // global-scope instant: draws a full-height line
  }
  if (ev.ph == TraceEvent::Phase::flow_start || ev.ph == TraceEvent::Phase::flow_finish) {
    out += ",\"id\":";
    out += std::to_string(ev.id);
    if (ev.ph == TraceEvent::Phase::flow_finish) {
      out += ",\"bp\":\"e\"";  // bind to the enclosing slice
    }
  }
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(it->second);
  out += ",\"args\":{\"ts_ns\":";
  out += std::to_string(ev.ts_ns);
  if (ev.ph == TraceEvent::Phase::complete) {
    out += ",\"dur_ns\":";
    out += std::to_string(ev.dur_ns);
  }
  if (ev.id != 0 && ev.ph != TraceEvent::Phase::flow_start &&
      ev.ph != TraceEvent::Phase::flow_finish) {
    out += ",\"id\":";
    out += std::to_string(ev.id);
  }
  if (ev.parent != 0) {
    out += ",\"parent\":";
    out += std::to_string(ev.parent);
  }
  if (!ev.args.empty()) {
    out += ',';
    out += ev.args;
  }
  out += "}}";
}

std::string Tracer::export_chrome_json() const {
  const auto evs = events();
  std::map<std::string, int> tids;
  std::string out;
  out.reserve(evs.size() * 128 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : evs) append_event_json(out, ev, tids, first);
  // Stats record so tools can tell a complete graph from a truncated one
  // (the parent-link check is only sound when nothing was evicted).
  if (!first) out += ',';
  out += "{\"name\":\"trace_stats\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"total\":";
  out += std::to_string(total_);
  out += ",\"dropped\":";
  out += std::to_string(dropped());
  out += ",\"spilled\":";
  out += std::to_string(spilled_);
  out += "}}";
  out += "]}";
  return out;
}

common::Status Tracer::set_incremental_path(const std::string& path) {
  close_incremental();
  if (path.empty()) return common::Status::ok();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::err(common::Errc::internal, "cannot open trace spill file " + path);
  }
  const char* prefix = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
  std::fwrite(prefix, 1, std::strlen(prefix), f);
  std::fflush(f);
  inc_file_ = f;
  inc_path_ = path;
  inc_tids_.clear();
  inc_first_ = true;
  return common::Status::ok();
}

common::Status Tracer::spill_buffer() {
  if (inc_file_ == nullptr || buf_.empty()) return common::Status::ok();
  // Rewind over the closing "]}"" and append this batch, then re-close so the
  // file is valid JSON between spills (an aborted run keeps a loadable file).
  if (std::fseek(inc_file_, -2, SEEK_END) != 0) {
    return common::err(common::Errc::internal, "cannot seek trace spill file " + inc_path_);
  }
  std::string out;
  out.reserve(buf_.size() * 128);
  bool first = inc_first_;
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    append_event_json(out, buf_[(head_ + i) % buf_.size()], inc_tids_, first);
  }
  inc_first_ = first;
  out += "]}";
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), inc_file_);
  std::fflush(inc_file_);
  spilled_ += buf_.size();
  buf_.clear();
  head_ = 0;
  if (written != out.size()) {
    return common::err(common::Errc::internal, "short write to trace spill file " + inc_path_);
  }
  return common::Status::ok();
}

void Tracer::close_incremental() {
  if (inc_file_ != nullptr) {
    std::fclose(inc_file_);
    inc_file_ = nullptr;
  }
  inc_path_.clear();
  inc_tids_.clear();
  inc_first_ = true;
}

common::Status Tracer::flush() {
  if (inc_file_ != nullptr) return spill_buffer();
  if (flush_path_.empty()) return common::Status::ok();
  return write_chrome_json(flush_path_);
}

common::Status Tracer::write_chrome_json(const std::string& path) {
  if (inc_file_ != nullptr && path == inc_path_) {
    // Finalize the incremental file: spill the tail and close. The stats
    // record is appended as a final batch element.
    common::Status st = spill_buffer();
    if (!st.is_ok()) return st;
    if (std::fseek(inc_file_, -2, SEEK_END) == 0) {
      std::string out;
      if (!inc_first_) out += ',';
      out += "{\"name\":\"trace_stats\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"total\":";
      out += std::to_string(total_);
      out += ",\"dropped\":";
      out += std::to_string(dropped());
      out += ",\"spilled\":";
      out += std::to_string(spilled_);
      out += "}}]}";
      std::fwrite(out.data(), 1, out.size(), inc_file_);
    }
    close_incremental();
    return common::Status::ok();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::err(common::Errc::internal, "cannot open trace file " + path);
  }
  const std::string json = export_chrome_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return common::err(common::Errc::internal, "short write to trace file " + path);
  }
  return common::Status::ok();
}

}  // namespace migr::obs
