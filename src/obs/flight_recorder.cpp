#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace migr::obs {

const char* to_string(PacketVerdict v) noexcept {
  switch (v) {
    case PacketVerdict::delivered: return "delivered";
    case PacketVerdict::dropped: return "dropped";
    case PacketVerdict::reordered: return "reordered";
    case PacketVerdict::partitioned: return "partitioned";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::FlightRecorder(std::size_t per_host_capacity)
    : capacity_(per_host_capacity == 0 ? 1 : per_host_capacity) {}

void FlightRecorder::set_capacity(std::size_t per_host_capacity) {
  capacity_ = per_host_capacity == 0 ? 1 : per_host_capacity;
  rings_.clear();
  total_ = 0;
}

FlightRecorder::Ring& FlightRecorder::ring_for(std::uint32_t src_host) {
  auto it = rings_.find(src_host);
  if (it == rings_.end()) {
    it = rings_.emplace(src_host, Ring{}).first;
    it->second.slots.resize(capacity_);  // the one allocation per host
  }
  return it->second;
}

void FlightRecorder::record(const PacketRecord& r) {
  if (!enabled()) return;
  Ring& ring = ring_for(r.src);
  if (ring.size < ring.slots.size()) {
    ring.slots[ring.size++] = r;
  } else {
    ring.slots[ring.head] = r;
    ring.head = (ring.head + 1) % ring.slots.size();
  }
  ring.total++;
  total_++;
}

std::vector<PacketRecord> FlightRecorder::records(std::uint32_t src_host) const {
  std::vector<PacketRecord> out;
  auto it = rings_.find(src_host);
  if (it == rings_.end()) return out;
  const Ring& ring = it->second;
  out.reserve(ring.size);
  for (std::size_t i = 0; i < ring.size; ++i) {
    out.push_back(ring.slots[(ring.head + i) % ring.slots.size()]);
  }
  return out;
}

std::vector<PacketRecord> FlightRecorder::window(std::uint32_t src_host,
                                                 std::size_t last_n) const {
  std::vector<PacketRecord> all = records(src_host);
  if (all.size() > last_n) all.erase(all.begin(), all.end() - static_cast<long>(last_n));
  return all;
}

std::uint64_t FlightRecorder::overwritten() const noexcept {
  std::uint64_t held = 0;
  for (const auto& [host, ring] : rings_) {
    (void)host;
    held += ring.size;
  }
  return total_ - held;
}

void FlightRecorder::clear() {
  rings_.clear();
  total_ = 0;
  dumps_ = 0;
  last_dump_json_.clear();
  last_dump_path_.clear();
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_packet(std::string& out, const PacketRecord& r) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"ts_ns\":%lld,\"src\":%u,\"dst\":%u,\"op\":%u,\"qpn\":%u,"
                "\"psn\":%llu,\"bytes\":%u,\"verdict\":\"%s\"}",
                static_cast<long long>(r.ts_ns), r.src, r.dst,
                static_cast<unsigned>(r.opcode), r.qpn,
                static_cast<unsigned long long>(r.psn), r.bytes, to_string(r.verdict));
  out += buf;
}

}  // namespace

void FlightRecorder::append_records_json(std::string& out, std::int64_t from_ns) const {
  // Deterministic host order (rings_ is unordered), then a stable merge by
  // time so concurrent records keep host order within one timestamp.
  std::vector<std::uint32_t> hosts;
  hosts.reserve(rings_.size());
  for (const auto& [host, ring] : rings_) {
    (void)ring;
    hosts.push_back(host);
  }
  std::sort(hosts.begin(), hosts.end());

  std::vector<PacketRecord> merged;
  for (std::uint32_t h : hosts) {
    for (const PacketRecord& r : records(h)) {
      if (r.ts_ns >= from_ns) merged.push_back(r);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const PacketRecord& a, const PacketRecord& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.src < b.src;
                   });

  out += "\"packets\":[";
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i != 0) out += ',';
    append_packet(out, merged[i]);
  }
  out += ']';
}

std::string FlightRecorder::trigger_dump(std::int64_t now_ns, std::string_view reason,
                                         std::string_view detail) {
  if (!enabled()) return {};
  dumps_++;
  Registry::global().counter("obs.recorder.dumps").inc();

  const std::int64_t from_ns = now_ns - window_ns_;
  std::string out;
  out.reserve(4096);
  out += "{\"kind\":\"flight_recorder_dump\",\"reason\":\"";
  append_escaped(out, reason);
  out += "\",\"ts_ns\":";
  out += std::to_string(now_ns);
  out += ",\"window_ns\":";
  out += std::to_string(window_ns_);
  out += ",\"detail\":{";
  out += detail;  // caller-provided JSON object fragment
  out += "},";
  append_records_json(out, from_ns);

  // The surrounding trace window: spans/instants whose timestamp falls in
  // the same look-back window, so the dump reads as "what the workflow was
  // doing while these packets were on the wire".
  out += ",\"trace\":[";
  bool first = true;
  for (const TraceEvent& ev : Tracer::global().events()) {
    if (ev.ts_ns < from_ns) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += static_cast<char>(ev.ph);
    out += "\",\"ts_ns\":";
    out += std::to_string(ev.ts_ns);
    if (ev.ph == TraceEvent::Phase::complete) {
      out += ",\"dur_ns\":";
      out += std::to_string(ev.dur_ns);
    }
    out += ",\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.cat);
    out += "\",\"args\":{";
    out += ev.args;
    out += "}}";
  }
  out += "]}";

  last_dump_json_ = out;
  last_dump_path_.clear();
  if (!dump_dir_.empty()) {
    std::string name = "flight_" + std::to_string(dumps_) + "_";
    for (char c : reason) {
      name += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
    }
    const std::string path = dump_dir_ + "/" + name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      last_dump_path_ = path;
    }
  }
  return out;
}

std::string FlightRecorder::export_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"kind\":\"flight_recorder_capture\",\"total_recorded\":";
  out += std::to_string(total_);
  out += ",\"overwritten\":";
  out += std::to_string(overwritten());
  out += ",\"dumps\":";
  out += std::to_string(dumps_);
  out += ',';
  append_records_json(out, /*from_ns=*/std::numeric_limits<std::int64_t>::min());
  out += '}';
  return out;
}

common::Status FlightRecorder::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::err(common::Errc::internal, "cannot open recorder file " + path);
  }
  const std::string json = export_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return common::err(common::Errc::internal, "short write to recorder file " + path);
  }
  return common::Status::ok();
}

}  // namespace migr::obs
