#include "obs/critical_path.hpp"

#include <algorithm>

namespace migr::obs {

const char* edge_class_name(EdgeClass cls) {
  switch (cls) {
    case EdgeClass::wbs_wait: return "wbs_wait";
    case EdgeClass::ckpt_dump: return "ckpt_dump";
    case EdgeClass::chunk_wire: return "chunk_wire";
    case EdgeClass::chunk_retry: return "chunk_retry";
    case EdgeClass::restore_apply: return "restore_apply";
    case EdgeClass::qp_reestablish: return "qp_reestablish";
    case EdgeClass::ctrl_rtt: return "ctrl_rtt";
    case EdgeClass::scheduler_hold: return "scheduler_hold";
    case EdgeClass::slack: return "slack";
  }
  return "?";
}

EdgeClass CriticalPath::dominant() const noexcept {
  EdgeClass best = EdgeClass::slack;
  std::int64_t best_ns = 0;
  for (std::size_t i = 0; i + 1 < kEdgeClassCount; ++i) {  // slack excluded
    if (by_class[i] > best_ns) {
      best_ns = by_class[i];
      best = static_cast<EdgeClass>(i);
    }
  }
  return best_ns > 0 ? best : EdgeClass::slack;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string CriticalPath::json() const {
  std::string out = "{\"window_start_ns\":";
  out += std::to_string(window_start);
  out += ",\"window_end_ns\":";
  out += std::to_string(window_end);
  out += ",\"total_ns\":";
  out += std::to_string(total());
  out += ",\"dominant\":\"";
  out += edge_class_name(dominant());
  out += "\",\"by_class\":{";
  for (std::size_t i = 0; i < kEdgeClassCount; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += edge_class_name(static_cast<EdgeClass>(i));
    out += "\":";
    out += std::to_string(by_class[i]);
  }
  out += "},\"edges\":[";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const CpEdge& e = edges[i];
    if (i != 0) out += ',';
    out += "{\"class\":\"";
    out += edge_class_name(e.cls);
    out += "\",\"start_ns\":";
    out += std::to_string(e.start);
    out += ",\"dur_ns\":";
    out += std::to_string(e.dur());
    if (!e.label.empty()) {
      out += ",\"label\":\"";
      append_escaped(out, e.label);
      out += '"';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

CriticalPath CpRecorder::resolve(std::int64_t window_start, std::int64_t window_end) const {
  CriticalPath cp;
  cp.window_start = window_start;
  cp.window_end = window_end;
  if (window_end <= window_start) return cp;
  cp.valid = true;

  // Backward walk: at each cursor, the chosen interval is the one that
  // reaches furthest toward the cursor (max min(end, cursor)); among equals
  // the latest-starting (shortest) interval wins, then the latest-recorded —
  // all deterministic, no sim state consulted.
  std::vector<CpEdge> rev;
  std::int64_t cursor = window_end;
  while (cursor > window_start) {
    const CpInterval* best = nullptr;
    std::int64_t best_reach = window_start;
    for (const CpInterval& iv : intervals_) {
      if (iv.start >= cursor || iv.end <= window_start) continue;
      const std::int64_t reach = std::min(iv.end, cursor);
      if (best == nullptr || reach > best_reach ||
          (reach == best_reach && iv.start >= best->start)) {
        best = &iv;
        best_reach = reach;
      }
    }
    if (best == nullptr) {
      rev.push_back(CpEdge{window_start, cursor, EdgeClass::slack, {}});
      break;
    }
    if (best_reach < cursor) {
      rev.push_back(CpEdge{best_reach, cursor, EdgeClass::slack, {}});
      cursor = best_reach;
      continue;  // re-pick: `best` is still the frontier candidate
    }
    const std::int64_t seg_start = std::max(best->start, window_start);
    rev.push_back(CpEdge{seg_start, cursor, best->cls, best->label});
    cursor = seg_start;
  }
  // Reverse into time order and coalesce adjacent same-class/same-label
  // edges (slack fragments in particular).
  cp.edges.reserve(rev.size());
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    if (!cp.edges.empty() && cp.edges.back().cls == it->cls &&
        cp.edges.back().label == it->label && cp.edges.back().end == it->start) {
      cp.edges.back().end = it->end;
    } else {
      cp.edges.push_back(*it);
    }
  }
  for (const CpEdge& e : cp.edges) {
    cp.by_class[static_cast<std::size_t>(e.cls)] += e.dur();
  }
  return cp;
}

}  // namespace migr::obs
