// Process-wide metrics registry: named counters, gauges, and log-bucketed
// histograms (obs/histogram.hpp) with percentile queries, all supporting
// labels (qp=<qpn>, link=<a>-<b>, host=<h>, ...).
//
// Hot-path discipline: instrumented code resolves its instruments ONCE (at
// construction) and keeps the returned references; an increment is then a
// plain integer add with no lookup, hashing, or locking. The registry itself
// is only touched at registration and snapshot time.
//
// Kill switches:
//  * compile-time: configure with -DMIGR_OBS_DISABLE=ON (defines
//    MIGR_OBS_DISABLED) and every inc()/set()/observe() compiles to nothing.
//  * runtime: Registry::set_enabled(false) *before* instruments are created
//    makes the registry hand out shared dummy cells that never appear in
//    snapshots. Instruments created while enabled keep working.
//
// Besides first-class instruments, existing stats structs (PortStats,
// FetchStats, PerftestStats) register themselves as *sources*: callbacks
// polled at snapshot time, so one snapshot covers every layer without
// rewriting the structs' accessor APIs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace migr::obs {

/// Key/value labels attached to an instrument, e.g. {{"host","1"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t d = 1) noexcept {
#ifndef MIGR_OBS_DISABLED
    v_ += d;
#else
    (void)d;
#endif
  }
  std::uint64_t value() const noexcept { return v_; }
  void reset() noexcept { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept {
#ifndef MIGR_OBS_DISABLED
    v_ = v;
#else
    (void)v;
#endif
  }
  void add(double d) noexcept {
#ifndef MIGR_OBS_DISABLED
    v_ += d;
#else
    (void)d;
#endif
  }
  double value() const noexcept { return v_; }
  void reset() noexcept { v_ = 0; }

 private:
  double v_ = 0;
};

// The registry's histogram IS obs::Histogram (obs/histogram.hpp): the
// log-bucketed sketch with an exact-sample reservoir. Registry clients use
// its observe() verb, which the MIGR_OBS_DISABLED kill switch compiles out.

/// Point-in-time view of one instrument (or one polled source field).
struct SnapshotEntry {
  enum class Kind { counter, gauge, histogram, source };
  std::string name;  // full name including rendered labels
  Kind kind = Kind::counter;
  double value = 0;  // counter/gauge/source value; histogram mean
  // Histogram summary (kind == histogram only):
  std::uint64_t count = 0;
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
  std::int64_t max = 0;
};

class Registry {
 public:
  /// The process-wide registry every layer instruments by default.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Resolve (creating on first use) an instrument. The returned reference
  /// stays valid for the registry's lifetime — cache it.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {});

  /// A source is polled at snapshot time and contributes (field, value)
  /// pairs under `name`. Returns an id for unregister_source; any object
  /// whose lifetime is shorter than the registry MUST unregister.
  using SourceFn = std::function<std::vector<std::pair<std::string, double>>()>;
  std::uint64_t register_source(std::string name, const Labels& labels, SourceFn fn);
  void unregister_source(std::uint64_t id);

  /// All instruments plus polled sources, sorted by name. Deterministic.
  std::vector<SnapshotEntry> snapshot() const;
  /// Zero every instrument (registrations and sources are kept).
  void reset();
  /// Drop every instrument and source (tests / bench isolation).
  void clear();

  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Human-readable metrics table (the `--metrics` output).
  void print(std::FILE* out) const;

  /// Render "name{k=v,k=v}"; used for snapshot names and by callers that
  /// want consistent key formatting.
  static std::string render_name(std::string_view name, const Labels& labels);

 private:
  mutable std::mutex mu_;  // guards the maps; never taken on the data path
  bool enabled_ = true;

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;

  struct Source {
    std::string name;
    SourceFn fn;
  };
  std::map<std::uint64_t, Source> sources_;
  std::uint64_t next_source_id_ = 1;
};

}  // namespace migr::obs
