// The repo's one percentile implementation: a fixed-memory, mergeable,
// log-bucketed latency histogram (HDR-style) over int64 samples (ns
// durations, byte counts).
//
// Bucketing: values 0..63 get one exact bucket each; above that, each
// power-of-two octave is split into 32 sub-buckets, so the quantization
// error of a bucketed percentile is bounded at ~3.1% while the whole table
// stays a flat 1888-slot count array — fixed memory no matter how many
// samples stream through, and two histograms merge by adding slots.
//
// Exact mode: alongside the buckets, the first `exact_capacity` raw samples
// are kept verbatim (capacity reserved at construction). While the sample
// count fits, percentile() answers by nearest rank over the raw values —
// *exactly* what a sort-and-index over the full data would return. Small
// populations (per-drain blackouts, per-window RTTs) therefore keep
// bit-exact percentiles (DrainReport's rendering is byte-identical to the
// pre-histogram code), and only beyond the capacity does the answer degrade
// to the bucketed estimate. Merging keeps exact mode when the combined
// population still fits.
//
// Cost discipline: observe() is branch + increment work on preallocated
// memory — zero steady-state allocation (pinned by obs_test with a counting
// operator new). reset() keeps the capacity. Queries may allocate scratch
// (they sort a copy); they are report-time, not data-path.
#pragma once

#include <cstdint>
#include <vector>

namespace migr::obs {

class Histogram {
 public:
  /// Raw samples kept for exact percentiles before degrading to buckets.
  static constexpr std::size_t kDefaultExactCapacity = 512;

  explicit Histogram(std::size_t exact_capacity = kDefaultExactCapacity);

  /// Record one sample. Negative values clamp to bucket 0 (min() still
  /// reports the true value); values beyond 2^62 land in the top bucket
  /// (max() stays exact). This is the library verb: it always works, even
  /// in MIGR_OBS_DISABLED builds, because report math (DrainReport
  /// percentiles) depends on it.
  void record(std::int64_t v) noexcept;

  /// The instrument verb used by registry clients: identical to record()
  /// but compiled to nothing under MIGR_OBS_DISABLED, matching
  /// Counter::inc() / Gauge::set().
  void observe(std::int64_t v) noexcept {
#ifndef MIGR_OBS_DISABLED
    record(v);
#else
    (void)v;
#endif
  }

  /// Fold `other` into this histogram. Exact mode survives when the
  /// combined population fits this histogram's reservoir; otherwise both
  /// sides' buckets carry the distribution.
  void merge(const Histogram& other);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  std::int64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const noexcept { return count_ == 0 ? 0 : max_; }

  /// Nearest-rank percentile, p in [0, 100]: the ceil(p/100*n)-th smallest
  /// sample (rank clamped to [1, n]). Returns 0 on an empty histogram. In
  /// exact mode the answer is the recorded sample itself; in bucketed mode
  /// it is the containing bucket's upper bound, clamped to [min, max].
  std::int64_t percentile(double p) const noexcept;

  /// Still answering percentiles from raw samples (count <= capacity)?
  bool exact() const noexcept { return exact_; }
  std::size_t exact_capacity() const noexcept { return samples_.capacity(); }

  /// Count in log-bucket slot `i` (for export/inspection).
  static constexpr std::size_t kBuckets = 64 + 57 * 32;  // exact run + octaves
  std::uint64_t bucket_count(std::size_t i) const noexcept { return buckets_[i]; }
  /// Largest value mapping to bucket `i` (the bucket's representative).
  static std::int64_t bucket_upper(std::size_t i) noexcept;
  /// Bucket index for value `v` (clamped like observe()).
  static std::size_t bucket_index(std::int64_t v) noexcept;

  /// Zero all counts and samples; capacity and memory are kept.
  void reset() noexcept;

 private:
  std::vector<std::uint64_t> buckets_;   // kBuckets slots, sized once
  std::vector<std::int64_t> samples_;    // exact reservoir, capacity fixed
  bool exact_ = true;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace migr::obs
