#include "obs/timeseries.hpp"

#include <algorithm>
#include <cstdio>

namespace migr::obs {

namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  // %.17g round-trips doubles exactly; trim the common integer case so the
  // CSV stays readable (counters dominate).
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

bool TimeSeriesSampler::matches(const std::string& name) const {
  if (opts_.prefixes.empty()) return true;
  for (const std::string& p : opts_.prefixes) {
    if (name.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

std::uint32_t TimeSeriesSampler::column_id(const std::string& name) {
  auto it = columns_.find(name);
  if (it != columns_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(columns_.size());
  columns_.emplace(name, id);
  return id;
}

void TimeSeriesSampler::sample(std::int64_t now_ns) {
  Row row;
  row.ts_ns = now_ns;
  const auto snap = registry_.snapshot();
  row.values.reserve(snap.size());
  for (const SnapshotEntry& e : snap) {
    if (!matches(e.name)) continue;
    row.values.emplace_back(column_id(e.name), e.value);
    if (e.kind == SnapshotEntry::Kind::histogram) {
      row.values.emplace_back(column_id(e.name + ".count"), static_cast<double>(e.count));
    }
  }
  rows_.push_back(std::move(row));
}

void TimeSeriesSampler::clear() {
  columns_.clear();
  rows_.clear();
}

std::string TimeSeriesSampler::export_csv() const {
  std::string out;
  out.reserve(rows_.size() * 64 + 256);
  out += "ts_ns";
  for (const auto& [name, id] : columns_) {
    (void)id;
    out += ',';
    // Labelled instruments render as name{a=1,b=2} — RFC-4180-quote any
    // column whose name would otherwise split the header row.
    if (name.find(',') != std::string::npos || name.find('"') != std::string::npos) {
      out += '"';
      for (char c : name) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += name;
    }
  }
  out += '\n';

  std::vector<std::uint32_t> order;  // column id in name-sorted position
  order.reserve(columns_.size());
  for (const auto& [name, id] : columns_) {
    (void)name;
    order.push_back(id);
  }

  std::vector<double> cells;
  std::vector<bool> present;
  for (const Row& row : rows_) {
    cells.assign(columns_.size(), 0.0);
    present.assign(columns_.size(), false);
    for (const auto& [id, v] : row.values) {
      cells[id] = v;
      present[id] = true;
    }
    out += std::to_string(row.ts_ns);
    for (std::uint32_t id : order) {
      out += ',';
      if (present[id]) append_num(out, cells[id]);
    }
    out += '\n';
  }
  return out;
}

std::string TimeSeriesSampler::export_json() const {
  std::string out;
  out.reserve(rows_.size() * 64 + 256);
  out += "{\"kind\":\"timeseries\",\"series\":[";
  bool first_series = true;
  for (const auto& [name, id] : columns_) {
    if (!first_series) out += ',';
    first_series = false;
    out += "{\"name\":\"";
    append_escaped(out, name);
    out += "\",\"points\":[";
    bool first_pt = true;
    for (const Row& row : rows_) {
      for (const auto& [cid, v] : row.values) {
        if (cid != id) continue;
        if (!first_pt) out += ',';
        first_pt = false;
        out += '[';
        out += std::to_string(row.ts_ns);
        out += ',';
        append_num(out, v);
        out += ']';
        break;
      }
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

common::Status TimeSeriesSampler::write(const std::string& path) const {
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = json ? export_json() : export_csv();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::err(common::Errc::internal, "cannot open timeseries file " + path);
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return common::err(common::Errc::internal, "short write to timeseries file " + path);
  }
  return common::Status::ok();
}

}  // namespace migr::obs
