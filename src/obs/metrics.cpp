#include "obs/metrics.hpp"

#include <algorithm>

namespace migr::obs {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::string Registry::render_name(std::string_view name, const Labels& labels) {
  std::string out{name};
  if (labels.empty()) return out;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  out += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) {
    static Counter sink;
    return sink;
  }
  auto& slot = counters_[render_name(name, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) {
    static Gauge sink;
    return sink;
  }
  auto& slot = gauges_[render_name(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) {
    static Histogram sink{0};
    return sink;
  }
  auto& slot = histograms_[render_name(name, labels)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t Registry::register_source(std::string name, const Labels& labels,
                                        SourceFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return 0;
  const std::uint64_t id = next_source_id_++;
  sources_.emplace(id, Source{render_name(name, labels), std::move(fn)});
  return id;
}

void Registry::unregister_source(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.erase(id);
}

std::vector<SnapshotEntry> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotEntry> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::counter;
    e.value = static_cast<double>(c->value());
    out.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::gauge;
    e.value = g->value();
    out.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::histogram;
    e.value = h->mean();
    e.count = h->count();
    e.p50 = h->percentile(50);
    e.p99 = h->percentile(99);
    e.max = h->max();
    out.push_back(std::move(e));
  }
  for (const auto& [id, src] : sources_) {
    (void)id;
    for (auto& [field, value] : src.fn()) {
      SnapshotEntry e;
      e.name = src.name + '.' + field;
      e.kind = SnapshotEntry::Kind::source;
      e.value = value;
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.name < b.name; });
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  sources_.clear();
}

void Registry::print(std::FILE* out) const {
  std::fprintf(out, "%-56s %14s %10s %12s %12s\n", "metric", "value", "count", "p50", "p99");
  for (const auto& e : snapshot()) {
    if (e.kind == SnapshotEntry::Kind::histogram) {
      std::fprintf(out, "%-56s %14.2f %10llu %12lld %12lld\n", e.name.c_str(), e.value,
                   static_cast<unsigned long long>(e.count),
                   static_cast<long long>(e.p50), static_cast<long long>(e.p99));
    } else {
      std::fprintf(out, "%-56s %14.2f\n", e.name.c_str(), e.value);
    }
  }
}

}  // namespace migr::obs
