#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace migr::obs {
namespace {

// 0..63 map one-to-one; above that each octave [2^k, 2^(k+1)) splits into
// 32 sub-buckets of width 2^(k-5). First split octave is k=6 (values 64+).
constexpr std::size_t kExactRun = 64;
constexpr unsigned kSubBuckets = 32;   // 2^5 sub-buckets per octave
constexpr unsigned kSubShiftBase = 5;  // log2(kSubBuckets)

}  // namespace

std::size_t Histogram::bucket_index(std::int64_t v) noexcept {
  if (v < 0) return 0;
  auto u = static_cast<std::uint64_t>(v);
  if (u < kExactRun) return static_cast<std::size_t>(u);
  // Octave k = position of the highest set bit (6..62 for in-range values).
  unsigned k = 63u - static_cast<unsigned>(std::countl_zero(u));
  if (k > 62) k = 62;
  std::uint64_t sub = (u >> (k - kSubShiftBase)) & (kSubBuckets - 1);
  std::size_t idx =
      kExactRun + (k - 6) * kSubBuckets + static_cast<std::size_t>(sub);
  return idx < kBuckets ? idx : kBuckets - 1;
}

std::int64_t Histogram::bucket_upper(std::size_t i) noexcept {
  if (i < kExactRun) return static_cast<std::int64_t>(i);
  std::size_t rel = i - kExactRun;
  unsigned k = 6 + static_cast<unsigned>(rel / kSubBuckets);
  std::uint64_t sub = rel % kSubBuckets;
  std::uint64_t width = std::uint64_t{1} << (k - kSubShiftBase);
  std::uint64_t upper = (std::uint64_t{1} << k) + (sub + 1) * width - 1;
  return static_cast<std::int64_t>(upper);
}

Histogram::Histogram(std::size_t exact_capacity) : buckets_(kBuckets, 0) {
  samples_.reserve(exact_capacity);
}

void Histogram::record(std::int64_t v) noexcept {
  buckets_[bucket_index(v)]++;
  if (exact_) {
    if (samples_.size() < samples_.capacity()) {
      samples_.push_back(v);
    } else {
      exact_ = false;
      samples_.clear();
    }
  }
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  count_++;
  sum_ += static_cast<double>(v);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (exact_ && other.exact_ &&
      samples_.size() + other.samples_.size() <= samples_.capacity()) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  } else {
    exact_ = false;
    samples_.clear();
  }
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Nearest rank: the ceil(p/100 * n)-th smallest, rank clamped to [1, n].
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  if (exact_) {
    // Report-time scratch sort; the live reservoir stays untouched.
    std::vector<std::int64_t> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    return sorted[static_cast<std::size_t>(rank - 1)];
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      std::int64_t v = bucket_upper(i);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  samples_.clear();
  exact_ = true;
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace migr::obs
