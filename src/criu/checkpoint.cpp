#include "criu/checkpoint.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace migr::criu {

using common::Errc;
using common::Result;
using common::Status;

// ---------------------------------------------------------------------------
// Checkpointer
// ---------------------------------------------------------------------------

Checkpointer::Dump Checkpointer::dump_common(bool full) {
  Dump dump;
  auto& mem = src_.mem();
  for (const auto& vma : mem.vmas()) {
    dump.image.vmas.push_back(VmaImage{vma.start, vma.length, vma.tag});
  }
  dump.image.mmap_cursor = mem.mmap_cursor();

  std::vector<proc::VirtAddr> page_addrs;
  if (full) {
    for (const auto& vma : mem.vmas()) {
      for (proc::VirtAddr p = vma.start; p < vma.start + vma.length; p += proc::kPageSize) {
        page_addrs.push_back(p);
      }
    }
    // The full dump resets dirty tracking: everything is captured.
    mem.collect_dirty(/*clear=*/true);
  } else {
    page_addrs = mem.collect_dirty(/*clear=*/true);
  }
  dump.pages.pages.reserve(page_addrs.size());
  for (proc::VirtAddr addr : page_addrs) {
    PageSet::Page page;
    page.addr = addr;
    page.data.resize(proc::kPageSize);
    if (mem.read(addr, page.data).is_ok()) {
      dump.pages.pages.push_back(std::move(page));
    }
  }
  dump.cost = costs_.dump_cost(dump.image.vmas.size(), dump.pages.pages.size());
  return dump;
}

Checkpointer::Dump Checkpointer::pre_dump() {
  const bool full = !first_done_;
  first_done_ = true;
  return dump_common(full);
}

Result<Checkpointer::Dump> Checkpointer::final_dump() {
  if (!src_.frozen()) {
    return common::err(Errc::failed_precondition, "final dump requires a frozen process");
  }
  Dump dump = dump_common(!first_done_);
  first_done_ = true;
  dump.final = true;
  dump.cost += costs_.freeze;
  return dump;
}

Result<Checkpointer::EpochDump> Checkpointer::epoch_dump() {
  if (!src_.frozen()) {
    return common::err(Errc::failed_precondition, "epoch dump requires a frozen process");
  }
  const bool full = !first_done_;
  first_done_ = true;
  Dump d = dump_common(full);
  EpochDump out;
  out.epoch = epoch_++;
  out.image = std::move(d.image);
  out.pages = std::move(d.pages);
  out.cost = d.cost + costs_.freeze;
  return out;
}

Result<Checkpointer::LazyDump> Checkpointer::final_dump_lazy() {
  if (!src_.frozen()) {
    return common::err(Errc::failed_precondition, "final dump requires a frozen process");
  }
  LazyDump dump;
  auto& mem = src_.mem();
  for (const auto& vma : mem.vmas()) {
    dump.image.vmas.push_back(VmaImage{vma.start, vma.length, vma.tag});
  }
  dump.image.mmap_cursor = mem.mmap_cursor();
  if (!first_done_) {
    // No pre-copy pass ran: every mapped page is missing on the destination.
    for (const auto& vma : mem.vmas()) {
      for (proc::VirtAddr p = vma.start; p < vma.end(); p += proc::kPageSize) {
        dump.missing.push_back(p);
      }
    }
    mem.collect_dirty(/*clear=*/true);
  } else {
    dump.missing = mem.collect_dirty(/*clear=*/true);
  }
  first_done_ = true;
  dump.cost = costs_.dump_cost(dump.image.vmas.size(), 0) + costs_.freeze;
  return dump;
}

// ---------------------------------------------------------------------------
// Restorer
// ---------------------------------------------------------------------------

Status Restorer::place_one(const VmaImage& vma, bool pin, Report& report) {
  auto& mem = dst_.mem();
  Entry entry;
  entry.vma = vma;
  if (pin) {
    // Pinned VMAs must live at their original address now. If the range
    // collides with the restorer's temporary arena, defer to full restore.
    const bool conflicts = temp_base_ != 0 && vma.start < temp_base_ + costs_.temp_bytes &&
                           vma.start + vma.length > temp_base_;
    if (!conflicts && mem.mapped(vma.start, vma.length)) {
      // A plugin may have pre-mapped the range already (e.g. MigrRDMA maps
      // on-chip memory by alloc+mremap before memory restoration starts);
      // accept it as pinned without remapping.
      entry.placement = Placement::pinned;
      report.cost += costs_.per_vma_restore;
      entries_.emplace(vma.start, std::move(entry));
      return Status::ok();
    }
    if (conflicts) {
      entry.placement = Placement::deferred;
      report.deferred.push_back(vma);
      MIGR_DEBUG() << "vma @" << std::hex << vma.start
                   << " conflicts with restorer temp; deferred";
    } else {
      MIGR_RETURN_IF_ERROR(mem.mmap_fixed(vma.start, vma.length, vma.tag));
      entry.placement = Placement::pinned;
    }
  } else {
    entry.placement = Placement::staged;
    entry.staged_at = staging_cursor_;
    staging_cursor_ += proc::page_ceil(vma.length) + proc::kPageSize;
    MIGR_RETURN_IF_ERROR(mem.mmap_fixed(entry.staged_at, vma.length, vma.tag));
  }
  report.cost += costs_.per_vma_restore;
  entries_.emplace(vma.start, std::move(entry));
  return Status::ok();
}

Result<Restorer::Report> Restorer::place_vmas(const MemoryImage& image,
                                              const std::set<proc::VirtAddr>& pinned,
                                              bool initial) {
  Report report;
  latest_cursor_ = image.mmap_cursor;
  if (initial) {
    // The restorer's scratch arena sits exactly where the source process's
    // allocator will hand out its *next* mappings — the collision the paper
    // designs around (§3.2).
    temp_base_ = image.mmap_cursor;
    MIGR_RETURN_IF_ERROR(dst_.mem().mmap_fixed(temp_base_, costs_.temp_bytes, "criu_temp"));
  }
  for (const auto& vma : image.vmas) {
    if (entries_.contains(vma.start)) continue;
    MIGR_RETURN_IF_ERROR(place_one(vma, pinned.contains(vma.start), report));
  }
  if (!initial) {
    // VMAs gone from the image were unmapped on the source; drop them.
    std::vector<proc::VirtAddr> dead;
    for (const auto& [start, entry] : entries_) {
      if (image.find(start) == nullptr) dead.push_back(start);
    }
    for (proc::VirtAddr start : dead) {
      const Entry& e = entries_.at(start);
      if (e.placement == Placement::pinned) (void)dst_.mem().munmap(start);
      if (e.placement == Placement::staged) (void)dst_.mem().munmap(e.staged_at);
      entries_.erase(start);
    }
  }
  return report;
}

Result<Restorer::Report> Restorer::begin(const MemoryImage& image,
                                         const std::set<proc::VirtAddr>& pinned) {
  if (started_) return common::err(Errc::failed_precondition, "restore already begun");
  started_ = true;
  return place_vmas(image, pinned, /*initial=*/true);
}

Result<Restorer::Report> Restorer::update(const MemoryImage& image,
                                          const std::set<proc::VirtAddr>& pinned) {
  if (!started_) return common::err(Errc::failed_precondition, "begin() first");
  if (finished_) return common::err(Errc::failed_precondition, "already finished");
  return place_vmas(image, pinned, /*initial=*/false);
}

Result<Restorer::Report> Restorer::apply_pages(const PageSet& set) {
  if (!started_) return common::err(Errc::failed_precondition, "begin() first");
  Report report;
  auto& mem = dst_.mem();
  for (const auto& page : set.pages) {
    // Find the VMA containing this page (entries are keyed by start).
    const Entry* owner = nullptr;
    auto it = entries_.find(page.addr);
    if (it != entries_.end()) {
      owner = &it->second;
    } else {
      for (const auto& [start, entry] : entries_) {
        if (page.addr >= start && page.addr < start + entry.vma.length) {
          owner = &entry;
          break;
        }
      }
    }
    if (owner == nullptr) {
      MIGR_DEBUG() << "page @" << std::hex << page.addr << " has no vma; dropped";
      continue;
    }
    switch (owner->placement) {
      case Placement::pinned:
        MIGR_RETURN_IF_ERROR(mem.write(page.addr, page.data));
        break;
      case Placement::staged:
        MIGR_RETURN_IF_ERROR(
            mem.write(owner->staged_at + (page.addr - owner->vma.start), page.data));
        break;
      case Placement::deferred:
        deferred_pages_.push_back(page);
        break;
    }
    report.cost += costs_.per_page_restore;
  }
  return report;
}

Result<Restorer::Report> Restorer::finish() {
  if (!started_) return common::err(Errc::failed_precondition, "begin() first");
  if (finished_) return common::err(Errc::failed_precondition, "already finished");
  finished_ = true;
  Report report;
  auto& mem = dst_.mem();

  // Release the scratch arena first: deferred VMAs land in its range.
  MIGR_RETURN_IF_ERROR(mem.munmap(temp_base_));

  for (auto& [start, entry] : entries_) {
    switch (entry.placement) {
      case Placement::staged:
        // The final iteration remaps staging to the application's original
        // virtual addresses (CRIU behaviour the paper describes in §2.2).
        MIGR_RETURN_IF_ERROR(mem.mremap(entry.staged_at, start));
        entry.placement = Placement::pinned;
        report.cost += costs_.per_vma_remap;
        break;
      case Placement::deferred:
        MIGR_RETURN_IF_ERROR(mem.mmap_fixed(start, entry.vma.length, entry.vma.tag));
        entry.placement = Placement::pinned;
        report.deferred.push_back(entry.vma);  // now mapped; caller re-registers MRs
        report.cost += costs_.per_vma_restore;
        break;
      case Placement::pinned:
        break;
    }
  }
  for (const auto& page : deferred_pages_) {
    MIGR_RETURN_IF_ERROR(mem.write(page.addr, page.data));
    report.cost += costs_.per_page_restore;
  }
  deferred_pages_.clear();
  mem.set_mmap_cursor(latest_cursor_);
  report.cost += costs_.final_restore_base;
  return report;
}

proc::VirtAddr Restorer::current_addr(proc::VirtAddr orig) const {
  for (const auto& [start, entry] : entries_) {
    if (orig < start || orig >= start + entry.vma.length) continue;
    switch (entry.placement) {
      case Placement::pinned:
        return orig;
      case Placement::staged:
        return finished_ ? orig : entry.staged_at + (orig - start);
      case Placement::deferred:
        return finished_ ? orig : 0;
    }
  }
  return 0;
}

}  // namespace migr::criu
