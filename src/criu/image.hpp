// Checkpoint image format: VMA tables and page sets, serialized with the
// common byte format because images cross the (simulated) network between
// migration source and destination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "proc/address_space.hpp"

namespace migr::criu {

struct VmaImage {
  proc::VirtAddr start = 0;
  std::uint64_t length = 0;
  std::string tag;
};

/// The memory-structure part of a checkpoint: the VMA table plus the
/// process's mmap allocation cursor (needed so the restored process keeps
/// allocating from where the source left off — and so the restorer knows
/// which address range its own temporary memory will collide with).
struct MemoryImage {
  std::vector<VmaImage> vmas;
  std::uint64_t mmap_cursor = 0;

  common::Bytes serialize() const;
  static common::Result<MemoryImage> parse(std::span<const std::uint8_t> data);

  const VmaImage* find(proc::VirtAddr start) const {
    for (const auto& v : vmas) {
      if (v.start == start) return &v;
    }
    return nullptr;
  }
};

/// A batch of page contents keyed by original virtual address. The first
/// pre-copy round carries every page; later rounds carry only dirty pages.
struct PageSet {
  struct Page {
    proc::VirtAddr addr = 0;
    common::Bytes data;  // exactly kPageSize
  };
  std::vector<Page> pages;

  std::uint64_t byte_size() const { return pages.size() * proc::kPageSize; }

  common::Bytes serialize() const;
  static common::Result<PageSet> parse(std::span<const std::uint8_t> data);
};

}  // namespace migr::criu
