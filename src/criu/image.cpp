#include "criu/image.hpp"

namespace migr::criu {

using common::ByteReader;
using common::ByteWriter;

common::Bytes MemoryImage::serialize() const {
  ByteWriter w;
  w.u64(mmap_cursor);
  w.u32(static_cast<std::uint32_t>(vmas.size()));
  for (const auto& v : vmas) {
    w.u64(v.start);
    w.u64(v.length);
    w.str(v.tag);
  }
  return std::move(w).take();
}

common::Result<MemoryImage> MemoryImage::parse(std::span<const std::uint8_t> data) {
  ByteReader r{data};
  MemoryImage img;
  MIGR_ASSIGN_OR_RETURN(img.mmap_cursor, r.u64());
  MIGR_ASSIGN_OR_RETURN(auto n, r.u32());
  img.vmas.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    VmaImage v;
    MIGR_ASSIGN_OR_RETURN(v.start, r.u64());
    MIGR_ASSIGN_OR_RETURN(v.length, r.u64());
    MIGR_ASSIGN_OR_RETURN(v.tag, r.str());
    img.vmas.push_back(std::move(v));
  }
  return img;
}

common::Bytes PageSet::serialize() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(pages.size()));
  for (const auto& p : pages) {
    w.u64(p.addr);
    w.raw(p.data);
  }
  return std::move(w).take();
}

common::Result<PageSet> PageSet::parse(std::span<const std::uint8_t> data) {
  ByteReader r{data};
  PageSet set;
  MIGR_ASSIGN_OR_RETURN(auto n, r.u32());
  set.pages.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Page p;
    MIGR_ASSIGN_OR_RETURN(p.addr, r.u64());
    p.data.resize(proc::kPageSize);
    MIGR_RETURN_IF_ERROR(r.raw(p.data));
    set.pages.push_back(std::move(p));
  }
  return set;
}

}  // namespace migr::criu
