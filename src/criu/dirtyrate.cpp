#include "criu/dirtyrate.hpp"

#include <algorithm>

namespace migr::criu {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len, std::uint64_t h) {
  for (std::size_t i = 0; i < len; i++) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t DirtyRateEstimator::hash_page(proc::VirtAddr page) const {
  // A page that was never materialized (or is marked missing) hashes to the
  // offset basis; if it later gains contents the hash changes and it counts
  // as dirtied, which is the right call for rate purposes.
  auto phys = proc_.mem().page_at(page);
  if (!phys) return kFnvOffset;
  return fnv1a(phys->data.data(), phys->data.size(), kFnvOffset);
}

void DirtyRateEstimator::begin_interval(sim::TimeNs now) {
  samples_.clear();
  total_pages_ = 0;

  const std::vector<proc::Vma> vmas = proc_.mem().vmas();
  for (const auto& v : vmas) total_pages_ += v.length / proc::kPageSize;
  if (total_pages_ == 0) {
    interval_start_ = now;
    return;
  }

  const std::size_t want =
      std::min<std::size_t>(cfg_.sample_pages, total_pages_);
  samples_.reserve(want);
  for (std::size_t i = 0; i < want; i++) {
    // Uniform page index over the whole mapped set, mapped back to an
    // address by walking the VMA table. Duplicates are possible and
    // harmless — QEMU's sampler tolerates them the same way.
    std::uint64_t idx = rng_.below(total_pages_);
    proc::VirtAddr addr = 0;
    for (const auto& v : vmas) {
      const std::uint64_t npages = v.length / proc::kPageSize;
      if (idx < npages) {
        addr = v.start + idx * proc::kPageSize;
        break;
      }
      idx -= npages;
    }
    samples_.push_back(Sample{addr, hash_page(addr)});
  }
  interval_start_ = now;
}

std::uint64_t DirtyRateEstimator::end_interval(sim::TimeNs now) {
  if (interval_start_ < 0) return 0;
  const sim::DurationNs elapsed = now - interval_start_;
  interval_start_ = -1;
  if (elapsed <= 0 || samples_.empty()) return 0;

  std::size_t changed = 0;
  for (const auto& s : samples_) {
    if (hash_page(s.page) != s.hash) changed++;
  }
  const double fraction =
      static_cast<double>(changed) / static_cast<double>(samples_.size());
  const double est_pages = fraction * static_cast<double>(total_pages_);
  const double interval_pps = est_pages / (static_cast<double>(elapsed) * 1e-9);

  if (intervals_ == 0) {
    rate_pps_ = interval_pps;
  } else {
    rate_pps_ = cfg_.ewma_alpha * interval_pps +
                (1.0 - cfg_.ewma_alpha) * rate_pps_;
  }
  intervals_++;
  return static_cast<std::uint64_t>(est_pages);
}

}  // namespace migr::criu
