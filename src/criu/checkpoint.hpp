// Source-side checkpointing (CRIU "dump" analogue) and destination-side
// restoration with the partial/full restore split MigrRDMA adds (paper §4).
//
// Restore model, mirroring CRIU's pre-copy behaviour described in §2.2/§3.2:
//  * Most VMAs are first materialized at a *temporary* ("staging") address
//    and only mremap()ed to the application's original addresses during the
//    final restore iteration.
//  * VMAs the plugin *pins* (the RDMA-related memory structures) are mapped
//    directly at their original virtual addresses before memory restoration
//    starts, so MRs can be registered during pre-copy.
//  * The restorer's own temporary memory occupies the address range the
//    source's allocator hands out next — so a VMA created on the source
//    during pre-copy (a freshly registered MR) can conflict with it. Such
//    pinned VMAs are deferred: mapped at their original address only at the
//    end of full restore, after the temporary memory is released (§3.2
//    "we restore the conflicting MRs at the end of stop-and-copy").
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "criu/image.hpp"
#include "proc/process.hpp"
#include "sim/time.hpp"

namespace migr::criu {

struct CriuCosts {
  sim::DurationNs freeze = sim::msec(2);
  // Fixed per-invocation overhead: seizing the task, walking /proc,
  // writing image headers.
  sim::DurationNs dump_base = sim::msec(12);
  // Dumping is per-VMA with a superlinear term: CRIU's handling of "large
  // and complicated memory structures" is inefficient (paper §5.2, citing
  // MigrOS's report), so DumpOthers grows faster than linearly in #VMAs.
  sim::DurationNs per_vma_dump = sim::usec(6);
  double vma_superlinear = 1.0 / 384.0;
  sim::DurationNs per_page_dump = 250;
  sim::DurationNs per_vma_restore = sim::usec(5);
  sim::DurationNs per_page_restore = 300;
  sim::DurationNs per_vma_remap = sim::usec(2);
  // Non-memory task restore during the final iteration (fds, creds, timers,
  // namespaces — the dominant constant in container restore).
  sim::DurationNs final_restore_base = sim::msec(80);
  std::uint64_t temp_bytes = 32ull << 20;  // restorer scratch arena

  sim::DurationNs dump_cost(std::size_t nvmas, std::size_t npages) const {
    const double factor = 1.0 + static_cast<double>(nvmas) * vma_superlinear;
    return dump_base +
           static_cast<sim::DurationNs>(static_cast<double>(per_vma_dump) *
                                        static_cast<double>(nvmas) * factor) +
           per_page_dump * static_cast<sim::DurationNs>(npages);
  }
};

/// Source-side dumper. The first dump is a full dump; later dumps carry
/// only pages dirtied since the previous one (soft-dirty pre-copy).
class Checkpointer {
 public:
  explicit Checkpointer(proc::SimProcess& src, CriuCosts costs = {})
      : src_(src), costs_(costs) {}

  struct Dump {
    MemoryImage image;   // current VMA table (full, every round)
    PageSet pages;       // full on round 0, dirty-only afterwards
    sim::DurationNs cost = 0;
    bool final = false;
  };

  /// Iterative pre-dump; the process keeps running.
  Dump pre_dump();

  /// Final dump during stop-and-copy; requires the process to be frozen.
  common::Result<Dump> final_dump();

  /// Post-copy variant of the final dump: captures the VMA table and the
  /// *addresses* of pages not yet transferred, but no page contents — those
  /// stay on the source and are fetched after resume. Cost therefore skips
  /// the per-page term, which is exactly where post-copy wins blackout.
  struct LazyDump {
    MemoryImage image;
    std::vector<proc::VirtAddr> missing;  // sorted page addresses
    sim::DurationNs cost = 0;
  };
  common::Result<LazyDump> final_dump_lazy();

  /// Pages currently dirty (peek — does not clear), for the pre-copy
  /// convergence decision.
  std::size_t pending_dirty() const { return src_.mem().dirty_count(); }

  /// Epoch-scoped incremental dump for continuous fault tolerance
  /// (COLO/Remus micro-checkpointing). Epoch 0 is a full dump; every later
  /// epoch ships only pages dirtied since the previous epoch was captured —
  /// a quiet guest's steady-state epochs are near-empty. Requires a frozen
  /// process (the FT controller brief-freezes per epoch), and charges the
  /// freeze cost like final_dump(); unlike final_dump() it does not mark
  /// the dump terminal, so epochs keep flowing for the guest's lifetime.
  struct EpochDump {
    std::uint64_t epoch = 0;  // 0 = full image, N>0 = incremental
    MemoryImage image;        // current VMA table (full, every epoch)
    PageSet pages;            // full on epoch 0, dirty-only afterwards
    sim::DurationNs cost = 0;
  };
  common::Result<EpochDump> epoch_dump();
  std::uint64_t epochs_dumped() const noexcept { return epoch_; }

  const CriuCosts& costs() const { return costs_; }

 private:
  Dump dump_common(bool full);

  proc::SimProcess& src_;
  CriuCosts costs_;
  bool first_done_ = false;
  std::uint64_t epoch_ = 0;
};

/// Destination-side restorer.
class Restorer {
 public:
  Restorer(proc::SimProcess& dst, CriuCosts costs = {}) : dst_(dst), costs_(costs) {}

  struct Report {
    sim::DurationNs cost = 0;
    std::vector<VmaImage> deferred;  // pinned VMAs that conflicted with temp
  };

  /// Partial restore: set up the address space from the first image.
  /// `pinned` lists VMA start addresses that must sit at their original
  /// virtual addresses immediately (RDMA memory structures, per plugin).
  common::Result<Report> begin(const MemoryImage& image,
                               const std::set<proc::VirtAddr>& pinned);

  /// Merge a later pre-copy round: new VMAs appear, dead VMAs vanish,
  /// dirty pages overwrite. Safe to call any number of times.
  common::Result<Report> update(const MemoryImage& image,
                                const std::set<proc::VirtAddr>& pinned);

  /// Apply page contents (full or dirty set). Pages land wherever their VMA
  /// currently lives (original address if pinned, staging otherwise);
  /// pages of deferred VMAs are buffered until finish().
  common::Result<Report> apply_pages(const PageSet& set);

  /// Full restore: remap staged VMAs to original addresses, release the
  /// restorer's temporary memory, map deferred VMAs, restore the task.
  common::Result<Report> finish();

  /// Where `orig` currently lives in the destination address space
  /// (identity for pinned, staging offset otherwise, 0 if deferred/unknown).
  proc::VirtAddr current_addr(proc::VirtAddr orig) const;

  bool started() const noexcept { return started_; }
  bool finished() const noexcept { return finished_; }
  const CriuCosts& costs() const { return costs_; }

 private:
  enum class Placement { pinned, staged, deferred };
  struct Entry {
    VmaImage vma;
    Placement placement = Placement::staged;
    proc::VirtAddr staged_at = 0;
  };

  common::Result<Report> place_vmas(const MemoryImage& image,
                                    const std::set<proc::VirtAddr>& pinned, bool initial);
  common::Status place_one(const VmaImage& vma, bool pin, Report& report);

  proc::SimProcess& dst_;
  CriuCosts costs_;
  bool started_ = false;
  bool finished_ = false;
  proc::VirtAddr temp_base_ = 0;
  std::uint64_t latest_cursor_ = 0;
  proc::VirtAddr staging_cursor_ = 0x5000'0000'0000ULL;
  std::unordered_map<proc::VirtAddr, Entry> entries_;  // keyed by original start
  std::vector<PageSet::Page> deferred_pages_;
};

}  // namespace migr::criu
