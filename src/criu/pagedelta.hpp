// Page-suppression codec for the pre-copy transfer path (multifd-style
// "don't ship what the destination can reconstruct"):
//
//  * zero pages ship a 1-byte tag instead of 4 KiB (QEMU's zero-page
//    detection),
//  * pages whose content matches what the previous round already shipped
//    ship a "same" tag (the dirty bit fired but the bytes round-tripped),
//  * pages that changed by less than a threshold fraction ship XOR-sparse
//    runs against the previously shipped content (delta encoding),
//  * everything else ships in full.
//
// The encoder (source side) and decoder (destination side) each keep a
// shadow cache of the last-shipped content per page, using the same FNV-1a
// page hash as the PR-7 DirtyRateEstimator for the cheap "unchanged" check.
// The caches stay coherent because every encoded batch carries a sequence
// number and is decoded exactly once, in order — the transfer layer (mux or
// single-stream) delivers payloads whole and in order, and a migration that
// aborts mid-round never decodes the interrupted batch.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "criu/image.hpp"

namespace migr::criu {

struct PageDeltaConfig {
  // A changed page delta-encodes only when the fraction of its bytes that
  // changed is below this; above it a full page is cheaper than run framing.
  double delta_threshold = 0.5;
};

/// Cumulative suppression accounting. `raw` is the page content the dirty
/// set was worth (pages x kPageSize); `shipped` is the page content bytes
/// that actually went on the wire. The invariant raw == shipped + suppressed
/// holds by construction and is pinned by tools/validate_artifacts.py.
struct PageDeltaStats {
  std::uint64_t pages_zero = 0;
  std::uint64_t pages_same = 0;
  std::uint64_t pages_delta = 0;
  std::uint64_t pages_full = 0;
  std::uint64_t bytes_raw = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t bytes_suppressed = 0;

  std::uint64_t pages() const {
    return pages_zero + pages_same + pages_delta + pages_full;
  }
  void merge(const PageDeltaStats& o) {
    pages_zero += o.pages_zero;
    pages_same += o.pages_same;
    pages_delta += o.pages_delta;
    pages_full += o.pages_full;
    bytes_raw += o.bytes_raw;
    bytes_shipped += o.bytes_shipped;
    bytes_suppressed += o.bytes_suppressed;
  }
};

/// Source-side encoder. Stateful: remembers the content it shipped for each
/// page so later rounds can delta- or same-suppress against it.
class PageDeltaEncoder {
 public:
  explicit PageDeltaEncoder(PageDeltaConfig cfg = {}) : cfg_(cfg) {}

  /// Encode one dirty-round page set. Updates the shadow cache and the
  /// cumulative stats; per-batch numbers land in `batch` when non-null.
  common::Bytes encode(const PageSet& set, PageDeltaStats* batch = nullptr);

  const PageDeltaStats& stats() const noexcept { return stats_; }

 private:
  PageDeltaConfig cfg_;
  std::unordered_map<proc::VirtAddr, common::Bytes> shipped_;  // last-shipped content
  std::uint64_t next_seq_ = 0;
  PageDeltaStats stats_;
};

/// Destination-side decoder. Mirrors the encoder's shadow cache; batches
/// must arrive exactly once and in order (the sequence number is checked).
/// "same" pages decode to nothing — the destination already holds the
/// content — so the returned PageSet is the restore work left after
/// suppression, not a reconstruction of the full dirty set.
class PageDeltaDecoder {
 public:
  common::Result<PageSet> decode(std::span<const std::uint8_t> data);

 private:
  std::unordered_map<proc::VirtAddr, common::Bytes> content_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace migr::criu
