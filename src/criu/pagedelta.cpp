#include "criu/pagedelta.hpp"

#include <algorithm>
#include <cstring>

namespace migr::criu {

using common::ByteReader;
using common::ByteWriter;
using common::Errc;

namespace {

constexpr std::uint8_t kMagic = 0xE5;

// Per-page encodings, source → destination.
enum Tag : std::uint8_t {
  kFull = 0,   // raw kPageSize bytes follow
  kZero = 1,   // page is all zeroes
  kSame = 2,   // content identical to what was last shipped for this addr
  kDelta = 3,  // XOR-sparse runs against the last-shipped content
};

// Same FNV-1a as criu::DirtyRateEstimator's sampled page hash; cheap enough
// to run over every dirty page and good enough to gate the byte compare.
std::uint64_t fnv1a(const common::Bytes& data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

bool all_zero(const common::Bytes& data) {
  for (std::uint8_t b : data) {
    if (b != 0) return false;
  }
  return true;
}

struct DeltaRun {
  std::uint16_t off = 0;
  std::uint16_t len = 0;
};

// Collect the contiguous differing ranges between old and new page content.
// Returns the total differing byte count; runs land in `runs`.
std::size_t diff_runs(const common::Bytes& oldp, const common::Bytes& newp,
                      std::vector<DeltaRun>& runs) {
  runs.clear();
  std::size_t changed = 0;
  std::size_t i = 0;
  const std::size_t n = newp.size();
  while (i < n) {
    if (oldp[i] == newp[i]) {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < n && oldp[i] != newp[i]) ++i;
    runs.push_back({static_cast<std::uint16_t>(start),
                    static_cast<std::uint16_t>(i - start)});
    changed += i - start;
  }
  return changed;
}

}  // namespace

common::Bytes PageDeltaEncoder::encode(const PageSet& set, PageDeltaStats* batch) {
  ByteWriter w;
  w.u8(kMagic);
  w.u64(next_seq_++);
  w.u32(static_cast<std::uint32_t>(set.pages.size()));

  PageDeltaStats b;
  std::vector<DeltaRun> runs;
  for (const auto& page : set.pages) {
    b.bytes_raw += page.data.size();
    w.u64(page.addr);

    if (all_zero(page.data)) {
      w.u8(kZero);
      b.pages_zero++;
      auto& cached = shipped_[page.addr];
      cached.assign(page.data.size(), 0);
      continue;
    }

    auto it = shipped_.find(page.addr);
    if (it != shipped_.end() && it->second.size() == page.data.size()) {
      const common::Bytes& prev = it->second;
      if (fnv1a(prev) == fnv1a(page.data) && prev == page.data) {
        w.u8(kSame);
        b.pages_same++;
        continue;  // cache already holds this content
      }
      const std::size_t changed = diff_runs(prev, page.data, runs);
      const double frac =
          static_cast<double>(changed) / static_cast<double>(page.data.size());
      if (frac < cfg_.delta_threshold && runs.size() <= 0xFFFF) {
        w.u8(kDelta);
        w.u16(static_cast<std::uint16_t>(runs.size()));
        for (const DeltaRun& run : runs) {
          w.u16(run.off);
          w.u16(run.len);
          // Ship the XOR of old and new so the decoder applies it in place.
          for (std::uint16_t j = 0; j < run.len; ++j) {
            w.u8(static_cast<std::uint8_t>(prev[run.off + j] ^
                                           page.data[run.off + j]));
          }
          b.bytes_shipped += run.len;
        }
        b.pages_delta++;
        it->second = page.data;
        continue;
      }
    }

    w.u8(kFull);
    w.raw(page.data);
    b.pages_full++;
    b.bytes_shipped += page.data.size();
    shipped_[page.addr] = page.data;
  }

  b.bytes_suppressed = b.bytes_raw - b.bytes_shipped;
  stats_.merge(b);
  if (batch != nullptr) *batch = b;
  return std::move(w).take();
}

common::Result<PageSet> PageDeltaDecoder::decode(std::span<const std::uint8_t> data) {
  ByteReader r{data};
  MIGR_ASSIGN_OR_RETURN(auto magic, r.u8());
  if (magic != kMagic) {
    return common::err(Errc::invalid_argument, "pagedelta: bad magic");
  }
  MIGR_ASSIGN_OR_RETURN(auto seq, r.u64());
  if (seq != next_seq_) {
    return common::err(Errc::failed_precondition,
                       "pagedelta: batch out of order (cache would desync)");
  }
  next_seq_++;

  MIGR_ASSIGN_OR_RETURN(auto npages, r.u32());
  PageSet out;
  out.pages.reserve(npages);
  for (std::uint32_t i = 0; i < npages; ++i) {
    MIGR_ASSIGN_OR_RETURN(auto addr, r.u64());
    MIGR_ASSIGN_OR_RETURN(auto tag, r.u8());
    switch (tag) {
      case kFull: {
        PageSet::Page p;
        p.addr = addr;
        p.data.resize(proc::kPageSize);
        MIGR_RETURN_IF_ERROR(r.raw(p.data));
        content_[addr] = p.data;
        out.pages.push_back(std::move(p));
        break;
      }
      case kZero: {
        PageSet::Page p;
        p.addr = addr;
        p.data.assign(proc::kPageSize, 0);
        content_[addr] = p.data;
        out.pages.push_back(std::move(p));
        break;
      }
      case kSame: {
        // Nothing to apply: the destination already holds this content from
        // an earlier batch. (It must — the encoder only emits kSame for
        // addresses it has shipped before.)
        if (content_.find(addr) == content_.end()) {
          return common::err(Errc::failed_precondition,
                             "pagedelta: kSame for never-shipped page");
        }
        break;
      }
      case kDelta: {
        auto it = content_.find(addr);
        if (it == content_.end()) {
          return common::err(Errc::failed_precondition,
                             "pagedelta: kDelta for never-shipped page");
        }
        common::Bytes page = it->second;
        MIGR_ASSIGN_OR_RETURN(auto nruns, r.u16());
        for (std::uint16_t run = 0; run < nruns; ++run) {
          MIGR_ASSIGN_OR_RETURN(auto off, r.u16());
          MIGR_ASSIGN_OR_RETURN(auto len, r.u16());
          if (static_cast<std::size_t>(off) + len > page.size()) {
            return common::err(Errc::invalid_argument,
                               "pagedelta: delta run out of page bounds");
          }
          for (std::uint16_t j = 0; j < len; ++j) {
            MIGR_ASSIGN_OR_RETURN(auto x, r.u8());
            page[off + j] = static_cast<std::uint8_t>(page[off + j] ^ x);
          }
        }
        it->second = page;
        out.pages.push_back({addr, std::move(page)});
        break;
      }
      default:
        return common::err(Errc::invalid_argument, "pagedelta: unknown tag");
    }
  }
  return out;
}

}  // namespace migr::criu
