// Dirty-page-rate estimation for adaptive pre-copy, in the spirit of QEMU's
// migration/dirtyrate.c sample-pages mode: hash a random sample of mapped
// pages at the start of an interval, re-hash at the end, scale the dirtied
// fraction up to the whole address space, and fold the per-interval rate
// into an EWMA. The estimator never touches dirty bits (it reads physical
// pages directly), so running it does not perturb the pre-copy rounds, and
// all randomness comes from a private seeded common::Rng — runs stay
// bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "proc/process.hpp"
#include "sim/time.hpp"

namespace migr::criu {

struct DirtyRateConfig {
  std::size_t sample_pages = 512;  // pages hashed per interval (all, if fewer)
  double ewma_alpha = 0.5;         // weight of the newest interval
  std::uint64_t seed = 0x6d696772;
};

class DirtyRateEstimator {
 public:
  explicit DirtyRateEstimator(proc::SimProcess& proc, DirtyRateConfig cfg = {})
      : proc_(proc), cfg_(cfg), rng_(cfg.seed) {}

  /// Snapshot a fresh page sample at sim-time `now`. Replaces any interval
  /// already open.
  void begin_interval(sim::TimeNs now);

  /// Close the open interval at `now`: re-hash the sample, extrapolate the
  /// dirtied fraction to the whole mapped set, update the EWMA rate.
  /// Returns the estimated pages dirtied over the interval (0 when no
  /// interval was open or no time elapsed).
  std::uint64_t end_interval(sim::TimeNs now);

  bool open() const noexcept { return interval_start_ >= 0; }
  /// At least one interval completed — pages_per_sec() is meaningful.
  bool primed() const noexcept { return intervals_ > 0; }
  std::uint64_t intervals() const noexcept { return intervals_; }

  double pages_per_sec() const noexcept { return rate_pps_; }
  double bytes_per_sec() const noexcept {
    return rate_pps_ * static_cast<double>(proc::kPageSize);
  }

 private:
  struct Sample {
    proc::VirtAddr page = 0;
    std::uint64_t hash = 0;
  };

  std::uint64_t hash_page(proc::VirtAddr page) const;

  proc::SimProcess& proc_;
  DirtyRateConfig cfg_;
  common::Rng rng_;
  std::vector<Sample> samples_;
  std::uint64_t total_pages_ = 0;   // mapped pages when the interval opened
  sim::TimeNs interval_start_ = -1;
  std::uint64_t intervals_ = 0;
  double rate_pps_ = 0;
};

}  // namespace migr::criu
