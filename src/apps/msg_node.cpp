#include "apps/msg_node.hpp"

#include <cstring>

#include "common/log.hpp"

namespace migr::apps {

using common::Errc;
using common::Status;
using rnic::Cqe;
using rnic::CqeOpcode;
using rnic::CqeStatus;
using rnic::RecvWr;
using rnic::SendWr;

MsgNode::MsgNode(MigrRdmaRuntime& runtime, proc::SimProcess& proc, GuestId id,
                 MsgNodeConfig config)
    : runtime_(&runtime), proc_(&proc), id_(id), config_(config) {
  guest_ = runtime.create_guest(proc, id).value();
  pd_ = guest_->alloc_pd().value();
  cq_ = guest_->create_cq(4096).value();
}

MsgNode::~MsgNode() { stop(); }

Status MsgNode::connect(MsgNode& a, MsgNode& b) {
  auto make_peer = [](MsgNode& self) -> common::Result<Peer> {
    Peer peer;
    migrlib::GuestQpAttr attr;
    attr.vpd = self.pd_;
    attr.vsend_cq = self.cq_;
    attr.vrecv_cq = self.cq_;
    attr.caps = {self.config_.depth + 2, self.config_.depth + 2};
    MIGR_ASSIGN_OR_RETURN(peer.vqpn, self.guest_->create_qp(attr));
    const std::uint64_t ring_bytes =
        std::uint64_t{self.config_.max_msg} * self.config_.depth;
    MIGR_ASSIGN_OR_RETURN(peer.send_buf, self.proc_->mem().mmap(ring_bytes, "msg_tx"));
    MIGR_ASSIGN_OR_RETURN(peer.send_mr,
                          self.guest_->reg_mr(self.pd_, peer.send_buf, ring_bytes,
                                              rnic::kAccessLocalWrite));
    MIGR_ASSIGN_OR_RETURN(peer.recv_buf, self.proc_->mem().mmap(ring_bytes, "msg_rx"));
    MIGR_ASSIGN_OR_RETURN(peer.recv_mr,
                          self.guest_->reg_mr(self.pd_, peer.recv_buf, ring_bytes,
                                              rnic::kAccessLocalWrite));
    peer.send_credits = self.config_.depth;
    return peer;
  };
  MIGR_ASSIGN_OR_RETURN(auto pa, make_peer(a));
  MIGR_ASSIGN_OR_RETURN(auto pb, make_peer(b));
  const rnic::Psn psn_a = 7000 + a.id_ * 32;
  const rnic::Psn psn_b = 9000 + b.id_ * 32;
  MIGR_RETURN_IF_ERROR(a.guest_->connect_qp(pa.vqpn, b.id_, pb.vqpn, psn_a, psn_b));
  MIGR_RETURN_IF_ERROR(b.guest_->connect_qp(pb.vqpn, a.id_, pa.vqpn, psn_b, psn_a));

  // Pre-post the full RECV window on both sides.
  auto prepost = [](MsgNode& self, Peer& peer) -> Status {
    for (std::uint32_t d = 0; d < self.config_.depth; ++d) {
      RecvWr wr;
      wr.wr_id = peer.next_recv_seq++;
      wr.sge = {{peer.recv_buf + std::uint64_t{d} * self.config_.max_msg,
                 self.config_.max_msg, peer.recv_mr.vlkey}};
      MIGR_RETURN_IF_ERROR(self.guest_->post_recv(peer.vqpn, wr));
    }
    return Status::ok();
  };
  MIGR_RETURN_IF_ERROR(prepost(a, pa));
  MIGR_RETURN_IF_ERROR(prepost(b, pb));
  a.peers_.emplace(b.id_, pa);
  b.peers_.emplace(a.id_, pb);
  return Status::ok();
}

void MsgNode::enable_sli(obs::SliHub& hub) {
  sli_ = hub.guest(id_, proc_->loop().now());
  if (sli_ == nullptr) return;  // hub disabled
  hub.set_retransmit_source(id_, proc_->loop().now(),
                            [this] { return guest_->total_retransmits(); });
  for (auto& [pid, peer] : peers_) {
    peer.send_ts.assign(config_.depth, 0);
    peer.send_bytes.assign(config_.depth, 0);
  }
}

common::Result<VQpn> MsgNode::qp_to(GuestId peer) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return common::err(Errc::not_found, "peer not connected");
  return it->second.vqpn;
}

Status MsgNode::send(GuestId peer_id, const common::Bytes& payload) {
  if (gate_armed_) {
    if (!peers_.contains(peer_id)) return common::err(Errc::not_found, "peer not connected");
    if (payload.size() + 4 > config_.max_msg) {
      return common::err(Errc::invalid_argument, "message exceeds slot size");
    }
    GatedMsg m;
    m.peer = peer_id;
    m.payload = payload;
    m.epoch = gate_epoch_;
    m.enqueued = proc_->loop().now();
    gate_q_.push_back(std::move(m));
    return Status::ok();
  }
  return send_now(peer_id, payload);
}

Status MsgNode::send_now(GuestId peer_id, const common::Bytes& payload) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) return common::err(Errc::not_found, "peer not connected");
  Peer& peer = it->second;
  if (payload.size() + 4 > config_.max_msg) {
    return common::err(Errc::invalid_argument, "message exceeds slot size");
  }
  if (peer.send_credits == 0) {
    return common::err(Errc::resource_exhausted, "send window full");
  }
  const std::uint32_t slot = peer.send_slot % config_.depth;
  const std::uint64_t addr = peer.send_buf + std::uint64_t{slot} * config_.max_msg;
  common::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  MIGR_RETURN_IF_ERROR(proc_->mem().write(addr, w.data()));

  SendWr wr;
  wr.wr_id = peer.send_slot;
  wr.opcode = rnic::WrOpcode::send;
  wr.sge = {{addr, static_cast<std::uint32_t>(w.size()), peer.send_mr.vlkey}};
  MIGR_RETURN_IF_ERROR(guest_->post_send(peer.vqpn, wr));
  if (sli_ != nullptr) {
    if (peer.send_ts.empty()) {
      peer.send_ts.assign(config_.depth, 0);
      peer.send_bytes.assign(config_.depth, 0);
    }
    peer.send_ts[slot] = proc_->loop().now();
    peer.send_bytes[slot] = static_cast<std::uint32_t>(payload.size());
  }
  peer.send_slot++;
  peer.send_credits--;
  sent_++;
  return Status::ok();
}

void MsgNode::arm_output_commit(std::uint64_t epoch) {
  gate_armed_ = true;
  gate_epoch_ = epoch;
  gate_release_mark_ = -1;
}

void MsgNode::disarm_output_commit() {
  // Everything still held becomes releasable; leftover entries (window
  // pressure) keep draining from ticks until the queue is empty.
  gate_release_mark_ = static_cast<std::int64_t>(gate_epoch_);
  drain_gate();
  gate_armed_ = false;
}

void MsgNode::release_through(std::uint64_t epoch) {
  if (static_cast<std::int64_t>(epoch) > gate_release_mark_) {
    gate_release_mark_ = static_cast<std::int64_t>(epoch);
  }
  drain_gate();
}

void MsgNode::resync_window() {
  for (auto& [pid, peer] : peers_) {
    peer.send_credits = config_.depth;
    if (!peer.send_ts.empty()) {
      peer.send_ts.assign(config_.depth, 0);
      peer.send_bytes.assign(config_.depth, 0);
    }
  }
}

std::size_t MsgNode::drop_uncommitted(std::uint64_t committed_epoch) {
  std::size_t dropped = 0;
  while (!gate_q_.empty() && gate_q_.back().epoch > committed_epoch) {
    gate_q_.pop_back();
    dropped++;
  }
  gate_dropped_ += dropped;
  return dropped;
}

void MsgNode::drain_gate() {
  while (!gate_q_.empty() &&
         static_cast<std::int64_t>(gate_q_.front().epoch) <= gate_release_mark_) {
    GatedMsg& m = gate_q_.front();
    const Status st = send_now(m.peer, m.payload);
    if (!st.is_ok()) {
      // Window full (or peer gone mid-failover): retry from the next tick.
      if (st.code() != Errc::resource_exhausted) {
        errors_++;
        gate_q_.pop_front();
        continue;
      }
      return;
    }
    release_delay_.record(proc_->loop().now() - m.enqueued);
    gate_released_++;
    gate_q_.pop_front();
  }
}

void MsgNode::start() {
  if (running_) return;
  running_ = true;
  task_ = proc_->spawn_poller(config_.poll_interval, [this] { tick(); });
}

void MsgNode::stop() {
  running_ = false;
  task_.cancel();
}

void MsgNode::on_migrated(proc::SimProcess& new_proc) {
  proc_ = &new_proc;
  if (running_) {
    task_.cancel();
    task_ = proc_->spawn_poller(config_.poll_interval, [this] { tick(); });
  }
}

MsgNode::Peer* MsgNode::peer_by_vqpn(VQpn vqpn) {
  for (auto& [id, peer] : peers_) {
    if (peer.vqpn == vqpn) return &peer;
  }
  return nullptr;
}

void MsgNode::repost_recv(Peer& peer, std::uint64_t wr_id) {
  RecvWr wr;
  wr.wr_id = wr_id;
  wr.sge = {{peer.recv_buf + (wr_id % config_.depth) * config_.max_msg, config_.max_msg,
             peer.recv_mr.vlkey}};
  if (!guest_->post_recv(peer.vqpn, wr).is_ok()) errors_++;
}

void MsgNode::tick() {
  if (!gate_q_.empty()) drain_gate();
  Cqe batch[32];
  for (;;) {
    const int n = guest_->poll_cq(cq_, batch);
    if (n <= 0) break;
    for (int i = 0; i < n; ++i) {
      const Cqe& cqe = batch[i];
      Peer* peer = peer_by_vqpn(cqe.qpn);
      if (peer == nullptr) continue;  // e.g. completions of extra app QPs
      if (cqe.opcode != CqeOpcode::recv && cqe.opcode != CqeOpcode::send) {
        // One-sided / bind completions: app data traffic on the same CQ,
        // including its failures (the app decides how to react).
        if (raw_handler_) raw_handler_(cqe);
        continue;
      }
      if (cqe.status != CqeStatus::success) {
        errors_++;
        continue;
      }
      if (cqe.opcode == CqeOpcode::recv) {
        const std::uint64_t addr =
            peer->recv_buf + (cqe.wr_id % config_.depth) * config_.max_msg;
        std::vector<std::uint8_t> raw(cqe.byte_len);
        if (proc_->mem().read(addr, raw).is_ok()) {
          common::ByteReader r{raw};
          auto len = r.u32();
          if (len.is_ok() && r.remaining() >= len.value()) {
            common::Bytes payload(raw.begin() + 4, raw.begin() + 4 + len.value());
            received_++;
            if (sli_ != nullptr) sli_->delivered(proc_->loop().now(), payload.size());
            GuestId from = 0;
            for (auto& [pid, p] : peers_) {
              if (&p == peer) from = pid;
            }
            if (handler_) handler_(from, payload);
          } else {
            errors_++;
          }
        }
        repost_recv(*peer, peer->next_recv_seq++);
      } else {
        if (sli_ != nullptr && !peer->send_ts.empty()) {
          const std::size_t slot = cqe.wr_id % config_.depth;
          const sim::TimeNs now = proc_->loop().now();
          sli_->rtt(now, now - peer->send_ts[slot]);
          sli_->delivered(now, peer->send_bytes[slot]);
        }
        // Clamped: a completion of a pre-failover WR replayed on a restored
        // QP must not push the window past its depth.
        peer->send_credits = std::min(peer->send_credits + 1, config_.depth);
      }
    }
    if (n < 32) break;
  }
}

}  // namespace migr::apps
