// perftest: the microbenchmark workload of the paper's §5 evaluation,
// modelled on linux-rdma/perftest's bandwidth tests and carrying the three
// extensions the paper describes (§5.1):
//   * WR-ID sequence stamping for migration-correctness checking (§5.3):
//     every WR's wr_id is a per-QP sequence number; completions must come
//     back in order, exactly once, with intact content.
//   * one-to-many communication patterns (§5.4, Fig. 4c): the migrated
//     container runs one perftest with n QPs while each of n partners runs
//     one QP.
//   * fine-grained throughput sampling via the NIC's port counters (§5.5,
//     Fig. 5): see ThroughputSampler.
//
// A PerftestPeer is a MigratableApp: live migration re-homes its polling
// loop onto the destination process and the traffic continues.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "migr/guest_lib.hpp"
#include "migr/migration.hpp"
#include "obs/sli.hpp"

namespace migr::apps {

using migrlib::GuestContext;
using migrlib::GuestId;
using migrlib::MigrRdmaRuntime;
using migrlib::VHandle;
using migrlib::VMr;
using migrlib::VQpn;

struct PerftestConfig {
  std::uint32_t num_qps = 1;
  std::uint32_t msg_size = 4096;
  std::uint32_t queue_depth = 64;       // best-effort posting window per QP
  rnic::WrOpcode opcode = rnic::WrOpcode::rdma_write;
  bool verify = true;                   // WR-ID ordering + content stamping
  sim::DurationNs poll_interval = sim::usec(1);
  std::uint64_t max_messages_per_qp = 0;  // 0 = unbounded (bandwidth mode)
};

// Registered with the process-wide obs::Registry by each PerftestPeer (as
// "perftest{guest=G}"); the struct stays the accessor API.
struct PerftestStats {
  std::uint64_t completed_msgs = 0;
  std::uint64_t completed_bytes = 0;
  std::uint64_t recv_msgs = 0;
  std::uint64_t errors = 0;
  std::uint64_t order_violations = 0;
  std::uint64_t content_corruptions = 0;
};

class PerftestPeer : public migrlib::MigratableApp {
 public:
  enum class Role { sender, receiver };

  PerftestPeer(MigrRdmaRuntime& runtime, proc::SimProcess& proc, GuestId id,
               Role role, PerftestConfig config);
  ~PerftestPeer() override;

  /// Connect QP slot `my_slot` of this peer to slot `peer_slot` of `other`
  /// (both peers must be constructed first). Pairwise full mesh and
  /// one-to-many patterns are built from this primitive.
  static common::Status connect_pair(PerftestPeer& a, std::uint32_t a_slot,
                                     PerftestPeer& b, std::uint32_t b_slot);

  /// Start the traffic loop (sender posts; receiver reposts RECVs).
  void start();
  void stop();

  GuestContext& guest() noexcept { return *guest_; }
  GuestId id() const noexcept { return id_; }
  const PerftestStats& stats() const noexcept { return stats_; }
  bool finished() const;  // max_messages_per_qp reached on every QP

  /// Remote-side info a sender needs (the receiver's buffer + virtual rkey),
  /// normally exchanged out of band.
  struct RemoteBuf {
    std::uint64_t addr = 0;
    std::uint32_t vrkey = 0;
  };
  RemoteBuf remote_buf(std::uint32_t slot) const;
  void set_remote(std::uint32_t slot, GuestId peer, RemoteBuf buf);

  /// Arm the SLI taps: per-message post -> completion RTT, completed bytes
  /// as goodput, and the guest's retransmit counters. One null-check branch
  /// per message while disarmed.
  void enable_sli(obs::SliHub& hub);

  // MigratableApp:
  void on_migrated(proc::SimProcess& new_proc) override;

 private:
  struct QpSlot {
    VQpn vqpn = 0;
    std::uint64_t buf_addr = 0;
    VMr mr;
    GuestId peer = 0;
    RemoteBuf remote;
    std::uint64_t next_seq = 0;       // wr_id of the next posted WR
    std::uint64_t outstanding = 0;
    std::uint64_t expect_completion = 0;  // next wr_id we must see complete
    std::uint64_t expect_recv = 0;
    // SLI RTT bookkeeping, indexed by wr_id % queue_depth (sized when the
    // taps are armed).
    std::vector<sim::TimeNs> post_ts;
  };

  void tick();
  void pump_sender(QpSlot& slot);
  void handle_cqe(const rnic::Cqe& cqe);
  QpSlot* slot_by_vqpn(VQpn vqpn);

  // O(1) CQE-to-slot dispatch and a ready list so a tick touches only QPs
  // with refill work — essential when sweeping to thousands of QPs.
  std::unordered_map<VQpn, std::uint32_t> slot_index_;
  std::vector<std::uint32_t> ready_;
  std::vector<bool> in_ready_;

  MigrRdmaRuntime* runtime_;
  proc::SimProcess* proc_;
  GuestId id_;
  Role role_;
  PerftestConfig config_;
  GuestContext* guest_ = nullptr;
  VHandle pd_ = 0;
  VHandle cq_ = 0;
  std::vector<QpSlot> slots_;
  PerftestStats stats_;
  obs::GuestSli* sli_ = nullptr;  // null = taps disarmed (one branch/msg)
  std::uint64_t stats_source_id_ = 0;
  sim::EventHandle task_;
  bool running_ = false;
};

/// Samples a device's port byte counters at a fixed period (the mlx5
/// ethtool-counter method of §5.5.2) and records throughput in Gbps.
class ThroughputSampler {
 public:
  ThroughputSampler(sim::EventLoop& loop, const rnic::Device& device,
                    sim::DurationNs period = sim::msec(5));
  void start();
  void stop();

  struct Sample {
    sim::TimeNs at = 0;
    double rx_gbps = 0;
    double tx_gbps = 0;
  };
  const std::vector<Sample>& samples() const noexcept { return samples_; }

 private:
  sim::EventLoop& loop_;
  const rnic::Device& device_;
  sim::DurationNs period_;
  std::uint64_t last_rx_ = 0;
  std::uint64_t last_tx_ = 0;
  std::vector<Sample> samples_;
  sim::EventHandle task_;
};

}  // namespace migr::apps
