// MsgNode: a small message-passing endpoint over the MigrRDMA guest library
// — RC SEND/RECV with credit-managed buffers and a per-peer QP. This is the
// communication substrate the mini-Hadoop application (and the examples)
// build their RPC on, the way RDMA-Hadoop layers its protocol over verbs.
//
// A MsgNode is a MigratableApp: its polling loop re-homes on migration and
// in-flight messages follow MigrRDMA's interception/replay rules.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "migr/guest_lib.hpp"
#include "migr/migration.hpp"
#include "obs/sli.hpp"

namespace migr::apps {

using migrlib::GuestContext;
using migrlib::GuestId;
using migrlib::MigrRdmaRuntime;
using migrlib::VHandle;
using migrlib::VMr;
using migrlib::VQpn;

struct MsgNodeConfig {
  std::uint32_t depth = 32;          // send/recv window per peer
  std::uint32_t max_msg = 4096;      // bytes per message slot
  sim::DurationNs poll_interval = sim::usec(5);
};

class MsgNode : public migrlib::MigratableApp {
 public:
  /// (from, payload)
  using Handler = std::function<void(GuestId, const common::Bytes&)>;

  MsgNode(MigrRdmaRuntime& runtime, proc::SimProcess& proc, GuestId id,
          MsgNodeConfig config = {});
  ~MsgNode() override;

  static common::Status connect(MsgNode& a, MsgNode& b);

  /// Queue a message to a connected peer. Fails with resource_exhausted
  /// when the send window is full (caller retries on its next tick).
  /// While the output-commit gate is armed, the message is buffered in the
  /// release queue instead of hitting the wire and always succeeds.
  common::Status send(GuestId peer, const common::Bytes& payload);

  // -- Output-commit gate (continuous FT, Remus/COLO semantics) ------------
  // The FT controller arms the gate on a protected primary: every send()
  // buffers tagged with the current checkpoint epoch, and only flushes once
  // the backup ACKs that epoch — so a mid-epoch primary kill is externally
  // invisible. Messages of uncommitted epochs are dropped at failover; the
  // backup resumes from the committed state that never generated them.
  /// Arm the gate; messages buffered from now on belong to `epoch`.
  void arm_output_commit(std::uint64_t epoch);
  /// Disarm and flush everything still held (protection dropped cleanly).
  void disarm_output_commit();
  /// A new checkpoint interval opened: subsequent sends belong to `epoch`.
  void set_output_epoch(std::uint64_t epoch) noexcept { gate_epoch_ = epoch; }
  /// The backup ACKed `epoch`: release every held message it covers. Wire
  /// posting respects send-window credits; leftovers drain on later ticks.
  void release_through(std::uint64_t epoch);
  /// Failover promotion: drop held messages of epochs newer than
  /// `committed_epoch` (never externally visible). Returns the drop count.
  std::size_t drop_uncommitted(std::uint64_t committed_epoch);
  /// Failover promotion: sends in flight at the kill point completed
  /// nowhere — the promoted QP state (captured at the committed epoch) has
  /// no record of them, so their CQEs never arrive and the credits they
  /// hold would leak. Reset every peer window to full and drop the stale
  /// RTT bookkeeping.
  void resync_window();

  bool output_commit_armed() const noexcept { return gate_armed_; }
  std::size_t gated_pending() const noexcept { return gate_q_.size(); }
  std::uint64_t gate_released() const noexcept { return gate_released_; }
  std::uint64_t gate_dropped() const noexcept { return gate_dropped_; }
  /// Hold time (enqueue -> wire post) of released messages: the
  /// output-commit latency tax.
  const obs::Histogram& release_delay() const noexcept { return release_delay_; }

  void set_handler(Handler handler) { handler_ = std::move(handler); }
  /// Completions that are not message traffic (e.g. one-sided data WRs an
  /// application posts on the same QPs/CQ) are forwarded here.
  using RawCqeHandler = std::function<void(const rnic::Cqe&)>;
  void set_raw_cqe_handler(RawCqeHandler handler) { raw_handler_ = std::move(handler); }
  void start();
  void stop();

  GuestContext& guest() noexcept { return *guest_; }
  GuestId id() const noexcept { return id_; }
  proc::SimProcess& process() noexcept { return *proc_; }
  VHandle pd() const noexcept { return pd_; }

  /// The QP connecting to `peer` (for piggybacked one-sided traffic).
  common::Result<VQpn> qp_to(GuestId peer) const;

  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t errors() const noexcept { return errors_; }

  /// Arm the SLI taps: message RTTs (post -> send-CQE; an RC send
  /// completion implies the ack), delivered payload bytes (both
  /// directions), and the guest's retransmit counters. No-op when the hub
  /// is disabled; the armed-but-idle cost is one null-check branch per
  /// message.
  void enable_sli(obs::SliHub& hub);

  void on_migrated(proc::SimProcess& new_proc) override;

 private:
  struct Peer {
    VQpn vqpn = 0;
    std::uint64_t send_buf = 0;
    VMr send_mr;
    std::uint64_t recv_buf = 0;
    VMr recv_mr;
    std::uint32_t send_credits = 0;  // free send slots
    std::uint32_t send_slot = 0;     // next slot index
    std::uint64_t next_recv_seq = 0;
    // SLI RTT bookkeeping, indexed by wr_id % depth (sized when the taps
    // are armed; empty otherwise).
    std::vector<sim::TimeNs> send_ts;
    std::vector<std::uint32_t> send_bytes;
  };

  struct GatedMsg {
    GuestId peer = 0;
    common::Bytes payload;
    std::uint64_t epoch = 0;
    sim::TimeNs enqueued = 0;
  };

  void tick();
  void repost_recv(Peer& peer, std::uint64_t wr_id);
  Peer* peer_by_vqpn(VQpn vqpn);
  common::Status send_now(GuestId peer_id, const common::Bytes& payload);
  /// Post released-but-unflushed gate entries while credits allow.
  void drain_gate();

  MigrRdmaRuntime* runtime_;
  proc::SimProcess* proc_;
  GuestId id_;
  MsgNodeConfig config_;
  GuestContext* guest_ = nullptr;
  VHandle pd_ = 0;
  VHandle cq_ = 0;
  std::unordered_map<GuestId, Peer> peers_;
  Handler handler_;
  RawCqeHandler raw_handler_;
  sim::EventHandle task_;
  bool running_ = false;
  obs::GuestSli* sli_ = nullptr;  // null = taps disarmed (one branch/msg)
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t errors_ = 0;

  // Output-commit gate state. The queue is epoch-ordered by construction
  // (epochs only move forward); entries up to the release mark drain FIFO.
  std::deque<GatedMsg> gate_q_;
  bool gate_armed_ = false;
  std::uint64_t gate_epoch_ = 0;
  std::int64_t gate_release_mark_ = -1;  // highest ACKed epoch; -1 = none
  std::uint64_t gate_released_ = 0;
  std::uint64_t gate_dropped_ = 0;
  obs::Histogram release_delay_{obs::Histogram::kDefaultExactCapacity};
};

}  // namespace migr::apps
