// Mini-Hadoop: the real-world application of the paper's §5.6 evaluation,
// reproduced as a miniature RDMA-based master/worker framework with the two
// jobs Fig. 6 measures:
//   * TestDFSIO — each task "computes" a block then replicates it to a peer
//     worker's storage with an RDMA WRITE (the HDFS write path of
//     RDMA-Hadoop). The master samples application-perceived throughput.
//   * EstimatePI — compute-only tasks with tiny result messages.
//
// Fault handling mirrors Hadoop's native failover (the paper's baseline):
// workers heartbeat the master; after `heartbeat_miss` silent periods the
// worker is declared dead and its unfinished tasks are re-scheduled on a
// backup worker after a log-replay/startup recovery delay. Live migration,
// in contrast, moves the worker without the master ever noticing — the
// heartbeat gap stays under the detection threshold because MigrRDMA's
// blackout is short.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "apps/msg_node.hpp"

namespace migr::apps {

enum class JobKind : std::uint8_t { dfsio, estimate_pi };

struct HadoopConfig {
  JobKind kind = JobKind::dfsio;
  std::uint32_t tasks = 16;
  std::uint32_t blocks_per_task = 8;
  std::uint32_t block_size = 1 << 20;
  sim::DurationNs compute_per_block = sim::msec(20);
  sim::DurationNs pi_task_compute = sim::msec(150);
  sim::DurationNs heartbeat_period = sim::msec(100);
  int heartbeat_miss = 3;
  /// Failover baseline: time to spin the backup container up and replay the
  /// task log before re-execution can start.
  sim::DurationNs failover_recovery = sim::sec(15);
  sim::DurationNs worker_tick = sim::usec(250);
  sim::DurationNs master_sample = sim::msec(250);
};

// Wire protocol (SENDs over MsgNode).
enum class HadoopMsg : std::uint8_t {
  assign = 1,      // master -> worker: u32 task
  task_done = 2,   // worker -> master: u32 task
  heartbeat = 3,   // worker -> master
  block_done = 4,  // worker -> master: u32 task, u32 block (throughput probe)
};

class HadoopWorker;

class HadoopMaster {
 public:
  HadoopMaster(MsgNode& node, HadoopConfig config);

  void add_worker(GuestId worker);
  void set_backup(GuestId backup);

  void start_job();
  bool job_done() const noexcept { return job_done_; }
  sim::TimeNs job_start() const noexcept { return job_start_; }
  sim::TimeNs job_end() const noexcept { return job_end_; }
  sim::DurationNs jct() const noexcept { return job_end_ - job_start_; }

  /// Application-perceived DFSIO throughput samples (MB/s per window).
  struct TputSample {
    sim::TimeNs at = 0;
    double mbps = 0;
  };
  const std::vector<TputSample>& throughput() const noexcept { return tput_; }
  std::uint32_t failovers() const noexcept { return failovers_; }
  std::uint64_t blocks_completed() const noexcept { return blocks_done_; }

 private:
  void on_message(GuestId from, const common::Bytes& payload);
  void assign_next(GuestId worker);
  void tick();
  void declare_dead(GuestId worker);

  MsgNode& node_;
  HadoopConfig config_;
  std::vector<GuestId> workers_;
  GuestId backup_ = 0;
  bool backup_active_ = false;

  // Tasks are pinned to their worker (HDFS data locality): each worker has
  // its own queue, and a dead worker's queue can only move to the backup
  // that replayed its log.
  std::map<GuestId, std::deque<std::uint32_t>> queues_;
  std::map<GuestId, std::uint32_t> running_;  // worker -> current task
  std::set<std::uint32_t> done_;
  std::map<GuestId, sim::TimeNs> last_heartbeat_;
  std::set<GuestId> dead_;

  bool job_started_ = false;
  bool job_done_ = false;
  sim::TimeNs job_start_ = 0;
  sim::TimeNs job_end_ = 0;
  std::uint64_t blocks_done_ = 0;
  std::uint64_t blocks_at_last_sample_ = 0;
  std::vector<TputSample> tput_;
  std::uint32_t failovers_ = 0;
  sim::EventHandle tick_task_;
};

class HadoopWorker : public migrlib::MigratableApp {
 public:
  HadoopWorker(MsgNode& node, HadoopConfig config, GuestId master);

  /// DFSIO replication target: the peer worker's landing buffer.
  void set_replica(GuestId replica, std::uint64_t remote_addr, std::uint32_t vrkey);
  std::uint64_t landing_addr() const noexcept { return landing_addr_; }
  std::uint32_t landing_vrkey() const noexcept { return landing_mr_.vrkey; }

  void start();
  void stop();
  std::uint32_t tasks_completed() const noexcept { return tasks_completed_; }
  /// Blocks written without replication because the replica was unreachable.
  std::uint64_t degraded_blocks() const noexcept { return degraded_blocks_; }

  // MigratableApp: re-home the worker loop (MsgNode re-homes itself when it
  // is registered as the controller's app; here the worker owns both).
  void on_migrated(proc::SimProcess& new_proc) override;

 private:
  void on_message(GuestId from, const common::Bytes& payload);
  void tick();
  void finish_block();
  void spawn_tasks(proc::SimProcess& proc);

  MsgNode& node_;
  HadoopConfig config_;
  GuestId master_;

  GuestId replica_ = 0;
  bool replica_ok_ = true;
  std::uint64_t degraded_blocks_ = 0;
  std::uint64_t replica_addr_ = 0;
  std::uint32_t replica_vrkey_ = 0;
  std::uint64_t block_buf_ = 0;
  VMr block_mr_;
  std::uint64_t landing_addr_ = 0;
  VMr landing_mr_;

  bool running_ = false;
  bool has_task_ = false;
  std::uint32_t task_ = 0;
  std::uint32_t blocks_done_in_task_ = 0;
  sim::DurationNs compute_progress_ = 0;
  bool write_inflight_ = false;
  std::uint64_t next_write_id_ = 1ull << 48;  // distinguish from msg wr_ids
  std::uint32_t tasks_completed_ = 0;
  std::deque<std::uint32_t> backlog_;  // assigned while busy

  sim::EventHandle tick_task_;
  sim::EventHandle hb_task_;
};

}  // namespace migr::apps
