#include "apps/minihadoop.hpp"

#include "common/log.hpp"

namespace migr::apps {

using common::ByteReader;
using common::Bytes;
using common::ByteWriter;

namespace {

Bytes msg1(HadoopMsg type) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  return std::move(w).take();
}

Bytes msg_task(HadoopMsg type, std::uint32_t task, std::uint32_t arg = 0) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(task);
  w.u32(arg);
  return std::move(w).take();
}

}  // namespace

// ---------------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------------

HadoopMaster::HadoopMaster(MsgNode& node, HadoopConfig config)
    : node_(node), config_(config) {
  node_.set_handler([this](GuestId from, const Bytes& p) { on_message(from, p); });
  tick_task_ = node_.process().spawn_poller(config_.master_sample, [this] { tick(); });
}

void HadoopMaster::add_worker(GuestId worker) {
  workers_.push_back(worker);
  last_heartbeat_[worker] = node_.process().loop().now();
}

void HadoopMaster::set_backup(GuestId backup) { backup_ = backup; }

void HadoopMaster::start_job() {
  // Split the tasks across the workers up front (data locality).
  for (std::uint32_t t = 0; t < config_.tasks; ++t) {
    queues_[workers_[t % workers_.size()]].push_back(t);
  }
  job_started_ = true;
  job_start_ = node_.process().loop().now();
  for (GuestId w : workers_) assign_next(w);
}

void HadoopMaster::assign_next(GuestId worker) {
  auto q = queues_.find(worker);
  if (q == queues_.end() || q->second.empty() || running_.contains(worker) ||
      dead_.contains(worker)) {
    return;
  }
  const std::uint32_t task = q->second.front();
  if (node_.send(worker, msg_task(HadoopMsg::assign, task)).is_ok()) {
    q->second.pop_front();
    running_[worker] = task;
  }
  // On send-window pressure the next tick retries.
}

void HadoopMaster::on_message(GuestId from, const Bytes& payload) {
  ByteReader r{payload};
  auto type = r.u8();
  if (!type.is_ok()) return;
  last_heartbeat_[from] = node_.process().loop().now();
  switch (static_cast<HadoopMsg>(type.value())) {
    case HadoopMsg::heartbeat:
      break;
    case HadoopMsg::block_done:
      blocks_done_++;
      break;
    case HadoopMsg::task_done: {
      auto task = r.u32();
      if (!task.is_ok()) return;
      done_.insert(task.value());
      running_.erase(from);
      if (done_.size() >= config_.tasks && job_started_ && !job_done_) {
        job_done_ = true;
        job_end_ = node_.process().loop().now();
      } else {
        assign_next(from);
      }
      break;
    }
    default:
      break;
  }
}

void HadoopMaster::declare_dead(GuestId worker) {
  if (dead_.contains(worker)) return;
  dead_.insert(worker);
  failovers_++;
  MIGR_INFO() << "master: worker " << worker << " declared dead; failing over";
  // The in-progress task is lost and must be re-executed from the log.
  auto it = running_.find(worker);
  if (it != running_.end()) {
    queues_[worker].push_front(it->second);
    running_.erase(it);
  }
  if (backup_ != 0 && !backup_active_) {
    backup_active_ = true;
    const GuestId backup = backup_;
    const GuestId dead = worker;
    // Container start + log replay delay before the backup takes over the
    // dead worker's (pinned) tasks.
    node_.process().loop().schedule_in(config_.failover_recovery, [this, backup, dead] {
      workers_.push_back(backup);
      queues_[backup] = std::move(queues_[dead]);
      queues_.erase(dead);
      last_heartbeat_[backup] = node_.process().loop().now();
      assign_next(backup);
    });
  }
}

void HadoopMaster::tick() {
  const sim::TimeNs now = node_.process().loop().now();
  if (job_started_ && !job_done_) {
    // Heartbeat supervision.
    for (GuestId w : workers_) {
      if (dead_.contains(w)) continue;
      const auto gap = now - last_heartbeat_[w];
      if (gap > config_.heartbeat_miss * config_.heartbeat_period) declare_dead(w);
    }
    // Idle live workers pick up pending tasks.
    for (GuestId w : workers_) {
      if (!dead_.contains(w)) assign_next(w);
    }
  }
  // Application-perceived throughput sampling (Fig. 6a).
  if (config_.kind == JobKind::dfsio && job_started_) {
    const double bytes =
        static_cast<double>(blocks_done_ - blocks_at_last_sample_) * config_.block_size;
    const double mbps = bytes / (1024.0 * 1024.0) /
                        (static_cast<double>(config_.master_sample) / sim::kSecond);
    blocks_at_last_sample_ = blocks_done_;
    if (!job_done_) tput_.push_back(TputSample{now, mbps});
  }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

HadoopWorker::HadoopWorker(MsgNode& node, HadoopConfig config, GuestId master)
    : node_(node), config_(config), master_(master) {
  node_.set_handler([this](GuestId from, const Bytes& p) { on_message(from, p); });
  node_.set_raw_cqe_handler([this](const rnic::Cqe& cqe) {
    if (cqe.wr_id < (1ull << 48)) return;
    if (cqe.status == rnic::CqeStatus::success) {
      write_inflight_ = false;
      finish_block();
    } else {
      // Replication pipeline failure (replica died): HDFS-style degraded
      // mode — keep the block locally and carry on under-replicated.
      replica_ok_ = false;
      degraded_blocks_++;
      write_inflight_ = false;
      finish_block();
    }
  });
  // Block staging buffer (source of replication WRITEs) and landing buffer
  // (targets of the peer's replication WRITEs).
  block_buf_ = node_.process().mem().mmap(config_.block_size, "hdfs_block").value();
  block_mr_ = node_.guest()
                  .reg_mr(node_.pd(), block_buf_, config_.block_size, rnic::kAccessLocalWrite)
                  .value();
  landing_addr_ = node_.process().mem().mmap(config_.block_size, "hdfs_landing").value();
  landing_mr_ = node_.guest()
                    .reg_mr(node_.pd(), landing_addr_, config_.block_size,
                            rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite)
                    .value();
}

void HadoopWorker::set_replica(GuestId replica, std::uint64_t remote_addr,
                               std::uint32_t vrkey) {
  replica_ = replica;
  replica_addr_ = remote_addr;
  replica_vrkey_ = vrkey;
}

void HadoopWorker::spawn_tasks(proc::SimProcess& proc) {
  tick_task_ = proc.spawn_poller(config_.worker_tick, [this] { tick(); });
  hb_task_ = proc.spawn_poller(config_.heartbeat_period, [this] {
    (void)node_.send(master_, msg1(HadoopMsg::heartbeat));
  });
}

void HadoopWorker::start() {
  if (running_) return;
  running_ = true;
  spawn_tasks(node_.process());
}

void HadoopWorker::stop() {
  running_ = false;
  tick_task_.cancel();
  hb_task_.cancel();
}

void HadoopWorker::on_migrated(proc::SimProcess& new_proc) {
  node_.on_migrated(new_proc);
  if (running_) {
    tick_task_.cancel();
    hb_task_.cancel();
    spawn_tasks(new_proc);
  }
}

void HadoopWorker::on_message(GuestId from, const Bytes& payload) {
  (void)from;
  ByteReader r{payload};
  auto type = r.u8();
  if (!type.is_ok()) return;
  if (static_cast<HadoopMsg>(type.value()) == HadoopMsg::assign) {
    auto task = r.u32();
    if (!task.is_ok()) return;
    if (has_task_) {
      backlog_.push_back(task.value());
      return;
    }
    has_task_ = true;
    task_ = task.value();
    blocks_done_in_task_ = 0;
    compute_progress_ = 0;
  }
}

void HadoopWorker::tick() {
  if (!has_task_ || write_inflight_) return;
  compute_progress_ += config_.worker_tick;
  const sim::DurationNs need = config_.kind == JobKind::dfsio
                                   ? config_.compute_per_block
                                   : config_.pi_task_compute;
  if (compute_progress_ < need) return;
  compute_progress_ = 0;

  if (config_.kind == JobKind::estimate_pi) {
    // PI tasks are compute-only; report completion.
    if (node_.send(master_, msg_task(HadoopMsg::task_done, task_)).is_ok()) {
      tasks_completed_++;
      has_task_ = false;
      if (!backlog_.empty()) {
        has_task_ = true;
        task_ = backlog_.front();
        backlog_.pop_front();
      }
    } else {
      compute_progress_ = need;  // retry the send next tick
    }
    return;
  }

  // DFSIO: replicate the freshly "computed" block to the peer worker.
  if (replica_ == 0 || !replica_ok_) {
    if (!replica_ok_) degraded_blocks_++;
    finish_block();  // no (live) replica: local-only write
    return;
  }
  auto qp = node_.qp_to(replica_);
  if (!qp.is_ok()) {
    finish_block();
    return;
  }
  rnic::SendWr wr;
  wr.wr_id = next_write_id_++;
  wr.opcode = rnic::WrOpcode::rdma_write;
  wr.remote_addr = replica_addr_;
  wr.rkey = replica_vrkey_;
  wr.sge = {{block_buf_, config_.block_size, block_mr_.vlkey}};
  const auto st = node_.guest().post_send(qp.value(), wr);
  if (st.is_ok()) {
    write_inflight_ = true;
  } else if (st.code() == common::Errc::failed_precondition) {
    // QP to the replica is dead; degrade.
    replica_ok_ = false;
    degraded_blocks_++;
    finish_block();
  } else {
    compute_progress_ = need;  // transient (window full): retry next tick
  }
}

void HadoopWorker::finish_block() {
  if (!has_task_) return;
  blocks_done_in_task_++;
  (void)node_.send(master_, msg_task(HadoopMsg::block_done, task_, blocks_done_in_task_));
  if (blocks_done_in_task_ >= config_.blocks_per_task) {
    if (node_.send(master_, msg_task(HadoopMsg::task_done, task_)).is_ok()) {
      tasks_completed_++;
      has_task_ = false;
      blocks_done_in_task_ = 0;
      if (!backlog_.empty()) {
        has_task_ = true;
        task_ = backlog_.front();
        backlog_.pop_front();
      }
    } else {
      blocks_done_in_task_--;  // retry completion next tick
      compute_progress_ = config_.compute_per_block;
    }
  }
}

}  // namespace migr::apps
