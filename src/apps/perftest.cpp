#include "apps/perftest.hpp"

#include <cstring>

#include "common/log.hpp"

namespace migr::apps {

using common::Errc;
using common::Status;
using rnic::Cqe;
using rnic::CqeOpcode;
using rnic::CqeStatus;
using rnic::RecvWr;
using rnic::SendWr;
using rnic::WrOpcode;

PerftestPeer::PerftestPeer(MigrRdmaRuntime& runtime, proc::SimProcess& proc, GuestId id,
                           Role role, PerftestConfig config)
    : runtime_(&runtime), proc_(&proc), id_(id), role_(role), config_(config) {
  guest_ = runtime.create_guest(proc, id).value();
  pd_ = guest_->alloc_pd().value();
  const std::uint32_t cq_cap =
      std::min<std::uint32_t>(config_.num_qps * config_.queue_depth * 2 + 64, 1u << 20);
  cq_ = guest_->create_cq(cq_cap).value();

  slots_.resize(config_.num_qps);
  for (std::uint32_t i = 0; i < config_.num_qps; ++i) {
    QpSlot& slot = slots_[i];
    migrlib::GuestQpAttr attr;
    attr.vpd = pd_;
    attr.vsend_cq = cq_;
    attr.vrecv_cq = cq_;
    attr.caps = {config_.queue_depth + 4, config_.queue_depth + 4};
    slot.vqpn = guest_->create_qp(attr).value();

    // One buffer region per QP, strided by queue depth on both sides so a
    // posted-but-untransmitted message's payload is never overwritten (the
    // application must not touch a buffer it handed to the NIC).
    const std::uint64_t buf_bytes =
        is_two_sided(config_.opcode)
            ? std::uint64_t{config_.msg_size} * config_.queue_depth
            : std::uint64_t{config_.msg_size};
    slot.buf_addr = proc.mem().mmap(buf_bytes, "perftest_buf").value();
    slot.mr = guest_
                  ->reg_mr(pd_, slot.buf_addr, buf_bytes,
                           rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite |
                               rnic::kAccessRemoteRead)
                  .value();
    slot_index_.emplace(slot.vqpn, i);
    if (role_ == Role::sender) {
      // Senders keep extra per-QP bookkeeping arenas (pending-WR tracking,
      // rate state). This is why the paper observes the sender's memory
      // structure is "more complicated than that of the receiver" and its
      // DumpOthers grows faster (§5.2).
      (void)proc.mem().mmap(4096, "perftest_ctx");
    }
  }
  in_ready_.assign(slots_.size(), false);

  stats_source_id_ = obs::Registry::global().register_source(
      "perftest", {{"guest", std::to_string(id_)}}, [this] {
        return std::vector<std::pair<std::string, double>>{
            {"completed_msgs", static_cast<double>(stats_.completed_msgs)},
            {"completed_bytes", static_cast<double>(stats_.completed_bytes)},
            {"recv_msgs", static_cast<double>(stats_.recv_msgs)},
            {"errors", static_cast<double>(stats_.errors)},
            {"order_violations", static_cast<double>(stats_.order_violations)},
            {"content_corruptions", static_cast<double>(stats_.content_corruptions)},
        };
      });
}

PerftestPeer::~PerftestPeer() {
  stop();
  obs::Registry::global().unregister_source(stats_source_id_);
}

Status PerftestPeer::connect_pair(PerftestPeer& a, std::uint32_t a_slot, PerftestPeer& b,
                                  std::uint32_t b_slot) {
  if (a_slot >= a.slots_.size() || b_slot >= b.slots_.size()) {
    return common::err(Errc::invalid_argument, "bad QP slot");
  }
  // Applications pick initial PSNs and exchange them out of band; derive
  // deterministic ones from the slot identities.
  const rnic::Psn psn_a = 10'000 + a_slot * 16;
  const rnic::Psn psn_b = 20'000 + b_slot * 16;
  MIGR_RETURN_IF_ERROR(
      a.guest_->connect_qp(a.slots_[a_slot].vqpn, b.id_, b.slots_[b_slot].vqpn, psn_a, psn_b));
  MIGR_RETURN_IF_ERROR(
      b.guest_->connect_qp(b.slots_[b_slot].vqpn, a.id_, a.slots_[a_slot].vqpn, psn_b, psn_a));
  a.set_remote(a_slot, b.id_, b.remote_buf(b_slot));
  b.set_remote(b_slot, a.id_, a.remote_buf(a_slot));
  return Status::ok();
}

PerftestPeer::RemoteBuf PerftestPeer::remote_buf(std::uint32_t slot) const {
  return RemoteBuf{slots_[slot].buf_addr, slots_[slot].mr.vrkey};
}

void PerftestPeer::set_remote(std::uint32_t slot, GuestId peer, RemoteBuf buf) {
  slots_[slot].peer = peer;
  slots_[slot].remote = buf;
}

void PerftestPeer::start() {
  if (running_) return;
  running_ = true;
  if (role_ == Role::receiver && is_two_sided(config_.opcode)) {
    // Pre-post a full window of RECVs per QP (perftest behaviour).
    for (auto& slot : slots_) {
      for (std::uint32_t d = 0; d < config_.queue_depth; ++d) {
        RecvWr wr;
        wr.wr_id = slot.next_seq++;
        wr.sge = {{slot.buf_addr + std::uint64_t{d % config_.queue_depth} * config_.msg_size,
                   config_.msg_size, slot.mr.vlkey}};
        if (!guest_->post_recv(slot.vqpn, wr).is_ok()) stats_.errors++;
      }
    }
  }
  if (role_ == Role::sender) {
    // Initial fill: every QP starts with refill work.
    ready_.clear();
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      ready_.push_back(i);
      in_ready_[i] = true;
    }
  }
  task_ = proc_->spawn_poller(config_.poll_interval, [this] { tick(); });
}

void PerftestPeer::stop() {
  running_ = false;
  task_.cancel();
}

bool PerftestPeer::finished() const {
  if (config_.max_messages_per_qp == 0) return false;
  for (const auto& slot : slots_) {
    if (slot.expect_completion < config_.max_messages_per_qp) return false;
  }
  return true;
}

void PerftestPeer::enable_sli(obs::SliHub& hub) {
  sli_ = hub.guest(id_, proc_->loop().now());
  if (sli_ == nullptr) return;  // hub disabled
  hub.set_retransmit_source(id_, proc_->loop().now(),
                            [this] { return guest_->total_retransmits(); });
  for (auto& slot : slots_) slot.post_ts.assign(config_.queue_depth, 0);
}

void PerftestPeer::on_migrated(proc::SimProcess& new_proc) {
  proc_ = &new_proc;
  if (running_) {
    task_.cancel();
    task_ = proc_->spawn_poller(config_.poll_interval, [this] { tick(); });
  }
}

PerftestPeer::QpSlot* PerftestPeer::slot_by_vqpn(VQpn vqpn) {
  auto it = slot_index_.find(vqpn);
  return it == slot_index_.end() ? nullptr : &slots_[it->second];
}

void PerftestPeer::tick() {
  Cqe batch[64];
  for (;;) {
    const int n = guest_->poll_cq(cq_, batch);
    if (n <= 0) break;
    for (int i = 0; i < n; ++i) handle_cqe(batch[i]);
    if (n < 64) break;
  }
  if (role_ == Role::sender) {
    // Only QPs whose window drained need refilling.
    for (std::uint32_t idx : ready_) {
      in_ready_[idx] = false;
      pump_sender(slots_[idx]);
    }
    ready_.clear();
  }
}

void PerftestPeer::pump_sender(QpSlot& slot) {
  if (slot.peer == 0) return;
  while (slot.outstanding < config_.queue_depth &&
         (config_.max_messages_per_qp == 0 ||
          slot.next_seq < config_.max_messages_per_qp)) {
    SendWr wr;
    wr.wr_id = slot.next_seq;
    wr.opcode = config_.opcode;
    const std::uint64_t stride =
        is_two_sided(config_.opcode)
            ? std::uint64_t{config_.msg_size} * (slot.next_seq % config_.queue_depth)
            : 0;
    wr.sge = {{slot.buf_addr + stride, config_.msg_size, slot.mr.vlkey}};
    if (config_.verify && config_.msg_size >= 8 && is_two_sided(config_.opcode)) {
      // Stamp the sequence number into the payload (§5.3 extension).
      std::uint64_t seq = slot.next_seq;
      (void)proc_->mem().write(slot.buf_addr + stride,
                               {reinterpret_cast<std::uint8_t*>(&seq), 8});
    }
    if (rnic::is_one_sided(config_.opcode)) {
      wr.remote_addr = slot.remote.addr;
      wr.rkey = slot.remote.vrkey;
    }
    const auto st = guest_->post_send(slot.vqpn, wr);
    if (!st.is_ok()) {
      if (st.code() != Errc::resource_exhausted) stats_.errors++;
      return;
    }
    if (sli_ != nullptr) {
      if (slot.post_ts.empty()) slot.post_ts.assign(config_.queue_depth, 0);
      slot.post_ts[slot.next_seq % config_.queue_depth] = proc_->loop().now();
    }
    slot.outstanding++;
    slot.next_seq++;
  }
}

void PerftestPeer::handle_cqe(const Cqe& cqe) {
  QpSlot* slot = slot_by_vqpn(cqe.qpn);
  if (slot == nullptr) {
    stats_.errors++;
    return;
  }
  if (cqe.status != CqeStatus::success) {
    stats_.errors++;
    return;
  }
  if (cqe.opcode == CqeOpcode::recv) {
    // §5.3 check: receive completions arrive in WR-ID order, exactly once.
    if (config_.verify && cqe.wr_id != slot->expect_recv) stats_.order_violations++;
    slot->expect_recv = cqe.wr_id + 1;
    if (config_.verify && config_.msg_size >= 8) {
      const std::uint64_t stride =
          std::uint64_t{cqe.wr_id % config_.queue_depth} * config_.msg_size;
      std::uint64_t stamp = 0;
      (void)proc_->mem().read(slot->buf_addr + stride,
                              {reinterpret_cast<std::uint8_t*>(&stamp), 8});
      if (stamp != cqe.wr_id) stats_.content_corruptions++;
    }
    stats_.recv_msgs++;
    // Replenish the RECV window.
    RecvWr wr;
    wr.wr_id = slot->next_seq;
    wr.sge = {{slot->buf_addr +
                   std::uint64_t{slot->next_seq % config_.queue_depth} * config_.msg_size,
               config_.msg_size, slot->mr.vlkey}};
    if (guest_->post_recv(slot->vqpn, wr).is_ok()) {
      slot->next_seq++;
    } else {
      stats_.errors++;
    }
    return;
  }
  // Sender-side completion.
  if (config_.verify && cqe.wr_id != slot->expect_completion) stats_.order_violations++;
  slot->expect_completion = cqe.wr_id + 1;
  if (slot->outstanding > 0) slot->outstanding--;
  stats_.completed_msgs++;
  stats_.completed_bytes += config_.msg_size;
  if (sli_ != nullptr && !slot->post_ts.empty()) {
    const sim::TimeNs now = proc_->loop().now();
    sli_->rtt(now, now - slot->post_ts[cqe.wr_id % config_.queue_depth]);
    sli_->delivered(now, config_.msg_size);
  }
  const std::uint32_t idx = slot_index_.at(cqe.qpn);
  if (!in_ready_[idx]) {
    in_ready_[idx] = true;
    ready_.push_back(idx);
  }
}

// ---------------------------------------------------------------------------

ThroughputSampler::ThroughputSampler(sim::EventLoop& loop, const rnic::Device& device,
                                     sim::DurationNs period)
    : loop_(loop), device_(device), period_(period) {}

void ThroughputSampler::start() {
  last_rx_ = device_.counters().rx_bytes;
  last_tx_ = device_.counters().tx_bytes;
  task_ = loop_.schedule_every(period_, [this] {
    const auto& c = device_.counters();
    Sample s;
    s.at = loop_.now();
    s.rx_gbps = static_cast<double>(c.rx_bytes - last_rx_) * 8.0 /
                static_cast<double>(period_);
    s.tx_gbps = static_cast<double>(c.tx_bytes - last_tx_) * 8.0 /
                static_cast<double>(period_);
    last_rx_ = c.rx_bytes;
    last_tx_ = c.tx_bytes;
    samples_.push_back(s);
  });
}

void ThroughputSampler::stop() { task_.cancel(); }

}  // namespace migr::apps
