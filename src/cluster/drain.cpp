#include "cluster/drain.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/log.hpp"
#include "obs/sli.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace migr::cluster {

using common::Errc;
using common::Status;

namespace {

std::uint64_t egress_bytes(const net::Fabric& fabric, net::HostId host) {
  const net::PortStats& s = fabric.stats(host);
  return s.data_bytes_tx + s.ctrl_bytes_tx;
}

}  // namespace

DrainWorkflow::~DrainWorkflow() { sampler_.cancel(); }

Status DrainWorkflow::start(net::HostId host, DoneCb done, DrainOptions options) {
  if (active_) return common::err(Errc::failed_precondition, "drain already running");
  if (!model_.fabric().attached(host)) return common::err(Errc::not_found, "no such host");

  options_ = options;
  done_ = std::move(done);
  report_ = DrainReport{};
  report_.host = host;
  report_.started_at = model_.loop().now();
  blackouts_.reset();
  if (const obs::SloEngine* slo = obs::SliHub::global().slo_engine()) {
    slo_alerts_at_start_ = slo->alerts().size();
  }
  slo_deferrals_at_start_ = scheduler_->slo_deferrals();

  model_.set_draining(host, true);
  const std::vector<GuestId> residents = model_.guests_on(host);
  report_.migrations = residents.size();

  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.begin(report_.started_at, "drain", "cluster",
                 "\"host\":" + std::to_string(host) +
                     ",\"guests\":" + std::to_string(residents.size()));
  }

  if (residents.empty()) {
    // Nothing to evacuate: terminal right here, no queue round-trip.
    report_.finished_at = report_.started_at;
    report_.ok = true;
    if (tracer.enabled()) tracer.end(report_.started_at, "drain", "cluster");
    if (done_) done_(report_);
    return Status::ok();
  }

  active_ = true;
  outstanding_ = residents.size();

  last_egress_bytes_ = egress_bytes(model_.fabric(), host);
  sampler_ = model_.loop().schedule_every(options_.sample_interval, [this, host] {
    const std::uint64_t now_bytes = egress_bytes(model_.fabric(), host);
    const double bits = static_cast<double>(now_bytes - last_egress_bytes_) * 8.0;
    last_egress_bytes_ = now_bytes;
    report_.egress_gbps.push_back(
        {model_.loop().now(), bits / static_cast<double>(options_.sample_interval)});
  });

  for (GuestId g : residents) {
    scheduler_->submit(MigrationRequest{g, 0, options_.priority},
                       [this](const MigrationOutcome& out) { on_outcome(out); });
  }
  return Status::ok();
}

void DrainWorkflow::on_outcome(const MigrationOutcome& outcome) {
  report_.outcomes.push_back(outcome);
  if (outcome.completed) {
    report_.completed++;
    blackouts_.record(outcome.report.service_blackout());
  } else {
    report_.failed++;
  }
  const std::uint64_t extra_attempts =
      outcome.attempts > 0 ? static_cast<std::uint64_t>(outcome.attempts) - 1 : 0;
  report_.retries += extra_attempts;
  report_.aborts += extra_attempts + (outcome.report.aborted && outcome.failed ? 1 : 0);
  if (outstanding_ > 0 && --outstanding_ == 0) finalize();
}

void DrainWorkflow::finalize() {
  sampler_.cancel();
  active_ = false;
  report_.finished_at = model_.loop().now();
  report_.ok = report_.failed == 0 && report_.completed == report_.migrations;
  if (!report_.ok) report_.error = std::to_string(report_.failed) + " migration(s) failed";

  std::sort(report_.outcomes.begin(), report_.outcomes.end(),
            [](const MigrationOutcome& a, const MigrationOutcome& b) {
              return a.guest < b.guest;
            });
  report_.blackout_p50 = blackouts_.percentile(50);
  report_.blackout_p99 = blackouts_.percentile(99);
  report_.blackout_max = blackouts_.count() > 0 ? blackouts_.max() : 0;
  if (const obs::SloEngine* slo = obs::SliHub::global().slo_engine()) {
    report_.slo_alerts = slo->alerts().size() - slo_alerts_at_start_;
  }
  report_.slo_deferrals = scheduler_->slo_deferrals() - slo_deferrals_at_start_;

  // Phase attribution rollup: every outcome's blackout waterfall, keyed by
  // slice name. std::map keeps the rendering order (and thus the determinism
  // diffs) independent of outcome order.
  std::map<std::string, PhaseAttribution> rollup;
  for (const MigrationOutcome& o : report_.outcomes) {
    const migrlib::PhaseSlice* worst = nullptr;
    for (const migrlib::PhaseSlice& s : o.report.waterfall) {
      PhaseAttribution& a = rollup[s.name];
      a.phase = s.name;
      a.total += s.dur;
      a.max = std::max(a.max, s.dur);
      if (worst == nullptr || s.dur > worst->dur) worst = &s;
    }
    if (worst != nullptr) rollup[worst->name].worst_count++;
  }
  report_.phase_rollup.clear();
  for (auto& [name, attr] : rollup) report_.phase_rollup.push_back(std::move(attr));

  // Causal rollup (DESIGN.md §16): per-edge-class totals and nearest-rank
  // percentiles over the per-migration class totals. Fixed enum order so
  // the rendering is deterministic and the JSON schema is config-stable.
  report_.cp_migrations = 0;
  report_.cp_rollup.clear();
  report_.cp_dominant.clear();
  {
    std::array<obs::Histogram, obs::kEdgeClassCount> dists;
    std::array<EdgeAttribution, obs::kEdgeClassCount> classes;
    for (std::size_t c = 0; c < obs::kEdgeClassCount; ++c) {
      classes[c].edge = obs::edge_class_name(static_cast<obs::EdgeClass>(c));
    }
    for (const MigrationOutcome& o : report_.outcomes) {
      const obs::CriticalPath& cp = o.report.critical_path;
      if (!cp.valid) continue;
      report_.cp_migrations++;
      for (std::size_t c = 0; c < obs::kEdgeClassCount; ++c) {
        classes[c].total += cp.by_class[c];
        classes[c].max = std::max(classes[c].max, cp.by_class[c]);
        dists[c].record(cp.by_class[c]);
      }
      classes[static_cast<std::size_t>(cp.dominant())].dominant_count++;
    }
    if (report_.cp_migrations > 0) {
      const EdgeAttribution* fleet_dom = nullptr;
      for (std::size_t c = 0; c < obs::kEdgeClassCount; ++c) {
        classes[c].p50 = dists[c].percentile(50);
        classes[c].p99 = dists[c].percentile(99);
        if (static_cast<obs::EdgeClass>(c) != obs::EdgeClass::slack &&
            (fleet_dom == nullptr ||
             classes[c].dominant_count > fleet_dom->dominant_count ||
             (classes[c].dominant_count == fleet_dom->dominant_count &&
              classes[c].total > fleet_dom->total))) {
          fleet_dom = &classes[c];
        }
      }
      if (fleet_dom != nullptr && fleet_dom->total > 0) {
        report_.cp_dominant = fleet_dom->edge;
      }
      report_.cp_rollup.assign(classes.begin(), classes.end());
    }
  }

  auto& reg = obs::Registry::global();
  reg.counter("cluster.drain.completed").inc();
  reg.gauge("cluster.drain.last_makespan_ns").set(static_cast<double>(report_.makespan()));
  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) tracer.end(report_.finished_at, "drain", "cluster");

  MIGR_INFO() << "drain of host " << report_.host << " done: " << report_.completed << "/"
              << report_.migrations << " evacuated, makespan " << report_.makespan()
              << " ns, " << report_.retries << " retries";
  if (done_) done_(report_);
}

DrainReport DrainWorkflow::run(net::HostId host, DrainOptions options) {
  DrainReport out;
  bool done = false;
  auto st = start(
      host,
      [&](const DrainReport& r) {
        out = r;
        done = true;
      },
      options);
  if (!st.is_ok()) {
    out.host = host;
    out.error = st.to_string();
    return out;
  }
  const sim::TimeNs deadline = model_.loop().now() + options.deadline;
  while (!done && model_.loop().now() < deadline) model_.run_for(sim::msec(1));
  if (!done) {
    out = report_;
    out.error = "drain deadline exceeded";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

std::string format_drain_report(const DrainReport& r) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "drain host=%u ok=%d guests=%" PRIu64 " completed=%" PRIu64
                " failed=%" PRIu64 " retries=%" PRIu64 " aborts=%" PRIu64
                " start_ns=%lld end_ns=%lld makespan_ns=%lld\n",
                r.host, r.ok ? 1 : 0, r.migrations, r.completed, r.failed, r.retries,
                r.aborts, static_cast<long long>(r.started_at),
                static_cast<long long>(r.finished_at),
                static_cast<long long>(r.makespan()));
  out += line;
  std::snprintf(line, sizeof(line),
                "blackout_ns p50=%lld p99=%lld max=%lld samples=%zu\n",
                static_cast<long long>(r.blackout_p50),
                static_cast<long long>(r.blackout_p99),
                static_cast<long long>(r.blackout_max), r.egress_gbps.size());
  out += line;
  // Mux rollup line only when some migration ran with stream fan-out: the
  // legacy rendering stays byte-identical to the committed baselines.
  std::uint32_t xf_streams = 0;
  std::uint64_t xf_attempted = 0, xf_delivered = 0, xf_lost = 0, xf_suppressed = 0;
  for (const MigrationOutcome& o : r.outcomes) {
    xf_streams = std::max(xf_streams, o.report.xfer_streams);
    xf_attempted += o.report.xfer_bytes_attempted;
    xf_delivered += o.report.xfer_bytes_delivered;
    xf_lost += o.report.xfer_bytes_lost;
    xf_suppressed += o.report.xfer_bytes_suppressed;
  }
  if (xf_streams > 0) {
    std::snprintf(line, sizeof(line),
                  "xfer streams=%u attempted=%" PRIu64 " delivered=%" PRIu64
                  " lost=%" PRIu64 " suppressed=%" PRIu64 "\n",
                  xf_streams, xf_attempted, xf_delivered, xf_lost, xf_suppressed);
    out += line;
  }
  for (const PhaseAttribution& a : r.phase_rollup) {
    std::snprintf(line, sizeof(line),
                  "phase=%s worst_of=%" PRIu64 " total_ns=%lld max_ns=%lld\n",
                  a.phase.c_str(), a.worst_count, static_cast<long long>(a.total),
                  static_cast<long long>(a.max));
    out += line;
  }
  // Causal attribution lines only when some migration ran with critical-path
  // recording: the legacy rendering stays byte-identical to the baselines.
  if (r.cp_migrations > 0) {
    std::snprintf(line, sizeof(line),
                  "critical_path migrations=%" PRIu64 " dominant=%s\n",
                  r.cp_migrations,
                  r.cp_dominant.empty() ? "none" : r.cp_dominant.c_str());
    out += line;
    for (const EdgeAttribution& e : r.cp_rollup) {
      if (e.total == 0) continue;
      std::snprintf(line, sizeof(line),
                    "cp edge=%s dominant_of=%" PRIu64
                    " total_ns=%lld max_ns=%lld p50_ns=%lld p99_ns=%lld\n",
                    e.edge.c_str(), e.dominant_count, static_cast<long long>(e.total),
                    static_cast<long long>(e.max), static_cast<long long>(e.p50),
                    static_cast<long long>(e.p99));
      out += line;
    }
  }
  for (const MigrationOutcome& o : r.outcomes) {
    std::snprintf(line, sizeof(line),
                  "guest=%u src=%u dest=%u attempts=%d ok=%d blackout_ns=%lld "
                  "wf_ns=%lld start_ns=%lld end_ns=%lld\n",
                  o.guest, o.source, o.dest, o.attempts, o.completed ? 1 : 0,
                  static_cast<long long>(o.completed ? o.report.service_blackout() : 0),
                  static_cast<long long>(o.report.waterfall_total()),
                  static_cast<long long>(o.report.start),
                  static_cast<long long>(o.report.end));
    out += line;
  }
  return out;
}

std::string drain_report_json(const DrainReport& r, const std::string& mode,
                              const std::string& scenario) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"kind\":\"drain_report\",\"version\":1,\"scenario\":\"%s\","
                "\"mode\":\"%s\",\"host\":%u,\"ok\":%s,\"migrations\":%" PRIu64
                ",\"completed\":%" PRIu64 ",\"failed\":%" PRIu64
                ",\"retries\":%" PRIu64 ",\"aborts\":%" PRIu64
                ",\"makespan_ns\":%lld",
                scenario.c_str(), mode.c_str(), r.host, r.ok ? "true" : "false",
                r.migrations, r.completed, r.failed, r.retries, r.aborts,
                static_cast<long long>(r.makespan()));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"blackout_ns\":{\"p50\":%lld,\"p99\":%lld,\"max\":%lld}",
                static_cast<long long>(r.blackout_p50),
                static_cast<long long>(r.blackout_p99),
                static_cast<long long>(r.blackout_max));
  out += buf;

  out += ",\"phases\":[";
  for (std::size_t i = 0; i < r.phase_rollup.size(); i++) {
    const PhaseAttribution& a = r.phase_rollup[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"phase\":\"%s\",\"worst_of\":%" PRIu64
                  ",\"total_ns\":%lld,\"max_ns\":%lld}",
                  i == 0 ? "" : ",", a.phase.c_str(), a.worst_count,
                  static_cast<long long>(a.total), static_cast<long long>(a.max));
    out += buf;
  }
  out += "]";

  // Fleet causal rollup, present only when critical-path attribution ran —
  // cp-off artifacts stay byte-identical to pre-feature ones. All edge
  // classes appear in enum order so the block's schema is fixed.
  if (r.cp_migrations > 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"critical_path\":{\"migrations\":%" PRIu64
                  ",\"dominant\":\"%s\",\"by_class\":[",
                  r.cp_migrations,
                  r.cp_dominant.empty() ? "none" : r.cp_dominant.c_str());
    out += buf;
    for (std::size_t c = 0; c < r.cp_rollup.size(); c++) {
      const EdgeAttribution& e = r.cp_rollup[c];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"class\":\"%s\",\"dominant_of\":%" PRIu64
                    ",\"total_ns\":%lld,\"max_ns\":%lld,\"p50_ns\":%lld"
                    ",\"p99_ns\":%lld}",
                    c == 0 ? "" : ",", e.edge.c_str(), e.dominant_count,
                    static_cast<long long>(e.total), static_cast<long long>(e.max),
                    static_cast<long long>(e.p50), static_cast<long long>(e.p99));
      out += buf;
    }
    out += "]}";
  }

  // Fleet post-copy rollup: always present so the schema is mode-stable
  // (all-zero on a pure pre-copy leg).
  std::uint64_t pc_migr = 0, pc_missing = 0, pc_faults = 0, pc_prefetched = 0,
                pc_bytes = 0;
  long long pc_drain_max = 0, pc_p99_max = 0;
  for (const MigrationOutcome& o : r.outcomes) {
    const migrlib::PostcopyStats& pc = o.report.postcopy;
    if (!pc.enabled) continue;
    pc_migr++;
    pc_missing += pc.missing_pages;
    pc_faults += pc.demand_faults;
    pc_prefetched += pc.prefetched_pages;
    pc_bytes += pc.fetch_bytes;
    pc_drain_max = std::max(pc_drain_max, static_cast<long long>(pc.drain_ns));
    pc_p99_max = std::max(pc_p99_max, static_cast<long long>(pc.fault_p99_ns));
  }
  std::snprintf(buf, sizeof(buf),
                ",\"postcopy\":{\"migrations\":%" PRIu64 ",\"missing_pages\":%" PRIu64
                ",\"demand_faults\":%" PRIu64 ",\"prefetched_pages\":%" PRIu64
                ",\"fetch_bytes\":%" PRIu64
                ",\"drain_ns_max\":%lld,\"fault_p99_ns_max\":%lld}",
                pc_migr, pc_missing, pc_faults, pc_prefetched, pc_bytes, pc_drain_max,
                pc_p99_max);
  out += buf;

  // Parallel-stream mux + suppression rollup: always present so the schema
  // is config-stable (all-zero when the mux and suppression are off). The
  // per-stream array is summed across migrations by stream index; balance
  // (attempted == delivered + lost, raw == shipped + suppressed) holds per
  // stream and in total.
  std::uint32_t xf_streams = 0;
  std::uint64_t xf_migr = 0, xf_attempted = 0, xf_delivered = 0, xf_lost = 0,
                xf_chunks = 0, xf_retries = 0;
  std::uint64_t sp_zero = 0, sp_same = 0, sp_delta = 0, sp_full = 0, sp_raw = 0,
                sp_shipped = 0, sp_suppressed = 0;
  std::vector<migrlib::XferStreamStats> per_stream;
  for (const MigrationOutcome& o : r.outcomes) {
    const MigrationReport& m = o.report;
    if (m.xfer_streams > 0) xf_migr++;
    xf_streams = std::max(xf_streams, m.xfer_streams);
    xf_attempted += m.xfer_bytes_attempted;
    xf_delivered += m.xfer_bytes_delivered;
    xf_lost += m.xfer_bytes_lost;
    xf_chunks += m.xfer_chunks;
    xf_retries += m.transfer_retries;
    if (per_stream.size() < m.xfer_stream_stats.size()) {
      per_stream.resize(m.xfer_stream_stats.size());
    }
    for (std::size_t k = 0; k < m.xfer_stream_stats.size(); k++) {
      per_stream[k].chunks += m.xfer_stream_stats[k].chunks;
      per_stream[k].bytes_attempted += m.xfer_stream_stats[k].bytes_attempted;
      per_stream[k].bytes_delivered += m.xfer_stream_stats[k].bytes_delivered;
      per_stream[k].retries += m.xfer_stream_stats[k].retries;
    }
    sp_zero += m.xfer_pages_zero;
    sp_same += m.xfer_pages_same;
    sp_delta += m.xfer_pages_delta;
    sp_full += m.xfer_pages_full;
    sp_raw += m.xfer_bytes_raw;
    sp_shipped += m.xfer_bytes_shipped;
    sp_suppressed += m.xfer_bytes_suppressed;
  }
  std::snprintf(buf, sizeof(buf),
                ",\"xfer\":{\"streams\":%u,\"migrations\":%" PRIu64
                ",\"bytes_attempted\":%" PRIu64 ",\"bytes_delivered\":%" PRIu64
                ",\"bytes_lost\":%" PRIu64 ",\"chunks\":%" PRIu64
                ",\"retries\":%" PRIu64 ",\"per_stream\":[",
                xf_streams, xf_migr, xf_attempted, xf_delivered, xf_lost, xf_chunks,
                xf_retries);
  out += buf;
  for (std::size_t k = 0; k < per_stream.size(); k++) {
    const migrlib::XferStreamStats& s = per_stream[k];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"chunks\":%" PRIu64 ",\"attempted\":%" PRIu64
                  ",\"delivered\":%" PRIu64 ",\"lost\":%" PRIu64
                  ",\"retries\":%" PRIu64 "}",
                  k == 0 ? "" : ",", s.chunks, s.bytes_attempted, s.bytes_delivered,
                  s.bytes_lost(), s.retries);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"suppression\":{\"pages_zero\":%" PRIu64 ",\"pages_same\":%" PRIu64
                ",\"pages_delta\":%" PRIu64 ",\"pages_full\":%" PRIu64
                ",\"bytes_raw\":%" PRIu64 ",\"bytes_shipped\":%" PRIu64
                ",\"bytes_suppressed\":%" PRIu64 "}}",
                sp_zero, sp_same, sp_delta, sp_full, sp_raw, sp_shipped, sp_suppressed);
  out += buf;

  out += ",\"guests\":[";
  for (std::size_t i = 0; i < r.outcomes.size(); i++) {
    const MigrationOutcome& o = r.outcomes[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"guest\":%u,\"src\":%u,\"dest\":%u,\"attempts\":%d,"
                  "\"ok\":%s,\"blackout_ns\":%lld,\"waterfall\":",
                  i == 0 ? "" : ",", o.guest, o.source, o.dest, o.attempts,
                  o.completed ? "true" : "false",
                  static_cast<long long>(o.completed ? o.report.service_blackout() : 0));
    out += buf;
    out += o.report.waterfall_json();
    if (o.report.critical_path.valid) {
      out += ",\"critical_path\":";
      out += o.report.critical_path.json();
    }
    if (o.report.postcopy.enabled) {
      out += ",\"postcopy\":";
      out += o.report.postcopy.json();
    }
    if (o.report.xfer_streams > 0) {
      std::snprintf(buf, sizeof(buf),
                    ",\"xfer\":{\"streams\":%u,\"bytes_attempted\":%" PRIu64
                    ",\"bytes_delivered\":%" PRIu64 ",\"bytes_lost\":%" PRIu64
                    ",\"chunks\":%" PRIu64 ",\"bytes_suppressed\":%" PRIu64 "}",
                    o.report.xfer_streams, o.report.xfer_bytes_attempted,
                    o.report.xfer_bytes_delivered, o.report.xfer_bytes_lost,
                    o.report.xfer_chunks, o.report.xfer_bytes_suppressed);
      out += buf;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace migr::cluster
