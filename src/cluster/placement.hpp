// Pluggable destination-placement policies for the migration scheduler.
//
// A policy answers one question: given a guest leaving `source`, which of
// the model's placeable hosts should receive it? Candidates always come
// from ClusterModel::placeable_hosts(source) (attached, not draining, not
// partitioned), so every policy automatically respects maintenance mode.
// Policies are consulted per *attempt*: a retried migration whose request
// did not pin a destination gets a fresh pick, which routes retries around
// a dead destination.
#pragma once

#include <memory>
#include <string_view>

#include "cluster/cluster.hpp"

namespace migr::cluster {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string_view name() const = 0;
  /// not_found when no host is eligible (fleet fully draining/partitioned).
  virtual common::Result<net::HostId> pick(const ClusterModel& model, GuestId guest,
                                           net::HostId source) = 0;
};

/// Fewest guests wins; ties break on lower offered traffic, then lower host
/// id (deterministic).
class LeastLoadedPolicy final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "least-loaded"; }
  common::Result<net::HostId> pick(const ClusterModel& model, GuestId guest,
                                   net::HostId source) override;
};

/// Cycles through the eligible hosts in id order with a persistent cursor.
class RoundRobinPolicy final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "round-robin"; }
  common::Result<net::HostId> pick(const ClusterModel& model, GuestId guest,
                                   net::HostId source) override;

 private:
  std::size_t cursor_ = 0;
};

/// Avoids hosts already holding one of the guest's messaging partners
/// (keeps a partner pair from sharing a failure domain); falls back to the
/// least-loaded rule when every eligible host holds a partner.
class AntiAffinityPolicy final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "anti-affinity"; }
  common::Result<net::HostId> pick(const ClusterModel& model, GuestId guest,
                                   net::HostId source) override;
};

/// Factory: "least-loaded" | "round-robin" | "anti-affinity".
std::unique_ptr<PlacementPolicy> make_policy(std::string_view name);

}  // namespace migr::cluster
