#include "cluster/cluster.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace migr::cluster {

using common::Errc;
using common::Status;

namespace {
// Deterministic token bucket: skip exactly `factor` of the ticks, spread
// evenly, regardless of tick period.
bool throttled_tick(double factor, double& acc) {
  if (factor <= 0) return false;
  acc += factor;
  if (acc < 1.0) return false;
  acc -= 1.0;
  return true;
}
}  // namespace

ClusterModel::ClusterModel(ClusterConfig config)
    : config_(config), world_(config.fabric, config.seed) {
  for (net::HostId h = 1; h <= config_.hosts; ++h) {
    hosts_.push_back(h);
    devices_[h] = &world_.add_device(h);
    runtimes_[h] = std::make_unique<MigrRdmaRuntime>(directory_, *devices_[h],
                                                     world_.fabric());
  }
}

ClusterModel::~ClusterModel() {
  for (auto& [id, rec] : guests_) {
    rec.traffic_task.cancel();
    rec.dirty_task.cancel();
  }
}

common::Result<apps::MsgNode*> ClusterModel::add_guest(net::HostId host, GuestId id,
                                                       TrafficProfile profile) {
  auto rt = runtimes_.find(host);
  if (rt == runtimes_.end()) return common::err(Errc::not_found, "no such host");
  if (guests_.contains(id)) {
    return common::err(Errc::already_exists, "guest id already placed");
  }
  auto& proc = world_.add_process("guest-" + std::to_string(id));
  GuestRecord rec;
  rec.id = id;
  rec.profile = profile;
  // Keep the generator's payload inside one message slot (4-byte framing).
  rec.profile.msg_bytes =
      std::min(rec.profile.msg_bytes, config_.msg.max_msg > 4 ? config_.msg.max_msg - 4 : 1u);
  rec.node = std::make_unique<apps::MsgNode>(*rt->second, proc, id, config_.msg);
  if (profile.extra_mem_bytes > 0) {
    auto addr = proc.mem().mmap(profile.extra_mem_bytes, "fleet_extra");
    if (!addr.is_ok()) return addr.status();
    rec.extra_buf = addr.value();
    auto mr = rec.node->guest().reg_mr(rec.node->pd(), rec.extra_buf,
                                       profile.extra_mem_bytes, rnic::kAccessLocalWrite);
    if (!mr.is_ok()) return mr.status();
  }
  auto [it, inserted] = guests_.emplace(id, std::move(rec));
  GuestRecord& stored = it->second;
  if (sli_hub_ != nullptr) stored.node->enable_sli(*sli_hub_);
  if (profile.dirty_interval > 0 && stored.extra_buf != 0) {
    // Page-granular churn over the extra MR: keeps the pre-copy rounds and
    // the final diff non-trivial. Pauses while the guest's process is frozen
    // (mid-blackout) — dirtying then would be writing into a stopped task.
    stored.dirty_task = loop().schedule_every(profile.dirty_interval, [this, id] {
      auto g = guests_.find(id);
      if (g == guests_.end() || g->second.extra_buf == 0) return;
      GuestRecord& r = g->second;
      if (r.node->process().frozen()) return;
      if (throttled_tick(r.throttle, r.dirty_acc)) return;
      const std::uint8_t stamp = ++r.dirty_stamp;
      for (std::uint64_t off = 0; off < r.profile.extra_mem_bytes; off += 4096) {
        (void)r.node->process().mem().write(r.extra_buf + off, {&stamp, 1});
      }
    });
  }
  return stored.node.get();
}

Status ClusterModel::connect_guests(GuestId a, GuestId b) {
  auto ia = guests_.find(a);
  auto ib = guests_.find(b);
  if (ia == guests_.end() || ib == guests_.end()) {
    return common::err(Errc::not_found, "guest not placed");
  }
  MIGR_RETURN_IF_ERROR(apps::MsgNode::connect(*ia->second.node, *ib->second.node));
  ia->second.peers.push_back(b);
  ib->second.peers.push_back(a);
  ia->second.node->start();
  ib->second.node->start();
  start_generator(ia->second);
  start_generator(ib->second);
  return Status::ok();
}

void ClusterModel::start_generator(GuestRecord& rec) {
  if (rec.generating || rec.profile.send_interval <= 0) return;
  rec.generating = true;
  // Scheduled on the raw loop (not a process poller) so it survives the
  // source process being killed at migration commit; it checks the guest's
  // *current* process each tick and idles while that process is frozen.
  rec.traffic_task = loop().schedule_every(rec.profile.send_interval, [this, id = rec.id] {
    auto it = guests_.find(id);
    if (it == guests_.end()) return;
    GuestRecord& r = it->second;
    if (r.peers.empty() || r.node->process().frozen()) return;
    if (throttled_tick(r.throttle, r.traffic_acc)) return;
    const GuestId peer = r.peers[r.rr_cursor++ % r.peers.size()];
    common::Bytes payload(r.profile.msg_bytes, 0xA5);
    // Window-full / suspension failures are dropped; the generator offers
    // fresh load on its next tick (open-loop source).
    (void)r.node->send(peer, payload);
  });
}

apps::MsgNode* ClusterModel::guest(GuestId id) const {
  auto it = guests_.find(id);
  return it == guests_.end() ? nullptr : it->second.node.get();
}

migrlib::MigratableApp* ClusterModel::app_of(GuestId id) const { return guest(id); }

const TrafficProfile* ClusterModel::profile_of(GuestId id) const {
  auto it = guests_.find(id);
  return it == guests_.end() ? nullptr : &it->second.profile;
}

std::vector<GuestId> ClusterModel::partners_of(GuestId id) const {
  auto it = guests_.find(id);
  return it == guests_.end() ? std::vector<GuestId>{} : it->second.peers;
}

std::vector<GuestId> ClusterModel::guests_on(net::HostId host) const {
  std::vector<GuestId> out;
  for (const auto& [id, rec] : guests_) {
    if (directory_.locate(id) == host) out.push_back(id);
  }
  return out;
}

std::vector<GuestId> ClusterModel::all_guests() const {
  std::vector<GuestId> out;
  out.reserve(guests_.size());
  for (const auto& [id, rec] : guests_) out.push_back(id);
  return out;
}

std::size_t ClusterModel::guest_count(net::HostId host) const {
  return guests_on(host).size();
}

double ClusterModel::traffic_weight(net::HostId host) const {
  double w = 0;
  for (const auto& [id, rec] : guests_) {
    if (directory_.locate(id) == host) w += rec.profile.bytes_per_sec();
  }
  return w;
}

void ClusterModel::set_draining(net::HostId host, bool draining) {
  if (draining) {
    draining_.insert(host);
  } else {
    draining_.erase(host);
  }
}

std::vector<net::HostId> ClusterModel::placeable_hosts(net::HostId exclude) const {
  std::vector<net::HostId> out;
  for (net::HostId h : hosts_) {
    if (h == exclude || draining_.contains(h)) continue;
    if (world_.fabric().partitioned(h)) continue;
    out.push_back(h);
  }
  return out;
}

void ClusterModel::set_throttle(GuestId id, double factor) {
  auto it = guests_.find(id);
  if (it == guests_.end()) return;
  GuestRecord& r = it->second;
  r.throttle = std::clamp(factor, 0.0, 0.95);
  if (r.throttle == 0) {
    r.traffic_acc = 0;
    r.dirty_acc = 0;
  }
}

double ClusterModel::throttle_of(GuestId id) const {
  auto it = guests_.find(id);
  return it == guests_.end() ? 0.0 : it->second.throttle;
}

void ClusterModel::enable_sli(obs::SliHub& hub) {
  sli_hub_ = &hub;
  for (auto& [id, rec] : guests_) rec.node->enable_sli(hub);
}

std::size_t ClusterModel::audit_stuck_qps(sim::DurationNs stale_after) const {
  std::size_t total = 0;
  for (const auto& [h, dev] : devices_) total += dev->audit_stuck_qps(stale_after).size();
  return total;
}

}  // namespace migr::cluster
