#include "cluster/ft_plan.hpp"

#include <algorithm>

namespace migr::cluster {

using common::Errc;

FtPlanner::FtPlanner(ClusterModel& model, FtPlanOptions options)
    : model_(model), options_(std::move(options)), policy_(make_policy(options_.policy)) {}

sim::DurationNs FtPlanner::epoch_interval_for(const TrafficProfile& profile) const {
  const double rate = profile.dirty_bytes_per_sec();
  if (rate <= 0) return options_.default_epoch_interval;
  const double sec = static_cast<double>(options_.epoch_byte_budget) / rate;
  const auto iv = static_cast<sim::DurationNs>(sec * sim::kSecond);
  return std::clamp(iv, options_.min_epoch_interval, options_.max_epoch_interval);
}

common::Result<FtPlanEntry> FtPlanner::plan(GuestId guest) {
  const net::HostId primary = model_.host_of(guest);
  if (primary == 0) return common::err(Errc::not_found, "guest not placed");

  // Standby candidates: migration-placeable hosts minus every host holding
  // a messaging partner (a shared failure domain would make one host loss
  // take out guest and partner together).
  std::vector<net::HostId> eligible = model_.placeable_hosts(primary);
  for (GuestId pid : model_.partners_of(guest)) {
    const net::HostId ph = model_.host_of(pid);
    eligible.erase(std::remove(eligible.begin(), eligible.end(), ph), eligible.end());
  }
  if (eligible.empty()) {
    return common::err(Errc::not_found, "no eligible standby host");
  }

  // Let the configured policy choose; when its pick is a partner host (the
  // policy does not know about the exclusion), fall back to the
  // least-loaded rule over the filtered set — same tie-breaks, still
  // deterministic.
  net::HostId backup = 0;
  if (auto picked = policy_->pick(model_, guest, primary);
      picked.is_ok() &&
      std::find(eligible.begin(), eligible.end(), picked.value()) != eligible.end()) {
    backup = picked.value();
  } else {
    backup = eligible.front();
    for (net::HostId h : eligible) {
      const auto lhs = std::make_tuple(model_.guest_count(h), model_.traffic_weight(h), h);
      const auto rhs = std::make_tuple(model_.guest_count(backup),
                                       model_.traffic_weight(backup), backup);
      if (lhs < rhs) backup = h;
    }
  }

  FtPlanEntry entry;
  entry.guest = guest;
  entry.primary = primary;
  entry.backup = backup;
  const TrafficProfile* profile = model_.profile_of(guest);
  entry.epoch_interval =
      profile != nullptr ? epoch_interval_for(*profile) : options_.default_epoch_interval;
  return entry;
}

std::vector<FtPlanEntry> FtPlanner::plan_all() {
  std::vector<FtPlanEntry> out;
  for (GuestId id : model_.all_guests()) {
    auto entry = plan(id);
    if (entry.is_ok()) out.push_back(entry.value());
  }
  return out;
}

ft::FtOptions FtPlanner::options_for(const FtPlanEntry& entry, ft::FtOptions base) const {
  base.epoch_interval = entry.epoch_interval;
  base.epoch_byte_budget = options_.epoch_byte_budget;
  base.min_epoch_interval = options_.min_epoch_interval;
  base.max_epoch_interval = options_.max_epoch_interval;
  return base;
}

}  // namespace migr::cluster
