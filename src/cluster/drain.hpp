// DrainWorkflow: end-to-end host evacuation for maintenance.
//
// Marks the host draining (no new placements), submits one policy-placed
// migration request per resident guest at drain priority, and tracks the
// batch to completion through the scheduler — including the scheduler's
// abort/backoff-retry handling. While the drain runs it samples the drained
// host's egress (data + ctrl bytes) into a bandwidth-vs-time series; at the
// end it emits a fleet-level DrainReport: makespan, per-migration blackout
// percentiles, aborts/retries/failures, and the sampled series.
//
// A drain of a host with zero guests completes synchronously inside
// start(). The draining flag stays set after a successful evacuation (the
// host is going down for maintenance); callers that want the host back call
// ClusterModel::set_draining(host, false).
#pragma once

#include <string>

#include "cluster/scheduler.hpp"
#include "obs/critical_path.hpp"
#include "obs/histogram.hpp"

namespace migr::cluster {

struct DrainOptions {
  int priority = 10;  // drains outrank default-priority single moves
  sim::DurationNs sample_interval = sim::msec(1);  // bandwidth-vs-time sampling
  sim::DurationNs deadline = sim::sec(600);        // for the synchronous run()
};

struct BandwidthSample {
  sim::TimeNs at = 0;
  double gbps = 0;  // drained-host egress (data + ctrl) over the last interval
};

/// Fleet-level rollup of one blackout phase across every migration in the
/// drain (from the per-migration waterfalls).
struct PhaseAttribution {
  std::string phase;
  std::uint64_t worst_count = 0;  // migrations whose longest slice was this phase
  sim::DurationNs total = 0;      // summed over all waterfalls
  sim::DurationNs max = 0;        // worst single slice
};

/// Fleet-level rollup of one critical-path edge class across the migrations
/// that ran with critical-path attribution (DESIGN.md §16). Percentiles are
/// nearest-rank over the per-migration class totals.
struct EdgeAttribution {
  std::string edge;
  std::uint64_t dominant_count = 0;  // migrations whose dominant edge was this
  sim::DurationNs total = 0;         // summed over all critical paths
  sim::DurationNs max = 0;           // worst per-migration class total
  sim::DurationNs p50 = 0;
  sim::DurationNs p99 = 0;
};

struct DrainReport {
  net::HostId host = 0;
  bool ok = false;  // every resident guest evacuated (all completed)
  std::string error;
  sim::TimeNs started_at = 0;
  sim::TimeNs finished_at = 0;
  std::vector<MigrationOutcome> outcomes;  // sorted by guest id

  std::uint64_t migrations = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;  // extra attempts beyond the first, summed
  std::uint64_t aborts = 0;   // aborted attempts (retried or terminal)

  // Service-blackout distribution over the completed migrations
  // (nearest-rank percentiles via obs::Histogram's exact mode).
  sim::DurationNs blackout_p50 = 0;
  sim::DurationNs blackout_p99 = 0;
  sim::DurationNs blackout_max = 0;

  // SLO summary for the drain window (zero when no SLO engine was armed).
  // Not rendered by format_drain_report — the text format predates the SLO
  // engine and stays byte-stable; benches read these fields directly.
  std::uint64_t slo_alerts = 0;      // alerts fired during the drain
  std::uint64_t slo_deferrals = 0;   // scheduler deferrals for burning guests

  std::vector<BandwidthSample> egress_gbps;

  // Blackout anatomy across the fleet: which phase dominated each
  // migration's blackout, sorted by phase name (deterministic).
  std::vector<PhaseAttribution> phase_rollup;

  // Causal attribution across the fleet (only populated when some
  // migrations ran with MigrationOptions::critical_path): one entry per
  // edge class in enum order — all kEdgeClassCount classes, zeros included,
  // so the JSON schema is fixed. Empty when cp_migrations == 0.
  std::uint64_t cp_migrations = 0;  // outcomes carrying a valid critical path
  std::vector<EdgeAttribution> cp_rollup;
  std::string cp_dominant;  // fleet dominant edge (slack excluded)

  sim::DurationNs makespan() const { return finished_at - started_at; }
};

/// Deterministic text rendering (sim-time fields only): byte-identical
/// across runs with the same seed — the reproducibility tests diff it.
std::string format_drain_report(const DrainReport& report);

/// Machine-readable artifact (kind "drain_report", version 1): fleet rollup,
/// per-phase attribution, post-copy accounting (zeros on a pure pre-copy
/// leg), and per-guest blackout waterfalls. `mode` and `scenario` label the
/// leg so a pre-copy and a post-copy run of the same workload are directly
/// comparable; validated by tools/validate_artifacts.py --drain.
std::string drain_report_json(const DrainReport& report, const std::string& mode,
                              const std::string& scenario);

class DrainWorkflow {
 public:
  using DoneCb = std::function<void(const DrainReport&)>;

  DrainWorkflow(ClusterModel& model, MigrationScheduler& scheduler)
      : model_(model), scheduler_(&scheduler) {}
  DrainWorkflow(const DrainWorkflow&) = delete;
  DrainWorkflow& operator=(const DrainWorkflow&) = delete;
  ~DrainWorkflow();

  /// Kick off the evacuation of `host`; `done` fires when the last resident
  /// guest reaches a terminal outcome (synchronously for an empty host).
  common::Status start(net::HostId host, DoneCb done, DrainOptions options = {});
  /// Synchronous convenience: start + pump the loop until done or deadline.
  DrainReport run(net::HostId host, DrainOptions options = {});

  bool active() const noexcept { return active_; }
  const DrainReport& report() const noexcept { return report_; }

 private:
  void on_outcome(const MigrationOutcome& outcome);
  void finalize();

  ClusterModel& model_;
  MigrationScheduler* scheduler_;
  DrainOptions options_;
  DrainReport report_;
  DoneCb done_;
  bool active_ = false;
  std::size_t outstanding_ = 0;
  std::uint64_t last_egress_bytes_ = 0;
  sim::EventHandle sampler_;
  obs::Histogram blackouts_;  // exact mode: nearest-rank, byte-identical reports
  std::uint64_t slo_alerts_at_start_ = 0;
  std::uint64_t slo_deferrals_at_start_ = 0;
};

}  // namespace migr::cluster
