// Fleet model: the cluster-wide substrate the orchestration layer schedules
// against. A ClusterModel owns N simulated hosts (RNIC + MigrRDMA runtime
// each), the guest directory, and a registry of placed guests — MsgNode
// endpoints with per-guest traffic profiles (message rate/size, extra
// registered memory, dirty-page churn) so a fleet under migration generates
// realistic dirty-copy and wait-before-stop work.
//
// The model is deliberately passive: it answers placement questions (who is
// where, how loaded is each host, which hosts can take new guests) and owns
// guest lifetime; all migration decisions live in MigrationScheduler /
// DrainWorkflow. The GuestDirectory stays the single source of truth for
// guest location — the model never caches placements.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "apps/msg_node.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

namespace migr::cluster {

using migrlib::GuestDirectory;
using migrlib::GuestId;
using migrlib::MigrRdmaRuntime;

struct ClusterConfig {
  std::uint32_t hosts = 4;       // host ids 1..hosts
  net::FabricConfig fabric = {};
  std::uint64_t seed = 42;
  apps::MsgNodeConfig msg = {};  // shared MsgNode settings for all guests
};

/// Per-guest workload description. The model runs the generators; profiles
/// also feed placement (traffic-weighted load).
struct TrafficProfile {
  sim::DurationNs send_interval = 0;   // 0 = idle guest (no generator)
  std::uint32_t msg_bytes = 512;       // payload per message
  std::uint64_t extra_mem_bytes = 0;   // extra registered MR (dirty-copy volume)
  sim::DurationNs dirty_interval = 0;  // 0 = clean; else touch every page per tick

  /// Steady-state offered load in bytes/sec (0 for idle guests).
  double bytes_per_sec() const {
    if (send_interval <= 0) return 0.0;
    return static_cast<double>(msg_bytes) * 1e9 / static_cast<double>(send_interval);
  }

  /// Steady-state page-dirtying rate in bytes/sec (0 for clean guests). The
  /// dirtier stamps one byte per page but dirties the whole page, so the
  /// rate is page-granular — this is what migration-mode policies compare
  /// against link bandwidth.
  double dirty_bytes_per_sec() const {
    if (dirty_interval <= 0 || extra_mem_bytes == 0) return 0.0;
    const std::uint64_t pages = (extra_mem_bytes + 4095) / 4096;
    return static_cast<double>(pages * 4096) * 1e9 / static_cast<double>(dirty_interval);
  }
};

class ClusterModel {
 public:
  explicit ClusterModel(ClusterConfig config = {});
  ~ClusterModel();
  ClusterModel(const ClusterModel&) = delete;
  ClusterModel& operator=(const ClusterModel&) = delete;

  sim::EventLoop& loop() noexcept { return world_.loop(); }
  net::Fabric& fabric() noexcept { return world_.fabric(); }
  rnic::World& world() noexcept { return world_; }
  GuestDirectory& directory() noexcept { return directory_; }
  MigrRdmaRuntime& runtime(net::HostId host) { return *runtimes_.at(host); }
  rnic::Device& device(net::HostId host) { return *devices_.at(host); }
  const std::vector<net::HostId>& hosts() const noexcept { return hosts_; }

  /// Place a new guest (a MsgNode with the model's MsgNodeConfig) on `host`.
  /// The profile's extra memory is mmapped and registered immediately; its
  /// traffic generator starts once the guest is connected to a peer.
  common::Result<apps::MsgNode*> add_guest(net::HostId host, GuestId id,
                                           TrafficProfile profile = {});
  /// RC-connect two placed guests and start both traffic generators.
  common::Status connect_guests(GuestId a, GuestId b);

  apps::MsgNode* guest(GuestId id) const;
  migrlib::MigratableApp* app_of(GuestId id) const;
  const TrafficProfile* profile_of(GuestId id) const;
  /// Static messaging topology (who this guest exchanges traffic with).
  std::vector<GuestId> partners_of(GuestId id) const;

  // ---- placement queries (directory-backed) ----
  net::HostId host_of(GuestId id) const { return directory_.locate(id); }
  std::vector<GuestId> guests_on(net::HostId host) const;  // sorted by id
  std::vector<GuestId> all_guests() const;                 // sorted by id
  std::size_t guest_count(net::HostId host) const;
  /// Sum of the offered loads (bytes/sec) of the guests on `host`.
  double traffic_weight(net::HostId host) const;

  /// Draining hosts accept no new placements (maintenance mode). The flag is
  /// advisory: policies consult it, the scheduler does not enforce it for
  /// explicitly-pinned destinations.
  void set_draining(net::HostId host, bool draining);
  bool draining(net::HostId host) const { return draining_.contains(host); }
  /// Hosts eligible as migration destinations: attached, not draining, not
  /// partitioned, and != exclude. Sorted by host id.
  std::vector<net::HostId> placeable_hosts(net::HostId exclude = 0) const;

  /// Auto-converge throttle: skip `factor` of the guest's traffic and dirty
  /// generator ticks (0 = full speed, clamped to 0.95). Wired into
  /// MigrationOptions::throttle by the scheduler so a diverging pre-copy can
  /// slow the guest until the dirty rate fits the link.
  void set_throttle(GuestId id, double factor);
  double throttle_of(GuestId id) const;

  /// Arm the SLI taps (RTT, goodput, retransmits) on every placed guest and
  /// on guests added afterwards. No-op per guest when the hub is disabled.
  void enable_sli(obs::SliHub& hub);

  /// Fleet-wide QP health check: total stuck QPs across every device.
  std::size_t audit_stuck_qps(sim::DurationNs stale_after) const;

  void run_for(sim::DurationNs d) { loop().run_until(loop().now() + d); }

 private:
  struct GuestRecord {
    GuestId id = 0;
    TrafficProfile profile;
    std::unique_ptr<apps::MsgNode> node;
    std::vector<GuestId> peers;       // connected traffic targets
    std::uint64_t extra_buf = 0;      // base address of the extra MR
    std::size_t rr_cursor = 0;        // round-robin over peers
    std::uint8_t dirty_stamp = 0;     // rolling byte written by the dirtier
    double throttle = 0;              // fraction of generator ticks skipped
    double traffic_acc = 0;           // token buckets for fractional skips,
    double dirty_acc = 0;             //   one per generator task
    bool generating = false;
    sim::EventHandle traffic_task;
    sim::EventHandle dirty_task;
  };

  void start_generator(GuestRecord& rec);

  ClusterConfig config_;
  rnic::World world_;
  GuestDirectory directory_;
  std::vector<net::HostId> hosts_;
  std::map<net::HostId, rnic::Device*> devices_;
  std::map<net::HostId, std::unique_ptr<MigrRdmaRuntime>> runtimes_;
  std::map<GuestId, GuestRecord> guests_;  // ordered: deterministic iteration
  std::set<net::HostId> draining_;
  obs::SliHub* sli_hub_ = nullptr;  // set by enable_sli; arms future guests too
};

}  // namespace migr::cluster
