#include "cluster/scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/sli.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace migr::cluster {

using common::Errc;
using common::Status;

namespace {
void trace_instant(sim::EventLoop& loop, std::string_view name, std::string args) {
  auto& t = obs::Tracer::global();
  if (t.enabled()) t.instant(loop.now(), name, "cluster", std::move(args));
}
}  // namespace

MigrationScheduler::MigrationScheduler(ClusterModel& model, SchedulerConfig config)
    : model_(model), config_(std::move(config)), policy_(make_policy(config_.policy)) {
  auto& reg = obs::Registry::global();
  queued_gauge_ = &reg.gauge("cluster.sched.queued");
  running_gauge_ = &reg.gauge("cluster.sched.running");
  submitted_ = &reg.counter("cluster.sched.submitted");
  started_ = &reg.counter("cluster.sched.started");
  completed_ = &reg.counter("cluster.sched.completed");
  aborted_ = &reg.counter("cluster.sched.aborted");
  retried_ = &reg.counter("cluster.sched.retried");
  failed_ = &reg.counter("cluster.sched.failed");
  slo_deferred_ = &reg.counter("cluster.sched.slo_deferred");
  queue_wait_ = &reg.histogram("cluster.sched.queue_wait_ns");
}

MigrationScheduler::~MigrationScheduler() = default;

RequestId MigrationScheduler::submit(MigrationRequest req, OutcomeCb done) {
  const RequestId id = next_id_++;
  MigrationOutcome& out = outcomes_[id];
  out.id = id;
  out.guest = req.guest;
  out.submitted_at = model_.loop().now();
  if (done) request_cbs_[id] = std::move(done);
  submitted_->inc();
  pending_.push_back(Pending{id, req, 0});
  trace_instant(model_.loop(), "sched_submit",
                "\"guest\":" + std::to_string(req.guest) +
                    ",\"dest\":" + std::to_string(req.dest) +
                    ",\"priority\":" + std::to_string(req.priority));
  schedule_pump();
  update_gauges();
  return id;
}

void MigrationScheduler::set_policy(std::unique_ptr<PlacementPolicy> policy) {
  if (policy) policy_ = std::move(policy);
}

const MigrationOutcome* MigrationScheduler::outcome(RequestId id) const {
  auto it = outcomes_.find(id);
  return it == outcomes_.end() ? nullptr : &it->second;
}

Status MigrationScheduler::run_until_idle(sim::DurationNs max_wait) {
  const sim::TimeNs deadline = model_.loop().now() + max_wait;
  while (!idle() && model_.loop().now() < deadline) model_.run_for(sim::msec(1));
  if (!idle()) {
    return common::err(Errc::timeout, "scheduler not idle after " +
                                          std::to_string(max_wait) + " ns");
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Queue pump
// ---------------------------------------------------------------------------

void MigrationScheduler::schedule_pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  // Deferred one tick: lets a controller's done-callback unwind before its
  // object is destroyed, and batches a burst of submits into one pump.
  model_.loop().schedule_in(0, [this] {
    pump_scheduled_ = false;
    retired_.clear();
    pump();
  });
}

bool MigrationScheduler::conflicts_with_running(GuestId guest) const {
  for (const auto& [id, r] : running_) {
    if (r.req.guest == guest) return true;
    if (std::find(r.partners.begin(), r.partners.end(), guest) != r.partners.end()) {
      return true;
    }
  }
  return false;
}

bool MigrationScheduler::admission_ok(net::HostId src, net::HostId dest) const {
  const AdmissionLimits& lim = config_.limits;
  if (running_.size() >= lim.max_concurrent_fleet) return false;
  auto count_of = [](const std::map<net::HostId, std::uint32_t>& m, net::HostId h) {
    auto it = m.find(h);
    return it == m.end() ? 0u : it->second;
  };
  if (count_of(running_per_source_, src) >= lim.max_concurrent_per_source) return false;
  if (count_of(running_per_dest_, dest) >= lim.max_concurrent_per_dest) return false;
  const double demand = migration_demand_gbps();
  if (lim.link_budget_gbps > 0 && demand > 0) {
    auto reserved = [this](net::HostId h) {
      auto it = reserved_gbps_.find(h);
      return it == reserved_gbps_.end() ? 0.0 : it->second;
    };
    if (reserved(src) + demand > lim.link_budget_gbps) return false;
    if (reserved(dest) + demand > lim.link_budget_gbps) return false;
  }
  return true;
}

double MigrationScheduler::migration_demand_gbps() const {
  const std::uint32_t streams =
      std::max<std::uint32_t>(1u, config_.migration.xfer_streams);
  if (config_.migration.xfer_stream_gbps > 0) {
    return config_.migration.xfer_stream_gbps * streams;
  }
  return config_.limits.per_migration_gbps * streams;
}

void MigrationScheduler::pump() {
  if (pending_.empty()) {
    update_gauges();
    return;
  }
  // Work on a swapped-out copy: finish() callbacks may submit() new
  // requests mid-scan, which must not invalidate this iteration.
  std::vector<Pending> work;
  work.swap(pending_);
  std::stable_sort(work.begin(), work.end(), [](const Pending& a, const Pending& b) {
    if (a.req.priority != b.req.priority) return a.req.priority > b.req.priority;
    return a.id < b.id;
  });
  // Single ordered scan with backfill: a request blocked by admission or a
  // guest conflict does not block lower-priority requests that are eligible.
  std::vector<Pending> keep;
  for (Pending& p : work) {
    const net::HostId src = model_.host_of(p.req.guest);
    if (src == 0) {
      MigrationOutcome& out = outcomes_[p.id];
      out.failed = true;
      out.error = "guest not found";
      out.finished_at = model_.loop().now();
      failed_->inc();
      finish(p.id);
      continue;
    }
    if (p.req.dest != 0 && p.req.dest == src) {
      // Already where the request wants it: terminal no-op success.
      MigrationOutcome& out = outcomes_[p.id];
      out.source = out.dest = src;
      out.completed = true;
      out.started_at = out.finished_at = model_.loop().now();
      out.report.ok = true;
      out.report.start = out.report.end = model_.loop().now();
      completed_->inc();
      finish(p.id);
      continue;
    }
    if (conflicts_with_running(p.req.guest)) {
      keep.push_back(std::move(p));
      continue;
    }
    if (config_.slo_defer && p.slo_defers < config_.slo_defer_max) {
      const obs::SloEngine* slo = obs::SliHub::global().slo_engine();
      if (slo != nullptr && slo->burning(p.req.guest)) {
        // Tenant is eating its error budget right now: migrating it would
        // stack blackout on top of an active brownout. Defer (bounded).
        p.slo_defers++;
        slo_deferrals_++;
        slo_deferred_->inc();
        trace_instant(model_.loop(), "sched_slo_defer",
                      "\"guest\":" + std::to_string(p.req.guest) +
                          ",\"defers\":" + std::to_string(p.slo_defers));
        if (!defer_pump_scheduled_) {
          defer_pump_scheduled_ = true;
          model_.loop().schedule_in(config_.slo_defer_backoff, [this] {
            defer_pump_scheduled_ = false;
            schedule_pump();
          });
        }
        keep.push_back(std::move(p));
        continue;
      }
    }
    net::HostId dest = p.req.dest;
    if (dest == 0) {
      auto picked = policy_->pick(model_, p.req.guest, src);
      if (!picked.is_ok()) {
        // Nowhere to place right now (fleet draining/partitioned); keep
        // queued — a later pump may find a host again.
        keep.push_back(std::move(p));
        continue;
      }
      dest = picked.value();
    }
    if (!admission_ok(src, dest)) {
      keep.push_back(std::move(p));
      continue;
    }
    start_attempt(std::move(p), src, dest);
  }
  // Anything submitted while scanning lands behind the survivors; the next
  // pump re-sorts by priority anyway.
  keep.insert(keep.end(), std::make_move_iterator(pending_.begin()),
              std::make_move_iterator(pending_.end()));
  pending_ = std::move(keep);
  update_gauges();
}

void MigrationScheduler::start_attempt(Pending p, net::HostId src, net::HostId dest) {
  const sim::TimeNs now = model_.loop().now();
  MigrationOutcome& out = outcomes_[p.id];
  if (out.started_at == 0) {
    out.started_at = now;
    queue_wait_->observe(now - out.submitted_at);
  }
  out.source = src;
  out.dest = dest;

  Running r;
  r.id = p.id;
  r.req = p.req;
  r.source = src;
  r.dest = dest;
  r.attempt = p.attempt + 1;
  r.partners = model_.partners_of(p.req.guest);
  migrlib::MigrationOptions opts = config_.migration;
  if (p.req.mode.has_value()) {
    opts.mode = *p.req.mode;
  } else if (config_.postcopy_dirty_bps > 0) {
    const TrafficProfile* prof = model_.profile_of(p.req.guest);
    if (prof != nullptr && prof->dirty_bytes_per_sec() >= config_.postcopy_dirty_bps) {
      opts.mode = migrlib::MigrationMode::postcopy;
    }
  }
  // Auto-converge lands on the fleet model's generators; clears on finish.
  opts.throttle = [m = &model_, g = p.req.guest](double f) { m->set_throttle(g, f); };
  r.ctl = std::make_unique<migrlib::MigrationController>(model_.loop(), model_.fabric(),
                                                         model_.directory(), opts);
  auto& dest_proc = model_.world().add_process(
      "migr-dest-" + std::to_string(p.req.guest) + "-a" + std::to_string(r.attempt));
  const RequestId id = p.id;
  auto st = r.ctl->start(p.req.guest, dest, dest_proc, model_.app_of(p.req.guest),
                         [this, id](const MigrationReport& rep) { on_done(id, rep); });
  out.attempts = r.attempt;
  if (!st.is_ok()) {
    // Synchronous rejection (bad request / unsupported guest): terminal, no
    // retry — the condition is not transient.
    out.failed = true;
    out.error = st.to_string();
    out.finished_at = now;
    failed_->inc();
    finish(id);
    return;
  }
  started_->inc();
  running_per_source_[src]++;
  running_per_dest_[dest]++;
  if (const double demand = migration_demand_gbps(); demand > 0) {
    reserved_gbps_[src] += demand;
    reserved_gbps_[dest] += demand;
  }
  trace_instant(model_.loop(), "sched_start",
                "\"guest\":" + std::to_string(p.req.guest) + ",\"src\":" +
                    std::to_string(src) + ",\"dest\":" + std::to_string(dest) +
                    ",\"attempt\":" + std::to_string(r.attempt));
  running_.emplace(id, std::move(r));
}

void MigrationScheduler::on_done(RequestId id, const MigrationReport& rep) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  Running r = std::move(it->second);
  running_.erase(it);
  // The callback runs inside the controller; park the object until the next
  // loop tick before destroying it.
  retired_.push_back(std::move(r.ctl));

  auto dec = [](std::map<net::HostId, std::uint32_t>& m, net::HostId h) {
    auto e = m.find(h);
    if (e != m.end() && --e->second == 0) m.erase(e);
  };
  dec(running_per_source_, r.source);
  dec(running_per_dest_, r.dest);
  if (const double demand = migration_demand_gbps(); demand > 0) {
    reserved_gbps_[r.source] -= demand;
    reserved_gbps_[r.dest] -= demand;
  }

  MigrationOutcome& out = outcomes_[id];
  out.report = rep;
  out.source = r.source;
  out.dest = r.dest;
  out.attempts = r.attempt;

  if (rep.ok) {
    out.completed = true;
    out.finished_at = model_.loop().now();
    completed_->inc();
    finish(id);
  } else if (rep.aborted && r.attempt <= config_.max_retries) {
    // Rolled back cleanly; source still serving. Retry with backoff. A
    // policy-placed request gets a fresh destination pick on re-admission.
    aborted_->inc();
    retried_->inc();
    const sim::DurationNs backoff = config_.retry_backoff << (r.attempt - 1);
    MIGR_WARN() << "migration of guest " << r.req.guest << " aborted (attempt "
                << r.attempt << "); retrying in " << backoff << " ns";
    trace_instant(model_.loop(), "sched_retry",
                  "\"guest\":" + std::to_string(r.req.guest) +
                      ",\"attempt\":" + std::to_string(r.attempt));
    waiting_retry_++;
    Pending again{id, r.req, r.attempt};
    model_.loop().schedule_in(backoff, [this, again] {
      waiting_retry_--;
      pending_.push_back(again);
      schedule_pump();
      update_gauges();
    });
  } else {
    if (rep.aborted) aborted_->inc();
    out.failed = true;
    out.error = rep.error.empty() ? "migration failed" : rep.error;
    out.finished_at = model_.loop().now();
    failed_->inc();
    finish(id);
  }
  schedule_pump();
  update_gauges();
}

void MigrationScheduler::finish(RequestId id) {
  const MigrationOutcome& out = outcomes_.at(id);
  trace_instant(model_.loop(), out.completed ? "sched_done" : "sched_failed",
                "\"guest\":" + std::to_string(out.guest) +
                    ",\"attempts\":" + std::to_string(out.attempts));
  auto cb = request_cbs_.find(id);
  if (cb != request_cbs_.end()) {
    auto fn = std::move(cb->second);
    request_cbs_.erase(cb);
    if (fn) fn(out);
  }
  if (outcome_cb_) outcome_cb_(out);
}

void MigrationScheduler::update_gauges() {
  queued_gauge_->set(static_cast<double>(pending_.size()));
  running_gauge_->set(static_cast<double>(running_.size()));
}

// ---------------------------------------------------------------------------
// Rolling rebalance
// ---------------------------------------------------------------------------

std::vector<MigrationRequest> MigrationScheduler::plan_rebalance(
    std::uint32_t max_moves) const {
  std::vector<MigrationRequest> plan;
  const auto hosts = model_.placeable_hosts();
  if (hosts.size() < 2) return plan;

  std::map<net::HostId, std::vector<GuestId>> by_host;
  for (net::HostId h : hosts) by_host[h] = model_.guests_on(h);

  while (plan.size() < max_moves) {
    net::HostId max_h = 0, min_h = 0;
    for (net::HostId h : hosts) {
      if (max_h == 0 || by_host[h].size() > by_host[max_h].size()) max_h = h;
      if (min_h == 0 || by_host[h].size() < by_host[min_h].size()) min_h = h;
    }
    if (by_host[max_h].size() <= by_host[min_h].size() + 1) break;
    // Lowest guest id moves first: deterministic plans for a given model.
    const GuestId mover = by_host[max_h].front();
    by_host[max_h].erase(by_host[max_h].begin());
    by_host[min_h].push_back(mover);
    plan.push_back(MigrationRequest{mover, min_h, 0});
  }
  return plan;
}

std::vector<RequestId> MigrationScheduler::submit_rebalance(std::uint32_t max_moves,
                                                            int priority) {
  std::vector<RequestId> ids;
  for (MigrationRequest req : plan_rebalance(max_moves)) {
    req.priority = priority;
    ids.push_back(submit(req));
  }
  return ids;
}

}  // namespace migr::cluster
