// Scheduler-driven standby selection and epoch-cadence policy for
// continuous fault tolerance.
//
// Protecting a guest needs two cluster-level decisions the FtController
// itself is agnostic about:
//
//   * where the standby lives — chosen through the same PlacementPolicy
//     machinery migration destinations use (so maintenance mode, partitions
//     and anti-affinity all apply to standbys for free), additionally
//     excluding every host that holds one of the guest's messaging partners:
//     a standby sharing a failure domain with a partner would turn one host
//     loss into a correlated guest+partner loss.
//
//   * how often to checkpoint — derived from the guest's TrafficProfile: the
//     epoch interval targets a fixed byte budget per epoch
//     (interval = budget / dirty_bytes_per_sec, clamped), so write-heavy
//     guests checkpoint often (bounded loss window) and quiet guests stop
//     paying freeze tax for near-empty epochs. The same budget is forwarded
//     to FtOptions::epoch_byte_budget so the controller's sampled dirty-rate
//     estimator keeps adapting the cadence while protected.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/placement.hpp"
#include "ft/ft.hpp"

namespace migr::cluster {

struct FtPlanOptions {
  std::string policy = "least-loaded";  // standby placement policy
  std::uint64_t epoch_byte_budget = 256ull << 10;  // target bytes per epoch
  sim::DurationNs default_epoch_interval = sim::msec(5);  // idle/clean guests
  sim::DurationNs min_epoch_interval = sim::msec(2);
  sim::DurationNs max_epoch_interval = sim::msec(50);
};

/// One protection assignment: guest, its primary, the chosen standby, and
/// the initial checkpoint cadence.
struct FtPlanEntry {
  GuestId guest = 0;
  net::HostId primary = 0;
  net::HostId backup = 0;
  sim::DurationNs epoch_interval = 0;
};

class FtPlanner {
 public:
  explicit FtPlanner(ClusterModel& model, FtPlanOptions options = {});

  /// Pick a standby host and cadence for one placed guest. not_found when
  /// no eligible host remains (fleet draining/partitioned, or every host
  /// holds a partner and nothing else is placeable).
  common::Result<FtPlanEntry> plan(GuestId guest);

  /// Plan every placed guest (sorted by id; deterministic). Guests with no
  /// eligible standby are skipped.
  std::vector<FtPlanEntry> plan_all();

  /// Derived cadence for a profile: budget / dirty rate, clamped; the
  /// default interval for clean/idle guests.
  sim::DurationNs epoch_interval_for(const TrafficProfile& profile) const;

  /// Translate a plan entry into controller options layered on `base`
  /// (cadence, adaptive budget, clamps — everything else untouched).
  ft::FtOptions options_for(const FtPlanEntry& entry, ft::FtOptions base = {}) const;

 private:
  ClusterModel& model_;
  FtPlanOptions options_;
  std::unique_ptr<PlacementPolicy> policy_;
};

}  // namespace migr::cluster
