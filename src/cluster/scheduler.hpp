// MigrationScheduler: the fleet control plane on top of MigrationController.
//
// Accepts migration requests (single moves, the bulk submissions behind host
// drains and rolling rebalances), holds them in a priority queue, and starts
// them under admission control:
//
//  * fleet / per-source / per-destination concurrency caps,
//  * an optional per-host dirty-copy bandwidth budget (each running
//    migration reserves an estimated share of its source and destination
//    port; a start that would overdraw a port is deferred),
//  * guest-conflict exclusion — a guest with a migration in flight, or one
//    that is a messaging partner of an in-flight migration, is never
//    started concurrently (two partnered migrations would race each
//    other's wait-before-stop and partner-QP switch).
//
// Destinations come from a pluggable PlacementPolicy when the request does
// not pin one; policy-placed requests are re-placed on every retry, so an
// abort caused by a dead destination routes the retry elsewhere. Aborted
// migrations (MigrationReport.aborted, PR 2's rollback path) are re-queued
// with exponential backoff up to a retry budget, then surfaced as failed.
// Hard failures past the commit point are terminal immediately.
//
// Everything runs on the sim event loop; with a fixed seed the schedule is
// bit-for-bit reproducible. Queue depth, running count, and outcome
// counters are exported through obs ("cluster.sched.*").
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/placement.hpp"

namespace migr::cluster {

using migrlib::MigrationOptions;
using migrlib::MigrationReport;

using RequestId = std::uint64_t;

struct AdmissionLimits {
  std::uint32_t max_concurrent_fleet = 4;
  std::uint32_t max_concurrent_per_source = 2;
  std::uint32_t max_concurrent_per_dest = 2;
  // Per-host dirty-copy bandwidth budget. Each running migration reserves
  // per_migration_gbps on its source and destination port; a start that
  // would push either port past link_budget_gbps is deferred. 0 disables.
  double link_budget_gbps = 0.0;
  double per_migration_gbps = 0.0;
};

struct SchedulerConfig {
  AdmissionLimits limits;
  MigrationOptions migration;  // applied to every controller the queue spawns
  int max_retries = 3;         // re-submissions after an aborted attempt
  sim::DurationNs retry_backoff = sim::msec(10);  // doubles per retry
  std::string policy = "least-loaded";            // see placement.hpp

  // Mode policy: a guest whose profile dirties at least this many bytes/sec
  // is migrated post-copy (pre-copy would chase the dirty set). 0 disables;
  // an explicit MigrationRequest::mode always wins.
  double postcopy_dirty_bps = 0.0;

  // SLO-aware admission (DESIGN.md §12): when true and an SloEngine is
  // attached to the global SliHub, a request whose guest is currently
  // burning its error budget (active SLO alert) is deferred and re-examined
  // after slo_defer_backoff — at most slo_defer_max times, then admitted
  // anyway so a permanently-burning tenant cannot livelock its own drain.
  bool slo_defer = false;
  sim::DurationNs slo_defer_backoff = sim::msec(1);
  int slo_defer_max = 8;
};

struct MigrationRequest {
  GuestId guest = 0;
  net::HostId dest = 0;  // 0 = pick via the placement policy (per attempt)
  int priority = 0;      // higher runs first; ties in submission order
  // Pre/post-copy override for this request; unset = SchedulerConfig default
  // (postcopy_dirty_bps policy, else config_.migration.mode).
  std::optional<migrlib::MigrationMode> mode;
};

/// Lifecycle record of one request, kept from submit to terminal state.
struct MigrationOutcome {
  RequestId id = 0;
  GuestId guest = 0;
  net::HostId source = 0;  // source of the most recent attempt
  net::HostId dest = 0;    // destination of the most recent attempt
  int attempts = 0;        // controller starts (1 + retries used)
  bool completed = false;
  bool failed = false;
  std::string error;
  sim::TimeNs submitted_at = 0;
  sim::TimeNs started_at = 0;   // first attempt start (queue wait ends)
  sim::TimeNs finished_at = 0;  // terminal completion/failure
  MigrationReport report;       // most recent attempt's report

  bool terminal() const { return completed || failed; }
  sim::DurationNs queue_wait() const { return started_at - submitted_at; }
};

class MigrationScheduler {
 public:
  using OutcomeCb = std::function<void(const MigrationOutcome&)>;

  MigrationScheduler(ClusterModel& model, SchedulerConfig config = {});
  MigrationScheduler(const MigrationScheduler&) = delete;
  MigrationScheduler& operator=(const MigrationScheduler&) = delete;
  /// Destroy only when idle (or when the loop will never run again):
  /// in-flight controllers have events scheduled against them.
  ~MigrationScheduler();

  /// Enqueue a request. `done` (optional) fires once, at the terminal
  /// outcome; the fleet-wide callback (set_outcome_callback) also fires.
  RequestId submit(MigrationRequest req, OutcomeCb done = nullptr);

  /// Rolling rebalance: guests to move (lowest ids first) from the most- to
  /// the least-loaded placeable hosts until the guest-count spread is <= 1
  /// or `max_moves` is reached. plan_* is pure; submit_* enqueues the plan.
  std::vector<MigrationRequest> plan_rebalance(std::uint32_t max_moves) const;
  std::vector<RequestId> submit_rebalance(std::uint32_t max_moves, int priority = 0);

  void set_policy(std::unique_ptr<PlacementPolicy> policy);
  PlacementPolicy& policy() { return *policy_; }
  void set_outcome_callback(OutcomeCb cb) { outcome_cb_ = std::move(cb); }
  const SchedulerConfig& config() const noexcept { return config_; }

  std::size_t queued() const noexcept { return pending_.size(); }
  std::size_t running() const noexcept { return running_.size(); }
  /// Cumulative SLO-burn deferrals (config_.slo_defer policy).
  std::uint64_t slo_deferrals() const noexcept { return slo_deferrals_; }
  bool idle() const noexcept {
    return pending_.empty() && running_.empty() && waiting_retry_ == 0;
  }
  /// Pump the model's loop until idle; timeout when max_wait elapses first.
  common::Status run_until_idle(sim::DurationNs max_wait = sim::sec(300));

  /// Every submitted request's lifecycle record (terminal or not), by id.
  const std::map<RequestId, MigrationOutcome>& outcomes() const noexcept {
    return outcomes_;
  }
  const MigrationOutcome* outcome(RequestId id) const;

 private:
  struct Pending {
    RequestId id = 0;
    MigrationRequest req;
    int attempt = 0;     // completed controller starts so far
    int slo_defers = 0;  // SLO-burn deferrals so far (capped by slo_defer_max)
  };
  struct Running {
    RequestId id = 0;
    MigrationRequest req;
    net::HostId source = 0;
    net::HostId dest = 0;
    int attempt = 0;  // 1-based for this start
    std::vector<GuestId> partners;
    std::unique_ptr<migrlib::MigrationController> ctl;
  };

  void pump();
  void schedule_pump();
  bool conflicts_with_running(GuestId guest) const;
  bool admission_ok(net::HostId src, net::HostId dest) const;
  /// Port bandwidth one migration reserves: the per-migration estimate
  /// scaled by the transfer-stream fan-out (a 4-stream mux claims 4 shares
  /// of its ports), or streams x the explicit per-stream pacing rate.
  double migration_demand_gbps() const;
  void start_attempt(Pending p, net::HostId src, net::HostId dest);
  void on_done(RequestId id, const MigrationReport& rep);
  void finish(RequestId id);  // outcome already marked terminal
  void update_gauges();

  ClusterModel& model_;
  SchedulerConfig config_;
  std::unique_ptr<PlacementPolicy> policy_;

  RequestId next_id_ = 1;
  std::vector<Pending> pending_;  // kept sorted (priority desc, id asc) at pump
  std::map<RequestId, Running> running_;
  std::vector<std::unique_ptr<migrlib::MigrationController>> retired_;
  std::map<RequestId, MigrationOutcome> outcomes_;
  std::map<RequestId, OutcomeCb> request_cbs_;
  int waiting_retry_ = 0;
  bool pump_scheduled_ = false;
  bool defer_pump_scheduled_ = false;  // one delayed re-pump per defer wave
  std::uint64_t slo_deferrals_ = 0;
  OutcomeCb outcome_cb_;

  // Admission bookkeeping.
  std::map<net::HostId, std::uint32_t> running_per_source_;
  std::map<net::HostId, std::uint32_t> running_per_dest_;
  std::map<net::HostId, double> reserved_gbps_;

  // Cached instruments (resolved once; hot path is plain adds).
  obs::Gauge* queued_gauge_ = nullptr;
  obs::Gauge* running_gauge_ = nullptr;
  obs::Counter* submitted_ = nullptr;
  obs::Counter* started_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* aborted_ = nullptr;
  obs::Counter* retried_ = nullptr;
  obs::Counter* failed_ = nullptr;
  obs::Counter* slo_deferred_ = nullptr;
  obs::Histogram* queue_wait_ = nullptr;
};

}  // namespace migr::cluster
