#include "cluster/placement.hpp"

#include <algorithm>

namespace migr::cluster {

using common::Errc;

namespace {

common::Result<net::HostId> least_loaded_of(const ClusterModel& model,
                                            const std::vector<net::HostId>& candidates) {
  if (candidates.empty()) return common::err(Errc::not_found, "no placeable host");
  net::HostId best = 0;
  std::size_t best_count = 0;
  double best_weight = 0;
  for (net::HostId h : candidates) {
    const std::size_t count = model.guest_count(h);
    const double weight = model.traffic_weight(h);
    if (best == 0 || count < best_count ||
        (count == best_count && weight < best_weight)) {
      best = h;
      best_count = count;
      best_weight = weight;
    }
  }
  return best;
}

}  // namespace

common::Result<net::HostId> LeastLoadedPolicy::pick(const ClusterModel& model,
                                                    GuestId /*guest*/, net::HostId source) {
  return least_loaded_of(model, model.placeable_hosts(source));
}

common::Result<net::HostId> RoundRobinPolicy::pick(const ClusterModel& model,
                                                   GuestId /*guest*/, net::HostId source) {
  const auto hosts = model.placeable_hosts(source);
  if (hosts.empty()) return common::err(Errc::not_found, "no placeable host");
  return hosts[cursor_++ % hosts.size()];
}

common::Result<net::HostId> AntiAffinityPolicy::pick(const ClusterModel& model,
                                                     GuestId guest, net::HostId source) {
  const auto hosts = model.placeable_hosts(source);
  if (hosts.empty()) return common::err(Errc::not_found, "no placeable host");
  const auto partners = model.partners_of(guest);
  std::vector<net::HostId> clear;
  for (net::HostId h : hosts) {
    const bool holds_partner = std::any_of(partners.begin(), partners.end(), [&](GuestId p) {
      return model.host_of(p) == h;
    });
    if (!holds_partner) clear.push_back(h);
  }
  return least_loaded_of(model, clear.empty() ? hosts : clear);
}

std::unique_ptr<PlacementPolicy> make_policy(std::string_view name) {
  if (name == "round-robin") return std::make_unique<RoundRobinPolicy>();
  if (name == "anti-affinity") return std::make_unique<AntiAffinityPolicy>();
  return std::make_unique<LeastLoadedPolicy>();
}

}  // namespace migr::cluster
