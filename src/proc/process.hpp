// A simulated process: an address space plus application tasks on the event
// loop. Freezing a process (what CRIU does at stop-and-copy) parks its tasks
// — but deliberately does NOT stop the RNIC, which keeps executing posted
// work requests against the process's memory. That asymmetry is the core
// difficulty the paper's wait-before-stop exists to solve.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "proc/address_space.hpp"
#include "sim/event_loop.hpp"

namespace migr::proc {

using Pid = std::uint32_t;

class SimProcess {
 public:
  SimProcess(Pid pid, std::string name, sim::EventLoop& loop)
      : pid_(pid), name_(std::move(name)), loop_(loop) {}

  ~SimProcess() { kill(); }
  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;

  Pid pid() const noexcept { return pid_; }
  const std::string& name() const noexcept { return name_; }
  AddressSpace& mem() noexcept { return mem_; }
  const AddressSpace& mem() const noexcept { return mem_; }
  sim::EventLoop& loop() noexcept { return loop_; }

  bool frozen() const noexcept { return frozen_; }
  bool alive() const noexcept { return alive_; }

  /// Freeze application tasks (they stop firing until thawed). Idempotent.
  void freeze() noexcept { frozen_ = true; }
  void thaw() noexcept { frozen_ = false; }

  /// Terminate: all tasks cancelled, process marked dead.
  void kill() {
    alive_ = false;
    for (auto& h : tasks_) h.cancel();
    tasks_.clear();
  }

  /// Run `fn` every `period` ns while the process is alive and not frozen.
  /// This is how application "threads" (perftest loops, Hadoop workers, the
  /// MigrRDMA guest-lib threads) are modelled. Note: a guest-lib task that
  /// must keep running across the freeze (the wait-before-stop thread before
  /// the freeze point) uses spawn_daemon instead.
  sim::EventHandle spawn_poller(sim::DurationNs period, std::function<void()> fn) {
    auto handle = loop_.schedule_every(period, [this, fn = std::move(fn)]() {
      if (alive_ && !frozen_) fn();
    });
    tasks_.push_back(handle);
    return handle;
  }

  /// Like spawn_poller but keeps firing while frozen (still stops on kill).
  sim::EventHandle spawn_daemon(sim::DurationNs period, std::function<void()> fn) {
    auto handle = loop_.schedule_every(period, [this, fn = std::move(fn)]() {
      if (alive_) fn();
    });
    tasks_.push_back(handle);
    return handle;
  }

 private:
  Pid pid_;
  std::string name_;
  sim::EventLoop& loop_;
  AddressSpace mem_;
  bool frozen_ = false;
  bool alive_ = true;
  std::vector<sim::EventHandle> tasks_;
};

}  // namespace migr::proc
