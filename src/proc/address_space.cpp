#include "proc/address_space.hpp"

#include <algorithm>
#include <cstring>

namespace migr::proc {

using common::Errc;
using common::Result;
using common::Status;

Status AddressSpace::mmap_fixed(VirtAddr addr, std::uint64_t length, std::string tag) {
  if (length == 0 || addr != page_floor(addr)) {
    return common::err(Errc::invalid_argument, "mmap_fixed: unaligned or empty");
  }
  length = page_ceil(length);
  // Overlap check against neighbours in the ordered map.
  auto next = vmas_.lower_bound(addr);
  if (next != vmas_.end() && next->second.overlaps(addr, length)) {
    return common::err(Errc::already_exists, "mmap_fixed: overlaps existing vma");
  }
  if (next != vmas_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.overlaps(addr, length)) {
      return common::err(Errc::already_exists, "mmap_fixed: overlaps existing vma");
    }
  }
  vmas_.emplace(addr, Vma{addr, length, std::move(tag)});
  for (VirtAddr p = addr; p < addr + length; p += kPageSize) {
    pages_.emplace(p, std::make_shared<PhysPage>());
  }
  mapped_bytes_ += length;
  return Status::ok();
}

Result<VirtAddr> AddressSpace::mmap(std::uint64_t length, std::string tag) {
  length = page_ceil(length);
  const VirtAddr addr = mmap_base_;
  mmap_base_ += length + kPageSize;  // guard page gap
  MIGR_RETURN_IF_ERROR(mmap_fixed(addr, length, std::move(tag)));
  return addr;
}

Status AddressSpace::munmap(VirtAddr addr) {
  auto it = vmas_.find(addr);
  if (it == vmas_.end()) return common::err(Errc::not_found, "munmap: no vma at address");
  for (VirtAddr p = addr; p < it->second.end(); p += kPageSize) {
    pages_.erase(p);
    dirty_.erase(p);
    missing_.erase(p);
  }
  mapped_bytes_ -= it->second.length;
  vmas_.erase(it);
  return Status::ok();
}

Status AddressSpace::mremap(VirtAddr old_addr, VirtAddr new_addr) {
  auto it = vmas_.find(old_addr);
  if (it == vmas_.end()) return common::err(Errc::not_found, "mremap: no vma at address");
  if (new_addr != page_floor(new_addr)) {
    return common::err(Errc::invalid_argument, "mremap: unaligned target");
  }
  if (new_addr == old_addr) return Status::ok();
  Vma vma = it->second;

  // The target range must be free (ignoring the vma being moved, which we
  // conceptually remove first).
  for (auto& [start, other] : vmas_) {
    if (start == old_addr) continue;
    if (other.overlaps(new_addr, vma.length)) {
      return common::err(Errc::already_exists, "mremap: target overlaps existing vma");
    }
  }

  // Move physical pages and their dirty bits, preserving identity.
  std::vector<std::pair<VirtAddr, PhysPagePtr>> moved;
  moved.reserve(vma.length / kPageSize);
  for (VirtAddr off = 0; off < vma.length; off += kPageSize) {
    auto page_it = pages_.find(old_addr + off);
    moved.emplace_back(new_addr + off, page_it->second);
    const bool was_dirty = dirty_.erase(old_addr + off) > 0;
    pages_.erase(page_it);
    if (was_dirty) dirty_.emplace(new_addr + off, 1);
  }
  for (auto& [a, p] : moved) pages_.emplace(a, std::move(p));

  vmas_.erase(old_addr);
  vma.start = new_addr;
  vmas_.emplace(new_addr, vma);
  return Status::ok();
}

bool AddressSpace::mapped(VirtAddr addr, std::uint64_t length) const {
  return check_range_mapped(addr, length).is_ok();
}

const Vma* AddressSpace::find_vma(VirtAddr addr) const {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return nullptr;
  --it;
  return it->second.contains(addr, 1) ? &it->second : nullptr;
}

std::vector<Vma> AddressSpace::vmas() const {
  std::vector<Vma> out;
  out.reserve(vmas_.size());
  for (auto& [_, v] : vmas_) out.push_back(v);
  return out;
}

Status AddressSpace::check_range_mapped(VirtAddr addr, std::uint64_t len) const {
  // The range may span several adjacent VMAs; walk them.
  VirtAddr cur = addr;
  const VirtAddr end = addr + len;
  while (cur < end) {
    const Vma* vma = find_vma(cur);
    if (vma == nullptr) {
      return common::err(Errc::permission_denied, "unmapped address");
    }
    cur = vma->end();
  }
  return Status::ok();
}

Status AddressSpace::read(VirtAddr addr, std::span<std::uint8_t> out) const {
  MIGR_RETURN_IF_ERROR(check_range_mapped(addr, out.size()));
  std::size_t done = 0;
  while (done < out.size()) {
    const VirtAddr page = page_floor(addr + done);
    const std::uint64_t off = (addr + done) - page;
    const std::size_t n = std::min<std::size_t>(out.size() - done, kPageSize - off);
    if (!missing_.empty()) fault_in(page);
    auto it = pages_.find(page);
    std::memcpy(out.data() + done, it->second->data.data() + off, n);
    done += n;
  }
  return Status::ok();
}

Status AddressSpace::write(VirtAddr addr, std::span<const std::uint8_t> in) {
  MIGR_RETURN_IF_ERROR(check_range_mapped(addr, in.size()));
  std::size_t done = 0;
  while (done < in.size()) {
    const VirtAddr page = page_floor(addr + done);
    const std::uint64_t off = (addr + done) - page;
    const std::size_t n = std::min<std::size_t>(in.size() - done, kPageSize - off);
    if (!missing_.empty()) fault_in(page);
    auto it = pages_.find(page);
    std::memcpy(it->second->data.data() + off, in.data() + done, n);
    // try_emplace, not emplace: emplace allocates its node before the
    // duplicate check, which costs an alloc+free on every write to an
    // already-dirty page — the common case for steady-state DMA traffic.
    dirty_.try_emplace(page, 1);
    done += n;
  }
  return Status::ok();
}

void AddressSpace::fault_in(VirtAddr page) const {
  if (missing_.erase(page) == 0) return;
  if (fault_hook_) {
    auto hook = fault_hook_;  // the hook may replace/uninstall itself
    hook(page);
  }
}

PhysPagePtr AddressSpace::page_at(VirtAddr page_addr) const {
  auto it = pages_.find(page_floor(page_addr));
  return it == pages_.end() ? nullptr : it->second;
}

void AddressSpace::install_page(VirtAddr page_addr, PhysPagePtr page) {
  pages_[page_floor(page_addr)] = std::move(page);
}

std::vector<VirtAddr> AddressSpace::collect_dirty(bool clear) {
  std::vector<VirtAddr> out;
  out.reserve(dirty_.size());
  for (auto& [page, _] : dirty_) {
    // A page may have been unmapped after being dirtied.
    if (pages_.contains(page)) out.push_back(page);
  }
  std::sort(out.begin(), out.end());
  if (clear) dirty_.clear();
  return out;
}

void AddressSpace::mark_all_dirty() {
  for (auto& [page, _] : pages_) dirty_.emplace(page, 1);
}

}  // namespace migr::proc
