// Simulated process virtual memory.
//
// This substrate exists because MigrRDMA's hardest control-path problem
// (paper §3.2) is *where pages live during restore*: CRIU stages a restoring
// process's memory at a temporary virtual address and only remaps it to the
// application's original addresses in the final restore iteration, which
// breaks MR registration during pre-copy. To reproduce that, we need a real
// notion of VMAs, physical pages shared across remaps, page-granularity
// dirty tracking for iterative pre-copy, and NIC-initiated DMA that dirties
// pages behind the application's back.
//
// Physical pages are reference-counted blocks; mremap() moves the virtual
// mapping while preserving physical identity, exactly like the mremap(2)
// behaviour the paper relies on for on-chip memory and MR structures.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.hpp"

namespace migr::proc {

using VirtAddr = std::uint64_t;

constexpr std::uint64_t kPageSize = 4096;

inline VirtAddr page_floor(VirtAddr a) { return a & ~(kPageSize - 1); }
inline VirtAddr page_ceil(VirtAddr a) { return page_floor(a + kPageSize - 1); }

/// One physical page. Shared between virtual mappings across mremap.
struct PhysPage {
  std::array<std::uint8_t, kPageSize> data{};
};
using PhysPagePtr = std::shared_ptr<PhysPage>;

/// A virtual memory area: a contiguous, page-aligned mapping.
struct Vma {
  VirtAddr start = 0;
  std::uint64_t length = 0;  // bytes, page multiple
  std::string tag;           // who mapped it: "heap", "qp_buf", "criu_staging", ...

  VirtAddr end() const noexcept { return start + length; }
  bool contains(VirtAddr a, std::uint64_t len) const noexcept {
    return a >= start && a + len <= end();
  }
  bool overlaps(VirtAddr a, std::uint64_t len) const noexcept {
    return a < end() && a + len > start;
  }
};

class AddressSpace {
 public:
  /// Map [addr, addr+length) at a fixed address (MAP_FIXED semantics minus
  /// the clobbering: overlap with an existing VMA is an error).
  common::Status mmap_fixed(VirtAddr addr, std::uint64_t length, std::string tag);

  /// Map `length` bytes wherever there is room (bump allocation from a high
  /// "mmap region", like the kernel's mmap base).
  common::Result<VirtAddr> mmap(std::uint64_t length, std::string tag);

  /// Unmap an exact existing VMA (partial unmap unsupported, like early CRIU).
  common::Status munmap(VirtAddr addr);

  /// Move the VMA starting at old_addr to new_addr, preserving physical
  /// pages (and their dirty bits). Fails if the target range overlaps
  /// another VMA.
  common::Status mremap(VirtAddr old_addr, VirtAddr new_addr);

  bool mapped(VirtAddr addr, std::uint64_t length) const;
  const Vma* find_vma(VirtAddr addr) const;
  std::vector<Vma> vmas() const;

  /// Byte-granularity access; fails (permission_denied) on unmapped ranges.
  /// Writes mark the touched pages dirty — this is what both application
  /// stores and NIC DMA go through, so one-sided WRITEs from a remote peer
  /// dirty pages the pre-copy loop will pick up.
  common::Status read(VirtAddr addr, std::span<std::uint8_t> out) const;
  common::Status write(VirtAddr addr, std::span<const std::uint8_t> in);

  /// Direct physical-page access for checkpoint/restore machinery.
  PhysPagePtr page_at(VirtAddr page_addr) const;
  void install_page(VirtAddr page_addr, PhysPagePtr page);

  /// Dirty-page tracking for pre-copy. Returns addresses of dirty pages;
  /// `clear` resets the bits (soft-dirty style).
  std::vector<VirtAddr> collect_dirty(bool clear = true);
  void mark_all_dirty();
  std::size_t dirty_count() const noexcept { return dirty_.size(); }

  /// Post-copy missing pages: a page marked missing has a phys page (zeroed
  /// or stale) but its authoritative contents still live on the migration
  /// source. Any read/write touching it first invokes the fault hook — the
  /// userfaultfd analogue — which is expected to fill the page (page_at /
  /// install_page, so the fill itself does not dirty or re-fault). The mark
  /// is cleared *before* the hook runs, so a hook that triggers nested
  /// access to the same page cannot recurse.
  using FaultHook = std::function<void(VirtAddr page)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  void mark_missing(VirtAddr page_addr) { missing_.insert(page_floor(page_addr)); }
  bool clear_missing(VirtAddr page_addr) {
    return missing_.erase(page_floor(page_addr)) > 0;
  }
  bool missing(VirtAddr page_addr) const {
    return missing_.contains(page_floor(page_addr));
  }
  std::size_t missing_count() const noexcept { return missing_.size(); }

  std::uint64_t mapped_bytes() const noexcept { return mapped_bytes_; }

  /// Bump-allocation cursor of mmap(). Checkpointed/restored by CRIU so a
  /// migrated process keeps allocating from where the source left off.
  VirtAddr mmap_cursor() const noexcept { return mmap_base_; }
  void set_mmap_cursor(VirtAddr v) noexcept { mmap_base_ = v; }

 private:
  common::Status check_range_mapped(VirtAddr addr, std::uint64_t len) const;
  void fault_in(VirtAddr page) const;

  std::map<VirtAddr, Vma> vmas_;  // keyed by start
  std::unordered_map<VirtAddr, PhysPagePtr> pages_;  // keyed by page addr
  std::unordered_map<VirtAddr, char> dirty_;  // page addr -> present (set)
  // mutable: a read() of a missing page is logically const for the process
  // but must fill the page (demand paging), like a real MMU fault.
  mutable std::unordered_set<VirtAddr> missing_;
  FaultHook fault_hook_;
  VirtAddr mmap_base_ = 0x7f00'0000'0000ULL;
  std::uint64_t mapped_bytes_ = 0;
};

}  // namespace migr::proc
