#include "fault/fault.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace migr::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::loss_burst: return "loss_burst";
    case FaultKind::reorder_window: return "reorder_window";
    case FaultKind::partition: return "partition";
    case FaultKind::ctrl_delay: return "ctrl_delay";
  }
  return "?";
}

FaultPlan& FaultPlan::baseline(double loss_prob, double reorder_prob,
                               sim::DurationNs reorder_delay) {
  base_.data_loss_prob = loss_prob;
  base_.reorder_prob = reorder_prob;
  base_.reorder_delay = reorder_delay;
  return *this;
}

FaultPlan& FaultPlan::ctrl_loss(double prob) {
  base_.ctrl_loss_prob = prob;
  return *this;
}

FaultPlan& FaultPlan::loss_burst(sim::TimeNs at, sim::DurationNs duration, double prob) {
  FaultEvent ev;
  ev.kind = FaultKind::loss_burst;
  ev.at = at;
  ev.duration = duration;
  ev.probability = prob;
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::reorder_window(sim::TimeNs at, sim::DurationNs duration, double prob,
                                     sim::DurationNs max_delay) {
  FaultEvent ev;
  ev.kind = FaultKind::reorder_window;
  ev.at = at;
  ev.duration = duration;
  ev.probability = prob;
  ev.delay = max_delay;
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::partition(sim::TimeNs at, sim::DurationNs duration, net::HostId host) {
  FaultEvent ev;
  ev.kind = FaultKind::partition;
  ev.at = at;
  ev.duration = duration;
  ev.host = host;
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::ctrl_delay(sim::TimeNs at, sim::DurationNs duration,
                                 sim::DurationNs delay) {
  FaultEvent ev;
  ev.kind = FaultKind::ctrl_delay;
  ev.at = at;
  ev.duration = duration;
  ev.delay = delay;
  events_.push_back(ev);
  return *this;
}

FaultPlan FaultPlan::random_bursts(std::uint64_t seed, std::uint32_t bursts,
                                   sim::TimeNs window_start, sim::TimeNs window_end,
                                   sim::DurationNs burst_len, double prob) {
  FaultPlan plan;
  common::Rng rng(seed);
  const std::uint64_t span =
      window_end > window_start ? static_cast<std::uint64_t>(window_end - window_start) : 1;
  for (std::uint32_t i = 0; i < bursts; ++i) {
    const sim::TimeNs at = window_start + static_cast<sim::TimeNs>(rng.below(span));
    plan.loss_burst(at, burst_len, prob);
  }
  return plan;
}

ScenarioRunner::ScenarioRunner(sim::EventLoop& loop, net::Fabric& fabric)
    : loop_(loop), fabric_(fabric) {
  auto& reg = obs::Registry::global();
  events_applied_ = &reg.counter("fault.events_applied");
  events_healed_ = &reg.counter("fault.events_healed");
  active_gauge_ = &reg.gauge("fault.active_windows");
}

ScenarioRunner::~ScenarioRunner() {
  (void)obs::Tracer::global().flush();
}

void ScenarioRunner::run(const FaultPlan& plan) {
  base_ = plan.base();
  recompute();
  const sim::TimeNs now = loop_.now();
  for (const FaultEvent& ev : plan.events()) {
    const sim::TimeNs at = now + ev.at;
    loop_.schedule_at(at, [this, ev] { apply(ev); });
    if (ev.duration > 0) {
      loop_.schedule_at(at + ev.duration, [this, ev] { heal(ev); });
    }
  }
}

void ScenarioRunner::apply(const FaultEvent& ev) {
  MIGR_DEBUG() << "fault apply " << to_string(ev.kind) << " at t=" << loop_.now();
  switch (ev.kind) {
    case FaultKind::loss_burst:
      active_loss_[ev.probability]++;
      break;
    case FaultKind::reorder_window:
      active_reorder_[{ev.probability, ev.delay}]++;
      break;
    case FaultKind::partition:
      if (partition_refs_[ev.host]++ == 0) fabric_.set_partitioned(ev.host, true);
      break;
    case FaultKind::ctrl_delay:
      active_ctrl_delay_[ev.delay]++;
      break;
  }
  applied_++;
  events_applied_->inc();
  active_gauge_->add(1);
  recompute();
}

void ScenarioRunner::heal(const FaultEvent& ev) {
  MIGR_DEBUG() << "fault heal " << to_string(ev.kind) << " at t=" << loop_.now();
  auto drop_one = [](auto& m, const auto& key) {
    auto it = m.find(key);
    if (it == m.end()) return;
    if (--it->second == 0) m.erase(it);
  };
  switch (ev.kind) {
    case FaultKind::loss_burst:
      drop_one(active_loss_, ev.probability);
      break;
    case FaultKind::reorder_window:
      drop_one(active_reorder_, std::pair<double, sim::DurationNs>{ev.probability, ev.delay});
      break;
    case FaultKind::partition: {
      auto it = partition_refs_.find(ev.host);
      if (it != partition_refs_.end() && --it->second == 0) {
        partition_refs_.erase(it);
        fabric_.set_partitioned(ev.host, false);
      }
      break;
    }
    case FaultKind::ctrl_delay:
      drop_one(active_ctrl_delay_, ev.delay);
      break;
  }
  healed_++;
  events_healed_->inc();
  active_gauge_->add(-1);
  recompute();
}

void ScenarioRunner::recompute() {
  net::Faults f = base_;
  if (!active_loss_.empty()) {
    f.data_loss_prob = std::max(f.data_loss_prob, active_loss_.rbegin()->first);
  }
  if (!active_reorder_.empty()) {
    const auto& [prob, delay] = active_reorder_.rbegin()->first;
    f.reorder_prob = std::max(f.reorder_prob, prob);
    f.reorder_delay = std::max(f.reorder_delay, delay);
  }
  if (!active_ctrl_delay_.empty()) {
    f.ctrl_delay = std::max(f.ctrl_delay, active_ctrl_delay_.rbegin()->first);
  }
  fabric_.set_faults(f);
}

bool ScenarioRunner::any_active() const noexcept {
  return !active_loss_.empty() || !active_reorder_.empty() || !active_ctrl_delay_.empty() ||
         !partition_refs_.empty();
}

}  // namespace migr::fault
