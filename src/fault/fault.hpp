// Deterministic fault injection for the simulated fabric.
//
// A FaultPlan is a list of timed fault events — loss bursts, reordering
// windows, host partitions and ctrl-plane delays — built either by hand
// (precise sim times for regression scenarios) or generated from a seed
// (randomized-but-reproducible adversarial schedules). A ScenarioRunner
// binds a plan to a Fabric: it schedules one apply and (for bounded
// events) one heal callback per event on the event loop, and composes
// overlapping events into the single effective net::Faults knob set.
//
// Composition rules when windows overlap:
//  * loss / reorder probability and ctrl delay: the maximum of the plan's
//    baseline and every active window (faults don't cancel each other),
//  * partitions: a host stays partitioned while any covering window is
//    active (per-host reference count).
//
// Everything is driven by the sim clock and the fabric's own seeded RNG,
// so a (plan, seed) pair replays identically — the property tests and the
// blackout-vs-loss bench depend on that.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "sim/event_loop.hpp"

namespace migr::fault {

enum class FaultKind : std::uint8_t {
  loss_burst,      // i.i.d. data-plane drop probability for a window
  reorder_window,  // probabilistic extra delivery delay for a window
  partition,       // a host loses all traffic both ways
  ctrl_delay,      // added one-way latency on the ctrl plane
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::loss_burst;
  sim::TimeNs at = 0;           // absolute sim time the fault switches on
  sim::DurationNs duration = 0; // 0 = never healed (lasts to end of run)
  double probability = 0.0;     // loss_burst / reorder_window
  sim::DurationNs delay = 0;    // reorder_window: max extra delay; ctrl_delay: latency
  net::HostId host = 0;         // partition target
};

class FaultPlan {
 public:
  /// Steady-state faults active from t=0 (the floor the windows raise).
  FaultPlan& baseline(double loss_prob, double reorder_prob = 0.0,
                      sim::DurationNs reorder_delay = sim::usec(20));

  /// Steady-state ctrl-plane message loss (whole ctrl messages vanish).
  /// Separate from baseline(): data-plane loss exercises the RDMA transport's
  /// recovery, ctrl loss exercises the migration protocol's own retry /
  /// backoff machinery (image chunk re-sends, WBS re-tries).
  FaultPlan& ctrl_loss(double prob);

  FaultPlan& loss_burst(sim::TimeNs at, sim::DurationNs duration, double prob);
  FaultPlan& reorder_window(sim::TimeNs at, sim::DurationNs duration, double prob,
                            sim::DurationNs max_delay = sim::usec(20));
  FaultPlan& partition(sim::TimeNs at, sim::DurationNs duration, net::HostId host);
  FaultPlan& ctrl_delay(sim::TimeNs at, sim::DurationNs duration, sim::DurationNs delay);

  /// Seeded generator: `bursts` loss bursts of `burst_len` at uniform times
  /// in [window_start, window_end), each with drop probability `prob`.
  /// Identical (seed, parameters) produce the identical plan.
  static FaultPlan random_bursts(std::uint64_t seed, std::uint32_t bursts,
                                 sim::TimeNs window_start, sim::TimeNs window_end,
                                 sim::DurationNs burst_len, double prob);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  const net::Faults& base() const noexcept { return base_; }

 private:
  net::Faults base_;
  std::vector<FaultEvent> events_;
};

class ScenarioRunner {
 public:
  ScenarioRunner(sim::EventLoop& loop, net::Fabric& fabric);
  /// Flushes the global tracer (if a flush path is set): a scenario torn
  /// down early — test failure, exception, operator abort — still leaves a
  /// complete, loadable Chrome trace behind.
  ~ScenarioRunner();
  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Schedule every event of `plan` on the loop (relative to now) and
  /// install the plan's baseline faults immediately. May be called once
  /// per runner.
  void run(const FaultPlan& plan);

  std::uint64_t applied() const noexcept { return applied_; }
  std::uint64_t healed() const noexcept { return healed_; }
  /// Any bounded window currently active (partitions, bursts, ...).
  bool any_active() const noexcept;

 private:
  void apply(const FaultEvent& ev);
  void heal(const FaultEvent& ev);
  /// Recompute the fabric's effective Faults from baseline + active windows.
  void recompute();

  sim::EventLoop& loop_;
  net::Fabric& fabric_;
  net::Faults base_;

  // Active overlapping windows (multiset semantics via sorted maps:
  // value -> active count), so heal removes exactly one instance.
  std::map<double, std::uint32_t> active_loss_;
  std::map<std::pair<double, sim::DurationNs>, std::uint32_t> active_reorder_;
  std::map<sim::DurationNs, std::uint32_t> active_ctrl_delay_;
  std::map<net::HostId, std::uint32_t> partition_refs_;

  std::uint64_t applied_ = 0;
  std::uint64_t healed_ = 0;

  obs::Counter* events_applied_ = nullptr;
  obs::Counter* events_healed_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
};

}  // namespace migr::fault
