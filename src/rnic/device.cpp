// Control path: context/resource lifecycle. The transport engine (packet
// processing, transmit scheduling) lives in transport.cpp.
#include "rnic/device.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace migr::rnic {

using common::Errc;
using common::Result;
using common::Status;

namespace {
constexpr std::uint32_t kMaxSge = 16;
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

Device::Device(sim::EventLoop& loop, net::Fabric& fabric, net::HostId host,
               DeviceConfig config, std::uint64_t seed)
    : loop_(loop),
      fabric_(fabric),
      host_(host),
      config_(config),
      rng_(seed ^ (static_cast<std::uint64_t>(host) << 32)),
      dm_free_(config.device_memory_bytes) {
  if (!fabric_.attached(host)) {
    auto st = fabric_.attach_host(host);
    (void)st;  // already attached is fine: several sim objects share a host
  }
  // QPN space starts at a device-specific pseudo-random base so that two
  // devices essentially never hand out the same numbers — the property that
  // forces MigrRDMA to translate QPNs after migration.
  next_qpn_ = static_cast<Qpn>(rng_.range(0x0010'00, 0x7FFF'FF)) & kQpnMask;
  qpn_base_ = next_qpn_;
  key_salt_ = static_cast<std::uint32_t>(rng_.next());
  fabric_.set_data_handler(host_, [this](net::Packet&& p) { handle_packet(std::move(p)); });
  egress_clock_ = fabric_.egress_clock(host_);

  auto& reg = obs::Registry::global();
  const obs::Labels labels{{"host", std::to_string(host_)}};
  metrics_.wqe_posted = &reg.counter("rnic.wqe_posted", labels);
  metrics_.recv_posted = &reg.counter("rnic.recv_posted", labels);
  metrics_.cqe_delivered = &reg.counter("rnic.cqe_delivered", labels);
  metrics_.retransmits = &reg.counter("rnic.retransmits", labels);
  metrics_.nak_tx = &reg.counter("rnic.nak_tx", labels);
  metrics_.out_of_sequence = &reg.counter("rnic.out_of_sequence", labels);
  metrics_.qp_to_init = &reg.counter("rnic.qp_transitions", {{"host", std::to_string(host_)}, {"to", "init"}});
  metrics_.qp_to_rtr = &reg.counter("rnic.qp_transitions", {{"host", std::to_string(host_)}, {"to", "rtr"}});
  metrics_.qp_to_rts = &reg.counter("rnic.qp_transitions", {{"host", std::to_string(host_)}, {"to", "rts"}});
  metrics_.qp_to_err = &reg.counter("rnic.qp_transitions", {{"host", std::to_string(host_)}, {"to", "err"}});
  metrics_.qp_to_reset = &reg.counter("rnic.qp_transitions", {{"host", std::to_string(host_)}, {"to", "reset"}});
  // Ethtool-style port counters surface through the same registry snapshot.
  port_source_id_ = reg.register_source("rnic.port", labels, [this] {
    return std::vector<std::pair<std::string, double>>{
        {"tx_bytes", static_cast<double>(counters_.tx_bytes)},
        {"rx_bytes", static_cast<double>(counters_.rx_bytes)},
        {"tx_packets", static_cast<double>(counters_.tx_packets)},
        {"rx_packets", static_cast<double>(counters_.rx_packets)},
        {"out_of_sequence", static_cast<double>(counters_.out_of_sequence)},
        {"retransmits", static_cast<double>(counters_.retransmits)},
    };
  });
}

Device::~Device() {
  if (port_source_id_ != 0) obs::Registry::global().unregister_source(port_source_id_);
}

void Device::note_qp_transition(Qpn qpn, QpState to) {
  obs::Counter* c = nullptr;
  const char* name = nullptr;
  switch (to) {
    case QpState::init: c = metrics_.qp_to_init; name = "qp.init"; break;
    case QpState::rtr: c = metrics_.qp_to_rtr; name = "qp.rtr"; break;
    case QpState::rts: c = metrics_.qp_to_rts; name = "qp.rts"; break;
    case QpState::err: c = metrics_.qp_to_err; name = "qp.err"; break;
    case QpState::reset: c = metrics_.qp_to_reset; name = "qp.reset"; break;
    default: return;
  }
  c->inc();
  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.instant(loop_.now(), name, "rnic",
                   "\"qpn\":" + std::to_string(qpn) + ",\"host\":" + std::to_string(host_));
  }
}

Result<Context*> Device::open(proc::SimProcess& proc) {
  auto ctx = std::make_unique<Context>(*this, proc);
  ctx->charge(costs().open_device);
  contexts_.push_back(std::move(ctx));
  return contexts_.back().get();
}

void Device::close(Context* ctx) {
  // Destroy all QP routes / rkeys owned by the context, then drop it.
  for (auto& [qpn, qp] : ctx->qps_) {
    (void)qp;
    qp_routes_.erase(qpn);
  }
  std::erase_if(rkeys_, [ctx](const auto& kv) { return kv.second.ctx == ctx; });
  std::erase_if(contexts_, [ctx](const auto& up) { return up.get() == ctx; });
}

Qpn Device::alloc_qpn() {
  for (;;) {
    const Qpn q = next_qpn_;
    next_qpn_ = (next_qpn_ + 1) & kQpnMask;
    if (next_qpn_ == 0) next_qpn_ = 1;
    if (q != 0 && !qp_routes_.contains(q)) return q;
  }
}

std::uint32_t Device::alloc_key() {
  // Non-dense, NIC-flavoured key layout: index in the high bits, a salted
  // byte in the low bits (mlx5 keys look like this). Guarantees keys from
  // different devices differ and are not small dense integers — which is
  // precisely why MigrRDMA introduces its own dense *virtual* keys (§3.3).
  const std::uint32_t index = next_key_index_++;
  return (index << 8) | ((key_salt_ ^ (index * 0x9E37u)) & 0xFF);
}

void Device::add_ctrl_pressure(sim::DurationNs duration) {
  ctrl_pressure_until_ = std::max(ctrl_pressure_until_, loop_.now()) + duration;
}

const Device::RkeyTarget* Device::find_rkey(Rkey rkey) const {
  auto it = rkeys_.find(rkey);
  return it == rkeys_.end() ? nullptr : &it->second;
}

Result<MigrosQpState> Device::migros_extract_qp(Qpn qpn) {
  if (!config_.migration_aware_hw) {
    return common::err(Errc::failed_precondition,
                       "commodity RNIC: QP transport state is not extractable");
  }
  auto it = qp_routes_.find(qpn);
  if (it == qp_routes_.end()) return common::err(Errc::not_found, "no such QP");
  const Qp& qp = *it->second;
  return MigrosQpState{qpn, qp.next_psn, qp.acked_psn, qp.expected_psn, qp.sq.size()};
}

Status Device::migros_inject_qp(Qpn qpn, const MigrosQpState& st) {
  if (!config_.migration_aware_hw) {
    return common::err(Errc::failed_precondition,
                       "commodity RNIC: QP transport state is not injectable");
  }
  auto it = qp_routes_.find(qpn);
  if (it == qp_routes_.end()) return common::err(Errc::not_found, "no such QP");
  Qp& qp = *it->second;
  qp.next_psn = st.next_psn;
  qp.acked_psn = st.acked_psn;
  qp.expected_psn = st.expected_psn;
  // The NAK-suppression sentinel belongs to the old PSN space; a stale
  // value equal to the injected expected_psn would swallow the first NAK
  // of the QP's new life.
  qp.last_nak_psn = static_cast<Psn>(-1);
  return Status::ok();
}

std::vector<Qpn> Device::audit_stuck_qps(sim::DurationNs stale_after) const {
  std::vector<Qpn> stuck;
  for (const auto& [qpn, qp] : qp_routes_) {
    if (qp->state != QpState::rts || qp->type != QpType::rc) continue;
    if (qp->sq.empty() || !qp->sq.front().psn_assigned) continue;
    if (loop_.now() - qp->last_progress >= stale_after) stuck.push_back(qpn);
  }
  // A hit is an anomaly the property tests treat as fatal: capture the wire
  // history around it while it is still in the ring.
  auto& rec = obs::FlightRecorder::global();
  if (!stuck.empty() && rec.enabled()) {
    std::string detail = "\"host\":" + std::to_string(host_) + ",\"qpns\":[";
    for (std::size_t i = 0; i < stuck.size(); ++i) {
      if (i != 0) detail += ',';
      detail += std::to_string(stuck[i]);
    }
    detail += ']';
    rec.trigger_dump(loop_.now(), "stuck_qps", detail);
  }
  return stuck;
}

// ---------------------------------------------------------------------------
// Context: control path
// ---------------------------------------------------------------------------

Context::Context(Device& dev, proc::SimProcess& proc) : dev_(dev), proc_(proc) {}

Context::~Context() = default;

void Context::charge(sim::DurationNs cost) {
  ctrl_cost_ += cost;
  // Control-path commands occupy the NIC's command interface and interfere
  // with data-path processing (Kong et al., observed as brownout in Fig. 5).
  dev_.add_ctrl_pressure(cost);
}

Result<Handle> Context::alloc_pd() {
  charge(dev_.costs().alloc_pd);
  const Handle h = next_handle_++;
  pds_.emplace(h, Pd{h});
  return h;
}

Status Context::dealloc_pd(Handle pd) {
  if (pds_.erase(pd) == 0) return common::err(Errc::not_found, "no such PD");
  return Status::ok();
}

Result<Mr> Context::reg_mr(Handle pd, proc::VirtAddr addr, std::uint64_t length,
                           std::uint32_t access) {
  if (!pds_.contains(pd)) return common::err(Errc::not_found, "no such PD");
  if (length == 0) return common::err(Errc::invalid_argument, "zero-length MR");
  // The NIC pins the pages at registration time: the whole range must be
  // mapped in the owning process — the exact constraint that breaks MR
  // restoration while CRIU holds the memory at a temporary address (§3.2).
  if (!proc_.mem().mapped(addr, length)) {
    return common::err(Errc::permission_denied, "reg_mr: range not mapped in process");
  }
  if ((access & (kAccessRemoteWrite | kAccessRemoteAtomic)) != 0 &&
      (access & kAccessLocalWrite) == 0) {
    return common::err(Errc::invalid_argument,
                       "remote write/atomic requires local write (spec)");
  }
  charge(dev_.costs().reg_mr(length));
  Mr mr;
  mr.handle = next_handle_++;
  mr.pd = pd;
  mr.addr = addr;
  mr.length = length;
  mr.access = access;
  mr.lkey = dev_.alloc_key();
  mr.rkey = dev_.alloc_key();
  mrs_.emplace(mr.lkey, mr);
  dev_.rkeys_[mr.rkey] = Device::RkeyTarget{this, addr, length, access, pd};
  return mr;
}

Status Context::dereg_mr(Lkey lkey) {
  auto it = mrs_.find(lkey);
  if (it == mrs_.end()) return common::err(Errc::not_found, "no such MR");
  charge(dev_.costs().dereg_mr);
  dev_.rkeys_.erase(it->second.rkey);
  mrs_.erase(it);
  return Status::ok();
}

Result<Handle> Context::create_comp_channel() {
  const Handle h = next_handle_++;
  channels_.emplace(h, CompChannel{h});
  return h;
}

Status Context::destroy_comp_channel(Handle ch) {
  if (channels_.erase(ch) == 0) return common::err(Errc::not_found, "no such channel");
  return Status::ok();
}

Result<Handle> Context::create_cq(std::uint32_t capacity, Handle channel) {
  if (capacity == 0 || capacity > dev_.config().max_cqe) {
    return common::err(Errc::invalid_argument, "bad CQ capacity");
  }
  if (channel != 0 && !channels_.contains(channel)) {
    return common::err(Errc::not_found, "no such completion channel");
  }
  charge(dev_.costs().create_cq);
  const Handle h = next_handle_++;
  auto cq = std::make_unique<Cq>(capacity);
  cq->handle = h;
  cq->channel = channel;
  cqs_.emplace(h, std::move(cq));
  return h;
}

Status Context::destroy_cq(Handle cq) {
  auto it = cqs_.find(cq);
  if (it == cqs_.end()) return common::err(Errc::not_found, "no such CQ");
  for (auto& [qpn, qp] : qps_) {
    (void)qpn;
    if (qp->send_cq == cq || qp->recv_cq == cq) {
      return common::err(Errc::failed_precondition, "CQ still used by a QP");
    }
  }
  cqs_.erase(it);
  return Status::ok();
}

Result<Handle> Context::create_srq(Handle pd, std::uint32_t capacity) {
  if (!pds_.contains(pd)) return common::err(Errc::not_found, "no such PD");
  if (capacity == 0) return common::err(Errc::invalid_argument, "bad SRQ capacity");
  charge(dev_.costs().create_srq);
  const Handle h = next_handle_++;
  auto srq = std::make_unique<Srq>(capacity);
  srq->handle = h;
  srq->pd = pd;
  srqs_.emplace(h, std::move(srq));
  return h;
}

Status Context::destroy_srq(Handle srq) {
  auto it = srqs_.find(srq);
  if (it == srqs_.end()) return common::err(Errc::not_found, "no such SRQ");
  for (auto& [qpn, qp] : qps_) {
    (void)qpn;
    if (qp->srq == srq) {
      return common::err(Errc::failed_precondition, "SRQ still used by a QP");
    }
  }
  srqs_.erase(it);
  return Status::ok();
}

Result<Qpn> Context::create_qp(const QpInitAttr& attr) {
  if (!pds_.contains(attr.pd)) return common::err(Errc::not_found, "no such PD");
  if (!cqs_.contains(attr.send_cq) || !cqs_.contains(attr.recv_cq)) {
    return common::err(Errc::not_found, "no such CQ");
  }
  if (attr.srq != 0 && !srqs_.contains(attr.srq)) {
    return common::err(Errc::not_found, "no such SRQ");
  }
  if (dev_.qp_count() >= dev_.config().max_qp) {
    return common::err(Errc::resource_exhausted, "device out of QPs");
  }
  if (attr.caps.max_send_wr == 0 || attr.caps.max_send_wr > dev_.config().max_qp_wr ||
      attr.caps.max_recv_wr > dev_.config().max_qp_wr) {
    return common::err(Errc::invalid_argument, "bad QP caps");
  }
  charge(dev_.costs().create_qp);
  auto qp = std::make_unique<Qp>(attr.caps);
  qp->qpn = dev_.alloc_qpn();
  qp->type = attr.type;
  qp->state = QpState::reset;
  qp->pd = attr.pd;
  qp->send_cq = attr.send_cq;
  qp->recv_cq = attr.recv_cq;
  qp->srq = attr.srq;
  qp->ctx = this;
  const Qpn qpn = qp->qpn;
  dev_.qp_routes_[qpn] = qp.get();
  qps_.emplace(qpn, std::move(qp));
  return qpn;
}

Status Context::destroy_qp(Qpn qpn) {
  auto it = qps_.find(qpn);
  if (it == qps_.end()) return common::err(Errc::not_found, "no such QP");
  charge(dev_.costs().destroy_qp);
  dev_.qp_routes_.erase(qpn);
  qps_.erase(it);
  return Status::ok();
}

Status Context::modify_qp_init(Qpn qpn) {
  Qp* qp = find_qp_mut(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  if (qp->state != QpState::reset) {
    return common::err(Errc::failed_precondition, "RESET->INIT requires RESET state");
  }
  charge(dev_.costs().modify_qp);
  qp->state = QpState::init;
  dev_.note_qp_transition(qpn, QpState::init);
  return Status::ok();
}

Status Context::modify_qp_rtr(Qpn qpn, net::HostId remote_host, Qpn remote_qpn,
                              Psn expected_psn) {
  Qp* qp = find_qp_mut(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  if (qp->state != QpState::init) {
    return common::err(Errc::failed_precondition, "INIT->RTR requires INIT state");
  }
  charge(dev_.costs().modify_qp);
  if (qp->type == QpType::rc) {
    qp->remote_host = remote_host;
    qp->remote_qpn = remote_qpn;
    qp->expected_psn = expected_psn;
    // Resolve the fabric fast-path handle once per connection; every packet
    // of this QP's lifetime sends through it without hash lookups.
    qp->route = dev_.fabric().route(dev_.host(), remote_host);
    // Fresh PSN space (possibly reusing PSNs from a pre-migration life):
    // drop the NAK-suppression sentinel or the first gap at a reused PSN
    // would be silently swallowed.
    qp->last_nak_psn = static_cast<Psn>(-1);
  }
  qp->state = QpState::rtr;
  dev_.note_qp_transition(qpn, QpState::rtr);
  return Status::ok();
}

Status Context::modify_qp_rts(Qpn qpn, Psn initial_psn) {
  Qp* qp = find_qp_mut(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  if (qp->state != QpState::rtr) {
    return common::err(Errc::failed_precondition, "RTR->RTS requires RTR state");
  }
  charge(dev_.costs().modify_qp);
  qp->next_psn = initial_psn;
  qp->acked_psn = initial_psn;
  qp->state = QpState::rts;
  dev_.note_qp_transition(qpn, QpState::rts);
  return Status::ok();
}

Status Context::modify_qp_err(Qpn qpn) {
  Qp* qp = find_qp_mut(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  charge(dev_.costs().modify_qp);
  dev_.flush_qp(*qp, /*notify=*/false);
  return Status::ok();
}

Status Context::modify_qp_reset(Qpn qpn) {
  Qp* qp = find_qp_mut(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  // Moving a live QP back to RESET aborts everything silently — the paper
  // notes this path is "as slow as setting up new connections"; callers
  // model that cost via CostModel::modify_qp x3.
  charge(dev_.costs().modify_qp);
  qp->state = QpState::reset;
  qp->sq.clear();
  qp->rq.clear();
  qp->next_psn = qp->acked_psn = qp->expected_psn = 0;
  qp->last_nak_psn = static_cast<Psn>(-1);
  qp->emit_cursor = 0;
  qp->route = nullptr;  // re-resolved at the next RTR transition
  qp->recv_active = false;
  qp->atomic_cache.clear();
  qp->n_sent = qp->n_recv = 0;
  qp->retries = 0;
  dev_.note_qp_transition(qpn, QpState::reset);
  return Status::ok();
}

Result<DeviceMemory> Context::alloc_dm(std::uint64_t length) {
  if (length == 0) return common::err(Errc::invalid_argument, "zero-length DM");
  const std::uint64_t rounded = proc::page_ceil(length);
  if (rounded > dev_.dm_free_) {
    return common::err(Errc::resource_exhausted, "on-chip memory exhausted");
  }
  charge(dev_.costs().alloc_dm);
  // The driver maps the NIC memory into the process's address space; the
  // application then uses plain loads/stores (and reg_mr) on that VA.
  MIGR_ASSIGN_OR_RETURN(auto va, proc_.mem().mmap(rounded, "rnic_dm"));
  dev_.dm_free_ -= rounded;
  DeviceMemory dm;
  dm.handle = next_handle_++;
  dm.length = rounded;
  dm.mapped_at = va;
  dms_.emplace(dm.handle, dm);
  return dm;
}

Result<DeviceMemory> Context::adopt_dm(std::uint64_t length, proc::VirtAddr existing_va) {
  const std::uint64_t rounded = proc::page_ceil(length);
  if (rounded > dev_.dm_free_) {
    return common::err(Errc::resource_exhausted, "on-chip memory exhausted");
  }
  if (!proc_.mem().mapped(existing_va, rounded)) {
    return common::err(Errc::invalid_argument, "adopt_dm: range not mapped");
  }
  charge(dev_.costs().alloc_dm);
  dev_.dm_free_ -= rounded;
  DeviceMemory dm;
  dm.handle = next_handle_++;
  dm.length = rounded;
  dm.mapped_at = existing_va;
  dms_.emplace(dm.handle, dm);
  return dm;
}

Status Context::free_dm(Handle dm) {
  auto it = dms_.find(dm);
  if (it == dms_.end()) return common::err(Errc::not_found, "no such DM");
  dev_.dm_free_ += it->second.length;
  (void)proc_.mem().munmap(it->second.mapped_at);
  dms_.erase(it);
  return Status::ok();
}

Result<Handle> Context::alloc_mw(Handle pd) {
  if (!pds_.contains(pd)) return common::err(Errc::not_found, "no such PD");
  charge(dev_.costs().alloc_mw);
  const Handle h = next_handle_++;
  MemoryWindow mw;
  mw.handle = h;
  mw.pd = pd;
  mws_.emplace(h, mw);
  return h;
}

Status Context::dealloc_mw(Handle mw) {
  auto it = mws_.find(mw);
  if (it == mws_.end()) return common::err(Errc::not_found, "no such MW");
  if (it->second.rkey != 0) dev_.rkeys_.erase(it->second.rkey);
  mws_.erase(it);
  return Status::ok();
}

Result<QpState> Context::query_qp_state(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  return qp->state;
}

const Qp* Context::find_qp(Qpn qpn) const {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.get();
}
Qp* Context::find_qp_mut(Qpn qpn) {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.get();
}
const Mr* Context::find_mr(Lkey lkey) const {
  auto it = mrs_.find(lkey);
  return it == mrs_.end() ? nullptr : &it->second;
}
const Srq* Context::find_srq(Handle h) const {
  auto it = srqs_.find(h);
  return it == srqs_.end() ? nullptr : it->second.get();
}
const Cq* Context::find_cq(Handle h) const {
  auto it = cqs_.find(h);
  return it == cqs_.end() ? nullptr : it->second.get();
}
Cq* Context::find_cq_mut(Handle h) {
  auto it = cqs_.find(h);
  return it == cqs_.end() ? nullptr : it->second.get();
}

}  // namespace migr::rnic
