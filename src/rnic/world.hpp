// Convenience aggregation of a simulated deployment: one event loop, one
// fabric, N hosts each with an RNIC, and processes. Used by examples, tests
// and benches; the migration library itself takes the individual pieces.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "proc/process.hpp"
#include "rnic/device.hpp"
#include "sim/event_loop.hpp"

namespace migr::rnic {

class World {
 public:
  explicit World(net::FabricConfig fabric_config = {}, std::uint64_t seed = 42)
      : fabric_(loop_, fabric_config, seed), seed_(seed) {}

  sim::EventLoop& loop() noexcept { return loop_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  const net::Fabric& fabric() const noexcept { return fabric_; }

  /// Add a host with an RNIC attached to the fabric.
  Device& add_device(net::HostId host, DeviceConfig config = {}) {
    devices_.push_back(std::make_unique<Device>(loop_, fabric_, host, config, seed_ + host));
    return *devices_.back();
  }

  proc::SimProcess& add_process(std::string name) {
    procs_.push_back(std::make_unique<proc::SimProcess>(next_pid_++, std::move(name), loop_));
    return *procs_.back();
  }

  /// Remove a process (kills its tasks). The caller must have torn down its
  /// RNIC contexts first.
  void remove_process(proc::SimProcess& p) {
    std::erase_if(procs_, [&p](const auto& up) { return up.get() == &p; });
  }

 private:
  sim::EventLoop loop_;
  net::Fabric fabric_;
  std::uint64_t seed_;
  proc::Pid next_pid_ = 100;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<proc::SimProcess>> procs_;
};

/// Out-of-band RC connection establishment between two contexts, as an
/// application would do over TCP: exchange QPNs + initial PSNs, then walk
/// both QPs RESET->INIT->RTR->RTS.
inline common::Status rc_connect(Context& a, Qpn qpn_a, Context& b, Qpn qpn_b,
                                 Psn psn_a = 1000, Psn psn_b = 2000) {
  MIGR_RETURN_IF_ERROR(a.modify_qp_init(qpn_a));
  MIGR_RETURN_IF_ERROR(b.modify_qp_init(qpn_b));
  MIGR_RETURN_IF_ERROR(a.modify_qp_rtr(qpn_a, b.device().host(), qpn_b, psn_b));
  MIGR_RETURN_IF_ERROR(b.modify_qp_rtr(qpn_b, a.device().host(), qpn_a, psn_a));
  MIGR_RETURN_IF_ERROR(a.modify_qp_rts(qpn_a, psn_a));
  MIGR_RETURN_IF_ERROR(b.modify_qp_rts(qpn_b, psn_b));
  return common::Status::ok();
}

}  // namespace migr::rnic
