// Data path: WR posting/validation, the transmit scheduler, the RC
// reliability protocol (cumulative ACK + go-back-N), responder execution of
// SEND/WRITE/READ/ATOMIC, and completion delivery.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.hpp"
#include "rnic/device.hpp"

namespace migr::rnic {

using common::Errc;
using common::Result;
using common::Status;

namespace {

constexpr std::uint8_t kErrNone = 0;
constexpr std::uint8_t kErrRemoteAccess = 1;
// NAK syndrome (carried in the spare atomic_op byte, like kErrRemoteAccess):
// receiver-not-ready is flow control — the requester retries without
// consuming retry budget (IB's separate, default-infinite rnr_retry) —
// whereas a plain sequence-error NAK counts against the budget.
constexpr std::uint8_t kNakRnr = 2;

// Largest packet train handed to the fabric in one coalesced emission.
constexpr std::uint32_t kMaxBurst = 64;

CqeOpcode send_cqe_opcode(WrOpcode op) {
  switch (op) {
    case WrOpcode::send:
    case WrOpcode::send_with_imm: return CqeOpcode::send;
    case WrOpcode::rdma_write:
    case WrOpcode::rdma_write_with_imm: return CqeOpcode::rdma_write;
    case WrOpcode::rdma_read: return CqeOpcode::rdma_read;
    case WrOpcode::atomic_cmp_and_swp:
    case WrOpcode::atomic_fetch_and_add: return CqeOpcode::atomic;
    case WrOpcode::bind_mw: return CqeOpcode::bind_mw;
  }
  return CqeOpcode::send;
}

}  // namespace

// ---------------------------------------------------------------------------
// Posting
// ---------------------------------------------------------------------------

Status Device::validate_sges(Context& ctx, std::span<const Sge> sge, bool need_write) {
  if (sge.size() > 16) return common::err(Errc::invalid_argument, "too many SGEs");
  for (const auto& s : sge) {
    if (s.length == 0) continue;
    const Mr* mr = ctx.find_mr(s.lkey);
    if (mr == nullptr) return common::err(Errc::permission_denied, "bad lkey");
    if (s.addr < mr->addr || s.addr + s.length > mr->addr + mr->length) {
      return common::err(Errc::permission_denied, "SGE outside MR bounds");
    }
    if (need_write && (mr->access & kAccessLocalWrite) == 0) {
      return common::err(Errc::permission_denied, "MR lacks local write access");
    }
  }
  return Status::ok();
}

Status Context::post_send(Qpn qpn, SendWr wr) {
  Qp* qp = find_qp_mut(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  if (qp->state != QpState::rts) {
    return common::err(Errc::failed_precondition, "QP not in RTS");
  }
  if (qp->sq.full()) return common::err(Errc::resource_exhausted, "SQ full");

  const bool local_write = wr.opcode == WrOpcode::rdma_read;
  MIGR_RETURN_IF_ERROR(dev_.validate_sges(*this, wr.sge, local_write));

  SendWqe wqe;
  wqe.bytes = wr.total_length();
  const std::uint32_t mtu = dev_.fabric().config().mtu;
  switch (wr.opcode) {
    case WrOpcode::send:
    case WrOpcode::send_with_imm:
    case WrOpcode::rdma_write:
    case WrOpcode::rdma_write_with_imm:
      wqe.npkts = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, (wqe.bytes + mtu - 1) / mtu));
      break;
    case WrOpcode::rdma_read:
    case WrOpcode::atomic_cmp_and_swp:
    case WrOpcode::atomic_fetch_and_add:
      wqe.npkts = 1;
      break;
    case WrOpcode::bind_mw:
      wqe.npkts = 0;
      break;
  }
  if (qp->type == QpType::ud) {
    if (!is_two_sided(wr.opcode)) {
      return common::err(Errc::invalid_argument, "UD supports only SEND");
    }
    if (wqe.bytes > mtu) {
      return common::err(Errc::invalid_argument, "UD message exceeds MTU");
    }
  }
  if (wr.opcode == WrOpcode::atomic_cmp_and_swp || wr.opcode == WrOpcode::atomic_fetch_and_add) {
    if (wqe.bytes != 8) return common::err(Errc::invalid_argument, "atomic requires 8-byte SGE");
    if (wr.remote_addr % 8 != 0) {
      return common::err(Errc::invalid_argument, "atomic target must be 8-byte aligned");
    }
  }
  if (is_two_sided(wr.opcode) || wr.opcode == WrOpcode::rdma_write_with_imm) {
    // Driver-visible counter used by wait-before-stop's n_sent (§3.4).
    qp->n_sent++;
  }
  wqe.wr = std::move(wr);
  qp->sq.push(std::move(wqe));
  dev_.metrics_.wqe_posted->inc();
  dev_.kick(*qp);
  return Status::ok();
}

Status Context::post_recv(Qpn qpn, RecvWr wr) {
  Qp* qp = find_qp_mut(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  if (qp->srq != 0) {
    return common::err(Errc::invalid_argument, "QP uses an SRQ; post to the SRQ");
  }
  if (qp->state == QpState::reset) {
    return common::err(Errc::failed_precondition, "QP in RESET");
  }
  MIGR_RETURN_IF_ERROR(dev_.validate_sges(*this, wr.sge, /*need_write=*/true));
  if (!qp->rq.push(std::move(wr))) {
    return common::err(Errc::resource_exhausted, "RQ full");
  }
  dev_.metrics_.recv_posted->inc();
  return Status::ok();
}

Status Context::post_srq_recv(Handle srq, RecvWr wr) {
  auto it = srqs_.find(srq);
  if (it == srqs_.end()) return common::err(Errc::not_found, "no such SRQ");
  MIGR_RETURN_IF_ERROR(dev_.validate_sges(*this, wr.sge, /*need_write=*/true));
  if (!it->second->wqes.push(std::move(wr))) {
    return common::err(Errc::resource_exhausted, "SRQ full");
  }
  dev_.metrics_.recv_posted->inc();
  return Status::ok();
}

Result<Rkey> Context::bind_mw(Qpn qpn, Handle mw_handle, Lkey mr_lkey, proc::VirtAddr addr,
                              std::uint64_t length, std::uint32_t access,
                              std::uint64_t wr_id) {
  auto it = mws_.find(mw_handle);
  if (it == mws_.end()) return common::err(Errc::not_found, "no such MW");
  const Mr* mr = find_mr(mr_lkey);
  if (mr == nullptr) return common::err(Errc::not_found, "no such MR");
  if ((mr->access & kAccessMwBind) == 0) {
    return common::err(Errc::permission_denied, "MR lacks MW-bind access");
  }
  if (addr < mr->addr || addr + length > mr->addr + mr->length) {
    return common::err(Errc::invalid_argument, "MW range outside MR");
  }
  Qp* qp = find_qp_mut(qpn);
  if (qp == nullptr) return common::err(Errc::not_found, "no such QP");
  if (qp->state != QpState::rts) return common::err(Errc::failed_precondition, "QP not RTS");
  if (qp->sq.full()) return common::err(Errc::resource_exhausted, "SQ full");

  // The new rkey is allocated now (returned to the app synchronously, as
  // ibv_bind_mw does); the *activation* is ordered on the SQ.
  const Rkey new_rkey = dev_.alloc_key();
  SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = WrOpcode::bind_mw;
  wr.rkey = new_rkey;
  wr.remote_addr = addr;
  // Pack bind params through fields we don't otherwise use on this opcode.
  wr.compare_add = length;
  wr.imm = access;
  wr.swap = (static_cast<std::uint64_t>(mw_handle) << 32) | mr_lkey;
  wr.signaled = true;

  SendWqe wqe;
  wqe.bytes = 0;
  wqe.npkts = 0;
  wqe.wr = std::move(wr);
  qp->sq.push(std::move(wqe));
  dev_.metrics_.wqe_posted->inc();
  dev_.kick(*qp);
  return new_rkey;
}

int Context::poll_cq(Handle cq, std::span<Cqe> out) {
  auto it = cqs_.find(cq);
  if (it == cqs_.end()) return -1;
  Cq& q = *it->second;
  int n = 0;
  while (n < static_cast<int>(out.size()) && !q.entries.empty()) {
    out[n++] = q.entries.pop();
  }
  return n;
}

Status Context::req_notify_cq(Handle cq) {
  auto it = cqs_.find(cq);
  if (it == cqs_.end()) return common::err(Errc::not_found, "no such CQ");
  if (it->second->channel == 0) {
    return common::err(Errc::failed_precondition, "CQ has no completion channel");
  }
  it->second->armed = true;
  return Status::ok();
}

std::optional<Handle> Context::get_cq_event(Handle channel) {
  auto it = channels_.find(channel);
  if (it == channels_.end() || it->second.pending.empty()) return std::nullopt;
  const Handle cq = it->second.pending.front();
  it->second.pending.pop_front();
  it->second.events_delivered++;
  return cq;
}

void Context::ack_cq_events(Handle channel, std::uint32_t n) {
  auto it = channels_.find(channel);
  if (it != channels_.end()) it->second.events_acked += n;
}

void Context::push_cqe(Handle cq_handle, Cqe cqe) {
  auto it = cqs_.find(cq_handle);
  if (it == cqs_.end()) return;
  Cq& cq = *it->second;
  if (!cq.entries.push(cqe)) {
    cq.overflowed = true;  // CQ overrun is fatal on real hardware too
    MIGR_ERROR() << "CQ " << cq_handle << " overflow on device " << dev_.host();
    return;
  }
  dev_.metrics_.cqe_delivered->inc();
  if (next_cqe_watch_) {
    // Move out first: the watcher may re-install itself.
    auto watch = std::move(next_cqe_watch_);
    next_cqe_watch_ = nullptr;
    watch();
  }
  if (cq.armed && cq.channel != 0) {
    cq.armed = false;
    auto ch = channels_.find(cq.channel);
    if (ch != channels_.end()) ch->second.pending.push_back(cq_handle);
  }
}

// ---------------------------------------------------------------------------
// Transmit scheduler
// ---------------------------------------------------------------------------

void Device::kick(Qp& qp) {
  if (qp.in_pump) return;
  qp.in_pump = true;
  pump_queue_.push_back(qp.qpn);
  if (!pump_scheduled_) schedule_pump(loop_.now());
}

void Device::schedule_pump(sim::TimeNs at) {
  pump_scheduled_ = true;
  loop_.post_at(at, [this] { pump(); });
}

void Device::pump() {
  pump_scheduled_ = false;
  // Round-robin: emit one packet for the first QP that has work, requeue it,
  // then pace the next slot at the port's serialization rate. QPs with no
  // emittable work fall out of the ring until re-kicked. A QP that is alone
  // in the rotation may stream a whole burst per slot instead.
  while (!pump_queue_.empty()) {
    const Qpn qpn = pump_queue_.front();
    pump_queue_.pop_front();
    auto it = qp_routes_.find(qpn);
    if (it == qp_routes_.end()) continue;  // destroyed while queued
    Qp& qp = *it->second;
    if (pump_queue_.empty() && emit_burst(qp)) {
      if (qp.emit_cursor < qp.sq.tail()) {
        pump_queue_.push_back(qpn);
        schedule_pump(std::max(loop_.now(), *egress_clock_));
      } else {
        qp.in_pump = false;
      }
      return;
    }
    if (emit_next_packet(qp)) {
      // More work? Keep it in the rotation.
      if (qp.emit_cursor < qp.sq.tail()) {
        pump_queue_.push_back(qpn);
      } else {
        qp.in_pump = false;
      }
      sim::TimeNs next = std::max(loop_.now(), *egress_clock_);
      if (under_ctrl_pressure()) {
        // Command-interface contention: data path slows by a few percent
        // while the NIC processes control commands (Fig. 5 brownout).
        next += fabric_.wire_time(fabric_.config().mtu) / 12;
      }
      if (!pump_queue_.empty()) schedule_pump(next);
      return;
    }
    qp.in_pump = false;
  }
}

bool Device::emit_burst(Qp& qp) {
  if (qp.state != QpState::rts || qp.type != QpType::rc || qp.route == nullptr) return false;
  if (under_ctrl_pressure() || !fabric_.data_fast_path()) return false;
  if (qp.emit_cursor < qp.sq.head()) qp.emit_cursor = qp.sq.head();
  if (qp.emit_cursor >= qp.sq.tail()) return false;
  SendWqe& wqe = qp.sq.at(static_cast<std::size_t>(qp.emit_cursor - qp.sq.head()));
  switch (wqe.wr.opcode) {
    case WrOpcode::send:
    case WrOpcode::send_with_imm:
    case WrOpcode::rdma_write:
    case WrOpcode::rdma_write_with_imm:
      break;
    default:
      return false;  // reads/atomics/binds keep the per-packet path
  }
  if (!wqe.psn_assigned) {
    wqe.first_psn = qp.next_psn;
    qp.next_psn += wqe.npkts;
    wqe.psn_assigned = true;
  }
  if (wqe.npkts - wqe.emitted_pkts < 2) return false;  // trains need >= 2 packets

  const std::uint32_t mtu = fabric_.config().mtu;
  const bool is_write = wqe.wr.opcode == WrOpcode::rdma_write ||
                        wqe.wr.opcode == WrOpcode::rdma_write_with_imm;
  const bool with_imm = wqe.wr.opcode == WrOpcode::send_with_imm ||
                        wqe.wr.opcode == WrOpcode::rdma_write_with_imm;
  if (wqe.msg_buf.empty() && wqe.bytes > 0) {
    wqe.msg_buf = common::PayloadRef::alloc(wqe.bytes);
  }
  const std::uint32_t n = std::min(kMaxBurst, wqe.npkts - wqe.emitted_pkts);
  std::vector<net::Packet> train = fabric_.acquire_train();
  train.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t offset = static_cast<std::uint64_t>(wqe.emitted_pkts) * mtu;
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(mtu, wqe.bytes - offset));
    if (chunk > 0) {
      auto st = dma_read(*qp.ctx, wqe.wr.sge, offset,
                         wqe.msg_buf.mutable_span().subspan(offset, chunk));
      if (!st.is_ok()) {
        MIGR_WARN() << "local DMA fault on QP " << qp.qpn << ": " << st.to_string();
        fabric_.send_data_burst(*qp.route, std::move(train));  // what made it out
        flush_qp(qp, /*notify=*/true);
        return true;
      }
    }
    WirePacket pkt;
    pkt.src_qpn = qp.qpn;
    pkt.dst_qpn = qp.remote_qpn;
    pkt.psn = wqe.first_psn + wqe.emitted_pkts;
    pkt.first = wqe.emitted_pkts == 0;
    pkt.last = wqe.emitted_pkts + 1 == wqe.npkts;
    pkt.offset = static_cast<std::uint32_t>(offset);
    pkt.msg_len = static_cast<std::uint32_t>(wqe.bytes);
    pkt.op = is_write ? PktOp::write : PktOp::send;
    if (is_write) {
      pkt.remote_addr = wqe.wr.remote_addr + offset;
      pkt.rkey = wqe.wr.rkey;
    }
    if (pkt.last && with_imm) {
      pkt.has_imm = true;
      pkt.imm = wqe.wr.imm;
    }
    pkt.payload = wqe.msg_buf.slice(offset, chunk);
    counters_.tx_packets++;
    counters_.tx_bytes += chunk;

    net::Packet raw;
    raw.src = host_;
    raw.dst = qp.remote_host;
    pkt.serialize_header(raw.header);
    raw.body = std::move(pkt.payload);
    train.push_back(std::move(raw));
    wqe.emitted_pkts++;
  }
  if (wqe.emitted_pkts == wqe.npkts) qp.emit_cursor++;
  qp.last_progress = loop_.now();
  fabric_.send_data_burst(*qp.route, std::move(train));
  arm_retransmit_timer(qp);  // one timer covers the whole train
  return true;
}

bool Device::emit_next_packet(Qp& qp) {
  if (qp.state != QpState::rts) return false;
  const std::uint32_t mtu = fabric_.config().mtu;
  if (qp.emit_cursor < qp.sq.head()) qp.emit_cursor = qp.sq.head();

  while (qp.emit_cursor < qp.sq.tail()) {
    SendWqe& wqe = qp.sq.at(static_cast<std::size_t>(qp.emit_cursor - qp.sq.head()));
    if (!wqe.psn_assigned) {
      wqe.first_psn = qp.next_psn;
      qp.next_psn += wqe.npkts;
      wqe.psn_assigned = true;
    }
    if (wqe.wr.opcode == WrOpcode::bind_mw) {
      // Executed on the NIC without touching the wire, ordered with the SQ.
      if (!wqe.executed) {
        const Handle mw_handle = static_cast<Handle>(wqe.wr.swap >> 32);
        auto mw_it = qp.ctx->mws_.find(mw_handle);
        if (mw_it != qp.ctx->mws_.end()) {
          MemoryWindow& mw = mw_it->second;
          if (mw.rkey != 0) rkeys_.erase(mw.rkey);  // re-bind invalidates old rkey
          mw.rkey = wqe.wr.rkey;
          mw.mr_lkey = static_cast<Lkey>(wqe.wr.swap & 0xFFFF'FFFF);
          mw.addr = wqe.wr.remote_addr;
          mw.length = wqe.wr.compare_add;
          mw.access = wqe.wr.imm;
          rkeys_[mw.rkey] = RkeyTarget{qp.ctx, mw.addr, mw.length, mw.access, mw.pd};
        }
        wqe.executed = true;
      }
      qp.emit_cursor++;
      complete_head_wqes(qp);
      continue;
    }
    if (wqe.emitted_pkts >= wqe.npkts) {
      qp.emit_cursor++;
      continue;
    }

    WirePacket pkt;
    pkt.src_qpn = qp.qpn;
    pkt.psn = wqe.first_psn + wqe.emitted_pkts;
    net::HostId dst_host = qp.remote_host;
    pkt.dst_qpn = qp.remote_qpn;

    switch (wqe.wr.opcode) {
      case WrOpcode::send:
      case WrOpcode::send_with_imm:
      case WrOpcode::rdma_write:
      case WrOpcode::rdma_write_with_imm: {
        const std::uint64_t offset = static_cast<std::uint64_t>(wqe.emitted_pkts) * mtu;
        const std::uint32_t chunk =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(mtu, wqe.bytes - offset));
        if (wqe.msg_buf.empty() && wqe.bytes > 0) {
          wqe.msg_buf = common::PayloadRef::alloc(wqe.bytes);
        }
        if (chunk > 0) {
          auto st = dma_read(*qp.ctx, wqe.wr.sge, offset,
                             wqe.msg_buf.mutable_span().subspan(offset, chunk));
          if (!st.is_ok()) {
            // Local protection fault mid-transfer (e.g. buffer unmapped):
            // the QP moves to error, as real hardware does.
            MIGR_WARN() << "local DMA fault on QP " << qp.qpn << ": " << st.to_string();
            flush_qp(qp, /*notify=*/true);
            return false;
          }
        }
        pkt.payload = wqe.msg_buf.slice(offset, chunk);
        pkt.first = wqe.emitted_pkts == 0;
        pkt.last = wqe.emitted_pkts + 1 == wqe.npkts;
        pkt.offset = static_cast<std::uint32_t>(offset);
        pkt.msg_len = static_cast<std::uint32_t>(wqe.bytes);
        const bool is_write = wqe.wr.opcode == WrOpcode::rdma_write ||
                              wqe.wr.opcode == WrOpcode::rdma_write_with_imm;
        pkt.op = is_write ? PktOp::write : PktOp::send;
        if (is_write) {
          pkt.remote_addr = wqe.wr.remote_addr + offset;
          pkt.rkey = wqe.wr.rkey;
        }
        if (pkt.last && (wqe.wr.opcode == WrOpcode::send_with_imm ||
                         wqe.wr.opcode == WrOpcode::rdma_write_with_imm)) {
          pkt.has_imm = true;
          pkt.imm = wqe.wr.imm;
        }
        if (qp.type == QpType::ud) {
          dst_host = wqe.wr.remote_host;
          pkt.dst_qpn = wqe.wr.remote_qpn;
        }
        break;
      }
      case WrOpcode::rdma_read:
        pkt.op = PktOp::read_req;
        pkt.remote_addr = wqe.wr.remote_addr;
        pkt.rkey = wqe.wr.rkey;
        pkt.msg_len = static_cast<std::uint32_t>(wqe.bytes);
        pkt.resp_token = wqe.first_psn;
        pkt.first = pkt.last = true;
        break;
      case WrOpcode::atomic_cmp_and_swp:
      case WrOpcode::atomic_fetch_and_add:
        pkt.op = PktOp::atomic_req;
        pkt.remote_addr = wqe.wr.remote_addr;
        pkt.rkey = wqe.wr.rkey;
        pkt.atomic_op = wqe.wr.opcode == WrOpcode::atomic_cmp_and_swp ? 0 : 1;
        pkt.compare_add = wqe.wr.compare_add;
        pkt.swap = wqe.wr.swap;
        pkt.resp_token = wqe.first_psn;
        pkt.first = pkt.last = true;
        break;
      case WrOpcode::bind_mw:
        assert(false);
        break;
    }

    transmit(std::move(pkt), dst_host,
             qp.type == QpType::rc ? qp.route : fabric_.route(host_, dst_host));
    wqe.emitted_pkts++;
    if (wqe.emitted_pkts == wqe.npkts) qp.emit_cursor++;
    qp.last_progress = loop_.now();

    if (qp.type == QpType::ud) {
      complete_head_wqes(qp);  // UD completes at transmission
    } else {
      arm_retransmit_timer(qp);
    }
    return true;
  }
  return false;
}

void Device::transmit(WirePacket pkt, net::HostId dst, net::Fabric::Route* route) {
  counters_.tx_packets++;
  counters_.tx_bytes += pkt.payload.size();
  net::Packet raw;
  raw.src = host_;
  raw.dst = dst;
  pkt.serialize_header(raw.header);
  raw.body = std::move(pkt.payload);
  if (route != nullptr) {
    fabric_.send_data(*route, std::move(raw));
  } else {
    fabric_.send_data(std::move(raw));
  }
}

// ---------------------------------------------------------------------------
// Reliability: acks, naks, timers
// ---------------------------------------------------------------------------

namespace {
/// Rewind a QP's transmit progress so that everything from `from_psn` on is
/// re-emitted (go-back-N).
void rewind_to(Qp& qp, Psn from_psn) {
  for (std::size_t i = 0; i < qp.sq.size(); ++i) {
    SendWqe& w = qp.sq.at(i);
    if (!w.psn_assigned || w.npkts == 0) continue;
    const Psn end = w.first_psn + w.npkts;
    if (end <= from_psn) continue;
    const std::uint32_t keep =
        from_psn > w.first_psn ? static_cast<std::uint32_t>(from_psn - w.first_psn) : 0;
    if (w.emitted_pkts > keep) w.emitted_pkts = keep;
    if (w.emitted_pkts < w.npkts) {
      qp.emit_cursor = std::min(qp.emit_cursor, qp.sq.head() + i);
    }
  }
}

/// Earliest PSN that still needs (re)transmission for this QP: the
/// cumulative acked point, pulled back to any incomplete READ/ATOMIC whose
/// responses may have been lost (their acks are implicit in the responses).
Psn retransmit_point(const Qp& qp) {
  Psn point = qp.acked_psn;
  for (std::size_t i = 0; i < qp.sq.size(); ++i) {
    const SendWqe& w = qp.sq.at(i);
    if (!w.psn_assigned) break;
    const bool read_pending = w.wr.opcode == WrOpcode::rdma_read && w.resp_received < w.bytes;
    const bool atomic_pending = (w.wr.opcode == WrOpcode::atomic_cmp_and_swp ||
                                 w.wr.opcode == WrOpcode::atomic_fetch_and_add) &&
                                !w.resp_done;
    if ((read_pending || atomic_pending) && w.first_psn < point) point = w.first_psn;
  }
  return point;
}
}  // namespace

void Device::arm_retransmit_timer(Qp& qp) {
  if (qp.retries < 0) return;  // timer disabled
  // Fault-free fast path: one live timer already covers the whole SQ (it
  // re-arms itself until the queue drains), so per-packet arming would only
  // pile up redundant events. With faults active, arm unconditionally —
  // identical timer population to the per-packet protocol.
  if (fabric_.data_fast_path() && qp.rtx_outstanding > 0) return;
  qp.rtx_outstanding++;
  const Qpn qpn = qp.qpn;
  loop_.post_in(costs().retransmit_timeout, [this, qpn] { on_retransmit_timer(qpn); });
}

void Device::on_retransmit_timer(Qpn qpn) {
  auto it = qp_routes_.find(qpn);
  if (it == qp_routes_.end()) return;
  Qp& qp = *it->second;
  if (qp.rtx_outstanding > 0) qp.rtx_outstanding--;
  if (qp.state != QpState::rts || qp.type != QpType::rc) return;
  if (qp.sq.empty()) return;
  // Anything left unacked and quiet for a full timeout?
  if (loop_.now() - qp.last_progress < costs().retransmit_timeout) {
    // Progress happened since this timer was armed — but nothing else arms
    // one (ACK progress does not), so keep a timer alive until the SQ
    // drains; otherwise a tail left unacked after a partial cumulative ACK
    // stalls forever.
    arm_retransmit_timer(qp);
    return;
  }
  const SendWqe& head = qp.sq.front();
  if (!head.psn_assigned) return;
  qp.retries++;
  if (qp.retries > costs().retry_count) {
    MIGR_WARN() << "QP " << qpn << " retry budget exhausted; moving to error";
    flush_qp(qp, /*notify=*/true);
    return;
  }
  counters_.retransmits++;
  qp.retransmits++;
  metrics_.retransmits->inc();
  rewind_to(qp, retransmit_point(qp));
  qp.last_progress = loop_.now();
  kick(qp);
  arm_retransmit_timer(qp);
}

void Device::send_ack(Qp& qp) {
  WirePacket ack;
  ack.op = PktOp::ack;
  ack.src_qpn = qp.qpn;
  ack.dst_qpn = qp.remote_qpn;
  ack.psn = qp.expected_psn;  // cumulative: everything below is received
  transmit(std::move(ack), qp.remote_host, qp.route);
}

void Device::note_nak_for_storm(const Qp& qp) {
  if (config_.nak_storm_threshold == 0) return;
  const sim::TimeNs now = loop_.now();
  if (now - nak_window_start_ > config_.nak_storm_window) {
    nak_window_start_ = now;
    nak_window_count_ = 0;
  }
  if (++nak_window_count_ < config_.nak_storm_threshold) return;
  // Threshold tripped: dump and re-arm on a fresh window so a sustained
  // storm produces one dump per window, not one per NAK.
  nak_window_start_ = now;
  nak_window_count_ = 0;
  auto& rec = obs::FlightRecorder::global();
  if (!rec.enabled()) return;
  std::string detail = "\"host\":" + std::to_string(host_) +
                       ",\"qpn\":" + std::to_string(qp.qpn) +
                       ",\"naks_in_window\":" + std::to_string(config_.nak_storm_threshold);
  rec.trigger_dump(now, "nak_storm", detail);
}

void Device::send_nak(Qp& qp, bool rnr) {
  if (qp.last_nak_psn == qp.expected_psn) return;  // one NAK per gap event
  qp.last_nak_psn = qp.expected_psn;
  metrics_.nak_tx->inc();
  note_nak_for_storm(qp);
  WirePacket nak;
  nak.op = PktOp::nak;
  nak.src_qpn = qp.qpn;
  nak.dst_qpn = qp.remote_qpn;
  nak.psn = qp.expected_psn;
  nak.atomic_op = rnr ? kNakRnr : kErrNone;
  transmit(std::move(nak), qp.remote_host, qp.route);
}

void Device::on_ack(Qp& qp, const WirePacket& pkt) {
  if (pkt.atomic_op == kErrRemoteAccess) {
    // Remote access error: fatal for the QP, per RC semantics.
    if (!qp.sq.empty()) {
      SendWqe& head = qp.sq.front();
      Cqe cqe;
      cqe.wr_id = head.wr.wr_id;
      cqe.status = CqeStatus::remote_access_err;
      cqe.opcode = send_cqe_opcode(head.wr.opcode);
      cqe.qpn = qp.qpn;
      qp.ctx->push_cqe(qp.send_cq, cqe);
      qp.sq.pop();
    }
    flush_qp(qp, /*notify=*/true);
    return;
  }
  if (pkt.psn > qp.acked_psn) {
    qp.acked_psn = pkt.psn;
    qp.retries = 0;
    qp.last_progress = loop_.now();
    complete_head_wqes(qp);
  }
  if (pkt.op == PktOp::nak) {
    // A sequence-error NAK rewind consumes retry budget just like a timeout
    // does; ACK progress (above) resets it, so only progress-free rewinds
    // accumulate and a persistently broken peer cannot keep the QP
    // rewinding forever. RNR NAKs are flow control, not network damage, and
    // stay budget-free (IB's rnr_retry, default infinite).
    if (pkt.atomic_op != kNakRnr) {
      qp.retries++;
      if (qp.retries > costs().retry_count) {
        MIGR_WARN() << "QP " << qp.qpn << " NAK rewind budget exhausted; moving to error";
        flush_qp(qp, /*notify=*/true);
        return;
      }
    }
    counters_.retransmits++;
    qp.retransmits++;
    metrics_.retransmits->inc();
    rewind_to(qp, retransmit_point(qp));
    kick(qp);
  }
}

void Device::complete_head_wqes(Qp& qp) {
  while (!qp.sq.empty()) {
    SendWqe& w = qp.sq.front();
    bool done = false;
    switch (w.wr.opcode) {
      case WrOpcode::send:
      case WrOpcode::send_with_imm:
      case WrOpcode::rdma_write:
      case WrOpcode::rdma_write_with_imm:
        done = qp.type == QpType::ud
                   ? (w.psn_assigned && w.emitted_pkts == w.npkts)
                   : (w.psn_assigned && qp.acked_psn >= w.first_psn + w.npkts);
        break;
      case WrOpcode::rdma_read:
        done = w.resp_received >= w.bytes;
        break;
      case WrOpcode::atomic_cmp_and_swp:
      case WrOpcode::atomic_fetch_and_add:
        done = w.resp_done;
        break;
      case WrOpcode::bind_mw:
        done = w.executed;
        break;
    }
    if (!done) break;
    if (w.wr.signaled) {
      Cqe cqe;
      cqe.wr_id = w.wr.wr_id;
      cqe.status = CqeStatus::success;
      cqe.opcode = send_cqe_opcode(w.wr.opcode);
      cqe.byte_len = static_cast<std::uint32_t>(w.bytes);
      cqe.qpn = qp.qpn;
      qp.ctx->push_cqe(qp.send_cq, cqe);
    }
    qp.sq.pop();
    if (qp.emit_cursor < qp.sq.head()) qp.emit_cursor = qp.sq.head();
  }
}

void Device::flush_qp(Qp& qp, bool notify) {
  qp.state = QpState::err;
  note_qp_transition(qp.qpn, QpState::err);
  const bool first_is_timeout = notify;
  bool first = true;
  while (!qp.sq.empty()) {
    SendWqe w = qp.sq.pop();
    Cqe cqe;
    cqe.wr_id = w.wr.wr_id;
    cqe.status = (first && first_is_timeout) ? CqeStatus::retry_exceeded : CqeStatus::wr_flush_err;
    cqe.opcode = send_cqe_opcode(w.wr.opcode);
    cqe.qpn = qp.qpn;
    qp.ctx->push_cqe(qp.send_cq, cqe);
    first = false;
  }
  while (!qp.rq.empty()) {
    RecvWr w = qp.rq.pop();
    Cqe cqe;
    cqe.wr_id = w.wr_id;
    cqe.status = CqeStatus::wr_flush_err;
    cqe.opcode = CqeOpcode::recv;
    cqe.qpn = qp.qpn;
    qp.ctx->push_cqe(qp.recv_cq, cqe);
  }
  qp.emit_cursor = qp.sq.head();
  qp.recv_active = false;
  if (notify && qp.ctx->qp_error_handler_) qp.ctx->qp_error_handler_(qp.qpn);
}

// ---------------------------------------------------------------------------
// Responder / receive path
// ---------------------------------------------------------------------------

void Device::handle_packet(net::Packet&& raw) {
  auto parsed = WirePacket::parse(std::move(raw));
  if (!parsed.is_ok()) {
    MIGR_WARN() << "malformed packet dropped on host " << host_;
    return;
  }
  WirePacket pkt = std::move(parsed).value();
  counters_.rx_packets++;
  counters_.rx_bytes += pkt.payload.size();

  auto it = qp_routes_.find(pkt.dst_qpn);
  if (it == qp_routes_.end()) return;  // stale packet for a destroyed QP
  Qp& qp = *it->second;

  switch (pkt.op) {
    case PktOp::ack:
    case PktOp::nak:
      if (qp.state == QpState::rts) on_ack(qp, pkt);
      return;
    case PktOp::read_resp:
      if (qp.state == QpState::rts) on_read_resp(qp, pkt);
      return;
    case PktOp::atomic_resp:
      if (qp.state == QpState::rts) on_atomic_resp(qp, pkt);
      return;
    default:
      break;
  }

  if (qp.state != QpState::rtr && qp.state != QpState::rts) return;
  if (qp.type == QpType::rc && pkt.src_qpn != qp.remote_qpn) return;  // not my peer
  on_request(qp, pkt);
}

void Device::on_request(Qp& qp, WirePacket& pkt) {
  if (qp.type == QpType::ud) {
    // Datagram: no PSN discipline; needs an RQ WQE or the packet is dropped.
    if (qp.rq.empty()) return;
    RecvWr wr = qp.rq.pop();
    if (pkt.payload.size() > wr.total_length()) return;  // silently dropped
    if (!pkt.payload.empty()) {
      (void)dma_write(*qp.ctx, wr.sge, 0, pkt.payload);
    }
    qp.n_recv++;
    deliver_recv_cqe(qp, wr, static_cast<std::uint32_t>(pkt.payload.size()), pkt.has_imm,
                     pkt.imm, pkt.src_qpn);
    return;
  }

  // --- RC PSN discipline ---
  if (pkt.psn < qp.expected_psn) {
    // Duplicate from a go-back-N replay. Re-ack; replay read/atomic results.
    switch (pkt.op) {
      case PktOp::read_req:
        on_request_read(qp, pkt);  // reads are idempotent: re-execute
        return;
      case PktOp::atomic_req: {
        auto it = qp.atomic_cache.find(pkt.psn);
        if (it != qp.atomic_cache.end()) {
          WirePacket resp;
          resp.op = PktOp::atomic_resp;
          resp.src_qpn = qp.qpn;
          resp.dst_qpn = qp.remote_qpn;
          resp.psn = pkt.psn;
          resp.resp_token = pkt.resp_token;
          resp.payload = common::PayloadRef::alloc(8);
          std::uint64_t v = it->second;
          std::memcpy(resp.payload.mutable_data(), &v, 8);
          transmit(std::move(resp), qp.remote_host, qp.route);
        }
        return;
      }
      default:
        send_ack(qp);
        return;
    }
  }
  if (pkt.psn > qp.expected_psn) {
    counters_.out_of_sequence++;
    metrics_.out_of_sequence->inc();
    send_nak(qp);
    return;
  }
  qp.last_nak_psn = static_cast<Psn>(-1);

  switch (pkt.op) {
    case PktOp::send: {
      if (!qp.recv_active && pkt.first) {
        // Claim a receive WQE at message start, from the SRQ if attached.
        RecvWr wr;
        if (qp.srq != 0) {
          auto* srq = qp.ctx->srqs_.find(qp.srq)->second.get();
          if (srq->wqes.empty()) {
            send_nak(qp, /*rnr=*/true);  // receiver-not-ready; sender will retry
            return;
          }
          wr = srq->wqes.pop();
        } else {
          if (qp.rq.empty()) {
            send_nak(qp, /*rnr=*/true);
            return;
          }
          wr = qp.rq.pop();
        }
        if (pkt.msg_len > wr.total_length()) {
          // Message too long for the posted buffer: local length error.
          qp.n_recv++;
          Cqe cqe;
          cqe.wr_id = wr.wr_id;
          cqe.status = CqeStatus::local_protection_err;
          cqe.opcode = CqeOpcode::recv;
          cqe.qpn = qp.qpn;
          qp.ctx->push_cqe(qp.recv_cq, cqe);
          flush_qp(qp, /*notify=*/true);
          return;
        }
        qp.recv_active = true;
        qp.recv_cur = std::move(wr);
        qp.recv_msg_len = pkt.msg_len;
        qp.recv_written = 0;
      }
      if (!qp.recv_active) return;  // mid-message packet with no assembly: drop
      if (!pkt.payload.empty()) {
        (void)dma_write(*qp.ctx, qp.recv_cur.sge, pkt.offset, pkt.payload);
        qp.recv_written += static_cast<std::uint32_t>(pkt.payload.size());
      }
      qp.expected_psn = pkt.psn + 1;
      if (pkt.last) {
        qp.recv_active = false;
        qp.n_recv++;
        deliver_recv_cqe(qp, qp.recv_cur, qp.recv_msg_len, pkt.has_imm, pkt.imm,
                         qp.remote_qpn);
        send_ack(qp);
      } else if ((qp.expected_psn & 0xF) == 0) {
        send_ack(qp);
      }
      return;
    }
    case PktOp::write: {
      const RkeyTarget* target = find_rkey(pkt.rkey);
      if (target == nullptr || target->ctx != qp.ctx || target->pd != qp.pd ||
          (target->access & kAccessRemoteWrite) == 0 ||
          pkt.remote_addr < target->addr ||
          pkt.remote_addr + pkt.payload.size() > target->addr + target->length) {
        reply_remote_error(qp);
        return;
      }
      if (!pkt.payload.empty()) {
        // DMA into the target process's memory: dirties pages for pre-copy.
        (void)target->ctx->process().mem().write(pkt.remote_addr, pkt.payload);
      }
      qp.expected_psn = pkt.psn + 1;
      if (pkt.last && pkt.has_imm) {
        // WRITE-with-imm consumes a receive WQE and reports a recv CQE.
        RecvWr wr;
        bool have = false;
        if (qp.srq != 0) {
          auto* srq = qp.ctx->srqs_.find(qp.srq)->second.get();
          if (!srq->wqes.empty()) {
            wr = srq->wqes.pop();
            have = true;
          }
        } else if (!qp.rq.empty()) {
          wr = qp.rq.pop();
          have = true;
        }
        if (!have) {
          qp.expected_psn = pkt.psn;  // un-consume; retry like RNR
          send_nak(qp, /*rnr=*/true);
          return;
        }
        qp.n_recv++;
        deliver_recv_cqe(qp, wr, pkt.msg_len, true, pkt.imm, qp.remote_qpn);
      }
      if (pkt.last) {
        send_ack(qp);
      } else if ((qp.expected_psn & 0xF) == 0) {
        send_ack(qp);
      }
      return;
    }
    case PktOp::read_req:
      qp.expected_psn = pkt.psn + 1;
      on_request_read(qp, pkt);
      return;
    case PktOp::atomic_req: {
      const RkeyTarget* target = find_rkey(pkt.rkey);
      if (target == nullptr || target->ctx != qp.ctx || target->pd != qp.pd ||
          (target->access & kAccessRemoteAtomic) == 0 ||
          pkt.remote_addr < target->addr ||
          pkt.remote_addr + 8 > target->addr + target->length) {
        reply_remote_error(qp);
        return;
      }
      qp.expected_psn = pkt.psn + 1;
      std::uint8_t buf[8];
      (void)target->ctx->process().mem().read(pkt.remote_addr, buf);
      std::uint64_t orig;
      std::memcpy(&orig, buf, 8);
      std::uint64_t updated = orig;
      if (pkt.atomic_op == 0) {  // CAS
        if (orig == pkt.compare_add) updated = pkt.swap;
      } else {  // FAA
        updated = orig + pkt.compare_add;
      }
      std::memcpy(buf, &updated, 8);
      (void)target->ctx->process().mem().write(pkt.remote_addr, buf);
      // Bounded replay cache so retried atomics are not re-executed.
      qp.atomic_cache.emplace(pkt.psn, orig);
      while (qp.atomic_cache.size() > 64) qp.atomic_cache.erase(qp.atomic_cache.begin());

      WirePacket resp;
      resp.op = PktOp::atomic_resp;
      resp.src_qpn = qp.qpn;
      resp.dst_qpn = qp.remote_qpn;
      resp.psn = pkt.psn;
      resp.resp_token = pkt.resp_token;
      resp.payload = common::PayloadRef::alloc(8);
      std::memcpy(resp.payload.mutable_data(), &orig, 8);
      transmit(std::move(resp), qp.remote_host, qp.route);
      return;
    }
    default:
      return;
  }
}

void Device::on_request_read(Qp& qp, const WirePacket& pkt) {
  const RkeyTarget* target = find_rkey(pkt.rkey);
  if (target == nullptr || target->ctx != qp.ctx || target->pd != qp.pd ||
      (target->access & kAccessRemoteRead) == 0 || pkt.remote_addr < target->addr ||
      pkt.remote_addr + pkt.msg_len > target->addr + target->length) {
    reply_remote_error(qp);
    return;
  }
  // Stream the response. Response packets carry the requester's token so a
  // re-issued read matches up with the same WQE. One buffer holds the whole
  // message; each response packet carries a zero-copy slice of it.
  const std::uint32_t mtu = fabric_.config().mtu;
  common::PayloadRef buf = common::PayloadRef::alloc(pkt.msg_len);
  if (pkt.msg_len > 0) {
    (void)target->ctx->process().mem().read(pkt.remote_addr, buf.mutable_span());
  }
  std::uint32_t off = 0;
  do {
    const std::uint32_t chunk = std::min(mtu, pkt.msg_len - off);
    WirePacket resp;
    resp.op = PktOp::read_resp;
    resp.src_qpn = qp.qpn;
    resp.dst_qpn = qp.remote_qpn;
    resp.resp_token = pkt.resp_token;
    resp.offset = off;
    resp.msg_len = pkt.msg_len;
    resp.first = off == 0;
    resp.last = off + chunk >= pkt.msg_len;
    resp.payload = buf.slice(off, chunk);
    transmit(std::move(resp), qp.remote_host, qp.route);
    off += chunk;
  } while (off < pkt.msg_len);
}

void Device::reply_remote_error(Qp& qp) {
  WirePacket e;
  e.op = PktOp::ack;
  e.src_qpn = qp.qpn;
  e.dst_qpn = qp.remote_qpn;
  e.psn = qp.expected_psn;
  e.atomic_op = kErrRemoteAccess;
  transmit(std::move(e), qp.remote_host, qp.route);
}

void Device::on_read_resp(Qp& qp, const WirePacket& pkt) {
  // Locate the WQE by its token (= first_psn, stable across retries).
  for (std::size_t i = 0; i < qp.sq.size(); ++i) {
    SendWqe& w = qp.sq.at(i);
    if (!w.psn_assigned || w.first_psn != pkt.resp_token ||
        w.wr.opcode != WrOpcode::rdma_read) {
      continue;
    }
    if (w.resp_received >= w.bytes && w.bytes > 0) return;  // duplicate replay
    if (!pkt.payload.empty()) {
      (void)dma_write(*qp.ctx, w.wr.sge, pkt.offset, pkt.payload);
    }
    // Note: with re-issued reads, offsets may repeat; count via high-water.
    const std::uint64_t high = pkt.offset + pkt.payload.size();
    if (high > w.resp_received) w.resp_received = high;
    qp.last_progress = loop_.now();
    qp.retries = 0;
    if (w.resp_received >= w.bytes) {
      // The read's PSN is implicitly acked by its completed response.
      if (qp.acked_psn < w.first_psn + 1) qp.acked_psn = w.first_psn + 1;
      complete_head_wqes(qp);
    }
    return;
  }
}

void Device::on_atomic_resp(Qp& qp, const WirePacket& pkt) {
  for (std::size_t i = 0; i < qp.sq.size(); ++i) {
    SendWqe& w = qp.sq.at(i);
    if (!w.psn_assigned || w.first_psn != pkt.resp_token) continue;
    if (w.wr.opcode != WrOpcode::atomic_cmp_and_swp &&
        w.wr.opcode != WrOpcode::atomic_fetch_and_add) {
      continue;
    }
    if (w.resp_done) return;  // duplicate
    if (pkt.payload.size() == 8 && !w.wr.sge.empty()) {
      (void)dma_write(*qp.ctx, w.wr.sge, 0, pkt.payload);
    }
    w.resp_done = true;
    qp.last_progress = loop_.now();
    qp.retries = 0;
    if (qp.acked_psn < w.first_psn + 1) qp.acked_psn = w.first_psn + 1;
    complete_head_wqes(qp);
    return;
  }
}

void Device::deliver_recv_cqe(Qp& qp, const RecvWr& wr, std::uint32_t byte_len,
                              bool has_imm, std::uint32_t imm, Qpn src_qp, CqeOpcode op) {
  Cqe cqe;
  cqe.wr_id = wr.wr_id;
  cqe.status = CqeStatus::success;
  cqe.opcode = op;
  cqe.byte_len = byte_len;
  cqe.qpn = qp.qpn;
  cqe.has_imm = has_imm;
  cqe.imm = imm;
  cqe.src_qp = src_qp;
  qp.ctx->push_cqe(qp.recv_cq, cqe);
}

// ---------------------------------------------------------------------------
// DMA helpers
// ---------------------------------------------------------------------------

common::Status Device::dma_read(Context& ctx, std::span<const Sge> sge,
                                std::uint64_t offset, std::span<std::uint8_t> out) {
  std::uint64_t skip = offset;
  std::size_t produced = 0;
  for (const auto& s : sge) {
    if (produced == out.size()) break;
    if (skip >= s.length) {
      skip -= s.length;
      continue;
    }
    const std::uint64_t avail = s.length - skip;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(avail, out.size() - produced));
    MIGR_RETURN_IF_ERROR(ctx.process().mem().read(s.addr + skip, out.subspan(produced, n)));
    produced += n;
    skip = 0;
  }
  if (produced != out.size()) {
    return common::err(Errc::invalid_argument, "SGE list shorter than DMA length");
  }
  return Status::ok();
}

common::Status Device::dma_write(Context& ctx, std::span<const Sge> sge,
                                 std::uint64_t offset, std::span<const std::uint8_t> in) {
  std::uint64_t skip = offset;
  std::size_t consumed = 0;
  for (const auto& s : sge) {
    if (consumed == in.size()) break;
    if (skip >= s.length) {
      skip -= s.length;
      continue;
    }
    const std::uint64_t avail = s.length - skip;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(avail, in.size() - consumed));
    MIGR_RETURN_IF_ERROR(ctx.process().mem().write(s.addr + skip, in.subspan(consumed, n)));
    consumed += n;
    skip = 0;
  }
  if (consumed != in.size()) {
    return common::err(Errc::invalid_argument, "recv buffer shorter than message");
  }
  return Status::ok();
}

}  // namespace migr::rnic
