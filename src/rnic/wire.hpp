// RoCE-like wire format for the simulated fabric. One WirePacket is one
// MTU-bounded transport packet; the header layout loosely follows the IB
// Base Transport Header plus the RETH/AtomicETH extended headers, carrying
// exactly the fields MigrRDMA cares about: destination QPN (routing), PSN
// (go-back-N reliability), and rkey/remote address (one-sided validation).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "rnic/types.hpp"

namespace migr::rnic {

enum class PktOp : std::uint8_t {
  send,         // two-sided payload packet
  write,        // one-sided write payload packet
  read_req,     // one-sided read request (no payload)
  read_resp,    // read response payload packet
  atomic_req,   // CAS / FAA request
  atomic_resp,  // atomic response (original value)
  ack,          // cumulative acknowledgement
  nak,          // go-back-N: "retransmit from psn"
};

struct WirePacket {
  PktOp op = PktOp::send;
  Qpn dst_qpn = 0;
  Qpn src_qpn = 0;
  Psn psn = 0;       // request packets: sequence; ack/nak: cumulative/expected
  bool first = false;  // first packet of a message
  bool last = false;   // last packet of a message
  bool has_imm = false;
  std::uint32_t imm = 0;

  // RETH (write / read_req / atomic_req)
  proc::VirtAddr remote_addr = 0;
  Rkey rkey = 0;
  std::uint32_t msg_len = 0;  // total message length (first pkt / read_req)

  // Payload placement within the message.
  std::uint32_t offset = 0;

  // AtomicETH
  std::uint8_t atomic_op = 0;  // 0 = CAS, 1 = FAA
  std::uint64_t compare_add = 0;
  std::uint64_t swap = 0;

  // Read/atomic bookkeeping token: requester-side WQE identity echoed in
  // responses, so retried requests match up.
  std::uint64_t resp_token = 0;

  common::Bytes payload;

  common::Bytes serialize() const;
  static common::Result<WirePacket> parse(std::span<const std::uint8_t> data);
};

}  // namespace migr::rnic
