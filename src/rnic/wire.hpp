// RoCE-like wire format for the simulated fabric. One WirePacket is one
// MTU-bounded transport packet; the header layout loosely follows the IB
// Base Transport Header plus the RETH/AtomicETH extended headers, carrying
// exactly the fields MigrRDMA cares about: destination QPN (routing), PSN
// (go-back-N reliability), and rkey/remote address (one-sided validation).
//
// On the fast path the header serializes into the net::Packet's inline
// FrameHeader and the payload rides as a zero-copy PayloadRef slice; the
// flat serialize()/parse(span) pair remains for raw-frame senders (tests)
// and produces byte-identical framing (header, then u32-length-prefixed
// payload).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/payload.hpp"
#include "common/result.hpp"
#include "net/fabric.hpp"
#include "rnic/types.hpp"

namespace migr::rnic {

enum class PktOp : std::uint8_t {
  send,         // two-sided payload packet
  write,        // one-sided write payload packet
  read_req,     // one-sided read request (no payload)
  read_resp,    // read response payload packet
  atomic_req,   // CAS / FAA request
  atomic_resp,  // atomic response (original value)
  ack,          // cumulative acknowledgement
  nak,          // go-back-N: "retransmit from psn"
};

struct WirePacket {
  /// Serialized header size: fixed fields (67 B) + u32 payload length.
  static constexpr std::size_t kHeaderBytes = 71;

  PktOp op = PktOp::send;
  Qpn dst_qpn = 0;
  Qpn src_qpn = 0;
  Psn psn = 0;       // request packets: sequence; ack/nak: cumulative/expected
  bool first = false;  // first packet of a message
  bool last = false;   // last packet of a message
  bool has_imm = false;
  std::uint32_t imm = 0;

  // RETH (write / read_req / atomic_req)
  proc::VirtAddr remote_addr = 0;
  Rkey rkey = 0;
  std::uint32_t msg_len = 0;  // total message length (first pkt / read_req)

  // Payload placement within the message.
  std::uint32_t offset = 0;

  // AtomicETH
  std::uint8_t atomic_op = 0;  // 0 = CAS, 1 = FAA
  std::uint64_t compare_add = 0;
  std::uint64_t swap = 0;

  // Read/atomic bookkeeping token: requester-side WQE identity echoed in
  // responses, so retried requests match up.
  std::uint64_t resp_token = 0;

  common::PayloadRef payload;

  /// Flat frame (header + length-prefixed payload copy). Compat path.
  common::Bytes serialize() const;
  /// Fast path: header (incl. payload length) into the packet's inline
  /// buffer; the payload travels separately as Packet::body.
  void serialize_header(net::FrameHeader& out) const;

  /// Parse a flat frame (copies the payload out of `data`).
  static common::Result<WirePacket> parse(std::span<const std::uint8_t> data);
  /// Fast path: decode the inline header and adopt `raw.body` without
  /// copying. Falls back to flat-frame parsing when the header is empty
  /// (raw senders put a full serialize()d frame in the body).
  static common::Result<WirePacket> parse(net::Packet&& raw);
};

}  // namespace migr::rnic
