// Core verbs-level types mirroring the ib_verbs surface the paper
// manipulates: QP numbers and access keys are NIC-assigned opaque values —
// the exact values MigrRDMA must virtualize because they differ between the
// migration source's NIC and the destination's.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>

#include "net/fabric.hpp"
#include "proc/address_space.hpp"

namespace migr::rnic {

/// 24-bit queue-pair number, unique per device (InfiniBand spec §3.5.3).
using Qpn = std::uint32_t;
constexpr Qpn kQpnMask = 0xFF'FFFF;

/// Local / remote memory access keys, NIC-assigned.
using Lkey = std::uint32_t;
using Rkey = std::uint32_t;

/// Packet sequence number (24-bit in hardware; we keep 64-bit monotonic
/// internally and never wrap — simpler and equivalent for simulation).
using Psn = std::uint64_t;

using Handle = std::uint32_t;  // context-local object handle (PD/CQ/...)

enum class QpType : std::uint8_t { rc, ud };

/// InfiniBand QP state machine (spec §10.3).
enum class QpState : std::uint8_t { reset, init, rtr, rts, sqd, sqe, err };

/// MR/MW access permissions, same semantics as IBV_ACCESS_*.
enum Access : std::uint32_t {
  kAccessNone = 0,
  kAccessLocalWrite = 1u << 0,
  kAccessRemoteWrite = 1u << 1,
  kAccessRemoteRead = 1u << 2,
  kAccessRemoteAtomic = 1u << 3,
  kAccessMwBind = 1u << 4,
};

enum class WrOpcode : std::uint8_t {
  send,
  send_with_imm,
  rdma_write,
  rdma_write_with_imm,
  rdma_read,
  atomic_cmp_and_swp,
  atomic_fetch_and_add,
  bind_mw,
};

inline bool is_one_sided(WrOpcode op) {
  return op == WrOpcode::rdma_write || op == WrOpcode::rdma_write_with_imm ||
         op == WrOpcode::rdma_read || op == WrOpcode::atomic_cmp_and_swp ||
         op == WrOpcode::atomic_fetch_and_add;
}
inline bool is_two_sided(WrOpcode op) {
  return op == WrOpcode::send || op == WrOpcode::send_with_imm;
}

enum class CqeStatus : std::uint8_t {
  success,
  local_protection_err,  // bad lkey / unmapped buffer
  remote_access_err,     // bad rkey on the responder
  retry_exceeded,        // peer unreachable
  wr_flush_err,          // QP transitioned to error, WR flushed
};

enum class CqeOpcode : std::uint8_t {
  send,
  rdma_write,
  rdma_read,
  atomic,
  bind_mw,
  recv,  // receive completion (two-sided or write-with-imm)
};

/// QP queue capacities.
struct QpCaps {
  std::uint32_t max_send_wr = 128;
  std::uint32_t max_recv_wr = 128;
};

/// Scatter/gather element.
struct Sge {
  proc::VirtAddr addr = 0;
  std::uint32_t length = 0;
  Lkey lkey = 0;
};

/// Fixed-capacity inline scatter/gather list. Every post copies its WR into
/// a device ring, so a heap-backed vector here costs an allocation per post
/// on the steady-state message path. Capacity is double the device's 16-SGE
/// validation limit so an over-limit post is still representable (and
/// rejected with a Status by validate_sges) instead of asserting here.
class SgeList {
 public:
  static constexpr std::size_t kCapacity = 32;

  SgeList() = default;
  SgeList(std::initializer_list<Sge> init) { *this = init; }
  SgeList& operator=(std::initializer_list<Sge> init) {
    assert(init.size() <= kCapacity);
    len_ = 0;
    for (const Sge& s : init) buf_[len_++] = s;
    return *this;
  }

  std::size_t size() const noexcept { return len_; }
  bool empty() const noexcept { return len_ == 0; }
  void clear() noexcept { len_ = 0; }
  void push_back(const Sge& s) noexcept {
    assert(len_ < kCapacity);
    buf_[len_++] = s;
  }
  /// vector-compatible resize: grown entries are default Sge{}.
  void resize(std::size_t n) noexcept {
    assert(n <= kCapacity);
    for (std::size_t i = len_; i < n; ++i) buf_[i] = Sge{};
    len_ = static_cast<std::uint32_t>(n);
  }

  Sge* data() noexcept { return buf_.data(); }
  const Sge* data() const noexcept { return buf_.data(); }
  Sge* begin() noexcept { return buf_.data(); }
  Sge* end() noexcept { return buf_.data() + len_; }
  const Sge* begin() const noexcept { return buf_.data(); }
  const Sge* end() const noexcept { return buf_.data() + len_; }
  Sge& operator[](std::size_t i) noexcept { return buf_[i]; }
  const Sge& operator[](std::size_t i) const noexcept { return buf_[i]; }

  operator std::span<Sge>() noexcept { return {buf_.data(), len_}; }
  operator std::span<const Sge>() const noexcept { return {buf_.data(), len_}; }

 private:
  std::array<Sge, kCapacity> buf_{};
  std::uint32_t len_ = 0;
};

/// Send-queue work request (ibv_send_wr).
struct SendWr {
  std::uint64_t wr_id = 0;
  WrOpcode opcode = WrOpcode::send;
  SgeList sge;
  bool signaled = true;

  // RDMA one-sided
  proc::VirtAddr remote_addr = 0;
  Rkey rkey = 0;

  // Atomics (8-byte operand at remote_addr)
  std::uint64_t compare_add = 0;
  std::uint64_t swap = 0;

  // Immediate data
  std::uint32_t imm = 0;

  // UD addressing (address handle fields)
  net::HostId remote_host = 0;
  Qpn remote_qpn = 0;

  std::uint64_t total_length() const {
    std::uint64_t n = 0;
    for (const auto& s : sge) n += s.length;
    return n;
  }
};

/// Receive-queue work request (ibv_recv_wr).
struct RecvWr {
  std::uint64_t wr_id = 0;
  SgeList sge;

  std::uint64_t total_length() const {
    std::uint64_t n = 0;
    for (const auto& s : sge) n += s.length;
    return n;
  }
};

/// Completion-queue entry (ibv_wc).
struct Cqe {
  std::uint64_t wr_id = 0;
  CqeStatus status = CqeStatus::success;
  CqeOpcode opcode = CqeOpcode::send;
  std::uint32_t byte_len = 0;
  Qpn qpn = 0;  // local QP the completed WR belongs to — the field MigrRDMA
                // must translate physical->virtual on every poll (§3.3)
  bool has_imm = false;
  std::uint32_t imm = 0;
  Qpn src_qp = 0;  // source QPN for UD receives
};

}  // namespace migr::rnic
