// The simulated RDMA NIC.
//
// One Device per host, attached to the fabric's data plane. It implements
// the verbs object model (PD / MR / CQ / QP / SRQ / completion channel /
// device ["on-chip"] memory / memory window), an RC transport with MTU
// packetization, cumulative ACKs and go-back-N retransmission, plus UD
// datagrams, one-sided READ/WRITE and ATOMICs executed against the owning
// process's address space (DMA that dirties pages behind the application).
//
// Deliberate design constraint (the premise of the paper): the device
// exposes NO interface to dump or inject the internal transport state of a
// live QP — PSNs, in-flight WQE progress, and responder assembly state are
// private. The only externally visible values are the ones real ibverbs
// exposes (QPNs, keys, CQEs, port counters) plus the driver-level queue
// occupancy counters MigrRDMA's indirection layer shares with its library
// (paper §3.4). An optional "migration-aware firmware" mode used by the
// MigrOS ablation bench is the single, clearly-marked exception.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/ring.hpp"
#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proc/process.hpp"
#include "rnic/cost_model.hpp"
#include "rnic/types.hpp"
#include "rnic/wire.hpp"

namespace migr::rnic {

class Device;
class Context;

struct DeviceConfig {
  std::uint32_t max_qp = 16384;   // "modern RNICs support more than 10K QPs"
  std::uint32_t max_cqe = 1 << 20;
  std::uint32_t max_qp_wr = 16384;
  std::uint64_t device_memory_bytes = 256 * 1024;  // on-chip memory pool
  CostModel costs;
  // NAK-storm anomaly trigger: when this device's responders emit at least
  // `nak_storm_threshold` NAKs within one `nak_storm_window`, the flight
  // recorder (if enabled) dumps the surrounding packet window. 0 disables.
  std::uint32_t nak_storm_threshold = 64;
  sim::DurationNs nak_storm_window = sim::msec(1);
  // MigrOS ablation only: allows extract/inject of live QP transport state
  // as a modified RNIC would. Commodity mode (default) refuses.
  bool migration_aware_hw = false;
};

// ---------------------------------------------------------------------------
// Verbs objects. Applications hold Handles; the structs live in the Context.
// ---------------------------------------------------------------------------

struct Pd {
  Handle handle = 0;
};

struct Mr {
  Handle handle = 0;
  Handle pd = 0;
  proc::VirtAddr addr = 0;
  std::uint64_t length = 0;
  std::uint32_t access = 0;
  Lkey lkey = 0;  // NIC-assigned, non-dense: differs across devices
  Rkey rkey = 0;
};

struct CompChannel {
  Handle handle = 0;
  std::deque<Handle> pending;        // CQs with undelivered events
  std::uint64_t events_delivered = 0;
  std::uint64_t events_acked = 0;
};

struct Cq {
  Handle handle = 0;
  common::Ring<Cqe> entries;
  Handle channel = 0;      // 0 = none
  bool armed = false;      // req_notify_cq armed
  bool overflowed = false;

  explicit Cq(std::size_t capacity) : entries(capacity) {}
};

struct Srq {
  Handle handle = 0;
  Handle pd = 0;
  common::Ring<RecvWr> wqes;

  explicit Srq(std::size_t capacity) : wqes(capacity) {}
};

/// On-chip ("device") memory allocation, mapped into the process VA by the
/// driver. Because the mapping is backed by ordinary simulated pages, data
/// written through it flows through migration like any other memory; what is
/// special is only its *allocation* lifecycle (paper Table 1, row 2).
struct DeviceMemory {
  Handle handle = 0;
  std::uint64_t length = 0;
  proc::VirtAddr mapped_at = 0;
};

/// Memory window: a narrower remote-access grant layered over an MR.
struct MemoryWindow {
  Handle handle = 0;
  Handle pd = 0;
  Rkey rkey = 0;  // 0 until bound
  // Bound range:
  Lkey mr_lkey = 0;
  proc::VirtAddr addr = 0;
  std::uint64_t length = 0;
  std::uint32_t access = 0;
};

struct QpInitAttr {
  QpType type = QpType::rc;
  Handle pd = 0;
  Handle send_cq = 0;
  Handle recv_cq = 0;
  Handle srq = 0;  // 0 = none
  QpCaps caps;
};

// Internal send-queue element: the WR plus transmit/ack progress.
struct SendWqe {
  SendWr wr;
  std::uint64_t bytes = 0;     // total payload length
  std::uint32_t npkts = 0;     // packets this WQE occupies in PSN space
  // Message staging buffer: allocated at first emission; each packet's
  // payload is a zero-copy slice of it. Retransmissions re-DMA into it.
  common::PayloadRef msg_buf;
  bool psn_assigned = false;
  Psn first_psn = 0;
  std::uint32_t emitted_pkts = 0;   // transmit progress (rewound by go-back-N)
  std::uint64_t resp_received = 0;  // READ: response bytes landed
  bool resp_done = false;           // ATOMIC: response landed
  bool executed = false;            // bind_mw: executed locally
};

struct Qp {
  Qpn qpn = 0;
  QpType type = QpType::rc;
  QpState state = QpState::reset;
  Handle pd = 0;
  Handle send_cq = 0;
  Handle recv_cq = 0;
  Handle srq = 0;
  QpCaps caps;
  Context* ctx = nullptr;

  // RC connection identity.
  net::HostId remote_host = 0;
  Qpn remote_qpn = 0;
  // Fast-path fabric handle for the connection, resolved at RTR (RC only);
  // stable for the fabric's lifetime.
  net::Fabric::Route* route = nullptr;

  // --- requester (send) engine ---
  common::Ring<SendWqe> sq;
  Psn next_psn = 0;        // next unassigned PSN
  Psn acked_psn = 0;       // cumulative: all request pkts with psn < acked_psn are acked
  std::uint64_t emit_cursor = 0;  // absolute SQ index of next WQE to (continue) emitting
  sim::TimeNs last_progress = 0;
  int retries = 0;
  // Lifetime go-back-N rewinds on this QP (retry timer + NAK paths). The
  // per-port counter aggregates across QPs; this one lets per-guest SLI
  // attribution poll retransmits for exactly the QPs a guest owns.
  std::uint64_t retransmits = 0;
  bool in_pump = false;    // queued in the device's transmit scheduler
  // Live retransmit timers for this QP. On the fault-free fast path one
  // timer covers the whole SQ (it re-arms itself until the queue drains),
  // so per-packet arming is deduplicated; with faults active every
  // emission arms its own timer, exactly as before.
  std::uint32_t rtx_outstanding = 0;

  // --- responder (receive) engine ---
  common::Ring<RecvWr> rq;
  Psn expected_psn = 0;
  Psn last_nak_psn = static_cast<Psn>(-1);
  // Assembly state for the in-progress inbound SEND message.
  bool recv_active = false;
  RecvWr recv_cur;
  std::uint32_t recv_msg_len = 0;
  std::uint32_t recv_written = 0;
  // Bounded replay cache for idempotent atomic retries.
  std::map<Psn, std::uint64_t> atomic_cache;

  // --- driver-visible accounting (shared with MigrRDMA Lib, §3.4) ---
  // Two-sided verbs posted on this QP since creation, and RECV completions
  // delivered, maintained so wait-before-stop can compare n_sent / n_recv.
  std::uint64_t n_sent = 0;
  std::uint64_t n_recv = 0;
  // Completed (not merely acked) SQ WQEs pop from sq; sq.size() is thus the
  // in-flight send window "capped by the head and tail pointers" (§3.4).

  Qp(const QpCaps& c)
      : caps(c), sq(c.max_send_wr), rq(c.max_recv_wr == 0 ? 1 : c.max_recv_wr) {}
};

struct PortCounters {
  // mlx5 ethtool-style byte counters; Fig. 5 samples these every 5 ms.
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t out_of_sequence = 0;  // gap events seen by responders
  std::uint64_t retransmits = 0;      // go-back-N rewinds
};

/// Opaque QP transport state blob for the MigrOS ablation (migration-aware
/// firmware). Not available on commodity devices.
struct MigrosQpState {
  Qpn qpn = 0;
  Psn next_psn = 0;
  Psn acked_psn = 0;
  Psn expected_psn = 0;
  std::uint64_t inflight_wqes = 0;
};

// ---------------------------------------------------------------------------

class Context {
 public:
  Context(Device& dev, proc::SimProcess& proc);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  Device& device() noexcept { return dev_; }
  proc::SimProcess& process() noexcept { return proc_; }

  // ---- control path ----
  common::Result<Handle> alloc_pd();
  common::Status dealloc_pd(Handle pd);

  common::Result<Mr> reg_mr(Handle pd, proc::VirtAddr addr, std::uint64_t length,
                            std::uint32_t access);
  common::Status dereg_mr(Lkey lkey);

  common::Result<Handle> create_comp_channel();
  common::Status destroy_comp_channel(Handle ch);

  common::Result<Handle> create_cq(std::uint32_t capacity, Handle channel = 0);
  common::Status destroy_cq(Handle cq);

  common::Result<Handle> create_srq(Handle pd, std::uint32_t capacity);
  common::Status destroy_srq(Handle srq);

  common::Result<Qpn> create_qp(const QpInitAttr& attr);
  common::Status destroy_qp(Qpn qpn);
  common::Status modify_qp_init(Qpn qpn);
  common::Status modify_qp_rtr(Qpn qpn, net::HostId remote_host, Qpn remote_qpn,
                               Psn expected_psn);
  common::Status modify_qp_rts(Qpn qpn, Psn initial_psn);
  common::Status modify_qp_err(Qpn qpn);
  common::Status modify_qp_reset(Qpn qpn);

  common::Result<DeviceMemory> alloc_dm(std::uint64_t length);
  /// Restore-path variant: account a device-memory allocation against an
  /// already-established process mapping (used when the migration tooling
  /// restored the DM-backed pages before the driver re-allocated the DM).
  common::Result<DeviceMemory> adopt_dm(std::uint64_t length, proc::VirtAddr existing_va);
  common::Status free_dm(Handle dm);

  common::Result<Handle> alloc_mw(Handle pd);
  common::Status dealloc_mw(Handle mw);

  // ---- data path ----
  common::Status post_send(Qpn qpn, SendWr wr);
  common::Status post_recv(Qpn qpn, RecvWr wr);
  common::Status post_srq_recv(Handle srq, RecvWr wr);
  /// Returns the number of CQEs written to `out`.
  int poll_cq(Handle cq, std::span<Cqe> out);
  common::Status req_notify_cq(Handle cq);
  /// Non-blocking get_cq_event: which CQ fired, if any event is pending.
  std::optional<Handle> get_cq_event(Handle channel);
  void ack_cq_events(Handle channel, std::uint32_t n);

  /// Bind a memory window on a QP's send queue (type-2 bind semantics:
  /// ordered with other SQ work, completion reported via the send CQ).
  /// Returns the new rkey.
  common::Result<Rkey> bind_mw(Qpn qpn, Handle mw, Lkey mr_lkey, proc::VirtAddr addr,
                               std::uint64_t length, std::uint32_t access,
                               std::uint64_t wr_id);

  // ---- queries ----
  common::Result<QpState> query_qp_state(Qpn qpn) const;
  const Qp* find_qp(Qpn qpn) const;
  Qp* find_qp_mut(Qpn qpn);
  const Mr* find_mr(Lkey lkey) const;
  const Srq* find_srq(Handle h) const;
  const Cq* find_cq(Handle h) const;
  Cq* find_cq_mut(Handle h);

  /// Async affiliated events (QP moved to error by transport failure).
  using AsyncEventHandler = std::function<void(Qpn)>;
  void set_qp_error_handler(AsyncEventHandler fn) { qp_error_handler_ = std::move(fn); }

  /// One-shot hook fired on the next CQE delivered to ANY CQ of this
  /// context, then discarded. The blackout profiler uses it to timestamp the
  /// first post-resume completion (the moment the migrated guest observably
  /// makes progress again) without polling.
  void watch_next_cqe(std::function<void()> fn) { next_cqe_watch_ = std::move(fn); }

  /// Total accumulated control-path cost (what a caller measuring wall time
  /// of setup code would have waited for). The migration orchestrator reads
  /// and resets this to convert the synchronous sim API into elapsed time.
  sim::DurationNs take_ctrl_cost() {
    auto c = ctrl_cost_;
    ctrl_cost_ = 0;
    return c;
  }

 private:
  friend class Device;

  void charge(sim::DurationNs cost);
  void push_cqe(Handle cq_handle, Cqe cqe);

  Device& dev_;
  proc::SimProcess& proc_;
  Handle next_handle_ = 1;

  std::unordered_map<Handle, Pd> pds_;
  std::unordered_map<Lkey, Mr> mrs_;  // keyed by lkey
  std::unordered_map<Handle, std::unique_ptr<Cq>> cqs_;
  std::unordered_map<Handle, CompChannel> channels_;
  std::unordered_map<Handle, std::unique_ptr<Srq>> srqs_;
  std::unordered_map<Qpn, std::unique_ptr<Qp>> qps_;
  std::unordered_map<Handle, DeviceMemory> dms_;
  std::unordered_map<Handle, MemoryWindow> mws_;

  AsyncEventHandler qp_error_handler_;
  std::function<void()> next_cqe_watch_;
  sim::DurationNs ctrl_cost_ = 0;
};

// ---------------------------------------------------------------------------

class Device {
 public:
  Device(sim::EventLoop& loop, net::Fabric& fabric, net::HostId host,
         DeviceConfig config = {}, std::uint64_t seed = 7);
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  common::Result<Context*> open(proc::SimProcess& proc);
  void close(Context* ctx);

  net::HostId host() const noexcept { return host_; }
  const DeviceConfig& config() const noexcept { return config_; }
  const CostModel& costs() const noexcept { return config_.costs; }
  sim::EventLoop& loop() noexcept { return loop_; }
  net::Fabric& fabric() noexcept { return fabric_; }

  const PortCounters& counters() const noexcept { return counters_; }

  /// Control-path pressure window: while the NIC's command interface is
  /// busy (e.g. a partner pre-establishing hundreds of QPs during partial
  /// restore), the data path pays a small contention penalty — the effect
  /// Kong et al. measured and Fig. 5 shows as brownout dips.
  void add_ctrl_pressure(sim::DurationNs duration);
  bool under_ctrl_pressure() const { return loop_.now() < ctrl_pressure_until_; }

  std::uint32_t qp_count() const noexcept { return static_cast<std::uint32_t>(qp_routes_.size()); }
  /// First QPN this device hands out (the driver knows its own allocation
  /// base; MigrRDMA's indirection layer indexes its translation array from
  /// it).
  Qpn qpn_base() const noexcept { return qpn_base_; }
  std::uint64_t device_memory_free() const noexcept { return dm_free_; }

  /// Stuck-QP audit: RC QPs in RTS that hold PSN-assigned unacked work and
  /// have made no progress for at least `stale_after`. A healthy requester
  /// keeps a retransmit timer alive for such QPs, so they either complete
  /// or flush to error — the fault-injection property tests drain the loop
  /// and assert this comes back empty.
  std::vector<Qpn> audit_stuck_qps(sim::DurationNs stale_after) const;

  // ---- MigrOS ablation (migration-aware firmware only) ----
  common::Result<MigrosQpState> migros_extract_qp(Qpn qpn);
  common::Status migros_inject_qp(Qpn qpn, const MigrosQpState& st);
  /// Firmware cost per QP of extract/inject/stop, per §6's analysis.
  sim::DurationNs migros_per_qp_cost() const { return sim::usec(120); }

 private:
  friend class Context;

  Qpn alloc_qpn();
  std::uint32_t alloc_key();

  // Packet handling (responder + requester ack processing).
  void handle_packet(net::Packet&& raw);
  void on_request(Qp& qp, WirePacket& pkt);
  void on_request_read(Qp& qp, const WirePacket& pkt);
  void reply_remote_error(Qp& qp);
  void on_ack(Qp& qp, const WirePacket& pkt);
  void on_read_resp(Qp& qp, const WirePacket& pkt);
  void on_atomic_resp(Qp& qp, const WirePacket& pkt);
  void send_ack(Qp& qp);
  void send_nak(Qp& qp, bool rnr = false);

  // Remote-key validation across every context on this device.
  struct RkeyTarget {
    Context* ctx = nullptr;
    proc::VirtAddr addr = 0;
    std::uint64_t length = 0;
    std::uint32_t access = 0;
    Handle pd = 0;
  };
  const RkeyTarget* find_rkey(Rkey rkey) const;

  // Transmit scheduler: round-robin over QPs with pending work, one packet
  // per slot, paced by the port's serialization rate.
  void kick(Qp& qp);
  void pump();
  void schedule_pump(sim::TimeNs at);
  bool emit_next_packet(Qp& qp);  // returns true if a packet was emitted
  // Coalesced emission: stream up to kMaxBurst in-order packets of the
  // cursor WQE as one fabric train. Only taken when this QP is alone in
  // the scheduler and the fabric's fault-free fast path holds.
  bool emit_burst(Qp& qp);
  void transmit(WirePacket pkt, net::HostId dst, net::Fabric::Route* route);

  // Rolls the NAK-storm window and fires the flight-recorder dump when the
  // threshold trips (then re-arms on a fresh window).
  void note_nak_for_storm(const Qp& qp);

  void complete_head_wqes(Qp& qp);
  void flush_qp(Qp& qp, bool notify);
  void arm_retransmit_timer(Qp& qp);
  void on_retransmit_timer(Qpn qpn);
  void deliver_recv_cqe(Qp& qp, const RecvWr& wr, std::uint32_t byte_len, bool has_imm,
                        std::uint32_t imm, Qpn src_qp, CqeOpcode op = CqeOpcode::recv);
  common::Status dma_read(Context& ctx, std::span<const Sge> sge, std::uint64_t offset,
                          std::span<std::uint8_t> out);
  common::Status dma_write(Context& ctx, std::span<const Sge> sge, std::uint64_t offset,
                           std::span<const std::uint8_t> in);
  common::Status validate_sges(Context& ctx, std::span<const Sge> sge, bool need_write);

  sim::EventLoop& loop_;
  net::Fabric& fabric_;
  net::HostId host_;
  DeviceConfig config_;
  common::Rng rng_;

  std::vector<std::unique_ptr<Context>> contexts_;
  // Device-wide QPN routing (QPNs are unique per device).
  std::unordered_map<Qpn, Qp*> qp_routes_;
  std::unordered_map<Rkey, RkeyTarget> rkeys_;

  Qpn next_qpn_;
  Qpn qpn_base_ = 0;
  std::uint32_t key_salt_;
  std::uint32_t next_key_index_ = 1;

  // GrowRing, not deque: the rotation pops and re-pushes constantly, and a
  // deque allocates a fresh chunk every ~128 such cycles in steady state.
  common::GrowRing<Qpn> pump_queue_;
  bool pump_scheduled_ = false;
  // Cached pointer to this port's egress clock (no hash lookup per pump).
  const sim::TimeNs* egress_clock_ = nullptr;
  std::uint64_t dm_free_;
  sim::TimeNs ctrl_pressure_until_ = 0;
  sim::TimeNs nak_window_start_ = 0;
  std::uint32_t nak_window_count_ = 0;

  PortCounters counters_;

  // Telemetry: registry instruments resolved once at construction (labelled
  // host=<h>) so data-path increments are plain adds, plus trace instants
  // for QP state transitions.
  struct Metrics {
    obs::Counter* wqe_posted = nullptr;        // send-side WQEs accepted
    obs::Counter* recv_posted = nullptr;       // RQ/SRQ WQEs accepted
    obs::Counter* cqe_delivered = nullptr;
    obs::Counter* retransmits = nullptr;       // go-back-N rewinds
    obs::Counter* nak_tx = nullptr;            // PSN NAKs sent by responders
    obs::Counter* out_of_sequence = nullptr;   // PSN gap events observed
    obs::Counter* qp_to_init = nullptr;
    obs::Counter* qp_to_rtr = nullptr;
    obs::Counter* qp_to_rts = nullptr;
    obs::Counter* qp_to_err = nullptr;
    obs::Counter* qp_to_reset = nullptr;
  };
  Metrics metrics_;
  std::uint64_t port_source_id_ = 0;

  void note_qp_transition(Qpn qpn, QpState to);
};

}  // namespace migr::rnic
