#include "rnic/wire.hpp"

namespace migr::rnic {

using common::ByteReader;
using common::ByteWriter;

namespace {

inline void put_le(std::uint8_t*& p, std::uint64_t v, int nbytes) {
  for (int i = 0; i < nbytes; ++i) *p++ = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint64_t get_le(const std::uint8_t*& p, int nbytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < nbytes; ++i) v |= static_cast<std::uint64_t>(*p++) << (8 * i);
  return v;
}

}  // namespace

common::Bytes WirePacket::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(dst_qpn);
  w.u32(src_qpn);
  w.u64(psn);
  std::uint8_t flags = 0;
  if (first) flags |= 1;
  if (last) flags |= 2;
  if (has_imm) flags |= 4;
  w.u8(flags);
  w.u32(imm);
  w.u64(remote_addr);
  w.u32(rkey);
  w.u32(msg_len);
  w.u32(offset);
  w.u8(atomic_op);
  w.u64(compare_add);
  w.u64(swap);
  w.u64(resp_token);
  w.bytes(payload.span());
  return std::move(w).take();
}

void WirePacket::serialize_header(net::FrameHeader& out) const {
  // Identical field order and encoding to serialize(); the u32 payload
  // length that serialize() emits as the bytes() prefix closes the header,
  // so header-bytes + body == the flat frame, byte for byte.
  out.resize(kHeaderBytes);
  std::uint8_t* p = out.data();
  *p++ = static_cast<std::uint8_t>(op);
  put_le(p, dst_qpn, 4);
  put_le(p, src_qpn, 4);
  put_le(p, psn, 8);
  std::uint8_t flags = 0;
  if (first) flags |= 1;
  if (last) flags |= 2;
  if (has_imm) flags |= 4;
  *p++ = flags;
  put_le(p, imm, 4);
  put_le(p, remote_addr, 8);
  put_le(p, rkey, 4);
  put_le(p, msg_len, 4);
  put_le(p, offset, 4);
  *p++ = atomic_op;
  put_le(p, compare_add, 8);
  put_le(p, swap, 8);
  put_le(p, resp_token, 8);
  put_le(p, payload.size(), 4);
}

common::Result<WirePacket> WirePacket::parse(std::span<const std::uint8_t> data) {
  ByteReader r{data};
  WirePacket p;
  MIGR_ASSIGN_OR_RETURN(auto op, r.u8());
  if (op > static_cast<std::uint8_t>(PktOp::nak)) {
    return common::err(common::Errc::invalid_argument, "bad packet opcode");
  }
  p.op = static_cast<PktOp>(op);
  MIGR_ASSIGN_OR_RETURN(p.dst_qpn, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.src_qpn, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.psn, r.u64());
  MIGR_ASSIGN_OR_RETURN(auto flags, r.u8());
  p.first = (flags & 1) != 0;
  p.last = (flags & 2) != 0;
  p.has_imm = (flags & 4) != 0;
  MIGR_ASSIGN_OR_RETURN(p.imm, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.remote_addr, r.u64());
  MIGR_ASSIGN_OR_RETURN(p.rkey, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.msg_len, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.offset, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.atomic_op, r.u8());
  MIGR_ASSIGN_OR_RETURN(p.compare_add, r.u64());
  MIGR_ASSIGN_OR_RETURN(p.swap, r.u64());
  MIGR_ASSIGN_OR_RETURN(p.resp_token, r.u64());
  MIGR_ASSIGN_OR_RETURN(auto body, r.bytes());
  p.payload = common::PayloadRef::copy_of(body);
  return p;
}

common::Result<WirePacket> WirePacket::parse(net::Packet&& raw) {
  if (raw.header.empty()) return parse(raw.body.span());
  if (raw.header.size() != kHeaderBytes) {
    return common::err(common::Errc::invalid_argument, "bad packet header size");
  }
  const std::uint8_t* p = raw.header.data();
  WirePacket pkt;
  const auto op = static_cast<std::uint8_t>(*p++);
  if (op > static_cast<std::uint8_t>(PktOp::nak)) {
    return common::err(common::Errc::invalid_argument, "bad packet opcode");
  }
  pkt.op = static_cast<PktOp>(op);
  pkt.dst_qpn = static_cast<Qpn>(get_le(p, 4));
  pkt.src_qpn = static_cast<Qpn>(get_le(p, 4));
  pkt.psn = static_cast<Psn>(get_le(p, 8));
  const auto flags = static_cast<std::uint8_t>(*p++);
  pkt.first = (flags & 1) != 0;
  pkt.last = (flags & 2) != 0;
  pkt.has_imm = (flags & 4) != 0;
  pkt.imm = static_cast<std::uint32_t>(get_le(p, 4));
  pkt.remote_addr = static_cast<proc::VirtAddr>(get_le(p, 8));
  pkt.rkey = static_cast<Rkey>(get_le(p, 4));
  pkt.msg_len = static_cast<std::uint32_t>(get_le(p, 4));
  pkt.offset = static_cast<std::uint32_t>(get_le(p, 4));
  pkt.atomic_op = static_cast<std::uint8_t>(*p++);
  pkt.compare_add = get_le(p, 8);
  pkt.swap = get_le(p, 8);
  pkt.resp_token = get_le(p, 8);
  const auto declared_len = static_cast<std::uint32_t>(get_le(p, 4));
  if (declared_len != raw.body.size()) {
    return common::err(common::Errc::invalid_argument, "payload length mismatch");
  }
  pkt.payload = std::move(raw.body);
  return pkt;
}

}  // namespace migr::rnic
