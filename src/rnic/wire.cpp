#include "rnic/wire.hpp"

namespace migr::rnic {

using common::ByteReader;
using common::ByteWriter;

common::Bytes WirePacket::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(dst_qpn);
  w.u32(src_qpn);
  w.u64(psn);
  std::uint8_t flags = 0;
  if (first) flags |= 1;
  if (last) flags |= 2;
  if (has_imm) flags |= 4;
  w.u8(flags);
  w.u32(imm);
  w.u64(remote_addr);
  w.u32(rkey);
  w.u32(msg_len);
  w.u32(offset);
  w.u8(atomic_op);
  w.u64(compare_add);
  w.u64(swap);
  w.u64(resp_token);
  w.bytes(payload);
  return std::move(w).take();
}

common::Result<WirePacket> WirePacket::parse(std::span<const std::uint8_t> data) {
  ByteReader r{data};
  WirePacket p;
  MIGR_ASSIGN_OR_RETURN(auto op, r.u8());
  if (op > static_cast<std::uint8_t>(PktOp::nak)) {
    return common::err(common::Errc::invalid_argument, "bad packet opcode");
  }
  p.op = static_cast<PktOp>(op);
  MIGR_ASSIGN_OR_RETURN(p.dst_qpn, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.src_qpn, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.psn, r.u64());
  MIGR_ASSIGN_OR_RETURN(auto flags, r.u8());
  p.first = (flags & 1) != 0;
  p.last = (flags & 2) != 0;
  p.has_imm = (flags & 4) != 0;
  MIGR_ASSIGN_OR_RETURN(p.imm, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.remote_addr, r.u64());
  MIGR_ASSIGN_OR_RETURN(p.rkey, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.msg_len, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.offset, r.u32());
  MIGR_ASSIGN_OR_RETURN(p.atomic_op, r.u8());
  MIGR_ASSIGN_OR_RETURN(p.compare_add, r.u64());
  MIGR_ASSIGN_OR_RETURN(p.swap, r.u64());
  MIGR_ASSIGN_OR_RETURN(p.resp_token, r.u64());
  MIGR_ASSIGN_OR_RETURN(p.payload, r.bytes());
  return p;
}

}  // namespace migr::rnic
