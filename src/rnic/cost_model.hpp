// Time-cost model for RNIC control-path and data-path operations. The
// absolute values are calibrated to the magnitudes reported in the
// literature the paper cites (KRCORE: RC connection setup takes
// milliseconds; MigrOS: CRIU dump cost grows with memory-structure
// complexity); the *relationships* between them (what scales with #QPs,
// what with bytes) are what the reproduced figures depend on.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace migr::rnic {

struct CostModel {
  // ---- control path (driver/NIC command interface) ----
  sim::DurationNs open_device = sim::usec(20);
  sim::DurationNs alloc_pd = sim::usec(3);
  sim::DurationNs create_cq = sim::usec(15);
  sim::DurationNs create_qp = sim::usec(40);
  // Each state transition is a NIC firmware command; three of them plus the
  // out-of-band QPN/PSN exchange is why "setting up an RDMA connection
  // takes several milliseconds" (paper §2.2, citing KRCORE).
  sim::DurationNs modify_qp = sim::usec(90);
  sim::DurationNs destroy_qp = sim::usec(25);
  sim::DurationNs create_srq = sim::usec(20);
  sim::DurationNs reg_mr_base = sim::usec(25);
  sim::DurationNs reg_mr_per_page = 15;  // ~15 ns per 4 KiB page pinned
  sim::DurationNs dereg_mr = sim::usec(10);
  sim::DurationNs alloc_mw = sim::usec(5);
  sim::DurationNs alloc_dm = sim::usec(8);

  // ---- data path ----
  // Fixed NIC processing latency per WQE before its first packet hits the
  // wire; this is the per-WR term that dominates wait-before-stop for
  // small messages (Fig. 4b's 6x-theory point at 512 B).
  sim::DurationNs wqe_overhead = 250;
  // Responder-side per-packet processing.
  sim::DurationNs rx_packet_overhead = 60;
  // Go-back-N retransmission timeout and retry budget. Matches the common
  // ibverbs configuration (timeout exponent 14 => 4.096 us * 2^14 ≈ 67 ms,
  // 7 retries): lost packets are normally recovered by the fast NAK path;
  // the timer is a last resort, so it must tolerate long fair-queueing
  // delays when thousands of QPs share the line rate.
  sim::DurationNs retransmit_timeout = sim::msec(50);
  int retry_count = 7;

  sim::DurationNs reg_mr(std::uint64_t bytes) const {
    return reg_mr_base + reg_mr_per_page * static_cast<sim::DurationNs>((bytes + 4095) / 4096);
  }
  /// Full RC connection restore: create + INIT + RTR + RTS transitions.
  sim::DurationNs restore_qp() const { return create_qp + 3 * modify_qp; }
};

}  // namespace migr::rnic
