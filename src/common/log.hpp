// Minimal leveled logger. Logging inside the simulator carries the simulated
// timestamp (when provided by the caller) so traces read in sim time, not
// wall time. Off by default in tests/benches; enable with Logger::set_level.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace migr::common {

enum class LogLevel : std::uint8_t { trace = 0, debug, info, warn, error, off };

std::string_view log_level_name(LogLevel lvl) noexcept;

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel lvl) noexcept { level_ = lvl; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel lvl) const noexcept { return lvl >= level_ && level_ != LogLevel::off; }

  /// Replace the output sink (default: stderr). Used by tests to capture logs.
  void set_sink(Sink sink);

  void log(LogLevel lvl, std::string_view msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::warn;
  Sink sink_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel lvl, const char* file, int line);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

#define MIGR_LOG(lvl)                                                      \
  if (!::migr::common::Logger::instance().enabled(lvl)) {                  \
  } else                                                                   \
    ::migr::common::detail::LogLine(lvl, __FILE__, __LINE__)

#define MIGR_TRACE() MIGR_LOG(::migr::common::LogLevel::trace)
#define MIGR_DEBUG() MIGR_LOG(::migr::common::LogLevel::debug)
#define MIGR_INFO() MIGR_LOG(::migr::common::LogLevel::info)
#define MIGR_WARN() MIGR_LOG(::migr::common::LogLevel::warn)
#define MIGR_ERROR() MIGR_LOG(::migr::common::LogLevel::error)

}  // namespace migr::common
