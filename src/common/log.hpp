// Minimal leveled logger. Logging inside the simulator carries the simulated
// timestamp (from an installed SimTimeSource, or passed explicitly with
// MIGR_LOG_AT) so traces read in sim time, not wall time. Off by default in
// tests/benches; enable with Logger::set_level.
//
// Thread-safe: level reads are atomic; sink/time-source swapping and log()
// itself are serialized by a mutex, so a test capturing logs while another
// thread emits cannot race.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

#include "common/clock.hpp"

namespace migr::common {

enum class LogLevel : std::uint8_t { trace = 0, debug, info, warn, error, off };

std::string_view log_level_name(LogLevel lvl) noexcept;

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel lvl) noexcept { level_.store(lvl, std::memory_order_relaxed); }
  LogLevel level() const noexcept { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel lvl) const noexcept {
    const LogLevel cur = level();
    return lvl >= cur && cur != LogLevel::off;
  }

  /// Replace the output sink (default: stderr). Used by tests to capture logs.
  void set_sink(Sink sink);

  /// Install a simulated clock; when set, every LogLine without an explicit
  /// timestamp is prefixed with the current sim time. Pass nullptr to detach
  /// (the source must stay valid while installed).
  void set_time_source(const SimTimeSource* src);
  /// Current sim time in ns, or -1 if no source is installed.
  std::int64_t sim_now_ns() const;

  void log(LogLevel lvl, std::string_view msg);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::warn};
  mutable std::mutex mu_;  // guards sink_ and time_source_
  Sink sink_;
  const SimTimeSource* time_source_ = nullptr;
};

namespace detail {
class LogLine {
 public:
  /// sim_ts_ns < 0 means "no explicit timestamp": the logger's installed
  /// time source (if any) supplies one.
  LogLine(LogLevel lvl, const char* file, int line, std::int64_t sim_ts_ns = -1);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

#define MIGR_LOG(lvl)                                                      \
  if (!::migr::common::Logger::instance().enabled(lvl)) {                  \
  } else                                                                   \
    ::migr::common::detail::LogLine(lvl, __FILE__, __LINE__)

/// Like MIGR_LOG but stamps the line with an explicit sim timestamp (ns),
/// e.g. MIGR_LOG_AT(LogLevel::info, loop.now()) << "...";
#define MIGR_LOG_AT(lvl, ts_ns)                                            \
  if (!::migr::common::Logger::instance().enabled(lvl)) {                  \
  } else                                                                   \
    ::migr::common::detail::LogLine(lvl, __FILE__, __LINE__, (ts_ns))

#define MIGR_TRACE() MIGR_LOG(::migr::common::LogLevel::trace)
#define MIGR_DEBUG() MIGR_LOG(::migr::common::LogLevel::debug)
#define MIGR_INFO() MIGR_LOG(::migr::common::LogLevel::info)
#define MIGR_WARN() MIGR_LOG(::migr::common::LogLevel::warn)
#define MIGR_ERROR() MIGR_LOG(::migr::common::LogLevel::error)

}  // namespace migr::common
