#include "common/payload.hpp"

#include <new>
#include <vector>

namespace migr::common::detail {
namespace {

// Power-of-two size classes from 64 B (atomics, acks) through 4 MiB (whole
// pre-copy messages). Larger blocks bypass the pool.
constexpr std::size_t kMinClass = 64;
constexpr std::size_t kMaxClass = 4u << 20;
constexpr int kNumClasses = 17;  // 64 << 16 == 4 MiB

int class_of(std::size_t n) noexcept {
  std::size_t c = kMinClass;
  int idx = 0;
  while (c < n) {
    c <<= 1;
    idx++;
  }
  return c <= kMaxClass ? idx : -1;
}

struct PayloadPool {
  std::vector<PayloadBlock*> free[kNumClasses];
  ~PayloadPool() {
    for (auto& cls : free) {
      for (PayloadBlock* b : cls) ::operator delete(b);
    }
  }
};
thread_local PayloadPool g_pool;

}  // namespace

PayloadBlock* payload_block_alloc(std::size_t n) {
  const int cls = class_of(n);
  if (cls >= 0) {
    auto& free = g_pool.free[cls];
    if (!free.empty()) {
      PayloadBlock* b = free.back();
      free.pop_back();
      b->refs = 1;
      return b;
    }
  }
  const std::size_t cap = cls >= 0 ? (kMinClass << cls) : n;
  auto* b = static_cast<PayloadBlock*>(::operator new(sizeof(PayloadBlock) + cap));
  b->refs = 1;
  b->capacity = static_cast<std::uint32_t>(cap);
  return b;
}

void payload_block_free(PayloadBlock* b) noexcept {
  const int cls = class_of(b->capacity);
  if (cls < 0 || b->capacity != (kMinClass << cls)) {
    ::operator delete(b);
    return;
  }
  g_pool.free[cls].push_back(b);
}

}  // namespace migr::common::detail
