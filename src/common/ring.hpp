// Fixed-capacity ring buffer. This is the backing structure for simulated
// hardware queues (SQ/RQ work-queue elements, CQ entries, SRQ) — sized at
// creation like real NIC queues, rejecting pushes when full so that queue
// overflow surfaces as the same resource_exhausted error ibverbs reports.
//
// head()/tail() indices are monotonically increasing 64-bit counters, never
// wrapped, which mirrors how MigrRDMA reasons about "the window capped by
// the head and tail pointers of the SQ/RQ is exactly the inflight WRs"
// (paper §3.4).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace migr::common {

template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t capacity) : slots_(capacity) {
    assert(capacity > 0);
  }

  bool full() const noexcept { return tail_ - head_ == slots_.size(); }
  bool empty() const noexcept { return tail_ == head_; }
  std::size_t size() const noexcept { return static_cast<std::size_t>(tail_ - head_); }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Monotonic consumer index: number of elements ever popped.
  std::uint64_t head() const noexcept { return head_; }
  /// Monotonic producer index: number of elements ever pushed.
  std::uint64_t tail() const noexcept { return tail_; }

  bool push(T v) {
    if (full()) return false;
    slots_[tail_ % slots_.size()] = std::move(v);
    ++tail_;
    return true;
  }

  T pop() {
    assert(!empty());
    T v = std::move(slots_[head_ % slots_.size()]);
    ++head_;
    return v;
  }

  T& front() {
    assert(!empty());
    return slots_[head_ % slots_.size()];
  }
  const T& front() const {
    assert(!empty());
    return slots_[head_ % slots_.size()];
  }

  /// Element at logical offset i from the head (0 = front). i < size().
  T& at(std::size_t i) {
    assert(i < size());
    return slots_[(head_ + i) % slots_.size()];
  }
  const T& at(std::size_t i) const {
    assert(i < size());
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() noexcept { head_ = tail_ = 0; }

 private:
  std::vector<T> slots_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

/// Unbounded FIFO ring: doubles its storage instead of rejecting when full.
/// For software rotations (e.g. the device's transmit scheduler) where a
/// std::deque's steady-state pop_front/push_back cycling crosses a chunk
/// boundary every few dozen rotations and allocates each time; this only
/// allocates on high-water-mark growth.
template <typename T>
class GrowRing {
 public:
  bool empty() const noexcept { return tail_ == head_; }
  std::size_t size() const noexcept { return static_cast<std::size_t>(tail_ - head_); }

  void push_back(T v) {
    if (size() == slots_.size()) grow();
    slots_[tail_ % slots_.size()] = std::move(v);
    ++tail_;
  }
  T& front() {
    assert(!empty());
    return slots_[head_ % slots_.size()];
  }
  void pop_front() {
    assert(!empty());
    ++head_;
  }
  void clear() noexcept { head_ = tail_ = 0; }

 private:
  void grow() {
    std::vector<T> bigger(slots_.empty() ? 16 : slots_.size() * 2);
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) % slots_.size()]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
    tail_ = n;
  }

  std::vector<T> slots_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace migr::common
