// Deterministic pseudo-random number generation (xoshiro256**). Every source
// of "hardware randomness" in the simulator — QPN starting offsets, NIC key
// nonces, fabric loss decisions — draws from a seeded Rng so that runs are
// exactly reproducible.
#pragma once

#include <cstdint>

namespace migr::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the xoshiro state.
    for (auto& word : s_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Debiased via rejection on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace migr::common
