// Lightweight Status / Result<T> error handling used across the library.
//
// The simulator is exception-free on its hot paths: verbs calls and data-path
// operations return Status or Result<T>, mirroring how ibverbs reports errors
// through return codes rather than exceptions.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace migr::common {

/// Error categories. Deliberately close to the errno-style codes ibverbs
/// surfaces so that application code written against the sim reads naturally.
enum class Errc : std::uint8_t {
  ok = 0,
  invalid_argument,   // EINVAL: bad handle, bad state transition, bad flags
  not_found,          // unknown key / QPN / resource id
  permission_denied,  // access-key (lkey/rkey) validation failure
  resource_exhausted, // queue full, out of QPs, out of memory
  already_exists,     // duplicate registration
  failed_precondition,// operation illegal in current state (e.g. QP not RTS)
  unavailable,        // peer unreachable / connection lost
  timeout,            // operation exceeded its deadline
  internal,           // invariant violation inside the simulator
};

/// Human-readable name for an error category.
std::string_view errc_name(Errc c) noexcept;

/// A success-or-error value. Cheap to copy on success (no allocation).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(Errc code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != Errc::ok && "use Status::ok() for success");
  }

  static Status ok() noexcept { return Status{}; }

  bool is_ok() const noexcept { return code_ == Errc::ok; }
  explicit operator bool() const noexcept { return is_ok(); }

  Errc code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "ok" or "<errc>: <message>".
  std::string to_string() const;

 private:
  Errc code_ = Errc::ok;
  std::string message_;
};

inline Status err(Errc code, std::string message) { return Status{code, std::move(message)}; }

/// A value or an error. `Result<T>` is the return type of every fallible
/// constructor-like operation in the library (resource creation, lookups).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).is_ok() && "Result from ok Status has no value");
  }

  bool is_ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return is_ok(); }

  T& value() & {
    assert(is_ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(v_));
  }

  T value_or(T fallback) const& { return is_ok() ? std::get<T>(v_) : std::move(fallback); }

  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(v_);
  }
  Errc code() const noexcept {
    return is_ok() ? Errc::ok : std::get<Status>(v_).code();
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> v_;
};

/// Propagate-on-error helpers, used as:
///   MIGR_RETURN_IF_ERROR(do_thing());
///   MIGR_ASSIGN_OR_RETURN(auto qp, create_qp(...));
#define MIGR_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    if (auto _st = (expr); !_st.is_ok()) return _st;  \
  } while (false)

#define MIGR_CONCAT_INNER(a, b) a##b
#define MIGR_CONCAT(a, b) MIGR_CONCAT_INNER(a, b)

#define MIGR_ASSIGN_OR_RETURN(decl, expr)                                 \
  auto MIGR_CONCAT(_res_, __LINE__) = (expr);                             \
  if (!MIGR_CONCAT(_res_, __LINE__).is_ok())                              \
    return MIGR_CONCAT(_res_, __LINE__).status();                         \
  decl = std::move(MIGR_CONCAT(_res_, __LINE__)).value()

}  // namespace migr::common
