// Byte-level serialization used for checkpoint images (criu/), control-plane
// messages (net::OobChannel payloads), and the MigrRDMA dump format.
//
// The format is little-endian fixed-width integers plus length-prefixed
// byte strings. Readers are bounds-checked and report truncation as a
// Status instead of crashing — checkpoint images cross a (simulated)
// network and must be treated as untrusted input.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace migr::common {

using Bytes = std::vector<std::uint8_t>;

/// Fixed-capacity inline byte buffer. Used for small fixed-format blobs on
/// hot paths (per-packet wire headers) where a heap-backed Bytes would cost
/// an allocation per instance. Contents beyond size() are uninitialized.
template <std::size_t N>
class SmallBytes {
 public:
  SmallBytes() = default;

  static constexpr std::size_t capacity() noexcept { return N; }
  std::size_t size() const noexcept { return len_; }
  bool empty() const noexcept { return len_ == 0; }

  std::uint8_t* data() noexcept { return buf_.data(); }
  const std::uint8_t* data() const noexcept { return buf_.data(); }

  void resize(std::size_t n) noexcept {
    assert(n <= N);
    len_ = static_cast<std::uint32_t>(n);
  }
  void clear() noexcept { len_ = 0; }

  void assign(std::span<const std::uint8_t> src) noexcept {
    assert(src.size() <= N);
    std::memcpy(buf_.data(), src.data(), src.size());
    len_ = static_cast<std::uint32_t>(src.size());
  }

  std::span<std::uint8_t> span() noexcept { return {buf_.data(), len_}; }
  std::span<const std::uint8_t> span() const noexcept { return {buf_.data(), len_}; }

 private:
  std::array<std::uint8_t, N> buf_;
  std::uint32_t len_ = 0;
};

/// Append-only serializer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) raw bytes.
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void str(std::string_view s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Raw append without length prefix (caller tracks framing).
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const Bytes& data() const& noexcept { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Bounds-checked deserializer over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data) : data_(data) {}

  Result<std::uint8_t> u8() { return read_le<std::uint8_t>(); }
  Result<std::uint16_t> u16() { return read_le<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return read_le<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return read_le<std::uint64_t>(); }
  Result<std::int64_t> i64() {
    MIGR_ASSIGN_OR_RETURN(auto v, read_le<std::uint64_t>());
    return static_cast<std::int64_t>(v);
  }
  Result<double> f64() {
    MIGR_ASSIGN_OR_RETURN(auto bits, read_le<std::uint64_t>());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<bool> boolean() {
    MIGR_ASSIGN_OR_RETURN(auto v, u8());
    return v != 0;
  }

  Result<Bytes> bytes() {
    MIGR_ASSIGN_OR_RETURN(auto n, u32());
    if (remaining() < n) return truncated();
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  Result<std::string> str() {
    MIGR_ASSIGN_OR_RETURN(auto b, bytes());
    return std::string{b.begin(), b.end()};
  }

  Status raw(std::span<std::uint8_t> out) {
    if (remaining() < out.size()) return truncated();
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
    return Status::ok();
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  Result<T> read_le() {
    if (remaining() < sizeof(T)) return truncated();
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }
  static Status truncated() {
    return err(Errc::invalid_argument, "truncated buffer");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace migr::common
