#include "common/result.hpp"

namespace migr::common {

std::string_view errc_name(Errc c) noexcept {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_found: return "not_found";
    case Errc::permission_denied: return "permission_denied";
    case Errc::resource_exhausted: return "resource_exhausted";
    case Errc::already_exists: return "already_exists";
    case Errc::failed_precondition: return "failed_precondition";
    case Errc::unavailable: return "unavailable";
    case Errc::timeout: return "timeout";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string s{errc_name(code_)};
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace migr::common
