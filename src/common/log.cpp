#include "common/log.hpp"

#include <cstdio>
#include <cstring>

namespace migr::common {

std::string_view log_level_name(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel lvl, std::string_view msg) {
    std::fprintf(stderr, "[%s] %.*s\n", log_level_name(lvl).data(),
                 static_cast<int>(msg.size()), msg.data());
  };
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel lvl, std::string_view msg) {
  if (enabled(lvl) && sink_) sink_(lvl, msg);
}

namespace detail {

namespace {
const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLine::LogLine(LogLevel lvl, const char* file, int line) : lvl_(lvl) {
  os_ << basename_of(file) << ':' << line << ' ';
}

LogLine::~LogLine() { Logger::instance().log(lvl_, os_.str()); }

}  // namespace detail
}  // namespace migr::common
