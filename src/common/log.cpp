#include "common/log.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace migr::common {

std::string_view log_level_name(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel lvl, std::string_view msg) {
    std::fprintf(stderr, "[%s] %.*s\n", log_level_name(lvl).data(),
                 static_cast<int>(msg.size()), msg.data());
  };
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::set_time_source(const SimTimeSource* src) {
  std::lock_guard<std::mutex> lock(mu_);
  time_source_ = src;
}

std::int64_t Logger::sim_now_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return time_source_ == nullptr ? -1 : time_source_->now_ns();
}

void Logger::log(LogLevel lvl, std::string_view msg) {
  if (!enabled(lvl)) return;
  // Copy the sink under the lock, call it while still holding the lock so
  // lines are not interleaved; sinks must not call back into the logger.
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) sink_(lvl, msg);
}

namespace detail {

namespace {
const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLine::LogLine(LogLevel lvl, const char* file, int line, std::int64_t sim_ts_ns)
    : lvl_(lvl) {
  if (sim_ts_ns < 0) sim_ts_ns = Logger::instance().sim_now_ns();
  if (sim_ts_ns >= 0) {
    // Sim time in seconds with µs resolution: matches the span timestamps
    // in trace exports, so logs and spans interleave on the same axis.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%" PRId64 ".%06" PRId64 "s] ",
                  sim_ts_ns / 1'000'000'000,
                  (sim_ts_ns % 1'000'000'000) / 1'000);
    os_ << buf;
  }
  os_ << basename_of(file) << ':' << line << ' ';
}

LogLine::~LogLine() { Logger::instance().log(lvl_, os_.str()); }

}  // namespace detail
}  // namespace migr::common
